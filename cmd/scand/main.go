// Command scand is the attack-as-a-service daemon: it serves the job
// scheduler of internal/service over HTTP, multiplexing concurrent attack
// jobs (kernel base, KPTI, modules, Windows, §IV-F user scan, cloud
// scenarios, the stateful §IV-E behaviorspy / appfingerprint kinds whose
// per-victim sessions carry a timeline across jobs, and the defenseeval
// kind evaluating a §V countermeasure — flare | fgkaslr | rerand |
// maskedop — against its attack on a defense-configured boot) across
// executor goroutines that share calibrated sessions and one scan-engine
// worker pool. A job may pin its own sweep parallelism with "scan_workers"; the
// result store is bounded (-store-max-jobs, -store-ttl) so a long-lived
// daemon's memory stays flat while the aggregate stats keep counting.
//
// The scheduler self-heals: transient failures (injected faults, watchdog
// deadline overruns, panics, corrupt sessions) retry with capped
// exponential backoff up to -max-attempts, a per-attempt watchdog fails
// jobs that overrun -job-deadline, panicking jobs are isolated and their
// sessions quarantined (a fresh boot rebuilds them bit-identically via the
// calibration cache), and -shed-watermark enables admission control (429 +
// Retry-After before the queue fills). -fault-seed/-fault-rate drive a
// deterministic chaos run: the whole fault schedule is a pure function of
// the seed.
//
// Daemon mode:
//
//	scand [-addr :8440] [-executors N] [-scan-workers N] [-queue N] [-fresh]
//	      [-store-max-jobs N] [-store-ttl D] [-pprof localhost:6060]
//	      [-max-attempts N] [-job-deadline D] [-shed-watermark N]
//	      [-fault-seed N -fault-rate P] [-trace-sample N] [-trace-buffer N]
//
// The observability plane is always on for metrics and opt-in for traces:
// GET /metrics serves Prometheus text (per-kind/per-defense/per-site
// labels, queue depth, stage and latency histograms) at O(buckets) cost per
// scrape, and -trace-sample N records every Nth job's full lifecycle —
// queue wait, session acquire (cache hit/miss), restore, execute, retries,
// backoffs, fault and quarantine annotations — into a bounded ring
// (-trace-buffer), served as JSON or an ASCII timeline from
// GET /jobs/{id}/trace. With -trace-sample 0 the recorder is nil and the
// instrumented path costs one nil check per stage.
//
// -pprof serves net/http/pprof on a side listener (works in both daemon and
// load mode), so CPU/heap profiles of a live daemon never share a port with
// the job API.
//
//	POST /jobs       {"kind":"kernelbase","cpu":"12400F","seed":7}  → {"id":1}
//	POST /jobs       {"kind":"behaviorspy","seed":7,"duration_sec":20}
//	POST /jobs       {"kind":"appfingerprint","seed":7,"app":"fps-game","scan_workers":4}
//	POST /jobs       {"kind":"defenseeval","defense":"flare","seed":7}
//	POST /jobs       {"kind":"defenseeval","defense":"rerand","seed":7,"rerand_periods_sec":[0.001,0.1]}
//	GET  /jobs/1     status + result
//	GET  /jobs/1/trace          sampled lifecycle span tree (JSON)
//	GET  /jobs/1/trace?format=ascii  the same trace as an ASCII timeline
//	GET  /stats      success rate, jobs/s, p50/p99 latency, reuse counters
//	GET  /metrics    Prometheus text exposition
//	POST /drain      graceful drain (finish queued work, refuse new jobs)
//
// Cluster mode (-cluster N) shards the daemon into N independent
// scheduler instances — each with its own queue, executors, scan pool,
// session/calibration caches, fault injector and metrics plane — behind a
// consistent-hash router: jobs are placed by victim key (-hash-replicas
// virtual nodes per instance), so every job against one victim lands on
// the instance whose caches already hold that victim's session and
// calibration. The HTTP API is unchanged; /stats returns the cluster
// rollup plus per-instance rows, /metrics serves instance-labeled series.
// -route shuffle swaps in the victim-blind shuffled round-robin baseline
// (the affinity ablation).
//
// SIGINT/SIGTERM also drain before exiting. Load-generator mode hammers
// the scheduler in-process with a scenario workload — -mix mixed (every
// kind: both vendors, SGX, cloud, both temporal kinds, defense evals) or
// -mix defense (the vendor × FLARE/FGKASLR/rerand matrix), drawing
// victims uniformly or from a seeded zipfian skew (-load-dist) — and
// appends a throughput entry to BENCH_scan.json (LoadMixed for a single
// scheduler, LoadCluster for -cluster runs):
//
//	scand -load [-mix mixed|defense] [-load-dist uniform|zipfian] [-jobs 256]
//	      [-concurrency 64] [-victims 16] [-cluster N] [-route hash|shuffle]
//	      [-bench-out BENCH_scan.json]
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags and starts the daemon or the load generator; split from
// main for tests.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("scand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8440", "daemon listen address")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = off)")
		executors   = fs.Int("executors", 0, "concurrent job executors (0 = GOMAXPROCS)")
		scanWorkers = fs.Int("scan-workers", 0, "scan-engine workers per job (0 = inline, negative = all CPUs)")
		queue       = fs.Int("queue", 64, "bounded job-queue depth")
		fresh       = fs.Bool("fresh", false, "disable the shared scan pool (fresh replicas per sweep)")
		storeMax    = fs.Int("store-max-jobs", 0, "finished jobs retained in the result store (0 = default bound, negative = unbounded)")
		storeTTL    = fs.Duration("store-ttl", 0, "evict finished jobs older than this (0 = no TTL)")
		maxAttempts = fs.Int("max-attempts", 0, "attempts per job before a transient failure is final (0 = 3, 1 = no retries)")
		jobDeadline = fs.Duration("job-deadline", 0, "per-attempt watchdog deadline (0 = 2m default, negative = disabled)")
		shedMark    = fs.Int("shed-watermark", 0, "shed submissions when the queue holds this many jobs (0 = off)")
		faultSeed   = fs.Uint64("fault-seed", 0, "deterministic fault-injection seed (chaos runs)")
		faultRate   = fs.Float64("fault-rate", 0, "uniform per-site fault probability in [0,1] (0 = injection off)")
		traceSample = fs.Int("trace-sample", 0, "record every Nth job's lifecycle trace (1 = every job, 0 = tracing off)")
		traceBuffer = fs.Int("trace-buffer", 0, "retained traces in the bounded ring (0 = 256)")
		clusterN    = fs.Int("cluster", 0, "shard into N scheduler instances behind the consistent-hash router (0/1 = single scheduler)")
		hashReps    = fs.Int("hash-replicas", 0, "cluster: virtual nodes per instance on the hash ring (0 = default)")
		route       = fs.String("route", "hash", "cluster: routing policy — hash (victim-key affinity) or shuffle (victim-blind baseline)")
		load        = fs.Bool("load", false, "run the load generator instead of the daemon")
		jobs        = fs.Int("jobs", 256, "load: total jobs")
		concurrency = fs.Int("concurrency", 64, "load: concurrent submitters")
		victims     = fs.Int("victims", 16, "load: victim pool size (repeat-scan ratio)")
		seed        = fs.Uint64("seed", 1, "load: base victim seed")
		mix         = fs.String("mix", "mixed", "load: scenario rotation — mixed (every kind incl. defense evals) or defense (the vendor × defense matrix)")
		loadDist    = fs.String("load-dist", "uniform", "load: victim distribution — uniform (round-robin pool) or zipfian (seeded skew, a few hot victims)")
		benchOut    = fs.String("bench-out", "BENCH_scan.json", "load: benchmark trajectory file (empty = don't record)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := service.Config{
		Executors:     *executors,
		QueueDepth:    *queue,
		ScanWorkers:   *scanWorkers,
		FreshWorkers:  *fresh,
		Store:         service.StoreConfig{MaxJobs: *storeMax, TTL: *storeTTL},
		MaxAttempts:   *maxAttempts,
		JobDeadline:   *jobDeadline,
		ShedWatermark: *shedMark,
		Fault:         service.FaultConfig(*faultSeed, *faultRate),
		TraceSample:   *traceSample,
		TraceBuffer:   *traceBuffer,
	}
	if *route != service.RouteHash && *route != service.RouteShuffle {
		fmt.Fprintf(stderr, "scand: unknown -route %q (want hash or shuffle)\n", *route)
		return 2
	}

	// One submission/stats surface for both topologies: a -cluster run
	// builds N schedulers behind the router, otherwise a single scheduler.
	var (
		runner  service.Runner
		handler http.Handler
		drain   func()
		stats   func() service.Stats
	)
	if *clusterN > 1 {
		c := service.NewCluster(service.ClusterConfig{
			Instances:    *clusterN,
			HashReplicas: *hashReps,
			Route:        *route,
			RouteSeed:    *seed,
			Config:       cfg,
		})
		runner, handler, drain = c, service.NewClusterHandler(c), c.Drain
		stats = func() service.Stats { return c.Stats().Stats }
	} else {
		s := service.New(cfg)
		runner, handler, drain, stats = s, service.NewHandler(s), s.Drain, s.Stats
	}
	if *faultRate > 0 {
		fmt.Fprintf(stdout, "scand: CHAOS — injecting faults at rate %g per site, seed %d (deterministic)\n", *faultRate, *faultSeed)
	}

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux; serve that mux on a side listener so profiles never
		// share a port with the job API (daemon mode) and are reachable
		// while the load generator hammers the scheduler (load mode).
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(stderr, "scand: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "scand: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *load {
		var specs []service.JobSpec
		switch *mix {
		case "mixed":
			// nil = the generator's DefaultMix
		case "defense":
			specs = service.DefenseMatrix()
		default:
			fmt.Fprintf(stderr, "scand: unknown -mix %q (want mixed or defense)\n", *mix)
			return 2
		}
		if *loadDist != service.DistUniform && *loadDist != service.DistZipfian {
			fmt.Fprintf(stderr, "scand: unknown -load-dist %q (want uniform or zipfian)\n", *loadDist)
			return 2
		}
		lc := loadCmd{
			jobs: *jobs, concurrency: *concurrency, victims: *victims,
			seed: *seed, mixName: *mix, mix: specs, dist: *loadDist,
			cluster: *clusterN, route: *route, benchOut: *benchOut,
		}
		return runLoad(runner, drain, stats, lc, stdout, stderr)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(stdout, "scand: draining (finishing queued jobs, refusing new ones)")
		drain()
		srv.Close()
	}()
	if *clusterN > 1 {
		eff := runner.(*service.Cluster).Instance(0).Config()
		fmt.Fprintf(stdout, "scand: serving attack jobs on %s (cluster=%d route=%s executors=%d/instance scan-workers=%d queue=%d/instance pooled=%v)\n",
			*addr, *clusterN, *route, eff.Executors, eff.ScanWorkers, eff.QueueDepth, !eff.FreshWorkers)
	} else {
		eff := runner.(*service.Scheduler).Config()
		fmt.Fprintf(stdout, "scand: serving attack jobs on %s (executors=%d scan-workers=%d queue=%d pooled=%v)\n",
			*addr, eff.Executors, eff.ScanWorkers, eff.QueueDepth, !eff.FreshWorkers)
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "scand: %v\n", err)
		return 1
	}
	printStats(stdout, stats())
	return 0
}

// loadCmd carries the load generator's flag bundle into runLoad.
type loadCmd struct {
	jobs, concurrency, victims int
	seed                       uint64
	mixName, dist              string
	mix                        []service.JobSpec
	cluster                    int
	route                      string
	benchOut                   string
}

// runLoad drives the in-process load generator and records the result.
func runLoad(s service.Runner, drain func(), stats func() service.Stats, lc loadCmd, stdout, stderr *os.File) int {
	topo := "single scheduler"
	if lc.cluster > 1 {
		topo = fmt.Sprintf("cluster n=%d route=%s", lc.cluster, lc.route)
	}
	fmt.Fprintf(stdout, "scand: load run — %d jobs, %d submitters, %d victims (%s), %s scenarios, %s\n",
		lc.jobs, lc.concurrency, lc.victims, lc.dist, lc.mixName, topo)
	rep := service.RunLoad(s, service.LoadConfig{
		Jobs:        lc.jobs,
		Concurrency: lc.concurrency,
		Victims:     lc.victims,
		Seed:        lc.seed,
		Mix:         lc.mix,
		Dist:        lc.dist,
	})
	drain()
	rep.Stats = stats()
	if lc.cluster > 1 {
		rep.Cluster = lc.cluster
		rep.Route = lc.route
	}
	printStats(stdout, rep.Stats)
	if len(rep.KindLatency) > 0 {
		kinds := make([]string, 0, len(rep.KindLatency))
		for k := range rep.KindLatency {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			kl := rep.KindLatency[service.Kind(k)]
			fmt.Fprintf(stdout, "  %-16s %4d jobs, p50 %.2f ms, p99 %.2f ms\n", k, kl.Jobs, kl.P50Ms, kl.P99Ms)
		}
	}
	fmt.Fprintf(stdout, "wall %.2fs, %d queue-full retries\n", rep.WallSec, rep.Retries)
	if rep.Stats.Failed > 0 {
		fmt.Fprintf(stderr, "scand: %d jobs failed\n", rep.Stats.Failed)
		return 1
	}
	if lc.benchOut != "" {
		if err := service.AppendBench(lc.benchOut, rep); err != nil {
			fmt.Fprintf(stderr, "scand: recording benchmark: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "recorded load entry in %s\n", lc.benchOut)
	}
	return 0
}

func printStats(out *os.File, st service.Stats) {
	fmt.Fprintf(out, "jobs: %d submitted, %d done, %d failed, %d rejected; success %.2f%%\n",
		st.Submitted, st.Completed, st.Failed, st.Rejected, 100*st.SuccessRate)
	fmt.Fprintf(out, "throughput: %.1f jobs/s; latency p50 %.2f ms, p99 %.2f ms; simulated attacker time %.3f s\n",
		st.JobsPerSec, st.P50Ms, st.P99Ms, st.SimAttackerSec)
	fmt.Fprintf(out, "reuse: %d session hits / %d boots, %d calibrations skipped (hit rate %.1f%%), %d pooled scan replicas\n",
		st.SessionHits, st.Sessions, st.CalibrationsReused, 100*st.CacheHitRate(), st.PoolReplicas)
	if st.Retries+st.Shed+st.Quarantined > 0 || st.FaultsInjected > 0 {
		fmt.Fprintf(out, "healing: %d retries, %d shed, %d sessions quarantined, %d faults injected\n",
			st.Retries, st.Shed, st.Quarantined, st.FaultsInjected)
	}
}
