package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Flag plumbing: -workers and -seed must land in the Scale, and every run
// must get a session pool.
func TestParseFlagsPlumbing(t *testing.T) {
	cfg, err := parseFlags([]string{"-workers", "3", "-seed", "99", "-only", "Fig. 1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.scale.Workers != 3 {
		t.Fatalf("scale workers = %d, want 3", cfg.scale.Workers)
	}
	if cfg.scale.Seed != 99 {
		t.Fatalf("scale seed = %d, want 99", cfg.scale.Seed)
	}
	if cfg.scale.Pool == nil {
		t.Fatal("no session pool in scale")
	}
	if cfg.only != "Fig. 1" {
		t.Fatalf("only = %q", cfg.only)
	}
	if _, err := parseFlags([]string{"-scale", "nope"}, io.Discard); err == nil {
		t.Fatal("bad scale accepted")
	}
}

// A cheap experiment must run end to end through the CLI path, inline and
// with sharded sweeps.
func TestRunSingleExperiment(t *testing.T) {
	for _, workers := range []string{"0", "2"} {
		var out, errw bytes.Buffer
		code := run([]string{"-only", "Fig. 1", "-workers", workers}, &out, &errw)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d\nstdout: %s\nstderr: %s", workers, code, out.String(), errw.String())
		}
		if !strings.Contains(out.String(), "1/1 experiments reproduce") {
			t.Fatalf("workers=%s: unexpected summary:\n%s", workers, out.String())
		}
	}
}

// An -only filter matching nothing must fail with a clear message.
func TestRunNoMatch(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-only", "Fig. 99"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "no experiment matches") {
		t.Fatalf("stderr: %s", errw.String())
	}
}
