// Command experiments regenerates every table and figure of the paper on
// the simulator and prints paper-vs-measured reports with shape verdicts.
//
// Usage:
//
//	experiments [-scale default|paper] [-only "Fig. 4"] [-seed N]
//
// The default scale finishes in seconds; -scale paper runs the paper's
// trial counts (n=10000 for Table I) and takes minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: default or paper")
	only := flag.String("only", "", "run only experiments whose ID contains this substring")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the scale's default)")
	workers := flag.Int("workers", 0, "scan-engine workers for the big VA sweeps (0 = sequential, negative = all CPUs)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	// One worker pool for the whole run: every experiment's scans share the
	// same machine replicas (results are bit-identical to fresh workers).
	sc.Pool = core.NewScanPool()

	runners := []struct {
		id  string
		run func(experiments.Scale) experiments.Report
	}{
		{"Fig. 1", experiments.Fig1FaultSuppression},
		{"Fig. 2", experiments.Fig2PageTypes},
		{"§III-B levels", experiments.Fig2bPageTableLevels},
		{"§III-B TLB", experiments.Fig2cTLBState},
		{"Fig. 3", experiments.Fig3Permissions},
		{"§III-B P6", experiments.Fig3bLoadVsStore},
		{"Fig. 4", experiments.Fig4KernelBaseScan},
		{"Table I", experiments.Table1},
		{"Fig. 5", experiments.Fig5ModuleIdent},
		{"§IV-D", experiments.Sec4dKPTI},
		{"Fig. 6", experiments.Fig6BehaviorSpy},
		{"Fig. 7", experiments.Fig7SGXFineGrained},
		{"§IV-G", experiments.Sec4gWindows},
		{"§IV-H", experiments.Sec4hCloud},
		{"§V", experiments.Sec5Defenses},
		{"baselines", experiments.BaselineComparison},
	}

	failures := 0
	ran := 0
	for _, r := range runners {
		if *only != "" && !strings.Contains(r.id, *only) {
			continue
		}
		rep := r.run(sc)
		fmt.Println(rep.String())
		fmt.Println()
		ran++
		if !rep.OK {
			failures++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -only=%q\n", *only)
		os.Exit(2)
	}
	fmt.Printf("%d/%d experiments reproduce the paper's shape\n", ran-failures, ran)
	if failures > 0 {
		os.Exit(1)
	}
}
