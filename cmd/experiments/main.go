// Command experiments regenerates every table and figure of the paper on
// the simulator and prints paper-vs-measured reports with shape verdicts.
//
// Usage:
//
//	experiments [-scale default|paper] [-only "Fig. 4"] [-seed N] [-workers N]
//
// The default scale finishes in seconds; -scale paper runs the paper's
// trial counts (n=10000 for Table I) and takes minutes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is one parsed invocation.
type config struct {
	scale experiments.Scale
	only  string
}

// parseFlags resolves args into the experiment configuration — split out
// so tests can verify the flag plumbing (scale, seed override, workers,
// session pool) without running experiments.
func parseFlags(args []string, errw io.Writer) (config, error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(errw)
	scaleFlag := fs.String("scale", "default", "experiment scale: default or paper")
	only := fs.String("only", "", "run only experiments whose ID contains this substring")
	seed := fs.Uint64("seed", 0, "override the experiment seed (0 keeps the scale's default)")
	workers := fs.Int("workers", 0, "scan-engine workers for the big VA sweeps (0 = sequential, negative = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return config{}, fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	// One worker pool for the whole run: every experiment's scans share the
	// same machine replicas (results are bit-identical to fresh workers).
	sc.Pool = core.NewScanPool()
	return config{scale: sc, only: *only}, nil
}

// runners lists every experiment in report order.
func runners() []struct {
	id  string
	run func(experiments.Scale) experiments.Report
} {
	return []struct {
		id  string
		run func(experiments.Scale) experiments.Report
	}{
		{"Fig. 1", experiments.Fig1FaultSuppression},
		{"Fig. 2", experiments.Fig2PageTypes},
		{"§III-B levels", experiments.Fig2bPageTableLevels},
		{"§III-B TLB", experiments.Fig2cTLBState},
		{"Fig. 3", experiments.Fig3Permissions},
		{"§III-B P6", experiments.Fig3bLoadVsStore},
		{"Fig. 4", experiments.Fig4KernelBaseScan},
		{"Table I", experiments.Table1},
		{"Fig. 5", experiments.Fig5ModuleIdent},
		{"§IV-D", experiments.Sec4dKPTI},
		{"Fig. 6", experiments.Fig6BehaviorSpy},
		{"Fig. 7", experiments.Fig7SGXFineGrained},
		{"§IV-G", experiments.Sec4gWindows},
		{"§IV-H", experiments.Sec4hCloud},
		{"§V", experiments.Sec5Defenses},
		{"baselines", experiments.BaselineComparison},
	}
}

// run executes the selected experiments and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}

	failures := 0
	ran := 0
	for _, r := range runners() {
		if cfg.only != "" && !strings.Contains(r.id, cfg.only) {
			continue
		}
		rep := r.run(cfg.scale)
		fmt.Fprintln(stdout, rep.String())
		fmt.Fprintln(stdout)
		ran++
		if !rep.OK {
			failures++
		}
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "no experiment matches -only=%q\n", cfg.only)
		return 2
	}
	fmt.Fprintf(stdout, "%d/%d experiments reproduce the paper's shape\n", ran-failures, ran)
	if failures > 0 {
		return 1
	}
	return 0
}
