package main

import (
	"bytes"
	"strings"
	"testing"
)

// The -workers flag must plumb into the prober options, alongside the
// run-wide session pool.
func TestWorkersFlagPlumbing(t *testing.T) {
	var out, errw bytes.Buffer
	a := newApp(&out, &errw)
	if code := a.run([]string{"-attack", "base", "-workers", "4", "-seed", "1"}); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errw.String())
	}
	opts := a.proberOptions()
	if opts.Workers != 4 {
		t.Fatalf("prober options workers = %d, want 4", opts.Workers)
	}
	if opts.Pool == nil {
		t.Fatal("prober options carry no session pool")
	}
	if opts.Pool.Replicas() == 0 {
		t.Fatal("the kernel-base scan never drew a pooled replica")
	}
	if !strings.Contains(out.String(), "[correct]") {
		t.Fatalf("attack output missing correct verdict:\n%s", out.String())
	}
}

// Every attack the CLI exposes must run to success on its default victim
// at a fixed seed, workers inline and sharded.
func TestAttacksEndToEnd(t *testing.T) {
	cases := [][]string{
		{"-attack", "base", "-seed", "1"},
		{"-attack", "base", "-cpu", "5600X", "-seed", "1", "-workers", "2"},
		{"-attack", "modules", "-cpu", "1065G7", "-seed", "1", "-workers", "2"},
		{"-attack", "kpti", "-seed", "1"},
		{"-attack", "windows", "-seed", "1", "-workers", "2"},
		{"-attack", "cloud", "-provider", "gce", "-seed", "1"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		a := newApp(&out, &errw)
		if code := a.run(args); code != 0 {
			t.Fatalf("%v: exit code %d, stderr: %s", args, code, errw.String())
		}
		if strings.Contains(out.String(), "WRONG") {
			t.Fatalf("%v: attack missed:\n%s", args, out.String())
		}
	}
}

// Bad flags and unknown attacks must fail without panicking.
func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{"-attack", "frobnicate"},
		{"-cpu", "no-such-cpu"},
		{"-attack", "cloud", "-provider", "dc1"},
		{"-no-such-flag"},
	} {
		var out, errw bytes.Buffer
		if code := newApp(&out, &errw).run(args); code == 0 {
			t.Fatalf("%v: expected non-zero exit", args)
		}
	}
}

// -list prints the preset table and exits cleanly.
func TestListPresets(t *testing.T) {
	var out, errw bytes.Buffer
	if code := newApp(&out, &errw).run([]string{"-list"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out.String(), "GHz") {
		t.Fatalf("preset list missing:\n%s", out.String())
	}
}
