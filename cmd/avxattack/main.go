// Command avxattack runs individual attacks from the paper against a
// simulated victim machine and prints what an attacker would see.
//
// Usage:
//
//	avxattack -attack base    [-cpu 12400F] [-seed N] [-kpti] [-flare]
//	avxattack -attack modules [-cpu 1065G7]
//	avxattack -attack kpti    [-trampoline 0xc00000]
//	avxattack -attack windows | kvas
//	avxattack -attack behavior [-duration 100]
//	avxattack -attack sgx     [-entropy 16]
//	avxattack -attack cloud   [-provider ec2|gce|azure]
//
// The -cpu flag accepts any substring of a preset name (see -list).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
	"repro/internal/sgx"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

func main() {
	attack := flag.String("attack", "base", "base|modules|kpti|windows|kvas|behavior|sgx|cloud")
	cpu := flag.String("cpu", "12400F", "CPU preset name substring")
	seed := flag.Uint64("seed", 1, "victim boot / experiment seed")
	kpti := flag.Bool("kpti", false, "boot the victim with KPTI")
	flare := flag.Bool("flare", false, "boot the victim with FLARE dummy mappings")
	trampoline := flag.Uint64("trampoline", linux.DefaultTrampolineOffset, "KPTI trampoline offset (attacker knowledge)")
	duration := flag.Float64("duration", 100, "behavior-spy observation window in seconds")
	entropy := flag.Int("entropy", 16, "user-ASLR entropy bits for the sgx attack (paper: 28)")
	provider := flag.String("provider", "ec2", "cloud provider: ec2|gce|azure")
	workers := flag.Int("workers", 0, "scan-engine workers for the VA sweeps (0 = sequential, negative = all CPUs)")
	list := flag.Bool("list", false, "list CPU presets and exit")
	flag.Parse()

	scanWorkers = *workers

	if *list {
		for _, p := range uarch.All() {
			fmt.Printf("%-36s %-8s %-6s %.1f GHz\n", p.Name, p.Setting, p.Launch, p.TSCGHz)
		}
		return
	}

	preset := uarch.ByName(*cpu)
	if preset == nil {
		fail("no CPU preset matches %q (use -list)", *cpu)
	}

	switch *attack {
	case "base":
		runBase(preset, *seed, *kpti, *flare)
	case "modules":
		runModules(preset, *seed)
	case "kpti":
		runKPTI(preset, *seed, *trampoline)
	case "windows":
		runWindows(preset, *seed)
	case "kvas":
		runKVAS(preset, *seed)
	case "behavior":
		runBehavior(preset, *seed, *duration)
	case "sgx":
		runSGX(preset, *seed, *entropy)
	case "cloud":
		runCloud(*provider, *seed)
	default:
		fail("unknown attack %q", *attack)
	}
}

// scanWorkers is the -workers flag value: worker replicas for the sharded
// scan engine (0 runs the engine inline, sequentially; negative means all
// CPUs, normalized by the prober options).
var scanWorkers int

// scanPool is the session's worker pool: constructed once per CLI run, so
// every scan an attack performs reuses the same machine replicas instead
// of re-cloning them (output is bit-identical either way).
var scanPool = core.NewScanPool()

// proberOptions returns the prober configuration the CLI attacks share.
func proberOptions() core.Options {
	return core.Options{Workers: scanWorkers, Pool: scanPool}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func newVictim(preset *uarch.Preset, seed uint64, cfg linux.Config) (*machine.Machine, *linux.Kernel, *core.Prober) {
	m := machine.New(preset, seed)
	cfg.Seed = seed
	k, err := linux.Boot(m, cfg)
	if err != nil {
		fail("boot: %v", err)
	}
	p, err := core.NewProber(m, proberOptions())
	if err != nil {
		fail("calibration: %v", err)
	}
	fmt.Printf("victim: %s, Linux (KASLR%s%s), seed %d\n",
		preset.Name, opt(cfg.KPTI, "+KPTI"), opt(cfg.FLARE, "+FLARE"), seed)
	fmt.Printf("calibrated threshold: %.1f cycles (fast-class median %.1f)\n\n",
		p.Threshold.Cycles, p.Threshold.FastMean)
	return m, k, p
}

func opt(on bool, s string) string {
	if on {
		return s
	}
	return ""
}

func runBase(preset *uarch.Preset, seed uint64, kpti, flare bool) {
	m, k, p := newVictim(preset, seed, linux.Config{KPTI: kpti, FLARE: flare})
	res, err := core.KernelBase(p)
	if err != nil {
		fail("attack: %v", err)
	}
	mapped := &trace.Series{Name: "mapped"}
	unmapped := &trace.Series{Name: "unmapped"}
	for _, s := range res.Samples {
		y := s.Cycles - preset.FenceOverhead
		if y > 140 {
			y = 140
		}
		if s.Mapped {
			mapped.Add(float64(s.Slot), y)
		} else {
			unmapped.Add(float64(s.Slot), y)
		}
	}
	plot := trace.NewPlot("kernel offset scan (Fig. 4)", "offset (2 MiB slots)", "cycles")
	plot.AddSeries(unmapped, '.')
	plot.AddSeries(mapped, 'o')
	fmt.Println(plot.Render())
	fmt.Printf("kernel base: %#x (slide %#x) — ground truth %#x [%s]\n",
		uint64(res.Base), res.Slide, uint64(k.Base), verdict(res.Base == k.Base))
	fmt.Printf("runtime: probing %.3g ms, total %.3g ms; faults delivered: %d\n",
		res.ProbeSeconds(preset)*1e3, res.TotalSeconds(preset)*1e3, p.Faults())
	_ = m
}

func runModules(preset *uarch.Preset, seed uint64) {
	_, k, p := newVictim(preset, seed, linux.Config{})
	table := core.SizeTable(k.ProcModules())
	res := core.Modules(p, table)
	score := core.ScoreModules(res, k.Modules, table)
	tab := &trace.Table{Header: []string{"offset(4K)", "size", "classification"}}
	for i, r := range res.Regions {
		if i >= 12 {
			tab.AddRow("...", "", fmt.Sprintf("(%d more)", len(res.Regions)-i))
			break
		}
		off := (uint64(r.Base) - uint64(linux.ModuleRegionBase)) >> 12
		tab.AddRow(fmt.Sprintf("%d", off), fmt.Sprintf("%#x", r.Size), strings.Join(r.Names, "|"))
	}
	fmt.Println(tab.Render())
	fmt.Printf("regions: %d; detection %.2f%%; uniquely identified %d/%d unique-sized\n",
		len(res.Regions), 100*score.DetectionAccuracy(), score.Identified, score.UniqueSize)
	fmt.Printf("runtime: probing %.3g ms, total %.3g ms\n",
		preset.CyclesToSeconds(res.ProbeCycles)*1e3, preset.CyclesToSeconds(res.TotalCycles)*1e3)
}

func runKPTI(preset *uarch.Preset, seed uint64, trampolineOff uint64) {
	_, k, p := newVictim(preset, seed, linux.Config{KPTI: true, TrampolineOffset: trampolineOff})
	res, err := core.KPTIBreak(p, trampolineOff)
	if err != nil {
		fail("attack: %v", err)
	}
	fmt.Printf("trampoline found at %#x\n", uint64(res.TrampolineVA))
	fmt.Printf("kernel base: %#x — ground truth %#x [%s]\n",
		uint64(res.Base), uint64(k.Base), verdict(res.Base == k.Base))
	fmt.Printf("runtime: total %.3g ms\n", preset.CyclesToSeconds(res.TotalCycles)*1e3)
}

func runWindows(preset *uarch.Preset, seed uint64) {
	m := machine.New(preset, seed)
	wk, err := winkernel.Boot(m, winkernel.Config{Seed: seed, Drivers: 24})
	if err != nil {
		fail("boot: %v", err)
	}
	p, err := core.NewProber(m, proberOptions())
	if err != nil {
		fail("calibration: %v", err)
	}
	fmt.Printf("victim: %s, Windows 10, 2^18 slots\n\n", preset.Name)
	res, err := core.WindowsKernel(p, winkernel.ImageSlots)
	if err != nil {
		fail("attack: %v", err)
	}
	fmt.Printf("kernel region: %#x (%d consecutive 2 MiB pages) — ground truth %#x [%s]\n",
		uint64(res.RegionBase), res.RunSlots, uint64(wk.Base), verdict(res.RegionBase == wk.Base))
	fmt.Printf("runtime: %.3g ms (paper: ~60 ms)\n", preset.CyclesToSeconds(res.TotalCycles)*1e3)
}

func runKVAS(preset *uarch.Preset, seed uint64) {
	const window = 4096 // 2 MiB slots scanned at 4 KiB granularity
	m := machine.New(preset, seed)
	wk, err := winkernel.Boot(m, winkernel.Config{Seed: seed, KVAS: true, MaxSlot: window - 8})
	if err != nil {
		fail("boot: %v", err)
	}
	p, err := core.NewProber(m, proberOptions())
	if err != nil {
		fail("calibration: %v", err)
	}
	fmt.Printf("victim: %s, Windows 10 + KVAS (slide restricted to %d slots)\n\n", preset.Name, window)
	res, err := core.KVASBreak(p, window)
	if err != nil {
		fail("attack: %v", err)
	}
	fmt.Printf("KVAS region: %#x; kernel base %#x — ground truth %#x [%s]\n",
		uint64(res.KVASVA), uint64(res.Base), uint64(wk.Base), verdict(res.Base == wk.Base))
	fmt.Printf("runtime: %.3g s over the window (full region extrapolates ×%d)\n",
		preset.CyclesToSeconds(res.TotalCycles), int(winkernel.Slots)/window)
}

func runBehavior(preset *uarch.Preset, seed uint64, duration float64) {
	_, k, p := newVictim(preset, seed, linux.Config{})
	mres := core.Modules(p, core.SizeTable(k.ProcModules()))
	targets, err := core.LocateTargets(mres, "bluetooth", "psmouse")
	if err != nil {
		fail("locate: %v", err)
	}
	r := rng.New(seed + 1)
	bt := behavior.RandomTimeline(behavior.BluetoothAudio(), duration, 12, 18, r)
	ms := behavior.RandomTimeline(behavior.MouseMovement(), duration, 8, 6, r)
	drv, err := behavior.NewDriver(k, bt, ms)
	if err != nil {
		fail("driver: %v", err)
	}
	spy := &core.BehaviorSpy{P: p, Targets: targets}
	traces, err := spy.Run(drv, duration)
	if err != nil {
		fail("spy: %v", err)
	}
	for i, tr := range traces {
		s := &trace.Series{Name: tr.Module}
		for _, smp := range tr.Samples {
			s.Add(smp.TimeSec, smp.MinCycles)
		}
		plot := trace.NewPlot(fmt.Sprintf("%s TLB probe (fast = in use)", tr.Module), "time (s)", "cycles")
		plot.AddSeries(s, 'o')
		fmt.Println(plot.Render())
		tl := []*behavior.Timeline{bt, ms}[i]
		fmt.Printf("detection accuracy vs ground truth: %.1f%%\n\n", 100*tr.Accuracy(tl))
	}
}

func runSGX(preset *uarch.Preset, seed uint64, entropyBits int) {
	m := machine.New(preset, seed)
	if _, err := linux.Boot(m, linux.Config{Seed: seed}); err != nil {
		fail("boot: %v", err)
	}
	proc, err := userspace.Build(m, userspace.Config{Seed: seed, EntropyBits: entropyBits, HideLastRWPage: true})
	if err != nil {
		fail("process: %v", err)
	}
	enc, err := sgx.Enter(m, sgx.RDTSC)
	if err != nil {
		fail("enclave: %v", err)
	}
	defer enc.Exit()
	p, err := core.NewProber(m, proberOptions())
	if err != nil {
		fail("calibration: %v", err)
	}
	fmt.Printf("attacker inside SGX enclave on %s; process entropy %d bits\n\n", preset.Name, entropyBits)

	base, probes, ok := core.ScanUntilMapped(p, userspace.ExeRegionBase, (1<<entropyBits)+1024)
	fmt.Printf("exe base: %#x after %d probes [%s]\n", uint64(base), probes, verdict(ok && base == proc.Exe.Base))

	libStart := proc.Libs[0].Base - 16*paging.Page4K
	libEnd := proc.Libs[len(proc.Libs)-1].End() + 8*paging.Page4K
	scan := core.UserScan(p, libStart, libEnd)
	tab := &trace.Table{Header: []string{"region", "perm (Fig. 7 notation)", "pages"}}
	for _, rg := range scan.Regions {
		tab.AddRow(fmt.Sprintf("%#x-%#x", uint64(rg.Start), uint64(rg.End)), rg.Class.String(),
			fmt.Sprintf("%d", rg.Pages()))
	}
	fmt.Println(tab.Render())
	found := core.FingerprintLibraries(scan.Regions, userspace.StandardLibraries())
	for name, addr := range found {
		fmt.Printf("identified %-22s at %#x\n", name, uint64(addr))
	}
	fmt.Printf("\nscan runtime: load %.3g s, store %.3g s (×%d extrapolation to 28-bit entropy)\n",
		preset.CyclesToSeconds(scan.LoadCycles), preset.CyclesToSeconds(scan.StoreCycles),
		1<<(28-entropyBits))
}

func runCloud(provider string, seed uint64) {
	var prov core.CloudProvider
	switch provider {
	case "ec2":
		prov = core.AmazonEC2
	case "gce":
		prov = core.GoogleGCE
	case "azure":
		prov = core.MicrosoftAzure
	default:
		fail("unknown provider %q", provider)
	}
	res, err := core.CloudBreak(prov, seed, core.CloudBreakOptions{AzureMaxSlot: 20000})
	if err != nil {
		fail("attack: %v", err)
	}
	sc := core.Scenario(prov)
	fmt.Printf("provider: %s (%s)\n", prov, sc.Preset.Name)
	path := "page-table scan"
	if res.ViaTrampoline {
		path = fmt.Sprintf("KPTI trampoline (+%#x)", sc.Trampoline)
	}
	fmt.Printf("kernel base: %#x via %s in %.3g ms\n",
		uint64(res.KernelBase), path, sc.Preset.CyclesToSeconds(res.BaseCycles)*1e3)
	if res.ModuleCycles > 0 {
		fmt.Printf("modules: %d regions in %.3g ms\n",
			res.ModulesFound, sc.Preset.CyclesToSeconds(res.ModuleCycles)*1e3)
	}
}

func verdict(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}
