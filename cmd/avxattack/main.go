// Command avxattack runs individual attacks from the paper against a
// simulated victim machine and prints what an attacker would see.
//
// Usage:
//
//	avxattack -attack base    [-cpu 12400F] [-seed N] [-kpti] [-flare]
//	avxattack -attack modules [-cpu 1065G7]
//	avxattack -attack kpti    [-trampoline 0xc00000]
//	avxattack -attack windows | kvas
//	avxattack -attack behavior [-duration 100]
//	avxattack -attack sgx     [-entropy 16]
//	avxattack -attack cloud   [-provider ec2|gce|azure]
//
// The -cpu flag accepts any substring of a preset name (see -list).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
	"repro/internal/sgx"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

func main() {
	os.Exit(newApp(os.Stdout, os.Stderr).run(os.Args[1:]))
}

// app carries one CLI invocation's configuration and output streams — the
// run logic lives on it so tests can drive the command without a process.
type app struct {
	out, errw io.Writer

	// workers is the -workers flag value: worker replicas for the sharded
	// scan engine (0 runs the engine inline, sequentially; negative means
	// all CPUs, normalized by the prober options).
	workers int
	// pool is the session's worker pool: constructed once per CLI run, so
	// every scan an attack performs reuses the same machine replicas
	// instead of re-cloning them (output is bit-identical either way).
	pool *core.ScanPool
}

func newApp(out, errw io.Writer) *app {
	return &app{out: out, errw: errw, pool: core.NewScanPool()}
}

// proberOptions returns the prober configuration the CLI attacks share.
func (a *app) proberOptions() core.Options {
	return core.Options{Workers: a.workers, Pool: a.pool}
}

// run parses args, mounts the selected attack and returns the exit code.
func (a *app) run(args []string) int {
	fs := flag.NewFlagSet("avxattack", flag.ContinueOnError)
	fs.SetOutput(a.errw)
	attack := fs.String("attack", "base", "base|modules|kpti|windows|kvas|behavior|sgx|cloud")
	cpu := fs.String("cpu", "12400F", "CPU preset name substring")
	seed := fs.Uint64("seed", 1, "victim boot / experiment seed")
	kpti := fs.Bool("kpti", false, "boot the victim with KPTI")
	flare := fs.Bool("flare", false, "boot the victim with FLARE dummy mappings")
	trampoline := fs.Uint64("trampoline", linux.DefaultTrampolineOffset, "KPTI trampoline offset (attacker knowledge)")
	duration := fs.Float64("duration", 100, "behavior-spy observation window in seconds")
	entropy := fs.Int("entropy", 16, "user-ASLR entropy bits for the sgx attack (paper: 28)")
	provider := fs.String("provider", "ec2", "cloud provider: ec2|gce|azure")
	workers := fs.Int("workers", 0, "scan-engine workers for the VA sweeps (0 = sequential, negative = all CPUs)")
	list := fs.Bool("list", false, "list CPU presets and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	a.workers = *workers

	if *list {
		for _, p := range uarch.All() {
			fmt.Fprintf(a.out, "%-36s %-8s %-6s %.1f GHz\n", p.Name, p.Setting, p.Launch, p.TSCGHz)
		}
		return 0
	}

	preset := uarch.ByName(*cpu)
	if preset == nil {
		return a.fail("no CPU preset matches %q (use -list)", *cpu)
	}

	var err error
	switch *attack {
	case "base":
		err = a.runBase(preset, *seed, *kpti, *flare)
	case "modules":
		err = a.runModules(preset, *seed)
	case "kpti":
		err = a.runKPTI(preset, *seed, *trampoline)
	case "windows":
		err = a.runWindows(preset, *seed)
	case "kvas":
		err = a.runKVAS(preset, *seed)
	case "behavior":
		err = a.runBehavior(preset, *seed, *duration)
	case "sgx":
		err = a.runSGX(preset, *seed, *entropy)
	case "cloud":
		err = a.runCloud(*provider, *seed)
	default:
		return a.fail("unknown attack %q", *attack)
	}
	if err != nil {
		return a.fail("%v", err)
	}
	return 0
}

func (a *app) fail(format string, args ...any) int {
	fmt.Fprintf(a.errw, format+"\n", args...)
	return 1
}

func (a *app) newVictim(preset *uarch.Preset, seed uint64, cfg linux.Config) (*machine.Machine, *linux.Kernel, *core.Prober, error) {
	m := machine.New(preset, seed)
	cfg.Seed = seed
	k, err := linux.Boot(m, cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("boot: %w", err)
	}
	p, err := core.NewProber(m, a.proberOptions())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("calibration: %w", err)
	}
	fmt.Fprintf(a.out, "victim: %s, Linux (KASLR%s%s), seed %d\n",
		preset.Name, opt(cfg.KPTI, "+KPTI"), opt(cfg.FLARE, "+FLARE"), seed)
	fmt.Fprintf(a.out, "calibrated threshold: %.1f cycles (fast-class median %.1f)\n\n",
		p.Threshold.Cycles, p.Threshold.FastMean)
	return m, k, p, nil
}

func opt(on bool, s string) string {
	if on {
		return s
	}
	return ""
}

func (a *app) runBase(preset *uarch.Preset, seed uint64, kpti, flare bool) error {
	_, k, p, err := a.newVictim(preset, seed, linux.Config{KPTI: kpti, FLARE: flare})
	if err != nil {
		return err
	}
	res, err := core.KernelBase(p)
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	mapped := &trace.Series{Name: "mapped"}
	unmapped := &trace.Series{Name: "unmapped"}
	for _, s := range res.Samples {
		y := s.Cycles - preset.FenceOverhead
		if y > 140 {
			y = 140
		}
		if s.Mapped {
			mapped.Add(float64(s.Slot), y)
		} else {
			unmapped.Add(float64(s.Slot), y)
		}
	}
	plot := trace.NewPlot("kernel offset scan (Fig. 4)", "offset (2 MiB slots)", "cycles")
	plot.AddSeries(unmapped, '.')
	plot.AddSeries(mapped, 'o')
	fmt.Fprintln(a.out, plot.Render())
	fmt.Fprintf(a.out, "kernel base: %#x (slide %#x) — ground truth %#x [%s]\n",
		uint64(res.Base), res.Slide, uint64(k.Base), verdict(res.Base == k.Base))
	fmt.Fprintf(a.out, "runtime: probing %.3g ms, total %.3g ms; faults delivered: %d\n",
		res.ProbeSeconds(preset)*1e3, res.TotalSeconds(preset)*1e3, p.Faults())
	return nil
}

func (a *app) runModules(preset *uarch.Preset, seed uint64) error {
	_, k, p, err := a.newVictim(preset, seed, linux.Config{})
	if err != nil {
		return err
	}
	table := core.SizeTable(k.ProcModules())
	res := core.Modules(p, table)
	score := core.ScoreModules(res, k.Modules, table)
	tab := &trace.Table{Header: []string{"offset(4K)", "size", "classification"}}
	for i, r := range res.Regions {
		if i >= 12 {
			tab.AddRow("...", "", fmt.Sprintf("(%d more)", len(res.Regions)-i))
			break
		}
		off := (uint64(r.Base) - uint64(linux.ModuleRegionBase)) >> 12
		tab.AddRow(fmt.Sprintf("%d", off), fmt.Sprintf("%#x", r.Size), strings.Join(r.Names, "|"))
	}
	fmt.Fprintln(a.out, tab.Render())
	fmt.Fprintf(a.out, "regions: %d; detection %.2f%%; uniquely identified %d/%d unique-sized\n",
		len(res.Regions), 100*score.DetectionAccuracy(), score.Identified, score.UniqueSize)
	fmt.Fprintf(a.out, "runtime: probing %.3g ms, total %.3g ms\n",
		preset.CyclesToSeconds(res.ProbeCycles)*1e3, preset.CyclesToSeconds(res.TotalCycles)*1e3)
	return nil
}

func (a *app) runKPTI(preset *uarch.Preset, seed uint64, trampolineOff uint64) error {
	_, k, p, err := a.newVictim(preset, seed, linux.Config{KPTI: true, TrampolineOffset: trampolineOff})
	if err != nil {
		return err
	}
	res, err := core.KPTIBreak(p, trampolineOff)
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	fmt.Fprintf(a.out, "trampoline found at %#x\n", uint64(res.TrampolineVA))
	fmt.Fprintf(a.out, "kernel base: %#x — ground truth %#x [%s]\n",
		uint64(res.Base), uint64(k.Base), verdict(res.Base == k.Base))
	fmt.Fprintf(a.out, "runtime: total %.3g ms\n", preset.CyclesToSeconds(res.TotalCycles)*1e3)
	return nil
}

func (a *app) runWindows(preset *uarch.Preset, seed uint64) error {
	m := machine.New(preset, seed)
	wk, err := winkernel.Boot(m, winkernel.Config{Seed: seed, Drivers: 24})
	if err != nil {
		return fmt.Errorf("boot: %w", err)
	}
	p, err := core.NewProber(m, a.proberOptions())
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	fmt.Fprintf(a.out, "victim: %s, Windows 10, 2^18 slots\n\n", preset.Name)
	res, err := core.WindowsKernel(p, winkernel.ImageSlots)
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	fmt.Fprintf(a.out, "kernel region: %#x (%d consecutive 2 MiB pages) — ground truth %#x [%s]\n",
		uint64(res.RegionBase), res.RunSlots, uint64(wk.Base), verdict(res.RegionBase == wk.Base))
	fmt.Fprintf(a.out, "runtime: %.3g ms (paper: ~60 ms)\n", preset.CyclesToSeconds(res.TotalCycles)*1e3)
	return nil
}

func (a *app) runKVAS(preset *uarch.Preset, seed uint64) error {
	const window = 4096 // 2 MiB slots scanned at 4 KiB granularity
	m := machine.New(preset, seed)
	wk, err := winkernel.Boot(m, winkernel.Config{Seed: seed, KVAS: true, MaxSlot: window - 8})
	if err != nil {
		return fmt.Errorf("boot: %w", err)
	}
	p, err := core.NewProber(m, a.proberOptions())
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	fmt.Fprintf(a.out, "victim: %s, Windows 10 + KVAS (slide restricted to %d slots)\n\n", preset.Name, window)
	res, err := core.KVASBreak(p, window)
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	fmt.Fprintf(a.out, "KVAS region: %#x; kernel base %#x — ground truth %#x [%s]\n",
		uint64(res.KVASVA), uint64(res.Base), uint64(wk.Base), verdict(res.Base == wk.Base))
	fmt.Fprintf(a.out, "runtime: %.3g s over the window (full region extrapolates ×%d)\n",
		preset.CyclesToSeconds(res.TotalCycles), int(winkernel.Slots)/window)
	return nil
}

func (a *app) runBehavior(preset *uarch.Preset, seed uint64, duration float64) error {
	_, k, p, err := a.newVictim(preset, seed, linux.Config{})
	if err != nil {
		return err
	}
	mres := core.Modules(p, core.SizeTable(k.ProcModules()))
	targets, err := core.LocateTargets(mres, "bluetooth", "psmouse")
	if err != nil {
		return fmt.Errorf("locate: %w", err)
	}
	r := rng.New(seed + 1)
	bt := behavior.RandomTimeline(behavior.BluetoothAudio(), duration, 12, 18, r)
	ms := behavior.RandomTimeline(behavior.MouseMovement(), duration, 8, 6, r)
	drv, err := behavior.NewDriver(k, bt, ms)
	if err != nil {
		return fmt.Errorf("driver: %w", err)
	}
	spy := &core.BehaviorSpy{P: p, Targets: targets}
	traces, err := spy.Run(drv, duration)
	if err != nil {
		return fmt.Errorf("spy: %w", err)
	}
	for i, tr := range traces {
		s := &trace.Series{Name: tr.Module}
		for _, smp := range tr.Samples {
			s.Add(smp.TimeSec, smp.MinCycles)
		}
		plot := trace.NewPlot(fmt.Sprintf("%s TLB probe (fast = in use)", tr.Module), "time (s)", "cycles")
		plot.AddSeries(s, 'o')
		fmt.Fprintln(a.out, plot.Render())
		tl := []*behavior.Timeline{bt, ms}[i]
		fmt.Fprintf(a.out, "detection accuracy vs ground truth: %.1f%%\n\n", 100*tr.Accuracy(tl))
	}
	return nil
}

func (a *app) runSGX(preset *uarch.Preset, seed uint64, entropyBits int) error {
	m := machine.New(preset, seed)
	if _, err := linux.Boot(m, linux.Config{Seed: seed}); err != nil {
		return fmt.Errorf("boot: %w", err)
	}
	proc, err := userspace.Build(m, userspace.Config{Seed: seed, EntropyBits: entropyBits, HideLastRWPage: true})
	if err != nil {
		return fmt.Errorf("process: %w", err)
	}
	enc, err := sgx.Enter(m, sgx.RDTSC)
	if err != nil {
		return fmt.Errorf("enclave: %w", err)
	}
	defer enc.Exit()
	p, err := core.NewProber(m, a.proberOptions())
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	fmt.Fprintf(a.out, "attacker inside SGX enclave on %s; process entropy %d bits\n\n", preset.Name, entropyBits)

	base, probes, ok := core.ScanUntilMapped(p, userspace.ExeRegionBase, (1<<entropyBits)+1024)
	fmt.Fprintf(a.out, "exe base: %#x after %d probes [%s]\n", uint64(base), probes, verdict(ok && base == proc.Exe.Base))

	libStart := proc.Libs[0].Base - 16*paging.Page4K
	libEnd := proc.Libs[len(proc.Libs)-1].End() + 8*paging.Page4K
	scan := core.UserScan(p, libStart, libEnd)
	tab := &trace.Table{Header: []string{"region", "perm (Fig. 7 notation)", "pages"}}
	for _, rg := range scan.Regions {
		tab.AddRow(fmt.Sprintf("%#x-%#x", uint64(rg.Start), uint64(rg.End)), rg.Class.String(),
			fmt.Sprintf("%d", rg.Pages()))
	}
	fmt.Fprintln(a.out, tab.Render())
	found := core.FingerprintLibraries(scan.Regions, userspace.StandardLibraries())
	for name, addr := range found {
		fmt.Fprintf(a.out, "identified %-22s at %#x\n", name, uint64(addr))
	}
	fmt.Fprintf(a.out, "\nscan runtime: load %.3g s, store %.3g s (×%d extrapolation to 28-bit entropy)\n",
		preset.CyclesToSeconds(scan.LoadCycles), preset.CyclesToSeconds(scan.StoreCycles),
		1<<(28-entropyBits))
	return nil
}

func (a *app) runCloud(provider string, seed uint64) error {
	var prov core.CloudProvider
	switch provider {
	case "ec2":
		prov = core.AmazonEC2
	case "gce":
		prov = core.GoogleGCE
	case "azure":
		prov = core.MicrosoftAzure
	default:
		return fmt.Errorf("unknown provider %q", provider)
	}
	res, err := core.CloudBreak(prov, seed, core.CloudBreakOptions{
		AzureMaxSlot: 20000,
		Probe:        a.proberOptions(),
	})
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	sc := core.Scenario(prov)
	fmt.Fprintf(a.out, "provider: %s (%s)\n", prov, sc.Preset.Name)
	path := "page-table scan"
	if res.ViaTrampoline {
		path = fmt.Sprintf("KPTI trampoline (+%#x)", sc.Trampoline)
	}
	fmt.Fprintf(a.out, "kernel base: %#x via %s in %.3g ms\n",
		uint64(res.KernelBase), path, sc.Preset.CyclesToSeconds(res.BaseCycles)*1e3)
	if res.ModuleCycles > 0 {
		fmt.Fprintf(a.out, "modules: %d regions in %.3g ms\n",
			res.ModulesFound, sc.Preset.CyclesToSeconds(res.ModuleCycles)*1e3)
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}
