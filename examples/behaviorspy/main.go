// Behaviorspy: infer user behavior from kernel-module TLB state (§IV-E,
// Figure 6). A spy process samples the masked-load latency of the
// bluetooth and psmouse modules' leading pages once per second: while the
// user streams Bluetooth audio or moves the mouse, the kernel executes the
// driver and its translations stay TLB-resident, so the spy's probes run
// fast.
//
// Run: go run ./examples/behaviorspy
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func main() {
	m := machine.New(uarch.IceLake1065G7(), 11)
	kernel, err := linux.Boot(m, linux.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	// Both the module-locating sweep AND the 1 Hz spy phase run sharded:
	// the spy's time axis is chunked across the same pooled worker
	// replicas, each replaying its chunk's victim events privately
	// (behavior.Driver.ReplayWindow), with output bit-identical to the
	// sequential loop at any worker count.
	prober, err := core.NewProber(m, core.Options{Workers: runtime.NumCPU(), Pool: core.NewScanPool()})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: find the target modules with the module attack — both have
	// unique sizes, so they classify by name.
	located := core.Modules(prober, core.SizeTable(kernel.ProcModules()))
	targets, err := core.LocateTargets(located, "bluetooth", "psmouse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("targets located: bluetooth %#x, psmouse %#x\n\n",
		uint64(targets[0].Base), uint64(targets[1].Base))

	// Phase 2: the victim's day — audio in bursts, mouse in bursts.
	r := rng.New(99)
	audio := behavior.RandomTimeline(behavior.BluetoothAudio(), 100, 12, 18, r)
	mouse := behavior.RandomTimeline(behavior.MouseMovement(), 100, 8, 6, r)
	driver, err := behavior.NewDriver(kernel, audio, mouse)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 3: spy at 1 Hz for 100 s (the Figure 6 parameters), as two
	// consecutive windows on one victim timeline — the same stateful-window
	// shape the scand service schedules (one window per job, the session
	// carrying the timeline position between jobs via machine snapshots).
	spy := &core.BehaviorSpy{P: prober, Targets: targets, PagesPerModule: 10, TickSec: 1}
	firstHalf, err := spy.RunWindow(driver, 0, 50)
	if err != nil {
		log.Fatal(err)
	}
	secondHalf, err := spy.RunWindow(driver, 50, 100)
	if err != nil {
		log.Fatal(err)
	}
	traces := make([]core.SpyTrace, len(firstHalf))
	for i := range firstHalf {
		traces[i] = core.SpyTrace{
			Module:  firstHalf[i].Module,
			Samples: append(firstHalf[i].Samples, secondHalf[i].Samples...),
		}
	}

	truth := []*behavior.Timeline{audio, mouse}
	for i, tr := range traces {
		s := &trace.Series{Name: tr.Module}
		for _, smp := range tr.Samples {
			s.Add(smp.TimeSec, smp.MinCycles)
		}
		plot := trace.NewPlot(
			fmt.Sprintf("Fig. 6 — %s (low = TLB hit = in use)", truth[i].Activity.Name),
			"elapsed time (s)", "access time (cycles)")
		plot.AddSeries(s, 'o')
		fmt.Println(plot.Render())
		fmt.Printf("activity windows detected with %.1f%% accuracy\n\n", 100*tr.Accuracy(truth[i]))
	}
}
