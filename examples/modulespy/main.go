// Modulespy: enumerate and identify loaded kernel modules (§IV-C, Figure
// 5). The attack probes the 64 MiB module region at 4 KiB granularity,
// segments the mapped runs (modules are separated by unmapped guard
// pages), and classifies each run's size against the attacker-readable
// /proc/modules size table. Modules with a unique size — 19 of the 125 on
// the paper's Ice Lake machine — are identified by name.
//
// Run: go run ./examples/modulespy
package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/uarch"
)

func main() {
	m := machine.New(uarch.IceLake1065G7(), 7)
	kernel, err := linux.Boot(m, linux.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// The 16384-page region sweep shards across pooled worker replicas;
	// results are bit-identical to a sequential scan.
	prober, err := core.NewProber(m, core.Options{Workers: runtime.NumCPU(), Pool: core.NewScanPool()})
	if err != nil {
		log.Fatal(err)
	}

	// The size→name table comes from /proc/modules — world-readable.
	table := core.SizeTable(kernel.ProcModules())
	res := core.Modules(prober, table)
	score := core.ScoreModules(res, kernel.Modules, table)

	fmt.Printf("module region scan: %d probes, %.2f ms probing (paper: 8.42 ms)\n",
		len(res.PageMapped), m.Preset.CyclesToSeconds(res.ProbeCycles)*1e3)
	fmt.Printf("detected %d regions; per-module detection %.2f%% (paper: 99.72%%)\n\n",
		len(res.Regions), 100*score.DetectionAccuracy())

	// Figure 5's five example modules.
	fmt.Println("Figure 5 examples:")
	for _, name := range []string{"autofs4", "x_tables", "video", "mac_hid", "pinctrl_icelake"} {
		lm, _ := kernel.Module(name)
		for _, r := range res.Regions {
			if r.Base != lm.Base {
				continue
			}
			off := (uint64(r.Base) - uint64(linux.ModuleRegionBase)) >> 12
			tag := "identified uniquely"
			if !r.Unique() {
				tag = "size collision — candidates " + strings.Join(r.Names, "|")
			}
			fmt.Printf("  offset %5d  size %#7x  %-16s → %s\n", off, r.Size, name, tag)
		}
	}

	fmt.Printf("\nuniquely-sized modules correctly named: %d/%d\n", score.Identified, score.UniqueSize)
}
