// Cloudbreak: KASLR breaks on the three public-cloud guests of §IV-H —
// Amazon EC2 (Meltdown-vulnerable Xeon with KPTI: base via the trampoline
// at +0xe00000), Google GCE (direct page-table scan) and Microsoft Azure
// (Windows guest, 18-bit region scan). Virtualization shows up in the
// model as nested-paging walk overhead and fatter noise tails; the attack
// code is unchanged from the bare-metal examples — the practicality point
// the paper makes.
//
// Run: go run ./examples/cloudbreak
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
)

func main() {
	// One session pool across all three providers: each guest's sweeps
	// rebind the same worker replicas, even as the preset changes from
	// Xeon to Xeon — exactly how a scanning service amortizes clones.
	pool := core.NewScanPool()

	for _, prov := range []core.CloudProvider{core.AmazonEC2, core.GoogleGCE, core.MicrosoftAzure} {
		sc := core.Scenario(prov)
		fmt.Printf("=== %s — %s\n", prov, sc.Preset.Name)

		res, err := core.CloudBreak(prov, 777, core.CloudBreakOptions{
			// The Azure/Windows scan is bounded for example runtime; the
			// full 2^18-slot scan is the §IV-G/H bench.
			AzureMaxSlot: 20000,
			Probe:        core.Options{Workers: runtime.NumCPU(), Pool: pool},
		})
		if err != nil {
			log.Fatalf("%s: %v", prov, err)
		}

		path := "page-table attack over 512 slots"
		if res.ViaTrampoline {
			path = fmt.Sprintf("KPTI trampoline at base+%#x", sc.Trampoline)
		}
		if sc.Windows {
			path = "run-length scan over the 2 MiB-slot region"
		}
		fmt.Printf("  kernel base %#x via %s\n", uint64(res.KernelBase), path)
		fmt.Printf("  base runtime: %.3g ms\n", sc.Preset.CyclesToSeconds(res.BaseCycles)*1e3)
		if res.ModuleCycles > 0 {
			fmt.Printf("  modules: %d regions in %.3g ms\n",
				res.ModulesFound, sc.Preset.CyclesToSeconds(res.ModuleCycles)*1e3)
		}
		fmt.Println()
	}
	fmt.Println("paper (§IV-H): EC2 0.03 ms base / 1.14 ms modules; GCE 0.08 ms / 2.7 ms; Azure 2.06 s")
}
