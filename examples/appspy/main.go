// Appspy: application fingerprinting via driver-module TLB state — the
// extension §IV-E predicts ("fingerprint applications or websites"). Each
// candidate application exercises a characteristic set of kernel modules
// (a music player keeps bluetooth busy; a shooter drives psmouse+usbhid);
// the spy watches the modules' TLB residency and classifies the foreground
// app by the active set.
//
// Run: go run ./examples/appspy
package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/uarch"
)

func main() {
	profiles := core.StandardAppProfiles()
	fmt.Println("candidate applications:")
	for _, prof := range profiles {
		mods := strings.Join(prof.Modules, ", ")
		if mods == "" {
			mods = "(none)"
		}
		fmt.Printf("  %-14s drives: %s\n", prof.Name, mods)
	}
	fmt.Println()

	// One session pool for the whole run: each candidate app boots a fresh
	// victim, but the module-region sweeps all reuse the same worker
	// replicas via machine.Rebind instead of re-cloning them per victim.
	pool := core.NewScanPool()

	correct := 0
	for _, truth := range profiles {
		m := machine.New(uarch.IceLake1065G7(), 21)
		kernel, err := linux.Boot(m, linux.Config{Seed: 21})
		if err != nil {
			log.Fatal(err)
		}
		prober, err := core.NewProber(m, core.Options{Workers: runtime.NumCPU(), Pool: pool})
		if err != nil {
			log.Fatal(err)
		}

		// Locate the watched modules with the module attack (every module
		// the profiles reference has a unique size on this victim).
		located := core.Modules(prober, core.SizeTable(kernel.ProcModules()))
		watch := make(map[string]linux.LoadedModule)
		for _, prof := range profiles {
			for _, mn := range prof.Modules {
				name := mn
				if i := strings.IndexByte(mn, ':'); i >= 0 {
					name = mn[i+1:]
				}
				targets, err := core.LocateTargets(located, name)
				if err != nil {
					log.Fatalf("locating %s: %v", name, err)
				}
				watch[name] = targets[0]
			}
		}

		// The victim runs the true app for a minute; the spy classifies.
		drv, err := behavior.NewDriver(kernel, core.TimelinesFor(truth, 60)...)
		if err != nil {
			log.Fatal(err)
		}
		spy := &core.AppFingerprinter{P: prober, Watch: watch, Profiles: profiles, Ticks: 8}
		got, err := spy.Classify(drv)
		verdict := "WRONG"
		if err == nil && got.Name == truth.Name {
			verdict = "correct"
			correct++
		}
		gotName := "(no match)"
		if err == nil {
			gotName = got.Name
		}
		fmt.Printf("victim runs %-14s → spy says %-14s [%s]\n", truth.Name, gotName, verdict)
	}
	fmt.Printf("\n%d/%d applications fingerprinted correctly\n", correct, len(profiles))
}
