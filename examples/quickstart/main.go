// Quickstart: break Linux KASLR with the AVX timing side channel in a few
// lines — the paper's headline result (§IV-B, Figure 4, Table I row 1).
//
// The flow every attack in this library follows:
//
//  1. build a victim machine (CPU preset + OS layout),
//  2. calibrate a prober (the §IV-B dirty-store threshold trick),
//  3. probe with fault-suppressed masked loads and read the timings.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/uarch"
)

func main() {
	// The victim: a Meltdown-resistant Alder Lake desktop running Linux
	// with KASLR, exactly the Figure 4 setup. The seed randomizes the
	// boot (KASLR slot, module placement).
	m := machine.New(uarch.AlderLake12400F(), 2026)
	kernel, err := linux.Boot(m, linux.Config{Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}

	// The attacker: an unprivileged process. NewProber mmaps a few of its
	// own pages and times first-stores to calibrate the mapped/unmapped
	// decision threshold — no kernel access needed. The session pool holds
	// the scan engine's worker replicas: this one-shot attack barely needs
	// it, but it is the same two-line setup every long-running session
	// (cmd/scand) uses, and output is bit-identical at any worker count.
	pool := core.NewScanPool()
	prober, err := core.NewProber(m, core.Options{Workers: runtime.NumCPU(), Pool: pool})
	if err != nil {
		log.Fatal(err)
	}

	// The attack: probe all 512 candidate 2 MiB slots with double-executed
	// masked loads (all-zero masks — never a page fault) and take the
	// first fast slot.
	res, err := core.KernelBase(prober)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recovered kernel base: %#x (KASLR slide %#x)\n", uint64(res.Base), res.Slide)
	fmt.Printf("ground truth:          %#x\n", uint64(kernel.Base))
	fmt.Printf("probing runtime:       %.0f µs (paper: 67 µs)\n", res.ProbeSeconds(m.Preset)*1e6)
	fmt.Printf("total runtime:         %.2f ms (paper: 0.28 ms)\n", res.TotalSeconds(m.Preset)*1e3)
	fmt.Printf("page faults delivered: %d (fault suppression — property P1)\n", prober.Faults())

	if res.Base == kernel.Base {
		fmt.Println("\nKASLR defeated.")
	} else {
		fmt.Println("\nattack missed — rerun with another seed (expected ~0.4% of boots).")
	}
}
