// Sgxbreak: fine-grained user-space ASLR break from inside an SGX enclave
// (§IV-F, Figure 7). The enclave-confined attacker linearly probes the
// process's address space with fault-suppressed masked loads to find the
// executable, then runs the fused load+store permission scan and
// identifies libc by its section-size signature — including rw- pages that
// never appear in /proc/PID/maps.
//
// The paper's 28-bit scan takes 51 s (load) + 44 s (store) on the Ice Lake
// part; this example scales the entropy down (flag -entropy) and prints
// the extrapolation.
//
// Run: go run ./examples/sgxbreak [-entropy 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/sgx"
	"repro/internal/uarch"
	"repro/internal/userspace"
)

func main() {
	entropy := flag.Int("entropy", 16, "user-ASLR entropy bits (paper: 28)")
	flag.Parse()

	m := machine.New(uarch.IceLake1065G7(), 13)
	if _, err := linux.Boot(m, linux.Config{Seed: 13}); err != nil {
		log.Fatal(err)
	}
	proc, err := userspace.Build(m, userspace.Config{
		Seed:           13,
		EntropyBits:    *entropy,
		HideLastRWPage: true, // the /proc-invisible pages of Fig. 7
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("victim process /proc/PID/maps (what the OS admits to):")
	fmt.Println(proc.RenderMaps())

	// Enter the enclave: probes now pay EPCM overhead, and timing needs
	// the SGX2 RDTSC.
	enclave, err := sgx.Enter(m, sgx.RDTSC)
	if err != nil {
		log.Fatal(err)
	}
	defer enclave.Exit()

	// Both big sweeps — the linear base search and the fused permission
	// scan — shard across pooled worker replicas (bit-identical to the
	// sequential scan at any worker count).
	prober, err := core.NewProber(m, core.Options{Workers: runtime.NumCPU(), Pool: core.NewScanPool()})
	if err != nil {
		log.Fatal(err)
	}

	// Find the executable by linear probing from the region base.
	base, probes, ok := core.ScanUntilMapped(prober, userspace.ExeRegionBase, (1<<*entropy)+1024)
	if !ok {
		log.Fatal("executable not found")
	}
	fmt.Printf("exe code base found: %#x after %d probes (truth %#x)\n\n",
		uint64(base), probes, uint64(proc.Exe.Base))

	// Recover the section map of the library area with the fused scan.
	libStart := proc.Libs[0].Base - 16*paging.Page4K
	libEnd := proc.Libs[len(proc.Libs)-1].End() + 8*paging.Page4K
	scan := core.UserScan(prober, libStart, libEnd)

	fmt.Println("recovered map (attack view, Fig. 7 notation):")
	for _, rg := range scan.Regions {
		fmt.Printf("  %#x-%#x %-12s %4d pages\n", uint64(rg.Start), uint64(rg.End), rg.Class, rg.Pages())
	}

	found := core.FingerprintLibraries(scan.Regions, userspace.StandardLibraries())
	fmt.Println("\nlibraries identified by section-size signature:")
	for _, lib := range proc.Libs {
		if addr, ok := found[lib.Image.Name]; ok {
			mark := "correct"
			if addr != lib.Base {
				mark = "WRONG"
			}
			fmt.Printf("  %-22s %#x [%s]\n", lib.Image.Name, uint64(addr), mark)
		}
	}

	fmt.Printf("\nscan runtime at %d bits: load %.3g s, store %.3g s\n",
		*entropy, m.Preset.CyclesToSeconds(scan.LoadCycles), m.Preset.CyclesToSeconds(scan.StoreCycles))

	// Full-scale projection: the paper probes the whole 28-bit range
	// twice; almost all of it is unmapped, so the per-probe cost on
	// unmapped space is what scales.
	t0 := m.RDTSC()
	const calib = 2048
	for i := 0; i < calib; i++ {
		prober.ProbeMapped(0x600000000000 + paging.VirtAddr(i*paging.Page4K))
	}
	perLoad := float64(m.RDTSC()-t0) / calib
	t0 = m.RDTSC()
	for i := 0; i < calib; i++ {
		prober.ProbeMappedStore(0x600000000000 + paging.VirtAddr(i*paging.Page4K))
	}
	perStore := float64(m.RDTSC()-t0) / calib
	full := float64(uint64(1) << 28)
	fmt.Printf("projected full 28-bit scan: ~%.0f s load / ~%.0f s store (paper: 51 / 44 s)\n",
		m.Preset.CyclesToSeconds(uint64(perLoad*full)),
		m.Preset.CyclesToSeconds(uint64(perStore*full)))
}
