// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (the per-experiment index is in DESIGN.md, the measured-vs-
// paper record in EXPERIMENTS.md).
//
// Two kinds of numbers come out of each bench:
//
//   - the usual ns/op, which is the *simulator's* host cost (meaningless
//     for the paper comparison), and
//   - custom metrics (sim_ms, accuracy_pct, ...) carrying the *simulated*
//     runtimes and accuracies that correspond to the paper's reported
//     values.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/avx"
	"repro/internal/baseline"
	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/service"
	"repro/internal/uarch"
	"repro/internal/userspace"
)

// benchScale keeps the full bench sweep within a few minutes while
// preserving every experiment's structure; EXPERIMENTS.md records the
// extrapolations for the scaled ones.
func benchScale() experiments.Scale {
	sc := experiments.DefaultScale()
	sc.TrialsBase = 300
	sc.TrialsModules = 12
	sc.UserEntropyBits = 15
	sc.AzureMaxSlot = 20000
	sc.KVASMaxSlot = 2048
	return sc
}

func reportShape(b *testing.B, rep experiments.Report) {
	b.Helper()
	if !rep.OK {
		b.Fatalf("%s shape mismatch: %s", rep.ID, rep.Measured)
	}
	b.Logf("%s — paper: %s — measured: %s", rep.ID, rep.PaperClaim, rep.Measured)
}

// BenchmarkFig1FaultSuppression regenerates Figure 1's fault/suppression
// matrix.
func BenchmarkFig1FaultSuppression(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig1FaultSuppression(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig2PageTypeTiming regenerates Figure 2 (per-page-class timing
// and PMCs on the i7-1065G7).
func BenchmarkFig2PageTypeTiming(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig2PageTypes(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig2bPageTableLevels regenerates the §III-B walk-termination-
// level experiment (PD < PDPT < PML4 < PT on the i9-9900).
func BenchmarkFig2bPageTableLevels(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig2bPageTableLevels(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig2cTLBState regenerates the §III-B TLB-state experiment
// (381 vs 147 cycles).
func BenchmarkFig2cTLBState(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig2cTLBState(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig3Permissions regenerates Figure 3 (load/store timing by page
// permission).
func BenchmarkFig3Permissions(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig3Permissions(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig3bLoadVsStore regenerates the §III-B property-6 comparison.
func BenchmarkFig3bLoadVsStore(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig3bLoadVsStore(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig4KernelBaseScan regenerates Figure 4 (the 512-offset Alder
// Lake scan) and reports the simulated probing/total runtimes next to the
// paper's 67 µs / 0.28 ms.
func BenchmarkFig4KernelBaseScan(b *testing.B) {
	preset := uarch.AlderLake12400F()
	var probeUS, totalMS float64
	ok := 0
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		m := machine.New(preset, seed)
		k, err := linux.Boot(m, linux.Config{Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.NewProber(m, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.KernelBase(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Base == k.Base {
			ok++
		}
		probeUS += res.ProbeSeconds(preset) * 1e6
		totalMS += res.TotalSeconds(preset) * 1e3
	}
	b.ReportMetric(probeUS/float64(b.N), "sim_probe_us")
	b.ReportMetric(totalMS/float64(b.N), "sim_total_ms")
	b.ReportMetric(100*float64(ok)/float64(b.N), "accuracy_pct")
}

// BenchmarkTable1DerandomizeKASLR regenerates Table I (runtime + accuracy
// for base and modules on the three CPUs).
func BenchmarkTable1DerandomizeKASLR(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Table1(sc)
	}
	reportShape(b, rep)
	b.Logf("\n%s", rep.Text)
}

// BenchmarkFig5ModuleIdent regenerates Figure 5 (module detection and
// size classification on the i7-1065G7).
func BenchmarkFig5ModuleIdent(b *testing.B) {
	preset := uarch.IceLake1065G7()
	var probeMS, acc float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 5
		m := machine.New(preset, seed)
		k, err := linux.Boot(m, linux.Config{Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.NewProber(m, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		table := core.SizeTable(k.ProcModules())
		res := core.Modules(p, table)
		score := core.ScoreModules(res, k.Modules, table)
		probeMS += preset.CyclesToSeconds(res.ProbeCycles) * 1e3
		acc += score.DetectionAccuracy()
	}
	b.ReportMetric(probeMS/float64(b.N), "sim_probe_ms")
	b.ReportMetric(100*acc/float64(b.N), "accuracy_pct")
}

// BenchmarkSec4dKPTI regenerates the §IV-D KPTI trampoline break.
func BenchmarkSec4dKPTI(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Sec4dKPTI(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig6BehaviorSpy regenerates Figure 6 (Bluetooth/mouse
// inference over 100 s at 1 Hz).
func BenchmarkFig6BehaviorSpy(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig6BehaviorSpy(sc)
	}
	reportShape(b, rep)
}

// BenchmarkFig7SGXFineGrained regenerates the §IV-F in-enclave scan at the
// bench entropy (extrapolation in the report text).
func BenchmarkFig7SGXFineGrained(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Fig7SGXFineGrained(sc)
	}
	reportShape(b, rep)
}

// BenchmarkSec4gWindows regenerates §IV-G (the full 2^18-slot Windows scan
// plus the windowed KVAS scan).
func BenchmarkSec4gWindows(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Sec4gWindows(sc)
	}
	reportShape(b, rep)
}

// BenchmarkSec4hCloud regenerates §IV-H (EC2, GCE, Azure).
func BenchmarkSec4hCloud(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Sec4hCloud(sc)
	}
	reportShape(b, rep)
}

// BenchmarkSec5Defenses regenerates the §V countermeasure evaluation.
func BenchmarkSec5Defenses(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.Sec5Defenses(sc)
	}
	reportShape(b, rep)
}

// BenchmarkBaselineComparison contrasts the AVX attack with the prefetch
// and TSX baselines on the same machines.
func BenchmarkBaselineComparison(b *testing.B) {
	sc := benchScale()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = 0x5eed + uint64(i)
		rep = experiments.BaselineComparison(sc)
	}
	reportShape(b, rep)
}

// --- Micro-benchmarks of the simulator itself (host cost per probe) and
// --- ablations of the attack's design choices.

// BenchmarkScan measures the sharded scan engine on the full module-region
// sweep (16384 pages — the heaviest recurring scan in Table I) across
// worker counts. The workers=1 case is the sequential baseline; the
// speedup at 8 workers is the engine's headline number (wall-clock scaling
// is bounded by host cores, so expect ~1× in a single-core container and
// ~Nx on an N-core host — output is bit-identical either way).
func BenchmarkScan(b *testing.B) {
	pages := int(linux.ModuleRegionSize / paging.Page4K)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := machine.New(uarch.AlderLake12400F(), 1)
			if _, err := linux.Boot(m, linux.Config{Seed: 1}); err != nil {
				b.Fatal(err)
			}
			p, err := core.NewProber(m, core.Options{Workers: workers, Pool: core.NewScanPool()})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(pages)) // pages probed per op, for MB/s-style throughput
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
			}
			b.ReportMetric(float64(pages)*float64(b.N)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}

// benchUserScan drives one §IV-F scan variant over a libc-sized window,
// with a session pool so steady-state scans reuse their worker replicas.
// sim_ms is the simulated attacker runtime per scan (the paper's 51 s +
// 44 s passes are over 2^28 pages; this window is ~0.5 k pages).
func benchUserScan(b *testing.B, workers int, scan func(*core.Prober, paging.VirtAddr, paging.VirtAddr) core.UserScanResult) {
	m := machine.New(uarch.IceLake1065G7(), 900)
	if _, err := linux.Boot(m, linux.Config{Seed: 900}); err != nil {
		b.Fatal(err)
	}
	proc, err := userspace.Build(m, userspace.Config{Seed: 900, EntropyBits: 10, HideLastRWPage: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProber(m, core.Options{Workers: workers, Pool: core.NewScanPool()})
	if err != nil {
		b.Fatal(err)
	}
	libc := proc.Libs[0]
	lo, hi := libc.Base-4*paging.Page4K, libc.End()+8*paging.Page4K
	pages := int(uint64(hi-lo) >> 12)
	b.SetBytes(int64(pages))
	b.ResetTimer()
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		res := scan(p, lo, hi)
		simCycles += res.TotalCycles
	}
	b.ReportMetric(m.Preset.CyclesToSeconds(simCycles/uint64(b.N))*1e3, "sim_ms")
	b.ReportMetric(float64(pages)*float64(b.N)/b.Elapsed().Seconds(), "probes/s")
}

// BenchmarkUserScan measures the legacy two-pass §IV-F user scan
// (masked-load sweep + masked-store classification sweep) — the baseline
// the fused scan is judged against, kept under its historical name so the
// BENCH_scan.json trajectory stays comparable across PRs.
func BenchmarkUserScan(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchUserScan(b, workers, core.UserScanTwoPass)
		})
	}
}

// BenchmarkUserScanFused measures the fused §IV-F user scan (the UserScan
// default): one engine sweep whose chunks run the load and store probes
// together. Compare host ms/op and sim_ms against BenchmarkUserScan —
// fusion halves the sweep setup and lets store warm-ups reuse the load
// probes' translations.
func BenchmarkUserScanFused(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchUserScan(b, workers, core.UserScan)
		})
	}
}

// BenchmarkBehaviorSpy measures the engine-based §IV-E behavior spy: a
// 100-tick (1 Hz, Figure 6 shape) window against the bluetooth+psmouse
// victim, time-sharded across workers with a session pool. ticks/s is the
// spy-tick throughput (each tick = driver replay + 2×10 page probes +
// eviction); sim_ms is the simulated attacker time per window.
func BenchmarkBehaviorSpy(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := machine.New(uarch.IceLake1065G7(), 901)
			k, err := linux.Boot(m, linux.Config{Seed: 901})
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.NewProber(m, core.Options{Workers: workers, Pool: core.NewScanPool()})
			if err != nil {
				b.Fatal(err)
			}
			targets, err := core.LocateTargets(core.Modules(p, core.SizeTable(k.ProcModules())), "bluetooth", "psmouse")
			if err != nil {
				b.Fatal(err)
			}
			bt := behavior.FixedTimeline(behavior.BluetoothAudio(), behavior.Interval{Start: 10, End: 40})
			ms := behavior.FixedTimeline(behavior.MouseMovement(), behavior.Interval{Start: 50, End: 70})
			drv, err := behavior.NewDriver(k, bt, ms)
			if err != nil {
				b.Fatal(err)
			}
			spy := &core.BehaviorSpy{P: p, Targets: targets, PagesPerModule: 10, TickSec: 1}
			const ticks = 100
			b.ResetTimer()
			t0 := m.RDTSC()
			for i := 0; i < b.N; i++ {
				if _, err := spy.RunWindow(drv, 0, ticks); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Preset.CyclesToSeconds((m.RDTSC()-t0)/uint64(b.N))*1e3, "sim_ms")
			b.ReportMetric(float64(ticks)*float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
		})
	}
}

// BenchmarkTermSweep measures the AMD walk-termination-level sweep (P3)
// over the 512 kernel text slots — the sweep behind Table I's Zen 3 rows —
// on the sharded engine with a session pool.
func BenchmarkTermSweep(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := machine.New(uarch.Zen3_5600X(), 300)
			if _, err := linux.Boot(m, linux.Config{Seed: 300}); err != nil {
				b.Fatal(err)
			}
			p, err := core.NewProber(m, core.Options{Workers: workers, Pool: core.NewScanPool()})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(linux.TextSlots))
			b.ResetTimer()
			t0 := m.RDTSC()
			for i := 0; i < b.N; i++ {
				p.ScanTermLevel(linux.TextRegionBase, linux.TextSlots, paging.Page2M,
					core.AMDTermSamples, p.PTTermThreshold())
			}
			b.ReportMetric(m.Preset.CyclesToSeconds((m.RDTSC()-t0)/uint64(b.N))*1e3, "sim_ms")
			b.ReportMetric(float64(linux.TextSlots)*float64(b.N)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}

// BenchmarkProbeMapped measures the host cost of one double-execution
// probe (the simulator's hot path).
func BenchmarkProbeMapped(b *testing.B) {
	m := machine.New(uarch.AlderLake12400F(), 1)
	if _, err := linux.Boot(m, linux.Config{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ProbeMapped(linux.TextRegionBase + paging.VirtAddr(uint64(i%512)<<21))
	}
}

// BenchmarkProbeBatch measures the batched double-execution probe
// (Prober.ProbeBatch over a 512-page chunk) — the per-probe host cost the
// batched sweep pipeline pays, to compare against BenchmarkProbeMapped's
// one-call-per-VA cost.
func BenchmarkProbeBatch(b *testing.B) {
	m := machine.New(uarch.AlderLake12400F(), 1)
	if _, err := linux.Boot(m, linux.Config{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 512
	cycles := make([]float64, chunk)
	fast := make([]bool, chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i += chunk {
		p.ProbeBatch(linux.ModuleRegionBase, chunk, paging.Page4K, cycles, fast)
	}
}

// BenchmarkExecMasked measures one simulated masked load.
func BenchmarkExecMasked(b *testing.B) {
	m := machine.New(uarch.IceLake1065G7(), 1)
	if _, err := linux.Boot(m, linux.Config{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	op := avx.MaskedLoad(linux.TextRegionBase, avx.ZeroMask)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExecMasked(op)
	}
}

// BenchmarkAblationSingleVsDoubleExec quantifies why the attack measures
// the *second* execution: single-shot probes of mapped kernel pages pay
// the walk and lose the TLB-hit separation.
func BenchmarkAblationSingleVsDoubleExec(b *testing.B) {
	preset := uarch.AlderLake12400F()
	sep := func(double bool) float64 {
		m := machine.New(preset, 7)
		k, err := linux.Boot(m, linux.Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		var mapped, unmapped float64
		for i := 0; i < 200; i++ {
			m.EvictTLB()
			if double {
				m.ExecMasked(avx.MaskedLoad(k.Base, avx.ZeroMask))
			}
			t1, _ := m.Measure(avx.MaskedLoad(k.Base, avx.ZeroMask))
			mapped += t1
			t2, _ := m.Measure(avx.MaskedLoad(k.Base-8*paging.Page2M, avx.ZeroMask))
			unmapped += t2
		}
		return (unmapped - mapped) / 200
	}
	var s1, s2 float64
	for i := 0; i < b.N; i++ {
		s1 = sep(false)
		s2 = sep(true)
	}
	b.ReportMetric(s1, "sep_single_cyc")
	b.ReportMetric(s2, "sep_double_cyc")
	if s2 <= s1 {
		b.Fatal("double-execution probing should separate classes better")
	}
}

// BenchmarkAblationMinOfK quantifies the min-of-k estimator's effect on
// base-attack accuracy under the same noise.
func BenchmarkAblationMinOfK(b *testing.B) {
	preset := uarch.AlderLake12400F()
	run := func(samples, trials int) float64 {
		ok := 0
		for t := 0; t < trials; t++ {
			seed := uint64(t)*13 + 5
			m := machine.New(preset, seed)
			k, err := linux.Boot(m, linux.Config{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.NewProber(m, core.Options{ProbeSamples: samples})
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.KernelBase(p)
			if err == nil && res.Base == k.Base {
				ok++
			}
		}
		return 100 * float64(ok) / float64(trials)
	}
	var acc1, acc3 float64
	for i := 0; i < b.N; i++ {
		acc1 = run(1, 60)
		acc3 = run(3, 60)
	}
	b.ReportMetric(acc1, "acc_k1_pct")
	b.ReportMetric(acc3, "acc_k3_pct")
}

// BenchmarkAblationPSC contrasts probe cost with and without the paging-
// structure caches (a simulator design choice DESIGN.md calls out).
func BenchmarkAblationPSC(b *testing.B) {
	preset := uarch.Zen3_5600X()
	cost := func(psc bool) float64 {
		m := machine.New(preset, 3)
		k, err := linux.Boot(m, linux.Config{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		m.PSC.Enabled = psc
		var sum float64
		for i := 0; i < 500; i++ {
			// Flush the TLB and the PTE lines but leave the PSC intact:
			// a real attacker sweep would displace the PSC too, so this
			// isolates the PSC's contribution (skipped upper-level line
			// fetches) as a simulator ablation, not an attack variant.
			m.TLB.Flush(false)
			m.PTELines.Flush()
			r := m.ExecMasked(avx.MaskedLoad(k.Base, avx.ZeroMask))
			sum += r.Cycles
		}
		return sum / 500
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = cost(true)
		without = cost(false)
	}
	b.ReportMetric(with, "walk_with_psc_cyc")
	b.ReportMetric(without, "walk_no_psc_cyc")
}

// BenchmarkAblationEvictionQuality contrasts full-flush vs targeted
// eviction on the AMD probing cost (Table I's AMD runtime driver).
func BenchmarkAblationEvictionQuality(b *testing.B) {
	preset := uarch.Zen3_5600X()
	m := machine.New(preset, 9)
	k, err := linux.Boot(m, linux.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var fullCost, targetedCost float64
	for i := 0; i < b.N; i++ {
		t0 := m.RDTSC()
		for j := 0; j < 100; j++ {
			m.EvictTLB()
			m.EvictPTELines()
			m.ExecMasked(avx.MaskedLoad(k.Base, avx.ZeroMask))
		}
		fullCost = float64(m.RDTSC()-t0) / 100
		t0 = m.RDTSC()
		for j := 0; j < 100; j++ {
			m.EvictTranslation(k.Base)
			m.ExecMasked(avx.MaskedLoad(k.Base, avx.ZeroMask))
		}
		targetedCost = float64(m.RDTSC()-t0) / 100
	}
	b.ReportMetric(fullCost, "full_evict_cyc")
	b.ReportMetric(targetedCost, "targeted_evict_cyc")
	if targetedCost >= fullCost {
		b.Fatal("targeted eviction should be cheaper than full sweeps")
	}
}

// BenchmarkAblationEstimator contrasts the paper's single-sample min
// estimator with the robust trimmed-mean/two-sided configuration under
// heavy jitter (σ=4 cycles ≈ a third of the class gap): the paper config
// collapses, the robust config holds.
func BenchmarkAblationEstimator(b *testing.B) {
	preset := uarch.AlderLake12400F()
	preset.NoiseSigma = 4.0
	run := func(opt core.Options, trials int) float64 {
		ok := 0
		for t := 0; t < trials; t++ {
			seed := uint64(t)*7 + 31
			m := machine.New(preset, seed)
			k, err := linux.Boot(m, linux.Config{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.NewProber(m, opt)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.KernelBase(p)
			if err == nil && res.Base == k.Base {
				ok++
			}
		}
		return 100 * float64(ok) / float64(trials)
	}
	var paperAcc, robustAcc float64
	for i := 0; i < b.N; i++ {
		paperAcc = run(core.Options{}, 25)
		robustAcc = run(core.Options{ProbeSamples: 16, Estimator: core.EstTrimmedMean, TwoSided: true}, 25)
	}
	b.ReportMetric(paperAcc, "paper_cfg_acc_pct")
	b.ReportMetric(robustAcc, "robust_cfg_acc_pct")
	if robustAcc < paperAcc {
		b.Fatal("robust estimator should win under heavy jitter")
	}
}

// BenchmarkAblationRerandPeriod sweeps the re-randomization period against
// the attack runtime (the §V-A mitigation's cost driver): the exploitation
// window closes only when the period approaches the sub-millisecond attack
// runtime.
func BenchmarkAblationRerandPeriod(b *testing.B) {
	periods := []float64{1, 0.1, 0.01, 0.001, 0.0001}
	var attackSec float64
	var crossover float64
	for i := 0; i < b.N; i++ {
		points, a, err := defense.RerandomizationSweep(uarch.AlderLake12400F(), 5, periods)
		if err != nil {
			b.Fatal(err)
		}
		attackSec = a
		crossover = 0
		for _, pt := range points {
			if pt.Exploitable {
				crossover = pt.PeriodSec
			}
		}
	}
	b.ReportMetric(attackSec*1e6, "attack_us")
	b.ReportMetric(crossover*1e6, "min_exploitable_period_us")
}

// BenchmarkDefenseMatrix measures the defense-aware scenario matrix
// through the service scheduler: one pass submits every vendor × defense
// evaluation of service.DefenseMatrix (FLARE, FGKASLR, re-randomization +
// sweeps, masked-op restriction) and waits for all of them. jobs/s is the
// scheduler-level countermeasure-evaluation throughput; session and
// calibration reuse across b.N passes is the steady-state the daemon sees.
func BenchmarkDefenseMatrix(b *testing.B) {
	s := service.New(service.Config{Executors: 2, ScanWorkers: 2, QueueDepth: 64})
	defer s.Drain()
	matrix := service.DefenseMatrix()
	jobs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitted := make([]*service.Job, 0, len(matrix))
		for mi, spec := range matrix {
			spec.Seed = uint64(1 + mi%4)
			j, err := s.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			submitted = append(submitted, j)
		}
		for _, j := range submitted {
			res, err := s.Wait(j)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Correct {
				b.Fatalf("defense %s on %s: incorrect result", j.Spec.Defense, j.Spec.CPU)
			}
		}
		jobs += len(submitted)
	}
	b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkBaselinePrefetch measures the prefetch baseline end to end.
func BenchmarkBaselinePrefetch(b *testing.B) {
	preset := uarch.AlderLake12400F()
	var simMS float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 11
		m := machine.New(preset, seed)
		k, err := linux.Boot(m, linux.Config{Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		res, err := baseline.PrefetchKASLR(m, 16)
		if err != nil || res.Base != k.Base {
			b.Fatalf("prefetch baseline failed: %v", err)
		}
		simMS += preset.CyclesToSeconds(res.TotalCycles) * 1e3
	}
	b.ReportMetric(simMS/float64(b.N), "sim_total_ms")
}
