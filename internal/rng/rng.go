// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every experiment in this repository must be reproducible from a seed, so
// the simulator never touches math/rand's global state or any other shared
// source. Each Machine, workload generator and noise process owns its own
// *Source, derived from an experiment seed via Split, which guarantees that
// adding a consumer of randomness in one subsystem does not perturb the
// stream seen by another.
package rng

import "math"

// Source is a SplitMix64 pseudo-random generator. SplitMix64 passes BigCrush,
// has a full 2^64 period for any seed and is trivially splittable, which is
// exactly what a deterministic multi-component simulation needs. It is not
// cryptographically secure, which is fine: it models physical noise, not
// secrets.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Reseed restarts the Source from seed in place, producing the identical
// stream to New(seed) without allocating. The Source carries no hidden
// state beyond the SplitMix64 counter (Normal discards its second variate
// rather than caching it), so an in-place reseed is exactly a fresh Source.
func (s *Source) Reseed(seed uint64) {
	s.state = seed
}

// Split derives an independent child Source. The child's stream is
// statistically independent from the parent's subsequent output, so
// subsystems can be seeded from a single experiment seed without
// cross-contamination.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-cheap.
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform. One value per call is
// generated (the second variate is discarded) so the consumption pattern
// stays simple and splice-stable.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto returns a Pareto(xm, alpha) distributed value. The simulator uses
// Pareto tails to model interrupt/SMI latency spikes: rare but heavy.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := 1 - s.Float64()
	return xm / math.Pow(u, 1/alpha)
}

// Exponential returns an exponentially distributed value with the given
// mean (i.e. rate 1/mean).
func (s *Source) Exponential(mean float64) float64 {
	u := 1 - s.Float64()
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}
