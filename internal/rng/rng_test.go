package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child's stream must not be a shifted copy of the parent's.
	pv := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		pv[parent.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 200; i++ {
		if pv[child.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("child stream collides with parent (%d hits)", collisions)
	}
}

func TestUint64nRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(99)
	const buckets, draws = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Normal(10, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Errorf("std %v, want ~3", std)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(13)
	const n = 100000
	minSeen := math.Inf(1)
	over2x := 0
	for i := 0; i < n; i++ {
		x := s.Pareto(100, 1.5)
		if x < minSeen {
			minSeen = x
		}
		if x > 200 {
			over2x++
		}
	}
	if minSeen < 100 {
		t.Errorf("Pareto value below scale: %v", minSeen)
	}
	// P(X > 2*xm) = (1/2)^1.5 ≈ 0.3536.
	frac := float64(over2x) / n
	if math.Abs(frac-0.3536) > 0.01 {
		t.Errorf("tail fraction %v, want ~0.3536", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Errorf("mean %v, want ~5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(40)
		seen := make([]bool, 40)
		for _, v := range p {
			if v < 0 || v >= 40 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.2) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.2) > 0.01 {
		t.Errorf("Bool(0.2) rate %v", f)
	}
}
