package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean %v, want 5", s.Mean())
	}
	// Sample (unbiased) variance of this classic set is 32/7.
	if v := s.Var(); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("var %v, want %v", v, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty stream should return zeros")
	}
}

func TestStreamMatchesDirectComputation(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		// Constrain to finite values.
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var s Stream
		sum := 0.0
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ssq := 0.0
		for _, x := range clean {
			ssq += (x - mean) * (x - mean)
		}
		wantVar := ssq / float64(len(clean)-1)
		return math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(s.Var()-wantVar) < 1e-6*(1+wantVar)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if m := s.Median(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("median %v, want 50.5", m)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("q1 %v", q)
	}
	if q := s.Quantile(0.25); math.Abs(q-25.75) > 1e-9 {
		t.Errorf("q0.25 %v, want 25.75", q)
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	err := quick.Check(func(xs []float64, a, b float64) bool {
		var s Sample
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		if s.N() == 0 {
			return true
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleEmptyQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Sample{}).Quantile(0.5)
}

func TestMinOfK(t *testing.T) {
	xs := []float64{5, 3, 9, 1, 7, 2, 8}
	got := MinOfK(xs, 3)
	want := []float64{3, 1, 8}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("minofk[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// k<=1 copies.
	c := MinOfK(xs, 1)
	c[0] = -1
	if xs[0] == -1 {
		t.Error("MinOfK(k=1) aliases input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over %d/%d", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Errorf("total %d", h.Total())
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 %d", h.Bins[0])
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("center %v", c)
	}
}

func TestTrimmedDropsOutliers(t *testing.T) {
	var s Sample
	for i := 0; i < 99; i++ {
		s.Add(100)
	}
	s.Add(100000) // one interrupt spike
	tr := s.Trimmed(0, 0.98)
	if tr.Mean() != 100 {
		t.Errorf("trimmed mean %v, want 100", tr.Mean())
	}
}

func TestCalibrateMidpoint(t *testing.T) {
	fast, slow := &Sample{}, &Sample{}
	for i := 0; i < 50; i++ {
		fast.Add(90 + float64(i%3))
		slow.Add(110 + float64(i%3))
	}
	th := CalibrateMidpoint(fast, slow)
	if th.Cycles <= 91 || th.Cycles >= 110 {
		t.Errorf("threshold %v out of band", th.Cycles)
	}
	if !th.Classify(92) || th.Classify(109) {
		t.Error("classification wrong")
	}
}

func TestCalibrateMidpointUnseparatedPanics(t *testing.T) {
	fast, slow := &Sample{}, &Sample{}
	fast.Add(100)
	slow.Add(90)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for inverted classes")
		}
	}()
	CalibrateMidpoint(fast, slow)
}

func TestCalibrateOffsetUsesMedian(t *testing.T) {
	fast := &Sample{}
	for i := 0; i < 99; i++ {
		fast.Add(100)
	}
	fast.Add(100000) // spike must not drag the threshold
	th := CalibrateOffset(fast, 5)
	if th.Cycles != 105 {
		t.Errorf("threshold %v, want 105 (median+5)", th.Cycles)
	}
}

func TestThresholdClassifyBoundary(t *testing.T) {
	th := Threshold{Cycles: 100}
	if !th.Classify(100) {
		t.Error("boundary value should classify fast")
	}
	if th.Classify(100.001) {
		t.Error("just above boundary should classify slow")
	}
}

func TestStreamAddN(t *testing.T) {
	var a, b Stream
	a.AddN(5, 4)
	for i := 0; i < 4; i++ {
		b.Add(5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatalf("AddN diverges from repeated Add: %v vs %v", a, b)
	}
}

func TestStreamString(t *testing.T) {
	var s Stream
	s.Add(92)
	s.Add(94)
	if got := s.String(); got != "93.0±1.41 (n=2)" {
		t.Fatalf("stream string %q", got)
	}
}

func TestSampleAccessors(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	s.Add(2)
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if vals := s.Values(); len(vals) != 3 {
		t.Fatalf("values %v", vals)
	}
	if s.Mean() != 2 {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Std() == 0 {
		t.Fatal("std zero for spread sample")
	}
}

func TestSampleEmptyAccessors(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 {
		t.Fatal("empty sample stats nonzero")
	}
	for _, f := range []func(){func() { s.Min() }, func() { s.Max() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on empty order statistic")
				}
			}()
			f()
		}()
	}
}

func TestTrimmedEmpty(t *testing.T) {
	var s Sample
	if tr := s.Trimmed(0, 0.99); tr.N() != 0 {
		t.Fatal("trimmed empty sample not empty")
	}
}

func TestCalibrateOffsetEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CalibrateOffset(&Sample{}, 1)
}

func TestCalibrateFraction(t *testing.T) {
	fast, slow := &Sample{}, &Sample{}
	for i := 0; i < 10; i++ {
		fast.Add(100)
		slow.Add(200)
	}
	th := CalibrateFraction(fast, slow, 0.3)
	if th.Cycles != 130 {
		t.Fatalf("threshold %v, want 130", th.Cycles)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for inverted classes")
		}
	}()
	CalibrateFraction(slow, fast, 0.3)
}

func TestHistogramBinCenters(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if h.BinCenter(9) != 95 {
		t.Fatalf("last center %v", h.BinCenter(9))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad histogram bounds")
		}
	}()
	NewHistogram(10, 10, 5)
}
