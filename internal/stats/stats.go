// Package stats provides the small statistical toolkit the attacks and the
// experiment harness share: streaming moments, percentiles, histograms and
// two-class threshold calibration.
//
// The attack code in internal/core deliberately restricts itself to
// estimators an unprivileged attacker could compute online (mean, min-of-k,
// simple thresholds); the richer summaries here are used by the experiment
// harness to render the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates streaming count/mean/variance using Welford's method,
// plus min and max. The zero value is ready to use.
type Stream struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN folds n copies of x (for pre-bucketed data).
func (s *Stream) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 if n < 2).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if empty).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 if empty).
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders "mean±std (n=N)" in the style of the paper's Figure 2.
func (s *Stream) String() string {
	return fmt.Sprintf("%.1f±%.2f (n=%d)", s.Mean(), s.Std(), s.n)
}

// Sample is an in-memory sample supporting order statistics.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the raw observations in insertion order. The caller must
// not mutate the returned slice.
func (s *Sample) Values() []float64 { return s.xs }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between closest ranks. It panics on an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Min returns the smallest observation; panics on an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		panic("stats: min of empty sample")
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation; panics on an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		panic("stats: max of empty sample")
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// MinOfK reduces xs by taking the minimum over consecutive groups of k.
// Min-of-k is the standard timing-side-channel estimator: latency noise is
// strictly additive (interrupts only ever make a probe slower), so the
// minimum of a few repetitions converges on the true latency much faster
// than the mean. A trailing partial group is reduced too.
func MinOfK(xs []float64, k int) []float64 {
	if k <= 1 {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	var out []float64
	for i := 0; i < len(xs); i += k {
		end := i + k
		if end > len(xs) {
			end = len(xs)
		}
		m := xs[i]
		for _, x := range xs[i+1 : end] {
			if x < m {
				m = x
			}
		}
		out = append(out, m)
	}
	return out
}

// Histogram is a fixed-width-bin histogram over [lo, hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with nbins equal bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins), binWidth: (hi - lo) / float64(nbins)}
}

// Add folds one observation into the histogram.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		h.Bins[int((x-h.Lo)/h.binWidth)]++
	}
}

// Total returns the total number of observations, including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Bins {
		n += b
	}
	return n
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Threshold holds a two-class timing decision boundary: observations at or
// below Cycles are classified "fast" (e.g. kernel-mapped), above it "slow".
type Threshold struct {
	Cycles float64
	// FastMean and SlowMean record the class means the threshold was
	// calibrated from, for diagnostics.
	FastMean, SlowMean float64
}

// Classify reports whether x falls on the fast side of the threshold.
func (t Threshold) Classify(x float64) bool { return x <= t.Cycles }

// CalibrateMidpoint places a threshold halfway between the means of a fast
// and a slow sample. It panics if either sample is empty or if the samples
// are not separated (fast mean >= slow mean), because proceeding with an
// inverted threshold would silently produce garbage classifications.
// Medians are used for the same robustness reason as in CalibrateOffset.
func CalibrateMidpoint(fast, slow *Sample) Threshold {
	if fast.N() == 0 || slow.N() == 0 {
		panic("stats: calibration with empty sample")
	}
	fm, sm := fast.Median(), slow.Median()
	if fm >= sm {
		panic(fmt.Sprintf("stats: calibration classes not separated (fast %.1f >= slow %.1f)", fm, sm))
	}
	return Threshold{Cycles: (fm + sm) / 2, FastMean: fm, SlowMean: sm}
}

// Trimmed returns a Stream over the observations inside [lo, hi] quantiles
// — the outlier-filtered summary timing papers report (interrupt spikes are
// strictly additive and carry no signal).
func (s *Sample) Trimmed(lo, hi float64) *Stream {
	if len(s.xs) == 0 {
		return &Stream{}
	}
	a, b := s.Quantile(lo), s.Quantile(hi)
	out := &Stream{}
	for _, x := range s.xs {
		if x >= a && x <= b {
			out.Add(x)
		}
	}
	return out
}

// CalibrateFraction places a threshold at fast + frac·(slow − fast),
// using class medians. Scans that trigger on the *first* fast observation
// give the slow class hundreds of chances to err for the fast class's one,
// so the threshold belongs closer to the fast class (frac < 0.5) than the
// symmetric midpoint.
func CalibrateFraction(fast, slow *Sample, frac float64) Threshold {
	if fast.N() == 0 || slow.N() == 0 {
		panic("stats: calibration with empty sample")
	}
	fm, sm := fast.Median(), slow.Median()
	if fm >= sm {
		panic(fmt.Sprintf("stats: calibration classes not separated (fast %.1f >= slow %.1f)", fm, sm))
	}
	return Threshold{Cycles: fm + frac*(sm-fm), FastMean: fm, SlowMean: sm}
}

// CalibrateOffset places a threshold at the fast-class mean plus a fixed
// margin, the strategy the paper uses (§IV-B: the dirty-bit masked-store
// time on a user page matches the kernel-mapped masked-load time, so
// mean+margin separates mapped from unmapped without ever touching slow-
// class ground truth).
// The median (not the mean) estimates the fast class: interrupt spikes are
// one-sided and would drag a mean-based threshold toward the slow class.
func CalibrateOffset(fast *Sample, margin float64) Threshold {
	if fast.N() == 0 {
		panic("stats: calibration with empty sample")
	}
	fm := fast.Median()
	return Threshold{Cycles: fm + margin, FastMean: fm, SlowMean: math.NaN()}
}
