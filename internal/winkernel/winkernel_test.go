package winkernel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
)

func boot(t *testing.T, cfg Config) (*machine.Machine, *Kernel) {
	t.Helper()
	m := machine.New(uarch.AlderLake12400F(), cfg.Seed+2000)
	k, err := Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, k
}

func TestRegionConstants(t *testing.T) {
	if Slots != 262144 {
		t.Fatalf("slots %d, want 2^18 (§IV-G)", Slots)
	}
	if ImageSlots != 5 {
		t.Fatalf("image slots %d, want 5", ImageSlots)
	}
	if KVASOffset != 0x298000 {
		t.Fatalf("KVAS offset %#x", KVASOffset)
	}
}

func TestImageConsecutive2MPages(t *testing.T) {
	m, k := boot(t, Config{Seed: 1})
	if uint64(k.Base)%paging.Page2M != 0 {
		t.Fatal("base unaligned")
	}
	// Slot 0 holds the entry thunks: fully mapped but with 4 KiB PTEs
	// (what lets the TLB attack resolve the entry page).
	for pg := 0; pg < paging.Page2M/paging.Page4K; pg += 37 {
		w := m.KernelAS.Translate(k.Base+paging.VirtAddr(uint64(pg)<<12), nil)
		if !w.Mapped || w.Size != paging.Page4K {
			t.Fatalf("entry-slot page %d: %+v", pg, w)
		}
	}
	// Slots 1..4 are 2 MiB pages.
	for s := 1; s < ImageSlots; s++ {
		w := m.KernelAS.Translate(k.Base+paging.VirtAddr(uint64(s)<<21), nil)
		if !w.Mapped || w.Size != paging.Page2M {
			t.Fatalf("slot %d: %+v", s, w)
		}
	}
	// The slot after the image is unmapped (the run is exactly 5 long).
	if w := m.KernelAS.Translate(k.ImageEnd(), nil); w.Mapped {
		t.Fatal("image run longer than 5 slots")
	}
}

func TestEntropy(t *testing.T) {
	bases := make(map[paging.VirtAddr]bool)
	for seed := uint64(0); seed < 32; seed++ {
		_, k := boot(t, Config{Seed: seed})
		bases[k.Base] = true
	}
	if len(bases) < 30 {
		t.Fatalf("only %d distinct bases over 32 boots", len(bases))
	}
}

func TestEntryPointInsideImage(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		_, k := boot(t, Config{Seed: seed})
		if k.EntryVA < k.Base || k.EntryVA >= k.ImageEnd() {
			t.Fatalf("entry %#x outside image", uint64(k.EntryVA))
		}
		if uint64(k.EntryVA)%paging.Page4K != 0 {
			t.Fatal("entry not 4K aligned")
		}
	}
}

func TestDriversNeverSpanFiveSlots(t *testing.T) {
	m, k := boot(t, Config{Seed: 3, Drivers: 40})
	if len(k.DriverBases) == 0 {
		t.Fatal("no drivers loaded")
	}
	for _, base := range k.DriverBases {
		run := 0
		for s := 0; ; s++ {
			w := m.KernelAS.Translate(base+paging.VirtAddr(uint64(s)<<21), nil)
			if !w.Mapped {
				break
			}
			run++
		}
		if run >= ImageSlots {
			t.Fatalf("driver at %#x spans %d slots (collides with the kernel signature)", uint64(base), run)
		}
	}
}

func TestKVASLayout(t *testing.T) {
	m, k := boot(t, Config{Seed: 5, KVAS: true})
	if !m.KPTIEnabled() {
		t.Fatal("KVAS must isolate the user view")
	}
	if k.KVASVA != k.Base+paging.VirtAddr(KVASOffset) {
		t.Fatalf("KVAS at %#x", uint64(k.KVASVA))
	}
	// Exactly the three shadow pages are user-visible.
	for i := 0; i < KVASPages; i++ {
		w := m.UserAS.Translate(k.KVASVA+paging.VirtAddr(uint64(i)<<12), nil)
		if !w.Mapped {
			t.Fatalf("KVAS page %d missing from user view", i)
		}
	}
	if w := m.UserAS.Translate(k.KVASVA+paging.VirtAddr(uint64(KVASPages)<<12), nil); w.Mapped {
		t.Fatal("KVAS run longer than 3 pages")
	}
	if w := m.UserAS.Translate(k.Base, nil); w.Mapped {
		t.Fatal("kernel image visible in user view under KVAS")
	}
}

func TestMaxSlotRestriction(t *testing.T) {
	for seed := uint64(0); seed < 16; seed++ {
		_, k := boot(t, Config{Seed: seed, MaxSlot: 100})
		if k.Slot >= 100 {
			t.Fatalf("slot %d beyond MaxSlot", k.Slot)
		}
	}
}
