// Package winkernel builds the Windows 10 kernel address-space layout of
// §IV-G: kernel and drivers randomized within
// 0xfffff80000000000..0xfffff88000000000 at 2 MiB granularity (2^18 slots,
// 18 bits of entropy), the kernel image occupying five consecutive 2 MiB
// pages, the entry point on an arbitrary 4 KiB boundary inside it, and —
// on KVAS-enabled builds — the KiSystemCall64Shadow region (three
// consecutive 4 KiB pages) at the build-constant offset +0x298000 from the
// kernel base.
package winkernel

import (
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
)

// Address-space constants (Windows 10 x64).
const (
	// RegionBase is the start of the kernel/driver randomization range.
	RegionBase paging.VirtAddr = 0xfffff80000000000
	// RegionSize is the 512 GiB randomization range.
	RegionSize uint64 = 1 << 39
	// Slots is the number of 2 MiB-aligned kernel positions (18-bit
	// entropy).
	Slots = RegionSize / paging.Page2M // 262144
	// ImageSlots is the number of consecutive 2 MiB pages holding the
	// kernel image ("five consecutive 2-MiB pages", §IV-G).
	ImageSlots = 5
	// KVASOffset is the constant offset of the KVAS transition code
	// (KiSystemCall64Shadow) from the kernel base on Windows 10 1709.
	KVASOffset uint64 = 0x298000
	// KVASPages is the number of consecutive 4 KiB KVAS pages.
	KVASPages = 3
)

// Config selects the victim's Windows configuration.
type Config struct {
	// Seed drives boot randomization.
	Seed uint64
	// KVAS enables kernel virtual-address shadowing (the Windows KPTI):
	// the user-visible table contains only the shadow transition pages.
	KVAS bool
	// Drivers is the number of additional driver images scattered through
	// the region (each 1–8 slots), modelling the loaded-driver population.
	Drivers int
	// MaxSlot, when positive, restricts randomization to the first MaxSlot
	// slots. The full region's 4 KiB-granular KVAS scan is hostile to unit
	// tests; scaled experiments restrict the slide and extrapolate
	// (documented in EXPERIMENTS.md).
	MaxSlot int
}

// Kernel is a booted Windows image.
type Kernel struct {
	Cfg  Config
	Base paging.VirtAddr // kernel image base (2 MiB aligned)
	Slot int
	// EntryVA is the randomized entry point (4 KiB boundary inside the
	// image; the remaining 9 bits of entropy §IV-G mentions).
	EntryVA paging.VirtAddr
	// KVASVA is the shadow transition region base (0 when KVAS is off).
	KVASVA paging.VirtAddr
	// DriverBases lists additional driver image bases.
	DriverBases []paging.VirtAddr

	m        *machine.Machine
	kernelAS *paging.AddressSpace
	userAS   *paging.AddressSpace
}

// Boot constructs the Windows layout on m.
func Boot(m *machine.Machine, cfg Config) (*Kernel, error) {
	r := rng.New(cfg.Seed ^ 0x77696e646f777331)
	k := &Kernel{Cfg: cfg, m: m}
	k.kernelAS = paging.NewAddressSpace(m.Alloc)

	// Keep the image away from the region tail so drivers fit after it.
	maxSlot := int(Slots) - 64
	if cfg.MaxSlot > 0 && cfg.MaxSlot < maxSlot {
		maxSlot = cfg.MaxSlot
	}
	k.Slot = r.Intn(maxSlot)
	k.Base = RegionBase + paging.VirtAddr(uint64(k.Slot)<<21)
	// The entry point is randomized to a 4 KiB boundary inside the first
	// image slot (the residual 9 bits of entropy §IV-G mentions); that
	// slot is backed by 4 KiB PTEs — kernel text around the entry thunks
	// is not large-page mapped on Windows — which is what lets the TLB
	// attack resolve the entry page (EntryPointBreak).
	k.EntryVA = k.Base + paging.VirtAddr(uint64(r.Intn(paging.Page2M/paging.Page4K))<<12)
	for s := 0; s < ImageSlots; s++ {
		slotVA := k.Base + paging.VirtAddr(uint64(s)<<21)
		flags := paging.Flags(paging.Global)
		if s >= 3 {
			flags |= paging.Writable // data slots
		}
		if s == 0 {
			for pg := 0; pg < paging.Page2M/paging.Page4K; pg++ {
				if err := k.kernelAS.Map(slotVA+paging.VirtAddr(uint64(pg)<<12),
					paging.Page4K, m.Alloc.Alloc(), flags); err != nil {
					return nil, err
				}
			}
			continue
		}
		frame := m.Alloc.AllocContig(paging.Page2M / 4096)
		if err := k.kernelAS.Map(slotVA, paging.Page2M, frame, flags); err != nil {
			return nil, err
		}
	}

	// Scatter driver images after the kernel. Driver images are small
	// (1–3 slots): only the kernel image spans five consecutive 2 MiB
	// pages, which is why the run length identifies it (§IV-G).
	cur := k.Slot + ImageSlots + 1 + r.Intn(8)
	for d := 0; d < cfg.Drivers && cur < int(Slots)-16; d++ {
		span := 1 + r.Intn(3)
		base := RegionBase + paging.VirtAddr(uint64(cur)<<21)
		for s := 0; s < span; s++ {
			frame := m.Alloc.AllocContig(paging.Page2M / 4096)
			if err := k.kernelAS.Map(base+paging.VirtAddr(uint64(s)<<21), paging.Page2M, frame, paging.Global); err != nil {
				return nil, err
			}
		}
		k.DriverBases = append(k.DriverBases, base)
		cur += span + 1 + r.Intn(12)
	}

	if cfg.KVAS {
		k.userAS = paging.NewAddressSpace(m.Alloc)
		k.KVASVA = k.Base + paging.VirtAddr(KVASOffset)
		for i := 0; i < KVASPages; i++ {
			va := k.KVASVA + paging.VirtAddr(uint64(i)<<12)
			if err := k.userAS.Map(va, paging.Page4K, m.Alloc.Alloc(), 0); err != nil {
				return nil, err
			}
		}
		m.InstallAddressSpaces(k.kernelAS, k.userAS)
	} else {
		k.userAS = k.kernelAS
		m.InstallAddressSpaces(k.kernelAS, k.kernelAS)
	}
	return k, nil
}

// ImageEnd returns one past the kernel image's last mapped byte.
func (k *Kernel) ImageEnd() paging.VirtAddr {
	return k.Base + paging.VirtAddr(uint64(ImageSlots)<<21)
}

// Syscall performs one victim system call: the entry page (and its
// neighbour, the dispatch continuation) become TLB-resident. This is the
// victim activity the entry-point TLB attack observes.
func (k *Kernel) Syscall() {
	k.m.Syscall(k.EntryVA, k.EntryVA+paging.Page4K)
}
