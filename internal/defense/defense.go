// Package defense implements and evaluates the countermeasures of §V:
// FLARE dummy mappings, FGKASLR function shuffling, periodic
// re-randomization, and the masked-op-restriction mitigation, each with the
// bypass (or successful mitigation) the paper reports.
package defense

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
)

// FlareOutcome records the §V-A FLARE evaluation: the page-table attack
// must fail (dummy mappings hide the real layout) while the TLB attack
// still recovers the kernel region.
type FlareOutcome struct {
	// PageTableDistinguishes reports whether the page-table attack could
	// still tell kernel slots from dummy slots (must be false).
	PageTableDistinguishes bool
	// TLBBaseFound is the base the TLB attack recovered (0 on failure).
	TLBBaseFound paging.VirtAddr
	// TrueBase is the ground truth.
	TrueBase paging.VirtAddr
}

// Bypassed reports whether the TLB attack defeated FLARE.
func (o FlareOutcome) Bypassed() bool { return o.TLBBaseFound == o.TrueBase }

// EvaluateFLARE boots a FLARE-protected kernel and mounts both attacks
// (§V-A): the page-table attack sees a uniformly mapped region, but dummy
// pages are never executed by the kernel, so after TLB eviction plus forced
// kernel activity (syscalls) only real kernel translations are
// TLB-resident.
func EvaluateFLARE(preset *uarch.Preset, seed uint64) (FlareOutcome, error) {
	var out FlareOutcome
	m := machine.New(preset, seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed, FLARE: true})
	if err != nil {
		return out, err
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		return out, err
	}
	return FlareAttack(p, k), nil
}

// FlareAttack mounts the §V-A FLARE evaluation on an already-booted
// FLARE-protected victim with a calibrated prober — the session-friendly
// body of EvaluateFLARE. Deterministic given the prober's state (the
// service replays it from a post-calibration checkpoint).
func FlareAttack(p *core.Prober, k *linux.Kernel) FlareOutcome {
	var out FlareOutcome
	out.TrueBase = k.Base

	// Page-table attack: probe all slots; FLARE makes them all mapped.
	mappedCount := 0
	for slot := 0; slot < linux.TextSlots; slot++ {
		va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		if p.ProbeMapped(va).Fast {
			mappedCount++
		}
	}
	// If (almost) every slot reads mapped, the page-mapping signal is gone.
	out.PageTableDistinguishes = mappedCount < linux.TextSlots*9/10

	// TLB attack: evict, trigger kernel activity, probe each slot once.
	// Slots whose translations were re-installed by the kernel's own
	// execution are real kernel text.
	var firstHot paging.VirtAddr
	for slot := 0; slot < linux.TextSlots; slot++ {
		va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		p.M.EvictTLB()
		for i := 0; i < 4; i++ {
			k.Syscall()
		}
		if pr := p.ProbeTLB(va); pr.Fast {
			firstHot = va
			break
		}
	}
	out.TLBBaseFound = firstHot
	return out
}

// FGKASLROutcome records the §V-A FGKASLR evaluation.
type FGKASLROutcome struct {
	// OffsetStable reports whether the target function sat at its
	// build-constant offset (true without FGKASLR, false with).
	OffsetStable bool
	// TemplateFoundPage is the text page the TLB template attack
	// attributed to the target function.
	TemplateFoundPage paging.VirtAddr
	// TruePage is the function's real page.
	TruePage paging.VirtAddr
}

// Bypassed reports whether the template attack located the function.
func (o FGKASLROutcome) Bypassed() bool { return o.TemplateFoundPage == o.TruePage }

// EvaluateFGKASLR boots an FGKASLR kernel and mounts the TLB template
// attack the paper cites ([20]): trigger a syscall that executes the target
// function, then find which kernel text page became TLB-resident. Function
// reordering does not help because the attack profiles residency, not
// offsets.
func EvaluateFGKASLR(preset *uarch.Preset, seed uint64, target string) (FGKASLROutcome, error) {
	var out FGKASLROutcome
	m := machine.New(preset, seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed, FGKASLR: true})
	if err != nil {
		return out, err
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		return out, err
	}
	return FGKASLRAttack(p, k, seed, target)
}

// FGKASLRAttack mounts the §V-A FGKASLR evaluation on an already-booted
// FGKASLR victim with a calibrated prober — the session-friendly body of
// EvaluateFGKASLR. seed is the victim's boot seed, used only for the
// offset-stability comparison boot (a private throwaway machine, so the
// session machine's state is untouched by it).
func FGKASLRAttack(p *core.Prober, k *linux.Kernel, seed uint64, target string) (FGKASLROutcome, error) {
	var out FGKASLROutcome
	truePage, ok := k.FunctionPage(target)
	if !ok {
		return out, fmt.Errorf("defense: unknown target %q", target)
	}
	out.TruePage = truePage

	// Compare against a non-FGKASLR boot to show the offset moved.
	m2 := machine.New(p.M.Preset, seed)
	k2, err := linux.Boot(m2, linux.Config{Seed: seed})
	if err != nil {
		return out, err
	}
	p1, _ := k.FunctionPage(target)
	p2, _ := k2.FunctionPage(target)
	out.OffsetStable = uint64(p1)-uint64(k.Base) == uint64(p2)-uint64(k2.Base)

	// Template phase: for each candidate text page, evict, trigger the
	// target function, probe. The page that turns hot holds the function.
	for slot := 0; slot < linux.ImageSlots; slot++ {
		va := k.Base + paging.VirtAddr(uint64(slot)<<21)
		p.M.EvictTLB()
		if err := k.CallFunction(target); err != nil {
			return out, err
		}
		if pr := p.ProbeTLB(va); pr.Fast {
			out.TemplateFoundPage = va
			break
		}
	}
	return out, nil
}

// RerandomizeOutcome records the re-randomization mitigation evaluation
// (§V-A: "Stronger isolation or re-randomization should be implemented").
type RerandomizeOutcome struct {
	// StaleHit reports whether the pre-rerandomization base still matched
	// after the shuffle (must be false: the defense works).
	StaleHit bool
	// RecoveredBase is what the attack found before re-randomization.
	RecoveredBase paging.VirtAddr
	// NewBase is the layout after re-randomization.
	NewBase paging.VirtAddr
}

// EvaluateRerandomization shows the mitigation that *does* work: recover
// the base, re-randomize (reboot-equivalent shuffle), and verify the stale
// address no longer points at the kernel.
func EvaluateRerandomization(preset *uarch.Preset, seed uint64) (RerandomizeOutcome, error) {
	var out RerandomizeOutcome
	m := machine.New(preset, seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed})
	if err != nil {
		return out, err
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		return out, err
	}
	return RerandAttack(p, k, seed)
}

// RerandAttack mounts the re-randomization evaluation on an already-booted
// undefended victim with a calibrated prober — the session-friendly body
// of EvaluateRerandomization. The re-randomized layout is a pure function
// of the victim's boot seed (the shuffle boots on a throwaway machine from
// derived seeds), so the outcome never depends on evaluation order.
func RerandAttack(p *core.Prober, k *linux.Kernel, seed uint64) (RerandomizeOutcome, error) {
	var out RerandomizeOutcome
	res, err := core.KernelBase(p)
	if err != nil {
		return out, err
	}
	out.RecoveredBase = res.Base

	// Re-randomize: boot a fresh layout on a fresh machine (different
	// seed), as a live re-randomizer would.
	m2 := machine.New(p.M.Preset, seed+1)
	k2, err := linux.Boot(m2, linux.Config{Seed: seed + 0xdead})
	if err != nil {
		return out, err
	}
	out.NewBase = k2.Base
	out.StaleHit = out.RecoveredBase == k2.Base && k.Base != k2.Base
	if k.Base == k2.Base {
		// Degenerate collision: re-randomization landed on the same slot;
		// treat as a stale hit only if slides genuinely match by chance.
		out.StaleHit = false
	}
	return out, nil
}

// RerandSweepPoint is one period in the re-randomization interval sweep.
type RerandSweepPoint struct {
	// PeriodSec is the re-randomization interval.
	PeriodSec float64
	// WindowSec is how long a recovered base stays usable: attack runtime
	// already spent plus the residual time until the next shuffle.
	WindowSec float64
	// Exploitable is true when the attacker has positive time between
	// recovering the base and the next shuffle (expected case).
	Exploitable bool
}

// RerandomizationSweep quantifies the §V-A recommendation: how frequently
// must a re-randomizer shuffle the kernel for the AVX attack's recovered
// base to be stale before it can be used? The attack's total runtime T
// sets the bound — any period comfortably above T leaves an exploitation
// window of (period − T) in expectation; periods at or below T close it.
// (Shuffler-style systems re-randomize every few tens of milliseconds; the
// AVX attack's sub-millisecond runtime is what makes this defense
// expensive.)
func RerandomizationSweep(preset *uarch.Preset, seed uint64, periodsSec []float64) ([]RerandSweepPoint, float64, error) {
	m := machine.New(preset, seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		return nil, 0, err
	}
	return RerandSweep(p, k, periodsSec)
}

// RerandSweep runs the period sweep on an already-booted undefended victim
// with a calibrated prober — the session-friendly body of
// RerandomizationSweep. The exploitation window is computed from the
// attack's deterministic simulated runtime (a pure function of the
// prober's checkpoint state), never from host wall-clock, so the sweep is
// bit-identical at any worker count or submission order.
func RerandSweep(p *core.Prober, k *linux.Kernel, periodsSec []float64) ([]RerandSweepPoint, float64, error) {
	res, err := core.KernelBase(p)
	if err != nil {
		return nil, 0, err
	}
	if res.Base != k.Base {
		return nil, 0, fmt.Errorf("defense: attack failed; sweep meaningless")
	}
	attackSec := res.TotalSeconds(p.M.Preset)
	var out []RerandSweepPoint
	for _, period := range periodsSec {
		// The attack starts at a uniformly random phase; in expectation
		// half the period has elapsed when it finishes.
		residual := period/2 - attackSec
		out = append(out, RerandSweepPoint{
			PeriodSec:   period,
			WindowSec:   residual,
			Exploitable: residual > 0,
		})
	}
	return out, attackSec, nil
}

// MaskedOpRestriction models the §V-B software mitigation: replacing
// all-zero-mask masked ops with NOPs. It reports, for a given binary
// population, how many executables would be affected — the paper finds 6 of
// 4104 Ubuntu executables contain the instructions.
type MaskedOpRestriction struct {
	TotalExecutables int
	UsingMaskedOps   int
}

// UbuntuDefaultPopulation returns the paper's measured population.
func UbuntuDefaultPopulation() MaskedOpRestriction {
	return MaskedOpRestriction{TotalExecutables: 4104, UsingMaskedOps: 6}
}

// ImpactFraction returns the affected fraction.
func (r MaskedOpRestriction) ImpactFraction() float64 {
	if r.TotalExecutables == 0 {
		return 0
	}
	return float64(r.UsingMaskedOps) / float64(r.TotalExecutables)
}
