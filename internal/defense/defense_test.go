package defense

import (
	"testing"

	"repro/internal/uarch"
)

func TestFLAREHidesPageTableSignal(t *testing.T) {
	out, err := EvaluateFLARE(uarch.AlderLake12400F(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.PageTableDistinguishes {
		t.Fatal("FLARE failed to hide the page-mapping signal")
	}
}

func TestFLAREBypassedByTLBAttack(t *testing.T) {
	for seed := uint64(1); seed < 5; seed++ {
		out, err := EvaluateFLARE(uarch.AlderLake12400F(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Bypassed() {
			t.Fatalf("seed %d: TLB attack found %#x, kernel at %#x",
				seed, uint64(out.TLBBaseFound), uint64(out.TrueBase))
		}
	}
}

func TestFGKASLRMovesFunctionsButIsBypassed(t *testing.T) {
	hits := 0
	for seed := uint64(1); seed < 5; seed++ {
		out, err := EvaluateFGKASLR(uarch.AlderLake12400F(), seed, "tcp_sendmsg")
		if err != nil {
			t.Fatal(err)
		}
		if !out.Bypassed() {
			t.Fatalf("seed %d: template attack found %#x, function at %#x",
				seed, uint64(out.TemplateFoundPage), uint64(out.TruePage))
		}
		if !out.OffsetStable {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("FGKASLR never moved the target function across 4 boots")
	}
}

func TestFGKASLRUnknownTarget(t *testing.T) {
	if _, err := EvaluateFGKASLR(uarch.AlderLake12400F(), 1, "no_such_function"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestRerandomizationMitigates(t *testing.T) {
	for seed := uint64(1); seed < 5; seed++ {
		out, err := EvaluateRerandomization(uarch.AlderLake12400F(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if out.StaleHit {
			t.Fatalf("seed %d: stale base survived re-randomization", seed)
		}
		if out.RecoveredBase == 0 {
			t.Fatalf("seed %d: attack failed before re-randomization", seed)
		}
	}
}

func TestMaskedOpRestrictionNumbers(t *testing.T) {
	r := UbuntuDefaultPopulation()
	if r.TotalExecutables != 4104 || r.UsingMaskedOps != 6 {
		t.Fatalf("population %+v, want the paper's 6/4104", r)
	}
	if f := r.ImpactFraction(); f < 0.001 || f > 0.002 {
		t.Fatalf("impact %v", f)
	}
	if (MaskedOpRestriction{}).ImpactFraction() != 0 {
		t.Fatal("zero population should have zero impact")
	}
}
