package defense

import (
	"testing"

	"repro/internal/uarch"
)

func TestRerandomizationSweep(t *testing.T) {
	periods := []float64{10, 1, 0.1, 0.01, 0.001, 0.0001, 0.00001}
	points, attackSec, err := RerandomizationSweep(uarch.AlderLake12400F(), 5, periods)
	if err != nil {
		t.Fatal(err)
	}
	if attackSec <= 0 || attackSec > 0.01 {
		t.Fatalf("attack runtime %v s out of expected band", attackSec)
	}
	if len(points) != len(periods) {
		t.Fatalf("points %d", len(points))
	}
	// The exploitation window shrinks monotonically with the period and
	// crosses zero once the period falls to ~2× the attack runtime.
	for i := 1; i < len(points); i++ {
		if points[i].WindowSec >= points[i-1].WindowSec {
			t.Fatalf("window not shrinking: %+v after %+v", points[i], points[i-1])
		}
	}
	if !points[0].Exploitable {
		t.Fatal("a 10 s re-randomization period should leave the attack exploitable")
	}
	last := points[len(points)-1]
	if last.Exploitable {
		t.Fatalf("a %.0f µs period should defeat a %.0f µs attack", last.PeriodSec*1e6, attackSec*1e6)
	}
	// The crossover sits where period/2 ≈ attack runtime.
	for _, pt := range points {
		want := pt.PeriodSec/2 > attackSec
		if pt.Exploitable != want {
			t.Fatalf("crossover wrong at period %v: %+v (attack %v)", pt.PeriodSec, pt, attackSec)
		}
	}
}
