package scan

import (
	"sync"
	"testing"
)

type fakeReplica struct{ ord int }

func TestPoolGetPutReuse(t *testing.T) {
	var p Pool[*fakeReplica]
	mk := func(ord int) *fakeReplica { return &fakeReplica{ord: ord} }

	a, reused := p.Get(mk)
	if reused || a.ord != 0 {
		t.Fatalf("first Get: reused=%v ord=%d", reused, a.ord)
	}
	b, reused := p.Get(mk)
	if reused || b.ord != 1 {
		t.Fatalf("second Get: reused=%v ord=%d", reused, b.ord)
	}
	if p.Made() != 2 || p.Idle() != 0 {
		t.Fatalf("made=%d idle=%d, want 2/0", p.Made(), p.Idle())
	}

	p.Put(a)
	p.Put(b)
	if p.Idle() != 2 {
		t.Fatalf("idle=%d after Put, want 2", p.Idle())
	}

	// A later "scan" must reuse the existing replicas, not create more.
	c, reused := p.Get(mk)
	if !reused {
		t.Fatal("third Get did not reuse a pooled replica")
	}
	if c != a && c != b {
		t.Fatal("reused replica is not one of the originals")
	}
	if p.Made() != 2 {
		t.Fatalf("made grew to %d on reuse", p.Made())
	}
}

// Concurrent scans sharing one pool must each get exclusive replicas and
// never observe another scan's replica mid-use (run under -race).
func TestPoolConcurrentGetPut(t *testing.T) {
	var p Pool[*fakeReplica]
	mk := func(ord int) *fakeReplica { return &fakeReplica{ord: ord} }

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Acquire a few replicas, touch them, return them.
				rs := make([]*fakeReplica, 3)
				for j := range rs {
					r, _ := p.Get(mk)
					r.ord++ // exclusive-use write: -race flags sharing
					rs[j] = r
				}
				seen := map[*fakeReplica]bool{}
				for _, r := range rs {
					if seen[r] {
						t.Error("pool handed the same replica out twice in one scan")
					}
					seen[r] = true
				}
				for _, r := range rs {
					p.Put(r)
				}
			}
		}()
	}
	wg.Wait()
	// At most goroutines*3 replicas can ever be in flight at once.
	if p.Made() > goroutines*3 {
		t.Fatalf("pool created %d replicas for %d concurrent slots", p.Made(), goroutines*3)
	}
	if p.Idle() != p.Made() {
		t.Fatalf("idle=%d != made=%d after all Puts", p.Idle(), p.Made())
	}
}
