package scan

import "sync"

// Pool is a persistent, concurrency-safe free list of worker replicas,
// reused across scans within a session. Creating a replica is the expensive
// part of a sharded scan (in the simulator: Machine.Clone allocates the
// replica's TLB, paging-structure and PTE-line caches — ~170 allocations);
// the pool amortizes that cost over every scan in the run.
//
// The pool does not know how to build or reset a replica — callers pass a
// constructor to Get and re-sync reused replicas themselves (the engine's
// per-chunk Worker.Start reset is what makes pooled output bit-identical to
// fresh-worker output regardless of a replica's history).
//
// The zero value is an empty, ready-to-use pool. Concurrent scans may share
// one pool: Get hands out each replica to exactly one caller at a time.
type Pool[R any] struct {
	mu   sync.Mutex
	free []R
	made int
}

// Get pops a free replica, or calls make with the pool-wide creation
// ordinal to build a new one. reused reports whether the replica has served
// an earlier scan — the caller must then re-sync it to its current parent
// state before probing. make runs outside the pool lock, so concurrent
// callers can clone machines in parallel.
func (p *Pool[R]) Get(make func(ord int) R) (r R, reused bool) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		r = p.free[n-1]
		var zero R
		p.free[n-1] = zero
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return r, true
	}
	ord := p.made
	p.made++
	p.mu.Unlock()
	return make(ord), false
}

// Put returns a replica to the free list after a scan.
func (p *Pool[R]) Put(r R) {
	p.mu.Lock()
	p.free = append(p.free, r)
	p.mu.Unlock()
}

// Made returns how many replicas the pool has ever created (a reuse
// diagnostic: steady-state scanning must not grow it).
func (p *Pool[R]) Made() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.made
}

// Idle returns how many replicas are currently free.
func (p *Pool[R]) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
