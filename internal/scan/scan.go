package scan

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/paging"
)

// DefaultChunkPages is the default shard granularity. Large enough that the
// per-chunk reset cost is amortized over many probes, small enough that a
// 512-slot kernel scan still splits across workers.
const DefaultChunkPages = 128

// Sample is one probe outcome: the decision measurement plus the verdict
// the probe derived from it (mapped/unmapped, a permission class, a
// walk-termination level, ...).
type Sample[V comparable] struct {
	// Cycles is the probe's decision measurement.
	Cycles float64
	// Verdict is the probe's classification of the address.
	Verdict V
}

// Worker is one shard's probing context. Implementations wrap a calibrated
// prober on a private machine replica. Workers are used by one goroutine at
// a time; distinct workers run concurrently.
type Worker[V comparable] interface {
	// Start resets the worker for one chunk: translation caches emptied and
	// the noise stream reseeded from chunkSeed, so the chunk's measurements
	// are a pure function of (shared victim state, chunkSeed).
	Start(chunkSeed uint64)
	// Probe measures one address.
	Probe(va paging.VirtAddr) Sample[V]
	// Classify re-derives a verdict from a reduced measurement (used when
	// the healing pass merges re-probe minima).
	Classify(cycles float64) V
	// Elapsed returns the simulated cycles consumed since the last Start.
	Elapsed() uint64
}

// BatchWorker is a Worker that probes whole chunks at once. When a worker
// implements it, the engine hands it the chunk's index range and the
// preallocated result windows (verdicts[i-lo], cycles[i-lo] for index i)
// instead of driving one Probe call per index, so the worker can amortize
// per-probe overhead across the chunk (core feeds such chunks to
// machine.MeasureBatch). A ProbeChunk implementation must be bit-identical
// to the per-index Probe loop — same machine operations, same noise draws,
// same verdicts — including honoring skip: a skipped index gets verdict
// skipV, zero cycles, and must consume no probe and no noise. The engine's
// healing pass still uses per-index Probe/Classify.
type BatchWorker[V comparable] interface {
	Worker[V]
	ProbeChunk(start paging.VirtAddr, stride uint64, lo, hi int,
		skip func(i int) bool, skipV V, verdicts []V, cycles []float64)
}

// Healer lets a worker take over the healing re-probe of one index. The
// default heal merges the minimum of HealSamples re-measurements with the
// first-pass value and re-classifies — correct for single-measurement
// verdicts, but a fused probe (load + store classification per VA) cannot
// re-derive its verdict from one cycles channel. HealProbe receives the
// first-pass outcome and returns the healed one; it runs single-threaded in
// ascending index order on the heal stream, like the default pass.
type Healer[V comparable] interface {
	HealProbe(va paging.VirtAddr, samples int, cycles float64, v V) (float64, V)
}

// Factory builds the worker for one shard. It is called sequentially from
// the scanning goroutine before any worker runs, so implementations may
// clone machines (or draw replicas from a Pool) without locking.
type Factory[V comparable] func(id int) Worker[V]

// Config tunes an Engine.
type Config struct {
	// Workers is the number of concurrent shards. 0 means GOMAXPROCS.
	Workers int
	// ChunkPages is the shard granularity in probe indices. 0 means
	// DefaultChunkPages.
	ChunkPages int
	// Seed derives the per-chunk noise seeds. The same Seed yields
	// bit-identical results at any worker count.
	Seed uint64
	// HealSamples is the re-probe count of the healing pass. 0 means 3
	// (min-of-3, matching the paper's second pass); negative disables
	// healing entirely — sweeps whose signal *is* isolated singletons
	// (the AMD 4 KiB-slot sweep) must not smooth them away.
	HealSamples int
}

// Engine shards scans over a VA range across workers, producing one verdict
// of type V per probed index.
type Engine[V comparable] struct {
	cfg     Config
	factory Factory[V]
	skip    func(i int) bool
	skipV   V
}

// New creates an engine. The factory is invoked once per shard at the start
// of each Scan call.
func New[V comparable](cfg Config, factory Factory[V]) *Engine[V] {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ChunkPages <= 0 {
		cfg.ChunkPages = DefaultChunkPages
	}
	if cfg.HealSamples == 0 {
		cfg.HealSamples = 3
	}
	return &Engine[V]{cfg: cfg, factory: factory}
}

// SetSkip excludes indices from probing and healing: a skipped index gets
// verdict v and zero cycles without consuming a probe or any of the chunk's
// noise stream, so skipping keeps chunk determinism intact (the user-scan
// store pass skips the pages its load pass read as unmapped).
func (e *Engine[V]) SetSkip(skip func(i int) bool, v V) {
	e.skip, e.skipV = skip, v
}

// Result is one scan's merged output.
type Result[V comparable] struct {
	// Verdicts and Cycles hold the per-index verdicts and decision
	// measurements, index i corresponding to start + i*stride.
	Verdicts []V
	Cycles   []float64
	// SimCycles is the total simulated cycle cost of all probes (the
	// single-attacker probing time; parallelism is host-side only).
	SimCycles uint64
	// Chunks, Workers and Healed describe the run shape.
	Chunks  int
	Workers int
	Healed  int
}

// Scan probes n addresses from start at the given stride and returns the
// merged, healed result. Output is bit-identical for a fixed Config.Seed
// regardless of Config.Workers.
func (e *Engine[V]) Scan(start paging.VirtAddr, n int, stride uint64) Result[V] {
	res := Result[V]{Verdicts: make([]V, n), Cycles: make([]float64, n)}
	if n <= 0 {
		return res
	}
	chunk := e.cfg.ChunkPages
	chunks := (n + chunk - 1) / chunk
	nw := e.cfg.Workers
	if nw > chunks {
		nw = chunks
	}
	res.Chunks = chunks
	res.Workers = nw

	workers := make([]Worker[V], nw)
	for i := range workers {
		workers[i] = e.factory(i)
	}

	// One shared fan-out state and ONE shard-body closure for all workers:
	// spawning `go body()` with no arguments allocates nothing per worker
	// (each goroutine picks its worker off the shared index), where a
	// per-iteration closure — or a `go f(arg)` arg frame — used to cost ~3
	// heap allocations per worker per scan. Result slices are captured by
	// value (never reassigned), so the fan-out's only per-scan allocations
	// are the shared-state box and the closure itself.
	var sh struct {
		widx, next atomic.Int64
		sim        atomic.Uint64
		wg         sync.WaitGroup
	}
	verdicts, cycles := res.Verdicts, res.Cycles
	body := func() {
		defer sh.wg.Done()
		wk := workers[sh.widx.Add(1)-1]
		bw, batched := wk.(BatchWorker[V])
		var local uint64
		for {
			c := int(sh.next.Add(1)) - 1
			if c >= chunks {
				break
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wk.Start(StreamSeed(e.cfg.Seed, uint64(c)))
			if batched {
				// The worker owns the whole chunk: it writes straight
				// into its disjoint window of the shared result slices.
				bw.ProbeChunk(start, stride, lo, hi, e.skip, e.skipV,
					verdicts[lo:hi], cycles[lo:hi])
			} else {
				for i := lo; i < hi; i++ {
					if e.skip != nil && e.skip(i) {
						verdicts[i] = e.skipV
						continue
					}
					s := wk.Probe(start + paging.VirtAddr(uint64(i)*stride))
					cycles[i] = s.Cycles
					verdicts[i] = s.Verdict
				}
			}
			local += wk.Elapsed()
		}
		sh.sim.Add(local)
	}
	sh.wg.Add(nw)
	for w := 0; w < nw; w++ {
		go body()
	}
	sh.wg.Wait()
	res.SimCycles = sh.sim.Load()

	if e.cfg.HealSamples > 0 {
		e.heal(&res, start, n, stride, workers[0])
	}
	return res
}

// heal re-probes (min-of-HealSamples) every index whose verdict disagrees
// with a neighbour — isolated flips AND run edges. Interrupt spikes produce
// misreads that either split a module or image run in two (isolated flip)
// or silently shorten a run by one (edge flip: the misread agrees with the
// unmapped side, so an isolated-only rule never catches it and an
// exact-run-length signature match fails). Genuine boundaries are stable
// under the re-probe: noise is additive, so the minimum converges to the
// true class latency and the verdict stands. The pass runs single-threaded
// in ascending index order on a chunk-independent seed, so its output
// depends only on the merged first-pass result. Skipped indices are
// neither healed nor re-probed.
func (e *Engine[V]) heal(res *Result[V], start paging.VirtAddr, n int, stride uint64, w Worker[V]) {
	w.Start(StreamSeed(e.cfg.Seed, uint64(res.Chunks)+1))
	healer, custom := w.(Healer[V])
	for i := 0; i < n; i++ {
		if e.skip != nil && e.skip(i) {
			continue
		}
		left := i > 0 && res.Verdicts[i-1] != res.Verdicts[i]
		right := i < n-1 && res.Verdicts[i+1] != res.Verdicts[i]
		if !(left || right) {
			continue
		}
		va := start + paging.VirtAddr(uint64(i)*stride)
		if custom {
			// Multi-measurement verdicts (the fused user scan) re-probe and
			// re-classify themselves.
			res.Cycles[i], res.Verdicts[i] = healer.HealProbe(va, e.cfg.HealSamples, res.Cycles[i], res.Verdicts[i])
			res.Healed++
			continue
		}
		best := res.Cycles[i]
		for s := 0; s < e.cfg.HealSamples; s++ {
			if pr := w.Probe(va); pr.Cycles < best {
				best = pr.Cycles
			}
		}
		res.Cycles[i] = best
		res.Verdicts[i] = w.Classify(best)
		res.Healed++
	}
	res.SimCycles += w.Elapsed()
}

// PostSweepStream is the stream id reserved for the caller's canonical
// post-sweep state (the parent machine's noise reseed after a sweep). No
// scan can reach it: chunk streams use ids 0..chunks-1 and the healing
// pass chunks+1, both bounded by the probe count.
const PostSweepStream = ^uint64(0) - 1

// StreamSeed derives the noise seed of one stream of a scan from the
// engine seed with a SplitMix64-style finalizer, so streams are
// statistically independent yet a pure function of (seed, stream id) —
// and distinct ids never collide (the id map is injective and the
// finalizer a bijection). Chunks use their index as the id; the healing
// pass uses chunks+1; PostSweepStream is reserved for callers.
func StreamSeed(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
