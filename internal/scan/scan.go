package scan

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/paging"
)

// DefaultChunkPages is the default shard granularity. Large enough that the
// per-chunk reset cost is amortized over many probes, small enough that a
// 512-slot kernel scan still splits across workers.
const DefaultChunkPages = 128

// Sample is one probe outcome.
type Sample struct {
	// Cycles is the probe's decision measurement.
	Cycles float64
	// Fast is the probe's verdict against the calibrated threshold.
	Fast bool
}

// Worker is one shard's probing context. Implementations wrap a calibrated
// prober on a private machine replica. Workers are used by one goroutine at
// a time; distinct workers run concurrently.
type Worker interface {
	// Start resets the worker for one chunk: translation caches emptied and
	// the noise stream reseeded from chunkSeed, so the chunk's measurements
	// are a pure function of (shared victim state, chunkSeed).
	Start(chunkSeed uint64)
	// Probe measures one address.
	Probe(va paging.VirtAddr) Sample
	// Classify applies the calibrated fast/slow threshold to a reduced
	// measurement (used when the healing pass merges re-probe minima).
	Classify(cycles float64) bool
	// Elapsed returns the simulated cycles consumed since the last Start.
	Elapsed() uint64
}

// Factory builds the worker for one shard. It is called sequentially from
// the scanning goroutine before any worker runs, so implementations may
// clone machines without locking.
type Factory func(id int) Worker

// Config tunes an Engine.
type Config struct {
	// Workers is the number of concurrent shards. 0 means GOMAXPROCS.
	Workers int
	// ChunkPages is the shard granularity in probe indices. 0 means
	// DefaultChunkPages.
	ChunkPages int
	// Seed derives the per-chunk noise seeds. The same Seed yields
	// bit-identical results at any worker count.
	Seed uint64
	// HealSamples is the re-probe count of the healing pass. 0 means 3
	// (min-of-3, matching the paper's second pass).
	HealSamples int
}

// Engine shards scans over a VA range across workers.
type Engine struct {
	cfg     Config
	factory Factory
}

// New creates an engine. The factory is invoked once per shard at the start
// of each Scan call.
func New(cfg Config, factory Factory) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ChunkPages <= 0 {
		cfg.ChunkPages = DefaultChunkPages
	}
	if cfg.HealSamples <= 0 {
		cfg.HealSamples = 3
	}
	return &Engine{cfg: cfg, factory: factory}
}

// Result is one scan's merged output.
type Result struct {
	// Mapped and Cycles hold the per-index verdicts and decision
	// measurements, index i corresponding to start + i*stride.
	Mapped []bool
	Cycles []float64
	// SimCycles is the total simulated cycle cost of all probes (the
	// single-attacker probing time; parallelism is host-side only).
	SimCycles uint64
	// Chunks, Workers and Healed describe the run shape.
	Chunks  int
	Workers int
	Healed  int
}

// Scan probes n addresses from start at the given stride and returns the
// merged, healed result. Output is bit-identical for a fixed Config.Seed
// regardless of Config.Workers.
func (e *Engine) Scan(start paging.VirtAddr, n int, stride uint64) Result {
	res := Result{Mapped: make([]bool, n), Cycles: make([]float64, n)}
	if n <= 0 {
		return res
	}
	chunk := e.cfg.ChunkPages
	chunks := (n + chunk - 1) / chunk
	nw := e.cfg.Workers
	if nw > chunks {
		nw = chunks
	}
	res.Chunks = chunks
	res.Workers = nw

	workers := make([]Worker, nw)
	for i := range workers {
		workers[i] = e.factory(i)
	}

	var next atomic.Int64
	var sim atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(wk Worker) {
			defer wg.Done()
			var local uint64
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					break
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				wk.Start(chunkSeed(e.cfg.Seed, uint64(c)))
				for i := lo; i < hi; i++ {
					s := wk.Probe(start + paging.VirtAddr(uint64(i)*stride))
					res.Cycles[i] = s.Cycles
					res.Mapped[i] = s.Fast
				}
				local += wk.Elapsed()
			}
			sim.Add(local)
		}(workers[w])
	}
	wg.Wait()
	res.SimCycles = sim.Load()

	e.heal(&res, start, n, stride, workers[0])
	return res
}

// heal re-probes (min-of-HealSamples) every index whose verdict disagrees
// with both neighbours: interrupt spikes produce isolated false "unmapped"
// reads that would split a module or image run in two. It runs
// single-threaded in ascending index order on a chunk-independent seed, so
// its output depends only on the merged first-pass result.
func (e *Engine) heal(res *Result, start paging.VirtAddr, n int, stride uint64, w Worker) {
	w.Start(chunkSeed(e.cfg.Seed, uint64(res.Chunks)+1))
	for i := 0; i < n; i++ {
		left := i == 0 || res.Mapped[i-1] != res.Mapped[i]
		right := i == n-1 || res.Mapped[i+1] != res.Mapped[i]
		if !(left && right) {
			continue
		}
		va := start + paging.VirtAddr(uint64(i)*stride)
		best := res.Cycles[i]
		for s := 0; s < e.cfg.HealSamples; s++ {
			if pr := w.Probe(va); pr.Cycles < best {
				best = pr.Cycles
			}
		}
		res.Cycles[i] = best
		res.Mapped[i] = w.Classify(best)
		res.Healed++
	}
	res.SimCycles += w.Elapsed()
}

// chunkSeed derives the noise seed of one chunk from the engine seed with a
// SplitMix64-style finalizer, so chunk streams are statistically
// independent yet a pure function of (seed, chunk).
func chunkSeed(seed, chunk uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(chunk+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
