package scan

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/paging"
)

// detWorker is a purely deterministic fake worker: every probe outcome is a
// function of (va, chunk seed, position in the chunk stream), emulating a
// reseeded noise source. It also records which goroutine ran it to verify
// single-goroutine use.
type detWorker struct {
	mappedLo, mappedHi paging.VirtAddr
	seed               uint64
	n                  uint64
	elapsed            uint64

	mu    sync.Mutex
	calls int
}

func (w *detWorker) Start(chunkSeed uint64) {
	w.seed = chunkSeed
	w.n = 0
	w.elapsed = 0
}

func (w *detWorker) Probe(va paging.VirtAddr) Sample[bool] {
	w.mu.Lock()
	w.calls++
	w.mu.Unlock()
	w.n++
	noise := float64(StreamSeed(w.seed, w.n)%7) - 3 // [-3, 3] pseudo-noise
	mapped := va >= w.mappedLo && va < w.mappedHi
	cycles := 100.0 + noise
	if !mapped {
		cycles = 140.0 + noise
	}
	w.elapsed += uint64(cycles)
	return Sample[bool]{Cycles: cycles, Verdict: w.Classify(cycles)}
}

func (w *detWorker) Classify(cycles float64) bool { return cycles < 120 }
func (w *detWorker) Elapsed() uint64              { return w.elapsed }

func detFactory(lo, hi paging.VirtAddr) Factory[bool] {
	return func(id int) Worker[bool] { return &detWorker{mappedLo: lo, mappedHi: hi} }
}

const testStride = uint64(paging.Page4K)

func runScan(t *testing.T, workers, n int) Result[bool] {
	t.Helper()
	start := paging.VirtAddr(0x1000000)
	lo := start + paging.VirtAddr(100*testStride)
	hi := start + paging.VirtAddr(300*testStride)
	eng := New(Config{Workers: workers, ChunkPages: 64, Seed: 42}, detFactory(lo, hi))
	return eng.Scan(start, n, testStride)
}

// Parallel output must be bit-identical to sequential output for a fixed
// seed, at any worker count — the engine's core guarantee.
func TestScanParallelMatchesSequential(t *testing.T) {
	const n = 1000
	seq := runScan(t, 1, n)
	for _, w := range []int{2, 3, 8, 16} {
		par := runScan(t, w, n)
		if !reflect.DeepEqual(seq.Verdicts, par.Verdicts) {
			t.Fatalf("workers=%d: verdicts differ from sequential", w)
		}
		if !reflect.DeepEqual(seq.Cycles, par.Cycles) {
			t.Fatalf("workers=%d: cycle measurements differ from sequential", w)
		}
		if seq.SimCycles != par.SimCycles {
			t.Fatalf("workers=%d: SimCycles %d != sequential %d", w, par.SimCycles, seq.SimCycles)
		}
	}
}

func TestScanFindsMappedRun(t *testing.T) {
	res := runScan(t, 4, 1000)
	for i, m := range res.Verdicts {
		want := i >= 100 && i < 300
		if m != want {
			t.Fatalf("index %d: mapped=%v, want %v", i, m, want)
		}
	}
	if res.Chunks != (1000+63)/64 {
		t.Fatalf("chunks = %d", res.Chunks)
	}
}

// classWorker probes into a small verdict enum, exercising the engine with
// a non-bool verdict type (the user-scan store pass shape).
type classWorker struct {
	detWorker
}

func (w *classWorker) Probe(va paging.VirtAddr) Sample[int] {
	s := w.detWorker.Probe(va)
	return Sample[int]{Cycles: s.Cycles, Verdict: w.Classify(s.Cycles)}
}

func (w *classWorker) Classify(cycles float64) int {
	if cycles < 120 {
		return 2 // "writable"
	}
	return 1 // "read-only"
}

// vaRecorder wraps a worker and records every VA handed to Probe, so a
// test can prove an address was never probed at all (not merely that its
// result slot was overwritten afterwards).
type vaRecorder struct {
	*classWorker
	probed map[paging.VirtAddr]int
}

func (w *vaRecorder) Probe(va paging.VirtAddr) Sample[int] {
	w.probed[va]++
	return w.classWorker.Probe(va)
}

// The engine must support non-bool verdicts with skipped indices: a
// skipped index gets the skip verdict and zero cycles, its VA is never
// passed to Probe (no noise draw — the determinism contract of the
// user-scan store pass), and it is excluded from healing.
func TestScanSkipIndices(t *testing.T) {
	start := paging.VirtAddr(0x1000000)
	lo := start
	hi := start + paging.VirtAddr(1000*testStride)
	probed := make(map[paging.VirtAddr]int)
	eng := New(Config{Workers: 1, ChunkPages: 64, Seed: 9}, func(id int) Worker[int] {
		return &vaRecorder{classWorker: &classWorker{detWorker{mappedLo: lo, mappedHi: hi}}, probed: probed}
	})
	skip := func(i int) bool { return i%3 == 0 }
	eng.SetSkip(skip, 0)
	const n = 600
	res := eng.Scan(start, n, testStride)
	for i := 0; i < n; i++ {
		va := start + paging.VirtAddr(uint64(i)*testStride)
		if skip(i) {
			if res.Verdicts[i] != 0 || res.Cycles[i] != 0 {
				t.Fatalf("index %d: skipped index has verdict %d, cycles %v", i, res.Verdicts[i], res.Cycles[i])
			}
			if probed[va] != 0 {
				t.Fatalf("index %d: skipped index probed %d times", i, probed[va])
			}
			continue
		}
		if probed[va] == 0 {
			t.Fatalf("index %d: probe-able index never probed", i)
		}
		if res.Verdicts[i] == 0 {
			t.Fatalf("index %d: probed index has skip verdict", i)
		}
	}
}

// Skipped scans must stay bit-identical across worker counts too.
func TestScanSkipParallelParity(t *testing.T) {
	start := paging.VirtAddr(0x1000000)
	run := func(workers int) Result[int] {
		eng := New(Config{Workers: workers, ChunkPages: 64, Seed: 17}, func(id int) Worker[int] {
			return &classWorker{detWorker{mappedLo: start, mappedHi: start + paging.VirtAddr(1000*testStride)}}
		})
		eng.SetSkip(func(i int) bool { return i%5 == 2 }, 0)
		return eng.Scan(start, 777, testStride)
	}
	seq := run(1)
	for _, w := range []int{2, 8} {
		par := run(w)
		if !reflect.DeepEqual(seq.Verdicts, par.Verdicts) || !reflect.DeepEqual(seq.Cycles, par.Cycles) {
			t.Fatalf("workers=%d: skipped scan differs from sequential", w)
		}
		if seq.SimCycles != par.SimCycles {
			t.Fatalf("workers=%d: SimCycles differ", w)
		}
	}
}

// healWorker reads a chosen index as slow (an isolated interrupt-spike
// misread) on the first probe of that address only; re-probes are fast.
type healWorker struct {
	detWorker
	flipVA paging.VirtAddr
	probed map[paging.VirtAddr]int
}

func (w *healWorker) Probe(va paging.VirtAddr) Sample[bool] {
	s := w.detWorker.Probe(va)
	w.probed[va]++
	if va == w.flipVA && w.probed[va] == 1 {
		s.Cycles = 150
		s.Verdict = false
	}
	return s
}

func TestScanHealsIsolatedMisread(t *testing.T) {
	start := paging.VirtAddr(0x1000000)
	lo := start
	hi := start + paging.VirtAddr(500*testStride)
	flip := start + paging.VirtAddr(250*testStride)
	probed := make(map[paging.VirtAddr]int)
	eng := New(Config{Workers: 1, ChunkPages: 64, Seed: 7}, func(id int) Worker[bool] {
		return &healWorker{detWorker: detWorker{mappedLo: lo, mappedHi: hi}, flipVA: flip, probed: probed}
	})
	res := eng.Scan(start, 500, testStride)
	if !res.Verdicts[250] {
		t.Fatal("isolated misread not healed")
	}
	if res.Healed == 0 {
		t.Fatal("healing pass did not run")
	}
	if probed[flip] < 4 {
		t.Fatalf("flip index probed %d times, want scan + 3 heal probes", probed[flip])
	}
}

// HealSamples < 0 must disable the healing pass outright: sweeps whose
// signal is isolated singletons (the AMD 4 KiB-slot sweep) would otherwise
// have their hits re-probed away.
func TestScanHealDisabled(t *testing.T) {
	start := paging.VirtAddr(0x1000000)
	flip := start + paging.VirtAddr(250*testStride)
	probed := make(map[paging.VirtAddr]int)
	eng := New(Config{Workers: 1, ChunkPages: 64, Seed: 7, HealSamples: -1}, func(id int) Worker[bool] {
		return &healWorker{
			detWorker: detWorker{mappedLo: start, mappedHi: start + paging.VirtAddr(500*testStride)},
			flipVA:    flip, probed: probed,
		}
	})
	res := eng.Scan(start, 500, testStride)
	if res.Healed != 0 {
		t.Fatalf("healing ran (%d) with HealSamples=-1", res.Healed)
	}
	if res.Verdicts[250] {
		t.Fatal("isolated misread healed despite disabled healing")
	}
	if probed[flip] != 1 {
		t.Fatalf("flip index probed %d times, want exactly 1", probed[flip])
	}
}

func TestScanSmallAndEmptyRanges(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65} {
		res := runScan(t, 8, n)
		if len(res.Verdicts) != n || len(res.Cycles) != n {
			t.Fatalf("n=%d: result length %d/%d", n, len(res.Verdicts), len(res.Cycles))
		}
		if n > 0 && res.Workers > res.Chunks {
			t.Fatalf("n=%d: %d workers for %d chunks", n, res.Workers, res.Chunks)
		}
	}
}

func TestChunkSeedDistinct(t *testing.T) {
	seen := make(map[uint64]uint64)
	for c := uint64(0); c < 10000; c++ {
		s := StreamSeed(99, c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("stream seeds collide: chunks %d and %d", prev, c)
		}
		seen[s] = c
	}
}

func TestScanWorkerCountsExercised(t *testing.T) {
	// Smoke the goroutine fan-out shapes, including workers > chunks.
	for _, w := range []int{1, 2, 5, 32} {
		res := runScan(t, w, 320) // 5 chunks of 64
		want := w
		if want > 5 {
			want = 5
		}
		if res.Workers != want {
			t.Fatalf("workers=%d: engine used %d, want %d", w, res.Workers, want)
		}
	}
}

func ExampleEngine_Scan() {
	start := paging.VirtAddr(0x1000000)
	eng := New(Config{Workers: 4, ChunkPages: 64, Seed: 1},
		detFactory(start+paging.VirtAddr(2*testStride), start+paging.VirtAddr(6*testStride)))
	res := eng.Scan(start, 8, testStride)
	fmt.Println(res.Verdicts)
	// Output: [false false true true true true false false]
}

// batchWorker drives the same deterministic probe model as classWorker
// through the chunk-granular BatchWorker path, recording that the engine
// actually handed it whole chunks.
type batchWorker struct {
	classWorker
	chunks int
}

func (w *batchWorker) ProbeChunk(start paging.VirtAddr, stride uint64, lo, hi int,
	skip func(int) bool, skipV int, verdicts []int, cycles []float64) {
	w.chunks++
	for i := lo; i < hi; i++ {
		if skip != nil && skip(i) {
			verdicts[i-lo] = skipV
			continue
		}
		s := w.Probe(start + paging.VirtAddr(uint64(i)*stride))
		cycles[i-lo] = s.Cycles
		verdicts[i-lo] = s.Verdict
	}
}

// A BatchWorker whose ProbeChunk replays the per-index probe loop must
// produce output bit-identical to the per-index Worker at every worker
// count — including skip handling and the (per-index) healing pass.
func TestScanBatchWorkerMatchesPerIndex(t *testing.T) {
	start := paging.VirtAddr(0x1000000)
	lo := start + paging.VirtAddr(50*testStride)
	hi := start + paging.VirtAddr(400*testStride)
	skip := func(i int) bool { return i%7 == 3 }
	run := func(workers int, batched bool) Result[int] {
		eng := New(Config{Workers: workers, ChunkPages: 64, Seed: 23}, func(id int) Worker[int] {
			if batched {
				return &batchWorker{classWorker: classWorker{detWorker{mappedLo: lo, mappedHi: hi}}}
			}
			return &classWorker{detWorker{mappedLo: lo, mappedHi: hi}}
		})
		eng.SetSkip(skip, 0)
		return eng.Scan(start, 500, testStride)
	}
	want := run(1, false)
	for _, w := range []int{1, 2, 8} {
		got := run(w, true)
		if !reflect.DeepEqual(want.Verdicts, got.Verdicts) || !reflect.DeepEqual(want.Cycles, got.Cycles) {
			t.Fatalf("workers=%d: batched scan differs from per-index scan", w)
		}
		if want.SimCycles != got.SimCycles {
			t.Fatalf("workers=%d: batched SimCycles %d != per-index %d", w, got.SimCycles, want.SimCycles)
		}
	}
	// The batch path must actually be exercised.
	probe := &batchWorker{classWorker: classWorker{detWorker{mappedLo: lo, mappedHi: hi}}}
	eng := New(Config{Workers: 1, ChunkPages: 64, Seed: 23}, func(id int) Worker[int] { return probe })
	eng.Scan(start, 500, testStride)
	if probe.chunks != (500+63)/64 {
		t.Fatalf("ProbeChunk ran for %d chunks, want %d", probe.chunks, (500+63)/64)
	}
}

// healerWorker plants one first-probe misread (like healWorker) and takes
// over its repair through the Healer hook.
type healerWorker struct {
	classWorker
	flipVA paging.VirtAddr
	first  bool
	healed []paging.VirtAddr
}

func (w *healerWorker) Probe(va paging.VirtAddr) Sample[int] {
	s := w.classWorker.Probe(va)
	if va == w.flipVA && !w.first {
		w.first = true
		s.Cycles, s.Verdict = 150, 1
	}
	return s
}

func (w *healerWorker) HealProbe(va paging.VirtAddr, samples int, cycles float64, v int) (float64, int) {
	w.healed = append(w.healed, va)
	best := cycles
	for s := 0; s < samples; s++ {
		if pr := w.Probe(va); pr.Cycles < best {
			best = pr.Cycles
		}
	}
	return best, w.Classify(best)
}

// When a worker implements Healer, the engine's healing pass must route
// disagreeing indices through HealProbe (which can re-derive multi-channel
// verdicts) instead of the default min-merge, and the repair must land.
func TestScanHealerHookRepairsMisread(t *testing.T) {
	start := paging.VirtAddr(0x1000000)
	lo, hi := start, start+paging.VirtAddr(1000*testStride)
	flip := start + paging.VirtAddr(40*testStride)
	w := &healerWorker{classWorker: classWorker{detWorker{mappedLo: lo, mappedHi: hi}}, flipVA: flip}
	eng := New(Config{Workers: 1, ChunkPages: 64, Seed: 31}, func(id int) Worker[int] { return w })
	res := eng.Scan(start, 200, testStride)
	if len(w.healed) == 0 {
		t.Fatal("Healer hook never invoked for the planted misread")
	}
	if res.Verdicts[40] != 2 {
		t.Fatalf("planted misread not repaired: verdict %d", res.Verdicts[40])
	}
	if res.Healed == 0 {
		t.Fatal("Healed count not recorded for Healer-hook repairs")
	}
}
