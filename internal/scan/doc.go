// Package scan is the sharded, parallel scan engine behind every sweep in
// the reproduction: the large virtual-address sweeps (kernel base, module
// region, Windows 2^18-slot region, the fused user-space fine scan, the
// AMD walk-termination sweep) and the temporal §IV-E attacks (behavior
// spy, app fingerprinting), whose probe axis is time rather than address.
//
// # Architecture
//
// The engine is generic over the verdict type V: a sweep produces one
// verdict per probed index — a mapped/unmapped bool, a permission class,
// a "walk reaches a PT" bool, a whole spy-tick observation record — plus
// the raw decision measurement. Any probe whose outcome reduces to a
// comparable verdict can be sharded by wrapping its probing context in a
// Worker[V].
//
// The probe index is an abstract counter, not necessarily an address: the
// engine computes start + i*stride and hands it to the worker, which may
// read it as a VA (the address sweeps) or as a tick number (the temporal
// sweeps use start 0, stride 1 and replay the victim's deterministic
// event timeline for tick i before probing — see core's spyWorker and
// behavior.Driver.ReplayWindow). Chunks of ticks parallelize exactly like
// chunks of pages because a tick's outcome is a pure function of (victim
// image, driver schedule, tick index, chunk noise stream).
//
// A scan partitions its probe index range [0, n) into fixed-size chunks
// and fans the chunks out across N worker goroutines through a
// work-stealing counter. Each worker owns a private probing context (in
// the simulator: a machine.Machine replica sharing the victim's address
// spaces copy-on-read, with private TLB/PSC/PTE-line/counter/noise state —
// see Machine.Clone), so workers never contend on shared mutable state.
// An optional skip list (Engine.SetSkip) excludes indices — the user-scan
// store pass skips pages its load pass read as unmapped — without
// consuming probes or noise.
//
// # Batched probe pipeline
//
// A worker that implements BatchWorker receives whole chunks instead of
// one Probe call per index: the engine hands it the chunk's index range
// and the preallocated per-shard windows of the shared result slices, and
// the worker writes verdicts and measurements straight into them. The core
// workers feed such chunks to Prober.ProbeBatch, which turns the chunk
// into one masked-op slice for machine.MeasureBatch — the double-execution
// sequence per VA is unchanged (warm-up, measured runs, noise, reduction),
// but op plumbing, noise-sigma composition and reduction setup are paid
// once per chunk instead of once per sample, and all scratch lives on the
// (pooled) prober, so a steady-state batched sweep allocates nothing per
// probe and scan cost stops growing with the worker count. Batched and
// per-index execution are bit-identical by contract.
//
// A verdict need not come from a single measurement: the fused §IV-F user
// scan probes each chunk twice (a load sub-pass over every page, then a
// store sub-pass over the pages the loads read as mapped) and emits one
// PermClass verdict per VA from the pair — one sweep where two serialized
// sweeps used to run. Such workers implement Healer so the healing pass
// re-derives the multi-channel verdict instead of min-merging a single
// cycles value, and they draw each sub-pass's noise from its own
// chunk-seeded stream (machine.SwapNoise), so a page's store noise does
// not depend on how many earlier pages were mapped.
//
// # Zero-allocation temporal path
//
// The temporal sweeps run thousands of ticks per observation window, and
// every tick replays victim events and probes every target's leading
// pages — so the per-tick path is held to a zero-allocation steady state
// (alloc-guard tests in core pin it). Three ownership rules make it hold:
//
//  1. Walk scratch belongs to the machine the events run on. A victim
//     event (machine.KernelTouch) page-walks with its machine's own
//     reusable visited buffer, never a shared one — so a driver replaying
//     disjoint windows on N worker replicas (behavior.Driver.ReplayWindow,
//     which is stateless by contract) touches N private scratches and
//     stays replica-safe without locks or allocation.
//  2. Probe scratch belongs to the (pooled) prober. A tick's per-target
//     page sweep goes through one batched TLB probe into prober-owned
//     measurement windows, bit-identical to the per-page probe loop it
//     replaced.
//  3. The fan-out allocates per scan, not per worker. Engine.Scan spawns
//     its shard goroutines from one shared closure with no arguments (each
//     goroutine picks its worker off a shared atomic index), so the spawn
//     loop itself contributes nothing per worker; what remains per worker
//     is the wrapper struct its factory builds.
//
// # Worker pool
//
// Creating a worker is the expensive part of a scan (Machine.Clone builds
// the replica's TLB, paging-structure and PTE-line caches). A Pool is a
// persistent free list of replicas shared by every scan in a session:
// Worker factories draw replicas from the pool and return them after the
// merge, and a reused replica is re-synced to its current parent with
// Machine.Rebind (structure reuse, zero allocations) instead of
// re-cloned. The core pools whole calibrated probers, so batch scratch
// buffers survive across scans too. Concurrent scans may share one pool;
// each replica is handed to exactly one scan at a time.
//
// # Determinism
//
// Output is bit-identical for a fixed seed regardless of worker count,
// scheduling, or replica history (pooled vs fresh). Two rules make that
// hold:
//
//  1. Per-chunk state reset. Worker.Start is called before each chunk with
//     a seed derived only from (engine seed, chunk index); the worker
//     resets its translation caches and reseeds its noise stream, so a
//     chunk's measurements depend only on the chunk, never on which worker
//     ran it, what it probed before, or which earlier scans it served.
//  2. Deterministic merge. Workers write results into disjoint index ranges
//     of the shared output slices; simulated-cycle totals are summed with
//     commutative integer addition; and the healing pass runs
//     single-threaded in ascending index order on its own seeded stream
//     after the merge.
//
// The healing pass (the paper's second pass) re-probes, min-of-k, every
// index whose verdict disagrees with a neighbour — both isolated flips
// (an interrupt spike splitting a run in two) and run edges (a spike
// silently shortening a run, which breaks exact-run-length signatures).
// Sweeps whose true signal is isolated singletons — the AMD 4 KiB-slot
// sweep — disable it with Config.HealSamples < 0.
//
// The per-chunk reset is a simulator-level operation (no attacker time is
// charged): sharding models a faster host, not a different attack.
package scan
