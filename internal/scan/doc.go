// Package scan is the sharded, parallel scan engine behind the large
// virtual-address sweeps (kernel base, module region, Windows 2^18-slot
// region, user-space fine scan).
//
// # Architecture
//
// A scan partitions its probe index range [0, n) into fixed-size chunks and
// fans the chunks out across N worker goroutines through a work-stealing
// counter. Each worker owns a private probing context (in the simulator: a
// machine.Machine replica sharing the victim's address spaces copy-on-read,
// with private TLB/PSC/PTE-line/counter/noise state — see Machine.Clone),
// so workers never contend on shared mutable state.
//
// # Determinism
//
// Parallel output is bit-identical to sequential output for a fixed seed,
// regardless of worker count or scheduling. Two rules make that hold:
//
//  1. Per-chunk state reset. Worker.Start is called before each chunk with
//     a seed derived only from (engine seed, chunk index); the worker
//     resets its translation caches and reseeds its noise stream, so a
//     chunk's measurements depend only on the chunk, never on which worker
//     ran it or what it probed before.
//  2. Deterministic merge. Workers write results into disjoint index ranges
//     of the shared output slices; simulated-cycle totals are summed with
//     commutative integer addition; and the healing pass (re-probe of
//     isolated verdict flips, the paper's second pass) runs single-threaded
//     in ascending index order on its own seeded stream after the merge.
//
// The per-chunk reset is a simulator-level operation (no attacker time is
// charged): sharding models a faster host, not a different attack.
package scan
