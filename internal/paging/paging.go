// Package paging implements the x86-64 4-level radix page tables the
// simulator translates through: PML4 → PDPT → PD → PT, with 4 KiB, 2 MiB
// and 1 GiB mappings and the architectural PTE flag set.
//
// The structures are real radix tables (512-entry nodes indexed by the
// virtual-address bit fields), not an address→flags map: the attacks in the
// paper leak the *level* at which a hardware page-table walk terminates
// (primitive P3), so the walker must traverse genuine intermediate entries
// and report exactly which structures it touched.
package paging

import (
	"fmt"
	"sync/atomic"

	"repro/internal/phys"
)

// VirtAddr is a 64-bit virtual address. Only canonical addresses (bits
// 63:48 equal to bit 47) are translatable.
type VirtAddr uint64

// Level identifies a paging structure. Numbering follows walk depth:
// PML4 is consulted first, PT last.
type Level int

// Paging-structure levels. LevelNone marks "no walk happened" (TLB hit).
const (
	LevelNone Level = iota
	LevelPML4       // page map level 4 (bits 47:39)
	LevelPDPT       // page directory pointer table (bits 38:30); 1 GiB leaf
	LevelPD         // page directory (bits 29:21); 2 MiB leaf
	LevelPT         // page table (bits 20:12); 4 KiB leaf
)

// String returns the conventional name of the structure.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelPML4:
		return "PML4"
	case LevelPDPT:
		return "PDPT"
	case LevelPD:
		return "PD"
	case LevelPT:
		return "PT"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Page sizes supported by the three leaf levels.
const (
	Page4K = 1 << 12
	Page2M = 1 << 21
	Page1G = 1 << 30
)

// PageSize is a mapping granularity.
type PageSize uint64

// Bytes returns the size in bytes.
func (s PageSize) Bytes() uint64 { return uint64(s) }

// LeafLevel returns the paging level whose entries map pages of this size.
func (s PageSize) LeafLevel() Level {
	switch s {
	case Page4K:
		return LevelPT
	case Page2M:
		return LevelPD
	case Page1G:
		return LevelPDPT
	}
	panic(fmt.Sprintf("paging: invalid page size %#x", uint64(s)))
}

// Flags is the architectural PTE flag set (subset relevant to the attacks).
type Flags uint16

// PTE flag bits.
const (
	Present  Flags = 1 << 0 // P: translation valid
	Writable Flags = 1 << 1 // R/W: writes allowed
	User     Flags = 1 << 2 // U/S: user-mode accessible
	Accessed Flags = 1 << 3 // A: set by hardware on first access
	Dirty    Flags = 1 << 4 // D: set by hardware on first write (assist!)
	Global   Flags = 1 << 5 // G: survives CR3 switches without PCID
	NoExec   Flags = 1 << 6 // NX: instruction fetch forbidden
)

// Has reports whether all bits in f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// String renders the flags in /proc/PID/maps style (rwx plus u/k and P).
func (f Flags) String() string {
	b := []byte("----")
	if f.Has(Present) {
		b[0] = 'p'
	}
	b[1] = 'r' // present pages are always readable on x86
	if !f.Has(Present) {
		b[1] = '-'
	}
	if f.Has(Writable) {
		b[2] = 'w'
	}
	if !f.Has(NoExec) && f.Has(Present) {
		b[3] = 'x'
	}
	s := string(b)
	if f.Has(User) {
		return s + "u"
	}
	return s + "k"
}

// entry is one slot of a paging structure.
type entry struct {
	flags Flags
	pfn   phys.PFN // leaf: mapped frame; interior: frame of the next table
	next  *table   // interior only
	leaf  bool     // true if this entry maps a page (PS bit or PT level)
}

// table is one 512-entry paging structure backed by a physical frame.
type table struct {
	frame   phys.PFN
	entries [512]entry
}

// index extraction per level.
func pml4Index(va VirtAddr) int { return int(va>>39) & 0x1ff }
func pdptIndex(va VirtAddr) int { return int(va>>30) & 0x1ff }
func pdIndex(va VirtAddr) int   { return int(va>>21) & 0x1ff }
func ptIndex(va VirtAddr) int   { return int(va>>12) & 0x1ff }

// Canonical reports whether va is a canonical 48-bit address.
func Canonical(va VirtAddr) bool {
	top := uint64(va) >> 47
	return top == 0 || top == 0x1ffff
}

// AddressSpace is one set of page tables rooted at a PML4 (one CR3 value).
// KPTI is modelled as two AddressSpaces per process sharing leaf frames.
type AddressSpace struct {
	alloc *phys.Allocator
	root  *table
	// ASID tags TLB entries; distinct address spaces get distinct ASIDs
	// so the TLB can model PCID-tagged entries.
	ASID uint16
	// version counts structural and flag mutations (Map/Unmap/Protect,
	// A/D-bit updates). machine.Snapshot records it so Restore can verify
	// the replay-purity contract: a snapshot only applies while the page
	// tables are bit-identical to snapshot time.
	version uint64
}

// Version returns the mutation counter. Two equal readings bracket a span
// with no page-table mutation of any kind.
func (as *AddressSpace) Version() uint64 { return as.version }

// nextASID is atomic: the service layer boots victim machines from
// concurrent executors. Only ASID *distinctness* is observable (TLB tag
// equality), so the allocation order — and therefore the concrete values —
// never affects simulation output.
var nextASID atomic.Uint32

// NewAddressSpace creates an empty address space drawing page-table frames
// from alloc.
func NewAddressSpace(alloc *phys.Allocator) *AddressSpace {
	return &AddressSpace{
		alloc: alloc,
		root:  &table{frame: alloc.Alloc()},
		ASID:  uint16(nextASID.Add(1)),
	}
}

// RootPFN returns the physical frame of the PML4 (the CR3 value).
func (as *AddressSpace) RootPFN() phys.PFN { return as.root.frame }

func (as *AddressSpace) childOf(t *table, idx int, flags Flags) (*table, error) {
	e := &t.entries[idx]
	if e.leaf {
		// A huge-page leaf already maps this slot; descending would
		// silently destroy the existing mapping.
		return nil, fmt.Errorf("paging: slot already mapped by a huge page")
	}
	if e.next == nil {
		e.next = &table{frame: as.alloc.Alloc()}
		e.pfn = e.next.frame
		e.flags = Present
	}
	// Interior entries accumulate the union of permissions beneath them,
	// as a real OS sets maximally-permissive intermediate entries.
	e.flags |= Present | (flags & (Writable | User))
	return e.next, nil
}

// Map establishes a mapping of size bytes at va → frame with the given
// flags. va must be size-aligned and canonical; the target slots must not
// already map a page. Present is implied.
func (as *AddressSpace) Map(va VirtAddr, size PageSize, frame phys.PFN, flags Flags) error {
	if !Canonical(va) {
		return fmt.Errorf("paging: map of non-canonical address %#x", uint64(va))
	}
	if uint64(va)%size.Bytes() != 0 {
		return fmt.Errorf("paging: map of unaligned address %#x (size %#x)", uint64(va), size.Bytes())
	}
	flags |= Present
	switch size {
	case Page1G:
		pdpt, err := as.childOf(as.root, pml4Index(va), flags)
		if err != nil {
			return err
		}
		e := &pdpt.entries[pdptIndex(va)]
		if e.flags.Has(Present) {
			return fmt.Errorf("paging: %#x already mapped at PDPT", uint64(va))
		}
		*e = entry{flags: flags, pfn: frame, leaf: true}
	case Page2M:
		pdpt, err := as.childOf(as.root, pml4Index(va), flags)
		if err != nil {
			return err
		}
		pd, err := as.childOf(pdpt, pdptIndex(va), flags)
		if err != nil {
			return err
		}
		e := &pd.entries[pdIndex(va)]
		if e.flags.Has(Present) {
			return fmt.Errorf("paging: %#x already mapped at PD", uint64(va))
		}
		*e = entry{flags: flags, pfn: frame, leaf: true}
	case Page4K:
		pdpt, err := as.childOf(as.root, pml4Index(va), flags)
		if err != nil {
			return err
		}
		pd, err := as.childOf(pdpt, pdptIndex(va), flags)
		if err != nil {
			return err
		}
		pt, err := as.childOf(pd, pdIndex(va), flags)
		if err != nil {
			return err
		}
		e := &pt.entries[ptIndex(va)]
		if e.flags.Has(Present) {
			return fmt.Errorf("paging: %#x already mapped at PT", uint64(va))
		}
		*e = entry{flags: flags, pfn: frame, leaf: true}
	default:
		return fmt.Errorf("paging: invalid page size %#x", size.Bytes())
	}
	as.version++
	return nil
}

// MapRange maps length bytes starting at va using pages of the given size,
// allocating fresh contiguous physical frames. It returns the first frame.
func (as *AddressSpace) MapRange(va VirtAddr, length uint64, size PageSize, flags Flags) (phys.PFN, error) {
	if length == 0 || length%size.Bytes() != 0 {
		return 0, fmt.Errorf("paging: range length %#x not a multiple of page size %#x", length, size.Bytes())
	}
	first := as.alloc.AllocContig(length / phys.FrameSize)
	for off := uint64(0); off < length; off += size.Bytes() {
		frame := first + phys.PFN(off/phys.FrameSize)
		if err := as.Map(va+VirtAddr(off), size, frame, flags); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// lookupLeaf returns the leaf entry mapping va, or nil if unmapped, along
// with the leaf's level.
func (as *AddressSpace) lookupLeaf(va VirtAddr) (*entry, Level) {
	e := &as.root.entries[pml4Index(va)]
	if !e.flags.Has(Present) {
		return nil, LevelPML4
	}
	e2 := &e.next.entries[pdptIndex(va)]
	if !e2.flags.Has(Present) {
		return nil, LevelPDPT
	}
	if e2.leaf {
		return e2, LevelPDPT
	}
	e3 := &e2.next.entries[pdIndex(va)]
	if !e3.flags.Has(Present) {
		return nil, LevelPD
	}
	if e3.leaf {
		return e3, LevelPD
	}
	e4 := &e3.next.entries[ptIndex(va)]
	if !e4.flags.Has(Present) {
		return nil, LevelPT
	}
	return e4, LevelPT
}

// Unmap removes the leaf mapping covering va. Intermediate tables are kept
// (as Linux does); unmapping an unmapped address is an error.
func (as *AddressSpace) Unmap(va VirtAddr) error {
	e, _ := as.lookupLeaf(va)
	if e == nil {
		return fmt.Errorf("paging: unmap of unmapped address %#x", uint64(va))
	}
	*e = entry{}
	as.version++
	return nil
}

// Protect replaces the permission flags of the leaf mapping covering va,
// preserving Present/Accessed/Dirty state. Used to model mprotect.
func (as *AddressSpace) Protect(va VirtAddr, flags Flags) error {
	e, _ := as.lookupLeaf(va)
	if e == nil {
		return fmt.Errorf("paging: protect of unmapped address %#x", uint64(va))
	}
	keep := e.flags & (Present | Accessed | Dirty)
	e.flags = keep | (flags &^ (Present | Accessed | Dirty))
	as.version++
	return nil
}

// SetDirty sets (or clears) the Dirty bit of the leaf mapping covering va.
func (as *AddressSpace) SetDirty(va VirtAddr, dirty bool) error {
	e, _ := as.lookupLeaf(va)
	if e == nil {
		return fmt.Errorf("paging: SetDirty of unmapped address %#x", uint64(va))
	}
	old := e.flags
	if dirty {
		e.flags |= Dirty
	} else {
		e.flags &^= Dirty
	}
	if e.flags != old {
		as.version++
	}
	return nil
}

// Walk is the architectural page-table walk result for one address.
type Walk struct {
	VA VirtAddr
	// Mapped is true if a leaf translation exists.
	Mapped bool
	// Flags are the leaf flags when Mapped (zero otherwise).
	Flags Flags
	// PFN is the 4 KiB-granular frame that va falls in when Mapped.
	PFN phys.PFN
	// Size is the leaf page size when Mapped.
	Size PageSize
	// TermLevel is the level at which the walk terminated: the leaf level
	// for a mapped address, or the level holding the first non-present
	// entry for an unmapped one.
	TermLevel Level
	// Visited lists the physical frames of every paging structure the walk
	// read, in order. The timing model charges a memory access per element
	// and the PTE-line cache is keyed by these frames.
	Visited []phys.PFN
	// Dirty reports whether the leaf already had its Dirty bit set.
	Dirty bool
}

// Translate performs an architectural walk for va. It never mutates
// Accessed/Dirty — the machine layer does that, because A/D updates are
// what trigger microcode assists.
//
// The visited buffer, if non-nil, is reused for the Visited slice to avoid
// per-probe allocations on hot probing loops.
func (as *AddressSpace) Translate(va VirtAddr, visited []phys.PFN) Walk {
	w := Walk{VA: va, Visited: visited[:0]}
	if !Canonical(va) {
		w.TermLevel = LevelPML4
		return w
	}
	t := as.root
	w.Visited = append(w.Visited, t.frame)
	e := &t.entries[pml4Index(va)]
	if !e.flags.Has(Present) {
		w.TermLevel = LevelPML4
		return w
	}
	t = e.next
	w.Visited = append(w.Visited, t.frame)
	e = &t.entries[pdptIndex(va)]
	if !e.flags.Has(Present) {
		w.TermLevel = LevelPDPT
		return w
	}
	if e.leaf {
		return as.finishWalk(w, va, e, LevelPDPT, Page1G)
	}
	t = e.next
	w.Visited = append(w.Visited, t.frame)
	e = &t.entries[pdIndex(va)]
	if !e.flags.Has(Present) {
		w.TermLevel = LevelPD
		return w
	}
	if e.leaf {
		return as.finishWalk(w, va, e, LevelPD, Page2M)
	}
	t = e.next
	w.Visited = append(w.Visited, t.frame)
	e = &t.entries[ptIndex(va)]
	if !e.flags.Has(Present) {
		w.TermLevel = LevelPT
		return w
	}
	return as.finishWalk(w, va, e, LevelPT, Page4K)
}

func (as *AddressSpace) finishWalk(w Walk, va VirtAddr, e *entry, lvl Level, size PageSize) Walk {
	w.Mapped = true
	w.Flags = e.flags
	w.Size = size
	w.TermLevel = lvl
	w.Dirty = e.flags.Has(Dirty)
	offFrames := (uint64(va) % size.Bytes()) / phys.FrameSize
	w.PFN = e.pfn + phys.PFN(offFrames)
	return w
}

// markAccess sets Accessed (and Dirty for writes) on the leaf covering va.
// Returns true if the Dirty bit transitioned 0→1, which on real hardware is
// performed by a microcode assist.
func (as *AddressSpace) MarkAccess(va VirtAddr, write bool) (dirtied bool) {
	e, _ := as.lookupLeaf(va)
	if e == nil {
		return false
	}
	old := e.flags
	e.flags |= Accessed
	if write && !e.flags.Has(Dirty) {
		e.flags |= Dirty
		dirtied = true
	}
	if e.flags != old {
		as.version++
	}
	return dirtied
}

// PageBase returns the base address of the page of the given size
// containing va.
func PageBase(va VirtAddr, size PageSize) VirtAddr {
	return va &^ VirtAddr(size.Bytes()-1)
}
