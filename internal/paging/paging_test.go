package paging

import (
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(phys.NewAllocator(4 << 30))
}

func TestMapTranslateRoundTrip4K(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0x7f0000123000)
	frame := phys.PFN(777)
	if err := as.Map(va, Page4K, frame, User|Writable); err != nil {
		t.Fatal(err)
	}
	w := as.Translate(va, nil)
	if !w.Mapped || w.PFN != frame || w.Size != Page4K || w.TermLevel != LevelPT {
		t.Fatalf("walk %+v", w)
	}
	if !w.Flags.Has(User | Writable | Present) {
		t.Fatalf("flags %v", w.Flags)
	}
	if len(w.Visited) != 4 {
		t.Fatalf("4K walk visited %d structures, want 4", len(w.Visited))
	}
}

func TestMapTranslate2M(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0xffffffff81200000)
	if err := as.Map(va, Page2M, 512, Global); err != nil {
		t.Fatal(err)
	}
	// An offset inside the huge page resolves to the offset frame.
	w := as.Translate(va+0x5000, nil)
	if !w.Mapped || w.Size != Page2M || w.TermLevel != LevelPD {
		t.Fatalf("walk %+v", w)
	}
	if w.PFN != 512+5 {
		t.Fatalf("pfn %d, want 517", w.PFN)
	}
	if len(w.Visited) != 3 {
		t.Fatalf("2M walk visited %d structures, want 3", len(w.Visited))
	}
}

func TestMapTranslate1G(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0xffffff8000000000)
	if err := as.Map(va, Page1G, 1<<18, 0); err != nil {
		t.Fatal(err)
	}
	w := as.Translate(va+Page2M+0x3000, nil)
	if !w.Mapped || w.Size != Page1G || w.TermLevel != LevelPDPT {
		t.Fatalf("walk %+v", w)
	}
	if len(w.Visited) != 2 {
		t.Fatalf("1G walk visited %d, want 2", len(w.Visited))
	}
}

func TestUnmappedTerminationLevels(t *testing.T) {
	as := newAS(t)
	// Populate one 4K mapping so intermediate tables exist around it.
	base := VirtAddr(0xffffffff80000000)
	if err := as.Map(base, Page4K, 9, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		va   VirtAddr
		term Level
	}{
		{base + 0x1000, LevelPT},                  // PT exists, PTE empty
		{base + 4*Page2M, LevelPD},                // PD exists, PDE empty
		{base - Page1G, LevelPDPT},                // PDPT exists (same PML4 slot), PDPTE empty
		{VirtAddr(0xffff800000000000), LevelPML4}, // untouched PML4 slot
	}
	for _, c := range cases {
		w := as.Translate(c.va, nil)
		if w.Mapped {
			t.Fatalf("%#x unexpectedly mapped", uint64(c.va))
		}
		if w.TermLevel != c.term {
			t.Errorf("%#x terminates at %v, want %v", uint64(c.va), w.TermLevel, c.term)
		}
	}
}

func TestNonCanonicalAddress(t *testing.T) {
	as := newAS(t)
	w := as.Translate(0x8000_00000000, nil) // bit 47 set, upper bits clear
	if w.Mapped {
		t.Fatal("non-canonical address translated")
	}
	if err := as.Map(0x800000000000, Page4K, 1, 0); err == nil {
		t.Fatal("mapping non-canonical address succeeded")
	}
}

func TestDoubleMapFails(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0x1000)
	if err := as.Map(va, Page4K, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(va, Page4K, 2, 0); err == nil {
		t.Fatal("double map succeeded")
	}
}

func TestUnalignedMapFails(t *testing.T) {
	as := newAS(t)
	if err := as.Map(0x1800, Page4K, 1, 0); err == nil {
		t.Fatal("unaligned 4K map succeeded")
	}
	if err := as.Map(Page2M/2, Page2M, 1, 0); err == nil {
		t.Fatal("unaligned 2M map succeeded")
	}
}

func TestUnmap(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0x2000)
	if err := as.Map(va, Page4K, 3, User); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if w := as.Translate(va, nil); w.Mapped {
		t.Fatal("still mapped after unmap")
	}
	// Termination is now PT: the table survives the unmap, as in Linux.
	if w := as.Translate(va, nil); w.TermLevel != LevelPT {
		t.Fatalf("term %v, want PT", w.TermLevel)
	}
	if err := as.Unmap(va); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestProtectPreservesADBits(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0x3000)
	if err := as.Map(va, Page4K, 4, User|Writable); err != nil {
		t.Fatal(err)
	}
	as.MarkAccess(va, true) // sets A and D
	if err := as.Protect(va, User); err != nil {
		t.Fatal(err)
	}
	w := as.Translate(va, nil)
	if !w.Flags.Has(Accessed | Dirty) {
		t.Fatalf("A/D lost on protect: %v", w.Flags)
	}
	if w.Flags.Has(Writable) {
		t.Fatal("writable not removed")
	}
}

func TestMarkAccessDirtyTransition(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0x4000)
	if err := as.Map(va, Page4K, 5, User|Writable); err != nil {
		t.Fatal(err)
	}
	if dirtied := as.MarkAccess(va, false); dirtied {
		t.Fatal("read access set dirty")
	}
	if dirtied := as.MarkAccess(va, true); !dirtied {
		t.Fatal("first write did not report dirty transition")
	}
	if dirtied := as.MarkAccess(va, true); dirtied {
		t.Fatal("second write reported dirty transition again")
	}
}

func TestSetDirty(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0x5000)
	if err := as.Map(va, Page4K, 6, User|Writable); err != nil {
		t.Fatal(err)
	}
	if err := as.SetDirty(va, true); err != nil {
		t.Fatal(err)
	}
	if w := as.Translate(va, nil); !w.Dirty {
		t.Fatal("dirty not set")
	}
	if err := as.SetDirty(va, false); err != nil {
		t.Fatal(err)
	}
	if w := as.Translate(va, nil); w.Dirty {
		t.Fatal("dirty not cleared")
	}
}

func TestMapRangeContiguity(t *testing.T) {
	as := newAS(t)
	va := VirtAddr(0x10000000)
	first, err := as.MapRange(va, 8*Page4K, Page4K, User)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		w := as.Translate(va+VirtAddr(i*Page4K), nil)
		if !w.Mapped || w.PFN != first+phys.PFN(i) {
			t.Fatalf("page %d: %+v", i, w)
		}
	}
	if _, err := as.MapRange(va+0x100000, Page4K+1, Page4K, 0); err == nil {
		t.Fatal("non-multiple length accepted")
	}
}

// Property: map → translate returns the same flags/frame for arbitrary
// canonical page-aligned addresses.
func TestMapTranslateProperty(t *testing.T) {
	err := quick.Check(func(pageIdx uint32, frame uint16, wr, us bool) bool {
		as := NewAddressSpace(phys.NewAllocator(1 << 30))
		va := VirtAddr(uint64(pageIdx) << 12) // low canonical half
		var fl Flags
		if wr {
			fl |= Writable
		}
		if us {
			fl |= User
		}
		f := phys.PFN(frame) + 1
		if err := as.Map(va, Page4K, f, fl); err != nil {
			return false
		}
		w := as.Translate(va, nil)
		return w.Mapped && w.PFN == f && w.Flags.Has(fl|Present)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: an address is never reported mapped unless something was
// mapped over it; unmapping restores unmapped.
func TestUnmapProperty(t *testing.T) {
	err := quick.Check(func(pageIdx uint32) bool {
		as := NewAddressSpace(phys.NewAllocator(1 << 30))
		va := VirtAddr(uint64(pageIdx) << 12)
		if as.Translate(va, nil).Mapped {
			return false
		}
		if err := as.Map(va, Page4K, 42, User); err != nil {
			return false
		}
		if !as.Translate(va, nil).Mapped {
			return false
		}
		if err := as.Unmap(va); err != nil {
			return false
		}
		return !as.Translate(va, nil).Mapped
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPageBase(t *testing.T) {
	if PageBase(0x12345678, Page4K) != 0x12345000 {
		t.Error("4K base")
	}
	if PageBase(0x12345678, Page2M) != 0x12200000 {
		t.Error("2M base")
	}
	if PageBase(0x7fffffff, Page1G) != 0x40000000 {
		t.Error("1G base")
	}
}

func TestFlagsString(t *testing.T) {
	f := Present | Writable | User
	if s := f.String(); s != "prwxu" {
		t.Errorf("flags string %q", s)
	}
	if s := (Present | NoExec).String(); s != "pr--k" {
		t.Errorf("flags string %q", s)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelNone: "none", LevelPML4: "PML4", LevelPDPT: "PDPT", LevelPD: "PD", LevelPT: "PT",
	} {
		if l.String() != want {
			t.Errorf("%d -> %q", l, l.String())
		}
	}
}

func TestCanonical(t *testing.T) {
	for va, want := range map[VirtAddr]bool{
		0x00007fffffffffff: true,
		0xffff800000000000: true,
		0x0000800000000000: false,
		0xfffe800000000000: false,
	} {
		if Canonical(va) != want {
			t.Errorf("Canonical(%#x) = %v", uint64(va), !want)
		}
	}
}

func TestPageSizeLeafLevel(t *testing.T) {
	if PageSize(Page4K).LeafLevel() != LevelPT ||
		PageSize(Page2M).LeafLevel() != LevelPD ||
		PageSize(Page1G).LeafLevel() != LevelPDPT {
		t.Fatal("leaf levels wrong")
	}
}

func TestVisitedBufferReuse(t *testing.T) {
	as := newAS(t)
	if err := as.Map(0x1000, Page4K, 7, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]phys.PFN, 0, 4)
	w := as.Translate(0x1000, buf)
	if len(w.Visited) != 4 {
		t.Fatalf("visited %d", len(w.Visited))
	}
	if cap(w.Visited) != cap(buf) {
		t.Log("buffer grew — acceptable but unexpected for 4-level walk")
	}
}
