package paging

import (
	"testing"

	"repro/internal/phys"
)

// Edge cases around mixed page sizes and structural conflicts.

func TestMap4KUnderExisting2MLeafFails(t *testing.T) {
	as := newAS(t)
	huge := VirtAddr(0xffffffff81200000)
	if err := as.Map(huge, Page2M, 512, 0); err != nil {
		t.Fatal(err)
	}
	// Any 4K mapping inside the huge page's slot must be rejected, not
	// silently replace the leaf with a page table.
	if err := as.Map(huge+0x3000, Page4K, 99, 0); err == nil {
		t.Fatal("4K map under a 2M leaf succeeded")
	}
	// The huge mapping must be intact afterwards.
	w := as.Translate(huge+0x3000, nil)
	if !w.Mapped || w.Size != Page2M || w.PFN != 512+3 {
		t.Fatalf("2M leaf corrupted: %+v", w)
	}
}

func TestMap2MUnderExisting1GLeafFails(t *testing.T) {
	as := newAS(t)
	giant := VirtAddr(0xffffff8000000000)
	if err := as.Map(giant, Page1G, 1<<18, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(giant+Page2M, Page2M, 7, 0); err == nil {
		t.Fatal("2M map under a 1G leaf succeeded")
	}
}

func TestMixed4KAnd2MInSame1GRegion(t *testing.T) {
	// The Linux kernel text region mixes 2M slots and 4K-structured slots
	// under one PD; the tables must support that.
	as := newAS(t)
	base := VirtAddr(0xffffffff80000000)
	if err := as.Map(base, Page2M, 512, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(base+Page2M, Page4K, 9, 0); err != nil {
		t.Fatal(err)
	}
	w1 := as.Translate(base, nil)
	w2 := as.Translate(base+Page2M, nil)
	if w1.Size != Page2M || w2.Size != Page4K {
		t.Fatalf("sizes %v / %v", w1.Size, w2.Size)
	}
	if w1.TermLevel != LevelPD || w2.TermLevel != LevelPT {
		t.Fatalf("terminations %v / %v", w1.TermLevel, w2.TermLevel)
	}
}

func TestInteriorFlagsAccumulate(t *testing.T) {
	// Interior entries carry the union of leaf permissions below them (a
	// real OS keeps intermediate entries maximally permissive).
	as := newAS(t)
	if err := as.Map(0x1000, Page4K, 1, User); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x2000, Page4K, 2, User|Writable); err != nil {
		t.Fatal(err)
	}
	// Both leaves visible with their own flags.
	w1 := as.Translate(0x1000, nil)
	w2 := as.Translate(0x2000, nil)
	if w1.Flags.Has(Writable) {
		t.Fatal("read-only leaf gained Writable")
	}
	if !w2.Flags.Has(Writable) {
		t.Fatal("writable leaf lost Writable")
	}
}

func TestUnmapKeepsSiblings(t *testing.T) {
	as := newAS(t)
	for i := 0; i < 8; i++ {
		if err := as.Map(VirtAddr(0x10000+i*Page4K), Page4K, phys.PFN(i+1), User); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.Unmap(0x12000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		w := as.Translate(VirtAddr(0x10000+i*Page4K), nil)
		wantMapped := i != 2
		if w.Mapped != wantMapped {
			t.Fatalf("page %d mapped=%v", i, w.Mapped)
		}
	}
}

func TestTranslateZeroAndMaxCanonical(t *testing.T) {
	as := newAS(t)
	// Address 0 is canonical and unmapped.
	if w := as.Translate(0, nil); w.Mapped {
		t.Fatal("null page mapped")
	}
	// The top canonical page is mappable.
	top := VirtAddr(0xfffffffffffff000)
	if err := as.Map(top, Page4K, 5, 0); err != nil {
		t.Fatal(err)
	}
	if w := as.Translate(top+0xfff, nil); !w.Mapped {
		t.Fatal("top page not translatable")
	}
}

func TestDistinctAddressSpacesIsolated(t *testing.T) {
	alloc := phys.NewAllocator(1 << 30)
	a := NewAddressSpace(alloc)
	b := NewAddressSpace(alloc)
	if a.ASID == b.ASID {
		t.Fatal("address spaces share an ASID")
	}
	if err := a.Map(0x1000, Page4K, 1, User); err != nil {
		t.Fatal(err)
	}
	if w := b.Translate(0x1000, nil); w.Mapped {
		t.Fatal("mapping leaked across address spaces")
	}
}

func TestRootPFNStable(t *testing.T) {
	as := newAS(t)
	r := as.RootPFN()
	if err := as.Map(0x1000, Page4K, 1, 0); err != nil {
		t.Fatal(err)
	}
	if as.RootPFN() != r {
		t.Fatal("CR3 changed on map")
	}
}
