package avx

import (
	"testing"
	"testing/quick"

	"repro/internal/paging"
)

// uniform returns a pageState func mapping every page to one state.
func uniform(st PageState) func(paging.VirtAddr) PageState {
	return func(paging.VirtAddr) PageState { return st }
}

var (
	rwPage   = PageState{Mapped: true, Writable: true, UserOK: true}
	roPage   = PageState{Mapped: true, Writable: false, UserOK: true}
	kernPage = PageState{Mapped: true, Writable: true, UserOK: false}
	noPage   = PageState{}
)

func TestMaskHelpers(t *testing.T) {
	if AllMask(8) != 0xff || AllMask(4) != 0x0f {
		t.Fatal("AllMask wrong")
	}
	m := Mask(0b1010)
	if m.Bit(0) || !m.Bit(1) || m.Bit(2) || !m.Bit(3) {
		t.Fatal("Bit wrong")
	}
	if m.PopCount() != 2 {
		t.Fatal("PopCount wrong")
	}
	if ZeroMask.PopCount() != 0 {
		t.Fatal("ZeroMask not empty")
	}
}

func TestOpGeometry(t *testing.T) {
	op := MaskedLoad(0x1000, AllMask(8))
	if op.NumElems() != 8 {
		t.Fatalf("elems %d", op.NumElems())
	}
	if op.ElemAddr(3) != 0x100c {
		t.Fatalf("elem addr %#x", uint64(op.ElemAddr(3)))
	}
	if pages := op.Pages(); len(pages) != 1 || pages[0] != 0x1000 {
		t.Fatalf("pages %v", pages)
	}
}

func TestOpStraddlesBoundary(t *testing.T) {
	op := MaskedLoad(0x1ff0, AllMask(8)) // 16 bytes below the boundary
	pages := op.Pages()
	if len(pages) != 2 || pages[0] != 0x1000 || pages[1] != 0x2000 {
		t.Fatalf("pages %v", pages)
	}
	lo := op.ElemsOnPage(0x1000)
	hi := op.ElemsOnPage(0x2000)
	if len(lo) != 4 || len(hi) != 4 {
		t.Fatalf("element split %v / %v", lo, hi)
	}
	for _, i := range lo {
		if i > 3 {
			t.Fatalf("element %d on low page", i)
		}
	}
}

func TestFig1CaseA_PartialMaskLoadFaults(t *testing.T) {
	// Upper page mapped, lower page unmapped; one unmapped-page element
	// has its mask bit set → #PF.
	op := MaskedLoad(0x1ff0, 0b11101111&0xff|0b00010000) // bit 4 set (on page 2)
	st := func(p paging.VirtAddr) PageState {
		if p == 0x1000 {
			return rwPage
		}
		return noPage
	}
	out := Evaluate(op, st, nil)
	if !out.Fault {
		t.Fatal("no fault for set mask bit on unmapped page")
	}
	if out.FaultAddr != 0x2000 {
		t.Fatalf("fault addr %#x", uint64(out.FaultAddr))
	}
	if !out.Assist {
		t.Fatal("fault path must go through the assist")
	}
}

func TestFig1CaseC_MaskedOutSuppresses(t *testing.T) {
	op := MaskedLoad(0x1ff0, 0b00001111) // all unmapped-page elements clear
	st := func(p paging.VirtAddr) PageState {
		if p == 0x1000 {
			return rwPage
		}
		return noPage
	}
	out := Evaluate(op, st, nil)
	if out.Fault {
		t.Fatal("suppressed elements faulted")
	}
	if !out.Assist {
		t.Fatal("bad page must still trigger the assist (the timing leak)")
	}
	if out.Suppressed != 4 {
		t.Fatalf("suppressed %d, want 4", out.Suppressed)
	}
	if len(out.MovedElems) != 4 {
		t.Fatalf("moved %v, want the 4 mapped-page elements", out.MovedElems)
	}
}

func TestZeroMaskNeverFaults(t *testing.T) {
	err := quick.Check(func(mappedBits uint8, addr uint32) bool {
		op := MaskedLoad(paging.VirtAddr(addr)<<2, ZeroMask)
		st := func(p paging.VirtAddr) PageState {
			if mappedBits&1 == 0 {
				return noPage
			}
			return kernPage
		}
		out := Evaluate(op, st, nil)
		return !out.Fault
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroMaskOnBadPageAssists(t *testing.T) {
	for _, st := range []PageState{noPage, kernPage} {
		out := Evaluate(MaskedLoad(0x1000, ZeroMask), uniform(st), nil)
		if out.Fault {
			t.Fatal("zero mask faulted")
		}
		if !out.Assist {
			t.Fatalf("no assist for %+v", st)
		}
		if out.Suppressed != 8 {
			t.Fatalf("suppressed %d", out.Suppressed)
		}
	}
}

func TestZeroMaskOnGoodPageFast(t *testing.T) {
	out := Evaluate(MaskedLoad(0x1000, ZeroMask), uniform(rwPage), nil)
	if out.Assist || out.Fault || len(out.MovedElems) != 0 {
		t.Fatalf("good-page zero-mask outcome %+v", out)
	}
}

func TestStoreToReadOnlyAssists(t *testing.T) {
	out := Evaluate(MaskedStore(0x1000, ZeroMask), uniform(roPage), nil)
	if !out.Assist {
		t.Fatal("read-only store destination must assist (P5)")
	}
	if out.Fault {
		t.Fatal("zero-mask store faulted")
	}
	// Loads to the same page are fine.
	out = Evaluate(MaskedLoad(0x1000, ZeroMask), uniform(roPage), nil)
	if out.Assist {
		t.Fatal("read-only load assisted")
	}
}

func TestStoreWithSetMaskToReadOnlyFaults(t *testing.T) {
	out := Evaluate(MaskedStore(0x1000, AllMask(8)), uniform(roPage), nil)
	if !out.Fault {
		t.Fatal("real store to read-only page did not fault")
	}
}

func TestDirtyAssistOnlyForRealWrites(t *testing.T) {
	dirtyPending := func(paging.VirtAddr) bool { return true }
	// Zero-mask store: no element writes, no dirty assist.
	out := Evaluate(MaskedStore(0x1000, ZeroMask), uniform(rwPage), dirtyPending)
	if out.Assist {
		t.Fatal("zero-mask store triggered the dirty assist")
	}
	// Real store to a clean page: dirty assist fires.
	out = Evaluate(MaskedStore(0x1000, AllMask(8)), uniform(rwPage), dirtyPending)
	if !out.Assist {
		t.Fatal("first real store to clean page did not assist")
	}
	if out.Fault {
		t.Fatal("dirty assist must not fault")
	}
	// Already-dirty page: no assist.
	clean := func(paging.VirtAddr) bool { return false }
	out = Evaluate(MaskedStore(0x1000, AllMask(8)), uniform(rwPage), clean)
	if out.Assist {
		t.Fatal("store to dirty page assisted")
	}
}

func TestLoadIgnoresDirtyPending(t *testing.T) {
	dirtyPending := func(paging.VirtAddr) bool { return true }
	out := Evaluate(MaskedLoad(0x1000, AllMask(8)), uniform(rwPage), dirtyPending)
	if out.Assist {
		t.Fatal("load triggered a dirty assist")
	}
}

func TestMovedElemsRespectMask(t *testing.T) {
	err := quick.Check(func(mask uint8) bool {
		op := MaskedLoad(0x1000, Mask(mask))
		out := Evaluate(op, uniform(rwPage), nil)
		if out.Fault || out.Assist {
			return false
		}
		if len(out.MovedElems) != Mask(mask).PopCount() {
			return false
		}
		for _, i := range out.MovedElems {
			if !Mask(mask).Bit(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 256})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccessible(t *testing.T) {
	if !rwPage.Accessible(true) || !rwPage.Accessible(false) {
		t.Error("rw page should be fully accessible")
	}
	if roPage.Accessible(true) || !roPage.Accessible(false) {
		t.Error("ro page store/load accessibility wrong")
	}
	if kernPage.Accessible(false) {
		t.Error("kernel page accessible from user")
	}
	if noPage.Accessible(false) {
		t.Error("unmapped page accessible")
	}
}

func TestOpString(t *testing.T) {
	s := MaskedLoad(0x1234, 0b101).String()
	if len(s) == 0 {
		t.Fatal("empty op string")
	}
}
