// Package avx defines the architectural semantics of the AVX/AVX2 masked
// load and store instructions (VMASKMOVPS/PD, VPMASKMOVD/Q) that the
// side channel exploits.
//
// Two properties matter to the attacks (paper §III):
//
//  1. Fault suppression (P1): an element whose mask bit is clear never
//     faults, even if its address is unmapped or kernel-only. A probe with
//     an all-zero mask therefore touches arbitrary addresses silently.
//  2. Assist triggering: when the instruction's address range intersects an
//     invalid or inaccessible page, the CPU takes a microcode assist to
//     work out element-by-element whether a fault is required — and the
//     assist's latency leaks the page state.
//
// This package is pure instruction semantics: given a mask and the page
// states the address range covers, it decides which elements move, whether
// a fault is delivered and whether an assist fires. Timing lives in
// internal/machine.
package avx

import (
	"fmt"

	"repro/internal/paging"
)

// ElemSize is a masked element width in bytes.
type ElemSize int

// Element widths supported by the masked move family.
const (
	Elem32 ElemSize = 4 // VMASKMOVPS / VPMASKMOVD
	Elem64 ElemSize = 8 // VMASKMOVPD / VPMASKMOVQ
)

// VecWidth is a vector register width in bytes.
type VecWidth int

// Vector widths: XMM (AVX) and YMM (AVX2).
const (
	XMM VecWidth = 16
	YMM VecWidth = 32
)

// Mask is a per-element condition mask. Bit i (LSB-first) governs element
// i; set means "move", clear means "suppress". On hardware the mask is the
// sign bit of each element of a vector register — the bitmask here is the
// same information.
type Mask uint8

// ZeroMask is the all-suppressed mask the attack probes use.
const ZeroMask Mask = 0

// AllMask returns the mask with the low n bits set.
func AllMask(n int) Mask {
	return Mask(1<<n) - 1
}

// Bit reports whether element i's mask bit is set.
func (m Mask) Bit(i int) bool { return m&(1<<i) != 0 }

// PopCount returns the number of set mask bits.
func (m Mask) PopCount() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Op is a masked-move instruction instance.
type Op struct {
	Store bool     // false: masked load; true: masked store
	Width VecWidth // XMM or YMM
	Elem  ElemSize // 4- or 8-byte elements
	Addr  paging.VirtAddr
	Mask  Mask
}

// MaskedLoad builds a masked-load op (VPMASKMOVD ymm, ymm, m256 shape).
func MaskedLoad(addr paging.VirtAddr, mask Mask) Op {
	return Op{Store: false, Width: YMM, Elem: Elem32, Addr: addr, Mask: mask}
}

// MaskedStore builds a masked-store op (VPMASKMOVD m256, ymm, ymm shape).
func MaskedStore(addr paging.VirtAddr, mask Mask) Op {
	return Op{Store: true, Width: YMM, Elem: Elem32, Addr: addr, Mask: mask}
}

// NumElems returns the number of vector elements the op carries.
func (o Op) NumElems() int { return int(o.Width) / int(o.Elem) }

// ElemAddr returns the address of element i.
func (o Op) ElemAddr(i int) paging.VirtAddr {
	return o.Addr + paging.VirtAddr(i*int(o.Elem))
}

// Pages returns the distinct 4 KiB page base addresses the op's byte range
// [Addr, Addr+Width) covers: one page, or two when it straddles a boundary.
func (o Op) Pages() []paging.VirtAddr {
	first, last := o.PageSpan()
	if first == last {
		return []paging.VirtAddr{first}
	}
	return []paging.VirtAddr{first, last}
}

// PageSpan returns the first and last 4 KiB page base the op's byte range
// covers; they are equal when the op does not straddle a page boundary.
// Allocation-free variant of Pages for hot paths.
func (o Op) PageSpan() (first, last paging.VirtAddr) {
	first = paging.PageBase(o.Addr, paging.Page4K)
	last = paging.PageBase(o.Addr+paging.VirtAddr(int(o.Width)-1), paging.Page4K)
	return first, last
}

// ElemsOnPage returns the element indices whose bytes intersect the 4 KiB
// page starting at pageBase.
func (o Op) ElemsOnPage(pageBase paging.VirtAddr) []int {
	var idx []int
	for i := 0; i < o.NumElems(); i++ {
		if o.elemOnPage(i, pageBase) {
			idx = append(idx, i)
		}
	}
	return idx
}

// PageState is what the memory system reports about one page for the
// purposes of masked-op semantics.
type PageState struct {
	Mapped   bool
	Writable bool
	UserOK   bool // user-mode accessible (U/S bit)
}

// Accessible reports whether the given access kind is architecturally
// permitted from user mode.
func (s PageState) Accessible(store bool) bool {
	if !s.Mapped || !s.UserOK {
		return false
	}
	if store && !s.Writable {
		return false
	}
	return true
}

// Outcome is the architectural result of executing a masked op.
type Outcome struct {
	// Fault is true when a #PF must be delivered: some element with a set
	// mask bit touches an inaccessible or unmapped page.
	Fault bool
	// FaultAddr is the first faulting element's address when Fault.
	FaultAddr paging.VirtAddr
	// Assist is true when the instruction takes a microcode assist: its
	// range intersects a page that is not plainly accessible (including
	// the all-zero-mask suppressed case), or a store must set a Dirty bit.
	Assist bool
	// Suppressed counts elements whose faults were suppressed by clear
	// mask bits on bad pages.
	Suppressed int
	// MovedElems lists the element indices that actually transfer data.
	MovedElems []int
}

// Evaluate applies the masked-op fault/assist rules. pageState must return
// the state of each page returned by o.Pages(); dirtyPending reports, for
// stores only, whether the op would be the first write to a clean page
// (triggering the Dirty-bit assist).
func Evaluate(o Op, pageState func(pageBase paging.VirtAddr) PageState, dirtyPending func(pageBase paging.VirtAddr) bool) Outcome {
	return EvaluateBuf(o, pageState, dirtyPending, nil)
}

// EvaluateBuf is Evaluate with a caller-provided backing buffer for
// Outcome.MovedElems (may be nil), so hot probing loops can evaluate a
// masked op without allocating. An op has at most NumElems moved elements.
func EvaluateBuf(o Op, pageState func(pageBase paging.VirtAddr) PageState, dirtyPending func(pageBase paging.VirtAddr) bool, movedBuf []int) Outcome {
	var out Outcome
	moved := movedBuf[:0]
	// seen de-duplicates boundary-straddling elements that intersect both
	// pages (NumElems ≤ 8, so a bitmask suffices).
	var seen uint16
	first, last := o.PageSpan()
	npages := 1
	if last != first {
		npages = 2
	}
	for pi := 0; pi < npages; pi++ {
		page := first
		if pi == 1 {
			page = last
		}
		st := pageState(page)
		if st.Accessible(o.Store) {
			anySet := false
			for i := 0; i < o.NumElems(); i++ {
				if !o.elemOnPage(i, page) || !o.Mask.Bit(i) {
					continue
				}
				anySet = true
				if seen&(1<<i) == 0 {
					seen |= 1 << i
					moved = append(moved, i)
				}
			}
			if o.Store && dirtyPending != nil && dirtyPending(page) && anySet {
				// First real write to a clean page: hardware sets the
				// Dirty bit via a microcode assist.
				out.Assist = true
			}
			continue
		}
		// Page is invalid or inaccessible: the instruction microcode must
		// inspect the mask — this is the assist the side channel times.
		out.Assist = true
		for i := 0; i < o.NumElems(); i++ {
			if !o.elemOnPage(i, page) {
				continue
			}
			if o.Mask.Bit(i) {
				if !out.Fault {
					out.Fault = true
					out.FaultAddr = o.ElemAddr(i)
				}
			} else {
				out.Suppressed++
			}
		}
	}
	if len(moved) > 0 {
		out.MovedElems = moved
	}
	return out
}

// elemOnPage reports whether element i's bytes intersect the 4 KiB page at
// pageBase (allocation-free form of ElemsOnPage).
func (o Op) elemOnPage(i int, pageBase paging.VirtAddr) bool {
	lo := o.ElemAddr(i)
	hi := lo + paging.VirtAddr(int(o.Elem)-1)
	return paging.PageBase(lo, paging.Page4K) == pageBase || paging.PageBase(hi, paging.Page4K) == pageBase
}

// String renders the op in assembler-ish syntax for diagnostics.
func (o Op) String() string {
	mnemonic := "vpmaskmovd"
	dir := "ymm, ymm, [mem]"
	if o.Store {
		dir = "[mem], ymm, ymm"
	}
	return fmt.Sprintf("%s %s addr=%#x mask=%08b", mnemonic, dir, uint64(o.Addr), uint8(o.Mask))
}
