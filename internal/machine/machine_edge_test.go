package machine

import (
	"testing"

	"repro/internal/avx"
	"repro/internal/paging"
	"repro/internal/perf"
	"repro/internal/uarch"
)

// Edge cases: page-boundary straddling, vector widths, perf accounting.

func TestStraddlingOpTranslatesBothPages(t *testing.T) {
	m, uva, _ := testMachine(t)
	// Map the adjacent page too.
	if err := m.UserAS.Map(uva+paging.Page4K, paging.Page4K, m.Alloc.Alloc(),
		paging.User|paging.Writable); err != nil {
		t.Fatal(err)
	}
	op := avx.MaskedLoad(uva+paging.Page4K-16, avx.AllMask(8))
	before := m.Counters.Snapshot()
	r := m.ExecMasked(op)
	if r.Faulted {
		t.Fatal("straddling load over two mapped pages faulted")
	}
	d := m.Counters.Delta(before)
	if d[perf.WalkCompletedLoad] != 2 {
		t.Fatalf("walks %d, want 2 (one per page)", d[perf.WalkCompletedLoad])
	}
}

func TestStraddlingIntoUnmappedSuppressed(t *testing.T) {
	m, uva, _ := testMachine(t)
	// uva+4K is unmapped: the Fig. 1 boundary setup.
	op := avx.MaskedLoad(uva+paging.Page4K-16, 0b00001111)
	r := m.ExecMasked(op)
	if r.Faulted {
		t.Fatal("masked-out elements on the unmapped page faulted")
	}
	if !r.Assist {
		t.Fatal("boundary op should assist")
	}
	// Data still moves for the mapped-page elements.
	m.SetVector([8]uint32{1, 2, 3, 4, 5, 6, 7, 8})
	rs := m.ExecMasked(avx.MaskedStore(uva+paging.Page4K-16, 0b00001111))
	if rs.Faulted {
		t.Fatal("store variant faulted")
	}
	got, err := m.ReadUser(uva+paging.Page4K-16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[4] != 2 || got[8] != 3 || got[12] != 4 {
		t.Fatalf("stored bytes %v", got[:16])
	}
}

func TestXMMWidthOp(t *testing.T) {
	m, uva, _ := testMachine(t)
	op := avx.Op{Store: false, Width: avx.XMM, Elem: avx.Elem32, Addr: uva, Mask: avx.AllMask(4)}
	r := m.ExecMasked(op)
	if r.Faulted {
		t.Fatal("XMM load faulted")
	}
	if op.NumElems() != 4 {
		t.Fatalf("XMM elems %d", op.NumElems())
	}
}

func TestElem64Op(t *testing.T) {
	op := avx.Op{Store: false, Width: avx.YMM, Elem: avx.Elem64, Addr: 0x1000, Mask: avx.AllMask(4)}
	if op.NumElems() != 4 {
		t.Fatalf("YMM/64 elems %d", op.NumElems())
	}
	if op.ElemAddr(3) != 0x1018 {
		t.Fatalf("elem addr %#x", uint64(op.ElemAddr(3)))
	}
}

func TestNonCanonicalProbeSuppressed(t *testing.T) {
	m, _, _ := testMachine(t)
	r := m.ExecMasked(avx.MaskedLoad(0x800000000000, avx.ZeroMask))
	if r.Faulted {
		t.Fatal("zero-mask probe of non-canonical address faulted")
	}
	if !r.Assist {
		t.Fatal("non-canonical probe should assist")
	}
	// With a set mask bit it would be #GP on hardware; we deliver a fault.
	r = m.ExecMasked(avx.MaskedLoad(0x800000000000, avx.AllMask(8)))
	if !r.Faulted {
		t.Fatal("set-mask non-canonical access did not fault")
	}
}

func TestInvlpgAllDropsOnlyGivenPages(t *testing.T) {
	m, uva, kva := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))
	m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	m.InvlpgAll([]paging.VirtAddr{kva})
	if r := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask)); r.TLBHit {
		t.Fatal("INVLPG target survived")
	}
	if r := m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask)); !r.TLBHit {
		t.Fatal("INVLPG dropped an unrelated page")
	}
}

func TestAdvanceSeconds(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 1) // 4.4 GHz
	t0 := m.RDTSC()
	m.AdvanceSeconds(0.5)
	if d := m.RDTSC() - t0; d != 2_200_000_000 {
		t.Fatalf("0.5 s advanced %d cycles", d)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	m := New(uarch.IceLake1065G7(), 1)
	if s := m.Seconds(1_500_000_000); s != 1.0 {
		t.Fatalf("seconds %v", s)
	}
}

func TestPerfCountersAcrossMixedWorkload(t *testing.T) {
	m, uva, kva := testMachine(t)
	before := m.Counters.Snapshot()
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))  // walk (first touch)
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))  // hit
	m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))  // walk + assist
	m.ExecMasked(avx.MaskedStore(kva, avx.ZeroMask)) // hit + assist
	d := m.Counters.Delta(before)
	if d[perf.AssistsAny] != 2 {
		t.Fatalf("assists %d, want 2", d[perf.AssistsAny])
	}
	if d[perf.WalkCompletedLoad] != 2 {
		t.Fatalf("load walks %d, want 2", d[perf.WalkCompletedLoad])
	}
	if d[perf.WalkCompletedStore] != 0 {
		t.Fatalf("store walks %d, want 0 (TLB hit)", d[perf.WalkCompletedStore])
	}
	if d[perf.FaultSuppressed] != 16 {
		t.Fatalf("suppressed %d, want 16 (8 per kernel op)", d[perf.FaultSuppressed])
	}
}

func TestSetVectorRoundTripAllMaskShapes(t *testing.T) {
	m, uva, _ := testMachine(t)
	for mask := avx.Mask(0); mask < 255; mask += 17 {
		vals := [8]uint32{}
		for i := range vals {
			vals[i] = uint32(mask)*100 + uint32(i)
		}
		m.SetVector(vals)
		m.ExecMasked(avx.MaskedStore(uva, mask))
		r := m.ExecMasked(avx.MaskedLoad(uva, mask))
		for i := 0; i < 8; i++ {
			if mask.Bit(i) && r.Data[i] != vals[i] {
				t.Fatalf("mask %08b elem %d: got %d want %d", uint8(mask), i, r.Data[i], vals[i])
			}
			if !mask.Bit(i) && r.Data[i] != 0 {
				t.Fatalf("mask %08b elem %d: masked-out load returned %d", uint8(mask), i, r.Data[i])
			}
		}
		// Reset the page contents between mask shapes.
		if err := m.WriteUser(uva, make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
}
