package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/avx"
	"repro/internal/paging"
	"repro/internal/perf"
	"repro/internal/uarch"
)

// testMachine returns a machine with a user page at uva and a kernel 2M
// page at kva, plus an unmapped kernel slot at kva+2M (whose PD exists).
func testMachine(t *testing.T) (m *Machine, uva, kva paging.VirtAddr) {
	t.Helper()
	m = New(uarch.IceLake1065G7(), 1)
	uva = 0x7e0000000000
	if err := m.UserAS.Map(uva, paging.Page4K, m.Alloc.Alloc(), paging.User|paging.Writable); err != nil {
		t.Fatal(err)
	}
	kva = 0xffffffff81200000
	if err := m.KernelAS.Map(kva, paging.Page2M, m.Alloc.AllocContig(512), paging.Global); err != nil {
		t.Fatal(err)
	}
	return m, uva, kva
}

func TestUserMappedLoadFastPath(t *testing.T) {
	m, uva, _ := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask)) // fill TLB
	r := m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))
	if !r.TLBHit || r.Assist || r.Faulted {
		t.Fatalf("result %+v", r)
	}
	if r.Cycles != m.Preset.MaskedLoadBase {
		t.Fatalf("cycles %v, want base %v", r.Cycles, m.Preset.MaskedLoadBase)
	}
}

func TestKernelMappedAssistPlusTLBHit(t *testing.T) {
	m, _, kva := testMachine(t)
	r1 := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if !r1.Walked || !r1.Assist || r1.Faulted {
		t.Fatalf("first exec %+v", r1)
	}
	r2 := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if !r2.TLBHit {
		t.Fatal("second exec did not hit the TLB (Intel must fill on kernel probes)")
	}
	want := m.Preset.MaskedLoadBase + m.Preset.AssistLoad
	if r2.Cycles != want {
		t.Fatalf("KERNEL-M second exec %v cycles, want %v", r2.Cycles, want)
	}
}

func TestKernelUnmappedWalksEveryTime(t *testing.T) {
	m, _, kva := testMachine(t)
	un := kva + 4*paging.Page2M // same 1G region: PD exists, PDE empty
	before := m.Counters.Snapshot()
	r1 := m.ExecMasked(avx.MaskedLoad(un, avx.ZeroMask))
	r2 := m.ExecMasked(avx.MaskedLoad(un, avx.ZeroMask))
	d := m.Counters.Delta(before)
	if !r1.Walked || !r2.Walked {
		t.Fatal("unmapped page did not walk on both executions")
	}
	if d[perf.WalkCompletedLoad] != 2 {
		t.Fatalf("walks %d, want 2 (Fig. 2 right panel)", d[perf.WalkCompletedLoad])
	}
	if r1.TermLevel != paging.LevelPD {
		t.Fatalf("termination %v, want PD", r1.TermLevel)
	}
}

func TestAMDNoKernelTLBFill(t *testing.T) {
	m := New(uarch.Zen3_5600X(), 2)
	kva := paging.VirtAddr(0xffffffff81200000)
	if err := m.KernelAS.Map(kva, paging.Page2M, m.Alloc.AllocContig(512), paging.Global); err != nil {
		t.Fatal(err)
	}
	m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	r := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if r.TLBHit {
		t.Fatal("Zen 3 filled the TLB from a user-mode kernel probe (§IV-B says it must not)")
	}
	if !r.Walked {
		t.Fatal("second kernel probe did not walk on AMD")
	}
}

func TestFaultDelivery(t *testing.T) {
	m, _, kva := testMachine(t)
	before := m.Counters.Snapshot()
	r := m.ExecMasked(avx.MaskedLoad(kva, avx.AllMask(8)))
	if !r.Faulted {
		t.Fatal("set-mask kernel load did not fault")
	}
	d := m.Counters.Delta(before)
	if d[perf.PageFault] != 1 {
		t.Fatalf("fault counter %d", d[perf.PageFault])
	}
	if r.Cycles < m.Preset.FaultCost {
		t.Fatal("fault cost not charged")
	}
}

func TestDirtyAssistSequence(t *testing.T) {
	m, uva, _ := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask)) // TLB warm
	before := m.Counters.Snapshot()
	r1 := m.ExecMasked(avx.MaskedStore(uva, avx.AllMask(8)))
	if !r1.Assist {
		t.Fatal("first store to clean page did not assist")
	}
	want := m.Preset.MaskedStoreBase + m.Preset.AssistDirty
	if r1.Cycles != want {
		t.Fatalf("dirty-store cycles %v, want %v (the §IV-B threshold trick)", r1.Cycles, want)
	}
	r2 := m.ExecMasked(avx.MaskedStore(uva, avx.AllMask(8)))
	if r2.Assist {
		t.Fatal("second store assisted again (dirty bit not cached)")
	}
	d := m.Counters.Delta(before)
	if d[perf.DirtyAssist] != 1 {
		t.Fatalf("dirty assists %d, want 1", d[perf.DirtyAssist])
	}
}

func TestStoreAssistCheaperThanLoad(t *testing.T) {
	m, _, kva := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask)) // TLB warm
	rl := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	rs := m.ExecMasked(avx.MaskedStore(kva, avx.ZeroMask))
	diff := rl.Cycles - rs.Cycles
	if diff < 14 || diff > 20 {
		t.Fatalf("P6 difference %v, want 16-18", diff)
	}
}

func TestDataMovementRoundTrip(t *testing.T) {
	m, uva, _ := testMachine(t)
	m.SetVector([8]uint32{10, 20, 30, 40, 50, 60, 70, 80})
	m.ExecMasked(avx.MaskedStore(uva, 0b00001111))
	r := m.ExecMasked(avx.MaskedLoad(uva, avx.AllMask(8)))
	want := [8]uint32{10, 20, 30, 40, 0, 0, 0, 0}
	if r.Data != want {
		t.Fatalf("loaded %v, want %v (masked-out stores must not write)", r.Data, want)
	}
	// Masked-out loads read zero even over nonzero memory.
	r = m.ExecMasked(avx.MaskedLoad(uva, 0b00000011))
	if r.Data[2] != 0 || r.Data[0] != 10 {
		t.Fatalf("zeroing semantics violated: %v", r.Data)
	}
}

func TestReadWriteUser(t *testing.T) {
	m, uva, _ := testMachine(t)
	if err := m.WriteUser(uva+5, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadUser(uva+5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	if _, err := m.ReadUser(0x1234000, 1); err == nil {
		t.Fatal("read of unmapped address succeeded")
	}
}

func TestMeasureAdvancesTSC(t *testing.T) {
	m, uva, _ := testMachine(t)
	t0 := m.RDTSC()
	m.Measure(avx.MaskedLoad(uva, avx.ZeroMask))
	if m.RDTSC() <= t0 {
		t.Fatal("TSC did not advance")
	}
}

func TestMeasureIncludesFence(t *testing.T) {
	m, uva, _ := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))
	var sum float64
	const n = 200
	for i := 0; i < n; i++ {
		meas, _ := m.Measure(avx.MaskedLoad(uva, avx.ZeroMask))
		sum += meas
	}
	mean := sum / n
	want := m.Preset.MaskedLoadBase + m.Preset.FenceOverhead
	if mean < want-4 || mean > want+15 {
		t.Fatalf("measured mean %v, want ~%v", mean, want)
	}
}

func TestEvictTLB(t *testing.T) {
	m, _, kva := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	r := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if !r.TLBHit {
		t.Fatal("setup failed")
	}
	m.EvictTLB()
	r = m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if r.TLBHit {
		t.Fatal("TLB entry survived eviction")
	}
}

func TestEvictTranslationIsTargeted(t *testing.T) {
	m, uva, kva := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))
	m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	m.EvictTranslation(kva)
	if r := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask)); r.TLBHit {
		t.Fatal("target survived eviction")
	}
	if r := m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask)); !r.TLBHit {
		t.Fatal("unrelated TLB entry was evicted")
	}
}

func TestKernelTouchFillsTLB(t *testing.T) {
	m, _, kva := testMachine(t)
	m.KernelTouch(kva)
	r := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if !r.TLBHit {
		t.Fatal("kernel touch did not leave a TLB entry visible to the prober")
	}
}

func TestSyscallCharges(t *testing.T) {
	m, _, _ := testMachine(t)
	t0 := m.RDTSC()
	m.Syscall()
	if delta := m.RDTSC() - t0; delta != uint64(m.Preset.SyscallCost) {
		t.Fatalf("syscall charged %d, want %v", delta, m.Preset.SyscallCost)
	}
}

func TestMapUnmapProtectUser(t *testing.T) {
	m := New(uarch.IceLake1065G7(), 3)
	va := paging.VirtAddr(0x7e0000100000)
	if err := m.MapUser(va, 4*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	r := m.ExecMasked(avx.MaskedLoad(va+0x3000, avx.AllMask(8)))
	if r.Faulted {
		t.Fatal("fresh mapping faulted")
	}
	if err := m.ProtectUser(va, paging.Page4K, 0); err != nil {
		t.Fatal(err)
	}
	r = m.ExecMasked(avx.MaskedStore(va, avx.AllMask(8)))
	if !r.Faulted {
		t.Fatal("store to read-only page did not fault")
	}
	if err := m.UnmapUser(va, 4*paging.Page4K); err != nil {
		t.Fatal(err)
	}
	r = m.ExecMasked(avx.MaskedLoad(va, avx.ZeroMask))
	if r.TLBHit {
		t.Fatal("TLB not shot down on munmap")
	}
	if !r.Assist {
		t.Fatal("unmapped probe did not assist")
	}
}

func TestSTLBHitCostsExtra(t *testing.T) {
	m, _, _ := testMachine(t)
	// Fill many pages so early entries fall out of L1 into the STLB.
	base := paging.VirtAddr(0x7e0000400000)
	if err := m.MapUser(base, 256*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		m.ExecMasked(avx.MaskedLoad(base+paging.VirtAddr(i*paging.Page4K), avx.ZeroMask))
	}
	// The first page is long gone from L1 (64 entries) but may be in the
	// STLB (1536 entries): its re-access costs base+STLBHitExtra.
	r := m.ExecMasked(avx.MaskedLoad(base, avx.ZeroMask))
	if r.TLBHit && r.Cycles != m.Preset.MaskedLoadBase+m.Preset.STLBHitExtra {
		t.Fatalf("STLB-hit cycles %v", r.Cycles)
	}
}

func TestEnclaveOverhead(t *testing.T) {
	m, uva, _ := testMachine(t)
	m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))
	r1 := m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))
	m.InEnclave = true
	r2 := m.ExecMasked(avx.MaskedLoad(uva, avx.ZeroMask))
	if r2.Cycles-r1.Cycles != m.Preset.SGXProbeOverhead {
		t.Fatalf("enclave overhead %v, want %v", r2.Cycles-r1.Cycles, m.Preset.SGXProbeOverhead)
	}
}

func TestPrefetchNeverFaults(t *testing.T) {
	m, _, kva := testMachine(t)
	r := m.ExecPrefetch(kva + 64*paging.Page2M) // unmapped kernel
	if r.Faulted {
		t.Fatal("prefetch faulted")
	}
}

func TestTSXProbeSeparatesMappedUnmapped(t *testing.T) {
	m := New(uarch.CoffeeLake9900(), 4)
	kva := paging.VirtAddr(0xffffffff81200000)
	if err := m.KernelAS.Map(kva, paging.Page2M, m.Alloc.AllocContig(512), paging.Global); err != nil {
		t.Fatal(err)
	}
	m.ExecTSXProbe(kva) // warm
	var mapped, unmapped float64
	for i := 0; i < 50; i++ {
		mapped += m.ExecTSXProbe(kva)
		unmapped += m.ExecTSXProbe(kva + 8*paging.Page2M)
	}
	if mapped/50 >= unmapped/50 {
		t.Fatalf("TSX abort timing does not separate classes: %v vs %v", mapped/50, unmapped/50)
	}
}

func TestKPTIViewsIsolated(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 5)
	kernel := paging.NewAddressSpace(m.Alloc)
	user := paging.NewAddressSpace(m.Alloc)
	kva := paging.VirtAddr(0xffffffff81200000)
	if err := kernel.Map(kva, paging.Page2M, m.Alloc.AllocContig(512), 0); err != nil {
		t.Fatal(err)
	}
	m.InstallAddressSpaces(kernel, user)
	if !m.KPTIEnabled() {
		t.Fatal("KPTI not reported")
	}
	// A user probe must see the kernel page as unmapped (it probes the
	// user root).
	r := m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if r.TLBHit {
		t.Fatal("hit on first probe")
	}
	r = m.ExecMasked(avx.MaskedLoad(kva, avx.ZeroMask))
	if r.TLBHit {
		t.Fatal("KPTI-hidden page produced a TLB hit for the user")
	}
}

// Property: zero-mask probes never fault, whatever the address.
func TestZeroMaskProbeNeverFaultsProperty(t *testing.T) {
	m, _, _ := testMachine(t)
	err := quick.Check(func(addr uint64) bool {
		r := m.ExecMasked(avx.MaskedLoad(paging.VirtAddr(addr), avx.ZeroMask))
		return !r.Faulted
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: architectural cycles are deterministic given machine state —
// two fresh machines with the same seed produce identical Exec sequences.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		m := New(uarch.IceLake1065G7(), 7)
		kva := paging.VirtAddr(0xffffffff81200000)
		if err := m.KernelAS.Map(kva, paging.Page2M, m.Alloc.AllocContig(512), paging.Global); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 100; i++ {
			meas, _ := m.Measure(avx.MaskedLoad(kva+paging.VirtAddr(i%3)*paging.Page2M, avx.ZeroMask))
			out = append(out, meas)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
