// Package machine composes the simulator: page tables, TLB and
// paging-structure caches, the PTE-line cache, the microcode-assist model
// and the per-CPU timing preset, behind the interface an unprivileged
// attacker program has — execute instructions, read a cycle counter.
//
// The attacks in internal/core use only the attacker-visible surface:
// Measure* (timed execution of one masked op, like an lfence;rdtsc bracket),
// EvictTLB/EvictPTELines (attacker-constructed eviction sets), the mmap-like
// user-mapping calls, and Syscall. The OS builders (internal/linux,
// internal/winkernel, internal/sgx) and the experiment harness additionally
// use the privileged surface (direct address-space construction, KernelTouch,
// performance counters) that models the victim side.
package machine

import (
	"fmt"

	"repro/internal/avx"
	"repro/internal/paging"
	"repro/internal/perf"
	"repro/internal/phys"
	"repro/internal/ptecache"
	"repro/internal/rng"
	"repro/internal/tlb"
	"repro/internal/uarch"
)

// DefaultPhysMem is the physical memory given to a machine (enough for all
// experiment layouts; page-table frames dominate).
const DefaultPhysMem = 8 << 30

// Machine is one simulated CPU + memory subsystem running one victim OS
// image and one attacker process.
type Machine struct {
	Preset *uarch.Preset
	Alloc  *phys.Allocator

	// KernelAS is the full kernel view of the address space. UserAS is the
	// page-table root active while the attacker (CPL 3) runs: identical to
	// KernelAS without KPTI, a stripped shadow with KPTI.
	KernelAS *paging.AddressSpace
	UserAS   *paging.AddressSpace

	TLB      *tlb.TLB
	PSC      *tlb.PSC
	PTELines *ptecache.Cache
	Counters perf.Counters

	// InEnclave applies the SGX per-probe overhead when true.
	InEnclave bool

	// FaultHook, when non-nil, is the machine's fault-injection tap: it is
	// consulted at designated failure sites (Fire) with a stable operation
	// name — "boot", "calibrate", "restore", "probe" — and a non-nil return
	// aborts that operation with the returned error. The service layer
	// installs a per-job-attempt hook backed by a seeded fault.Plan and
	// clears it afterwards; Clone and Rebind never propagate the hook, so
	// pooled worker replicas (which run on engine goroutines) stay
	// hook-free and the sharded hot path pays nothing but this nil field.
	FaultHook func(op string) error

	tsc  uint64
	seed uint64
	// noise is the measurement-noise stream Measure draws from. ownNoise is
	// the machine's own source backing it; SwapNoise can temporarily point
	// noise at a caller-owned stream (the fused user scan drives separate
	// load and store streams per chunk) without disturbing ownNoise.
	noise    *rng.Source
	ownNoise rng.Source
	// backing is the write shadow of user frames, a dense slice indexed by
	// PFN (flat array lookup on the data-movement path; clearing it on
	// Rebind/Unbind is one array op). Grown lazily to the highest frame
	// actually written, so an idle machine carries no backing at all.
	backing []*[phys.FrameSize]byte

	visitBuf []phys.PFN
	// evictBuf backs the hoisted eviction walk of MeasureEvictedBatch; it
	// must be distinct from visitBuf because ExecMasked's own translations
	// reuse visitBuf between the batch's samples.
	evictBuf []phys.PFN
	// touchBuf backs KernelTouch's victim-side walks. Victim events replayed
	// between attacker probes (behavior.Driver.ReplayWindow fires hundreds
	// per spy window) must not share visitBuf: the walk scratch is owned by
	// the machine the events run on, so every worker replica replays with
	// its own buffer and the temporal hot path stays allocation-free.
	touchBuf []phys.PFN
	elemBuf  [8]uint32

	// Per-call scratch state of ExecMasked: the page translations of the
	// current op (at most two pages) plus the moved-element buffer, reused
	// across calls so the probing hot path is allocation-free. stateFn and
	// dirtyFn are built once (in initHotPath) because constructing a closure
	// per ExecMasked call would itself allocate.
	scratchVA [2]paging.VirtAddr
	scratchPI [2]pageInfo
	scratchN  int
	movedBuf  [8]int
	stateFn   func(paging.VirtAddr) avx.PageState
	dirtyFn   func(paging.VirtAddr) bool
}

// New creates a machine with the given preset and deterministic seed.
// The machine starts with a single (non-KPTI) empty address space; OS
// builders replace the address spaces with their layouts.
func New(p *uarch.Preset, seed uint64) *Machine {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	alloc := phys.NewAllocator(DefaultPhysMem)
	as := paging.NewAddressSpace(alloc)
	m := &Machine{
		Preset:   p,
		Alloc:    alloc,
		KernelAS: as,
		UserAS:   as,
		TLB:      tlb.NewTLB(tlb.DefaultTLBConfig()),
		PSC:      tlb.NewPSC(),
		PTELines: ptecache.New(1024, 8),
		seed:     seed,
	}
	m.ownNoise.Reseed(seed)
	m.noise = &m.ownNoise
	m.initHotPath()
	return m
}

// Seed returns the seed the machine's noise stream was created with.
func (m *Machine) Seed() uint64 { return m.seed }

// initHotPath builds the closures ExecMasked hands to avx.EvaluateBuf. They
// read the per-op scratch translations off the machine, so they are built
// once per machine instead of once per instruction (a per-call closure
// would allocate on every probe).
func (m *Machine) initHotPath() {
	m.stateFn = func(page paging.VirtAddr) avx.PageState {
		return walkState(&m.scratchWalk(page).walk)
	}
	m.dirtyFn = func(page paging.VirtAddr) bool {
		w := &m.scratchWalk(page).walk
		return w.Mapped && !w.Dirty
	}
}

// walkState maps a walk result to the page state the masked-op semantics
// consume (shared by the evaluation closures and assistCost).
func walkState(w *paging.Walk) avx.PageState {
	return avx.PageState{
		Mapped:   w.Mapped,
		Writable: w.Flags.Has(paging.Writable),
		UserOK:   w.Flags.Has(paging.User),
	}
}

// scratchWalk returns the scratch translation of one of the current op's
// pages (filled by ExecMasked before evaluation).
func (m *Machine) scratchWalk(page paging.VirtAddr) *pageInfo {
	if m.scratchN > 1 && m.scratchVA[1] == page {
		return &m.scratchPI[1]
	}
	return &m.scratchPI[0]
}

// Clone creates a worker replica for parallel scanning: it shares the
// (immutable-during-scan) kernel and user address spaces, the physical
// allocator and the preset with the parent, while the attacker-local
// microarchitectural state — TLB, paging-structure caches, PTE-line cache,
// performance counters, noise stream and clock — is fresh and private, so
// replicas can probe concurrently without contending on shared mutable
// state.
//
// A clone is a read-only view of the address space: address-space mutations
// (MapUser, UnmapUser, ProtectUser, data-moving masked ops) must not run on
// any machine sharing the spaces while clones are probing.
func (m *Machine) Clone(noiseSeed uint64) *Machine {
	c := &Machine{
		Preset:    m.Preset,
		Alloc:     m.Alloc,
		KernelAS:  m.KernelAS,
		UserAS:    m.UserAS,
		TLB:       tlb.NewTLB(m.TLB.Config()),
		PSC:       tlb.NewPSC(),
		PTELines:  ptecache.New(m.PTELines.Sets(), m.PTELines.Ways()),
		InEnclave: m.InEnclave,
		tsc:       m.tsc,
		seed:      noiseSeed,
	}
	c.ownNoise.Reseed(noiseSeed)
	c.noise = &c.ownNoise
	c.PSC.Enabled = m.PSC.Enabled
	c.initHotPath()
	return c
}

// Rebind retargets a pooled worker replica at parent's current state so a
// persistent pool can reuse it across scans — and across victims within a
// session — without paying Clone's allocation cost again. The replica's
// TLB, paging-structure and PTE-line caches are flushed and reused in place
// when their geometry matches the parent's (the common case: one preset per
// session) and only rebuilt on a geometry change; counters, the write
// shadow and the clock are reset to the parent's view. The noise stream is
// left alone: the scan engine reseeds it per chunk before any probe, which
// is what makes pooled output bit-identical to fresh-worker output.
func (m *Machine) Rebind(parent *Machine) {
	m.Preset = parent.Preset
	m.Alloc = parent.Alloc
	m.KernelAS = parent.KernelAS
	m.UserAS = parent.UserAS
	m.InEnclave = parent.InEnclave
	m.tsc = parent.tsc
	if m.TLB.Config() != parent.TLB.Config() {
		m.TLB = tlb.NewTLB(parent.TLB.Config())
	} else {
		m.TLB.Flush(false)
	}
	m.PSC.Flush()
	m.PSC.Enabled = parent.PSC.Enabled
	if m.PTELines.Sets() != parent.PTELines.Sets() || m.PTELines.Ways() != parent.PTELines.Ways() {
		m.PTELines = ptecache.New(parent.PTELines.Sets(), parent.PTELines.Ways())
	} else {
		m.PTELines.Flush()
	}
	m.Counters.Reset()
	clear(m.backing)
}

// Unbind drops a pooled replica's references to its parent's victim state
// (address spaces, allocator, write shadow) while it sits idle between
// scans, so a discarded victim's page tables and memory image are not
// pinned for the rest of the session. The next Rebind restores every
// dropped reference; an unbound machine must not execute anything.
func (m *Machine) Unbind() {
	m.KernelAS = nil
	m.UserAS = nil
	m.Alloc = nil
	clear(m.backing)
}

// ReseedNoise restarts the measurement-noise stream from seed, in place and
// allocation-free. The scan engine reseeds per VA chunk so a chunk's
// measurements depend only on the chunk, not on which worker ran it or in
// what order. If a caller-owned stream was installed with SwapNoise, the
// machine's own stream is restored first.
func (m *Machine) ReseedNoise(seed uint64) {
	m.ownNoise.Reseed(seed)
	m.noise = &m.ownNoise
}

// SwapNoise installs src as the measurement-noise stream and returns the
// previously installed one. Callers that interleave several deterministic
// streams within one chunk (the fused user scan draws load and store noise
// from separate per-chunk streams so its measurements replicate regardless
// of how many pages each sub-pass probes) swap their own sources in and out
// around each sub-probe; the machine's own stream is untouched and comes
// back on the next ReseedNoise.
func (m *Machine) SwapNoise(src *rng.Source) *rng.Source {
	old := m.noise
	m.noise = src
	return old
}

// Snapshot is the full replayable state of a machine at one instant: the
// execution state (clock, own-noise-stream position, performance-counter
// bank, enclave mode) plus the mutable victim-visible state — the contents
// of the TLB, the paging-structure caches and the PTE-line cache, and the
// write shadow of every user frame written since boot (the address-space
// data delta). Page-table *structure* is deliberately not copied; instead
// the snapshot records the address spaces' mutation versions, and Restore
// refuses to apply once the tables have changed — so everything replayed
// after a Restore is a pure function of (victim image, snapshot, seed),
// never of what ran in between.
//
// A snapshot taken on machine A applies to any machine whose memory image
// is bit-identical to A's: that is what lets a service session skip
// re-running calibration on a freshly booted replica of a known victim, and
// what lets a stateful session (the §IV-E behavior spy's victim timeline)
// carry its position across jobs and still produce bit-identical traces.
type Snapshot struct {
	tsc       uint64
	noise     rng.Source
	counters  perf.Counters
	inEnclave bool

	tlb      tlb.Snapshot
	psc      tlb.PSCSnapshot
	pteLines ptecache.Snapshot
	backing  []frameSave

	kernelVer, userVer uint64
}

// frameSave is the copied contents of one written user frame.
type frameSave struct {
	pfn  phys.PFN
	data [phys.FrameSize]byte
}

// Snapshot captures the machine's replayable state. Pair with Restore to
// rewind a long-lived session machine to a saved point (post-calibration,
// end of the previous behavior-spy window) between jobs.
func (m *Machine) Snapshot() Snapshot {
	s := Snapshot{
		tsc:       m.tsc,
		noise:     m.ownNoise,
		counters:  m.Counters.Snapshot(),
		inEnclave: m.InEnclave,
		tlb:       m.TLB.Snapshot(),
		psc:       m.PSC.Snapshot(),
		pteLines:  m.PTELines.Snapshot(),
		kernelVer: m.KernelAS.Version(),
		userVer:   m.UserAS.Version(),
	}
	for pfn, b := range m.backing {
		if b != nil {
			s.backing = append(s.backing, frameSave{pfn: phys.PFN(pfn), data: *b})
		}
	}
	return s
}

// Restore rewinds the machine to a snapshot taken on this machine (or on a
// machine whose memory image is bit-identical): the clock, noise stream,
// counter bank, translation-cache contents and user write shadow are all
// set back exactly. It fails if the page tables have been structurally
// mutated (map/unmap/protect or A/D-bit updates) since the snapshot — the
// one class of state a snapshot does not carry; probe-only attacks never
// trip it.
func (m *Machine) Restore(s Snapshot) error {
	if err := m.Fire("restore"); err != nil {
		return err
	}
	if kv := m.KernelAS.Version(); kv != s.kernelVer {
		return fmt.Errorf("machine: kernel address space mutated since snapshot (version %d, snapshot %d)", kv, s.kernelVer)
	}
	if uv := m.UserAS.Version(); uv != s.userVer {
		return fmt.Errorf("machine: user address space mutated since snapshot (version %d, snapshot %d)", uv, s.userVer)
	}
	m.Adopt(s)
	return nil
}

// Adopt applies a snapshot without the page-table version check: the
// cross-machine form of Restore, for adopting a snapshot taken on a
// *different* machine whose attack-observable memory image this machine
// reproduces (a fresh boot of the same victim configuration replaying a
// cached calibration). The caller asserts image equivalence; on the same
// machine, prefer Restore, which verifies it.
func (m *Machine) Adopt(s Snapshot) {
	m.tsc = s.tsc
	m.ownNoise = s.noise
	m.noise = &m.ownNoise
	m.Counters = s.counters
	m.InEnclave = s.inEnclave
	m.TLB.Restore(s.tlb)
	m.PSC.Restore(s.psc)
	m.PTELines.Restore(s.pteLines)
	clear(m.backing)
	for i := range s.backing {
		fs := &s.backing[i]
		*m.frameData(fs.pfn) = fs.data
	}
}

// Fire consults the fault-injection hook for one named operation and
// returns the injected error, if any. With no hook installed — every
// machine outside a fault-injected service run, and every cloned or
// rebound worker replica — it is a nil test and nothing more.
func (m *Machine) Fire(op string) error {
	if m.FaultHook == nil {
		return nil
	}
	return m.FaultHook(op)
}

// ResetTranslationState empties the TLB, the paging-structure caches and
// the PTE-line cache without charging attacker time (a simulator-level
// reset, not an attack action). The scan engine resets per VA chunk so
// chunk results are independent of probe order.
func (m *Machine) ResetTranslationState() {
	m.TLB.Flush(false)
	m.PSC.Flush()
	m.PTELines.Flush()
}

// InstallAddressSpaces sets the kernel and user address-space roots. For a
// non-KPTI system pass the same space twice.
func (m *Machine) InstallAddressSpaces(kernel, user *paging.AddressSpace) {
	m.KernelAS = kernel
	m.UserAS = user
	m.TLB.Flush(false)
	m.PSC.Flush()
}

// KPTIEnabled reports whether the user view differs from the kernel view.
func (m *Machine) KPTIEnabled() bool { return m.KernelAS != m.UserAS }

// RDTSC returns the current simulated time-stamp counter.
func (m *Machine) RDTSC() uint64 { return m.tsc }

// AdvanceCycles moves simulated time forward (attacker think-time, sleeps).
func (m *Machine) AdvanceCycles(c uint64) { m.tsc += c }

// AdvanceSeconds moves simulated time forward by wall time.
func (m *Machine) AdvanceSeconds(s float64) {
	m.tsc += uint64(s * m.Preset.TSCGHz * 1e9)
}

// Seconds converts a cycle delta to seconds on this machine's clock.
func (m *Machine) Seconds(cycles uint64) float64 { return m.Preset.CyclesToSeconds(cycles) }

// Result is the outcome of executing one instruction.
type Result struct {
	// Cycles is the architectural latency of the instruction, without
	// measurement overhead or noise.
	Cycles float64
	// Faulted reports a delivered #PF (the attack failed to suppress).
	Faulted bool
	// Assist reports a microcode assist fired.
	Assist bool
	// TLBHit reports whether the first page's translation came from the
	// TLB (either level).
	TLBHit bool
	// Walked reports whether at least one page-table walk ran.
	Walked bool
	// TermLevel is the termination level of the first walk (LevelNone if
	// no walk ran).
	TermLevel paging.Level
	// Data holds the loaded elements of a masked load (masked-out
	// elements read as zero, matching VMASKMOV's zeroing semantics).
	Data [8]uint32
}

// pageInfo is the machine-level translation of one page for an access.
type pageInfo struct {
	walk    paging.Walk
	tlbHit  bool
	hitKind tlb.LookupResult
	cycles  float64
	walked  bool
}

// translate resolves va through the TLB or a timed page-table walk on the
// address space as, charging the preset's costs. Fills the TLB according to
// vendor rules. asUser marks an access performed while CPL 3 (attacker).
func (m *Machine) translate(as *paging.AddressSpace, va paging.VirtAddr, asUser bool) pageInfo {
	var pi pageInfo
	res, entry := m.TLB.Lookup(va, as.ASID)
	if res != tlb.Miss {
		pi.tlbHit = true
		pi.hitKind = res
		if res == tlb.HitL2 {
			pi.cycles += m.Preset.STLBHitExtra
		}
		if res == tlb.HitL1 {
			m.Counters.Inc(perf.TLBHitL1)
		} else {
			m.Counters.Inc(perf.TLBHitL2)
		}
		// Synthesize the walk view from the cached entry.
		pi.walk = paging.Walk{
			VA:     va,
			Mapped: true,
			Flags:  entry.Flags(),
			Size:   entry.Size(),
			PFN:    entry.PFN(),
			Dirty:  entry.Flags().Has(paging.Dirty),
		}
		pi.walk.TermLevel = entry.Size().LeafLevel()
		return pi
	}

	m.Counters.Inc(perf.TLBMiss)
	pi.walked = true
	w := as.Translate(va, m.visitBuf)
	m.visitBuf = w.Visited
	pi.walk = w

	// Paging-structure caches can skip the upper structures.
	startIdx := 0
	if lvl, ok := m.PSC.Lookup(va, as.ASID); ok {
		m.Counters.Inc(perf.PSCHit)
		// A PSC hit at level L means structures at and above L are
		// skipped; the walk resumes at the structure below L.
		startIdx = int(lvl) // LevelPML4=1 skips Visited[0], etc.
		if startIdx > len(w.Visited) {
			startIdx = len(w.Visited)
		}
	}
	lineMisses := 0
	for i := startIdx; i < len(w.Visited); i++ {
		idx := entryIndexAt(va, paging.Level(i+1))
		if !m.PTELines.Touch(w.Visited[i], idx) {
			lineMisses++
		}
	}

	walkCost := m.Preset.Walk.At(w.TermLevel) + float64(lineMisses)*m.Preset.PTELineMiss
	walkCost *= m.Preset.EPTWalkMult
	pi.cycles += walkCost

	m.PSC.Fill(va, w.TermLevel, w.Mapped, as.ASID)

	if w.Mapped {
		fill := true
		if asUser && !w.Flags.Has(paging.User) && !m.Preset.KernelTLBFill {
			// AMD Zen 3: user-mode probes of supervisor pages do not
			// install TLB entries (§IV-B).
			fill = false
		}
		if fill {
			m.TLB.Fill(va, w, as.ASID)
		}
	}
	return pi
}

// entryIndexAt returns the paging-structure entry index va selects at a
// level (for PTE-line addressing).
func entryIndexAt(va paging.VirtAddr, l paging.Level) int {
	switch l {
	case paging.LevelPML4:
		return int(va>>39) & 0x1ff
	case paging.LevelPDPT:
		return int(va>>30) & 0x1ff
	case paging.LevelPD:
		return int(va>>21) & 0x1ff
	case paging.LevelPT:
		return int(va>>12) & 0x1ff
	}
	return 0
}

// walkCounterFor returns the perf event for a completed walk of the access
// kind.
func walkCounterFor(store bool) perf.Event {
	if store {
		return perf.WalkCompletedStore
	}
	return perf.WalkCompletedLoad
}

// ExecMasked executes one AVX masked load/store as the attacker (CPL 3,
// user page-table root). This is the instruction the side channel is built
// on; its latency composition follows §III of the paper.
func (m *Machine) ExecMasked(op avx.Op) Result {
	var r Result
	if op.Store {
		r.Cycles = m.Preset.MaskedStoreBase
	} else {
		r.Cycles = m.Preset.MaskedLoadBase
	}
	r.TermLevel = paging.LevelNone

	first, last := op.PageSpan()
	m.scratchVA[0] = first
	m.scratchN = 1
	if last != first {
		m.scratchVA[1] = last
		m.scratchN = 2
	}
	for i := 0; i < m.scratchN; i++ {
		pi := m.translate(m.UserAS, m.scratchVA[i], true)
		m.scratchPI[i] = pi
		r.Cycles += pi.cycles
		if pi.walked {
			m.Counters.Inc(walkCounterFor(op.Store))
			if !r.Walked {
				r.Walked = true
			}
		}
		if i == 0 {
			r.TLBHit = pi.tlbHit
			if pi.walked {
				r.TermLevel = pi.walk.TermLevel
			}
		}
	}

	if op.Mask == 0 && m.scratchN == 1 {
		// Fast path for the probing workhorse: an all-suppressed op on a
		// single page never faults and moves no data, so the full masked-op
		// evaluation (per-element mask/page intersection through the
		// EvaluateBuf closures) collapses to one page-state check. The
		// outcome — suppressed-fault count, assist kind, counters, cost —
		// is exactly what EvaluateBuf+assistCost produce for this shape.
		if !walkState(&m.scratchPI[0].walk).Accessible(op.Store) {
			m.Counters.Add(perf.FaultSuppressed, uint64(op.NumElems()))
			r.Assist = true
			m.Counters.Inc(perf.AssistsAny)
			if op.Store {
				r.Cycles += m.Preset.AssistStore
			} else {
				r.Cycles += m.Preset.AssistLoad
			}
		}
	} else {
		out := avx.EvaluateBuf(op, m.stateFn, m.dirtyFn, m.movedBuf[:0])
		if out.Suppressed > 0 {
			m.Counters.Add(perf.FaultSuppressed, uint64(out.Suppressed))
		}
		if out.Assist {
			r.Assist = true
			m.Counters.Inc(perf.AssistsAny)
			if out.Fault {
				// The assist resolves into a delivered fault.
				r.Faulted = true
				m.Counters.Inc(perf.PageFault)
				r.Cycles += m.Preset.FaultCost
			} else {
				r.Cycles += m.assistCost(op)
			}
		}

		// Perform the architectural data movement and A/D updates for the
		// elements that actually moved.
		if !r.Faulted && len(out.MovedElems) > 0 {
			m.moveData(op, out.MovedElems, &r)
		}
	}
	if m.InEnclave {
		r.Cycles += m.Preset.SGXProbeOverhead
	}
	m.tsc += uint64(r.Cycles)
	return r
}

// assistCost decides which assist penalty applies: the dirty-bit assist
// for a store whose only problem is a clean destination page, otherwise
// the invalid/inaccessible-page assist of the access kind. It reads the
// scratch translations ExecMasked filled for the current op.
func (m *Machine) assistCost(op avx.Op) float64 {
	badPage := false
	for i := 0; i < m.scratchN; i++ {
		if !walkState(&m.scratchPI[i].walk).Accessible(op.Store) {
			badPage = true
		}
	}
	if !badPage && op.Store {
		m.Counters.Inc(perf.DirtyAssist)
		return m.Preset.AssistDirty
	}
	if op.Store {
		return m.Preset.AssistStore
	}
	return m.Preset.AssistLoad
}

// moveData copies element data between the vector register and backing
// memory for the moved elements, and performs the A/D-bit updates.
func (m *Machine) moveData(op avx.Op, moved []int, r *Result) {
	for _, i := range moved {
		ea := op.ElemAddr(i)
		page := paging.PageBase(ea, paging.Page4K)
		w := m.UserAS.Translate(page, m.visitBuf)
		m.visitBuf = w.Visited
		if !w.Mapped {
			continue
		}
		m.UserAS.MarkAccess(page, op.Store)
		if m.UserAS != m.KernelAS {
			// Leaf frames are shared between the KPTI views; keep the
			// kernel view's A/D bits coherent for user pages it also maps.
			_ = m.KernelAS.MarkAccess(page, op.Store)
		}
		buf := m.frameData(w.PFN)
		off := uint64(ea) & (phys.FrameSize - 1)
		if int(off)+int(op.Elem) > phys.FrameSize {
			continue // straddling element's tail page handled separately
		}
		if op.Store {
			putLE32(buf[off:], m.elemBuf[i])
		} else {
			r.Data[i] = getLE32(buf[off:])
		}
	}
	if op.Store {
		// Refresh cached dirty state so subsequent stores are assist-free.
		first, last := op.PageSpan()
		for page := first; ; page += paging.Page4K {
			w := m.UserAS.Translate(page, m.visitBuf)
			m.visitBuf = w.Visited
			if w.Mapped {
				m.refreshTLBFlags(page, w)
			}
			if page == last {
				break
			}
		}
	}
}

// refreshTLBFlags updates any cached TLB entry's flags after an A/D change.
func (m *Machine) refreshTLBFlags(page paging.VirtAddr, w paging.Walk) {
	if res, e := m.TLB.Lookup(page, m.UserAS.ASID); res != tlb.Miss {
		e.SetFlags(w.Flags)
	}
}

// SetVector loads the source register used by subsequent masked stores.
func (m *Machine) SetVector(vals [8]uint32) { m.elemBuf = vals }

// frameData returns (lazily creating) the byte backing of a user frame.
// The backing slice is indexed directly by PFN and grown to the highest
// written frame: user frames are handed out by the bump allocator early in
// a machine's life, so the slice stays small and lookups are one bounds
// check and one load instead of a map probe.
func (m *Machine) frameData(pfn phys.PFN) *[phys.FrameSize]byte {
	if int(pfn) >= len(m.backing) {
		n := int(pfn) + 1
		if n < 2*len(m.backing) {
			n = 2 * len(m.backing) // amortize growth as PFNs climb
		}
		grown := make([]*[phys.FrameSize]byte, n)
		copy(grown, m.backing)
		m.backing = grown
	}
	b := m.backing[pfn]
	if b == nil {
		b = new([phys.FrameSize]byte)
		m.backing[pfn] = b
	}
	return b
}

// ReadUser reads n bytes of user memory at va (test/diagnostic helper;
// bypasses timing).
func (m *Machine) ReadUser(va paging.VirtAddr, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		page := paging.PageBase(va, paging.Page4K)
		w := m.UserAS.Translate(page, m.visitBuf)
		m.visitBuf = w.Visited
		if !w.Mapped || !w.Flags.Has(paging.User) {
			return nil, fmt.Errorf("machine: read of unmapped user address %#x", uint64(va))
		}
		buf := m.frameData(w.PFN)
		off := int(uint64(va) & (phys.FrameSize - 1))
		take := phys.FrameSize - off
		if take > n {
			take = n
		}
		out = append(out, buf[off:off+take]...)
		va += paging.VirtAddr(take)
		n -= take
	}
	return out, nil
}

// WriteUser writes bytes into user memory at va (test/diagnostic helper).
func (m *Machine) WriteUser(va paging.VirtAddr, data []byte) error {
	for len(data) > 0 {
		page := paging.PageBase(va, paging.Page4K)
		w := m.UserAS.Translate(page, m.visitBuf)
		m.visitBuf = w.Visited
		if !w.Mapped || !w.Flags.Has(paging.User) {
			return fmt.Errorf("machine: write of unmapped user address %#x", uint64(va))
		}
		buf := m.frameData(w.PFN)
		off := int(uint64(va) & (phys.FrameSize - 1))
		take := phys.FrameSize - off
		if take > len(data) {
			take = len(data)
		}
		copy(buf[off:off+take], data[:take])
		va += paging.VirtAddr(take)
		data = data[take:]
	}
	return nil
}

// Measure executes op bracketed by serializing timestamp reads and returns
// the measured cycle count: architectural latency + fence overhead +
// jitter (+ a rare interrupt spike). This is exactly what the PoC's
// lfence;rdtsc;op;lfence;rdtsc loop yields.
func (m *Machine) Measure(op avx.Op) (float64, Result) {
	r := m.ExecMasked(op)
	meas := r.Cycles + m.Preset.FenceOverhead + m.noiseSample()
	if meas < 0 {
		meas = 0
	}
	m.tsc += uint64(m.Preset.FenceOverhead + m.Preset.LoopOverhead)
	return meas, r
}

// noiseSample draws one measurement-noise value.
func (m *Machine) noiseSample() float64 {
	return m.noiseSampleSigma(m.Preset.NoiseSigma + m.Preset.ExtraNoiseSigma)
}

// noiseSampleSigma is noiseSample with the composed sigma hoisted out, so
// batched measurement loops compose it once per batch.
func (m *Machine) noiseSampleSigma(sigma float64) float64 {
	n := m.noise.Normal(0, sigma)
	if m.noise.Bool(m.Preset.OutlierProb) {
		spike := m.noise.Pareto(m.Preset.OutlierScale, 1.7)
		n += spike
		m.tsc += uint64(spike)
	}
	return n
}

// ExecPrefetch executes a software-prefetch probe (the Gruss et al. 2016
// baseline): it never faults, and its latency reflects translation state
// only (no masked-op assist).
func (m *Machine) ExecPrefetch(va paging.VirtAddr) Result {
	var r Result
	r.Cycles = m.Preset.ScalarBase
	pi := m.translate(m.UserAS, paging.PageBase(va, paging.Page4K), true)
	r.Cycles += pi.cycles
	r.TLBHit = pi.tlbHit
	r.Walked = pi.walked
	if pi.walked {
		m.Counters.Inc(perf.WalkCompletedLoad)
		r.TermLevel = pi.walk.TermLevel
	}
	m.tsc += uint64(r.Cycles)
	return r
}

// MeasurePrefetch is Measure for the prefetch baseline.
func (m *Machine) MeasurePrefetch(va paging.VirtAddr) float64 {
	r := m.ExecPrefetch(va)
	meas := r.Cycles + m.Preset.FenceOverhead + m.noiseSample()
	m.tsc += uint64(m.Preset.FenceOverhead + m.Preset.LoopOverhead)
	if meas < 0 {
		meas = 0
	}
	return meas
}

// TSX abort-latency constants (relative to the preset's scalar base); the
// DrK baseline distinguishes mapped from unmapped kernel pages by abort
// time.
const (
	tsxAbortBase       = 170
	tsxAbortUnmapAdder = 40
)

// ExecTSXProbe models a DrK-style Intel TSX probe: access va inside a
// transaction; the #PF becomes a transactional abort whose latency depends
// on the translation outcome. Returns measured abort cycles.
func (m *Machine) ExecTSXProbe(va paging.VirtAddr) float64 {
	pi := m.translate(m.UserAS, paging.PageBase(va, paging.Page4K), true)
	if pi.walked {
		m.Counters.Inc(perf.WalkCompletedLoad)
	}
	c := float64(tsxAbortBase) + pi.cycles
	if !pi.walk.Mapped {
		c += tsxAbortUnmapAdder
	}
	c += m.noiseSample()
	m.tsc += uint64(c + m.Preset.LoopOverhead)
	return c
}

// EvictTLB models the attacker's TLB eviction: a sweep over a large
// eviction buffer that displaces every TLB and paging-structure-cache
// entry. The sweep's cost is charged to the attacker's clock.
func (m *Machine) EvictTLB() {
	m.TLB.Flush(false) // a full eviction displaces global entries too
	m.PSC.Flush()
	// ~2000 loads over the eviction buffer at L2-ish latency.
	m.tsc += uint64(2000 * 14)
}

// EvictTranslation models a *targeted* eviction of one address's
// translation state: the attacker accesses a small conflict set that
// displaces va's TLB sets, the paging-structure-cache entries covering its
// region, and the cache lines its walk reads. Much cheaper than a full
// sweep (~a dozen conflicting loads), it is what makes the AMD per-probe
// eviction affordable (§IV-B's 1.91 ms probing).
func (m *Machine) EvictTranslation(va paging.VirtAddr) {
	// Reuse the machine's walk scratch buffer: the AMD term-level sweep
	// issues one targeted eviction per sample, and a per-call Visited
	// allocation here dominated that sweep's host cost.
	w := m.UserAS.Translate(paging.PageBase(va, paging.Page4K), m.visitBuf)
	m.visitBuf = w.Visited
	m.evictWalkLines(va, w.Visited)
}

// evictWalkLines is the mutation-and-cost half of EvictTranslation: it
// displaces va's TLB and paging-structure-cache state plus the cache lines
// of the given walk frames, and charges the attacker's conflict-set loads.
// The walk itself is the caller's: MeasureEvictedBatch hoists it out of the
// per-sample loop (the walk is a pure read of the address space, so one
// walk serves every sample of a VA).
func (m *Machine) evictWalkLines(va paging.VirtAddr, visited []phys.PFN) {
	m.TLB.Invalidate(va)
	m.PSC.Flush()
	for i, frame := range visited {
		idx := entryIndexAt(va, paging.Level(i+1))
		m.PTELines.Evict(frame, idx)
	}
	// ~24 conflicting loads at L2-ish latency plus set-index arithmetic.
	m.tsc += uint64(24*14 + 60)
}

// EvictPTELines models eviction of page-table data from the cache
// hierarchy (a larger sweep; needed by the TLB-state experiment and the
// AMD attack).
func (m *Machine) EvictPTELines() {
	m.PTELines.Flush()
	m.tsc += uint64(8000)
}

// InvlpgAll models privileged INVLPG over a VA set — only the experiment
// harness uses it (the paper loads an LKM for the level experiment).
func (m *Machine) InvlpgAll(vas []paging.VirtAddr) {
	for _, va := range vas {
		m.TLB.Invalidate(va)
	}
	m.PSC.Flush()
}

// KernelTouch simulates the kernel accessing its own pages (syscall
// handling, module code executing): translations are installed in the TLB
// under the kernel root, which is what the TLB attack observes.
func (m *Machine) KernelTouch(vas ...paging.VirtAddr) {
	for _, va := range vas {
		page := paging.PageBase(va, paging.Page4K)
		w := m.KernelAS.Translate(page, m.touchBuf)
		m.touchBuf = w.Visited
		if !w.Mapped {
			continue
		}
		m.TLB.Fill(page, w, m.KernelAS.ASID)
	}
}

// Syscall charges one kernel entry/exit and touches the given kernel
// addresses (the kernel text the handler runs through).
func (m *Machine) Syscall(touch ...paging.VirtAddr) {
	m.tsc += uint64(m.Preset.SyscallCost)
	m.KernelTouch(touch...)
}

// MapUser maps length bytes of fresh user memory at va with the given
// permission flags (mmap model): pages are User|Present plus flags, with
// clean (non-dirty) leaf entries. Charged as one syscall.
func (m *Machine) MapUser(va paging.VirtAddr, length uint64, flags paging.Flags) error {
	m.tsc += uint64(m.Preset.SyscallCost)
	_, err := m.UserAS.MapRange(va, length, paging.Page4K, flags|paging.User)
	return err
}

// UnmapUser unmaps length bytes at va (munmap model) and shoots down the
// TLB the way the OS would.
func (m *Machine) UnmapUser(va paging.VirtAddr, length uint64) error {
	m.tsc += uint64(m.Preset.SyscallCost)
	for off := uint64(0); off < length; off += phys.FrameSize {
		if err := m.UserAS.Unmap(va + paging.VirtAddr(off)); err != nil {
			return err
		}
		m.TLB.Invalidate(va + paging.VirtAddr(off))
	}
	return nil
}

// ProtectUser changes user page permissions (mprotect model).
func (m *Machine) ProtectUser(va paging.VirtAddr, length uint64, flags paging.Flags) error {
	m.tsc += uint64(m.Preset.SyscallCost)
	for off := uint64(0); off < length; off += phys.FrameSize {
		if err := m.UserAS.Protect(va+paging.VirtAddr(off), flags|paging.User); err != nil {
			return err
		}
		m.TLB.Invalidate(va + paging.VirtAddr(off))
	}
	return nil
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
