package machine

import (
	"testing"

	"repro/internal/avx"
	"repro/internal/paging"
	"repro/internal/perf"
	"repro/internal/uarch"
)

// snapshotTestRegion is the user mapping the snapshot tests probe and
// write (mapped before the snapshot, so data writes never move the
// page-table version).
const snapshotTestRegion paging.VirtAddr = 0x7e0000000000

// kernelLikeVA is a mapped supervisor page for KernelTouch traffic.
const kernelLikeVA paging.VirtAddr = 0xffffffff81000000

func snapshotTestMachine(t testing.TB, seed uint64) *Machine {
	t.Helper()
	m := New(uarch.IceLake1065G7(), seed)
	if err := m.MapUser(snapshotTestRegion, 32*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	if _, err := m.KernelAS.MapRange(kernelLikeVA, 16*paging.Page4K, paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	return m
}

// applyOp applies one state-churning operation selected by b. The boolean
// reports whether the op mutates the page tables (structure or A/D bits) —
// the one mutation class a snapshot cannot rewind.
func applyOp(m *Machine, b byte, arg byte) (mutatesAS bool) {
	va := snapshotTestRegion + paging.VirtAddr(uint64(arg%32)*paging.Page4K)
	switch b % 10 {
	case 0:
		m.ExecMasked(avx.MaskedLoad(va, avx.ZeroMask))
	case 1:
		m.Measure(avx.MaskedLoad(va, avx.ZeroMask))
	case 2:
		m.EvictTLB()
	case 3:
		m.EvictTranslation(va)
	case 4:
		m.EvictPTELines()
	case 5:
		m.KernelTouch(kernelLikeVA + paging.VirtAddr(uint64(arg%16)*paging.Page4K))
	case 6:
		m.AdvanceCycles(uint64(arg) * 97)
	case 7:
		m.ReseedNoise(uint64(arg) + 1)
	case 8:
		// Data write: mutates the write shadow (snapshot must carry it)
		// without touching the page tables.
		_ = m.WriteUser(va, []byte{arg, arg + 1, arg + 2})
	case 9:
		// Real masked store: moves data AND sets Accessed/Dirty — a
		// page-table mutation Restore must detect.
		before := m.UserAS.Version()
		m.ExecMasked(avx.MaskedStore(va, avx.AllMask(8)))
		return m.UserAS.Version() != before
	}
	return false
}

// continuation runs a fixed probe sequence and returns its full observable
// trace: measurements, clock, counters and a sample of user memory. Two
// machines in identical state must produce identical continuations.
func continuation(t testing.TB, m *Machine) ([]float64, uint64, perf.Counters, []byte) {
	t.Helper()
	meas := make([]float64, 0, 48)
	for i := 0; i < 16; i++ {
		va := snapshotTestRegion + paging.VirtAddr(uint64(i%32)*paging.Page4K)
		v, _ := m.Measure(avx.MaskedLoad(va, avx.ZeroMask))
		meas = append(meas, v)
		if i%5 == 2 {
			m.EvictTranslation(va)
			v, _ = m.Measure(avx.MaskedLoad(va, avx.ZeroMask))
			meas = append(meas, v)
		}
	}
	data, err := m.ReadUser(snapshotTestRegion, 64)
	if err != nil {
		t.Fatal(err)
	}
	return meas, m.RDTSC(), m.Counters.Snapshot(), data
}

// snapshotRoundTrip drives the property the whole session layer rests on:
// warm up with an arbitrary op sequence, Snapshot, record a continuation,
// churn arbitrarily more, Restore, and require a bit-identical
// continuation — or, if the churn mutated the page tables, require Restore
// to refuse.
func snapshotRoundTrip(t testing.TB, seed uint64, warm, churn []byte) {
	m := snapshotTestMachine(t, seed)
	for i := 0; i+1 < len(warm); i += 2 {
		applyOp(m, warm[i], warm[i+1])
	}
	snap := m.Snapshot()
	wantMeas, wantTSC, wantCtr, wantData := continuation(t, m)

	mutatedAS := false
	for i := 0; i+1 < len(churn); i += 2 {
		if applyOp(m, churn[i], churn[i+1]) {
			mutatedAS = true
		}
	}

	err := m.Restore(snap)
	if mutatedAS {
		if err == nil {
			t.Fatal("Restore accepted a snapshot across a page-table mutation")
		}
		return
	}
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	gotMeas, gotTSC, gotCtr, gotData := continuation(t, m)
	if len(wantMeas) != len(gotMeas) {
		t.Fatalf("continuation lengths differ: %d vs %d", len(wantMeas), len(gotMeas))
	}
	for i := range wantMeas {
		if wantMeas[i] != gotMeas[i] {
			t.Fatalf("measurement %d differs after restore: %v vs %v", i, wantMeas[i], gotMeas[i])
		}
	}
	if wantTSC != gotTSC {
		t.Fatalf("clock differs after restored continuation: %d vs %d", wantTSC, gotTSC)
	}
	if wantCtr != gotCtr {
		t.Fatal("counters differ after restored continuation")
	}
	if string(wantData) != string(gotData) {
		t.Fatal("user memory differs after restored continuation")
	}
}

// The deterministic property pass: a spread of op mixes, including
// data-writing and AS-mutating churn.
func TestSnapshotRoundTripProperty(t *testing.T) {
	cases := [][2][]byte{
		{{}, {}},
		{{0, 1, 1, 2, 5, 3}, {2, 0, 6, 9, 7, 3}},
		{{8, 4, 8, 9, 1, 7}, {8, 1, 8, 200, 1, 9}},
		{{9, 0, 9, 1, 0, 2}, {9, 5}}, // store churn: must refuse
		{{5, 1, 5, 2, 1, 9}, {3, 3, 4, 0, 2, 1, 8, 77}},
	}
	for i, c := range cases {
		snapshotRoundTrip(t, uint64(100+i), c[0], c[1])
	}
}

// FuzzSnapshotRoundTrip lets the fuzzer search for op sequences that break
// the replay-purity contract.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3}, []byte{4, 5, 6, 7})
	f.Add(uint64(2), []byte{8, 0, 9, 9}, []byte{9, 1, 8, 2})
	f.Add(uint64(3), []byte{}, []byte{7, 200, 6, 100, 3, 50})
	f.Fuzz(func(t *testing.T, seed uint64, warm, churn []byte) {
		if len(warm) > 64 {
			warm = warm[:64]
		}
		if len(churn) > 64 {
			churn = churn[:64]
		}
		snapshotRoundTrip(t, seed, warm, churn)
	})
}
