package machine

import (
	"testing"

	"repro/internal/avx"
	"repro/internal/paging"
	"repro/internal/perf"
	"repro/internal/uarch"
)

// The probing hot path must not allocate: ScanMapped issues millions of
// ExecMasked calls per sweep, and per-call garbage was the dominant host
// cost before the scratch-buffer rewrite.
func TestExecMaskedZeroAlloc(t *testing.T) {
	m := New(uarch.IceLake1065G7(), 1)
	if err := m.MapUser(0x7e0000000000, 4*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		op   avx.Op
	}{
		{"zero-mask load, unmapped kernel", avx.MaskedLoad(0xffffffff81000000, avx.ZeroMask)},
		{"zero-mask load, mapped user", avx.MaskedLoad(0x7e0000000000, avx.ZeroMask)},
		{"zero-mask load, straddling", avx.MaskedLoad(0x7e0000000ff0, avx.ZeroMask)},
		{"zero-mask store", avx.MaskedStore(0x7e0000001000, avx.ZeroMask)},
	}
	for _, tc := range cases {
		op := tc.op
		if n := testing.AllocsPerRun(1000, func() { m.ExecMasked(op) }); n > 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
	// The full measurement bracket (fences + noise) must stay
	// allocation-free too.
	op := avx.MaskedLoad(0xffffffff81000000, avx.ZeroMask)
	if n := testing.AllocsPerRun(1000, func() { m.Measure(op) }); n > 0 {
		t.Errorf("Measure: %v allocs/op, want 0", n)
	}
	// So must the AMD term-level probe step: targeted eviction + measure
	// runs 16× per slot over 512 slots per sweep.
	if n := testing.AllocsPerRun(1000, func() {
		m.EvictTranslation(0x7e0000000000)
		m.Measure(avx.MaskedLoad(0x7e0000000000, avx.ZeroMask))
	}); n > 0 {
		t.Errorf("EvictTranslation+Measure: %v allocs/op, want 0", n)
	}
}

// Clone shares the victim's address spaces copy-on-read but owns all
// attacker-local microarchitectural state.
func TestCloneSharesAddressSpacePrivateState(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 5)
	if err := m.MapUser(0x7e0000000000, 2*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	c := m.Clone(77)
	if c.UserAS != m.UserAS || c.KernelAS != m.KernelAS {
		t.Fatal("clone does not share the address spaces")
	}
	if c.TLB == m.TLB || c.PSC == m.PSC || c.PTELines == m.PTELines {
		t.Fatal("clone shares mutable microarchitectural state")
	}
	// The clone sees the parent's mappings...
	if !c.UserAS.Translate(0x7e0000000000, nil).Mapped {
		t.Fatal("clone cannot translate the parent's mapping")
	}
	// ...but its TLB fills and counter increments do not leak into the
	// parent. The zero-mask load misses the clone's empty TLB, so it must
	// count a TLB miss there and nowhere else.
	c.ExecMasked(avx.MaskedLoad(0x7e0000000000, avx.ZeroMask))
	if n := m.TLB.EntryCount(); n != 0 {
		t.Fatalf("clone probe installed %d entries in the parent TLB", n)
	}
	if c.Counters.Read(perf.TLBMiss) == 0 {
		t.Fatal("clone probe did not count its TLB miss")
	}
	if m.Counters.Read(perf.TLBMiss) != 0 {
		t.Fatal("clone probe incremented the parent's counters")
	}
}

// Two clones with the same noise seed must produce identical measurement
// streams for the same probe sequence — the property the scan engine's
// per-chunk determinism is built on.
func TestCloneDeterministicMeasurements(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 9)
	if err := m.MapUser(0x7e0000000000, 8*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) []float64 {
		c := m.Clone(seed)
		c.ReseedNoise(seed)
		c.ResetTranslationState()
		var out []float64
		for i := 0; i < 32; i++ {
			va := paging.VirtAddr(0x7e0000000000 + uint64(i%8)*paging.Page4K)
			t1, _ := c.Measure(avx.MaskedLoad(va, avx.ZeroMask))
			out = append(out, t1)
		}
		return out
	}
	a, b := run(123), run(123)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("measurement %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(456)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different noise seeds produced identical measurement streams")
	}
}

// Rebind must reuse the replica's microarchitectural structures instead of
// reallocating them — that reuse is the entire point of the persistent
// scan pool (Clone pays for fresh TLB/PSC/PTE-line sets on every call;
// a pooled rebind must cost roughly nothing).
func TestRebindReusesReplicaAllocations(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 21)
	if err := m.MapUser(0x7e0000000000, 4*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	c := m.Clone(1)
	cloneAllocs := testing.AllocsPerRun(20, func() { m.Clone(2) })
	rebindAllocs := testing.AllocsPerRun(20, func() { c.Rebind(m) })
	t.Logf("allocs: clone %.0f, rebind %.0f", cloneAllocs, rebindAllocs)
	if rebindAllocs > 2 {
		t.Errorf("Rebind allocates %.0f, want ~0 (clone costs %.0f)", rebindAllocs, cloneAllocs)
	}
	if cloneAllocs < 10 {
		t.Errorf("Clone allocates only %.0f — alloc-guard baseline looks wrong", cloneAllocs)
	}
}

// A rebound replica — even one carrying dirty state from scans against a
// previous victim — must behave exactly like a fresh clone of the current
// parent: same mappings visible, same measurement stream under the same
// noise seed, no counter or write-shadow carry-over.
func TestRebindMatchesFreshClone(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 23)
	if err := m.MapUser(0x7e0000000000, 8*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	used := m.Clone(1)
	// Dirty the replica: probes warm its TLB, counters and clock.
	for i := 0; i < 16; i++ {
		used.Measure(avx.MaskedLoad(0x7e0000000000+paging.VirtAddr(i%8)*paging.Page4K, avx.ZeroMask))
	}
	// The parent moves on: new mapping, advanced clock.
	if err := m.MapUser(0x7e0000010000, 2*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	m.AdvanceCycles(12345)

	used.Rebind(m)
	fresh := m.Clone(2)

	if used.RDTSC() != fresh.RDTSC() {
		t.Fatalf("rebound clock %d != fresh clone %d", used.RDTSC(), fresh.RDTSC())
	}
	if used.Counters != fresh.Counters {
		t.Fatal("rebound replica carried counters over")
	}
	if !used.UserAS.Translate(0x7e0000010000, nil).Mapped {
		t.Fatal("rebound replica does not see the parent's new mapping")
	}
	stream := func(c *Machine) []float64 {
		c.ReseedNoise(99)
		c.ResetTranslationState()
		var out []float64
		for i := 0; i < 32; i++ {
			va := paging.VirtAddr(0x7e0000000000 + uint64(i%8)*paging.Page4K)
			v, _ := c.Measure(avx.MaskedLoad(va, avx.ZeroMask))
			out = append(out, v)
		}
		return out
	}
	a, b := stream(used), stream(fresh)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("measurement %d differs after rebind: %v vs %v", i, a[i], b[i])
		}
	}
}

// ResetTranslationState must empty every translation structure.
func TestResetTranslationState(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 11)
	if err := m.MapUser(0x7e0000000000, 4*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.ExecMasked(avx.MaskedLoad(0x7e0000000000+paging.VirtAddr(i*paging.Page4K), avx.ZeroMask))
	}
	if m.TLB.EntryCount() == 0 {
		t.Fatal("probes did not warm the TLB")
	}
	m.ResetTranslationState()
	if m.TLB.EntryCount() != 0 || m.PSC.EntryCount() != 0 || m.PTELines.Resident() != 0 {
		t.Fatal("translation state not fully reset")
	}
}
