package machine

import (
	"testing"

	"repro/internal/avx"
	"repro/internal/paging"
	"repro/internal/rng"
	"repro/internal/uarch"
)

// testOps builds a mixed batch over mapped and unmapped pages.
func testOps(n int) []avx.Op {
	ops := make([]avx.Op, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			ops = append(ops, avx.MaskedLoad(0xffffffff81000000+paging.VirtAddr(i)*paging.Page4K, avx.ZeroMask))
		} else {
			ops = append(ops, avx.MaskedLoad(0x7e0000000000+paging.VirtAddr(i%16)*paging.Page4K, avx.ZeroMask))
		}
	}
	return ops
}

// MeasureBatch must be bit-identical to the equivalent per-op
// ExecMasked/Measure loop: same measurements, same clock, same counters.
func TestMeasureBatchMatchesLoop(t *testing.T) {
	build := func() *Machine {
		m := New(uarch.IceLake1065G7(), 33)
		if err := m.MapUser(0x7e0000000000, 16*paging.Page4K, paging.Writable); err != nil {
			t.Fatal(err)
		}
		return m
	}
	const n = 64
	const samples = 3
	ops := testOps(n)

	loopM := build()
	want := make([]float64, 0, n*samples)
	wantFaults := 0
	for _, op := range ops {
		loopM.ExecMasked(op)
		for s := 0; s < samples; s++ {
			v, r := loopM.Measure(op)
			if r.Faulted {
				wantFaults++
			}
			want = append(want, v)
		}
	}

	batchM := build()
	got := make([]float64, n*samples)
	gotFaults := batchM.MeasureBatch(ops, 1, samples, got)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("measurement %d differs: loop %v, batch %v", i, want[i], got[i])
		}
	}
	if wantFaults != gotFaults {
		t.Fatalf("fault counts differ: loop %d, batch %d", wantFaults, gotFaults)
	}
	if loopM.RDTSC() != batchM.RDTSC() {
		t.Fatalf("clocks differ: loop %d, batch %d", loopM.RDTSC(), batchM.RDTSC())
	}
	if loopM.Counters != batchM.Counters {
		t.Fatal("performance counters differ between loop and batch")
	}
}

// MeasureEvictedBatch must be bit-identical to the per-VA targeted-eviction
// loop of the AMD term-level attack: same measurements, same fault count,
// same clock, same counters — the hoisted eviction walk must change
// nothing observable.
func TestMeasureEvictedBatchMatchesLoop(t *testing.T) {
	build := func() *Machine {
		m := New(uarch.Zen3_5600X(), 77)
		if err := m.MapUser(0x7e0000000000, 16*paging.Page4K, paging.Writable); err != nil {
			t.Fatal(err)
		}
		return m
	}
	const n = 48
	const samples = 4
	ops := testOps(n)

	loopM := build()
	want := make([]float64, 0, n*samples)
	wantFaults := 0
	for _, op := range ops {
		for s := 0; s < samples; s++ {
			loopM.EvictTranslation(op.Addr)
			v, r := loopM.Measure(op)
			if r.Faulted {
				wantFaults++
			}
			want = append(want, v)
		}
	}

	batchM := build()
	got := make([]float64, n*samples)
	gotFaults := batchM.MeasureEvictedBatch(ops, samples, got)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("measurement %d differs: loop %v, batch %v", i, want[i], got[i])
		}
	}
	if wantFaults != gotFaults {
		t.Fatalf("fault counts differ: loop %d, batch %d", wantFaults, gotFaults)
	}
	if loopM.RDTSC() != batchM.RDTSC() {
		t.Fatalf("clocks differ: loop %d, batch %d", loopM.RDTSC(), batchM.RDTSC())
	}
	if loopM.Counters != batchM.Counters {
		t.Fatal("performance counters differ between loop and batch")
	}
}

// The batched eviction+measure path must not allocate in steady state.
func TestMeasureEvictedBatchZeroAlloc(t *testing.T) {
	m := New(uarch.Zen3_5600X(), 3)
	if err := m.MapUser(0x7e0000000000, 16*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	ops := testOps(32)
	out := make([]float64, 2*len(ops))
	m.MeasureEvictedBatch(ops, 2, out) // warm the eviction walk buffer
	if n := testing.AllocsPerRun(200, func() { m.MeasureEvictedBatch(ops, 2, out) }); n > 0 {
		t.Errorf("MeasureEvictedBatch: %v allocs/op, want 0", n)
	}
}

// Snapshot/Restore must rewind the execution state exactly: a machine
// restored to a snapshot replays the identical measurement stream a
// second time.
func TestSnapshotRestoreReplays(t *testing.T) {
	m := New(uarch.IceLake1065G7(), 9)
	if err := m.MapUser(0x7e0000000000, 16*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	ops := testOps(24)
	cp := m.Snapshot()
	first := make([]float64, len(ops))
	m.MeasureBatch(ops, 1, 1, first)
	tscAfter := m.RDTSC()
	countersAfter := m.Counters.Snapshot()

	if err := m.Restore(cp); err != nil {
		t.Fatal(err)
	}
	second := make([]float64, len(ops))
	m.MeasureBatch(ops, 1, 1, second)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("measurement %d differs after restore: %v vs %v", i, first[i], second[i])
		}
	}
	if m.RDTSC() != tscAfter {
		t.Fatalf("clock differs after restored replay: %d vs %d", m.RDTSC(), tscAfter)
	}
	if m.Counters != countersAfter {
		t.Fatal("counters differ after restored replay")
	}
}

// ExecMaskedBatch must be the plain batched form of ExecMasked.
func TestExecMaskedBatchMatchesLoop(t *testing.T) {
	a := New(uarch.AlderLake12400F(), 5)
	b := New(uarch.AlderLake12400F(), 5)
	if err := a.MapUser(0x7e0000000000, 16*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	if err := b.MapUser(0x7e0000000000, 16*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	ops := testOps(48)
	want := make([]Result, len(ops))
	for i, op := range ops {
		want[i] = a.ExecMasked(op)
	}
	got := make([]Result, len(ops))
	b.ExecMaskedBatch(ops, got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("result %d differs: loop %+v, batch %+v", i, want[i], got[i])
		}
	}
	if a.RDTSC() != b.RDTSC() {
		t.Fatal("clocks differ after batch exec")
	}
}

// The batched measurement path must stay allocation-free — it is the inner
// loop of every sharded sweep.
func TestMeasureBatchZeroAlloc(t *testing.T) {
	m := New(uarch.IceLake1065G7(), 1)
	if err := m.MapUser(0x7e0000000000, 16*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	ops := testOps(32)
	out := make([]float64, len(ops))
	if n := testing.AllocsPerRun(200, func() { m.MeasureBatch(ops, 1, 1, out) }); n > 0 {
		t.Errorf("MeasureBatch: %v allocs/op, want 0", n)
	}
}

// SwapNoise must route measurement noise through the caller's stream and
// restore cleanly: two machines measuring the same op sequence, one
// through swapped-in sources and one through ReseedNoise, see identical
// values — and ReseedNoise must always reinstate the machine-owned stream.
func TestSwapNoiseStreams(t *testing.T) {
	build := func() *Machine {
		m := New(uarch.IceLake1065G7(), 11)
		if err := m.MapUser(0x7e0000000000, 8*paging.Page4K, paging.Writable); err != nil {
			t.Fatal(err)
		}
		return m
	}
	op := avx.MaskedLoad(0x7e0000000000, avx.ZeroMask)

	ref := build()
	var want []float64
	for _, seed := range []uint64{100, 200, 100} {
		ref.ReseedNoise(seed)
		for i := 0; i < 8; i++ {
			v, _ := ref.Measure(op)
			want = append(want, v)
		}
	}

	m := build()
	var a, b rng.Source
	a.Reseed(100)
	b.Reseed(200)
	var got []float64
	orig := m.SwapNoise(&a)
	for i := 0; i < 8; i++ {
		v, _ := m.Measure(op)
		got = append(got, v)
	}
	m.SwapNoise(&b)
	for i := 0; i < 8; i++ {
		v, _ := m.Measure(op)
		got = append(got, v)
	}
	m.SwapNoise(&a)
	a.Reseed(100)
	for i := 0; i < 8; i++ {
		v, _ := m.Measure(op)
		got = append(got, v)
	}
	m.SwapNoise(orig)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("swapped-stream measurement %d differs: %v vs %v", i, want[i], got[i])
		}
	}
	// ReseedNoise restores the machine-owned stream even after swaps.
	m.ReseedNoise(300)
	ref.ReseedNoise(300)
	v1, _ := m.Measure(op)
	v2, _ := ref.Measure(op)
	if v1 != v2 {
		t.Fatal("ReseedNoise did not reinstate the machine-owned stream")
	}
}

// The flat PFN backing must behave exactly like the old map: lazily
// created frames, data round-trips, clone isolation, and an array-op clear
// on Rebind.
func TestFlatBackingSemantics(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 3)
	if err := m.MapUser(0x7e0000000000, 4*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteUser(0x7e0000000123, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadUser(0x7e0000000123, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string([]byte{1, 2, 3, 4}) {
		t.Fatalf("backing round-trip failed: %v", got)
	}

	// A clone starts with an empty write shadow of its own.
	c := m.Clone(9)
	if data, err := c.ReadUser(0x7e0000000123, 4); err != nil || data[0] != 0 {
		t.Fatalf("clone inherited the parent's write shadow: %v, %v", data, err)
	}
	if err := c.WriteUser(0x7e0000000123, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if data, _ := m.ReadUser(0x7e0000000123, 1); data[0] != 1 {
		t.Fatal("clone write leaked into the parent's backing")
	}

	// Rebind clears the replica's shadow in place.
	c.Rebind(m)
	if data, err := c.ReadUser(0x7e0000000123, 1); err != nil || data[0] != 0 {
		t.Fatalf("Rebind did not clear the write shadow: %v, %v", data, err)
	}
}

// Steady-state frame writes must not allocate once the frame exists, and
// repeated Rebind must not reallocate the backing slice.
func TestFlatBackingSteadyStateAllocs(t *testing.T) {
	m := New(uarch.AlderLake12400F(), 7)
	if err := m.MapUser(0x7e0000000000, 4*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	buf := []byte{42}
	if err := m.WriteUser(0x7e0000000000, buf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := m.WriteUser(0x7e0000000000, buf); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("steady-state frame write allocates %.1f/op, want 0", n)
	}
	c := m.Clone(1)
	if err := c.WriteUser(0x7e0000000000, buf); err != nil {
		t.Fatal(err)
	}
	c.Rebind(m)
	if n := testing.AllocsPerRun(50, func() { c.Rebind(m) }); n > 0 {
		t.Errorf("Rebind allocates %.1f/op with a warm backing slice, want 0", n)
	}
}
