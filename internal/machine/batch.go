package machine

import (
	"repro/internal/avx"
	"repro/internal/paging"
)

// This file is the batched probe surface of the machine: the scan engine's
// chunk workers hand whole slices of masked ops down here so the
// loop-invariant part of a probe — noise-sigma and fence-overhead
// composition, the double-execution warm-up/measure bracketing, scratch
// reuse — is paid once per batch instead of once per sample. The ops still
// execute strictly in slice order through the same ExecMasked/noise path as
// the single-op calls, so a batch is bit-identical to the equivalent
// one-op-at-a-time loop: batching buys host time, never different results.

// ExecMaskedBatch executes each op in order as the attacker, writing the
// per-op results into out (len(out) must be >= len(ops)). Equivalent to
// calling ExecMasked per op.
func (m *Machine) ExecMaskedBatch(ops []avx.Op, out []Result) {
	for i, op := range ops {
		out[i] = m.ExecMasked(op)
	}
}

// MeasureBatch runs the double-execution probe sequence for every op in
// ops: warmups unmeasured executions, then samples measured executions
// (the lfence;rdtsc bracket of Measure), writing the measured cycle values
// to out op-major — out[i*samples+s] is op i's sample s; len(out) must be
// >= len(ops)*samples. Returns the number of measured executions that
// delivered a fault.
//
// The sequence per op — and therefore every TLB fill, counter update,
// noise draw and clock charge — is identical to
//
//	for w := 0; w < warmups; w++ { m.ExecMasked(op) }
//	for s := 0; s < samples; s++ { m.Measure(op) }
//
// so batched sweeps are bit-identical to per-VA sweeps at any batch
// boundary; only the per-sample overhead (noise-sigma composition, fence
// constants, result plumbing) is hoisted out of the loop.
func (m *Machine) MeasureBatch(ops []avx.Op, warmups, samples int, out []float64) (faults int) {
	sigma := m.Preset.NoiseSigma + m.Preset.ExtraNoiseSigma
	fence := m.Preset.FenceOverhead
	bracket := uint64(m.Preset.FenceOverhead + m.Preset.LoopOverhead)
	oi := 0
	for _, op := range ops {
		for w := 0; w < warmups; w++ {
			m.ExecMasked(op)
		}
		for s := 0; s < samples; s++ {
			r := m.ExecMasked(op)
			if r.Faulted {
				faults++
			}
			meas := r.Cycles + fence + m.noiseSampleSigma(sigma)
			if meas < 0 {
				meas = 0
			}
			m.tsc += bracket
			out[oi] = meas
			oi++
		}
	}
	return faults
}

// MeasureEvictedBatch runs the targeted-eviction probe sequence of the AMD
// walk-termination attack for every op in ops: samples repetitions of
// { EvictTranslation(op.Addr); Measure(op) }, writing the measured cycle
// values to out op-major — out[i*samples+s] is op i's sample s; len(out)
// must be >= len(ops)*samples. Returns the number of measured executions
// that delivered a fault.
//
// The state mutations, noise draws and clock charges per sample are
// identical to the equivalent per-VA loop
//
//	for s := 0; s < samples; s++ {
//		m.EvictTranslation(va)
//		m.Measure(op)
//	}
//
// so batched term-level sweeps are bit-identical to per-VA ones at any
// batch boundary. Two loop-invariant costs are hoisted per op: the
// noise-sigma/fence composition (as in MeasureBatch) and the eviction's
// page-table walk — the walk is a pure read of the (scan-immutable)
// address space, so one walk's frame list serves all of a VA's samples;
// only its eviction side effects and attacker cost repeat per sample.
func (m *Machine) MeasureEvictedBatch(ops []avx.Op, samples int, out []float64) (faults int) {
	sigma := m.Preset.NoiseSigma + m.Preset.ExtraNoiseSigma
	fence := m.Preset.FenceOverhead
	bracket := uint64(m.Preset.FenceOverhead + m.Preset.LoopOverhead)
	oi := 0
	for _, op := range ops {
		// The eviction walk, hoisted: EvictTranslation re-walks per call,
		// but within one scan the walk result cannot change. A dedicated
		// scratch buffer keeps ExecMasked's own translations (which share
		// m.visitBuf) from clobbering the hoisted frame list mid-loop.
		w := m.UserAS.Translate(paging.PageBase(op.Addr, paging.Page4K), m.evictBuf)
		m.evictBuf = w.Visited
		for s := 0; s < samples; s++ {
			m.evictWalkLines(op.Addr, w.Visited)
			r := m.ExecMasked(op)
			if r.Faulted {
				faults++
			}
			meas := r.Cycles + fence + m.noiseSampleSigma(sigma)
			if meas < 0 {
				meas = 0
			}
			m.tsc += bracket
			out[oi] = meas
			oi++
		}
	}
	return faults
}
