package experiments

import "testing"

// Each experiment must reproduce its paper artifact's shape. These tests
// use a reduced scale; the bench harness and cmd/experiments run bigger.
func testScale() Scale {
	sc := DefaultScale()
	sc.Samples = 400
	sc.TrialsBase = 40
	sc.TrialsModules = 4
	sc.UserEntropyBits = 13
	sc.AzureMaxSlot = 4000
	sc.KVASMaxSlot = 512
	sc.BehaviorSeconds = 60
	return sc
}

func check(t *testing.T, r Report) {
	t.Helper()
	t.Logf("\n%s", r.String())
	if !r.OK {
		t.Errorf("%s: shape mismatch: %s", r.ID, r.Measured)
	}
}

func TestFig1(t *testing.T)         { check(t, Fig1FaultSuppression(testScale())) }
func TestFig2(t *testing.T)         { check(t, Fig2PageTypes(testScale())) }
func TestFig2bLevels(t *testing.T)  { check(t, Fig2bPageTableLevels(testScale())) }
func TestFig2cTLB(t *testing.T)     { check(t, Fig2cTLBState(testScale())) }
func TestFig3(t *testing.T)         { check(t, Fig3Permissions(testScale())) }
func TestFig3bP6(t *testing.T)      { check(t, Fig3bLoadVsStore(testScale())) }
func TestFig4(t *testing.T)         { check(t, Fig4KernelBaseScan(testScale())) }
func TestTable1(t *testing.T)       { check(t, Table1(testScale())) }
func TestFig5(t *testing.T)         { check(t, Fig5ModuleIdent(testScale())) }
func TestSec4dKPTI(t *testing.T)    { check(t, Sec4dKPTI(testScale())) }
func TestFig6(t *testing.T)         { check(t, Fig6BehaviorSpy(testScale())) }
func TestFig7SGX(t *testing.T)      { check(t, Fig7SGXFineGrained(testScale())) }
func TestSec4gWindows(t *testing.T) { check(t, Sec4gWindows(testScale())) }
func TestSec4hCloud(t *testing.T)   { check(t, Sec4hCloud(testScale())) }
func TestSec5Defenses(t *testing.T) { check(t, Sec5Defenses(testScale())) }
func TestBaselines(t *testing.T)    { check(t, BaselineComparison(testScale())) }
