package experiments

import (
	"strings"
	"testing"
)

func TestScaleDefaults(t *testing.T) {
	sc := DefaultScale()
	if sc.Samples <= 0 || sc.TrialsBase <= 0 || sc.TrialsModules <= 0 {
		t.Fatalf("zero defaults: %+v", sc)
	}
	if sc.UserEntropyBits <= 0 || sc.UserEntropyBits > 28 {
		t.Fatalf("entropy %d", sc.UserEntropyBits)
	}
	if sc.BehaviorSeconds != 100 {
		t.Fatalf("behavior window %v, want the paper's 100 s", sc.BehaviorSeconds)
	}
}

func TestPaperScaleMatchesPaper(t *testing.T) {
	sc := PaperScale()
	if sc.TrialsBase != 10000 {
		t.Fatalf("paper trials %d, want 10000 (Table I)", sc.TrialsBase)
	}
	if sc.AzureMaxSlot != 0 {
		t.Fatal("paper scale must scan the full Azure region")
	}
	if sc.UserEntropyBits <= DefaultScale().UserEntropyBits {
		t.Fatal("paper scale should raise the user-scan entropy")
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		ID: "Fig. X", Title: "test", PaperClaim: "a", Measured: "b", OK: true,
		Text: "body\n",
	}
	s := r.String()
	for _, want := range []string{"Fig. X", "SHAPE OK", "paper:    a", "measured: b", "body"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	r.OK = false
	if !strings.Contains(r.String(), "SHAPE MISMATCH") {
		t.Error("mismatch verdict missing")
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite")
	}
	sc := testScale()
	reports := All(sc)
	if len(reports) != 16 {
		t.Fatalf("All ran %d experiments, want 16", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if r.ID == "" {
			t.Fatal("experiment without ID")
		}
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %q", r.ID)
		}
		seen[r.ID] = true
		if !r.OK {
			t.Errorf("%s: %s", r.ID, r.Measured)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	sc := testScale()
	a := Fig4KernelBaseScan(sc)
	b := Fig4KernelBaseScan(sc)
	if a.Measured != b.Measured {
		t.Fatalf("same seed, different results:\n%s\n%s", a.Measured, b.Measured)
	}
}
