package experiments

import (
	"fmt"
	"strings"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
	"repro/internal/sgx"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

// Fig6BehaviorSpy reproduces Figure 6: a spy samples the TLB state of the
// bluetooth and psmouse modules once per second for 100 s while the victim
// streams Bluetooth audio and moves the mouse in bursts.
func Fig6BehaviorSpy(sc Scale) Report {
	m := machine.New(uarch.IceLake1065G7(), sc.Seed)
	k, err := linux.Boot(m, linux.Config{Seed: sc.Seed + 8})
	if err != nil {
		return Report{ID: "Fig. 6", Measured: err.Error()}
	}
	p, err := core.NewProber(m, sc.proberOptions())
	if err != nil {
		return Report{ID: "Fig. 6", Measured: err.Error()}
	}

	// Phase 1: locate the target modules with the module attack (the
	// bluetooth and psmouse sizes are unique, so they classify exactly).
	mres := core.Modules(p, core.SizeTable(k.ProcModules()))
	targets, err := core.LocateTargets(mres, "bluetooth", "psmouse")
	if err != nil {
		return Report{ID: "Fig. 6", Measured: err.Error()}
	}

	// Phase 2: victim timelines — audio bursts and mouse bursts.
	r := rng.New(sc.Seed + 9)
	btTL := behavior.RandomTimeline(behavior.BluetoothAudio(), sc.BehaviorSeconds, 12, 18, r)
	mouseTL := behavior.RandomTimeline(behavior.MouseMovement(), sc.BehaviorSeconds, 8, 6, r)
	drv, err := behavior.NewDriver(k, btTL, mouseTL)
	if err != nil {
		return Report{ID: "Fig. 6", Measured: err.Error()}
	}

	spy := &core.BehaviorSpy{P: p, Targets: targets, PagesPerModule: 10, TickSec: 1}
	traces, err := spy.Run(drv, sc.BehaviorSeconds)
	if err != nil {
		return Report{ID: "Fig. 6", Measured: err.Error()}
	}

	accBT := traces[0].Accuracy(btTL)
	accMouse := traces[1].Accuracy(mouseTL)
	ok := accBT >= 0.9 && accMouse >= 0.9

	var text strings.Builder
	for i, tr := range traces {
		series := &trace.Series{Name: tr.Module}
		for _, s := range tr.Samples {
			series.Add(s.TimeSec, s.MinCycles)
		}
		plot := trace.NewPlot(fmt.Sprintf("Fig. 6 — %s TLB probe (fast = active)", tr.Module),
			"elapsed time (s)", "access time (cycles)")
		plot.AddSeries(series, 'o')
		text.WriteString(plot.Render())
		_ = i
	}
	return Report{
		ID:         "Fig. 6",
		Title:      "User-behavior inference via module TLB state (i7-1065G7)",
		PaperClaim: "execution times drop while the module is in use; Bluetooth and mouse activity windows are visible",
		Measured:   fmt.Sprintf("activity-detection accuracy: bluetooth %.1f%%, psmouse %.1f%%", 100*accBT, 100*accMouse),
		OK:         ok,
		Text:       text.String(),
	}
}

// Fig7SGXFineGrained reproduces §IV-F and Figure 7: from inside an SGX
// enclave, find the process code base by linear probing, then recover the
// section map with the fused load+store scan and fingerprint libc by its
// section-size signature, including pages absent from /proc/PID/maps.
func Fig7SGXFineGrained(sc Scale) Report {
	m := machine.New(uarch.IceLake1065G7(), sc.Seed)
	if _, err := linux.Boot(m, linux.Config{Seed: sc.Seed + 10}); err != nil {
		return Report{ID: "Fig. 7", Measured: err.Error()}
	}
	proc, err := userspace.Build(m, userspace.Config{
		Seed:           sc.Seed + 11,
		HideLastRWPage: true,
		EntropyBits:    sc.UserEntropyBits,
	})
	if err != nil {
		return Report{ID: "Fig. 7", Measured: err.Error()}
	}
	enc, err := sgx.Enter(m, sgx.RDTSC)
	if err != nil {
		return Report{ID: "Fig. 7", Measured: err.Error()}
	}
	defer enc.Exit()
	p, err := core.NewProber(m, sc.proberOptions())
	if err != nil {
		return Report{ID: "Fig. 7", Measured: err.Error()}
	}

	// Base search: linear probe from the region base (§IV-F).
	limit := 1 << sc.UserEntropyBits
	t0 := m.RDTSC()
	exeFound, probes, ok1 := core.ScanUntilMapped(p, userspace.ExeRegionBase, limit+1024)
	searchCycles := m.RDTSC() - t0
	baseOK := ok1 && exeFound == proc.Exe.Base

	// Section map: fused load+store scan over the exe and the library area.
	exeScan := core.UserScan(p, proc.Exe.Base-16*paging.Page4K, proc.Exe.End()+8*paging.Page4K)
	libStart := proc.Libs[0].Base - 16*paging.Page4K
	libEnd := proc.Libs[len(proc.Libs)-1].End() + 8*paging.Page4K
	libScan := core.UserScan(p, libStart, libEnd)

	// Fingerprint the libraries by signature.
	found := core.FingerprintLibraries(libScan.Regions, userspace.StandardLibraries())
	libcOK := false
	for _, lib := range proc.Libs {
		if lib.Image.Name == "libc.so" && found["libc.so"] == lib.Base {
			libcOK = true
		}
	}

	// Hidden-page check: the scan must see the page /proc misses.
	hiddenOK := true
	for _, hp := range proc.Exe.HiddenPages {
		covered := false
		for _, rg := range exeScan.Regions {
			if hp >= rg.Start && hp < rg.End && rg.Class == core.PermWritable {
				covered = true
			}
		}
		if !covered {
			hiddenOK = false
		}
	}

	// Permission ground truth (the custom-LKM page-table check of §IV-F).
	permOK := true
	for _, rg := range exeScan.Regions {
		for va := rg.Start; va < rg.End; va += paging.Page4K {
			gt, mapped := proc.GroundTruthPerm(va)
			switch rg.Class {
			case core.PermWritable:
				if !mapped || gt != userspace.PermRW {
					permOK = false
				}
			case core.PermReadable:
				if !mapped || gt == userspace.PermRW {
					permOK = false
				}
			}
		}
	}

	// Full-scale runtime model: the paper probes the entire 28-bit range
	// twice — once with masked loads (51 s), once with masked stores
	// (44 s). Measure this machine's per-address probe cost on unmapped
	// space (the overwhelming majority of the range) and extrapolate.
	probeVA := paging.VirtAddr(0x600000000000)
	tp := m.RDTSC()
	for i := 0; i < 2048; i++ {
		p.ProbeMapped(probeVA + paging.VirtAddr(i*paging.Page4K))
	}
	loadPer := float64(m.RDTSC()-tp) / 2048
	tp = m.RDTSC()
	for i := 0; i < 2048; i++ {
		p.ProbeMappedStore(probeVA + paging.VirtAddr(i*paging.Page4K))
	}
	storePer := float64(m.RDTSC()-tp) / 2048
	const fullProbes = 1 << 28
	extLoadSec := m.Preset.CyclesToSeconds(uint64(loadPer * fullProbes))
	extStoreSec := m.Preset.CyclesToSeconds(uint64(storePer * fullProbes))

	loadSec := m.Preset.CyclesToSeconds(libScan.LoadCycles + searchCycles)
	storeSec := m.Preset.CyclesToSeconds(libScan.StoreCycles)

	tab := &trace.Table{Header: []string{"region", "class", "pages"}}
	for _, rg := range exeScan.Regions {
		tab.AddRow(fmt.Sprintf("%#x-%#x", uint64(rg.Start), uint64(rg.End)), rg.Class.String(),
			fmt.Sprintf("%d", rg.Pages()))
	}
	for _, rg := range libScan.Regions {
		tab.AddRow(fmt.Sprintf("%#x-%#x", uint64(rg.Start), uint64(rg.End)), rg.Class.String(),
			fmt.Sprintf("%d", rg.Pages()))
	}

	// Shape: store pass faster than load pass (P6), both tens of seconds
	// at full scale.
	ok := baseOK && libcOK && hiddenOK && permOK &&
		extStoreSec < extLoadSec && extLoadSec > 10 && extLoadSec < 500
	return Report{
		ID:         "Fig. 7 / §IV-F",
		Title:      fmt.Sprintf("Fine-grained ASLR break inside SGX (entropy scaled to %d bits)", sc.UserEntropyBits),
		PaperClaim: "code base found (51 s load / 44 s store at 28-bit entropy); libc identified by section signature; pages missing from /proc/PID/maps detected; all recovered permissions correct",
		Measured: fmt.Sprintf("base %s after %d probes; libc %s; hidden pages %s; perms %s; window load %.3gs/store %.3gs; full 28-bit extrapolation %.0fs load / %.0fs store",
			verdict(baseOK), probes, verdict(libcOK), verdict(hiddenOK), verdict(permOK),
			loadSec, storeSec, extLoadSec, extStoreSec),
		OK:   ok,
		Text: tab.Render(),
	}
}

// Sec4gWindows reproduces §IV-G: the 2^18-slot Windows kernel-region scan
// on Alder Lake and the KVAS scan on Skylake.
func Sec4gWindows(sc Scale) Report {
	// Part 1: kernel region (five consecutive 2 MiB pages).
	m := machine.New(uarch.AlderLake12400F(), sc.Seed)
	wk, err := winkernel.Boot(m, winkernel.Config{Seed: sc.Seed + 12, Drivers: 24})
	if err != nil {
		return Report{ID: "§IV-G", Measured: err.Error()}
	}
	p, err := core.NewProber(m, sc.proberOptions())
	if err != nil {
		return Report{ID: "§IV-G", Measured: err.Error()}
	}
	wres, err := core.WindowsKernel(p, winkernel.ImageSlots)
	regionOK := err == nil && wres.RegionBase == wk.Base
	regionSec := m.Preset.CyclesToSeconds(wres.TotalCycles)

	// Part 2: KVAS on Skylake (scan window scaled).
	m2 := machine.New(uarch.Skylake6600U(), sc.Seed)
	wk2, err := winkernel.Boot(m2, winkernel.Config{Seed: sc.Seed + 13, KVAS: true, MaxSlot: sc.KVASMaxSlot - 8})
	if err != nil {
		return Report{ID: "§IV-G", Measured: err.Error()}
	}
	p2, err := core.NewProber(m2, sc.proberOptions())
	if err != nil {
		return Report{ID: "§IV-G", Measured: err.Error()}
	}
	kres, err := core.KVASBreak(p2, sc.KVASMaxSlot)
	kvasOK := err == nil && kres.Base == wk2.Base
	kvasSec := m2.Preset.CyclesToSeconds(kres.TotalCycles)
	kvasScale := float64(winkernel.Slots) / float64(sc.KVASMaxSlot)

	ok := regionOK && kvasOK
	return Report{
		ID:         "§IV-G",
		Title:      "Windows 10: kernel region and KVAS derandomization",
		PaperClaim: "5×2MiB kernel region in ~60 ms (18 bits); KVAS 3×4KiB found, base recovered, ~8 s on i7-6600U",
		Measured: fmt.Sprintf("region %s in %s; KVAS %s in %s over %d slots (×%.0f window extrapolates to ~%s)",
			verdict(regionOK), fmtSec(regionSec), verdict(kvasOK), fmtSec(kvasSec),
			sc.KVASMaxSlot, kvasScale, fmtSec(kvasSec*kvasScale)),
		OK: ok,
	}
}

// Sec4hCloud reproduces §IV-H: KASLR breaks on the three cloud scenarios.
func Sec4hCloud(sc Scale) Report {
	tab := &trace.Table{Header: []string{"provider", "CPU", "base runtime", "modules", "path", "paper"}}
	paper := map[core.CloudProvider]string{
		core.AmazonEC2:      "base 0.03ms, modules 1.14ms (KPTI trampoline +0xe00000)",
		core.GoogleGCE:      "base 0.08ms, modules 2.7ms",
		core.MicrosoftAzure: "18 bits in 2.06s (Windows)",
	}
	ok := true
	var measured []string
	for _, prov := range []core.CloudProvider{core.AmazonEC2, core.GoogleGCE, core.MicrosoftAzure} {
		res, err := core.CloudBreak(prov, sc.Seed+uint64(prov)*31, core.CloudBreakOptions{AzureMaxSlot: sc.AzureMaxSlot})
		if err != nil {
			ok = false
			tab.AddRow(prov.String(), "-", "FAILED: "+err.Error(), "-", "-", paper[prov])
			continue
		}
		scen := core.Scenario(prov)
		path := "page-table scan"
		if res.ViaTrampoline {
			path = "KPTI trampoline"
		}
		baseSec := scen.Preset.CyclesToSeconds(res.BaseCycles)
		modSec := scen.Preset.CyclesToSeconds(res.ModuleCycles)
		modCell := "-"
		if res.ModuleCycles > 0 {
			modCell = fmt.Sprintf("%s (%d regions)", fmtSec(modSec), res.ModulesFound)
		}
		tab.AddRow(prov.String(), scen.Preset.Name, fmtSec(baseSec), modCell, path, paper[prov])
		measured = append(measured, fmt.Sprintf("%s base %s", prov, fmtSec(baseSec)))
	}
	return Report{
		ID:         "§IV-H",
		Title:      "KASLR breaks in cloud computing systems",
		PaperClaim: "kernel base and modules recovered on EC2, GCE and Azure",
		Measured:   strings.Join(measured, "; "),
		OK:         ok,
		Text:       tab.Render(),
	}
}
