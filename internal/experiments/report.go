// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulator. Each experiment returns a Report holding the
// rendered output, the paper's claim, the measured value and a shape check
// — the per-experiment index lives in DESIGN.md and the measured-vs-paper
// record in EXPERIMENTS.md.
//
// Experiments whose paper-scale parameters are hostile to CI accept a
// Scale; DefaultScale keeps everything under a few seconds, PaperScale
// reproduces the full parameters.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Report is one experiment's outcome.
type Report struct {
	// ID is the paper artifact ("Fig. 2", "Table I", "§IV-D"...).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim summarizes what the paper reports.
	PaperClaim string
	// Measured summarizes what this run measured.
	Measured string
	// OK reports the shape check: the qualitative result (who wins, which
	// classes separate, where the crossover falls) matches the paper.
	OK bool
	// Text is the full rendered output (tables, ASCII plots).
	Text string
}

// String renders the report header and body.
func (r Report) String() string {
	status := "SHAPE OK"
	if !r.OK {
		status = "SHAPE MISMATCH"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "paper:    %s\n", r.PaperClaim)
	fmt.Fprintf(&b, "measured: %s\n", r.Measured)
	if r.Text != "" {
		b.WriteString(r.Text)
	}
	return b.String()
}

// Scale sets experiment sizes.
type Scale struct {
	// Samples is the per-point sample count for the micro experiments.
	Samples int
	// TrialsBase / TrialsModules are the Table I trial counts (paper:
	// 10000 each).
	TrialsBase    int
	TrialsModules int
	// UserEntropyBits is the §IV-F scan entropy (paper: 28).
	UserEntropyBits int
	// AzureMaxSlot bounds the Azure/Windows slide (paper: full 2^18).
	AzureMaxSlot int
	// KVASMaxSlot bounds the KVAS 4 KiB scan window in slots.
	KVASMaxSlot int
	// BehaviorSeconds is the Fig. 6 observation window (paper: 100 s).
	BehaviorSeconds float64
	// Seed makes every experiment deterministic.
	Seed uint64
	// Workers routes the big VA scans through the sharded parallel scan
	// engine with that many worker replicas (0 runs the same engine
	// semantics inline, sequentially). Results are deterministic for a
	// fixed seed at any worker count; only host wall-clock changes.
	Workers int
	// Pool is the session-persistent worker pool shared by every scan in
	// the run (set once by the caller; nil makes each scan clone fresh
	// workers). Pooled and fresh runs produce bit-identical results.
	Pool *core.ScanPool
}

// proberOptions is the prober configuration every experiment shares: the
// scan-engine worker count and the session worker pool.
func (s Scale) proberOptions() core.Options {
	return core.Options{Workers: s.Workers, Pool: s.Pool}
}

// DefaultScale is CI-friendly: every experiment finishes in seconds.
func DefaultScale() Scale {
	return Scale{
		Samples:         1000,
		TrialsBase:      200,
		TrialsModules:   25,
		UserEntropyBits: 16,
		AzureMaxSlot:    20000,
		KVASMaxSlot:     2048,
		BehaviorSeconds: 100,
		Seed:            0x5eed,
	}
}

// PaperScale reproduces the paper's parameters where feasible (the 28-bit
// user scan remains capped at 24 bits; EXPERIMENTS.md documents the
// extrapolation).
func PaperScale() Scale {
	s := DefaultScale()
	s.TrialsBase = 10000
	s.TrialsModules = 1000
	s.UserEntropyBits = 24
	s.AzureMaxSlot = 0 // full region
	s.KVASMaxSlot = 16384
	return s
}
