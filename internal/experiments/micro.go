package experiments

import (
	"fmt"

	"repro/internal/avx"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/perf"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Fig1FaultSuppression reproduces Figure 1: masked loads/stores across a
// mapped/unmapped page boundary fault when a set mask bit covers the
// unmapped page (cases A, B) and suppress the fault when the unmapped
// page's elements are all masked out (cases C, D).
func Fig1FaultSuppression(sc Scale) Report {
	m := machine.New(uarch.IceLake1065G7(), sc.Seed)

	// Two adjacent pages: upper mapped, lower unmapped (mmap/munmap).
	base := paging.VirtAddr(0x7e0000200000)
	if err := m.MapUser(base, 2*paging.Page4K, paging.Writable); err != nil {
		return Report{ID: "Fig. 1", OK: false, Measured: err.Error()}
	}
	if err := m.UnmapUser(base+paging.Page4K, paging.Page4K); err != nil {
		return Report{ID: "Fig. 1", OK: false, Measured: err.Error()}
	}
	// Op range straddles the boundary: elements 0..3 on the mapped page,
	// 4..7 on the unmapped page (8 × 4-byte elements, addr = boundary-16).
	addr := base + paging.Page4K - 16

	tab := &trace.Table{Header: []string{"case", "op", "mask", "fault", "suppressed"}}
	type c struct {
		name  string
		store bool
		mask  avx.Mask
		fault bool
	}
	cases := []c{
		{"A (partial mask)", false, 0b11101111, true}, // one low-page element set
		{"B (partial mask)", true, 0b11101111, true},
		{"C (low masked out)", false, 0b00001111, false},
		{"D (low masked out)", true, 0b00001111, false},
	}
	ok := true
	for _, tc := range cases {
		op := avx.MaskedLoad(addr, tc.mask)
		if tc.store {
			op = avx.MaskedStore(addr, tc.mask)
		}
		before := m.Counters.Snapshot()
		r := m.ExecMasked(op)
		delta := m.Counters.Delta(before)
		tab.AddRow(tc.name, op.String()[:12], fmt.Sprintf("%08b", uint8(tc.mask)),
			fmt.Sprintf("%v", r.Faulted), fmt.Sprintf("%d", delta[perf.FaultSuppressed]))
		if r.Faulted != tc.fault {
			ok = false
		}
	}
	// Kernel memory: all-zero mask never faults on inaccessible pages.
	r := m.ExecMasked(avx.MaskedLoad(0xffffffff90000000, avx.ZeroMask))
	if r.Faulted {
		ok = false
	}
	tab.AddRow("kernel, zero mask", "vpmaskmovd", "00000000", fmt.Sprintf("%v", r.Faulted), "8")

	return Report{
		ID:         "Fig. 1",
		Title:      "Fault suppression of AVX masked load/store",
		PaperClaim: "partial masks over unmapped pages fault; all-zero masks never fault, even on kernel memory",
		Measured:   "fault/suppression matrix matches for all five cases",
		OK:         ok,
		Text:       tab.Render(),
	}
}

// pageClassStats measures one address class on a machine.
func pageClassStats(m *machine.Machine, va paging.VirtAddr, samples int) (*stats.Sample, map[perf.Event]uint64) {
	s := &stats.Sample{}
	m.ExecMasked(avx.MaskedLoad(va, avx.ZeroMask)) // warm-up execution
	before := m.Counters.Snapshot()
	for i := 0; i < samples; i++ {
		meas, _ := m.Measure(avx.MaskedLoad(va, avx.ZeroMask))
		s.Add(meas - m.Preset.FenceOverhead)
	}
	return s, m.Counters.Delta(before)
}

// Fig2PageTypes reproduces Figure 2 on the Ice Lake preset: per-class
// masked-load timing (USER-M 13, USER-U 110, KERNEL-M 93, KERNEL-U 107)
// and the corresponding assist/walk performance counters.
func Fig2PageTypes(sc Scale) Report {
	m := machine.New(uarch.IceLake1065G7(), sc.Seed)
	k, err := linux.Boot(m, linux.Config{Seed: sc.Seed + 1})
	if err != nil {
		return Report{ID: "Fig. 2", Measured: err.Error()}
	}
	userVA := paging.VirtAddr(0x7e0000000000)
	if err := m.MapUser(userVA, paging.Page4K, paging.Writable); err != nil {
		return Report{ID: "Fig. 2", Measured: err.Error()}
	}
	m.ExecMasked(avx.MaskedStore(userVA, avx.AllMask(8)))

	classes := []struct {
		name string
		va   paging.VirtAddr
		want float64
	}{
		{"USER-M", userVA, 13},
		{"USER-U", 0x700000000000, 110},
		{"KERNEL-M", k.Base, 93},
		{"KERNEL-U", k.Base - 4*paging.Page2M, 107},
	}
	tab := &trace.Table{Header: []string{"page", "cycles (trimmed mean±std)", "paper", "assists/exec", "walks/2-exec"}}
	ok := true
	means := make(map[string]float64)
	for _, c := range classes {
		s, delta := pageClassStats(m, c.va, sc.Samples)
		tr := s.Trimmed(0, 0.99)
		means[c.name] = tr.Mean()
		assists := float64(delta[perf.AssistsAny]) / float64(sc.Samples)
		walks := float64(delta[perf.WalkCompletedLoad]) / float64(sc.Samples) * 2
		tab.AddRow(c.name, tr.String(), fmt.Sprintf("%.0f", c.want),
			fmt.Sprintf("%.0f", assists), fmt.Sprintf("%.0f", walks))
		if d := tr.Mean() - c.want; d > 4 || d < -4 {
			ok = false
		}
	}
	// Shape: USER-M ≪ KERNEL-M < KERNEL-U < USER-U.
	if !(means["USER-M"] < means["KERNEL-M"] && means["KERNEL-M"] < means["KERNEL-U"] &&
		means["KERNEL-U"] < means["USER-U"]) {
		ok = false
	}
	return Report{
		ID:         "Fig. 2",
		Title:      "Masked-load timing and PMCs per page class (i7-1065G7)",
		PaperClaim: "13 / 110 / 93 / 107 cycles; assists 0/1/1/1; walks 0/2/0/2",
		Measured: fmt.Sprintf("%.0f / %.0f / %.0f / %.0f cycles",
			means["USER-M"], means["USER-U"], means["KERNEL-M"], means["KERNEL-U"]),
		OK:   ok,
		Text: tab.Render(),
	}
}

// Fig2bPageTableLevels reproduces the §III-B level experiment on Coffee
// Lake: with the TLB flushed before each probe, walk-termination timing
// orders PD < PDPT < PML4 < PT.
func Fig2bPageTableLevels(sc Scale) Report {
	m := machine.New(uarch.CoffeeLake9900(), sc.Seed)
	as := paging.NewAddressSpace(m.Alloc)

	// Four kernel addresses whose walks terminate at each level:
	// a 4 KiB page (PT), a 2 MiB page (PD), a 1 GiB page (PDPT), and an
	// address in an entirely unpopulated PML4 slot (PML4).
	va4k := paging.VirtAddr(0xffffffff80000000)
	va2m := paging.VirtAddr(0xffffffd000000000)
	va1g := paging.VirtAddr(0xffffffa000000000)
	vaPml4 := paging.VirtAddr(0xffff900000000000)
	if err := as.Map(va4k, paging.Page4K, m.Alloc.Alloc(), 0); err != nil {
		return Report{ID: "§III-B levels", Measured: err.Error()}
	}
	if err := as.Map(va2m, paging.Page2M, m.Alloc.AllocContig(512), 0); err != nil {
		return Report{ID: "§III-B levels", Measured: err.Error()}
	}
	if err := as.Map(va1g, paging.Page1G, m.Alloc.AllocContig(512*512), 0); err != nil {
		return Report{ID: "§III-B levels", Measured: err.Error()}
	}
	m.InstallAddressSpaces(as, as)

	cases := []struct {
		level string
		va    paging.VirtAddr
	}{
		{"PD (2M page)", va2m},
		{"PDPT (1G page)", va1g},
		{"PML4 (empty slot)", vaPml4},
		{"PT (4K page)", va4k},
	}
	tab := &trace.Table{Header: []string{"termination", "cycles (trimmed mean)"}}
	var ms []float64
	for _, c := range cases {
		s := &stats.Sample{}
		for i := 0; i < sc.Samples; i++ {
			// INVLPG from the measurement LKM, as the paper does.
			m.InvlpgAll([]paging.VirtAddr{c.va})
			meas, _ := m.Measure(avx.MaskedLoad(c.va, avx.ZeroMask))
			s.Add(meas - m.Preset.FenceOverhead)
		}
		mean := s.Trimmed(0, 0.99).Mean()
		ms = append(ms, mean)
		tab.AddRow(c.level, fmt.Sprintf("%.1f", mean))
	}
	ok := ms[0] < ms[1] && ms[1] < ms[2] && ms[2] < ms[3]
	return Report{
		ID:         "§III-B levels",
		Title:      "Walk-termination-level timing (i9-9900, TLB flushed)",
		PaperClaim: "time increases PD → PDPT → PML4, with PT slowest (no PT entries in the paging-structure caches)",
		Measured:   fmt.Sprintf("PD %.0f < PDPT %.0f < PML4 %.0f < PT %.0f", ms[0], ms[1], ms[2], ms[3]),
		OK:         ok,
		Text:       tab.Render(),
	}
}

// Fig2cTLBState reproduces the §III-B TLB experiment on Coffee Lake: evict
// the TLB, execute the masked load twice on a kernel-mapped page, and
// measure both runs — 381 cycles for the miss, 147 for the hit (raw loop
// including the fence).
func Fig2cTLBState(sc Scale) Report {
	m := machine.New(uarch.CoffeeLake9900(), sc.Seed)
	k, err := linux.Boot(m, linux.Config{Seed: sc.Seed + 2})
	if err != nil {
		return Report{ID: "§III-B TLB", Measured: err.Error()}
	}
	miss, hit := &stats.Sample{}, &stats.Sample{}
	for i := 0; i < sc.Samples; i++ {
		// Evict TLB entries and the page-table lines (the eviction-set
		// sweep displaces both).
		m.EvictTLB()
		m.EvictPTELines()
		t1, _ := m.Measure(avx.MaskedLoad(k.Base, avx.ZeroMask))
		t2, _ := m.Measure(avx.MaskedLoad(k.Base, avx.ZeroMask))
		miss.Add(t1)
		hit.Add(t2)
	}
	mMean := miss.Trimmed(0, 0.99).Mean()
	hMean := hit.Trimmed(0, 0.99).Mean()
	ok := mMean > hMean+150 && within(mMean, 381, 40) && within(hMean, 147, 25)
	return Report{
		ID:         "§III-B TLB",
		Title:      "TLB miss vs hit on a kernel-mapped page (i9-9900)",
		PaperClaim: "first execution (miss) 381 cycles, second (hit) 147 cycles",
		Measured:   fmt.Sprintf("miss %.0f, hit %.0f cycles (n=%d)", mMean, hMean, sc.Samples),
		OK:         ok,
		Text:       "",
	}
}

// Fig3Permissions reproduces Figure 3: masked-load and masked-store timing
// across page permissions r--, r-x, rw-, --- (i9-9900 class machine).
// Loads separate only --- from the rest; stores additionally separate
// read-only from writable destinations.
func Fig3Permissions(sc Scale) Report {
	m := machine.New(uarch.CoffeeLake9900(), sc.Seed)

	base := paging.VirtAddr(0x7e0000400000)
	// r--, r-x, rw- pages; --- is a PROT_NONE reservation: Linux populates
	// no PTEs for it, so nothing is mapped at that address.
	if err := m.MapUser(base, paging.Page4K, 0); err != nil { // r--
		return Report{ID: "Fig. 3", Measured: err.Error()}
	}
	if err := m.MapUser(base+0x1000, paging.Page4K, 0); err != nil { // r-x
		return Report{ID: "Fig. 3", Measured: err.Error()}
	}
	if err := m.MapUser(base+0x2000, paging.Page4K, paging.Writable); err != nil { // rw-
		return Report{ID: "Fig. 3", Measured: err.Error()}
	}
	nonePage := base + 0x3000
	// Touch the accessible pages so their translations are resident and
	// the rw- page is dirty.
	m.ExecMasked(avx.MaskedLoad(base, avx.AllMask(8)))
	m.ExecMasked(avx.MaskedLoad(base+0x1000, avx.AllMask(8)))
	m.ExecMasked(avx.MaskedStore(base+0x2000, avx.AllMask(8)))

	perms := []struct {
		name string
		va   paging.VirtAddr
	}{
		{"r--", base}, {"r-x", base + 0x1000}, {"rw-", base + 0x2000}, {"---", nonePage},
	}
	tab := &trace.Table{Header: []string{"perm", "masked load", "masked store"}}
	loads := map[string]float64{}
	stores := map[string]float64{}
	for _, p := range perms {
		ls, ss := &stats.Sample{}, &stats.Sample{}
		for i := 0; i < sc.Samples; i++ {
			t, _ := m.Measure(avx.MaskedLoad(p.va, avx.ZeroMask))
			ls.Add(t - m.Preset.FenceOverhead)
			t, _ = m.Measure(avx.MaskedStore(p.va, avx.ZeroMask))
			ss.Add(t - m.Preset.FenceOverhead)
		}
		loads[p.name] = ls.Trimmed(0, 0.99).Mean()
		stores[p.name] = ss.Trimmed(0, 0.99).Mean()
		tab.AddRow(p.name, fmt.Sprintf("%.0f", loads[p.name]), fmt.Sprintf("%.0f", stores[p.name]))
	}
	// Shape: loads r--≈r-x≈rw- ≪ ---; stores r--≈r-x (assist) ≫ rw-,
	// with --- slowest of all store classes... per Fig. 3, store --- sits
	// above the read-only assist (96 vs 82).
	okLoad := near(loads["r--"], loads["r-x"], 3) && near(loads["r--"], loads["rw-"], 3) &&
		loads["---"] > loads["r--"]+60
	okStore := near(stores["r--"], stores["r-x"], 3) && stores["r--"] > stores["rw-"]+40 &&
		stores["---"] > stores["r--"]
	return Report{
		ID:         "Fig. 3",
		Title:      "Timing by page permission (load vs store)",
		PaperClaim: "load: 16/16/16/115 — only --- separates; store: 82/82/16/96 — r/w/none all separate",
		Measured: fmt.Sprintf("load: %.0f/%.0f/%.0f/%.0f; store: %.0f/%.0f/%.0f/%.0f",
			loads["r--"], loads["r-x"], loads["rw-"], loads["---"],
			stores["r--"], stores["r-x"], stores["rw-"], stores["---"]),
		OK:   okLoad && okStore,
		Text: tab.Render(),
	}
}

// Fig3bLoadVsStore reproduces property 6: on a kernel-mapped page the
// masked store's assist is 16–18 cycles cheaper than the masked load's
// (i7-1065G7: 92 vs 76).
func Fig3bLoadVsStore(sc Scale) Report {
	m := machine.New(uarch.IceLake1065G7(), sc.Seed)
	k, err := linux.Boot(m, linux.Config{Seed: sc.Seed + 3})
	if err != nil {
		return Report{ID: "§III-B P6", Measured: err.Error()}
	}
	m.ExecMasked(avx.MaskedLoad(k.Base, avx.ZeroMask)) // TLB warm-up
	ls, ss := &stats.Sample{}, &stats.Sample{}
	for i := 0; i < sc.Samples; i++ {
		t, _ := m.Measure(avx.MaskedLoad(k.Base, avx.ZeroMask))
		ls.Add(t - m.Preset.FenceOverhead)
		t, _ = m.Measure(avx.MaskedStore(k.Base, avx.ZeroMask))
		ss.Add(t - m.Preset.FenceOverhead)
	}
	lMean := ls.Trimmed(0, 0.99).Mean()
	sMean := ss.Trimmed(0, 0.99).Mean()
	diff := lMean - sMean
	ok := diff >= 14 && diff <= 20
	return Report{
		ID:         "§III-B P6",
		Title:      "Masked store vs load on KERNEL-M (i7-1065G7)",
		PaperClaim: "store ~16–18 cycles faster than load (92 vs 76)",
		Measured:   fmt.Sprintf("load %.0f, store %.0f (Δ %.1f)", lMean, sMean, diff),
		OK:         ok,
	}
}

func within(x, want, tol float64) bool { return x >= want-tol && x <= want+tol }
func near(a, b, tol float64) bool      { return a-b <= tol && b-a <= tol }
