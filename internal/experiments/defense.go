package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Sec5Defenses reproduces §V-A: FLARE hides the page-mapping signal but the
// TLB attack still recovers the kernel; FGKASLR is bypassed by the TLB
// template attack; re-randomization actually mitigates; and the masked-op
// restriction affects 6 of 4104 Ubuntu executables.
func Sec5Defenses(sc Scale) Report {
	tab := &trace.Table{Header: []string{"defense", "attack", "outcome", "paper"}}
	ok := true

	fl, err := defense.EvaluateFLARE(uarch.AlderLake12400F(), sc.Seed+20)
	if err != nil {
		return Report{ID: "§V", Measured: err.Error()}
	}
	if fl.PageTableDistinguishes || !fl.Bypassed() {
		ok = false
	}
	tab.AddRow("FLARE", "page-table (P2)",
		fmt.Sprintf("signal removed: %v", !fl.PageTableDistinguishes), "mitigated")
	tab.AddRow("FLARE", "TLB (P4)",
		fmt.Sprintf("base recovered: %v (%#x)", fl.Bypassed(), uint64(fl.TLBBaseFound)), "bypassed")

	fg, err := defense.EvaluateFGKASLR(uarch.AlderLake12400F(), sc.Seed+21, "tcp_sendmsg")
	if err != nil {
		return Report{ID: "§V", Measured: err.Error()}
	}
	if !fg.Bypassed() {
		ok = false
	}
	tab.AddRow("FGKASLR", "TLB template",
		fmt.Sprintf("function located: %v (offset moved: %v)", fg.Bypassed(), !fg.OffsetStable), "bypassed")

	rr, err := defense.EvaluateRerandomization(uarch.AlderLake12400F(), sc.Seed+22)
	if err != nil {
		return Report{ID: "§V", Measured: err.Error()}
	}
	if rr.StaleHit {
		ok = false
	}
	tab.AddRow("re-randomization", "page-table (P2)",
		fmt.Sprintf("stale base still valid: %v", rr.StaleHit), "mitigates")

	mr := defense.UbuntuDefaultPopulation()
	tab.AddRow("masked-op NOP", "-",
		fmt.Sprintf("%d/%d executables affected (%.2f%%)", mr.UsingMaskedOps, mr.TotalExecutables, 100*mr.ImpactFraction()),
		"6/4104")

	return Report{
		ID:         "§V",
		Title:      "Countermeasure evaluation",
		PaperClaim: "FLARE and FGKASLR bypassed via the TLB; re-randomization (and stronger isolation) mitigate",
		Measured: fmt.Sprintf("FLARE bypassed=%v, FGKASLR bypassed=%v, re-randomization holds=%v",
			fl.Bypassed(), fg.Bypassed(), !rr.StaleHit),
		OK:   ok,
		Text: tab.Render(),
	}
}

// BaselineComparison contrasts the AVX attack with the prefetch and TSX
// baselines on the same machines (the practicality argument of §I/§VI).
func BaselineComparison(sc Scale) Report {
	tab := &trace.Table{Header: []string{"attack", "CPU", "requirements", "result", "runtime"}}
	ok := true
	var notes []string

	// AVX attack on Alder Lake (works: AVX2 only).
	m1 := machine.New(uarch.AlderLake12400F(), sc.Seed+30)
	k1, err := linux.Boot(m1, linux.Config{Seed: sc.Seed + 30})
	if err != nil {
		return Report{ID: "baselines", Measured: err.Error()}
	}
	p1, err := core.NewProber(m1, core.Options{})
	if err != nil {
		return Report{ID: "baselines", Measured: err.Error()}
	}
	avxRes, err := core.KernelBase(p1)
	avxOK := err == nil && avxRes.Base == k1.Base
	if !avxOK {
		ok = false
	}
	tab.AddRow("AVX masked-op (this paper)", m1.Preset.Name, "AVX2",
		verdict(avxOK), fmtSec(m1.Preset.CyclesToSeconds(avxRes.TotalCycles)))

	// Prefetch baseline on the same machine: works but needs many more
	// probes per decision (weak signal under jitter).
	m2 := machine.New(uarch.AlderLake12400F(), sc.Seed+31)
	k2, err := linux.Boot(m2, linux.Config{Seed: sc.Seed + 31})
	if err != nil {
		return Report{ID: "baselines", Measured: err.Error()}
	}
	pre, err := baseline.PrefetchKASLR(m2, 16)
	preOK := err == nil && pre.Base == k2.Base
	tab.AddRow("software prefetch (Gruss'16)", m2.Preset.Name, "noise filtering (16 reps/slot)",
		verdict(preOK), fmtSec(m2.Preset.CyclesToSeconds(pre.TotalCycles)))

	// TSX baseline: refuses on Alder Lake (no TSX), works on the i9-9900.
	m3 := machine.New(uarch.AlderLake12400F(), sc.Seed+32)
	if _, err := linux.Boot(m3, linux.Config{Seed: sc.Seed + 32}); err != nil {
		return Report{ID: "baselines", Measured: err.Error()}
	}
	_, tsxErr := baseline.TSXKASLR(m3)
	tsxRefused := tsxErr != nil
	tab.AddRow("Intel TSX (DrK, Jang'16)", m3.Preset.Name, "TSX hardware",
		"unavailable (no TSX)", "-")

	m4 := machine.New(uarch.CoffeeLake9900(), sc.Seed+33)
	k4, err := linux.Boot(m4, linux.Config{Seed: sc.Seed + 33})
	if err != nil {
		return Report{ID: "baselines", Measured: err.Error()}
	}
	tsxRes, err := baseline.TSXKASLR(m4)
	tsxOK := err == nil && tsxRes.Base == k4.Base
	tab.AddRow("Intel TSX (DrK, Jang'16)", m4.Preset.Name, "TSX hardware",
		verdict(tsxOK), fmtSec(m4.Preset.CyclesToSeconds(tsxRes.TotalCycles)))

	if !preOK || !tsxRefused || !tsxOK {
		ok = false
	}
	notes = append(notes,
		fmt.Sprintf("AVX needs 2 probes/slot vs prefetch's %d", pre.Repetitions),
		"TSX path dead on post-2021 parts; AVX works everywhere since 2011")
	return Report{
		ID:         "baselines",
		Title:      "Practicality vs prior microarchitectural KASLR breaks",
		PaperClaim: "the AVX attack needs no TSX, no noise filtering, no BTB/TLB reverse engineering",
		Measured:   strings.Join(notes, "; "),
		OK:         ok,
		Text:       tab.Render(),
	}
}

// All runs every experiment at the given scale, in paper order.
func All(sc Scale) []Report {
	return []Report{
		Fig1FaultSuppression(sc),
		Fig2PageTypes(sc),
		Fig2bPageTableLevels(sc),
		Fig2cTLBState(sc),
		Fig3Permissions(sc),
		Fig3bLoadVsStore(sc),
		Fig4KernelBaseScan(sc),
		Table1(sc),
		Fig5ModuleIdent(sc),
		Sec4dKPTI(sc),
		Fig6BehaviorSpy(sc),
		Fig7SGXFineGrained(sc),
		Sec4gWindows(sc),
		Sec4hCloud(sc),
		Sec5Defenses(sc),
		BaselineComparison(sc),
	}
}
