package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Fig4KernelBaseScan reproduces Figure 4: the 512-offset probe scatter on
// Alder Lake, with kernel-mapped pages around 93 cycles, unmapped around
// 107, and the base at the first fast offset.
func Fig4KernelBaseScan(sc Scale) Report {
	m := machine.New(uarch.AlderLake12400F(), sc.Seed)
	k, err := linux.Boot(m, linux.Config{Seed: sc.Seed + 4})
	if err != nil {
		return Report{ID: "Fig. 4", Measured: err.Error()}
	}
	p, err := core.NewProber(m, sc.proberOptions())
	if err != nil {
		return Report{ID: "Fig. 4", Measured: err.Error()}
	}
	res, err := core.KernelBase(p)
	if err != nil {
		return Report{ID: "Fig. 4", Measured: err.Error()}
	}

	mapped := &trace.Series{Name: "kernel mapped"}
	unmapped := &trace.Series{Name: "unmapped"}
	var mappedMean, unmappedMean float64
	var nm, nu int
	for _, s := range res.Samples {
		y := s.Cycles - m.Preset.FenceOverhead
		if y > 140 {
			y = 140 // clip interrupt spikes for the plot, as the paper does
		}
		if s.Mapped {
			mapped.Add(float64(s.Slot), y)
			mappedMean += y
			nm++
		} else {
			unmapped.Add(float64(s.Slot), y)
			unmappedMean += y
			nu++
		}
	}
	if nm > 0 {
		mappedMean /= float64(nm)
	}
	if nu > 0 {
		unmappedMean /= float64(nu)
	}
	plot := trace.NewPlot(
		fmt.Sprintf("Fig. 4 — kernel offsets scan; base %#x (slide %#x)", uint64(res.Base), res.Slide),
		"kernel offset (2 MiB slots)", "access time (cycles)")
	plot.AddSeries(unmapped, '.')
	plot.AddSeries(mapped, 'o')

	ok := res.Base == k.Base && within(mappedMean, 93, 5) && within(unmappedMean, 107, 5)
	return Report{
		ID:         "Fig. 4",
		Title:      "512-offset kernel scan (i5-12400F)",
		PaperClaim: "mapped ≈93, unmapped ≈107 cycles; base identified without false positives",
		Measured: fmt.Sprintf("mapped %.0f, unmapped %.0f cycles; base %#x (%s)",
			mappedMean, unmappedMean, uint64(res.Base), verdict(res.Base == k.Base)),
		OK:   ok,
		Text: plot.Render(),
	}
}

// Table1 reproduces Table I: derandomization runtime and accuracy for the
// kernel base and modules on the i5-12400F and i7-1065G7, and the base on
// the AMD R5 5600X.
func Table1(sc Scale) Report {
	tab := &trace.Table{Header: []string{"CPU (setting, launch)", "target", "probing", "total", "accuracy", "paper probing/total/acc"}}
	type row struct {
		preset  *uarch.Preset
		target  string
		modules bool
		paper   string
		// paper's runtime bounds for the shape check (total seconds).
		totalLo, totalHi float64
		accLo            float64
	}
	rows := []row{
		{uarch.AlderLake12400F(), "Base", false, "67µs / 0.28ms / 99.60%", 20e-6, 2e-3, 0.985},
		{uarch.AlderLake12400F(), "Modules", true, "2.43ms / 2.62ms / 99.84%", 0.5e-3, 15e-3, 0.985},
		{uarch.IceLake1065G7(), "Base", false, "0.26ms / 0.57ms / 99.29%", 50e-6, 4e-3, 0.98},
		{uarch.IceLake1065G7(), "Modules", true, "8.42ms / 8.64ms / 99.72%", 2e-3, 40e-3, 0.98},
		{uarch.Zen3_5600X(), "Base", false, "1.91ms / 2.90ms / 99.48%", 0.5e-3, 15e-3, 0.98},
	}
	ok := true
	var measured []string
	for _, r := range rows {
		var rep core.TrialReport
		var err error
		if r.modules {
			rep, err = core.EvaluateModulesOpt(r.preset, sc.TrialsModules, sc.Seed, sc.proberOptions())
		} else {
			rep, err = core.EvaluateKernelBaseOpt(r.preset, sc.TrialsBase, sc.Seed, sc.proberOptions())
		}
		if err != nil {
			return Report{ID: "Table I", Measured: err.Error()}
		}
		tab.AddRow(
			fmt.Sprintf("%s (%s, %s)", r.preset.Name, r.preset.Setting, r.preset.Launch),
			r.target,
			fmtSec(rep.ProbeSec), fmtSec(rep.TotalSec),
			fmt.Sprintf("%.2f%%", 100*rep.Accuracy()),
			r.paper,
		)
		measured = append(measured, fmt.Sprintf("%s/%s: %.2f%%", shortName(r.preset.Name), r.target, 100*rep.Accuracy()))
		if rep.Accuracy() < r.accLo || rep.TotalSec < r.totalLo || rep.TotalSec > r.totalHi {
			ok = false
		}
	}
	return Report{
		ID:         "Table I",
		Title:      fmt.Sprintf("KASLR derandomization runtime and accuracy (n=%d base / %d modules)", sc.TrialsBase, sc.TrialsModules),
		PaperClaim: "sub-3ms attacks at 99.3–99.8% accuracy across Intel and AMD",
		Measured:   strings.Join(measured, "; "),
		OK:         ok,
		Text:       tab.Render(),
	}
}

// Fig5ModuleIdent reproduces Figure 5 and §IV-C: detect all loaded-module
// regions on the Ice Lake machine, classify them by size, and verify the
// named examples — autofs4/x_tables collide at 0xB000 while video, mac_hid
// and pinctrl_icelake are uniquely identified.
func Fig5ModuleIdent(sc Scale) Report {
	m := machine.New(uarch.IceLake1065G7(), sc.Seed)
	k, err := linux.Boot(m, linux.Config{Seed: sc.Seed + 5})
	if err != nil {
		return Report{ID: "Fig. 5", Measured: err.Error()}
	}
	p, err := core.NewProber(m, sc.proberOptions())
	if err != nil {
		return Report{ID: "Fig. 5", Measured: err.Error()}
	}
	table := core.SizeTable(k.ProcModules())
	res := core.Modules(p, table)
	score := core.ScoreModules(res, k.Modules, table)

	// Count unique sizes in the DB for the §IV-C claim (19 of 125).
	uniqueSizes := 0
	for _, names := range table {
		if len(names) == 1 {
			uniqueSizes++
		}
	}

	tab := &trace.Table{Header: []string{"module", "size", "expected", "got"}}
	checks := []struct {
		name   string
		unique bool
	}{
		{"autofs4", false}, {"x_tables", false},
		{"video", true}, {"mac_hid", true}, {"pinctrl_icelake", true},
	}
	ok := score.DetectionAccuracy() >= 0.98 && score.UniqueSize == 19 && score.Total == 125
	for _, c := range checks {
		lm, _ := k.Module(c.name)
		var got string
		for _, r := range res.Regions {
			if r.Base == lm.Base {
				got = strings.Join(r.Names, "|")
				wantUnique := c.unique
				if r.Unique() != wantUnique || (wantUnique && r.Names[0] != c.name) {
					ok = false
				}
			}
		}
		exp := "ambiguous (size collision)"
		if c.unique {
			exp = "unique"
		}
		tab.AddRow(c.name, fmt.Sprintf("%#x", lm.Size), exp, got)
	}
	return Report{
		ID:         "Fig. 5",
		Title:      "Kernel-module detection and size classification (i7-1065G7)",
		PaperClaim: "125 modules, 19 uniquely sized; autofs4/x_tables indistinguishable; video/mac_hid/pinctrl_icelake identified; 99.72% accuracy",
		Measured: fmt.Sprintf("%d modules, %d uniquely sized, detection %.2f%%, %d regions found",
			score.Total, score.UniqueSize, 100*score.DetectionAccuracy(), len(res.Regions)),
		OK:   ok,
		Text: tab.Render(),
	}
}

// Sec4dKPTI reproduces §IV-D: on a KPTI kernel booted with nokaslr, the
// only user-visible kernel mapping is the trampoline at base+0xc00000;
// with KASLR on, subtracting the known offset recovers the base.
func Sec4dKPTI(sc Scale) Report {
	// Phase 1: nokaslr boot confirms the trampoline's constant offset.
	m1 := machine.New(uarch.AlderLake12400F(), sc.Seed)
	if _, err := linux.Boot(m1, linux.Config{Seed: sc.Seed + 6, KPTI: true, NoKASLR: true}); err != nil {
		return Report{ID: "§IV-D", Measured: err.Error()}
	}
	p1, err := core.NewProber(m1, sc.proberOptions())
	if err != nil {
		return Report{ID: "§IV-D", Measured: err.Error()}
	}
	r1, err := core.KPTIBreak(p1, linux.DefaultTrampolineOffset)
	if err != nil {
		return Report{ID: "§IV-D", Measured: err.Error()}
	}
	confirmOK := r1.TrampolineVA == linux.NoKASLRBase+paging.VirtAddr(linux.DefaultTrampolineOffset)

	// Phase 2: KASLR boot; recover the randomized base via the offset.
	m2 := machine.New(uarch.AlderLake12400F(), sc.Seed+100)
	k2, err := linux.Boot(m2, linux.Config{Seed: sc.Seed + 7, KPTI: true})
	if err != nil {
		return Report{ID: "§IV-D", Measured: err.Error()}
	}
	p2, err := core.NewProber(m2, sc.proberOptions())
	if err != nil {
		return Report{ID: "§IV-D", Measured: err.Error()}
	}
	r2, err := core.KPTIBreak(p2, linux.DefaultTrampolineOffset)
	if err != nil {
		return Report{ID: "§IV-D", Measured: err.Error()}
	}
	ok := confirmOK && r2.Base == k2.Base
	return Report{
		ID:         "§IV-D",
		Title:      "KASLR break with KPTI enabled (trampoline probing)",
		PaperClaim: "fast timing appears at 0xffffffff81c00000 under nokaslr (trampoline offset 0xc00000); KASLR broken via the known offset",
		Measured: fmt.Sprintf("nokaslr trampoline at %#x (%s); KASLR base %#x (%s)",
			uint64(r1.TrampolineVA), verdict(confirmOK), uint64(r2.Base), verdict(r2.Base == k2.Base)),
		OK: ok,
	}
}

func verdict(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}

func fmtSec(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.2gµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.3gms", s*1e3)
	default:
		return fmt.Sprintf("%.3gs", s)
	}
}

func shortName(s string) string {
	if i := strings.LastIndex(s, " "); i >= 0 {
		return s[i+1:]
	}
	return s
}
