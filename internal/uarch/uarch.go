// Package uarch defines the per-CPU timing presets the simulator composes
// its latency model from.
//
// Every preset is calibrated against numbers the paper reports for that
// part (Figures 2–4, Table I, and the §III-B micro-experiments); the
// comment on each constant cites its source. The *mechanism* — which
// components contribute to a probe's latency — is identical across presets
// and lives in internal/machine; presets only supply constants and two
// behavioural switches (KernelTLBFill for the Intel/AMD TLB-fill difference,
// EPTWalkMult for virtualized cloud guests).
package uarch

import (
	"fmt"

	"repro/internal/paging"
)

// Vendor is the CPU manufacturer.
type Vendor int

// CPU vendors.
const (
	Intel Vendor = iota
	AMD
)

// String returns the vendor name.
func (v Vendor) String() string {
	if v == AMD {
		return "AMD"
	}
	return "Intel"
}

// WalkCosts holds the calibrated extra cycles charged for a page-table walk
// that terminates at each level, assuming warm page-table cache lines.
//
// The ordering the paper measures (§III-B) is PD < PDPT < PML4 < PT: huge
// pages resolve fastest, and 4 KiB pages are slowest because Intel's
// paging-structure caches never hold PT entries. These constants fold the
// microcode-assist/walk interaction into per-termination-level figures, the
// same observable the attacker has.
type WalkCosts struct {
	PML4, PDPT, PD, PT float64
}

// At returns the cost for a walk terminating at level l.
func (w WalkCosts) At(l paging.Level) float64 {
	switch l {
	case paging.LevelPML4:
		return w.PML4
	case paging.LevelPDPT:
		return w.PDPT
	case paging.LevelPD:
		return w.PD
	case paging.LevelPT:
		return w.PT
	}
	return 0
}

// Preset is one CPU model's timing/behaviour parameters.
type Preset struct {
	// Name is the marketing name used in the paper's Table I.
	Name string
	// Vendor is Intel or AMD.
	Vendor Vendor
	// Setting and Launch reproduce Table I's metadata columns.
	Setting string
	Launch  string

	// TSCGHz converts simulated cycles to wall time for runtime reporting.
	TSCGHz float64

	// MaskedLoadBase is the no-assist, TLB-hit masked-load latency
	// (Fig. 2 USER-M: 13 cycles on Ice Lake).
	MaskedLoadBase float64
	// MaskedStoreBase is the same for masked stores.
	MaskedStoreBase float64
	// ScalarBase is a plain load/store latency (baseline attacks).
	ScalarBase float64

	// AssistLoad is the microcode-assist penalty for a masked load that
	// touches an invalid or inaccessible page (Fig. 2: KERNEL-M 93 =
	// 13 base + 80 assist on Ice Lake).
	AssistLoad float64
	// AssistStore is the store-side assist penalty; 16–18 cycles cheaper
	// than AssistLoad (§III-B property 6).
	AssistStore float64
	// AssistDirty is the penalty for the hardware Dirty-bit-setting assist
	// on the first store to a clean writable page. The paper's threshold
	// trick (§IV-B) relies on base+AssistDirty ≈ base+AssistLoad, i.e. the
	// dirty store on a user page times like a kernel-mapped masked load.
	AssistDirty float64

	// Walk holds per-termination-level walk costs with warm PTE lines.
	Walk WalkCosts
	// PTELineMiss is the extra cost per page-table line that misses the
	// data cache during a walk (§III-B TLB experiment: 381 vs 147 cycles
	// ⇒ ~72 cycles per cold line on Coffee Lake, three lines for a 2 MiB
	// translation).
	PTELineMiss float64
	// STLBHitExtra is the added latency when the translation comes from
	// the second-level TLB instead of the first.
	STLBHitExtra float64

	// FenceOverhead is the lfence;rdtsc;lfence measurement overhead that
	// raw timing loops include.
	FenceOverhead float64
	// LoopOverhead is the per-probe cost of address generation and loop
	// control in the probing loops, charged to runtime but not to the
	// measured delta.
	LoopOverhead float64
	// SyscallCost is the cost of one syscall (mmap/munmap during
	// calibration, and the kernel-entry used to trigger KPTI/FLARE
	// kernel activity).
	SyscallCost float64
	// FaultCost is the cost of a delivered #PF (signal round trip). The
	// attacks never pay it — fault suppression is the point — but the
	// baseline TSX-less probing would.
	FaultCost float64

	// NoiseSigma is the Gaussian jitter stddev (Fig. 2 error bars:
	// ±0.9–1.6 cycles).
	NoiseSigma float64
	// OutlierProb is the per-measurement probability of an interrupt/SMI
	// spike; OutlierScale is the Pareto scale of the spike. These tails
	// are what make the paper's accuracies 99.3–99.8 % instead of 100 %.
	OutlierProb  float64
	OutlierScale float64

	// KernelTLBFill: on Intel, a user-mode masked-op probe of a mapped
	// kernel page fills the TLB (the walk succeeds; the U/S check fails
	// later). On AMD Zen 3 it does not — the paper observes that kernel
	// probes always walk (§IV-B) — so the mapped/unmapped timing primitive
	// vanishes and the attack must use walk-termination levels instead.
	KernelTLBFill bool
	// EPTWalkMult multiplies walk costs under nested (EPT) paging; 1 on
	// bare metal, ~4 in cloud guests (a 4-level guest walk needs up to 24
	// memory accesses under EPT).
	EPTWalkMult float64
	// ExtraNoiseSigma adds neighbour noise in cloud guests.
	ExtraNoiseSigma float64
	// SGXProbeOverhead is the extra per-probe cost when executing inside
	// an SGX enclave (EPCM checks, enclave memory-access overhead) — a
	// few dozen cycles per probe. The §IV-F scan runtimes (51 s load /
	// 44 s store) are dominated by the 2^28 probe count, not by this
	// overhead.
	SGXProbeOverhead float64
}

// Validate checks internal consistency of a preset. Every constructor in
// this package returns validated presets; Validate is exported for tests
// and for users defining custom parts.
func (p *Preset) Validate() error {
	if p.TSCGHz <= 0 {
		return fmt.Errorf("uarch %s: TSCGHz must be positive", p.Name)
	}
	if p.MaskedLoadBase <= 0 || p.MaskedStoreBase <= 0 {
		return fmt.Errorf("uarch %s: base latencies must be positive", p.Name)
	}
	if p.AssistStore >= p.AssistLoad {
		return fmt.Errorf("uarch %s: property 6 violated (store assist %.0f >= load assist %.0f)",
			p.Name, p.AssistStore, p.AssistLoad)
	}
	// Paper §III-B ordering: PD < PDPT < PML4 < PT.
	if !(p.Walk.PD < p.Walk.PDPT && p.Walk.PDPT < p.Walk.PML4 && p.Walk.PML4 < p.Walk.PT) {
		return fmt.Errorf("uarch %s: walk-termination ordering must be PD<PDPT<PML4<PT", p.Name)
	}
	if p.EPTWalkMult < 1 {
		return fmt.Errorf("uarch %s: EPTWalkMult must be >= 1", p.Name)
	}
	return nil
}

// CyclesToSeconds converts a simulated cycle count to seconds.
func (p *Preset) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (p.TSCGHz * 1e9)
}

// IceLake1065G7 models the Intel Core i7-1065G7 (Ice Lake, mobile,
// Q3'19) — the part behind Figure 2, Figure 5, Figure 6 and the SGX
// experiment. Fig. 2 calibration: USER-M 13, USER-U 110, KERNEL-M 93,
// KERNEL-U 107 cycles; masked store on KERNEL-M is 76 (property 6).
func IceLake1065G7() *Preset {
	return &Preset{
		Name: "Intel Core i7-1065G7", Vendor: Intel, Setting: "Mobile", Launch: "Q3'19",
		TSCGHz:         1.5,
		MaskedLoadBase: 13, MaskedStoreBase: 13, ScalarBase: 5,
		AssistLoad: 80, AssistStore: 63, AssistDirty: 80,
		Walk:        WalkCosts{PML4: 17, PDPT: 15.5, PD: 14, PT: 22},
		PTELineMiss: 66, STLBHitExtra: 7,
		FenceOverhead: 30, LoopOverhead: 55, SyscallCost: 900, FaultCost: 4200,
		NoiseSigma: 1.1, OutlierProb: 0.0015, OutlierScale: 260,
		KernelTLBFill: true, EPTWalkMult: 1,
		SGXProbeOverhead: 62,
	}
}

// CoffeeLake9900 models the Intel Core i9-9900 (Coffee Lake, desktop),
// used for the page-table-level and TLB-state experiments (§III-B) and
// Figure 3. Calibration: permission experiment base 16; TLB hit 147
// (including the 32-cycle fence the raw loop keeps), TLB miss with cold
// page-table lines 381.
func CoffeeLake9900() *Preset {
	return &Preset{
		Name: "Intel Core i9-9900", Vendor: Intel, Setting: "Desktop", Launch: "Q2'19",
		TSCGHz:         3.1,
		MaskedLoadBase: 16, MaskedStoreBase: 16, ScalarBase: 5,
		// AssistLoad fits the §III-B TLB-hit figure (16+99+32 fence = 147);
		// AssistStore fits Figure 3's read-only store (16+66 = 82).
		AssistLoad: 99, AssistStore: 66, AssistDirty: 99,
		Walk:        WalkCosts{PML4: 23, PDPT: 20, PD: 18, PT: 30},
		PTELineMiss: 72, STLBHitExtra: 7,
		FenceOverhead: 32, LoopOverhead: 50, SyscallCost: 850, FaultCost: 4000,
		NoiseSigma: 1.3, OutlierProb: 0.0015, OutlierScale: 280,
		KernelTLBFill: true, EPTWalkMult: 1,
		SGXProbeOverhead: 58,
	}
}

// AlderLake12400F models the Intel Core i5-12400F (Alder Lake, desktop,
// Q1'22) — the Meltdown-resistant part behind Figure 4 and Table I's top
// row. Calibration: kernel-mapped 93, unmapped 107 cycles; base-address
// probing 67 µs, total 0.28 ms, 99.60 % accuracy.
func AlderLake12400F() *Preset {
	return &Preset{
		Name: "Intel Core i5-12400F", Vendor: Intel, Setting: "Desktop", Launch: "Q1'22",
		TSCGHz:         4.4,
		MaskedLoadBase: 13, MaskedStoreBase: 13, ScalarBase: 4,
		AssistLoad: 80, AssistStore: 64, AssistDirty: 80,
		Walk:        WalkCosts{PML4: 17, PDPT: 15.5, PD: 14, PT: 22},
		PTELineMiss: 60, STLBHitExtra: 6,
		FenceOverhead: 28, LoopOverhead: 45, SyscallCost: 800, FaultCost: 3600,
		NoiseSigma: 1.0, OutlierProb: 0.0012, OutlierScale: 250,
		KernelTLBFill: true, EPTWalkMult: 1,
		SGXProbeOverhead: 52,
	}
}

// Skylake6600U models the Intel Core i7-6600U (Skylake, mobile) used for
// the Windows KVAS experiment (§IV-G: 3 consecutive 4 KiB pages found in
// ~8 s).
func Skylake6600U() *Preset {
	return &Preset{
		Name: "Intel Core i7-6600U", Vendor: Intel, Setting: "Mobile", Launch: "Q3'15",
		TSCGHz:         2.6,
		MaskedLoadBase: 15, MaskedStoreBase: 15, ScalarBase: 5,
		AssistLoad: 92, AssistStore: 75, AssistDirty: 92,
		Walk:        WalkCosts{PML4: 20, PDPT: 18, PD: 16, PT: 26},
		PTELineMiss: 70, STLBHitExtra: 8,
		FenceOverhead: 31, LoopOverhead: 52, SyscallCost: 950, FaultCost: 4400,
		NoiseSigma: 1.4, OutlierProb: 0.0018, OutlierScale: 300,
		KernelTLBFill: true, EPTWalkMult: 1,
		SGXProbeOverhead: 70,
	}
}

// Zen3_5600X models the AMD Ryzen 5 5600X (Zen 3, desktop, Q2'20), Table
// I's AMD row. On this part a user-mode probe of kernel memory never fills
// the TLB, so every kernel probe pays a full walk; the attack falls back to
// the walk-termination-level primitive against the kernel's five 4 KiB text
// pages (§IV-B: 2.90 ms total, 99.48 %).
func Zen3_5600X() *Preset {
	return &Preset{
		Name: "AMD Ryzen 5 5600X", Vendor: AMD, Setting: "Desktop", Launch: "Q2'20",
		TSCGHz:         3.7,
		MaskedLoadBase: 14, MaskedStoreBase: 14, ScalarBase: 4,
		AssistLoad: 84, AssistStore: 68, AssistDirty: 84,
		Walk:        WalkCosts{PML4: 26, PDPT: 22, PD: 19, PT: 38},
		PTELineMiss: 64, STLBHitExtra: 7,
		FenceOverhead: 27, LoopOverhead: 46, SyscallCost: 820, FaultCost: 3800,
		NoiseSigma: 1.5, OutlierProb: 0.0016, OutlierScale: 270,
		KernelTLBFill: false, EPTWalkMult: 1,
		SGXProbeOverhead: 0, // no SGX on AMD
	}
}

// XeonE5_2676 models the Amazon EC2 instance CPU (Xeon E5-2676 v3,
// Haswell, Meltdown-vulnerable ⇒ KPTI on; §IV-H: kernel base 0.03 ms,
// modules 1.14 ms, trampoline at +0xe00000).
func XeonE5_2676() *Preset {
	p := &Preset{
		Name: "Intel Xeon E5-2676 v3 (EC2)", Vendor: Intel, Setting: "Cloud", Launch: "Q3'14",
		TSCGHz:         2.4,
		MaskedLoadBase: 16, MaskedStoreBase: 16, ScalarBase: 5,
		AssistLoad: 95, AssistStore: 78, AssistDirty: 95,
		Walk:        WalkCosts{PML4: 22, PDPT: 19, PD: 17, PT: 28},
		PTELineMiss: 74, STLBHitExtra: 8,
		FenceOverhead: 33, LoopOverhead: 52, SyscallCost: 1100, FaultCost: 5200,
		NoiseSigma: 1.8, OutlierProb: 0.004, OutlierScale: 350,
		KernelTLBFill: true, EPTWalkMult: 3.5, ExtraNoiseSigma: 1.6,
		SGXProbeOverhead: 0,
	}
	return p
}

// XeonCascadeLake models the Google GCE instance CPU (§IV-H: base 0.08 ms,
// modules 2.7 ms).
func XeonCascadeLake() *Preset {
	return &Preset{
		Name: "Intel Xeon Cascade Lake (GCE)", Vendor: Intel, Setting: "Cloud", Launch: "Q2'19",
		TSCGHz:         2.8,
		MaskedLoadBase: 15, MaskedStoreBase: 15, ScalarBase: 5,
		AssistLoad: 90, AssistStore: 73, AssistDirty: 90,
		Walk:        WalkCosts{PML4: 21, PDPT: 18.5, PD: 17, PT: 27},
		PTELineMiss: 70, STLBHitExtra: 7,
		FenceOverhead: 31, LoopOverhead: 50, SyscallCost: 1000, FaultCost: 4800,
		NoiseSigma: 1.6, OutlierProb: 0.003, OutlierScale: 320,
		KernelTLBFill: true, EPTWalkMult: 3.2, ExtraNoiseSigma: 1.3,
		SGXProbeOverhead: 0,
	}
}

// XeonPlatinum8171M models the Microsoft Azure instance CPU (§IV-H:
// Windows guest, 18 bits of KASLR entropy derandomized in 2.06 s).
func XeonPlatinum8171M() *Preset {
	return &Preset{
		Name: "Intel Xeon Platinum 8171M (Azure)", Vendor: Intel, Setting: "Cloud", Launch: "Q3'17",
		TSCGHz:         2.6,
		MaskedLoadBase: 16, MaskedStoreBase: 16, ScalarBase: 5,
		AssistLoad: 93, AssistStore: 76, AssistDirty: 93,
		Walk:        WalkCosts{PML4: 22, PDPT: 19, PD: 17, PT: 28},
		PTELineMiss: 72, STLBHitExtra: 8,
		FenceOverhead: 32, LoopOverhead: 51, SyscallCost: 1050, FaultCost: 5000,
		NoiseSigma: 1.9, OutlierProb: 0.0045, OutlierScale: 380,
		KernelTLBFill: true, EPTWalkMult: 3.4, ExtraNoiseSigma: 1.7,
		SGXProbeOverhead: 0,
	}
}

// All returns every built-in preset, in the order the paper introduces the
// parts.
func All() []*Preset {
	return []*Preset{
		IceLake1065G7(),
		CoffeeLake9900(),
		AlderLake12400F(),
		Skylake6600U(),
		Zen3_5600X(),
		XeonE5_2676(),
		XeonCascadeLake(),
		XeonPlatinum8171M(),
	}
}

// ByName returns the preset whose Name contains the given substring
// (case-sensitive), or nil.
func ByName(sub string) *Preset {
	for _, p := range All() {
		if contains(p.Name, sub) {
			return p
		}
	}
	return nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
