package uarch

import (
	"testing"

	"repro/internal/paging"
)

func TestAllPresetsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPresetCount(t *testing.T) {
	// The paper evaluates eight distinct parts.
	if n := len(All()); n != 8 {
		t.Fatalf("%d presets, want 8", n)
	}
}

func TestProperty6AllPresets(t *testing.T) {
	// §III-B property 6: the masked store's assist is cheaper than the
	// masked load's on every part.
	for _, p := range All() {
		if p.AssistStore >= p.AssistLoad {
			t.Errorf("%s: store assist %.0f >= load assist %.0f", p.Name, p.AssistStore, p.AssistLoad)
		}
	}
}

func TestWalkOrderingAllPresets(t *testing.T) {
	// §III-B: PD < PDPT < PML4 < PT on every part.
	for _, p := range All() {
		w := p.Walk
		if !(w.PD < w.PDPT && w.PDPT < w.PML4 && w.PML4 < w.PT) {
			t.Errorf("%s: walk ordering violated: %+v", p.Name, w)
		}
	}
}

func TestIceLakeFig2Calibration(t *testing.T) {
	p := IceLake1065G7()
	if got := p.MaskedLoadBase; got != 13 {
		t.Errorf("USER-M base %v, want 13", got)
	}
	if got := p.MaskedLoadBase + p.AssistLoad; got != 93 {
		t.Errorf("KERNEL-M %v, want 93", got)
	}
	if got := p.MaskedLoadBase + p.AssistLoad + p.Walk.PD; got != 107 {
		t.Errorf("KERNEL-U %v, want 107", got)
	}
	if got := p.MaskedLoadBase + p.AssistLoad + p.Walk.PML4; got != 110 {
		t.Errorf("USER-U %v, want 110", got)
	}
	if got := p.MaskedStoreBase + p.AssistStore; got != 76 {
		t.Errorf("KERNEL-M store %v, want 76 (P6)", got)
	}
}

func TestCoffeeLakeTLBCalibration(t *testing.T) {
	p := CoffeeLake9900()
	hit := p.MaskedLoadBase + p.AssistLoad + p.FenceOverhead
	if hit != 147 {
		t.Errorf("TLB-hit raw %v, want 147", hit)
	}
	miss := hit + p.Walk.PD + 3*p.PTELineMiss
	if miss != 381 {
		t.Errorf("TLB-miss raw %v, want 381", miss)
	}
}

func TestAMDHasNoKernelTLBFill(t *testing.T) {
	if Zen3_5600X().KernelTLBFill {
		t.Fatal("Zen 3 must not fill the TLB on kernel probes (§IV-B)")
	}
	for _, p := range All() {
		if p.Vendor == Intel && !p.KernelTLBFill {
			t.Errorf("%s: Intel part without kernel TLB fill", p.Name)
		}
	}
}

func TestCloudPresetsHaveEPT(t *testing.T) {
	for _, p := range All() {
		isCloud := p.Setting == "Cloud"
		if isCloud && p.EPTWalkMult <= 1 {
			t.Errorf("%s: cloud preset without EPT overhead", p.Name)
		}
		if !isCloud && p.EPTWalkMult != 1 {
			t.Errorf("%s: bare-metal preset with EPT overhead", p.Name)
		}
	}
}

func TestValidateRejectsBadPresets(t *testing.T) {
	p := IceLake1065G7()
	p.AssistStore = p.AssistLoad + 1
	if p.Validate() == nil {
		t.Error("inverted P6 accepted")
	}
	p = IceLake1065G7()
	p.Walk.PT = p.Walk.PD - 1
	if p.Validate() == nil {
		t.Error("inverted walk ordering accepted")
	}
	p = IceLake1065G7()
	p.TSCGHz = 0
	if p.Validate() == nil {
		t.Error("zero frequency accepted")
	}
	p = IceLake1065G7()
	p.EPTWalkMult = 0.5
	if p.Validate() == nil {
		t.Error("EPT multiplier < 1 accepted")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	p := AlderLake12400F() // 4.4 GHz
	if s := p.CyclesToSeconds(4_400_000_000); s != 1.0 {
		t.Errorf("1s worth of cycles -> %v s", s)
	}
}

func TestWalkCostsAt(t *testing.T) {
	w := WalkCosts{PML4: 4, PDPT: 3, PD: 2, PT: 5}
	if w.At(paging.LevelPML4) != 4 || w.At(paging.LevelPDPT) != 3 ||
		w.At(paging.LevelPD) != 2 || w.At(paging.LevelPT) != 5 {
		t.Fatal("At() mapping wrong")
	}
	if w.At(paging.LevelNone) != 0 {
		t.Fatal("LevelNone should cost 0")
	}
}

func TestByName(t *testing.T) {
	if p := ByName("12400F"); p == nil || p.Name != "Intel Core i5-12400F" {
		t.Fatalf("ByName failed: %v", p)
	}
	if p := ByName("no-such-cpu"); p != nil {
		t.Fatal("ByName matched garbage")
	}
}

func TestSGXSupport(t *testing.T) {
	// SGX experiments run on the Intel client parts; AMD has none.
	if Zen3_5600X().SGXProbeOverhead != 0 {
		t.Error("AMD preset claims SGX support")
	}
	if IceLake1065G7().SGXProbeOverhead <= 0 {
		t.Error("Ice Lake preset missing SGX overhead (the §IV-F part)")
	}
}
