// Package ptecache models data-cache residency of page-table lines.
//
// A page-table walk reads one 64-byte line per level. Whether that line is
// resident in the data-cache hierarchy dominates walk latency: the paper's
// §III-B TLB-state experiment measures 381 cycles for a walk with cold
// page-table lines versus 147 with warm ones. We model residency (not
// contents) with a set-associative LRU cache of physical line addresses,
// sized like a slice of L2 — enough to make repeated probing loops warm and
// explicit eviction cold, which are the two states the attacks create.
package ptecache

import "repro/internal/phys"

// LineSize is the cache-line size in bytes.
const LineSize = 64

// Cache tracks which physical lines holding PTEs are cache-resident.
type Cache struct {
	sets  [][]line
	ways  int
	mask  uint64
	clock uint64
}

// Sets returns the number of sets (used to size machine replicas).
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

type line struct {
	addr  uint64
	valid bool
	lru   uint64
}

// New creates a cache with the given number of sets (power of two) and
// ways. New(1024, 8) ≈ 512 KiB of PTE-line reach, an L2-ish slice.
func New(sets, ways int) *Cache {
	if sets&(sets-1) != 0 || sets <= 0 || ways <= 0 {
		panic("ptecache: sets must be a positive power of two")
	}
	c := &Cache{sets: make([][]line, sets), ways: ways, mask: uint64(sets - 1)}
	// One backing array for all sets: scan workers clone a full machine per
	// shard, so cache construction cost (and allocation count) matters.
	backing := make([]line, sets*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c
}

// Touch looks up the PTE line for (frame, entryIndex), fills it on miss,
// and reports whether it was already resident. Eight 8-byte entries share a
// 64-byte line, exactly as on real hardware — so probing adjacent pages
// often warms the next probe's line.
func (c *Cache) Touch(frame phys.PFN, entryIndex int) (hit bool) {
	addr := frame.PhysAddr() + uint64(entryIndex*8)&^uint64(LineSize-1)
	c.clock++
	set := c.sets[(addr/LineSize)&c.mask]
	vi := 0
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			set[i].lru = c.clock
			return true
		}
		if !set[i].valid {
			vi = i
		} else if set[vi].valid && set[i].lru < set[vi].lru {
			vi = i
		}
	}
	set[vi] = line{addr: addr, valid: true, lru: c.clock}
	return false
}

// Evict removes the line holding (frame, entryIndex) if resident (targeted
// conflict eviction by an attacker who controls the cache set).
func (c *Cache) Evict(frame phys.PFN, entryIndex int) {
	addr := frame.PhysAddr() + uint64(entryIndex*8)&^uint64(LineSize-1)
	set := c.sets[(addr/LineSize)&c.mask]
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			set[i].valid = false
		}
	}
}

// Flush empties the cache (models eviction of page-table data by a large
// attacker working set, or WBINVD in spirit).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// Snapshot is the full replayable cache state: the LRU clock plus every
// valid line pinned to its exact (set, way) slot — slot order breaks LRU
// ties on eviction, so repacking would diverge. Only valid lines are
// stored; snapshotting an empty cache is ~free.
type Snapshot struct {
	clock uint64
	lines []savedLine
}

type savedLine struct {
	set, way int
	l        line
}

// Snapshot captures the cache contents.
func (c *Cache) Snapshot() Snapshot {
	snap := Snapshot{clock: c.clock}
	for si, set := range c.sets {
		for wi := range set {
			if set[wi].valid {
				snap.lines = append(snap.lines, savedLine{set: si, way: wi, l: set[wi]})
			}
		}
	}
	return snap
}

// Restore rewinds the cache to a snapshot taken on a same-geometry cache.
func (c *Cache) Restore(snap Snapshot) {
	c.Flush()
	c.clock = snap.clock
	for _, sl := range snap.lines {
		c.sets[sl.set][sl.way] = sl.l
	}
}

// Resident returns the number of valid lines (diagnostics).
func (c *Cache) Resident() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
