package ptecache

import (
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func TestMissThenHit(t *testing.T) {
	c := New(64, 4)
	if c.Touch(10, 3) {
		t.Fatal("first touch hit")
	}
	if !c.Touch(10, 3) {
		t.Fatal("second touch missed")
	}
}

func TestSameLineSharing(t *testing.T) {
	c := New(64, 4)
	// Entries 0..7 share the first 64-byte line of the table.
	c.Touch(10, 0)
	if !c.Touch(10, 7) {
		t.Fatal("entry 7 not on the same line as entry 0")
	}
	if c.Touch(10, 8) {
		t.Fatal("entry 8 unexpectedly on the first line")
	}
}

func TestDistinctFrames(t *testing.T) {
	c := New(64, 4)
	c.Touch(10, 0)
	if c.Touch(11, 0) {
		t.Fatal("different frame hit the same line")
	}
}

func TestFlush(t *testing.T) {
	c := New(64, 4)
	c.Touch(10, 0)
	c.Touch(11, 0)
	if c.Resident() != 2 {
		t.Fatalf("resident %d", c.Resident())
	}
	c.Flush()
	if c.Resident() != 0 {
		t.Fatal("flush left lines")
	}
	if c.Touch(10, 0) {
		t.Fatal("hit after flush")
	}
}

func TestEvictTargeted(t *testing.T) {
	c := New(64, 4)
	c.Touch(10, 0)
	c.Touch(11, 0)
	c.Evict(10, 0)
	if c.Touch(10, 0) {
		t.Fatal("evicted line still resident")
	}
	if !c.Touch(11, 0) {
		t.Fatal("targeted eviction removed an unrelated line")
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New(1, 2) // one set, two ways
	c.Touch(1, 0)
	c.Touch(2, 0)
	c.Touch(3, 0) // evicts LRU (frame 1)
	if c.Touch(1, 0) {
		t.Fatal("LRU line survived over-capacity insert")
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(1, 2)
	c.Touch(1, 0)
	c.Touch(2, 0)
	c.Touch(1, 0) // touch 1 → 2 becomes LRU
	c.Touch(3, 0)
	if !c.Touch(1, 0) {
		t.Fatal("MRU line evicted")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	New(3, 2)
}

// Property: a touched line is resident until flushed.
func TestTouchProperty(t *testing.T) {
	err := quick.Check(func(frame uint16, idx uint16) bool {
		c := New(256, 8)
		f := phys.PFN(frame) + 1
		i := int(idx % 512)
		c.Touch(f, i)
		return c.Touch(f, i)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
