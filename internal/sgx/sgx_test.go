package sgx

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/uarch"
)

func TestEnterSetsEnclaveMode(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 1)
	e, err := Enter(m, RDTSC)
	if err != nil {
		t.Fatal(err)
	}
	if !m.InEnclave {
		t.Fatal("machine not in enclave mode")
	}
	e.Exit()
	if m.InEnclave {
		t.Fatal("exit did not clear enclave mode")
	}
}

func TestEnterChargesTransitionCost(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 2)
	t0 := m.RDTSC()
	e, err := Enter(m, RDTSC)
	if err != nil {
		t.Fatal(err)
	}
	if m.RDTSC() == t0 {
		t.Fatal("EENTER free")
	}
	t1 := m.RDTSC()
	e.Exit()
	if m.RDTSC() == t1 {
		t.Fatal("EEXIT free")
	}
}

func TestNoSGXOnAMD(t *testing.T) {
	m := machine.New(uarch.Zen3_5600X(), 3)
	if _, err := Enter(m, RDTSC); err == nil {
		t.Fatal("SGX enclave created on an AMD part")
	}
}

func TestTimerJitter(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 4)
	e, err := Enter(m, RDTSC)
	if err != nil {
		t.Fatal(err)
	}
	if e.TimerJitterSigma() != 0 {
		t.Fatal("SGX2 RDTSC should be jitter-free")
	}
	if e.Timer() != RDTSC {
		t.Fatal("timer source wrong")
	}
	e.Exit()
	e2, err := Enter(m, CountingThread)
	if err != nil {
		t.Fatal(err)
	}
	if e2.TimerJitterSigma() <= 0 {
		t.Fatal("counting-thread timer should add jitter (SGX1 fallback)")
	}
	e2.Exit()
}
