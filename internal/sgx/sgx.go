// Package sgx models the SGX enclave context of §IV-F: attack code running
// inside an enclave, probing the host process's address space.
//
// Two things change relative to a plain user-space attacker:
//
//   - every probe is slower (enclave memory-access and EPCM-check overhead,
//     modelled by the preset's SGXProbeOverhead) — the reason the paper's
//     in-enclave scans take tens of seconds;
//   - timing needs SGX2: SGX1 forbids RDTSC/RDTSCP inside an enclave, so
//     the attack requires an SGX2 part (or a counting-thread fallback whose
//     extra jitter this package also models).
package sgx

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/paging"
)

// TimerSource is how the enclave obtains timestamps.
type TimerSource int

// Timer sources.
const (
	// RDTSC is the SGX2 high-precision timer (the paper's configuration).
	RDTSC TimerSource = iota
	// CountingThread is the SGX1 fallback: a sibling-thread counter with
	// coarser resolution and extra jitter.
	CountingThread
)

// Enclave is an attack context inside an SGX enclave on a machine.
type Enclave struct {
	m     *machine.Machine
	timer TimerSource
	// BaseVA is the ELRANGE base (the enclave's own location).
	BaseVA paging.VirtAddr
	// SizePages is the enclave's committed size.
	SizePages int
}

// Enter creates an enclave context and switches the machine into enclave
// execution mode (per-probe overhead on).
func Enter(m *machine.Machine, timer TimerSource) (*Enclave, error) {
	if m.Preset.SGXProbeOverhead <= 0 {
		return nil, fmt.Errorf("sgx: %s does not support SGX", m.Preset.Name)
	}
	e := &Enclave{m: m, timer: timer, BaseVA: 0x7fff00000000, SizePages: 64}
	m.InEnclave = true
	// EENTER cost.
	m.AdvanceCycles(14000)
	return e, nil
}

// Exit leaves enclave mode (EEXIT).
func (e *Enclave) Exit() {
	e.m.InEnclave = false
	e.m.AdvanceCycles(12000)
}

// TimerJitterSigma returns the extra measurement jitter of the timer
// source: zero for SGX2 RDTSC, several cycles for a counting thread.
func (e *Enclave) TimerJitterSigma() float64 {
	if e.timer == CountingThread {
		return 6.0
	}
	return 0
}

// Timer returns the configured timer source.
func (e *Enclave) Timer() TimerSource { return e.timer }
