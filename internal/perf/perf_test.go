package perf

import "testing"

func TestIncReadReset(t *testing.T) {
	var c Counters
	c.Inc(AssistsAny)
	c.Inc(AssistsAny)
	c.Add(TLBMiss, 5)
	if c.Read(AssistsAny) != 2 || c.Read(TLBMiss) != 5 {
		t.Fatalf("reads %d %d", c.Read(AssistsAny), c.Read(TLBMiss))
	}
	c.Reset()
	if c.Read(AssistsAny) != 0 {
		t.Fatal("reset failed")
	}
}

func TestSnapshotDelta(t *testing.T) {
	var c Counters
	c.Inc(PageFault)
	snap := c.Snapshot()
	c.Inc(PageFault)
	c.Add(WalkCompletedLoad, 3)
	d := c.Delta(snap)
	if d[PageFault] != 1 || d[WalkCompletedLoad] != 3 {
		t.Fatalf("delta %v", d)
	}
	if _, present := d[AssistsAny]; present {
		t.Fatal("zero-delta event present in map")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var c Counters
	snap := c.Snapshot()
	c.Inc(TLBHitL1)
	if snap.Read(TLBHitL1) != 0 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestEventNames(t *testing.T) {
	if AssistsAny.String() != "ASSISTS.ANY" {
		t.Errorf("name %q", AssistsAny.String())
	}
	if WalkCompletedLoad.String() != "DTLB_LOAD_MISSES.WALK_COMPLETED" {
		t.Errorf("name %q", WalkCompletedLoad.String())
	}
	// Every declared event has a non-placeholder name.
	for e := Event(0); e < numEvents; e++ {
		if s := e.String(); len(s) == 0 || s[0] == 'E' && s[1] == 'v' {
			t.Errorf("event %d has placeholder name %q", e, s)
		}
	}
}
