// Package perf models the performance-counter file the paper reads in
// §III-B (Figure 2, right panel): microcode assists (ASSISTS.ANY) and
// completed page-table walks (DTLB_LOAD_MISSES.WALK_COMPLETED), plus a few
// counters used by tests to check the machine's internal behaviour.
package perf

import "fmt"

// Event identifies one counter.
type Event int

// Counter events.
const (
	// AssistsAny counts microcode assists of any kind (ASSISTS.ANY).
	AssistsAny Event = iota
	// WalkCompletedLoad counts completed page-table walks caused by data
	// loads (DTLB_LOAD_MISSES.WALK_COMPLETED).
	WalkCompletedLoad
	// WalkCompletedStore counts completed walks caused by stores.
	WalkCompletedStore
	// TLBHitL1 counts first-level DTLB hits.
	TLBHitL1
	// TLBHitL2 counts STLB hits.
	TLBHitL2
	// TLBMiss counts lookups that missed both TLB levels.
	TLBMiss
	// PageFault counts delivered page faults (#PF).
	PageFault
	// FaultSuppressed counts would-be faults suppressed by masked ops.
	FaultSuppressed
	// PSCHit counts paging-structure-cache hits.
	PSCHit
	// DirtyAssist counts microcode assists taken to set a Dirty bit.
	DirtyAssist
	numEvents
)

// String returns the architectural-style event name.
func (e Event) String() string {
	switch e {
	case AssistsAny:
		return "ASSISTS.ANY"
	case WalkCompletedLoad:
		return "DTLB_LOAD_MISSES.WALK_COMPLETED"
	case WalkCompletedStore:
		return "DTLB_STORE_MISSES.WALK_COMPLETED"
	case TLBHitL1:
		return "DTLB.HIT"
	case TLBHitL2:
		return "STLB.HIT"
	case TLBMiss:
		return "DTLB.MISS"
	case PageFault:
		return "FAULTS.PF"
	case FaultSuppressed:
		return "FAULTS.SUPPRESSED"
	case PSCHit:
		return "PSC.HIT"
	case DirtyAssist:
		return "ASSISTS.DIRTY"
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Counters is one bank of counters. The zero value is ready to use.
type Counters struct {
	counts [numEvents]uint64
}

// Inc increments event e by one.
func (c *Counters) Inc(e Event) { c.counts[e]++ }

// Add increments event e by n.
func (c *Counters) Add(e Event, n uint64) { c.counts[e] += n }

// Read returns the current count of event e.
func (c *Counters) Read(e Event) uint64 { return c.counts[e] }

// Reset zeroes all counters.
func (c *Counters) Reset() { c.counts = [numEvents]uint64{} }

// Snapshot returns a copy of the bank, for before/after deltas.
func (c *Counters) Snapshot() Counters { return *c }

// Merge adds another bank's counts into c (the scan engine folds worker
// replicas' counters back into the base machine).
func (c *Counters) Merge(o Counters) {
	for e := range c.counts {
		c.counts[e] += o.counts[e]
	}
}

// Delta returns the per-event difference c - old.
func (c *Counters) Delta(old Counters) map[Event]uint64 {
	d := make(map[Event]uint64)
	for e := Event(0); e < numEvents; e++ {
		if n := c.counts[e] - old.counts[e]; n != 0 {
			d[e] = n
		}
	}
	return d
}
