package baseline

import (
	"testing"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/uarch"
)

func TestPrefetchKASLRWorks(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		m := machine.New(uarch.AlderLake12400F(), seed)
		k, err := linux.Boot(m, linux.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := PrefetchKASLR(m, 16)
		if err != nil {
			t.Fatal(err)
		}
		if res.Base != k.Base {
			t.Fatalf("seed %d: found %#x, want %#x", seed, uint64(res.Base), uint64(k.Base))
		}
	}
}

func TestPrefetchNeedsMoreProbesThanAVX(t *testing.T) {
	m := machine.New(uarch.AlderLake12400F(), 9)
	if _, err := linux.Boot(m, linux.Config{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	res, err := PrefetchKASLR(m, 0) // default repetitions
	if err != nil {
		t.Fatal(err)
	}
	if res.Repetitions <= 2 {
		t.Fatalf("prefetch baseline uses %d reps — the AVX advantage story needs >2", res.Repetitions)
	}
}

func TestTSXRefusesWithoutTSX(t *testing.T) {
	m := machine.New(uarch.AlderLake12400F(), 1)
	if _, err := linux.Boot(m, linux.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if HasTSX(m) {
		t.Fatal("Alder Lake claims TSX")
	}
	if _, err := TSXKASLR(m); err == nil {
		t.Fatal("TSX attack ran without TSX")
	}
}

func TestTSXWorksOnCoffeeLake(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		m := machine.New(uarch.CoffeeLake9900(), seed)
		k, err := linux.Boot(m, linux.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !HasTSX(m) {
			t.Fatal("Coffee Lake lost TSX")
		}
		res, err := TSXKASLR(m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Base != k.Base {
			t.Fatalf("seed %d: found %#x, want %#x", seed, uint64(res.Base), uint64(k.Base))
		}
	}
}

func TestBaselinesNeverFault(t *testing.T) {
	m := machine.New(uarch.CoffeeLake9900(), 5)
	if _, err := linux.Boot(m, linux.Config{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	before := m.Counters.Snapshot()
	if _, err := PrefetchKASLR(m, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := TSXKASLR(m); err != nil {
		t.Fatal(err)
	}
	d := m.Counters.Delta(before)
	for ev, n := range d {
		if ev.String() == "FAULTS.PF" && n > 0 {
			t.Fatal("baseline delivered page faults")
		}
	}
}
