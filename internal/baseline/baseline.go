// Package baseline implements two prior KASLR breaks on the same simulated
// machine, for the practicality comparison the paper's introduction makes:
//
//   - the software-prefetch attack (Gruss et al., CCS 2016): PREFETCH
//     never faults and its latency leaks translation state, but the signal
//     is small, so the attack needs heavy repetition and noise filtering;
//   - the Intel TSX attack ("DrK", Jang et al., CCS 2016): access kernel
//     addresses inside a transaction and time the abort — fast and
//     reliable, but requires TSX hardware (fused off on most recent
//     parts).
//
// The comparison bench contrasts probes-per-decision, runtime and
// hardware prerequisites against the AVX attack.
package baseline

import (
	"fmt"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/stats"
)

// PrefetchResult is the prefetch-attack outcome.
type PrefetchResult struct {
	Base        paging.VirtAddr
	TotalCycles uint64
	// Repetitions is the per-slot sample count the attack needed.
	Repetitions int
}

// PrefetchKASLR mounts the prefetch baseline: time PREFETCH at every slot,
// many times (the prefetch signal is a few cycles against tens of cycles of
// jitter, so it min-filters over many repetitions), and pick mapped slots
// by a calibration-free relative threshold.
func PrefetchKASLR(m *machine.Machine, repetitions int) (PrefetchResult, error) {
	if repetitions <= 0 {
		repetitions = 16
	}
	start := m.RDTSC()
	res := PrefetchResult{Repetitions: repetitions}

	mins := make([]float64, linux.TextSlots)
	for slot := 0; slot < linux.TextSlots; slot++ {
		va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		// Warm-up prefetch loads the TLB for mapped slots.
		m.ExecPrefetch(va)
		best := 0.0
		for i := 0; i < repetitions; i++ {
			t := m.MeasurePrefetch(va)
			if i == 0 || t < best {
				best = t
			}
		}
		mins[slot] = best
	}
	res.TotalCycles = m.RDTSC() - start

	// Relative threshold: midway between the global min (TLB-hit class)
	// and median (walk class).
	s := &stats.Sample{}
	for _, v := range mins {
		s.Add(v)
	}
	thr := (s.Min() + s.Median()) / 2
	for slot, v := range mins {
		if v <= thr {
			res.Base = linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
			break
		}
	}
	if res.Base == 0 {
		return res, fmt.Errorf("baseline: prefetch attack found no mapped slot")
	}
	return res, nil
}

// TSXResult is the DrK-attack outcome.
type TSXResult struct {
	Base        paging.VirtAddr
	TotalCycles uint64
	// Supported is false when the part has no TSX (the attack cannot run;
	// the paper's motivation for an AVX-only channel).
	Supported bool
}

// tsxParts lists preset-name substrings with usable TSX. Alder Lake and
// Zen parts have none; Ice Lake client parts shipped with TSX disabled.
var tsxParts = []string{"i9-9900", "i7-6600U", "Xeon"}

// HasTSX reports whether the machine's CPU model exposes TSX.
func HasTSX(m *machine.Machine) bool {
	for _, s := range tsxParts {
		if containsStr(m.Preset.Name, s) {
			return true
		}
	}
	return false
}

// TSXKASLR mounts the DrK baseline: probe each slot once inside a
// transaction and split abort times by a relative threshold.
func TSXKASLR(m *machine.Machine) (TSXResult, error) {
	res := TSXResult{Supported: HasTSX(m)}
	if !res.Supported {
		return res, fmt.Errorf("baseline: %s has no TSX", m.Preset.Name)
	}
	start := m.RDTSC()
	times := make([]float64, linux.TextSlots)
	for slot := 0; slot < linux.TextSlots; slot++ {
		va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		m.ExecTSXProbe(va) // warm-up fills TLB for mapped slots
		times[slot] = m.ExecTSXProbe(va)
	}
	res.TotalCycles = m.RDTSC() - start

	s := &stats.Sample{}
	for _, v := range times {
		s.Add(v)
	}
	thr := (s.Min() + s.Median()) / 2
	for slot, v := range times {
		if v <= thr {
			res.Base = linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
			break
		}
	}
	if res.Base == 0 {
		return res, fmt.Errorf("baseline: TSX attack found no mapped slot")
	}
	return res, nil
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
