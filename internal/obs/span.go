package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Attr is one deterministic span annotation. Attrs are part of a trace's
// canonical form, so everything recorded in them must be a pure function
// of the job's spec, seed and fault schedule — never of wall-clock or
// goroutine interleaving (host-side observations belong in the wall
// fields, which Canonical strips).
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A is a shorthand Attr constructor.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one named lifecycle stage of a traced job. StartNs/EndNs are
// host wall-clock nanoseconds relative to the trace start (diagnostics
// only); SimSec is the deterministic simulated attacker time the stage
// consumed, where the stage has one. Spans form a tree via Children.
//
// All methods are nil-safe no-ops: a disabled trace hands out nil spans,
// and the instrumented path pays one nil test per call.
type Span struct {
	Name     string  `json:"name"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	StartNs  int64   `json:"start_ns"`
	EndNs    int64   `json:"end_ns"`
	SimSec   float64 `json:"sim_sec,omitempty"`
	Children []*Span `json:"children,omitempty"`

	tr *Trace
}

// Child opens a sub-span under s, stamped with the trace-relative wall
// clock. Returns nil (still safe to use) on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	c := &Span{Name: name, StartNs: t.sinceNs(), tr: t}
	s.Children = append(s.Children, c)
	t.mu.Unlock()
	return c
}

// Annotate appends one deterministic key=value annotation.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetSim records the stage's deterministic simulated-time cost in seconds.
func (s *Span) SetSim(sec float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.SimSec = sec
	s.tr.mu.Unlock()
}

// End stamps the span's wall-clock end. Idempotent (the first End wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.EndNs == 0 {
		s.EndNs = s.tr.sinceNs()
	}
	s.tr.mu.Unlock()
}

// Trace is one job's span tree. A nil *Trace is the disabled state: Root
// returns a nil span and every downstream call is a nil test.
type Trace struct {
	JobID uint64

	mu    sync.Mutex
	start time.Time
	root  *Span
}

// sinceNs returns wall nanoseconds since the trace started (call with
// t.mu held; monotonic via time.Since).
func (t *Trace) sinceNs() int64 { return int64(time.Since(t.start)) }

// Root returns the trace's root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// snapshotLocked deep-copies a span subtree (call with t.mu held).
func snapshotLocked(s *Span) *Span {
	c := &Span{
		Name:    s.Name,
		StartNs: s.StartNs,
		EndNs:   s.EndNs,
		SimSec:  s.SimSec,
	}
	if len(s.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), s.Attrs...)
	}
	for _, ch := range s.Children {
		c.Children = append(c.Children, snapshotLocked(ch))
	}
	return c
}

// Snapshot returns a deep copy of the span tree, safe to marshal while
// the job keeps running. Nil on a nil trace.
func (t *Trace) Snapshot() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshotLocked(t.root)
}

// Canonical returns the deterministic form of the span tree: a deep copy
// with every wall-clock field zeroed, leaving only data that is a pure
// function of the job's spec, seed and fault schedule (span names,
// nesting, attrs, sim-time). Under serialized execution, identical seeds
// must produce byte-identical CanonicalJSON — the chaos suite's span-tree
// determinism oracle.
func (t *Trace) Canonical() *Span {
	s := t.Snapshot()
	stripWall(s)
	return s
}

func stripWall(s *Span) {
	if s == nil {
		return
	}
	s.StartNs, s.EndNs = 0, 0
	for _, c := range s.Children {
		stripWall(c)
	}
}

// CanonicalJSON serializes the canonical span tree.
func (t *Trace) CanonicalJSON() ([]byte, error) {
	if t == nil {
		return nil, nil
	}
	return json.Marshal(t.Canonical())
}

// DefaultTraceBuffer is the trace ring's default capacity.
const DefaultTraceBuffer = 256

// Recorder samples per-job traces into a bounded ring. Construction with
// a non-positive sample rate returns nil — the disabled recorder, whose
// Start hands out nil traces; the whole instrumented path then costs one
// nil check per stage.
type Recorder struct {
	sample uint64
	cap    int

	mu      sync.Mutex
	traces  map[uint64]*Trace
	order   []uint64 // FIFO of recorded job IDs — the eviction order
	started uint64
}

// NewRecorder builds a recorder tracing jobs whose ID is a multiple of
// sample (1 = every job), retaining at most capacity traces (0 =
// DefaultTraceBuffer). sample <= 0 returns the nil disabled recorder.
// Sampling on the job ID, not a random draw, keeps the traced set a pure
// function of the submission sequence.
func NewRecorder(sample, capacity int) *Recorder {
	if sample <= 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultTraceBuffer
	}
	return &Recorder{
		sample: uint64(sample),
		cap:    capacity,
		traces: make(map[uint64]*Trace),
	}
}

// Start begins a trace for job id if it falls in the sample, evicting the
// oldest retained trace when the ring is full. Returns nil (disabled) for
// unsampled jobs and on a nil recorder.
func (r *Recorder) Start(id uint64, attrs ...Attr) *Trace {
	if r == nil || id%r.sample != 0 {
		return nil
	}
	t := &Trace{JobID: id, start: time.Now()}
	t.root = &Span{Name: "job", Attrs: attrs, tr: t}
	r.mu.Lock()
	if len(r.order) >= r.cap {
		delete(r.traces, r.order[0])
		r.order = r.order[1:]
	}
	r.traces[id] = t
	r.order = append(r.order, id)
	r.started++
	r.mu.Unlock()
	return t
}

// Get returns the retained trace for job id.
func (r *Recorder) Get(id uint64) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.traces[id]
	return t, ok
}

// Started returns how many traces the recorder has begun (including ones
// since evicted).
func (r *Recorder) Started() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.started
}

// Len returns the number of currently retained traces.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}
