package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: log-linear with subCount sub-buckets per power
// of two. Values below subCount land in exact unit buckets; a value x >=
// subCount lands in bucket e*subCount + (x>>e) where e positions the top
// subBits+1 bits of x — two shifts and an add, no float math on the record
// path. numBuckets covers values up to 2^42 (≈ 73 minutes in nanoseconds);
// anything larger clamps into the top bucket.
const (
	subBits    = 3
	subCount   = 1 << subBits
	numBuckets = (42 - subBits) * subCount // 312
)

// Histogram is a fixed-bucket log-scale histogram of non-negative integer
// samples (by convention nanoseconds). Observation is one atomic add;
// quantiles and merges walk the fixed bucket array. The zero value is
// ready to use, and a Histogram is mergeable across recorders (AddFrom).
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// bucketIndex maps a sample to its bucket.
func bucketIndex(x uint64) int {
	if x < subCount {
		return int(x)
	}
	e := bits.Len64(x) - subBits - 1
	idx := e*subCount + int(x>>uint(e))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the exclusive upper bound of bucket i — the
// conservative representative value quantiles report.
func bucketUpper(i int) uint64 {
	if i < subCount {
		return uint64(i) + 1
	}
	e := i/subCount - 1
	m := uint64(i%subCount + subCount)
	return (m + 1) << uint(e)
}

// Observe records one sample.
func (h *Histogram) Observe(x uint64) {
	h.counts[bucketIndex(x)].Add(1)
	h.sum.Add(x)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Quantile returns the nearest-rank q-quantile (q in [0, 1]) as the upper
// bound of the bucket holding that rank — within one bucket width (~12.5%)
// of the exact order statistic, in O(buckets) regardless of sample count.
// Zero samples yield zero.
func (h *Histogram) Quantile(q float64) uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Same nearest-rank convention the pre-histogram sort used:
	// index q*(n-1) of the sorted sample.
	rank := uint64(q * float64(total-1))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// AddFrom merges src's samples into h (both may keep recording; the merge
// is per-bucket atomic, so concurrent observations are never lost, though
// a merge concurrent with writes sees a bucket-consistent, not
// point-in-time, snapshot).
func (h *Histogram) AddFrom(src *Histogram) {
	for i := range h.counts {
		if n := src.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.sum.Add(src.sum.Load())
}

// Labels is an ordered label set attached to one metric series.
type Labels []Label

// Label is one key=value pair.
type Label struct{ Key, Value string }

// L builds one label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// String renders the {k="v",...} suffix ("" for no labels).
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	s := "{"
	for i, l := range ls {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return s + "}"
}

// series is one registered metric instance.
type series struct {
	labels Labels
	c      *Counter
	cf     func() float64
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups series sharing one metric name.
type family struct {
	name, help, kind string
	series           []*series
}

// Registry holds registered metrics and renders them in Prometheus text
// exposition format. Registration happens at construction time (it takes
// a lock); the record path goes through the returned Counter/Gauge/
// Histogram pointers directly and never touches the registry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help, kind string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: labels, c: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the view-over-existing-state form, so subsystems that
// already count (store aggregates, the fault injector's fired counters)
// are exported without double bookkeeping. fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "counter", &series{labels: labels, cf: fn})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: labels, g: g})
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "gauge", &series{labels: labels, gf: fn})
}

// Histogram registers and returns a histogram series (nanosecond samples,
// exposed in seconds per Prometheus convention).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.add(name, help, "histogram", &series{labels: labels, h: h})
	return h
}

// RegisterHistogram exports an externally owned histogram (one the caller
// also queries directly, e.g. the store's latency histogram) under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.add(name, help, "histogram", &series{labels: labels, h: h})
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (families in registration order, HELP/TYPE once per
// family, histogram buckets cumulative with `le` in seconds, only
// non-empty buckets emitted plus +Inf).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, s *series) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.c.Load())
		return err
	case s.cf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.cf()))
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.g.Load())
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.gf()))
		return err
	case s.h != nil:
		return writeHistogram(w, name, s.labels, s.h)
	}
	return nil
}

// writeHistogram emits the cumulative bucket series. Bucket values are
// recorded in nanoseconds; `le` bounds are exported in seconds.
func writeHistogram(w io.Writer, name string, labels Labels, h *Histogram) error {
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		le := float64(bucketUpper(i)) / 1e9
		ls := append(append(Labels{}, labels...), L("le", formatFloat(le)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, ls, cum); err != nil {
			return err
		}
	}
	inf := append(append(Labels{}, labels...), L("le", "+Inf"))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, inf, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(h.Sum())/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
	return err
}

// formatFloat renders a float without scientific noise for round values.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// SortLabels orders a label set by key (helper for callers that build
// label sets from maps and need deterministic series identity).
func SortLabels(ls Labels) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
}
