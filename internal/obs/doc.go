// Package obs is the observability plane of the scan service: allocation-
// free metric primitives (atomic counters, gauges and fixed-bucket
// log-scale latency histograms, all mergeable and scrape-cheap) plus a
// deterministic per-job span recorder that captures the full job lifecycle
// as a tree of named spans.
//
// Two design rules govern everything here:
//
//   - The record path never allocates and never takes a lock that an
//     executor could contend on. Counters and gauges are single atomics;
//     a histogram observation is one atomic add into a bucket computed
//     with bit arithmetic (O(1), no float math); quantiles and Prometheus
//     scrapes walk the fixed bucket array — O(buckets), independent of how
//     many samples were recorded, so /stats and /metrics polling costs the
//     same at job 100 and job 100 million.
//
//   - Disabled instrumentation is a nil pointer. A nil *Recorder hands out
//     nil *Trace values, whose spans are nil *Span values, and every
//     method on all three is a no-op on a nil receiver — the scheduler's
//     hot path pays exactly one nil test per lifecycle stage, the same
//     idiom internal/fault uses for its disabled injector. A guard test
//     pins the disabled path at zero allocations.
//
// Spans double as determinism oracles. A span tree records the lifecycle
// both in host wall-clock (diagnostics: where did this job's 40 ms go?)
// and in deterministic simulated attacker time where a stage has one
// (Result.TotalSimSec on the execute span). The wall-clock fields are the
// only nondeterministic data in a trace, so Canonical — a deep copy with
// the wall fields zeroed — is a pure function of the job's seed, spec and
// fault schedule under serialized execution: identical seeds must yield
// byte-identical canonical serializations, which turns the chaos suite's
// retry/quarantine assertions into whole-tree equality checks.
//
// Histograms use a log-linear bucket layout (8 sub-buckets per power of
// two, ~12.5% relative resolution) over nanosecond values, clamped at the
// top bucket; this is the layout HDR-style histograms use, chosen here so
// that the bucket index is two shifts and an add away from the raw value.
package obs
