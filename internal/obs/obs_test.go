package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestBucketIndexMonotonicContinuous(t *testing.T) {
	// Every bucket's samples must map inside it, indices must be
	// non-decreasing in the sample, and bucketUpper must be strictly
	// increasing so quantiles are well ordered.
	prev := -1
	for x := uint64(0); x < 1<<20; x++ {
		i := bucketIndex(x)
		if i < prev {
			t.Fatalf("bucketIndex not monotonic: x=%d idx=%d prev=%d", x, i, prev)
		}
		if x >= bucketUpper(i) {
			t.Fatalf("x=%d >= upper bound %d of its own bucket %d", x, bucketUpper(i), i)
		}
		if i > 0 && x < bucketUpper(i-1) {
			t.Fatalf("x=%d below upper bound %d of previous bucket %d", x, bucketUpper(i-1), i-1)
		}
		prev = i
	}
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not strictly increasing at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
	// Huge values clamp into the top bucket instead of going out of range.
	if got := bucketIndex(1 << 63); got != numBuckets-1 {
		t.Fatalf("2^63 should clamp to top bucket, got %d", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mix of scales: microseconds to seconds, in ns.
		x := uint64(rng.Intn(1000)+1) * uint64([]int{1e3, 1e4, 1e6}[rng.Intn(3)])
		samples = append(samples, x)
		h.Observe(x)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		// The bucketed quantile reports the exclusive upper bound of the
		// bucket holding the rank: exact < got <= exact*(1+2^-subBits)+1.
		if got <= exact || float64(got) > float64(exact)*(1+1.0/subCount)+1 {
			t.Fatalf("q=%v: got %d, exact %d (outside one bucket width)", q, got, exact)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count = %d, want 20000", h.Count())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
}

func TestHistogramAddFrom(t *testing.T) {
	var a, b, merged Histogram
	for i := uint64(1); i <= 1000; i++ {
		a.Observe(i * 1000)
		b.Observe(i * 7000)
	}
	merged.AddFrom(&a)
	merged.AddFrom(&b)
	if merged.Count() != a.Count()+b.Count() {
		t.Fatalf("merged count %d != %d + %d", merged.Count(), a.Count(), b.Count())
	}
	if merged.Sum() != a.Sum()+b.Sum() {
		t.Fatalf("merged sum %d != %d + %d", merged.Sum(), a.Sum(), b.Sum())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Intn(1 << 30)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scand_test_total", "test counter", L("kind", "spy"))
	c.Add(3)
	g := r.Gauge("scand_test_depth", "test gauge")
	g.Set(7)
	r.CounterFunc("scand_test_view", "view counter", func() float64 { return 42 })
	h := r.Histogram("scand_test_latency_seconds", "test histogram")
	h.Observe(1500) // 1.5 µs
	h.Observe(2_000_000_000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP scand_test_total test counter",
		"# TYPE scand_test_total counter",
		`scand_test_total{kind="spy"} 3`,
		"# TYPE scand_test_depth gauge",
		"scand_test_depth 7",
		"scand_test_view 42",
		"# TYPE scand_test_latency_seconds histogram",
		`scand_test_latency_seconds_bucket{le="+Inf"} 2`,
		"scand_test_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals _count, and each
	// emitted bucket line's value is non-decreasing.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "scand_test_latency_seconds_bucket") {
			continue
		}
		var v uint64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
}

func fmtSscan(line string, v *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseUint(line[i+1:])
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNonDigit
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

var errNonDigit = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "non-digit in count" }

func TestSpanTreeAndCanonical(t *testing.T) {
	r := NewRecorder(1, 8)
	tr := r.Start(4, A("kind", "spy"), A("seed", "99"))
	if tr == nil {
		t.Fatal("sampled trace is nil")
	}
	root := tr.Root()
	q := root.Child("queue")
	q.End()
	att := root.Child("attempt")
	att.Annotate("attempt", "1")
	acq := att.Child("acquire")
	acq.Annotate("session", "built")
	acq.End()
	ex := att.Child("execute")
	ex.SetSim(12.5)
	ex.End()
	att.End()
	root.End()

	snap := tr.Snapshot()
	if snap.Name != "job" || len(snap.Children) != 2 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	if snap.Children[1].Children[1].SimSec != 12.5 {
		t.Fatalf("sim sec not recorded: %+v", snap.Children[1].Children[1])
	}
	if snap.Children[0].EndNs < snap.Children[0].StartNs {
		t.Fatal("span end before start")
	}

	// Canonical strips every wall field but keeps structure, attrs, sim.
	can, err := tr.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Span
	if err := json.Unmarshal(can, &decoded); err != nil {
		t.Fatal(err)
	}
	var checkWall func(s *Span)
	checkWall = func(s *Span) {
		if s.StartNs != 0 || s.EndNs != 0 {
			t.Fatalf("canonical span %q has wall fields: %+v", s.Name, s)
		}
		for _, c := range s.Children {
			checkWall(c)
		}
	}
	checkWall(&decoded)
	if decoded.Children[1].Children[1].SimSec != 12.5 {
		t.Fatal("canonical form lost sim time")
	}
	// Canonical is stable: serializing twice yields identical bytes.
	can2, _ := tr.CanonicalJSON()
	if !bytes.Equal(can, can2) {
		t.Fatal("canonical serialization not stable")
	}
}

func TestRecorderSamplingAndEviction(t *testing.T) {
	r := NewRecorder(3, 4)
	for id := uint64(1); id <= 30; id++ {
		tr := r.Start(id)
		if id%3 == 0 && tr == nil {
			t.Fatalf("job %d should be sampled", id)
		}
		if id%3 != 0 && tr != nil {
			t.Fatalf("job %d should not be sampled", id)
		}
	}
	if r.Started() != 10 {
		t.Fatalf("started = %d, want 10", r.Started())
	}
	if r.Len() != 4 {
		t.Fatalf("retained = %d, want cap 4", r.Len())
	}
	// FIFO: only the newest 4 sampled IDs (21, 24, 27, 30) survive.
	for _, id := range []uint64{21, 24, 27, 30} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("job %d evicted too early", id)
		}
	}
	if _, ok := r.Get(18); ok {
		t.Fatal("job 18 should have been evicted")
	}
}

func TestNilDisabledState(t *testing.T) {
	if r := NewRecorder(0, 16); r != nil {
		t.Fatal("sample=0 must return the nil disabled recorder")
	}
	var r *Recorder
	tr := r.Start(1, A("kind", "spy"))
	if tr != nil {
		t.Fatal("nil recorder must hand out nil traces")
	}
	// Every call below must be a safe no-op on nils.
	root := tr.Root()
	c := root.Child("queue")
	c.Annotate("k", "v")
	c.SetSim(1)
	c.End()
	root.End()
	if s := tr.Snapshot(); s != nil {
		t.Fatal("nil trace snapshot must be nil")
	}
	if b, err := tr.CanonicalJSON(); err != nil || b != nil {
		t.Fatal("nil trace canonical JSON must be nil, nil")
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("nil recorder Get must miss")
	}
	if r.Started() != 0 || r.Len() != 0 {
		t.Fatal("nil recorder counters must be zero")
	}
}

// TestDisabledPathZeroAlloc pins the disabled-instrumentation hot path at
// zero allocations: with a nil recorder, a full per-job span choreography
// must not allocate.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Recorder
	var h Histogram
	var c Counter
	allocs := testing.AllocsPerRun(1000, func() {
		tr := r.Start(7)
		root := tr.Root()
		q := root.Child("queue")
		q.End()
		a := root.Child("attempt")
		a.Annotate("attempt", "1")
		a.SetSim(3)
		a.End()
		root.End()
		h.Observe(1234567)
		c.Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %v times per run, want 0", allocs)
	}
}
