package core

import (
	"testing"

	"repro/internal/behavior"
	"repro/internal/linux"
	"repro/internal/uarch"
)

// TestKeystrokeInference exercises the §IV-E extension the paper predicts
// ("likely be extended … to monitor other events (e.g., keystroke)"): the
// usbhid module's TLB state tracks typing bursts.
func TestKeystrokeInference(t *testing.T) {
	p, k := bootedProber(t, uarch.IceLake1065G7(), 820, linux.Config{})
	lm, ok := k.Module("usbhid")
	if !ok {
		t.Fatal("usbhid not loaded")
	}
	targets := []linux.LoadedModule{lm}
	typing := behavior.FixedTimeline(behavior.Keystrokes(),
		behavior.Interval{Start: 5, End: 20}, behavior.Interval{Start: 40, End: 55})
	drv, err := behavior.NewDriver(k, typing)
	if err != nil {
		t.Fatal(err)
	}
	spy := &BehaviorSpy{P: p, Targets: targets, PagesPerModule: 4}
	traces, err := spy.Run(drv, 60)
	if err != nil {
		t.Fatal(err)
	}
	if acc := traces[0].Accuracy(typing); acc < 0.93 {
		t.Fatalf("keystroke inference accuracy %.2f", acc)
	}
}

// TestAppFingerprinting exercises the §IV-E application-fingerprinting
// extension: classify which app is in the foreground from the set of
// driver modules showing TLB activity.
func TestAppFingerprinting(t *testing.T) {
	profiles := StandardAppProfiles()
	for _, truth := range profiles {
		p, k := bootedProber(t, uarch.IceLake1065G7(), 830, linux.Config{})

		// Locate every module any profile watches (unique sizes: direct
		// classification from the module attack would work; ground-truth
		// location via Module() keeps this test focused on the spying).
		watch := make(map[string]linux.LoadedModule)
		for _, prof := range profiles {
			for _, mn := range prof.Modules {
				name := appModule(mn)
				lm, ok := k.Module(name)
				if !ok {
					t.Fatalf("module %q not loaded", name)
				}
				watch[name] = lm
			}
		}

		drv, err := behavior.NewDriver(k, TimelinesFor(truth, 60)...)
		if err != nil {
			t.Fatal(err)
		}
		f := &AppFingerprinter{P: p, Watch: watch, Profiles: profiles, Ticks: 8}
		got, err := f.Classify(drv)
		if err != nil {
			t.Fatalf("classifying %q: %v", truth.Name, err)
		}
		if got.Name != truth.Name {
			t.Fatalf("classified %q as %q", truth.Name, got.Name)
		}
	}
}

// TestAppProfilesDistinct guards the demo population: profiles must have
// distinct module sets or classification is ill-posed.
func TestAppProfilesDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, prof := range StandardAppProfiles() {
		key := ""
		for _, mn := range prof.Signature() {
			key += appModule(mn) + "|"
		}
		if other, dup := seen[key]; dup {
			t.Fatalf("%s and %s share a module set", prof.Name, other)
		}
		seen[key] = prof.Name
	}
}
