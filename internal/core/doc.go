// Package core implements the paper's contribution: the AVX timing
// side-channel attack framework against User and Kernel ASLR.
//
// The framework is built from three attack primitives (§III-C), all of
// which rely on masked-operation fault suppression (P1):
//
//   - the page-table attack (Prober.ProbeMapped / Prober.ProbeTermLevel)
//     distinguishes mapped from unmapped pages (P2) or leaks the
//     page-table level where the walk terminates (P3);
//   - the TLB attack (Prober.ProbeTLB) distinguishes TLB hits from misses
//     for kernel translations (P4);
//   - the permission attack (Prober.ProbePerm) classifies page
//     permissions with paired masked-load/masked-store probes (P5).
//
// On top of the primitives, the package provides the end-to-end attacks the
// paper evaluates: KernelBase (§IV-B), Modules (§IV-C), KPTIBreak (§IV-D),
// BehaviorSpy (§IV-E), UserScan/LibraryFingerprint incl. SGX (§IV-F),
// WindowsKernel/KVASBreak (§IV-G) and the cloud scenarios (§IV-H), plus the
// n-trial evaluation harness behind Table I.
//
// Everything here uses only the attacker-visible machine surface: timed
// masked operations, mmap/munmap of the attacker's own pages, TLB eviction
// buffers, and syscalls.
package core
