package core

import (
	"testing"

	"repro/internal/paging"
)

// FuzzMergeRegions drives the §IV-F region-merge loop with arbitrary
// per-page permission-class sequences and checks the invariants every
// consumer (signature matching, Figure 7 rendering) relies on:
//
//   - regions are class-homogeneous and never classified unmapped,
//   - regions are non-empty, sorted and non-overlapping,
//   - regions are maximal: adjacent regions either differ in class or are
//     separated by at least one unmapped page,
//   - coverage is exact: every mapped page lies in exactly one region of
//     its own class, every unmapped page in none.
func FuzzMergeRegions(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 2, 2, 0, 1})
	f.Add([]byte{2, 0, 2, 0, 2})
	f.Add([]byte{1, 2, 1, 2, 1, 2})
	f.Add([]byte{0, 0, 1, 1, 1, 0, 2, 2, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip()
		}
		const start = paging.VirtAddr(0x555500000000)
		classes := make([]PermClass, len(data))
		for i, b := range data {
			classes[i] = PermClass(b % 3) // PermUnmapped / PermReadable / PermWritable
		}

		regions := mergeRegions(start, classes)

		covered := make([]int, len(classes))
		var prev *UserRegion
		for k := range regions {
			r := regions[k]
			if r.Class == PermUnmapped {
				t.Fatalf("region %d classified unmapped: %+v", k, r)
			}
			if r.End <= r.Start {
				t.Fatalf("region %d empty or inverted: %+v", k, r)
			}
			if (uint64(r.Start)|uint64(r.End))&(paging.Page4K-1) != 0 {
				t.Fatalf("region %d not page-aligned: %+v", k, r)
			}
			if prev != nil {
				if r.Start < prev.End {
					t.Fatalf("regions %d/%d overlap or are unsorted: %+v then %+v", k-1, k, *prev, r)
				}
				if r.Start == prev.End && r.Class == prev.Class {
					t.Fatalf("regions %d/%d not maximal: same class %v, directly adjacent", k-1, k, r.Class)
				}
			}
			lo := int(uint64(r.Start-start) >> 12)
			hi := int(uint64(r.End-start) >> 12)
			if lo < 0 || hi > len(classes) {
				t.Fatalf("region %d outside the scanned range: %+v", k, r)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
				if classes[i] != r.Class {
					t.Fatalf("region %d not homogeneous: page %d is %v, region %v", k, i, classes[i], r.Class)
				}
			}
			prev = &regions[k]
		}
		for i, c := range classes {
			want := 1
			if c == PermUnmapped {
				want = 0
			}
			if covered[i] != want {
				t.Fatalf("page %d (%v) covered %d times, want %d", i, c, covered[i], want)
			}
		}
	})
}
