package core

import (
	"reflect"
	"testing"

	"repro/internal/linux"
	"repro/internal/paging"
)

// ProbeBatch must be bit-identical to the equivalent ProbeMapped loop:
// same machine state, same noise draws, same decision values and verdicts,
// same simulated clock afterwards. Two victims booted from the same seed
// give two probers in identical post-calibration state; one probes per VA,
// the other in one batch.
func TestProbeBatchMatchesProbeMapped(t *testing.T) {
	const seed = 77
	const pages = 512
	for _, opt := range []Options{
		{},
		{ProbeSamples: 3, Estimator: EstTrimmedMean},
		{ExtraJitterSigma: 2.5},
	} {
		loop, _ := engineProberOpt(t, seed, opt)
		batch, _ := engineProberOpt(t, seed, opt)

		wantC := make([]float64, pages)
		wantF := make([]bool, pages)
		for i := 0; i < pages; i++ {
			pr := loop.ProbeMapped(linux.ModuleRegionBase + paging.VirtAddr(uint64(i)<<12))
			wantC[i], wantF[i] = pr.Cycles, pr.Fast
		}
		gotC := make([]float64, pages)
		gotF := make([]bool, pages)
		batch.ProbeBatch(linux.ModuleRegionBase, pages, paging.Page4K, gotC, gotF)

		if !reflect.DeepEqual(wantC, gotC) || !reflect.DeepEqual(wantF, gotF) {
			t.Fatalf("opt %+v: batched probe output differs from ProbeMapped loop", opt)
		}
		if loop.M.RDTSC() != batch.M.RDTSC() {
			t.Fatalf("opt %+v: batched clock %d differs from loop clock %d", opt, batch.M.RDTSC(), loop.M.RDTSC())
		}
		if loop.Faults() != batch.Faults() {
			t.Fatalf("opt %+v: fault counts differ", opt)
		}
	}
}

// The store variant must match a ProbeMappedStore loop the same way.
func TestProbeBatchStoreMatchesProbeMappedStore(t *testing.T) {
	const seed = 78
	const pages = 512
	loop, _ := engineProber(t, seed, 0)
	batch, _ := engineProber(t, seed, 0)

	wantC := make([]float64, pages)
	wantF := make([]bool, pages)
	for i := 0; i < pages; i++ {
		pr := loop.ProbeMappedStore(linux.ModuleRegionBase + paging.VirtAddr(uint64(i)<<12))
		wantC[i], wantF[i] = pr.Cycles, pr.Fast
	}
	gotC := make([]float64, pages)
	gotF := make([]bool, pages)
	batch.ProbeBatchStore(linux.ModuleRegionBase, pages, paging.Page4K, gotC, gotF)

	if !reflect.DeepEqual(wantC, gotC) || !reflect.DeepEqual(wantF, gotF) {
		t.Fatal("batched store probe output differs from ProbeMappedStore loop")
	}
	if loop.M.RDTSC() != batch.M.RDTSC() {
		t.Fatal("batched store clock diverged from the loop")
	}
}

// Steady-state batched probing must not allocate: the op, position,
// measurement and reduction buffers are prober-owned and reused.
func TestProbeBatchZeroAllocSteadyState(t *testing.T) {
	p, _ := engineProber(t, 79, 0)
	const pages = 256
	cycles := make([]float64, pages)
	fast := make([]bool, pages)
	p.ProbeBatch(linux.ModuleRegionBase, pages, paging.Page4K, cycles, fast) // warm scratch
	if n := testing.AllocsPerRun(20, func() {
		p.ProbeBatch(linux.ModuleRegionBase, pages, paging.Page4K, cycles, fast)
	}); n > 0 {
		t.Errorf("ProbeBatch allocates %.1f/op at steady state, want 0", n)
	}
	p.ProbeBatchStore(linux.ModuleRegionBase, pages, paging.Page4K, cycles, fast)
	if n := testing.AllocsPerRun(20, func() {
		p.ProbeBatchStore(linux.ModuleRegionBase, pages, paging.Page4K, cycles, fast)
	}); n > 0 {
		t.Errorf("ProbeBatchStore allocates %.1f/op at steady state, want 0", n)
	}
}

// Pooled re-scan allocations must not scale with the worker count beyond
// the engine's small per-shard constants (worker struct, goroutine,
// pool-get bookkeeping): the probers, their batch scratch and the replica
// list are all pooled or parent-owned. A per-worker budget of a few small
// allocations is the whole remaining growth.
func TestPooledScanAllocsFlatAcrossWorkers(t *testing.T) {
	const pages = 2048
	measure := func(workers int) float64 {
		p, _ := engineProberOpt(t, 151, Options{Workers: workers, Pool: NewScanPool()})
		p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K) // fill pool, warm scratch
		return testing.AllocsPerRun(10, func() {
			p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
		})
	}
	base := measure(1)
	wide := measure(8)
	t.Logf("allocs/scan: workers=1 %.0f, workers=8 %.0f", base, wide)
	if growth := wide - base; growth > 8*6 {
		t.Errorf("pooled scan allocations grew by %.0f from 1 to 8 workers (>6 per worker)", growth)
	}
}

// The fused user scan must recover exactly the regions the two-pass scan
// recovers at a fixed seed — at every worker setting, pooled or fresh —
// and must cost the simulated attacker less than the two passes do (the
// store warm-ups ride on the load probes' translations; the sweep setup is
// paid once).
func TestUserScanFusedMatchesTwoPass(t *testing.T) {
	for _, seed := range []uint64{900, 901, 907} {
		want := userScanTwoPassResult(t, seed, Options{Workers: 0})
		if len(want.Regions) == 0 {
			t.Fatalf("seed %d: two-pass scan found no regions", seed)
		}
		for _, workers := range []int{0, 1, 4, 8} {
			for _, pooled := range []bool{false, true} {
				opt := Options{Workers: workers}
				if pooled {
					opt.Pool = NewScanPool()
				}
				got := userScanResult(t, seed, opt)
				if !reflect.DeepEqual(want.Regions, got.Regions) {
					t.Fatalf("seed %d workers=%d pooled=%v: fused regions differ from two-pass\nwant: %+v\ngot:  %+v",
						seed, workers, pooled, want.Regions, got.Regions)
				}
				if got.TotalCycles >= want.TotalCycles {
					t.Errorf("seed %d workers=%d pooled=%v: fused scan cost %d sim cycles, two-pass %d — fusion should be cheaper",
						seed, workers, pooled, got.TotalCycles, want.TotalCycles)
				}
			}
		}
	}
}

// userScanTwoPassResult is userScanResult for the legacy two-sweep path.
func userScanTwoPassResult(t *testing.T, seed uint64, opt Options) UserScanResult {
	t.Helper()
	return userScanWith(t, seed, opt, UserScanTwoPass)
}

// The two-pass reference implementation keeps its own worker/pool parity
// (it is the yardstick the fused scan is checked against).
func TestUserScanTwoPassWorkerParity(t *testing.T) {
	base := userScanTwoPassResult(t, 900, Options{Workers: 0})
	for _, workers := range []int{1, 4, 8} {
		got := userScanTwoPassResult(t, 900, Options{Workers: workers})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: two-pass UserScanResult differs from workers=0", workers)
		}
	}
	pooled := userScanTwoPassResult(t, 900, Options{Workers: 4, Pool: NewScanPool()})
	fresh := userScanTwoPassResult(t, 900, Options{Workers: 4})
	if !reflect.DeepEqual(pooled, fresh) {
		t.Fatal("pooled two-pass UserScanResult differs from fresh")
	}
}

// The fused scan's load/store cycle split must be worker-count invariant
// (each chunk's sub-pass deltas are deterministic and summed
// commutatively) and add up to the sweep's probing total.
func TestUserScanFusedCycleSplitInvariant(t *testing.T) {
	base := userScanResult(t, 900, Options{Workers: 0})
	if base.LoadCycles == 0 || base.StoreCycles == 0 {
		t.Fatalf("fused scan reported empty cycle split: %+v", base)
	}
	if base.LoadCycles+base.StoreCycles > base.TotalCycles {
		t.Fatalf("cycle split exceeds total: load %d + store %d > total %d",
			base.LoadCycles, base.StoreCycles, base.TotalCycles)
	}
	for _, workers := range []int{1, 4, 8} {
		got := userScanResult(t, 900, Options{Workers: workers})
		if got.LoadCycles != base.LoadCycles || got.StoreCycles != base.StoreCycles {
			t.Fatalf("workers=%d: cycle split (%d, %d) differs from workers=0 (%d, %d)",
				workers, got.LoadCycles, got.StoreCycles, base.LoadCycles, base.StoreCycles)
		}
	}
}
