package core

import (
	"testing"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/tlb"
	"repro/internal/uarch"
)

// Failure injection and robustness: the attack must keep working when the
// environment degrades in ways the paper encounters (noisy guests, small
// TLBs, disabled paging-structure caches), and must fail *cleanly* when
// the underlying channel is removed.

func attackOnce(t *testing.T, m *machine.Machine, opt Options, seed uint64) bool {
	t.Helper()
	k, err := linux.Boot(m, linux.Config{Seed: seed + 77})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KernelBase(p)
	if err != nil {
		return false
	}
	return res.Base == k.Base
}

func TestPaperConfigFailsUnderHeavyNoise(t *testing.T) {
	// With jitter comparable to the 14-cycle class gap, the paper's
	// single-sample one-sided probe MUST break down — if it didn't, the
	// noise model would be disconnected from the decision path.
	preset := uarch.AlderLake12400F()
	preset.NoiseSigma = 4.0
	fails := 0
	for seed := uint64(0); seed < 8; seed++ {
		m := machine.New(preset, 900+seed)
		if !attackOnce(t, m, Options{}, 900+seed) {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("paper-config attack unaffected by 4-cycle jitter — noise model broken")
	}
}

func TestRobustConfigSurvivesHeavyNoise(t *testing.T) {
	// The robust-attacker configuration — trimmed-mean over 16 samples
	// with a two-sided threshold — recovers the attack under the same
	// jitter that breaks the paper config.
	preset := uarch.AlderLake12400F()
	preset.NoiseSigma = 4.0
	opt := Options{ProbeSamples: 16, Estimator: EstTrimmedMean, TwoSided: true}
	ok := 0
	for seed := uint64(0); seed < 10; seed++ {
		m := machine.New(preset, 900+seed)
		if attackOnce(t, m, opt, 900+seed) {
			ok++
		}
	}
	if ok < 9 {
		t.Fatalf("robust config: only %d/10 attacks succeeded under 4-cycle jitter", ok)
	}
}

func TestAttackDegradesGracefullyUnderOutlierStorm(t *testing.T) {
	preset := uarch.AlderLake12400F()
	preset.OutlierProb = 0.05 // an interrupt storm: 40× the calibrated rate
	ok := 0
	const trials = 20
	opt := Options{ProbeSamples: 4} // min-of-4 sheds one-sided spikes
	for seed := uint64(0); seed < trials; seed++ {
		m := machine.New(preset, 950+seed)
		if attackOnce(t, m, opt, 950+seed) {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Fatalf("attack collapsed under outlier storm: %d/%d", ok, trials)
	}
	t.Logf("outlier-storm success rate: %d/%d", ok, trials)
}

func TestAttackWorksWithTinyTLB(t *testing.T) {
	// A 16-entry single-level TLB still holds the one entry the
	// double-execution probe needs between its two executions.
	m := machine.New(uarch.AlderLake12400F(), 980)
	m.TLB = tlb.NewTLB(tlb.TLBConfig{
		L1: tlb.Config{Sets: 4, Ways: 4},
		L2: tlb.Config{Sets: 4, Ways: 4},
	})
	if !attackOnce(t, m, Options{}, 980) {
		t.Fatal("attack failed with a tiny TLB")
	}
}

func TestAttackWorksWithPSCDisabled(t *testing.T) {
	m := machine.New(uarch.AlderLake12400F(), 990)
	m.PSC.Enabled = false
	if !attackOnce(t, m, Options{}, 990) {
		t.Fatal("attack failed with paging-structure caches disabled")
	}
}

func TestAMDAttackNeedsLevelSignal(t *testing.T) {
	// Channel-removal check: compress the walk-termination costs to a
	// ~1-cycle spread, remove the cold-line difference and drown the rest
	// in jitter; the AMD attack should fail (and report an error) rather
	// than return a confident wrong base.
	preset := uarch.Zen3_5600X()
	preset.Walk = uarch.WalkCosts{PD: 19, PDPT: 19.3, PML4: 19.6, PT: 20}
	preset.PTELineMiss = 0
	preset.NoiseSigma = 8
	m := machine.New(preset, 995)
	k, err := linux.Boot(m, linux.Config{Seed: 995})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KernelBase(p)
	if err == nil && res.Base == k.Base {
		t.Fatal("AMD attack succeeded with the level channel removed — it is not using the channel")
	}
}

func TestIntelAttackNeedsTLBFill(t *testing.T) {
	// Channel-removal check: the Intel path depends on kernel TLB fills;
	// with the AMD fill rule it must stop distinguishing slots.
	preset := uarch.AlderLake12400F()
	preset.KernelTLBFill = false
	m := machine.New(preset, 996)
	k, err := linux.Boot(m, linux.Config{Seed: 996})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := kernelBaseIntel(p)
	if res.Base == k.Base {
		t.Fatal("Intel scan found the base without TLB fills — channel model broken")
	}
}

func TestCalibrationFailsInsideUnmappedScratch(t *testing.T) {
	// If the calibration mmap fails (scratch area occupied), NewProber
	// must return an error, not a bogus threshold.
	m := machine.New(uarch.AlderLake12400F(), 997)
	if _, err := linux.Boot(m, linux.Config{Seed: 997}); err != nil {
		t.Fatal(err)
	}
	if err := m.MapUser(ScratchBase, 4096, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewProber(m, Options{}); err == nil {
		t.Fatal("calibration succeeded over an occupied scratch area")
	}
}

func TestCloudNoiseHandledByAdaptiveMargin(t *testing.T) {
	// The Azure preset's σ≈3.6 jitter requires the adaptive margin; a
	// fixed 4-cycle margin would split mapped runs. Verify the margin
	// actually widened.
	m := machine.New(uarch.XeonPlatinum8171M(), 998)
	if _, err := linux.Boot(m, linux.Config{Seed: 998}); err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	margin := p.Threshold.Cycles - p.Threshold.FastMean
	if margin < 8 {
		t.Fatalf("cloud margin %.1f cycles — adaptive widening not applied", margin)
	}
	// And on the quiet desktop it stays tight.
	m2 := machine.New(uarch.AlderLake12400F(), 999)
	if _, err := linux.Boot(m2, linux.Config{Seed: 999}); err != nil {
		t.Fatal(err)
	}
	p2, err := NewProber(m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2 := p2.Threshold.Cycles - p2.Threshold.FastMean; m2 > 8 {
		t.Fatalf("desktop margin %.1f cycles — unnecessarily loose", m2)
	}
}
