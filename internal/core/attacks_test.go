package core

import (
	"testing"

	"repro/internal/behavior"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
	"repro/internal/uarch"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

func TestKernelBaseIntelAcrossBoots(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		p, k := bootedProber(t, uarch.AlderLake12400F(), 100+seed, linux.Config{})
		res, err := KernelBase(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Base != k.Base {
			t.Fatalf("seed %d: found %#x, want %#x", seed, uint64(res.Base), uint64(k.Base))
		}
		if res.Slide != uint64(k.Base)-uint64(linux.TextRegionBase) {
			t.Fatalf("slide %#x", res.Slide)
		}
		if len(res.Samples) != linux.TextSlots {
			t.Fatalf("samples %d", len(res.Samples))
		}
		if res.ProbeCycles == 0 || res.TotalCycles <= res.ProbeCycles {
			t.Fatalf("runtime accounting broken: probe %d total %d", res.ProbeCycles, res.TotalCycles)
		}
	}
}

func TestKernelBaseAMDAcrossBoots(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		p, k := bootedProber(t, uarch.Zen3_5600X(), 200+seed, linux.Config{})
		res, err := KernelBase(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Base != k.Base {
			t.Fatalf("seed %d: found %#x, want %#x", seed, uint64(res.Base), uint64(k.Base))
		}
		if p.Faults() != 0 {
			t.Fatal("AMD attack faulted")
		}
	}
}

func TestKernelBaseAMDUsesLevelAttack(t *testing.T) {
	// On AMD the P2 (mapped/unmapped) signal must be absent: the naive
	// Intel scan cannot find the base. This is the structural reason the
	// AMD path exists.
	p, k := bootedProber(t, uarch.Zen3_5600X(), 300, linux.Config{})
	intelRes := kernelBaseIntel(p)
	if intelRes.Base == k.Base {
		t.Skip("Intel-style scan accidentally matched — very unlikely; check KernelTLBFill")
	}
}

func TestModulesDetection(t *testing.T) {
	p, k := bootedProber(t, uarch.IceLake1065G7(), 400, linux.Config{})
	table := SizeTable(k.ProcModules())
	res := Modules(p, table)
	score := ScoreModules(res, k.Modules, table)
	if score.Total != 125 || score.UniqueSize != 19 {
		t.Fatalf("score %+v", score)
	}
	if score.DetectionAccuracy() < 0.99 {
		t.Fatalf("detection accuracy %.3f", score.DetectionAccuracy())
	}
	if score.Identified < score.UniqueSize-1 {
		t.Fatalf("identified %d of %d unique", score.Identified, score.UniqueSize)
	}
	// The size-collision pair must classify ambiguously.
	for _, name := range []string{"autofs4", "x_tables"} {
		lm, _ := k.Module(name)
		for _, r := range res.Regions {
			if r.Base == lm.Base {
				if r.Unique() {
					t.Fatalf("%s classified uniquely despite the size collision", name)
				}
				if len(r.Names) < 2 {
					t.Fatalf("%s candidates %v", name, r.Names)
				}
			}
		}
	}
}

func TestModulesRegionsSorted(t *testing.T) {
	p, k := bootedProber(t, uarch.AlderLake12400F(), 402, linux.Config{})
	res := Modules(p, SizeTable(k.ProcModules()))
	for i := 1; i < len(res.Regions); i++ {
		if res.Regions[i].Base <= res.Regions[i-1].Base {
			t.Fatal("regions not in address order")
		}
	}
}

func TestSizeTable(t *testing.T) {
	table := SizeTable([]linux.ModuleSpec{
		{Name: "a", Size: 0x1000}, {Name: "b", Size: 0x1000}, {Name: "c", Size: 0x2000},
	})
	if len(table[0x1000]) != 2 || len(table[0x2000]) != 1 {
		t.Fatalf("table %v", table)
	}
}

func TestKPTIBreakFindsTrampoline(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		p, k := bootedProber(t, uarch.AlderLake12400F(), 500+seed, linux.Config{KPTI: true})
		res, err := KPTIBreak(p, linux.DefaultTrampolineOffset)
		if err != nil {
			t.Fatal(err)
		}
		if res.TrampolineVA != k.TrampolineVA {
			t.Fatalf("trampoline %#x, want %#x", uint64(res.TrampolineVA), uint64(k.TrampolineVA))
		}
		if res.Base != k.Base {
			t.Fatalf("base %#x, want %#x", uint64(res.Base), uint64(k.Base))
		}
	}
}

func TestKPTIHidesDirectScan(t *testing.T) {
	// Under KPTI the plain scan must NOT find the true base — only the
	// trampoline slot is visible. This is the defense working as designed.
	p, k := bootedProber(t, uarch.AlderLake12400F(), 510, linux.Config{KPTI: true})
	res := kernelBaseIntel(p)
	if res.Base == k.Base && k.TrampolineVA != k.Base {
		t.Fatal("direct scan found the KPTI-hidden base")
	}
	if res.Base != k.TrampolineVA {
		t.Fatalf("direct scan found %#x, expected only the trampoline %#x",
			uint64(res.Base), uint64(k.TrampolineVA))
	}
}

func TestWindowsKernelScan(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		m := machine.New(uarch.AlderLake12400F(), 600+seed)
		wk, err := winkernel.Boot(m, winkernel.Config{Seed: 600 + seed, Drivers: 24})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProber(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := WindowsKernel(p, winkernel.ImageSlots)
		if err != nil {
			t.Fatal(err)
		}
		if res.RegionBase != wk.Base {
			t.Fatalf("seed %d: region %#x, want %#x", seed, uint64(res.RegionBase), uint64(wk.Base))
		}
		if res.RunSlots != winkernel.ImageSlots {
			t.Fatalf("run %d slots", res.RunSlots)
		}
	}
}

func TestKVASBreak(t *testing.T) {
	m := machine.New(uarch.Skylake6600U(), 700)
	wk, err := winkernel.Boot(m, winkernel.Config{Seed: 700, KVAS: true, MaxSlot: 500})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KVASBreak(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	if res.KVASVA != wk.KVASVA {
		t.Fatalf("KVAS %#x, want %#x", uint64(res.KVASVA), uint64(wk.KVASVA))
	}
	if res.Base != wk.Base {
		t.Fatalf("base %#x, want %#x", uint64(res.Base), uint64(wk.Base))
	}
}

func TestBehaviorSpyTracksActivity(t *testing.T) {
	p, k := bootedProber(t, uarch.IceLake1065G7(), 800, linux.Config{})
	targets, err := LocateTargets(Modules(p, SizeTable(k.ProcModules())), "bluetooth", "psmouse")
	if err != nil {
		t.Fatal(err)
	}
	bt := behavior.FixedTimeline(behavior.BluetoothAudio(), behavior.Interval{Start: 10, End: 40})
	ms := behavior.FixedTimeline(behavior.MouseMovement(), behavior.Interval{Start: 50, End: 70})
	drv, err := behavior.NewDriver(k, bt, ms)
	if err != nil {
		t.Fatal(err)
	}
	spy := &BehaviorSpy{P: p, Targets: targets}
	traces, err := spy.Run(drv, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || len(traces[0].Samples) != 100 {
		t.Fatalf("traces %d / %d samples", len(traces), len(traces[0].Samples))
	}
	if acc := traces[0].Accuracy(bt); acc < 0.95 {
		t.Fatalf("bluetooth accuracy %.2f", acc)
	}
	if acc := traces[1].Accuracy(ms); acc < 0.95 {
		t.Fatalf("psmouse accuracy %.2f", acc)
	}
	// Cross-talk check: the bluetooth trace must not read active during
	// the mouse-only window.
	for _, s := range traces[0].Samples {
		if s.TimeSec > 52 && s.TimeSec < 68 && s.Active {
			t.Fatalf("bluetooth trace active at %.0fs (mouse window)", s.TimeSec)
		}
	}
}

func TestLocateTargetsRejectsAmbiguous(t *testing.T) {
	p, k := bootedProber(t, uarch.IceLake1065G7(), 810, linux.Config{})
	res := Modules(p, SizeTable(k.ProcModules()))
	if _, err := LocateTargets(res, "autofs4"); err == nil {
		t.Fatal("ambiguous module located")
	}
}

func TestUserScanRecoversLayout(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 900)
	if _, err := linux.Boot(m, linux.Config{Seed: 900}); err != nil {
		t.Fatal(err)
	}
	proc, err := userspace.Build(m, userspace.Config{Seed: 900, EntropyBits: 10, HideLastRWPage: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	libc := proc.Libs[0]
	scan := UserScan(p, libc.Base-4*paging.Page4K, libc.End()+8*paging.Page4K)
	found := FingerprintLibraries(scan.Regions, []userspace.Image{userspace.Libc()})
	if found["libc.so"] != libc.Base {
		t.Fatalf("libc at %#x, want %#x", uint64(found["libc.so"]), uint64(libc.Base))
	}
	if p.Faults() != 0 {
		t.Fatal("user scan faulted")
	}
}

func TestScanUntilMapped(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 910)
	if _, err := linux.Boot(m, linux.Config{Seed: 910}); err != nil {
		t.Fatal(err)
	}
	proc, err := userspace.Build(m, userspace.Config{Seed: 910, EntropyBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	va, probes, ok := ScanUntilMapped(p, userspace.ExeRegionBase, 1<<11)
	if !ok || va != proc.Exe.Base {
		t.Fatalf("found %#x after %d probes, want %#x", uint64(va), probes, uint64(proc.Exe.Base))
	}
	// Not found within limit.
	_, _, ok = ScanUntilMapped(p, 0x440000000000, 32)
	if ok {
		t.Fatal("found a mapping in empty space")
	}
}

func TestLibrarySignatureMatching(t *testing.T) {
	libc := userspace.Libc()
	good := []UserRegion{
		{Start: 0x1000, End: 0x1000 + 0x1e7*0x1000, Class: PermReadable},
		{Start: 0x400000, End: 0x404000, Class: PermReadable},
		{Start: 0x404000, End: 0x407000, Class: PermWritable}, // 3 ≥ 2: bss over-allocation
	}
	if !LibrarySignatureMatch(good, libc) {
		t.Fatal("valid signature rejected")
	}
	bad := append([]UserRegion(nil), good...)
	bad[0].End = bad[0].Start + 0x1e6*0x1000 // r-x one page short
	if LibrarySignatureMatch(bad, libc) {
		t.Fatal("wrong r-x size accepted")
	}
	short := append([]UserRegion(nil), good...)
	short[2].End = short[2].Start + 0x1000 // rw- below minimum
	if LibrarySignatureMatch(short, libc) {
		t.Fatal("undersized rw- accepted")
	}
	if LibrarySignatureMatch(good[:2], libc) {
		t.Fatal("truncated region list accepted")
	}
}

func TestCloudBreakAllProviders(t *testing.T) {
	for _, prov := range []CloudProvider{AmazonEC2, GoogleGCE, MicrosoftAzure} {
		res, err := CloudBreak(prov, 42, CloudBreakOptions{AzureMaxSlot: 3000})
		if err != nil {
			t.Fatalf("%v: %v", prov, err)
		}
		if res.KernelBase == 0 {
			t.Fatalf("%v: no base", prov)
		}
		if prov == AmazonEC2 && !res.ViaTrampoline {
			t.Fatal("EC2 must use the KPTI trampoline path")
		}
		if prov != MicrosoftAzure && res.ModulesFound < 100 {
			t.Fatalf("%v: only %d module regions", prov, res.ModulesFound)
		}
	}
}

func TestScenarioMetadata(t *testing.T) {
	if s := Scenario(AmazonEC2); !s.KPTI || s.Trampoline != 0xe00000 {
		t.Fatalf("EC2 scenario %+v", s)
	}
	if s := Scenario(GoogleGCE); s.KPTI || s.Windows {
		t.Fatalf("GCE scenario %+v", s)
	}
	if s := Scenario(MicrosoftAzure); !s.Windows {
		t.Fatalf("Azure scenario %+v", s)
	}
}

func TestEvaluateKernelBaseHarness(t *testing.T) {
	rep, err := EvaluateKernelBase(uarch.AlderLake12400F(), 20, rng.New(1).Uint64())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 20 || rep.Accuracy() < 0.9 {
		t.Fatalf("report %+v", rep)
	}
	if rep.ProbeSec <= 0 || rep.TotalSec < rep.ProbeSec {
		t.Fatalf("runtimes %v / %v", rep.ProbeSec, rep.TotalSec)
	}
	if rep.String() == "" {
		t.Fatal("empty row")
	}
}

func TestEvaluateModulesHarness(t *testing.T) {
	rep, err := EvaluateModules(uarch.AlderLake12400F(), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy() < 0.98 {
		t.Fatalf("module accuracy %.3f", rep.Accuracy())
	}
}

func TestPermClassString(t *testing.T) {
	if PermUnmapped.String() != "(---|unmap)" || PermReadable.String() != "(r--|r-x)" ||
		PermWritable.String() != "rw-" {
		t.Fatal("Figure 7 notation wrong")
	}
}

// TestWindowsEntryPoint exercises the §IV-G follow-on the paper proposes:
// after the region scan recovers 18 bits, the TLB attack against the
// 4 KiB-mapped entry slot recovers the remaining 9 bits.
func TestWindowsEntryPoint(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		m := machine.New(uarch.AlderLake12400F(), 1200+seed)
		wk, err := winkernel.Boot(m, winkernel.Config{Seed: 1200 + seed, Drivers: 12})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProber(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		region, err := WindowsKernel(p, winkernel.ImageSlots)
		if err != nil {
			t.Fatal(err)
		}
		res, err := WindowsEntryPoint(p, region.RegionBase, wk.Syscall)
		if err != nil {
			t.Fatal(err)
		}
		if res.EntryVA != wk.EntryVA {
			t.Fatalf("seed %d: entry %#x, want %#x", seed, uint64(res.EntryVA), uint64(wk.EntryVA))
		}
		// 18 + 9 bits: the full randomization is gone.
		if p.Faults() != 0 {
			t.Fatal("entry-point attack faulted")
		}
	}
}
