package core

import (
	"fmt"
	"math"

	"repro/internal/behavior"
	"repro/internal/linux"
	"repro/internal/paging"
	"repro/internal/scan"
)

// SpySample is one spy-tick observation of one monitored module.
type SpySample struct {
	TimeSec float64
	// MinCycles is the fastest probe over the module's leading pages; a
	// TLB-resident translation pulls it down to the assist-only latency.
	MinCycles float64
	// Active is the spy's verdict: the module was used since the last tick.
	Active bool
}

// SpyTrace is one module's observation series (one panel of Figure 6).
type SpyTrace struct {
	Module  string
	Samples []SpySample
}

// Accuracy scores the trace against ground truth activity windows.
func (t SpyTrace) Accuracy(tl *behavior.Timeline) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range t.Samples {
		if s.Active == tl.ActiveAt(s.TimeSec) {
			ok++
		}
	}
	return float64(ok) / float64(len(t.Samples))
}

// MaxSpyTargets bounds the modules one spy watches per sweep (the tick
// verdict is a fixed-size record so the scan engine can merge it).
const MaxSpyTargets = 8

// tickObs is one tick's observation across all watched targets — the
// verdict type of the temporal sweeps. Unused slots stay zero.
type tickObs struct {
	min    [MaxSpyTargets]float64
	active [MaxSpyTargets]bool
}

// tickChunk returns the shard granularity of temporal sweeps, in ticks:
// small enough that a 100-tick Figure 6 run still fans out across workers,
// overridable through the usual Options.ScanChunkPages knob.
func tickChunk(p *Prober) int {
	if p.Opt.ScanChunkPages > 0 {
		return p.Opt.ScanChunkPages
	}
	return 8
}

// windowTicks returns how many TickSec ticks the half-open window [t0, t1)
// holds (tick i sampling at t0 + i*tick, like the legacy 1 Hz loop).
func windowTicks(t0, t1, tick float64) int {
	if t1 <= t0 || tick <= 0 {
		return 0
	}
	return int(math.Ceil((t1-t0)/tick - 1e-9))
}

// sequentialTicks runs n tick bodies in order on p's own machine under the
// engine's exact determinism contract — the same scan-epoch seed
// derivation, per-chunk noise reseed + translation reset, and canonical
// post-sweep state that runSweep applies. It is the one place the temporal
// yardstick loops (BehaviorSpy.RunWindowSequential,
// AppFingerprinter.ClassifyFromSequential) get their chunk scaffolding
// from, so the seed contract cannot drift between them and the engine.
func sequentialTicks(p *Prober, n int, body func(i int)) {
	p.scanEpoch++
	seed := p.M.Seed() ^ (p.scanEpoch * 0x9e3779b97f4a7c15)
	chunk := tickChunk(p)
	for lo, c := 0, 0; lo < n; lo, c = lo+chunk, c+1 {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.M.ReseedNoise(scan.StreamSeed(seed, uint64(c)))
		p.M.ResetTranslationState()
		for i := lo; i < hi; i++ {
			body(i)
		}
	}
	p.M.ReseedNoise(scan.StreamSeed(seed, scan.PostSweepStream))
	p.M.ResetTranslationState()
}

// BehaviorSpy mounts the §IV-E user-behavior inference: a spy process
// repeats the TLB attack (P4) against the leading pages of target kernel
// modules at tick intervals. When the victim uses the device (Bluetooth
// audio, mouse movement), the kernel executes the module and its
// translations become TLB-resident, so the spy's probes run fast.
//
// The spy needs the modules' addresses — obtained beforehand with the
// Modules attack; here they are passed in as located modules.
type BehaviorSpy struct {
	P *Prober
	// Targets are the monitored modules (at most MaxSpyTargets).
	Targets []linux.LoadedModule
	// PagesPerModule is how many leading pages each tick probes
	// ("the first 10 pages", §IV-E).
	PagesPerModule int
	// TickSec is the sampling interval (1 s in the paper).
	TickSec float64
}

// init fills defaults and validates the target list.
func (s *BehaviorSpy) init() error {
	if s.PagesPerModule <= 0 {
		s.PagesPerModule = 10
	}
	if s.TickSec <= 0 {
		s.TickSec = 1.0
	}
	if len(s.Targets) > MaxSpyTargets {
		return fmt.Errorf("core: %d spy targets, max %d", len(s.Targets), MaxSpyTargets)
	}
	return nil
}

// tick runs one spy tick at victim time t on p's machine: canonical tick
// state, victim events of the tick's window replayed by the driver, clock
// advance, one min-over-leading-pages TLB probe per target, full eviction
// so the next tick starts cold. The tick's outcome is a pure function of
// (victim image, driver schedule, t, p's noise position) — which machine
// runs it never matters, the property the sharded sweep rests on.
//
// Each target's leading-page sweep goes through ProbeTLBBatch into
// prober-owned windows — bit-identical to the per-page ProbeTLB loop it
// replaces, with the per-probe plumbing hoisted and zero steady-state
// allocations (the alloc-guard tests pin this).
func (s *BehaviorSpy) tick(p *Prober, d *behavior.Driver, t float64) tickObs {
	m := p.M
	m.ResetTranslationState()
	d.ReplayWindow(m, t, t+s.TickSec)
	m.AdvanceSeconds(s.TickSec)
	var obs tickObs
	for ti := range s.Targets {
		target := &s.Targets[ti]
		n := leadingPages(s.PagesPerModule, target.Size)
		min := 0.0
		if n > 0 {
			cyc, fast := p.tickWindows(n)
			p.ProbeTLBBatch(target.Base, n, paging.Page4K, cyc, fast)
			min = cyc[0]
			for _, c := range cyc[1:] {
				if c < min {
					min = c
				}
			}
		}
		obs.min[ti] = min
		obs.active[ti] = p.Threshold.Classify(min)
	}
	m.EvictTLB()
	return obs
}

// leadingPages returns how many of a module's leading pages a tick probes:
// want pages, clipped to the pages the module actually maps.
func leadingPages(want int, size uint64) int {
	n := 0
	for pg := 0; pg < want && uint64(pg)<<12 < size; pg++ {
		n++
	}
	return n
}

// spyWorker shards the spy's time axis: probe index i is tick i of the
// window, and each chunk of ticks replays its own driver events against the
// worker's private machine replica (behavior.Driver.ReplayWindow is
// stateless), so a chunk's trace segment is bit-identical no matter which
// worker runs it. Healing is disabled for temporal sweeps — adjacent ticks
// legitimately disagree whenever the victim starts or stops an activity.
type spyWorker struct {
	workerBase
	spy *BehaviorSpy
	d   *behavior.Driver
	t0  float64
}

func (w *spyWorker) Probe(va paging.VirtAddr) scan.Sample[tickObs] {
	obs := w.spy.tick(w.p, w.d, w.t0+float64(uint64(va))*w.spy.TickSec)
	return scan.Sample[tickObs]{Cycles: obs.min[0], Verdict: obs}
}

func (w *spyWorker) Classify(float64) tickObs { return tickObs{} } // healing disabled

// Run replays the experiment for duration seconds against the victim
// driver from time 0: each tick the victim acts per its timelines, then the
// spy probes and evicts. Returns one trace per target, aligned with the
// driver's timelines.
func (s *BehaviorSpy) Run(d *behavior.Driver, duration float64) ([]SpyTrace, error) {
	return s.RunWindow(d, 0, duration)
}

// RunWindow runs the spy over the victim-time window [t0, t1) on the scan
// engine: ticks become probe indices, chunks of ticks fan out across
// Options.Workers machine replicas, and each worker replays the driver
// events of its chunk's window against its replica. Output is bit-identical
// at any worker setting, pooled or fresh, and bit-identical to
// RunWindowSequential — the sequential loop kept as the parity yardstick.
//
// Windows compose: consecutive RunWindow calls on one prober continue the
// victim's timeline, which is what lets a service session carry spy state
// across jobs (checkpoint after each window, restore before the next).
func (s *BehaviorSpy) RunWindow(d *behavior.Driver, t0, t1 float64) ([]SpyTrace, error) {
	if err := s.P.M.Fire("probe"); err != nil {
		return nil, err
	}
	if err := s.init(); err != nil {
		return nil, err
	}
	// Materialize unbounded victim timelines through the window before the
	// fan-out: worker replicas then replay events as pure reads.
	d.EnsureHorizon(t1)
	n := windowTicks(t0, t1, s.TickSec)
	res := runSweep(s.P, 0, n, 1, tickChunk(s.P), -1, nil, tickObs{},
		func(rp *Prober) scan.Worker[tickObs] {
			return &spyWorker{workerBase: workerBase{p: rp}, spy: s, d: d, t0: t0}
		})
	return s.assemble(t0, res.Verdicts), nil
}

// RunSequential is the sequential parity yardstick of Run.
func (s *BehaviorSpy) RunSequential(d *behavior.Driver, duration float64) ([]SpyTrace, error) {
	return s.RunWindowSequential(d, 0, duration)
}

// RunWindowSequential is the plain sequential spy loop, kept as the parity
// yardstick for the engine-based RunWindow: it walks the ticks in order on
// the prober's own machine under the engine's exact determinism contract
// (same per-chunk noise seeds, same canonical tick state, same post-sweep
// state), so its traces must be bit-identical to RunWindow's at every
// worker setting for a fixed machine seed.
func (s *BehaviorSpy) RunWindowSequential(d *behavior.Driver, t0, t1 float64) ([]SpyTrace, error) {
	if err := s.init(); err != nil {
		return nil, err
	}
	d.EnsureHorizon(t1)
	n := windowTicks(t0, t1, s.TickSec)
	obs := make([]tickObs, n)
	sequentialTicks(s.P, n, func(i int) {
		obs[i] = s.tick(s.P, d, t0+float64(i)*s.TickSec)
	})
	return s.assemble(t0, obs), nil
}

// assemble splits the merged per-tick observations into per-target traces.
func (s *BehaviorSpy) assemble(t0 float64, obs []tickObs) []SpyTrace {
	traces := make([]SpyTrace, len(s.Targets))
	for ti, target := range s.Targets {
		traces[ti].Module = target.Name
		traces[ti].Samples = make([]SpySample, len(obs))
		for i, o := range obs {
			traces[ti].Samples[i] = SpySample{
				TimeSec:   t0 + float64(i)*s.TickSec,
				MinCycles: o.min[ti],
				Active:    o.active[ti],
			}
		}
	}
	return traces
}

// LocateTargets resolves target module names to loaded modules via a prior
// Modules attack result, using unique-size classification; it falls back to
// ground truth being unnecessary — an error is returned if a target was not
// uniquely identified.
func LocateTargets(res ModulesResult, names ...string) ([]linux.LoadedModule, error) {
	var out []linux.LoadedModule
	for _, name := range names {
		found := false
		for _, r := range res.Regions {
			if r.Unique() && r.Names[0] == name {
				out = append(out, linux.LoadedModule{
					ModuleSpec: linux.ModuleSpec{Name: name, Size: r.Size},
					Base:       r.Base,
				})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: target module %q not uniquely identified", name)
		}
	}
	return out, nil
}
