package core

import (
	"fmt"

	"repro/internal/behavior"
	"repro/internal/linux"
	"repro/internal/paging"
)

// SpySample is one spy-tick observation of one monitored module.
type SpySample struct {
	TimeSec float64
	// MinCycles is the fastest probe over the module's leading pages; a
	// TLB-resident translation pulls it down to the assist-only latency.
	MinCycles float64
	// Active is the spy's verdict: the module was used since the last tick.
	Active bool
}

// SpyTrace is one module's observation series (one panel of Figure 6).
type SpyTrace struct {
	Module  string
	Samples []SpySample
}

// Accuracy scores the trace against ground truth activity windows.
func (t SpyTrace) Accuracy(tl *behavior.Timeline) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range t.Samples {
		if s.Active == tl.ActiveAt(s.TimeSec) {
			ok++
		}
	}
	return float64(ok) / float64(len(t.Samples))
}

// BehaviorSpy mounts the §IV-E user-behavior inference: a spy process
// repeats the TLB attack (P4) against the leading pages of target kernel
// modules at tick intervals. When the victim uses the device (Bluetooth
// audio, mouse movement), the kernel executes the module and its
// translations become TLB-resident, so the spy's probes run fast.
//
// The spy needs the modules' addresses — obtained beforehand with the
// Modules attack; here they are passed in as located modules.
type BehaviorSpy struct {
	P *Prober
	// Targets are the monitored modules.
	Targets []linux.LoadedModule
	// PagesPerModule is how many leading pages each tick probes
	// ("the first 10 pages", §IV-E).
	PagesPerModule int
	// TickSec is the sampling interval (1 s in the paper).
	TickSec float64
}

// Run replays the experiment for duration seconds against the victim
// driver: each tick the victim acts per its timelines, then the spy probes
// and evicts. Returns one trace per target, aligned with the driver's
// timelines.
func (s *BehaviorSpy) Run(d *behavior.Driver, duration float64) ([]SpyTrace, error) {
	if s.PagesPerModule <= 0 {
		s.PagesPerModule = 10
	}
	if s.TickSec <= 0 {
		s.TickSec = 1.0
	}
	traces := make([]SpyTrace, len(s.Targets))
	for i, t := range s.Targets {
		traces[i].Module = t.Name
	}

	// Start from a clean TLB so tick 1 reflects only post-start activity.
	s.P.M.EvictTLB()

	for t := 0.0; t < duration; t += s.TickSec {
		// Victim activity during this tick.
		if err := d.Step(t); err != nil {
			return nil, err
		}
		s.P.M.AdvanceSeconds(s.TickSec)

		// Spy: probe each target module's leading pages, then evict so the
		// next tick starts fresh.
		for i, target := range s.Targets {
			min := 0.0
			for pg := 0; pg < s.PagesPerModule; pg++ {
				va := target.Base + paging.VirtAddr(pg*paging.Page4K)
				if uint64(va) >= uint64(target.End()) {
					break
				}
				pr := s.P.ProbeTLB(va)
				if pg == 0 || pr.Cycles < min {
					min = pr.Cycles
				}
			}
			traces[i].Samples = append(traces[i].Samples, SpySample{
				TimeSec:   t,
				MinCycles: min,
				Active:    s.P.Threshold.Classify(min),
			})
		}
		s.P.M.EvictTLB()
	}
	return traces, nil
}

// LocateTargets resolves target module names to loaded modules via a prior
// Modules attack result, using unique-size classification; it falls back to
// ground truth being unnecessary — an error is returned if a target was not
// uniquely identified.
func LocateTargets(res ModulesResult, names ...string) ([]linux.LoadedModule, error) {
	var out []linux.LoadedModule
	for _, name := range names {
		found := false
		for _, r := range res.Regions {
			if r.Unique() && r.Names[0] == name {
				out = append(out, linux.LoadedModule{
					ModuleSpec: linux.ModuleSpec{Name: name, Size: r.Size},
					Base:       r.Base,
				})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: target module %q not uniquely identified", name)
		}
	}
	return out, nil
}
