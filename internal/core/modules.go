package core

import (
	"sort"

	"repro/internal/linux"
	"repro/internal/paging"
)

// DetectedRegion is one contiguous run of mapped pages found in the module
// area: a candidate module.
type DetectedRegion struct {
	Base paging.VirtAddr
	Size uint64 // bytes
	// Names holds the classification against the /proc/modules size table:
	// exactly one name when the size is unique, several candidates when
	// sizes collide (autofs4 vs x_tables in Fig. 5), none when no module
	// has the detected size.
	Names []string
}

// End returns one past the region's last mapped byte.
func (d DetectedRegion) End() paging.VirtAddr { return d.Base + paging.VirtAddr(d.Size) }

// Unique reports whether the region classified to exactly one module.
func (d DetectedRegion) Unique() bool { return len(d.Names) == 1 }

// ModulesResult is the outcome of the kernel-module attack.
type ModulesResult struct {
	Regions []DetectedRegion
	// PageMapped is the raw per-page probe outcome over the module region
	// (16384 entries), for the Figure 5 rendering.
	PageMapped []bool
	// PageCycles holds the per-page timings.
	PageCycles []float64
	// ProbeCycles/TotalCycles split runtime as in Table I.
	ProbeCycles uint64
	TotalCycles uint64
}

// Modules mounts the §IV-C attack: probe the module region's 16384 page
// slots with the page-table attack (P2), segment the mapped bitmap into
// runs separated by unmapped guard pages, and classify each run's size
// against the /proc/modules size table.
//
// sizeTable maps size → module names with that size; build it with
// SizeTable from the attacker-readable /proc/modules contents.
func Modules(p *Prober, sizeTable map[uint64][]string) ModulesResult {
	start := p.M.RDTSC()
	var res ModulesResult

	pages := int(linux.ModuleRegionSize / paging.Page4K)
	probeStart := p.M.RDTSC()
	res.PageMapped, res.PageCycles = p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
	res.ProbeCycles = p.M.RDTSC() - probeStart

	// Segment into maximal mapped runs.
	i := 0
	for i < pages {
		if !res.PageMapped[i] {
			i++
			continue
		}
		j := i
		for j < pages && res.PageMapped[j] {
			j++
		}
		region := DetectedRegion{
			Base: linux.ModuleRegionBase + paging.VirtAddr(uint64(i)<<12),
			Size: uint64(j-i) << 12,
		}
		if names, ok := sizeTable[region.Size]; ok {
			region.Names = append([]string(nil), names...)
			sort.Strings(region.Names)
		}
		res.Regions = append(res.Regions, region)
		i = j
	}

	res.TotalCycles = p.M.RDTSC() - start + KernelBaseResult{}.calibrationCycles(p)
	return res
}

// SizeTable builds the size→names classification table from the
// /proc/modules view.
func SizeTable(specs []linux.ModuleSpec) map[uint64][]string {
	t := make(map[uint64][]string)
	for _, s := range specs {
		t[s.Size] = append(t[s.Size], s.Name)
	}
	return t
}

// ScoreModules compares a detection result against the loaded-module ground
// truth and returns per-module detection metrics: a module counts as
// detected when some region matches its base and size exactly, and as
// identified when that region additionally classified to exactly its name.
type ModuleScore struct {
	Total      int // loaded modules
	Detected   int // base+size recovered exactly
	Identified int // detected and uniquely named correctly
	UniqueSize int // modules whose size is unique in the table
}

// DetectionAccuracy returns Detected/Total.
func (s ModuleScore) DetectionAccuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Total)
}

// ScoreModules scores res against the kernel's loaded modules.
func ScoreModules(res ModulesResult, loaded []linux.LoadedModule, sizeTable map[uint64][]string) ModuleScore {
	byBase := make(map[paging.VirtAddr]DetectedRegion, len(res.Regions))
	for _, r := range res.Regions {
		byBase[r.Base] = r
	}
	var score ModuleScore
	score.Total = len(loaded)
	for _, lm := range loaded {
		if len(sizeTable[lm.Size]) == 1 {
			score.UniqueSize++
		}
		r, ok := byBase[lm.Base]
		if !ok || r.Size != lm.Size {
			continue
		}
		score.Detected++
		if r.Unique() && r.Names[0] == lm.Name {
			score.Identified++
		}
	}
	return score
}
