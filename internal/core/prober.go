package core

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/avx"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/stats"
)

// ScratchBase is where the prober mmaps its calibration pages: an arbitrary
// unused spot in the attacker's own address space.
const ScratchBase paging.VirtAddr = 0x7e0000000000

// Estimator selects how a probe reduces its k measurement samples to one
// decision value.
type Estimator int

// Estimators.
const (
	// EstMin takes the minimum — the classic timing-channel estimator
	// (latency noise is mostly additive), and the paper's choice.
	EstMin Estimator = iota
	// EstTrimmedMean drops the top quartile (interrupt spikes) and
	// averages the rest. Under heavy symmetric jitter it concentrates as
	// 1/√k where the minimum saturates; the robustness tests and the
	// estimator ablation use it.
	EstTrimmedMean
)

// Options tunes the prober. The zero value is the paper's configuration.
type Options struct {
	// CalibrationPages is how many fresh pages the dirty-store calibration
	// samples (one first-store per page). 0 means 256.
	CalibrationPages int
	// ProbeSamples is how many second-execution measurements each probe
	// takes before reduction. 0 means 1 (the paper's double-execution
	// probe measures the second run once).
	ProbeSamples int
	// Estimator reduces the sample set (default EstMin).
	Estimator Estimator
	// TwoSided calibrates the threshold as the midpoint between the
	// fast class (dirty-store trick) and a slow-class sample taken on the
	// attacker's own *unmapped* scratch addresses, instead of the paper's
	// one-sided fast-median-plus-margin. More robust when jitter is
	// comparable to the class gap.
	TwoSided bool
	// Margin is added to the one-sided calibrated threshold, in cycles.
	// 0 means 4 (widened automatically to 3σ of the calibration sample).
	Margin float64
	// ExtraJitterSigma adds timer jitter (SGX counting-thread fallback).
	ExtraJitterSigma float64
	// Workers sets the host parallelism of the large VA sweeps (ScanMapped,
	// the §IV-F store-classification pass, the AMD term-level sweep), which
	// all run on the sharded engine (internal/scan). 0 runs the engine
	// inline on the prober's own machine (sequential, no replicas); any
	// value >= 1 fans chunks out across that many worker machine replicas;
	// negative means "all CPUs" (normalized to runtime.NumCPU by
	// withDefaults). Output is bit-identical at every setting for a fixed
	// machine seed — worker count buys host wall-clock, never different
	// results.
	Workers int
	// ScanChunkPages overrides the engine shard granularity (0 = default).
	ScanChunkPages int
	// Pool, when set, is the session-persistent pool the engine draws its
	// worker prober replicas (calibrated probers on machine replicas, with
	// their batch scratch) from instead of cloning fresh ones per scan.
	// Construct one ScanPool per session and share it across probers (and
	// victims); pooled output stays bit-identical to fresh-worker runs.
	Pool *ScanPool
}

func (o Options) withDefaults() Options {
	if o.CalibrationPages == 0 {
		o.CalibrationPages = 256
	}
	if o.ProbeSamples == 0 {
		o.ProbeSamples = 1
	}
	if o.Margin == 0 {
		o.Margin = 4
	}
	if o.Workers < 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Prober owns a calibrated measurement context on one machine.
type Prober struct {
	M   *machine.Machine
	Opt Options

	// Threshold separates "translation resolved fast" (mapped + TLB hit)
	// from "walk + assist" timings; calibrated per §IV-B from the
	// dirty-bit masked-store time on the attacker's own pages.
	Threshold stats.Threshold

	// StoreThreshold separates the assist-free store path (writable
	// destination) from the store-assist path (read-only destination),
	// for the permission attack (P5). Calibrated as the midpoint between
	// zero-mask stores on the attacker's own rw- pages and the dirty-
	// assist store sample.
	StoreThreshold stats.Threshold

	// calibrated is set after Calibrate.
	calibrated bool
	scratchVA  paging.VirtAddr
	faults     int

	// sampleBuf and sortBuf are per-probe scratch buffers, reused so the
	// multi-sample probe and reduction paths do not allocate per probe.
	sampleBuf []float64
	sortBuf   []float64
	// scanEpoch salts the engine seed per ScanMapped call so consecutive
	// scans on one prober draw independent noise.
	scanEpoch uint64

	// Batch scratch, reused across chunks (and, via the prober pool, across
	// scans): the masked-op slice handed to machine.MeasureBatch, the
	// window-relative positions of the probed ops, the raw per-sample
	// measurements, the reduced decision values, and the per-window fast
	// flags. Sized to the largest chunk the prober has probed.
	batchOps  []avx.Op
	batchPos  []int
	batchMeas []float64
	batchVals []float64
	batchFast []bool
	// tickCyc backs the temporal ticks' per-target measurement window (see
	// tickWindows); it must be distinct from batchMeas, which ProbeTLBBatch
	// uses for the raw measurements the window is reduced from.
	tickCyc []float64
	// replicaBuf backs runSweep's per-scan replica list (a Prober runs one
	// scan at a time, so one buffer suffices).
	replicaBuf []*Prober
}

// NewProber creates and calibrates a prober.
func NewProber(m *machine.Machine, opt Options) (*Prober, error) {
	p := &Prober{M: m, Opt: opt.withDefaults(), scratchVA: ScratchBase}
	if err := p.Calibrate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Calibrate determines the mapped/unmapped decision threshold using the
// paper's trick (§IV-B): the first masked store to a clean (D=0) writable
// user page takes a Dirty-bit microcode assist whose latency matches the
// masked-load latency on a kernel-mapped page. Sampling our *own* pages
// therefore yields the fast-class mean without touching kernel memory.
func (p *Prober) Calibrate() error {
	if err := p.M.Fire("calibrate"); err != nil {
		return fmt.Errorf("core: calibration: %w", err)
	}
	n := p.Opt.CalibrationPages
	length := uint64(n) * paging.Page4K
	if err := p.M.MapUser(p.scratchVA, length, paging.Writable); err != nil {
		return fmt.Errorf("core: calibration mmap: %w", err)
	}
	// Raw dirty-store timings, one per fresh page; they are reduced in
	// groups of ProbeSamples with the probe estimator so that the
	// threshold lives on the same scale as the reduced probe values.
	fastRaw := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		va := p.scratchVA + paging.VirtAddr(i*paging.Page4K)
		// Pre-touch with a load so the translation is TLB-resident and
		// only the dirty assist contributes (isolates the assist time).
		p.M.ExecMasked(avx.MaskedLoad(va, avx.AllMask(8)))
		t, r := p.M.Measure(avx.MaskedStore(va, avx.AllMask(8)))
		if r.Faulted {
			return fmt.Errorf("core: unexpected fault during calibration at %#x", uint64(va))
		}
		fastRaw = append(fastRaw, t)
	}
	fast := p.reduceGroups(fastRaw)
	// Zero-mask stores on our own (now dirty) rw- pages sample the
	// assist-free store path for the permission attack's threshold.
	storeRaw := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		va := p.scratchVA + paging.VirtAddr(i*paging.Page4K)
		t, r := p.M.Measure(avx.MaskedStore(va, avx.ZeroMask))
		if r.Faulted {
			return fmt.Errorf("core: unexpected fault during store calibration at %#x", uint64(va))
		}
		storeRaw = append(storeRaw, t)
	}
	storeFast := p.reduceGroups(storeRaw)
	if err := p.M.UnmapUser(p.scratchVA, length); err != nil {
		return fmt.Errorf("core: calibration munmap: %w", err)
	}

	if p.Opt.TwoSided {
		// Slow-class sample: the scratch addresses are unmapped now, so
		// probing them times the walk+assist path without touching any
		// foreign memory.
		slowRaw := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			va := p.scratchVA + paging.VirtAddr(i*paging.Page4K)
			slowRaw = append(slowRaw, p.measureLoad(va))
		}
		slow := p.reduceGroups(slowRaw)
		// 0.3 of the way to the slow class: first-fast-slot scans give
		// the slow class ~500 error opportunities against the fast
		// class's one, so the threshold hugs the fast class.
		p.Threshold = stats.CalibrateFraction(fast, slow, 0.3)
	} else {
		// One-sided (the paper's §IV-B threshold): fast-class median plus
		// a margin that adapts to the measured jitter — ~1 cycle on a
		// quiet desktop (margin stays at the configured minimum), several
		// cycles on a noisy cloud guest. 3σ of the trimmed sample is the
		// attacker-observable estimate.
		margin := p.Opt.Margin
		if s := 3 * fast.Trimmed(0, 0.98).Std(); s > margin {
			margin = s
		}
		p.Threshold = stats.CalibrateOffset(fast, margin)
	}
	p.StoreThreshold = stats.CalibrateMidpoint(storeFast, fast)
	// Leave the machine in the canonical empty-translation state (the same
	// state runSweep restores after every sweep): calibration mapped,
	// touched and unmapped hundreds of scratch pages, so the honest
	// post-calibration state has every translation structure displaced
	// anyway — and a canonical state makes everything probed after
	// calibration a pure function of (victim image, machine seed), not of
	// calibration internals. This is also what lets a calibration cache
	// replay the post-calibration state on a fresh victim replica exactly
	// (see NewProberFromCalibration).
	p.M.ResetTranslationState()
	p.calibrated = true
	return nil
}

// SessionState snapshots the attack-visible state of a prober and its
// machine: the full machine.Snapshot (clock, noise-stream position,
// counters, translation-cache contents, user write shadow) plus the
// prober's fault count and scan epoch. A service session captures it after
// calibration — and, for stateful attacks like the §IV-E behavior spy,
// again after every job — and restores it before the next job, so each job
// starts from exactly the state its position in the session implies: a
// job's output is a pure function of (victim image, session state, spec),
// never of what else ran on the machine in between.
type SessionState struct {
	ms        machine.Snapshot
	scanEpoch uint64
	faults    int
}

// Checkpoint snapshots the prober+machine state.
func (p *Prober) Checkpoint() SessionState {
	return SessionState{ms: p.M.Snapshot(), scanEpoch: p.scanEpoch, faults: p.faults}
}

// Restore rewinds the prober and its machine to a checkpointed state. It
// fails if the victim's page tables were mutated since the checkpoint (see
// machine.Restore — probe-only attacks never trip it).
func (p *Prober) Restore(s SessionState) error {
	if err := p.M.Restore(s.ms); err != nil {
		return err
	}
	p.scanEpoch = s.scanEpoch
	p.faults = s.faults
	return nil
}

// adoptState is the cross-machine Restore: it applies a state snapshotted
// on a different machine whose attack-observable image this prober's
// machine reproduces (see machine.Adopt).
func (p *Prober) adoptState(s SessionState) {
	p.M.Adopt(s.ms)
	p.scanEpoch = s.scanEpoch
	p.faults = s.faults
}

// Calibration is the portable result of one Calibrate run: the decision
// thresholds plus the post-calibration execution state. Cache it keyed by
// victim configuration (preset, boot parameters, seed, prober options) and
// hand it to NewProberFromCalibration to skip recalibrating a fresh boot of
// the same victim.
type Calibration struct {
	Threshold      stats.Threshold
	StoreThreshold stats.Threshold
	// State is the execution state right after Calibrate returned.
	State SessionState
}

// CalibrationSnapshot exports the prober's calibration for a session cache.
// Call it immediately after NewProber, before any attack has run.
func (p *Prober) CalibrationSnapshot() Calibration {
	return Calibration{Threshold: p.Threshold, StoreThreshold: p.StoreThreshold, State: p.Checkpoint()}
}

// NewProberFromCalibration creates a prober on m from a cached calibration
// instead of running Calibrate. m must be a bit-identical replica of the
// machine the calibration was taken on (same preset, same seed, same boot
// sequence); restoring the recorded post-calibration state then reproduces
// the calibrated prober exactly — same thresholds, same clock, same noise
// position — without paying the calibration's mmap + measurement cost, the
// way a real attacker calibrates once per victim class and reuses the
// thresholds across sessions. Every attack result from the returned prober
// is bit-identical to one from a freshly calibrated prober.
//
// The replay crosses machines, so it adopts the recorded state rather than
// Restore-ing it (the calibrated original mapped and unmapped scratch
// pages a calibration-skipping boot never does; the attack-observable image
// is equivalent, the page-table mutation counters are not). Checkpoint the
// returned prober to obtain a state that Restore — with its mutation guard
// — accepts on this machine.
func NewProberFromCalibration(m *machine.Machine, opt Options, cal Calibration) *Prober {
	p := &Prober{
		M:              m,
		Opt:            opt.withDefaults(),
		Threshold:      cal.Threshold,
		StoreThreshold: cal.StoreThreshold,
		calibrated:     true,
		scratchVA:      ScratchBase,
	}
	p.adoptState(cal.State)
	return p
}

// reduceGroups reduces raw per-measurement values in groups of
// ProbeSamples with the configured estimator, yielding a sample on the
// same scale as probe decision values.
func (p *Prober) reduceGroups(raw []float64) *stats.Sample {
	k := p.Opt.ProbeSamples
	out := &stats.Sample{}
	for i := 0; i < len(raw); i += k {
		end := i + k
		if end > len(raw) {
			end = len(raw)
		}
		out.Add(p.reduce(raw[i:end]))
	}
	return out
}

// reduce collapses one probe's sample set to its decision value. The
// trimmed-mean path sorts into a reused scratch buffer instead of
// allocating and re-sorting a fresh copy on every probe.
func (p *Prober) reduce(xs []float64) float64 {
	switch p.Opt.Estimator {
	case EstTrimmedMean:
		if len(xs) == 1 {
			return xs[0]
		}
		sorted := append(p.sortBuf[:0], xs...)
		p.sortBuf = sorted
		sort.Float64s(sorted)
		keep := len(sorted) - len(sorted)/4
		sum := 0.0
		for _, x := range sorted[:keep] {
			sum += x
		}
		return sum / float64(keep)
	default: // EstMin
		min := xs[0]
		for _, x := range xs[1:] {
			if x < min {
				min = x
			}
		}
		return min
	}
}

// Faults returns the number of delivered page faults the prober has caused
// (must stay zero: suppression is the attack's point; tests assert this).
func (p *Prober) Faults() int { return p.faults }

// measureLoad measures one all-zero-mask masked load at va.
func (p *Prober) measureLoad(va paging.VirtAddr) float64 {
	t, r := p.M.Measure(avx.MaskedLoad(va, avx.ZeroMask))
	if r.Faulted {
		p.faults++
	}
	if p.Opt.ExtraJitterSigma > 0 {
		// Coarser timer: model as widened quantization jitter.
		t += p.Opt.ExtraJitterSigma
	}
	return t
}

// measureStore measures one all-zero-mask masked store at va.
func (p *Prober) measureStore(va paging.VirtAddr) float64 {
	t, r := p.M.Measure(avx.MaskedStore(va, avx.ZeroMask))
	if r.Faulted {
		p.faults++
	}
	return t
}

// ProbeResult is one page-probe outcome.
type ProbeResult struct {
	VA paging.VirtAddr
	// Cycles is the decision measurement (minimum of the sample set).
	Cycles float64
	// Fast reports Cycles at or below the calibrated threshold.
	Fast bool
}

// ProbeMapped runs the page-table attack (P2) at va: execute the masked
// load twice and measure the second run. On Intel, a mapped kernel page's
// translation is TLB-resident by the second run (fast); an unmapped page
// walks every time (slow). Never faults (P1: all-zero mask).
func (p *Prober) ProbeMapped(va paging.VirtAddr) ProbeResult {
	// First execution: populate TLB/PSC (its timing is discarded).
	p.M.ExecMasked(avx.MaskedLoad(va, avx.ZeroMask))
	k := p.Opt.ProbeSamples
	if k == 1 {
		t := p.measureLoad(va)
		return ProbeResult{VA: va, Cycles: t, Fast: p.Threshold.Classify(t)}
	}
	xs := p.samples(k)
	for s := 0; s < k; s++ {
		xs[s] = p.measureLoad(va)
	}
	v := p.reduce(xs)
	return ProbeResult{VA: va, Cycles: v, Fast: p.Threshold.Classify(v)}
}

// samples returns the reusable k-element sample scratch buffer.
func (p *Prober) samples(k int) []float64 {
	if cap(p.sampleBuf) < k {
		p.sampleBuf = make([]float64, k)
	}
	return p.sampleBuf[:k]
}

// ProbeMappedStore is ProbeMapped using masked stores (P6: slightly faster;
// used by the §IV-F store-scan variant).
func (p *Prober) ProbeMappedStore(va paging.VirtAddr) ProbeResult {
	p.M.ExecMasked(avx.MaskedStore(va, avx.ZeroMask))
	k := p.Opt.ProbeSamples
	xs := p.samples(k)
	for s := 0; s < k; s++ {
		xs[s] = p.measureStore(va)
	}
	best := p.reduce(xs)
	// The permission attack needs the store-specific threshold: a store
	// assist on a read-only page is cheaper than a load assist (P6) and
	// would pass the load threshold.
	return ProbeResult{VA: va, Cycles: best, Fast: p.StoreThreshold.Classify(best)}
}

// ProbeBatch probes n pages from start at the given stride with the
// double-execution page-table attack (P2) — the batched form of a
// ProbeMapped loop, bit-identical to it for the same machine state and
// noise stream, with the per-probe overhead (op plumbing, noise-sigma
// composition, sample reduction setup) amortized across the batch through
// machine.MeasureBatch. cycles[i] receives page i's decision measurement
// and fast[i] its threshold verdict; both slices must have length >= n.
func (p *Prober) ProbeBatch(start paging.VirtAddr, n int, stride uint64, cycles []float64, fast []bool) {
	p.probeBatchWindow(false, start, stride, 0, n, nil, cycles, fast)
}

// ProbeBatchStore is ProbeBatch with the masked-store attack (P5/P6):
// verdicts classify against the store threshold, like ProbeMappedStore.
func (p *Prober) ProbeBatchStore(start paging.VirtAddr, n int, stride uint64, cycles []float64, fast []bool) {
	p.probeBatchWindow(true, start, stride, 0, n, nil, cycles, fast)
}

// probeBatchWindow is the one batched probing primitive under ProbeBatch,
// ProbeBatchStore and every batched scan-engine chunk: it double-execution
// probes the non-skipped indices of [lo, hi) (page i at start + i*stride),
// writing each probed index's decision measurement into cycles[i-lo] and
// its threshold verdict into fast[i-lo], and returns the window-relative
// positions probed. Skipped indices consume no probe and no noise, and
// their window entries are left untouched. The probe sequence per index —
// one warm-up execution, ProbeSamples measured executions, jitter, then
// reduction — is exactly ProbeMapped's (ProbeMappedStore's for store), so
// the batched path is bit-identical to the per-VA one.
func (p *Prober) probeBatchWindow(store bool, start paging.VirtAddr, stride uint64, lo, hi int,
	skip func(int) bool, cycles []float64, fast []bool) []int {
	n := hi - lo
	if cap(p.batchOps) < n {
		p.batchOps = make([]avx.Op, 0, n)
		p.batchPos = make([]int, 0, n)
	}
	ops, pos := p.batchOps[:0], p.batchPos[:0]
	for i := lo; i < hi; i++ {
		if skip != nil && skip(i) {
			continue
		}
		va := start + paging.VirtAddr(uint64(i)*stride)
		if store {
			ops = append(ops, avx.MaskedStore(va, avx.ZeroMask))
		} else {
			ops = append(ops, avx.MaskedLoad(va, avx.ZeroMask))
		}
		pos = append(pos, i-lo)
	}
	vals := p.measureBatch(ops, !store)
	thr := &p.Threshold
	if store {
		thr = &p.StoreThreshold
	}
	for j, v := range vals {
		cycles[pos[j]] = v
		fast[pos[j]] = thr.Classify(v)
	}
	return pos
}

// measureBatch measures every op with the double-execution probe (one
// warm-up, ProbeSamples measured runs) and reduces each op's samples to its
// decision value with the configured estimator, returning one value per op
// in a reused buffer. Load probes add the configured extra timer jitter per
// sample, like measureLoad; store probes do not, like measureStore.
func (p *Prober) measureBatch(ops []avx.Op, loadJitter bool) []float64 {
	k := p.Opt.ProbeSamples
	if need := len(ops) * k; cap(p.batchMeas) < need {
		p.batchMeas = make([]float64, need)
	}
	meas := p.batchMeas[:len(ops)*k]
	p.faults += p.M.MeasureBatch(ops, 1, k, meas)
	if cap(p.batchVals) < len(ops) {
		p.batchVals = make([]float64, len(ops))
	}
	vals := p.batchVals[:len(ops)]
	jitter := 0.0
	if loadJitter && p.Opt.ExtraJitterSigma > 0 {
		jitter = p.Opt.ExtraJitterSigma
	}
	for j := range ops {
		xs := meas[j*k : (j+1)*k]
		if jitter > 0 {
			for t := range xs {
				xs[t] += jitter
			}
		}
		vals[j] = p.reduce(xs)
	}
	return vals
}

// fastWindow returns the reusable per-window fast-flag scratch buffer.
func (p *Prober) fastWindow(n int) []bool {
	if cap(p.batchFast) < n {
		p.batchFast = make([]bool, n)
	}
	return p.batchFast[:n]
}

// TermProbe is one walk-termination-level probe outcome (P3).
type TermProbe struct {
	VA     paging.VirtAddr
	Cycles float64
}

// ProbeTermLevel runs the page-table-level attack (P3) at va: evict the
// translation caches and page-table lines, then time a masked load. The
// latency now reflects the number of paging structures the walk reads —
// a walk that reaches a PT (4 KiB-mapped or 4 KiB-structured region) reads
// one more cold line than one stopping at the PD. Used on AMD (§IV-B),
// where mapped kernel pages never enter the TLB.
func (p *Prober) ProbeTermLevel(va paging.VirtAddr, samples int) TermProbe {
	if samples <= 0 {
		samples = 1
	}
	best := 0.0
	for s := 0; s < samples; s++ {
		p.M.EvictTranslation(va)
		t := p.measureLoad(va)
		if s == 0 || t < best {
			best = t
		}
	}
	return TermProbe{VA: va, Cycles: best}
}

// probeTermBatchWindow is the batched form of a ProbeTermLevel loop over
// the non-skipped indices of [lo, hi): each index's samples eviction+measure
// pairs run through machine.MeasureEvictedBatch (bit-identical to the
// per-VA loop — same eviction sequence, same noise draws, same clock
// charges), then reduce by minimum exactly as ProbeTermLevel does. cycles
// and verdicts receive the window-relative results; verdict = cycles above
// the walk-termination threshold. Skipped indices consume no eviction, no
// probe and no noise.
func (p *Prober) probeTermBatchWindow(start paging.VirtAddr, stride uint64, lo, hi int,
	skip func(int) bool, samples int, threshold float64, cycles []float64, verdicts []bool) {
	if samples <= 0 {
		samples = 1
	}
	n := hi - lo
	if cap(p.batchOps) < n {
		p.batchOps = make([]avx.Op, 0, n)
		p.batchPos = make([]int, 0, n)
	}
	ops, pos := p.batchOps[:0], p.batchPos[:0]
	for i := lo; i < hi; i++ {
		if skip != nil && skip(i) {
			continue
		}
		va := start + paging.VirtAddr(uint64(i)*stride)
		ops = append(ops, avx.MaskedLoad(va, avx.ZeroMask))
		pos = append(pos, i-lo)
	}
	if need := len(ops) * samples; cap(p.batchMeas) < need {
		p.batchMeas = make([]float64, need)
	}
	meas := p.batchMeas[:len(ops)*samples]
	p.faults += p.M.MeasureEvictedBatch(ops, samples, meas)
	// measureLoad adds the extra timer jitter to every sample; a constant
	// addend commutes with the min reduction.
	jitter := p.Opt.ExtraJitterSigma
	for j := range ops {
		best := meas[j*samples]
		for _, t := range meas[j*samples+1 : (j+1)*samples] {
			if t < best {
				best = t
			}
		}
		best += jitter
		cycles[pos[j]] = best
		verdicts[pos[j]] = best > threshold
	}
}

// ScanMapped probes n pages from start at the given stride with the
// page-table attack, then re-probes (min-of-3) every page whose verdict
// disagrees with both neighbours: interrupt spikes produce isolated false
// "unmapped" reads that would split a module or image run in two. The
// second pass is what the paper's 99.7–99.8 % module accuracy implies.
//
// The sweep always runs on the sharded engine (internal/scan): Workers >= 1
// fans chunks out across that many machine replicas, Workers == 0 runs the
// identical engine semantics inline on the prober's own machine. The merged
// output is bit-identical at every worker setting for a fixed machine seed
// (see runSweep).
func (p *Prober) ScanMapped(start paging.VirtAddr, n int, stride uint64) ([]bool, []float64) {
	res := p.scanMapped(start, n, stride)
	return res.Verdicts, res.Cycles
}

// ProbeTLB runs the TLB attack (P4) at va: a single timed masked load.
// If the kernel recently used the page, its translation is TLB-resident
// and the probe is fast; otherwise the probe walks. The caller controls
// eviction (evict → let victim run → probe).
func (p *Prober) ProbeTLB(va paging.VirtAddr) ProbeResult {
	t := p.measureLoad(va)
	return ProbeResult{VA: va, Cycles: t, Fast: p.Threshold.Classify(t)}
}

// ProbeTLBBatch runs the TLB attack (P4) over n pages from start at the
// given stride — the batched form of a ProbeTLB loop, bit-identical to it
// for the same machine state and noise stream: one timed masked load per
// page, in page order, no warm-up execution (the attack's whole point is
// reading the translation state the *victim* left behind). The op plumbing
// and noise-sigma composition are paid once per batch through
// machine.MeasureBatch, and all scratch lives on the prober, so the
// temporal tick loops (behavior spy, app fingerprinting) probe their
// per-target leading pages without allocating. cycles[i] receives page i's
// measurement and fast[i] its threshold verdict; both must have length >= n.
func (p *Prober) ProbeTLBBatch(start paging.VirtAddr, n int, stride uint64, cycles []float64, fast []bool) {
	if cap(p.batchOps) < n {
		p.batchOps = make([]avx.Op, 0, n)
		p.batchPos = make([]int, 0, n)
	}
	ops := p.batchOps[:0]
	for i := 0; i < n; i++ {
		ops = append(ops, avx.MaskedLoad(start+paging.VirtAddr(uint64(i)*stride), avx.ZeroMask))
	}
	if cap(p.batchMeas) < n {
		p.batchMeas = make([]float64, n)
	}
	meas := p.batchMeas[:n]
	p.faults += p.M.MeasureBatch(ops, 0, 1, meas)
	// measureLoad widens every load sample by the configured timer jitter.
	jitter := p.Opt.ExtraJitterSigma
	for i, v := range meas {
		v += jitter
		cycles[i] = v
		fast[i] = p.Threshold.Classify(v)
	}
}

// tickWindows returns the reusable per-tick measurement windows (cycles +
// fast flags) the temporal tick loops probe into: prober-owned so a
// steady-state tick allocates nothing, distinct from the batch scratch
// ProbeTLBBatch consumes internally.
func (p *Prober) tickWindows(n int) ([]float64, []bool) {
	if cap(p.tickCyc) < n {
		p.tickCyc = make([]float64, n)
	}
	return p.tickCyc[:n], p.fastWindow(n)
}

// PermClass is the permission classification the paired probe yields (P5).
// The masked load separates {r--, r-x, rw-} from {---, unmapped}; the
// masked store then separates rw- from r--/r-x. r-- and r-x are
// indistinguishable (Fig. 7 reports "(r--|r-x)"), and --- is
// indistinguishable from unmapped ("(---|unmap)").
type PermClass int

// Permission classes the attack can distinguish.
const (
	PermUnmapped PermClass = iota // --- or no mapping
	PermReadable                  // r-- or r-x
	PermWritable                  // rw-
)

// String renders the class in Figure 7's notation.
func (c PermClass) String() string {
	switch c {
	case PermUnmapped:
		return "(---|unmap)"
	case PermReadable:
		return "(r--|r-x)"
	case PermWritable:
		return "rw-"
	}
	return "?"
}

// ProbePerm runs the permission attack (P5) at va. The load probe uses an
// all-zero mask (never faults); for readable pages the store probe's
// timing separates writable (fast or dirty-assist) from read-only
// (store assist) destinations.
func (p *Prober) ProbePerm(va paging.VirtAddr) PermClass {
	load := p.ProbeMapped(va)
	if !load.Fast {
		return PermUnmapped
	}
	store := p.ProbeMappedStore(va)
	if store.Fast {
		// Store resolved without an inaccessible-page assist: writable.
		// (A first-write dirty assist times at the threshold; probing with
		// an all-zero mask never sets D, so a clean rw- page still shows
		// the fast store path — the assist only fires for real writes.)
		return PermWritable
	}
	return PermReadable
}
