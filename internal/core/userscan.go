package core

import (
	"sync/atomic"

	"repro/internal/paging"
	"repro/internal/scan"
	"repro/internal/userspace"
)

// UserRegion is one recovered same-class run of user pages (a Figure 7
// output row).
type UserRegion struct {
	Start, End paging.VirtAddr
	Class      PermClass
}

// Pages returns the region's span in pages.
func (r UserRegion) Pages() int { return int(uint64(r.End-r.Start) >> 12) }

// UserScanResult is the outcome of the fine-grained user-space scan
// (§IV-F).
type UserScanResult struct {
	Regions []UserRegion
	// LoadCycles and StoreCycles split the runtime between the masked-load
	// and masked-store probing (the paper reports 51 s for the load pass
	// and 44 s for the store pass). The fused scan attributes each
	// sub-probe to its side; the two-pass scan splits at the pass boundary.
	LoadCycles  uint64
	StoreCycles uint64
	TotalCycles uint64
}

// UserScan probes [start, end) at 4 KiB steps with the §IV-F methodology —
// masked loads filter out the unmapped/--- pages, masked stores classify
// the mapped pages into writable vs read-only — as one fused engine sweep:
// every chunk runs the load probes and then the store probes of its own
// pages, so the range is walked once, chunk setup is paid once, and the
// store warm-ups reuse translations the load probes just installed (see
// fusedWorker). Adjacent same-class pages merge into regions. Output is
// bit-identical at any Options.Workers setting, pooled or fresh;
// UserScanTwoPass keeps the serialized two-sweep shape for reference and
// the fused-vs-two-pass parity suite.
func UserScan(p *Prober, start, end paging.VirtAddr) UserScanResult {
	t0 := p.M.RDTSC()
	var res UserScanResult
	var loadSim, storeSim atomic.Uint64

	pages := int(uint64(end-start) >> 12)
	sres := runSweep(p, start, pages, paging.Page4K, 0, 0, nil, PermUnmapped,
		func(rp *Prober) scan.Worker[PermClass] { return newFusedWorker(rp, &loadSim, &storeSim) })

	res.LoadCycles = loadSim.Load()
	res.StoreCycles = storeSim.Load()
	res.TotalCycles = p.M.RDTSC() - t0
	res.Regions = mergeRegions(start, sres.Verdicts)
	return res
}

// UserScanTwoPass is the serialized two-sweep §IV-F scan the fused UserScan
// replaced: a full masked-load sweep, then a masked-store sweep over the
// pages the load pass read as mapped. Kept as the reference implementation
// — the fused scan must recover the same regions at a fixed seed (the
// parity suite enforces it) — and for ablations of the fusion itself.
func UserScanTwoPass(p *Prober, start, end paging.VirtAddr) UserScanResult {
	t0 := p.M.RDTSC()
	var res UserScanResult

	pages := int(uint64(end-start) >> 12)
	mapped, _ := p.ScanMapped(start, pages, paging.Page4K)
	t1 := p.M.RDTSC()
	res.LoadCycles = t1 - t0

	classes := p.scanStoreClasses(start, mapped)
	t2 := p.M.RDTSC()
	res.StoreCycles = t2 - t1
	res.TotalCycles = t2 - t0

	res.Regions = mergeRegions(start, classes)
	return res
}

// mergeRegions merges the per-page permission classes into maximal
// same-class regions, dropping unmapped spans (the Figure 7 output rows).
// Every produced region is class-homogeneous, non-empty, non-overlapping,
// in ascending order, and maximal: two adjacent regions either differ in
// class or are separated by at least one unmapped page.
func mergeRegions(start paging.VirtAddr, classes []PermClass) []UserRegion {
	var regions []UserRegion
	i, pages := 0, len(classes)
	for i < pages {
		if classes[i] == PermUnmapped {
			i++
			continue
		}
		j := i
		for j < pages && classes[j] == classes[i] {
			j++
		}
		regions = append(regions, UserRegion{
			Start: start + paging.VirtAddr(uint64(i)<<12),
			End:   start + paging.VirtAddr(uint64(j)<<12),
			Class: classes[i],
		})
		i = j
	}
	return regions
}

// scanUntilWindow is the engine-sweep window of ScanUntilMapped: large
// enough to amortize a sweep's setup and let workers shard it, small enough
// that a hit near the region base does not drag a huge overshoot behind it.
const scanUntilWindow = 2048

// ScanUntilMapped probes forward from start at 4 KiB steps until the first
// mapped page (the §IV-F base-address search: "linearly probe the entire
// virtual address range"), up to limit pages. Returns the found address and
// the 1-based position of the hit in probe order.
//
// The search runs on the sharded engine in windows of scanUntilWindow
// pages — the last non-engine sweep moved onto the one scan path — so it
// parallelizes under Options.Workers and inherits the engine's healing;
// within a window the probing (and simulated cost) covers the whole
// window, as a sharded attacker's would.
func ScanUntilMapped(p *Prober, start paging.VirtAddr, limit int) (paging.VirtAddr, int, bool) {
	for probed := 0; probed < limit; {
		n := limit - probed
		if n > scanUntilWindow {
			n = scanUntilWindow
		}
		mapped, _ := p.ScanMapped(start+paging.VirtAddr(uint64(probed)<<12), n, paging.Page4K)
		for i, ok := range mapped {
			if ok {
				return start + paging.VirtAddr(uint64(probed+i)<<12), probed + i + 1, true
			}
		}
		probed += n
	}
	return 0, limit, false
}

// LibrarySignatureMatch scores a recovered region sequence against a known
// library's section signature. The observable signature of an image is its
// run list with r--/r-x collapsed to Readable and --- omitted; the final
// writable run may exceed the on-disk signature (loader bss
// over-allocation — the Figure 7 pages missing from the maps file), so it
// matches with >=.
func LibrarySignatureMatch(regions []UserRegion, im userspace.Image) bool {
	want := expectedRuns(im)
	if len(regions) != len(want) {
		return false
	}
	for i, w := range want {
		got := regions[i]
		if got.Class != w.class {
			return false
		}
		last := i == len(want)-1
		if last && w.class == PermWritable {
			if got.Pages() < w.pages {
				return false
			}
			continue
		}
		if got.Pages() != w.pages {
			return false
		}
	}
	return true
}

type classRun struct {
	class PermClass
	pages int
}

// expectedRuns derives the attack-observable run list from an image:
// --- sections vanish (no PTEs), and *directly adjacent* same-class
// sections fuse into one observed region — but sections separated by a ---
// gap stay distinct regions.
func expectedRuns(im userspace.Image) []classRun {
	var runs []classRun
	gapped := true // treat the image start as a boundary
	for _, sec := range im.Sections {
		var c PermClass
		switch sec.Perm {
		case userspace.PermNone:
			gapped = true // the gap splits the observed regions
			continue
		case userspace.PermR, userspace.PermRX:
			c = PermReadable
		case userspace.PermRW:
			c = PermWritable
		}
		if n := len(runs); n > 0 && runs[n-1].class == c && !gapped {
			runs[n-1].pages += sec.Pages
		} else {
			runs = append(runs, classRun{class: c, pages: sec.Pages})
		}
		gapped = false
	}
	return runs
}

// FingerprintLibraries assigns library names to the recovered regions:
// for every known image, every position in the region list is tested for a
// signature match. Returns image name → base address of the match.
func FingerprintLibraries(regions []UserRegion, known []userspace.Image) map[string]paging.VirtAddr {
	out := make(map[string]paging.VirtAddr)
	for _, im := range known {
		want := expectedRuns(im)
		for i := 0; i+len(want) <= len(regions); i++ {
			if LibrarySignatureMatch(regions[i:i+len(want)], im) {
				out[im.Name] = regions[i].Start
				break
			}
		}
	}
	return out
}
