package core

import (
	"reflect"
	"testing"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
)

// engineProber boots a fresh victim with the given seed and scan options.
func engineProber(t *testing.T, seed uint64, workers int) (*Prober, *linux.Kernel) {
	t.Helper()
	m := machine.New(uarch.AlderLake12400F(), seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return p, k
}

// The headline determinism guarantee: for the same machine seed, a parallel
// scan (workers > 1) produces bit-identical output — verdicts AND raw cycle
// measurements — to the sequential scan (workers = 1).
func TestScanMappedParallelParity(t *testing.T) {
	const seed = 101
	const pages = 2048
	pSeq, _ := engineProber(t, seed, 1)
	mappedSeq, cyclesSeq := pSeq.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)

	for _, workers := range []int{2, 8} {
		pPar, _ := engineProber(t, seed, workers)
		mappedPar, cyclesPar := pPar.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
		if !reflect.DeepEqual(mappedSeq, mappedPar) {
			t.Fatalf("workers=%d: mapped bitmap differs from sequential", workers)
		}
		if !reflect.DeepEqual(cyclesSeq, cyclesPar) {
			t.Fatalf("workers=%d: cycle measurements differ from sequential", workers)
		}
	}
}

// Engine scans must agree with page-table ground truth (the heal pass
// removes isolated noise flips, so the match should be essentially exact).
func TestScanMappedEngineMatchesGroundTruth(t *testing.T) {
	p, _ := engineProber(t, 103, 4)
	const pages = 4096
	mapped, _ := p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
	errs := 0
	for i := 0; i < pages; i++ {
		va := linux.ModuleRegionBase + paging.VirtAddr(uint64(i)<<12)
		truth := p.M.KernelAS.Translate(va, nil).Mapped
		if mapped[i] != truth {
			errs++
		}
	}
	if rate := float64(errs) / pages; rate > 0.005 {
		t.Fatalf("engine scan error rate %.4f over %d pages", rate, pages)
	}
	if p.Faults() != 0 {
		t.Fatalf("engine scan delivered %d faults", p.Faults())
	}
}

// The engine folds the workers' simulated probing time back into the base
// machine, so RDTSC-based runtime accounting (Table I) keeps working.
func TestScanMappedEngineAdvancesSimulatedTime(t *testing.T) {
	p, _ := engineProber(t, 105, 4)
	t0 := p.M.RDTSC()
	p.ScanMapped(linux.ModuleRegionBase, 1024, paging.Page4K)
	elapsed := p.M.RDTSC() - t0
	// 1024 double-execution probes cost at least ~100 simulated cycles each.
	if elapsed < 1024*100 {
		t.Fatalf("simulated probing time not accounted: %d cycles", elapsed)
	}
}

// A full attack through the engine must still recover the kernel base and
// the loaded modules.
func TestAttacksThroughEngine(t *testing.T) {
	p, k := engineProber(t, 107, 8)
	res, err := KernelBase(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Base != k.Base {
		t.Fatalf("engine kernel base %#x, truth %#x", uint64(res.Base), uint64(k.Base))
	}

	table := SizeTable(k.ProcModules())
	mres := Modules(p, table)
	score := ScoreModules(mres, k.Modules, table)
	if acc := score.DetectionAccuracy(); acc < 0.98 {
		t.Fatalf("engine module detection accuracy %.3f", acc)
	}
}

// CloneTo must inherit calibration without touching the shared address
// space, and replica probes must classify like the parent's.
func TestCloneToInheritsCalibration(t *testing.T) {
	p, k := engineProber(t, 109, 0)
	clone := p.CloneTo(p.M.Clone(1234))
	// (SlowMean is NaN for one-sided calibration, so compare the decision
	// fields rather than the whole structs.)
	if clone.Threshold.Cycles != p.Threshold.Cycles || clone.StoreThreshold.Cycles != p.StoreThreshold.Cycles {
		t.Fatal("thresholds not inherited")
	}
	if !clone.ProbeMapped(k.Base).Fast {
		t.Fatal("replica probe of mapped kernel base read slow")
	}
	if clone.ProbeMapped(k.Base - 8*paging.Page2M).Fast {
		t.Fatal("replica probe of unmapped slot read fast")
	}
	// The clone's probing must not have perturbed the parent's TLB.
	if clone.M.TLB == p.M.TLB {
		t.Fatal("replica shares the parent's TLB")
	}
}
