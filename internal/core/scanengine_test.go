package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
	"repro/internal/userspace"
)

// engineProber boots a fresh victim with the given seed and scan options.
func engineProber(t *testing.T, seed uint64, workers int) (*Prober, *linux.Kernel) {
	t.Helper()
	return engineProberOpt(t, seed, Options{Workers: workers})
}

func engineProberOpt(t *testing.T, seed uint64, opt Options) (*Prober, *linux.Kernel) {
	t.Helper()
	m := machine.New(uarch.AlderLake12400F(), seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p, k
}

// The headline determinism guarantee: for the same machine seed, a parallel
// scan (workers > 1) produces bit-identical output — verdicts AND raw cycle
// measurements — to the sequential scans (workers = 1, and the inline
// workers = 0 path, which runs the same engine semantics on the prober's
// own machine).
func TestScanMappedParallelParity(t *testing.T) {
	const seed = 101
	const pages = 2048
	pSeq, _ := engineProber(t, seed, 1)
	mappedSeq, cyclesSeq := pSeq.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)

	for _, workers := range []int{0, 2, 8} {
		pPar, _ := engineProber(t, seed, workers)
		mappedPar, cyclesPar := pPar.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
		if !reflect.DeepEqual(mappedSeq, mappedPar) {
			t.Fatalf("workers=%d: mapped bitmap differs from sequential", workers)
		}
		if !reflect.DeepEqual(cyclesSeq, cyclesPar) {
			t.Fatalf("workers=%d: cycle measurements differ from sequential", workers)
		}
		if pSeq.M.RDTSC() != pPar.M.RDTSC() {
			t.Fatalf("workers=%d: simulated clock %d differs from sequential %d",
				workers, pPar.M.RDTSC(), pSeq.M.RDTSC())
		}
	}
}

// userScanWith boots a victim with a userspace process and runs the given
// §IV-F scan variant over its libc window.
func userScanWith(t *testing.T, seed uint64, opt Options, scan func(*Prober, paging.VirtAddr, paging.VirtAddr) UserScanResult) UserScanResult {
	t.Helper()
	m := machine.New(uarch.IceLake1065G7(), seed)
	if _, err := linux.Boot(m, linux.Config{Seed: seed}); err != nil {
		t.Fatal(err)
	}
	proc, err := userspace.Build(m, userspace.Config{Seed: seed, EntropyBits: 10, HideLastRWPage: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	libc := proc.Libs[0]
	return scan(p, libc.Base-4*paging.Page4K, libc.End()+8*paging.Page4K)
}

// userScanResult runs the default (fused) §IV-F scan.
func userScanResult(t *testing.T, seed uint64, opt Options) UserScanResult {
	t.Helper()
	return userScanWith(t, seed, opt, UserScan)
}

// The fused §IV-F user scan — load and store sub-probes, healing and
// region merge — must produce a bit-identical UserScanResult (regions AND
// cycle accounting) at workers 0, 1, 4 and 8, across seeds.
func TestUserScanWorkerParity(t *testing.T) {
	for _, seed := range []uint64{900, 901, 907} {
		base := userScanResult(t, seed, Options{Workers: 0})
		if len(base.Regions) == 0 {
			t.Fatalf("seed %d: user scan found no regions", seed)
		}
		for _, workers := range []int{1, 4, 8} {
			got := userScanResult(t, seed, Options{Workers: workers})
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("seed %d workers=%d: UserScanResult differs from workers=0\nbase: %+v\ngot:  %+v",
					seed, workers, base, got)
			}
		}
	}
}

// amdBaseResult runs the AMD (term-level sweep) kernel-base attack.
func amdBaseResult(t *testing.T, seed uint64, opt Options) KernelBaseResult {
	t.Helper()
	m := machine.New(uarch.Zen3_5600X(), seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KernelBase(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Base != k.Base {
		t.Fatalf("seed %d: AMD base %#x, truth %#x", seed, uint64(res.Base), uint64(k.Base))
	}
	return res
}

// The AMD walk-termination-level sweep must produce a bit-identical
// KernelBaseResult (per-slot samples AND runtime accounting) at workers
// 0, 1, 4 and 8, across seeds.
func TestTermLevelWorkerParity(t *testing.T) {
	for _, seed := range []uint64{300, 301} {
		base := amdBaseResult(t, seed, Options{Workers: 0})
		for _, workers := range []int{1, 4, 8} {
			got := amdBaseResult(t, seed, Options{Workers: workers})
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("seed %d workers=%d: term-level KernelBaseResult differs from workers=0", seed, workers)
			}
		}
	}
}

// Scans drawing workers from a session pool must match fresh-worker scans
// bit-exactly — including on reuse: the second scan runs on rebound
// replicas and must still match a fresh prober's second scan.
func TestPooledMatchesFresh(t *testing.T) {
	const seed = 113
	const pages = 2048

	freshP, _ := engineProber(t, seed, 4)
	var freshRuns [][]bool
	var freshCycles [][]float64
	for i := 0; i < 3; i++ {
		m, c := freshP.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
		freshRuns, freshCycles = append(freshRuns, m), append(freshCycles, c)
	}

	pool := NewScanPool()
	pooledP, _ := engineProberOpt(t, seed, Options{Workers: 4, Pool: pool})
	for i := 0; i < 3; i++ {
		m, c := pooledP.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
		if !reflect.DeepEqual(m, freshRuns[i]) || !reflect.DeepEqual(c, freshCycles[i]) {
			t.Fatalf("pooled scan %d differs from fresh-worker scan", i)
		}
	}
	if pool.Replicas() != 4 {
		t.Fatalf("pool created %d replicas for a 4-worker prober", pool.Replicas())
	}

	// The sharded user scan and the AMD term sweep must be pool-invariant
	// too (different sweep/verdict types through the same pool).
	usPool := NewScanPool()
	usFresh := userScanResult(t, 900, Options{Workers: 4})
	usPooled := userScanResult(t, 900, Options{Workers: 4, Pool: usPool})
	if !reflect.DeepEqual(usFresh, usPooled) {
		t.Fatal("pooled UserScanResult differs from fresh")
	}
	amdPool := NewScanPool()
	amdFresh := amdBaseResult(t, 300, Options{Workers: 4})
	amdPooled := amdBaseResult(t, 300, Options{Workers: 4, Pool: amdPool})
	if !reflect.DeepEqual(amdFresh, amdPooled) {
		t.Fatal("pooled AMD KernelBaseResult differs from fresh")
	}
}

// One pool must serve scans against different victims in one session: the
// replicas rebind to each new parent machine instead of re-cloning, and
// results still match fresh-worker runs.
func TestPoolReboundAcrossVictims(t *testing.T) {
	pool := NewScanPool()
	for trial, seed := range []uint64{121, 122, 123} {
		fresh, _ := engineProber(t, seed, 4)
		wantM, wantC := fresh.ScanMapped(linux.ModuleRegionBase, 1024, paging.Page4K)

		pooled, _ := engineProberOpt(t, seed, Options{Workers: 4, Pool: pool})
		gotM, gotC := pooled.ScanMapped(linux.ModuleRegionBase, 1024, paging.Page4K)
		if !reflect.DeepEqual(wantM, gotM) || !reflect.DeepEqual(wantC, gotC) {
			t.Fatalf("trial %d: pooled scan against new victim differs from fresh", trial)
		}
	}
	if pool.Replicas() != 4 {
		t.Fatalf("pool grew to %d replicas across victims, want 4", pool.Replicas())
	}
}

// Concurrent scans sharing one pool must not interfere: each gets
// exclusive replicas, and every result matches the same prober's solo run
// (run under -race to catch replica-state leaks).
func TestPoolConcurrentScans(t *testing.T) {
	const pages = 1024
	const iters = 3
	seeds := []uint64{131, 137}

	// Solo expectations, fresh workers.
	expect := make([][][]bool, len(seeds))
	for i, seed := range seeds {
		p, _ := engineProber(t, seed, 2)
		for k := 0; k < iters; k++ {
			m, _ := p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
			expect[i] = append(expect[i], m)
		}
	}

	pool := NewScanPool()
	probers := make([]*Prober, len(seeds))
	for i, seed := range seeds {
		probers[i], _ = engineProberOpt(t, seed, Options{Workers: 2, Pool: pool})
	}
	var wg sync.WaitGroup
	for i := range probers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				m, _ := probers[i].ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
				if !reflect.DeepEqual(m, expect[i][k]) {
					t.Errorf("prober %d scan %d: concurrent pooled result differs from solo run", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// The pool's point: a pooled re-scan must not pay the ~170-allocation
// Machine.Clone cost per worker again. Steady-state allocations per scan
// must sit far below even one clone, and far below the fresh-worker path.
func TestPooledRescanDoesNotReclone(t *testing.T) {
	const pages = 1024
	pool := NewScanPool()
	p, _ := engineProberOpt(t, 151, Options{Workers: 4, Pool: pool})
	p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K) // warm: clones the 4 replicas
	made := pool.Replicas()

	pooled := testing.AllocsPerRun(5, func() {
		p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
	})
	if pool.Replicas() != made {
		t.Fatalf("re-scan grew the pool: %d -> %d replicas", made, pool.Replicas())
	}

	pf, _ := engineProber(t, 151, 4)
	fresh := testing.AllocsPerRun(5, func() {
		pf.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
	})

	t.Logf("allocs/scan: pooled %.0f, fresh %.0f", pooled, fresh)
	if pooled > 150 {
		t.Errorf("pooled re-scan allocates %.0f/scan, want far below one ~170-alloc clone", pooled)
	}
	if pooled > fresh/3 {
		t.Errorf("pooled re-scan allocates %.0f/scan vs fresh %.0f — pool not amortizing clones", pooled, fresh)
	}
}

// Engine scans must agree with page-table ground truth (the heal pass
// removes noise flips, so the match should be essentially exact).
func TestScanMappedEngineMatchesGroundTruth(t *testing.T) {
	p, _ := engineProber(t, 103, 4)
	const pages = 4096
	mapped, _ := p.ScanMapped(linux.ModuleRegionBase, pages, paging.Page4K)
	errs := 0
	for i := 0; i < pages; i++ {
		va := linux.ModuleRegionBase + paging.VirtAddr(uint64(i)<<12)
		truth := p.M.KernelAS.Translate(va, nil).Mapped
		if mapped[i] != truth {
			errs++
		}
	}
	if rate := float64(errs) / pages; rate > 0.005 {
		t.Fatalf("engine scan error rate %.4f over %d pages", rate, pages)
	}
	if p.Faults() != 0 {
		t.Fatalf("engine scan delivered %d faults", p.Faults())
	}
}

// The engine folds the workers' simulated probing time back into the base
// machine, so RDTSC-based runtime accounting (Table I) keeps working.
func TestScanMappedEngineAdvancesSimulatedTime(t *testing.T) {
	p, _ := engineProber(t, 105, 4)
	t0 := p.M.RDTSC()
	p.ScanMapped(linux.ModuleRegionBase, 1024, paging.Page4K)
	elapsed := p.M.RDTSC() - t0
	// 1024 double-execution probes cost at least ~100 simulated cycles each.
	if elapsed < 1024*100 {
		t.Fatalf("simulated probing time not accounted: %d cycles", elapsed)
	}
}

// A full attack through the engine must still recover the kernel base and
// the loaded modules.
func TestAttacksThroughEngine(t *testing.T) {
	p, k := engineProber(t, 107, 8)
	res, err := KernelBase(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Base != k.Base {
		t.Fatalf("engine kernel base %#x, truth %#x", uint64(res.Base), uint64(k.Base))
	}

	table := SizeTable(k.ProcModules())
	mres := Modules(p, table)
	score := ScoreModules(mres, k.Modules, table)
	if acc := score.DetectionAccuracy(); acc < 0.98 {
		t.Fatalf("engine module detection accuracy %.3f", acc)
	}
}

// CloneTo must inherit calibration without touching the shared address
// space, and replica probes must classify like the parent's.
func TestCloneToInheritsCalibration(t *testing.T) {
	p, k := engineProber(t, 109, 0)
	clone := p.CloneTo(p.M.Clone(1234))
	// (SlowMean is NaN for one-sided calibration, so compare the decision
	// fields rather than the whole structs.)
	if clone.Threshold.Cycles != p.Threshold.Cycles || clone.StoreThreshold.Cycles != p.StoreThreshold.Cycles {
		t.Fatal("thresholds not inherited")
	}
	if !clone.ProbeMapped(k.Base).Fast {
		t.Fatal("replica probe of mapped kernel base read slow")
	}
	if clone.ProbeMapped(k.Base - 8*paging.Page2M).Fast {
		t.Fatal("replica probe of unmapped slot read fast")
	}
	// The clone's probing must not have perturbed the parent's TLB.
	if clone.M.TLB == p.M.TLB {
		t.Fatal("replica shares the parent's TLB")
	}
}
