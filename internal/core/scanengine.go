package core

import (
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/scan"
)

// ScanPool is a session-persistent pool of worker machine replicas for the
// sharded scan engine. Construct one per session (CLI run, experiment
// sweep, evaluation harness) and share it through Options.Pool: the first
// scan clones its workers, every later scan — even against a different
// victim machine — rebinds and reuses them, amortizing the ~170-allocation
// clone cost across the whole run. Pooled scans stay bit-identical to
// fresh-worker and sequential runs because every worker is noise-reseeded
// and translation-reset per chunk regardless of its history.
//
// Concurrent scans may share one pool (each replica is handed to exactly
// one scan at a time), but a single Prober must not run two scans
// concurrently.
type ScanPool struct {
	pool scan.Pool[*machine.Machine]
}

// NewScanPool creates an empty pool.
func NewScanPool() *ScanPool { return &ScanPool{} }

// Replicas returns how many worker machines the pool has ever cloned
// (steady-state scanning must not grow it).
func (sp *ScanPool) Replicas() int { return sp.pool.Made() }

// get returns a machine replica bound to parent's current state.
func (sp *ScanPool) get(parent *machine.Machine, seed uint64) *machine.Machine {
	m, reused := sp.pool.Get(func(ord int) *machine.Machine {
		return parent.Clone(seed + uint64(ord))
	})
	if reused {
		m.Rebind(parent)
	}
	return m
}

// put parks a replica in the pool after a scan, unbound from the victim so
// an idle pool does not pin a discarded machine's page tables and memory
// (the next get's Rebind restores the references).
func (sp *ScanPool) put(m *machine.Machine) {
	m.Unbind()
	sp.pool.Put(m)
}

// CloneTo creates a prober on a machine replica, inheriting this prober's
// calibrated thresholds and options without recalibrating. Calibration maps
// and unmaps scratch pages — a mutation the shared address space of a
// replica must not see — and the thresholds are a property of the preset
// and noise model, not of the machine instance, so reusing them is exactly
// what a real attacker's single calibration amortized over many probing
// threads would do.
func (p *Prober) CloneTo(m *machine.Machine) *Prober {
	return &Prober{
		M:              m,
		Opt:            p.Opt,
		Threshold:      p.Threshold,
		StoreThreshold: p.StoreThreshold,
		calibrated:     p.calibrated,
		scratchVA:      p.scratchVA,
	}
}

// acquireReplica returns a prober on a worker machine replica: drawn from
// the session pool when Options.Pool is set, freshly cloned otherwise.
func (p *Prober) acquireReplica(seed uint64, id int) *Prober {
	if pool := p.Opt.Pool; pool != nil {
		return p.CloneTo(pool.get(p.M, seed))
	}
	return p.CloneTo(p.M.Clone(seed + uint64(id)))
}

// releaseReplicas folds the workers' state back into the parent after a
// scan — faults and performance counters, so RDTSC/PMC-based accounting in
// the attack drivers is unchanged — and returns pooled machines to the
// session pool for the next scan.
func (p *Prober) releaseReplicas(replicas []*Prober) {
	for _, rp := range replicas {
		p.faults += rp.faults
		p.M.Counters.Merge(rp.M.Counters)
		if pool := p.Opt.Pool; pool != nil {
			rp.M.Counters.Reset()
			pool.put(rp.M)
		}
	}
}

// workerBase implements the scan.Worker chunk lifecycle shared by every
// sweep type: per-chunk noise reseed + translation reset (the determinism
// contract) and simulated-cycle accounting.
type workerBase struct {
	p  *Prober
	t0 uint64
}

func (w *workerBase) Start(chunkSeed uint64) {
	w.p.M.ReseedNoise(chunkSeed)
	w.p.M.ResetTranslationState()
	w.t0 = w.p.M.RDTSC()
}

func (w *workerBase) Elapsed() uint64 { return w.p.M.RDTSC() - w.t0 }

// mappedWorker probes with the double-execution page-table attack (P2):
// verdict = "translation resolved fast" (mapped).
type mappedWorker struct{ workerBase }

func (w *mappedWorker) Probe(va paging.VirtAddr) scan.Sample[bool] {
	pr := w.p.ProbeMapped(va)
	return scan.Sample[bool]{Cycles: pr.Cycles, Verdict: pr.Fast}
}

func (w *mappedWorker) Classify(cycles float64) bool {
	return w.p.Threshold.Classify(cycles)
}

// storeWorker probes with the masked-store attack (P5/P6): verdict =
// writable vs read-only, for pages the load pass already read as mapped.
type storeWorker struct{ workerBase }

func (w *storeWorker) Probe(va paging.VirtAddr) scan.Sample[PermClass] {
	pr := w.p.ProbeMappedStore(va)
	return scan.Sample[PermClass]{Cycles: pr.Cycles, Verdict: storeClass(pr.Fast)}
}

func (w *storeWorker) Classify(cycles float64) PermClass {
	return storeClass(w.p.StoreThreshold.Classify(cycles))
}

func storeClass(fast bool) PermClass {
	if fast {
		return PermWritable
	}
	return PermReadable
}

// termWorker probes with the walk-termination-level attack (P3): verdict =
// "the boundary walk reaches a PT" (a 4 KiB-structured slot).
type termWorker struct {
	workerBase
	samples   int
	threshold float64
}

func (w *termWorker) Probe(va paging.VirtAddr) scan.Sample[bool] {
	tp := w.p.ProbeTermLevel(va, w.samples)
	return scan.Sample[bool]{Cycles: tp.Cycles, Verdict: tp.Cycles > w.threshold}
}

func (w *termWorker) Classify(cycles float64) bool { return cycles > w.threshold }

// runSweep is the one scan path every large VA sweep takes. It shards the
// range across Options.Workers machine replicas (pooled or fresh), merges
// deterministically, and folds the workers' simulated probing cycles,
// performance counters and fault counts back into the prober's machine, so
// RDTSC-based runtime accounting in the attack drivers is unchanged:
// parallelism buys host wall-clock, not simulated attacker time.
//
// Workers == 0 runs the identical engine semantics inline: a single worker
// that *is* the prober's own machine (no clone, no goroutine fan-out
// beyond the engine's one). Because a worker's chunk output is a pure
// function of (victim state, chunk seed) — never of which machine ran it —
// the inline, replicated, and pooled paths produce bit-identical results
// at every worker count for a fixed machine seed.
func runSweep[V comparable](p *Prober, start paging.VirtAddr, n int, stride uint64,
	heal int, skip func(int) bool, skipV V,
	wrap func(*Prober) scan.Worker[V]) scan.Result[V] {
	p.scanEpoch++
	seed := p.M.Seed() ^ (p.scanEpoch * 0x9e3779b97f4a7c15)
	inline := p.Opt.Workers == 0
	nw := p.Opt.Workers
	if inline {
		nw = 1
	}
	var replicas []*Prober
	eng := scan.New(scan.Config{
		Workers:     nw,
		ChunkPages:  p.Opt.ScanChunkPages,
		Seed:        seed,
		HealSamples: heal,
	}, func(id int) scan.Worker[V] {
		if inline {
			return wrap(p)
		}
		rp := p.acquireReplica(seed, id)
		replicas = append(replicas, rp)
		return wrap(rp)
	})
	if skip != nil {
		eng.SetSkip(skip, skipV)
	}
	res := eng.Scan(start, n, stride)
	p.releaseReplicas(replicas)
	if !inline {
		// Inline probing advanced the prober's clock directly; replica
		// probing happened on private clocks and is charged here.
		p.M.AdvanceCycles(res.SimCycles)
	}
	// Leave the parent in the same canonical post-sweep state on every
	// path: the inline run reseeded the parent's noise and flushed its
	// translation caches per chunk, the replica run left them untouched —
	// either way the machine now gets a sweep-derived noise stream and
	// empty translation state, so *later* direct probes (the TLB attack,
	// the KPTI entry-point search) are also bit-identical across worker
	// settings, not just the sweep output itself. Architecturally this is
	// the honest state anyway: a multi-thousand-probe sweep displaces
	// every translation structure.
	p.M.ReseedNoise(scan.StreamSeed(seed, scan.PostSweepStream))
	p.M.ResetTranslationState()
	return res
}

// scanMapped runs the P2 mapped/unmapped sweep on the engine.
func (p *Prober) scanMapped(start paging.VirtAddr, n int, stride uint64) scan.Result[bool] {
	return runSweep(p, start, n, stride, 0, nil, false,
		func(rp *Prober) scan.Worker[bool] { return &mappedWorker{workerBase{p: rp}} })
}

// scanStoreClasses runs the §IV-F store-classification pass on the engine:
// every page the load pass read as mapped is probed with the masked-store
// attack and classified writable vs read-only (including the min-of-3
// healing re-probe of isolated verdict flips); unmapped pages are skipped
// outright — no probe, no noise draw — and come back PermUnmapped.
func (p *Prober) scanStoreClasses(start paging.VirtAddr, mapped []bool) []PermClass {
	res := runSweep(p, start, len(mapped), paging.Page4K, 0,
		func(i int) bool { return !mapped[i] }, PermUnmapped,
		func(rp *Prober) scan.Worker[PermClass] { return &storeWorker{workerBase{p: rp}} })
	return res.Verdicts
}

// ScanTermLevel runs the walk-termination-level sweep (P3) over n slots at
// the given stride: each slot is sampled `samples` times with targeted
// eviction and reduced by minimum, and the verdict reports whether the
// slot's boundary walk reads a PT (4 KiB-structured region). Healing is
// disabled — the AMD kernel-base signal *is* a handful of isolated
// PT-terminating slots, exactly what a neighbour-disagreement heal would
// re-probe away.
func (p *Prober) ScanTermLevel(start paging.VirtAddr, n int, stride uint64, samples int, threshold float64) ([]bool, []float64) {
	res := runSweep(p, start, n, stride, -1, nil, false,
		func(rp *Prober) scan.Worker[bool] {
			return &termWorker{workerBase: workerBase{p: rp}, samples: samples, threshold: threshold}
		})
	return res.Verdicts, res.Cycles
}
