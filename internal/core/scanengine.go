package core

import (
	"math"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
	"repro/internal/scan"
)

// ScanPool is a session-persistent pool of worker prober replicas for the
// sharded scan engine. Construct one per session (CLI run, experiment
// sweep, evaluation harness) and share it through Options.Pool: the first
// scan clones its workers, every later scan — even against a different
// victim machine — rebinds and reuses them, amortizing the ~170-allocation
// machine clone cost across the whole run. The pool holds whole *Prober
// replicas, not bare machines: each replica carries its batch scratch
// buffers (masked-op slices, measurement windows) across scans, so a
// pooled re-scan's allocations stop growing with the worker count. Pooled
// scans stay bit-identical to fresh-worker and sequential runs because
// every worker is noise-reseeded and translation-reset per chunk
// regardless of its history.
//
// Concurrent scans may share one pool (each replica is handed to exactly
// one scan at a time), but a single Prober must not run two scans
// concurrently.
type ScanPool struct {
	pool scan.Pool[*Prober]
}

// NewScanPool creates an empty pool.
func NewScanPool() *ScanPool { return &ScanPool{} }

// Replicas returns how many worker replicas the pool has ever cloned
// (steady-state scanning must not grow it).
func (sp *ScanPool) Replicas() int { return sp.pool.Made() }

// get returns a prober replica bound to parent's current machine state and
// calibration.
func (sp *ScanPool) get(parent *Prober, seed uint64) *Prober {
	rp, reused := sp.pool.Get(func(ord int) *Prober {
		return parent.CloneTo(parent.M.Clone(seed + uint64(ord)))
	})
	if reused {
		rp.M.Rebind(parent.M)
		rp.adopt(parent)
	}
	return rp
}

// put parks a replica in the pool after a scan, unbound from the victim so
// an idle pool does not pin a discarded machine's page tables and memory
// (the next get's Rebind restores the references).
func (sp *ScanPool) put(rp *Prober) {
	rp.M.Unbind()
	sp.pool.Put(rp)
}

// adopt re-targets a pooled prober replica at parent's calibration and
// options (the prober-level counterpart of machine.Rebind): thresholds are
// a property of the preset and noise model, so copying them is all a
// replica needs to probe for a new parent — its scratch buffers stay.
func (rp *Prober) adopt(parent *Prober) {
	rp.Opt = parent.Opt
	rp.Threshold = parent.Threshold
	rp.StoreThreshold = parent.StoreThreshold
	rp.calibrated = parent.calibrated
	rp.scratchVA = parent.scratchVA
}

// CloneTo creates a prober on a machine replica, inheriting this prober's
// calibrated thresholds and options without recalibrating. Calibration maps
// and unmaps scratch pages — a mutation the shared address space of a
// replica must not see — and the thresholds are a property of the preset
// and noise model, not of the machine instance, so reusing them is exactly
// what a real attacker's single calibration amortized over many probing
// threads would do.
func (p *Prober) CloneTo(m *machine.Machine) *Prober {
	return &Prober{
		M:              m,
		Opt:            p.Opt,
		Threshold:      p.Threshold,
		StoreThreshold: p.StoreThreshold,
		calibrated:     p.calibrated,
		scratchVA:      p.scratchVA,
	}
}

// acquireReplica returns a prober on a worker machine replica: drawn from
// the session pool when Options.Pool is set, freshly cloned otherwise.
func (p *Prober) acquireReplica(seed uint64, id int) *Prober {
	if pool := p.Opt.Pool; pool != nil {
		return pool.get(p, seed)
	}
	return p.CloneTo(p.M.Clone(seed + uint64(id)))
}

// releaseReplicas folds the workers' state back into the parent after a
// scan — faults and performance counters, so RDTSC/PMC-based accounting in
// the attack drivers is unchanged — and returns pooled replicas to the
// session pool for the next scan.
func (p *Prober) releaseReplicas(replicas []*Prober) {
	for _, rp := range replicas {
		p.faults += rp.faults
		p.M.Counters.Merge(rp.M.Counters)
		if pool := p.Opt.Pool; pool != nil {
			rp.faults = 0
			rp.M.Counters.Reset()
			pool.put(rp)
		}
	}
}

// workerBase implements the scan.Worker chunk lifecycle shared by every
// sweep type: per-chunk noise reseed + translation reset (the determinism
// contract) and simulated-cycle accounting.
type workerBase struct {
	p  *Prober
	t0 uint64
}

func (w *workerBase) Start(chunkSeed uint64) {
	w.p.M.ReseedNoise(chunkSeed)
	w.p.M.ResetTranslationState()
	w.t0 = w.p.M.RDTSC()
}

func (w *workerBase) Elapsed() uint64 { return w.p.M.RDTSC() - w.t0 }

// mappedWorker probes with the double-execution page-table attack (P2):
// verdict = "translation resolved fast" (mapped).
type mappedWorker struct{ workerBase }

func (w *mappedWorker) Probe(va paging.VirtAddr) scan.Sample[bool] {
	pr := w.p.ProbeMapped(va)
	return scan.Sample[bool]{Cycles: pr.Cycles, Verdict: pr.Fast}
}

// ProbeChunk hands the whole chunk to the batched probe primitive; the
// verdict window doubles as the fast-flag buffer, so results land directly
// in the engine's per-shard result windows.
func (w *mappedWorker) ProbeChunk(start paging.VirtAddr, stride uint64, lo, hi int,
	skip func(int) bool, skipV bool, verdicts []bool, cycles []float64) {
	if skip != nil {
		for i := lo; i < hi; i++ {
			if skip(i) {
				verdicts[i-lo] = skipV
			}
		}
	}
	w.p.probeBatchWindow(false, start, stride, lo, hi, skip, cycles, verdicts)
}

func (w *mappedWorker) Classify(cycles float64) bool {
	return w.p.Threshold.Classify(cycles)
}

// storeWorker probes with the masked-store attack (P5/P6): verdict =
// writable vs read-only, for pages the load pass already read as mapped.
type storeWorker struct{ workerBase }

func (w *storeWorker) Probe(va paging.VirtAddr) scan.Sample[PermClass] {
	pr := w.p.ProbeMappedStore(va)
	return scan.Sample[PermClass]{Cycles: pr.Cycles, Verdict: storeClass(pr.Fast)}
}

// ProbeChunk batches the chunk's store probes, then maps the fast flags to
// permission classes in the verdict window (skipped pages get skipV —
// PermUnmapped in the user scan).
func (w *storeWorker) ProbeChunk(start paging.VirtAddr, stride uint64, lo, hi int,
	skip func(int) bool, skipV PermClass, verdicts []PermClass, cycles []float64) {
	p := w.p
	if skip != nil {
		for i := lo; i < hi; i++ {
			if skip(i) {
				verdicts[i-lo] = skipV
			}
		}
	}
	fast := p.fastWindow(hi - lo)
	pos := p.probeBatchWindow(true, start, stride, lo, hi, skip, cycles, fast)
	for _, j := range pos {
		verdicts[j] = storeClass(fast[j])
	}
}

func (w *storeWorker) Classify(cycles float64) PermClass {
	return storeClass(w.p.StoreThreshold.Classify(cycles))
}

func storeClass(fast bool) PermClass {
	if fast {
		return PermWritable
	}
	return PermReadable
}

// fusedWorker mounts the fused §IV-F user scan: a single sweep whose
// verdict carries both the load (mapped) and store (writable)
// classification per VA, replacing the two serialized engine sweeps. Each
// chunk runs a load sub-pass over every page and then a store sub-pass over
// the pages the load sub-pass read as mapped — one pass over the range,
// one chunk setup, and the store warm-ups reuse the translations the load
// probes just installed (the simulated attacker pays fewer walks than the
// two-pass scan, exactly like a real pipelined attacker would).
//
// Determinism: the chunk's load and store measurements draw from two
// separate noise streams derived from the chunk seed, so a page's store
// noise does not depend on how many pages before it were mapped — the
// sweep stays bit-identical at any worker count, pooled or fresh. The
// engine drives chunks through ProbeChunk and heals through HealProbe;
// Probe/Classify exist to satisfy the Worker interface.
type fusedWorker struct {
	workerBase
	loadNoise  rng.Source
	storeNoise rng.Source
	// fb and lo expose the load sub-pass's fast flags to storeSkip (built
	// once as a method value so per-chunk probing allocates nothing).
	fb          []bool
	lo          int
	storeSkipFn func(int) bool
	// loadSim and storeSim split the sweep's simulated cycles by sub-pass
	// (the paper reports the §IV-F load and store runtimes separately);
	// they are shared by all workers of one scan and summed commutatively,
	// so the split is as worker-count-invariant as the verdicts.
	loadSim, storeSim *atomic.Uint64
}

func newFusedWorker(rp *Prober, loadSim, storeSim *atomic.Uint64) *fusedWorker {
	w := &fusedWorker{workerBase: workerBase{p: rp}, loadSim: loadSim, storeSim: storeSim}
	w.storeSkipFn = w.storeSkip
	return w
}

// Start derives the chunk's two noise streams and resets translation state.
// The machine's own stream is left untouched; ProbeChunk and HealProbe swap
// the sub-pass streams in and out around their measurements.
func (w *fusedWorker) Start(chunkSeed uint64) {
	w.loadNoise.Reseed(scan.StreamSeed(chunkSeed, 0))
	w.storeNoise.Reseed(scan.StreamSeed(chunkSeed, 1))
	w.p.M.ResetTranslationState()
	w.t0 = w.p.M.RDTSC()
}

// storeSkip reports whether the store sub-pass skips index i: the load
// sub-pass read it as unmapped (or the engine skipped it outright).
func (w *fusedWorker) storeSkip(i int) bool { return !w.fb[i-w.lo] }

func (w *fusedWorker) ProbeChunk(start paging.VirtAddr, stride uint64, lo, hi int,
	skip func(int) bool, skipV PermClass, verdicts []PermClass, cycles []float64) {
	p := w.p
	fb := p.fastWindow(hi - lo)
	if skip != nil {
		for i := lo; i < hi; i++ {
			if skip(i) {
				verdicts[i-lo] = skipV
				fb[i-lo] = false // keep the store sub-pass off skipped pages
			}
		}
	}
	t0 := p.M.RDTSC()
	orig := p.M.SwapNoise(&w.loadNoise)
	w.fb, w.lo = fb, lo
	pos := p.probeBatchWindow(false, start, stride, lo, hi, skip, cycles, fb)
	for _, j := range pos {
		if !fb[j] {
			verdicts[j] = PermUnmapped
		}
	}
	t1 := p.M.RDTSC()
	w.loadSim.Add(t1 - t0)

	// Store sub-pass over the load-fast pages, on the chunk's store stream.
	// probeBatchWindow consults the skip function for every index before it
	// writes any store fast flag back into fb, so reusing fb is safe. A
	// mapped page's Cycles entry becomes its store measurement — the
	// measurement its final verdict was derived from.
	p.M.SwapNoise(&w.storeNoise)
	spos := p.probeBatchWindow(true, start, stride, lo, hi, w.storeSkipFn, cycles, fb)
	for _, j := range spos {
		verdicts[j] = storeClass(fb[j])
	}
	p.M.SwapNoise(orig)
	w.storeSim.Add(p.M.RDTSC() - t1)
}

// HealProbe re-decides one disagreeing page with min-of-samples re-probes
// of both sub-probes: first the load decision (merging the first-pass value
// only when it is load evidence — an unmapped verdict's cycles are its load
// measurement, a mapped verdict's are its store measurement), then, for
// pages that heal to mapped, the store classification.
func (w *fusedWorker) HealProbe(va paging.VirtAddr, samples int, cycles float64, v PermClass) (float64, PermClass) {
	p := w.p
	t0 := p.M.RDTSC()
	orig := p.M.SwapNoise(&w.loadNoise)
	best := math.Inf(1)
	if v == PermUnmapped {
		best = cycles
	}
	for s := 0; s < samples; s++ {
		if pr := p.ProbeMapped(va); pr.Cycles < best {
			best = pr.Cycles
		}
	}
	t1 := p.M.RDTSC()
	w.loadSim.Add(t1 - t0)
	if !p.Threshold.Classify(best) {
		p.M.SwapNoise(orig)
		return best, PermUnmapped
	}
	p.M.SwapNoise(&w.storeNoise)
	sbest := math.Inf(1)
	if v != PermUnmapped {
		sbest = cycles
	}
	for s := 0; s < samples; s++ {
		if pr := p.ProbeMappedStore(va); pr.Cycles < sbest {
			sbest = pr.Cycles
		}
	}
	p.M.SwapNoise(orig)
	w.storeSim.Add(p.M.RDTSC() - t1)
	return sbest, storeClass(p.StoreThreshold.Classify(sbest))
}

// Probe runs the fused probe for a single VA (the engine drives whole
// chunks through ProbeChunk; this exists for the Worker interface).
func (w *fusedWorker) Probe(va paging.VirtAddr) scan.Sample[PermClass] {
	orig := w.p.M.SwapNoise(&w.loadNoise)
	pr := w.p.ProbeMapped(va)
	if !pr.Fast {
		w.p.M.SwapNoise(orig)
		return scan.Sample[PermClass]{Cycles: pr.Cycles, Verdict: PermUnmapped}
	}
	w.p.M.SwapNoise(&w.storeNoise)
	spr := w.p.ProbeMappedStore(va)
	w.p.M.SwapNoise(orig)
	return scan.Sample[PermClass]{Cycles: spr.Cycles, Verdict: storeClass(spr.Fast)}
}

// Classify approximates a verdict from one measurement under the fused
// Cycles convention (load value for unmapped pages, store value for
// mapped). The engine never calls it for fused sweeps — healing goes
// through HealProbe, which re-derives the two-channel verdict itself.
func (w *fusedWorker) Classify(cycles float64) PermClass {
	if !w.p.Threshold.Classify(cycles) {
		return PermUnmapped
	}
	return storeClass(w.p.StoreThreshold.Classify(cycles))
}

// termWorker probes with the walk-termination-level attack (P3): verdict =
// "the boundary walk reaches a PT" (a 4 KiB-structured slot).
type termWorker struct {
	workerBase
	samples   int
	threshold float64
}

func (w *termWorker) Probe(va paging.VirtAddr) scan.Sample[bool] {
	tp := w.p.ProbeTermLevel(va, w.samples)
	return scan.Sample[bool]{Cycles: tp.Cycles, Verdict: tp.Cycles > w.threshold}
}

// ProbeChunk batches the chunk's eviction+measure pairs through
// machine.MeasureEvictedBatch — the Zen 3 term-level sweep's counterpart of
// the mapped/store sweeps' batched chunks, bit-identical to the per-VA
// ProbeTermLevel loop.
func (w *termWorker) ProbeChunk(start paging.VirtAddr, stride uint64, lo, hi int,
	skip func(int) bool, skipV bool, verdicts []bool, cycles []float64) {
	if skip != nil {
		for i := lo; i < hi; i++ {
			if skip(i) {
				verdicts[i-lo] = skipV
			}
		}
	}
	w.p.probeTermBatchWindow(start, stride, lo, hi, skip, w.samples, w.threshold, cycles, verdicts)
}

func (w *termWorker) Classify(cycles float64) bool { return cycles > w.threshold }

// runSweep is the one scan path every sharded sweep takes — large VA
// ranges (probe indices are pages/slots) and temporal attacks alike (probe
// indices are time ticks; see spyWorker/fpWorker). It shards the index
// range across Options.Workers machine replicas (pooled or fresh), merges
// deterministically, and folds the workers' simulated probing cycles,
// performance counters and fault counts back into the prober's machine, so
// RDTSC-based runtime accounting in the attack drivers is unchanged:
// parallelism buys host wall-clock, not simulated attacker time. chunk
// overrides the shard granularity (0 = Options.ScanChunkPages, then the
// engine default).
//
// Workers == 0 runs the identical engine semantics inline: a single worker
// that *is* the prober's own machine (no clone, no goroutine fan-out
// beyond the engine's one). Because a worker's chunk output is a pure
// function of (victim state, chunk seed) — never of which machine ran it —
// the inline, replicated, and pooled paths produce bit-identical results
// at every worker count for a fixed machine seed.
func runSweep[V comparable](p *Prober, start paging.VirtAddr, n int, stride uint64,
	chunk int, heal int, skip func(int) bool, skipV V,
	wrap func(*Prober) scan.Worker[V]) scan.Result[V] {
	p.scanEpoch++
	seed := p.M.Seed() ^ (p.scanEpoch * 0x9e3779b97f4a7c15)
	inline := p.Opt.Workers == 0
	nw := p.Opt.Workers
	if inline {
		nw = 1
	}
	if chunk <= 0 {
		chunk = p.Opt.ScanChunkPages
	}
	replicas := p.replicaBuf[:0]
	eng := scan.New(scan.Config{
		Workers:     nw,
		ChunkPages:  chunk,
		Seed:        seed,
		HealSamples: heal,
	}, func(id int) scan.Worker[V] {
		if inline {
			return wrap(p)
		}
		rp := p.acquireReplica(seed, id)
		replicas = append(replicas, rp)
		return wrap(rp)
	})
	if skip != nil {
		eng.SetSkip(skip, skipV)
	}
	res := eng.Scan(start, n, stride)
	p.releaseReplicas(replicas)
	// Drop the replica pointers before truncating: in the fresh-worker path
	// the clones are garbage after the merge, and a retained pointer in the
	// buffer's backing array would pin a whole Machine replica.
	clear(replicas)
	p.replicaBuf = replicas[:0]
	if !inline {
		// Inline probing advanced the prober's clock directly; replica
		// probing happened on private clocks and is charged here.
		p.M.AdvanceCycles(res.SimCycles)
	}
	// Leave the parent in the same canonical post-sweep state on every
	// path: the inline run reseeded the parent's noise and flushed its
	// translation caches per chunk, the replica run left them untouched —
	// either way the machine now gets a sweep-derived noise stream and
	// empty translation state, so *later* direct probes (the TLB attack,
	// the KPTI entry-point search) are also bit-identical across worker
	// settings, not just the sweep output itself. Architecturally this is
	// the honest state anyway: a multi-thousand-probe sweep displaces
	// every translation structure.
	p.M.ReseedNoise(scan.StreamSeed(seed, scan.PostSweepStream))
	p.M.ResetTranslationState()
	return res
}

// scanMapped runs the P2 mapped/unmapped sweep on the engine.
func (p *Prober) scanMapped(start paging.VirtAddr, n int, stride uint64) scan.Result[bool] {
	return runSweep(p, start, n, stride, 0, 0, nil, false,
		func(rp *Prober) scan.Worker[bool] { return &mappedWorker{workerBase{p: rp}} })
}

// scanStoreClasses runs the §IV-F store-classification pass on the engine:
// every page the load pass read as mapped is probed with the masked-store
// attack and classified writable vs read-only (including the min-of-3
// healing re-probe of isolated verdict flips); unmapped pages are skipped
// outright — no probe, no noise draw — and come back PermUnmapped.
func (p *Prober) scanStoreClasses(start paging.VirtAddr, mapped []bool) []PermClass {
	res := runSweep(p, start, len(mapped), paging.Page4K, 0, 0,
		func(i int) bool { return !mapped[i] }, PermUnmapped,
		func(rp *Prober) scan.Worker[PermClass] { return &storeWorker{workerBase{p: rp}} })
	return res.Verdicts
}

// ScanTermLevel runs the walk-termination-level sweep (P3) over n slots at
// the given stride: each slot is sampled `samples` times with targeted
// eviction and reduced by minimum, and the verdict reports whether the
// slot's boundary walk reads a PT (4 KiB-structured region). Healing is
// disabled — the AMD kernel-base signal *is* a handful of isolated
// PT-terminating slots, exactly what a neighbour-disagreement heal would
// re-probe away.
func (p *Prober) ScanTermLevel(start paging.VirtAddr, n int, stride uint64, samples int, threshold float64) ([]bool, []float64) {
	res := runSweep(p, start, n, stride, 0, -1, nil, false,
		func(rp *Prober) scan.Worker[bool] {
			return &termWorker{workerBase: workerBase{p: rp}, samples: samples, threshold: threshold}
		})
	return res.Verdicts, res.Cycles
}
