package core

import (
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/scan"
)

// CloneTo creates a prober on a machine replica, inheriting this prober's
// calibrated thresholds and options without recalibrating. Calibration maps
// and unmaps scratch pages — a mutation the shared address space of a
// replica must not see — and the thresholds are a property of the preset
// and noise model, not of the machine instance, so reusing them is exactly
// what a real attacker's single calibration amortized over many probing
// threads would do.
func (p *Prober) CloneTo(m *machine.Machine) *Prober {
	return &Prober{
		M:              m,
		Opt:            p.Opt,
		Threshold:      p.Threshold,
		StoreThreshold: p.StoreThreshold,
		calibrated:     p.calibrated,
		scratchVA:      p.scratchVA,
	}
}

// scanWorker adapts a cloned Prober to scan.Worker.
type scanWorker struct {
	p  *Prober
	t0 uint64
}

func (w *scanWorker) Start(chunkSeed uint64) {
	w.p.M.ReseedNoise(chunkSeed)
	w.p.M.ResetTranslationState()
	w.t0 = w.p.M.RDTSC()
}

func (w *scanWorker) Probe(va paging.VirtAddr) scan.Sample {
	pr := w.p.ProbeMapped(va)
	return scan.Sample{Cycles: pr.Cycles, Fast: pr.Fast}
}

func (w *scanWorker) Classify(cycles float64) bool {
	return w.p.Threshold.Classify(cycles)
}

func (w *scanWorker) Elapsed() uint64 { return w.p.M.RDTSC() - w.t0 }

// scanMappedEngine runs ScanMapped on the sharded engine: one machine
// replica per worker, chunk-deterministic noise, and a deterministic merge
// plus healing pass (see internal/scan). The workers' simulated probing
// cycles, performance counters and fault counts are folded back into the
// prober's machine afterwards, so RDTSC-based runtime accounting in the
// attack drivers is unchanged: parallelism buys host wall-clock, not
// simulated attacker time.
func (p *Prober) scanMappedEngine(start paging.VirtAddr, n int, stride uint64) ([]bool, []float64) {
	p.scanEpoch++
	seed := p.M.Seed() ^ (p.scanEpoch * 0x9e3779b97f4a7c15)
	var workers []*scanWorker
	eng := scan.New(scan.Config{
		Workers:    p.Opt.Workers,
		ChunkPages: p.Opt.ScanChunkPages,
		Seed:       seed,
	}, func(id int) scan.Worker {
		w := &scanWorker{p: p.CloneTo(p.M.Clone(seed + uint64(id)))}
		workers = append(workers, w)
		return w
	})
	res := eng.Scan(start, n, stride)
	for _, w := range workers {
		p.faults += w.p.faults
		p.M.Counters.Merge(w.p.M.Counters)
	}
	p.M.AdvanceCycles(res.SimCycles)
	return res.Mapped, res.Cycles
}
