package core

import (
	"reflect"
	"testing"
)

// The spy tick is the temporal hot path: driver replay, clock advance, one
// batched leading-page sweep per target, eviction. After the first tick has
// warmed the prober's batch windows and the machine's walk scratch, a tick
// must not allocate at all — ReplayWindow's kernel touches walk with the
// machine-owned scratch and the probes go through ProbeTLBBatch into
// prober-owned windows.
func TestSpyTickZeroAllocSteadyState(t *testing.T) {
	p, drv, targets, _ := temporalVictim(t, 611, Options{})
	spy := &BehaviorSpy{P: p, Targets: targets, PagesPerModule: 10, TickSec: 1}
	if err := spy.init(); err != nil {
		t.Fatal(err)
	}
	spy.tick(p, drv, 6) // warm scratch inside an active window
	if n := testing.AllocsPerRun(20, func() {
		spy.tick(p, drv, 6)
	}); n > 0 {
		t.Errorf("spy tick allocates %.1f/op at steady state, want 0", n)
	}
}

// The fingerprint tick shares the spy tick's shape (same replay, batched
// sweep per watched module, eviction) and must share its zero-allocation
// steady state.
func TestFingerprintTickZeroAllocSteadyState(t *testing.T) {
	p, drv, targets, _ := temporalVictim(t, 612, Options{})
	watch := make([]watchEntry, len(targets))
	for i, lm := range targets {
		watch[i] = watchEntry{name: lm.Name, lm: lm}
	}
	fp := &AppFingerprinter{P: p, Ticks: 8, TickSec: 1}
	fp.tick(p, drv, watch, 6) // warm scratch inside an active window
	if n := testing.AllocsPerRun(20, func() {
		fp.tick(p, drv, watch, 6)
	}); n > 0 {
		t.Errorf("fingerprint tick allocates %.1f/op at steady state, want 0", n)
	}
}

// The per-machine walk scratch must keep ReplayWindow stateless and
// replica-safe: replaying interleaved on the parent machine and on a clone
// touches only the machine each call runs on (so the interleaving allocates
// nothing once both scratches are warm), never moves the driver's cursor,
// and leaves both machines in bit-identical victim state — probing them
// from the same noise position yields the same observations.
func TestReplayWindowStatelessReplicaSafe(t *testing.T) {
	p, drv, targets, _ := temporalVictim(t, 613, Options{})
	spy := &BehaviorSpy{P: p, Targets: targets, PagesPerModule: 10, TickSec: 1}
	if err := spy.init(); err != nil {
		t.Fatal(err)
	}
	m := p.M
	c := m.Clone(999) // replica: same state, private walk scratch
	rp := p.CloneTo(c)

	cursor := drv.Now()
	drv.ReplayWindow(m, 5, 6) // warm both machines' walk scratch
	drv.ReplayWindow(c, 5, 6)
	if n := testing.AllocsPerRun(10, func() {
		drv.ReplayWindow(m, 6, 7)
		drv.ReplayWindow(c, 6, 7)
	}); n > 0 {
		t.Errorf("interleaved parent/replica replay allocates %.1f/op at steady state, want 0", n)
	}
	if now := drv.Now(); now != cursor {
		t.Fatalf("ReplayWindow moved the driver cursor from %v to %v", cursor, now)
	}

	// Both machines received the identical replay sequence; from the same
	// noise position the tick observations must be bit-identical.
	m.ReseedNoise(4242)
	c.ReseedNoise(4242)
	want := spy.tick(p, drv, 8)
	got := spy.tick(rp, drv, 8)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("replica tick observations differ from parent after interleaved replays")
	}
}
