package core

import (
	"fmt"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
	"repro/internal/winkernel"
)

// CloudProvider identifies a §IV-H scenario.
type CloudProvider int

// The three providers the paper evaluates.
const (
	AmazonEC2 CloudProvider = iota
	GoogleGCE
	MicrosoftAzure
)

// String returns the provider name.
func (c CloudProvider) String() string {
	switch c {
	case AmazonEC2:
		return "Amazon EC2"
	case GoogleGCE:
		return "Google GCE"
	case MicrosoftAzure:
		return "Microsoft Azure"
	}
	return "?"
}

// CloudResult is the outcome of one cloud KASLR break.
type CloudResult struct {
	Provider CloudProvider
	// KernelBase is the recovered base address.
	KernelBase paging.VirtAddr
	// BaseCycles and ModuleCycles split the runtimes as §IV-H reports
	// (module detection applies to the Linux guests only).
	BaseCycles   uint64
	ModuleCycles uint64
	// ModulesFound is the number of detected module regions (Linux only).
	ModulesFound int
	// ViaTrampoline reports the KPTI-trampoline path (EC2's
	// Meltdown-vulnerable Xeon runs KPTI; the trampoline sits at
	// +0xe00000 on the AWS kernel).
	ViaTrampoline bool
}

// CloudScenario describes one provider's guest configuration.
type CloudScenario struct {
	Provider   CloudProvider
	Preset     *uarch.Preset
	KPTI       bool
	Trampoline uint64 // trampoline offset when KPTI
	Windows    bool   // Azure runs a Windows guest
}

// Scenario returns the paper's configuration for a provider.
func Scenario(c CloudProvider) CloudScenario {
	switch c {
	case AmazonEC2:
		// Xeon E5-2676: Meltdown-vulnerable, so Linux boots with KPTI; the
		// AWS 5.11 kernel's trampoline offset is 0xe00000.
		return CloudScenario{Provider: c, Preset: uarch.XeonE5_2676(), KPTI: true, Trampoline: 0xe00000}
	case GoogleGCE:
		return CloudScenario{Provider: c, Preset: uarch.XeonCascadeLake()}
	case MicrosoftAzure:
		return CloudScenario{Provider: c, Preset: uarch.XeonPlatinum8171M(), Windows: true}
	}
	panic("core: unknown provider")
}

// CloudBreakOptions scales the Azure scan for tests (0 = full region) and
// configures the probers CloudBreak builds.
type CloudBreakOptions struct {
	AzureMaxSlot int
	// Probe is the prober configuration for the attack (notably Workers and
	// the session ScanPool, so cloud scans share replicas with the rest of
	// a session's jobs).
	Probe Options
}

// CloudBreak runs the §IV-H attack against one provider's guest.
func CloudBreak(c CloudProvider, seed uint64, opt CloudBreakOptions) (CloudResult, error) {
	sc := Scenario(c)
	res := CloudResult{Provider: c}
	m := machine.New(sc.Preset, seed)

	if sc.Windows {
		wk, err := winkernel.Boot(m, winkernel.Config{Seed: seed, Drivers: 24, MaxSlot: opt.AzureMaxSlot})
		if err != nil {
			return res, err
		}
		p, err := NewProber(m, opt.Probe)
		if err != nil {
			return res, err
		}
		wr, err := WindowsKernel(p, winkernel.ImageSlots)
		if err != nil {
			return res, err
		}
		if wr.RegionBase != wk.Base {
			return res, fmt.Errorf("core: azure scan found %#x, kernel at %#x", uint64(wr.RegionBase), uint64(wk.Base))
		}
		res.KernelBase = wr.RegionBase
		res.BaseCycles = wr.TotalCycles
		return res, nil
	}

	k, err := linux.Boot(m, linux.Config{Seed: seed, KPTI: sc.KPTI, TrampolineOffset: sc.Trampoline})
	if err != nil {
		return res, err
	}
	p, err := NewProber(m, opt.Probe)
	if err != nil {
		return res, err
	}
	if sc.KPTI {
		kr, err := KPTIBreak(p, sc.Trampoline)
		if err != nil {
			return res, err
		}
		res.KernelBase = kr.Base
		res.BaseCycles = kr.TotalCycles
		res.ViaTrampoline = true
	} else {
		br, err := KernelBase(p)
		if err != nil {
			return res, err
		}
		res.KernelBase = br.Base
		res.BaseCycles = br.TotalCycles
	}
	if res.KernelBase != k.Base {
		return res, fmt.Errorf("core: cloud scan found %#x, kernel at %#x", uint64(res.KernelBase), uint64(k.Base))
	}

	// Module detection (the paper reports it for both Linux clouds).
	// Under KPTI the module area is not user-visible, so the runtime is
	// what the paper measures on the KPTI trampoline machine's non-
	// isolated module probing; we probe the kernel view via the same
	// prober on non-KPTI guests and skip it under KPTI.
	if !sc.KPTI {
		mr := Modules(p, SizeTable(k.ProcModules()))
		res.ModuleCycles = mr.TotalCycles
		res.ModulesFound = len(mr.Regions)
	} else {
		// On EC2 the paper still detects modules: KPTI does not cover the
		// module area on that kernel build; model by probing the kernel
		// view directly.
		m.InstallAddressSpaces(m.KernelAS, m.KernelAS)
		p2, err := NewProber(m, opt.Probe)
		if err != nil {
			return res, err
		}
		mr := Modules(p2, SizeTable(k.ProcModules()))
		res.ModuleCycles = mr.TotalCycles
		res.ModulesFound = len(mr.Regions)
	}
	return res, nil
}
