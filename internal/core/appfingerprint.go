package core

import (
	"fmt"
	"sort"

	"repro/internal/behavior"
	"repro/internal/linux"
	"repro/internal/paging"
	"repro/internal/scan"
)

// AppProfile describes an application by the kernel modules its activity
// exercises — the fingerprinting extension §IV-E sketches ("not only to
// monitor other events (e.g., keystroke) but also to fingerprint
// applications or websites"). A music player drives bluetooth; a shooter
// drives psmouse+usbhid; a file sync tool drives the NIC driver; and so
// on.
type AppProfile struct {
	Name string
	// Modules lists the driver modules the app keeps active.
	Modules []string
}

// Signature returns the sorted module list (the classification key).
func (a AppProfile) Signature() []string {
	s := append([]string(nil), a.Modules...)
	sort.Strings(s)
	return s
}

// StandardAppProfiles returns a distinguishable demo population. Every
// referenced module has a unique mapped size on the default victim, so the
// spy can locate them all with the module attack alone (no ground truth
// needed).
func StandardAppProfiles() []AppProfile {
	return []AppProfile{
		{Name: "music-player", Modules: []string{"bluetooth"}},
		{Name: "fps-game", Modules: []string{"psmouse", "mac_hid"}},
		{Name: "video-call", Modules: []string{"bluetooth", "uvcvideo-like:video"}},
		{Name: "file-sync", Modules: []string{"e1000e"}},
		{Name: "idle-desktop", Modules: nil},
	}
}

// appModule resolves profile module names: entries of the form
// "alias:real" use the real module name (lets profiles stay readable while
// reusing the loaded-module DB).
func appModule(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[i+1:]
		}
	}
	return name
}

// AppFingerprinter observes a set of module addresses and classifies the
// foreground application by which modules show TLB activity.
type AppFingerprinter struct {
	P *Prober
	// Watch maps module name → located module (from the Modules attack).
	// At most 64 modules (one vote bit each per tick).
	Watch map[string]linux.LoadedModule
	// Profiles is the candidate population.
	Profiles []AppProfile
	// Ticks and TickSec control the observation window.
	Ticks   int
	TickSec float64
}

// watchEntry is one watched module with its fixed probe order position.
type watchEntry struct {
	name string
	lm   linux.LoadedModule
}

// init fills defaults and freezes the watch list in sorted-name order: the
// per-tick probe sequence (and therefore the noise-draw assignment) must be
// deterministic, which iterating the Watch map never was.
func (f *AppFingerprinter) init() ([]watchEntry, error) {
	if f.Ticks <= 0 {
		f.Ticks = 10
	}
	if f.TickSec <= 0 {
		f.TickSec = 1
	}
	if len(f.Watch) > 64 {
		return nil, fmt.Errorf("core: %d watched modules, max 64", len(f.Watch))
	}
	watch := make([]watchEntry, 0, len(f.Watch))
	for name, lm := range f.Watch {
		watch = append(watch, watchEntry{name: name, lm: lm})
	}
	sort.Slice(watch, func(i, j int) bool { return watch[i].name < watch[j].name })
	return watch, nil
}

// tick runs one observation tick at victim time t on p's machine and
// returns the bitmask of watched modules (in sorted-name order) whose
// leading pages probed TLB-hot. Same canonical tick shape as the behavior
// spy's: reset, driver replay, clock advance, probes, eviction — and the
// same batched per-target sweep (ProbeTLBBatch into prober-owned windows,
// bit-identical to the per-page loop, zero steady-state allocations).
func (f *AppFingerprinter) tick(p *Prober, d *behavior.Driver, watch []watchEntry, t float64) uint64 {
	m := p.M
	m.ResetTranslationState()
	d.ReplayWindow(m, t, t+f.TickSec)
	m.AdvanceSeconds(f.TickSec)
	var mask uint64
	for wi := range watch {
		lm := &watch[wi].lm
		n := leadingPages(4, lm.Size)
		best := 0.0
		if n > 0 {
			cyc, fast := p.tickWindows(n)
			p.ProbeTLBBatch(lm.Base, n, paging.Page4K, cyc, fast)
			best = cyc[0]
			for _, c := range cyc[1:] {
				if c < best {
					best = c
				}
			}
		}
		if p.Threshold.Classify(best) {
			mask |= 1 << wi
		}
	}
	m.EvictTLB()
	return mask
}

// fpWorker shards the fingerprinter's observation window exactly like
// spyWorker shards the behavior spy's: probe index = tick, verdict = the
// tick's hot-module bitmask, healing disabled.
type fpWorker struct {
	workerBase
	f     *AppFingerprinter
	d     *behavior.Driver
	watch []watchEntry
	t0    float64
}

func (w *fpWorker) Probe(va paging.VirtAddr) scan.Sample[uint64] {
	mask := w.f.tick(w.p, w.d, w.watch, w.t0+float64(uint64(va))*w.f.TickSec)
	return scan.Sample[uint64]{Cycles: float64(mask), Verdict: mask}
}

func (w *fpWorker) Classify(float64) uint64 { return 0 } // healing disabled

// Classify runs the observation loop against a victim driver from time 0
// and returns the best-matching profile.
func (f *AppFingerprinter) Classify(d *behavior.Driver) (AppProfile, error) {
	return f.ClassifyFrom(d, 0)
}

// ClassifyFrom observes the window [t0, t0 + Ticks*TickSec) on the scan
// engine — ticks fan out across Options.Workers replicas, each replaying
// its chunk's driver events privately — and classifies the foreground app
// by majority vote over the ticks. Output is bit-identical at any worker
// setting, pooled or fresh, and bit-identical to ClassifyFromSequential.
// Windows compose like the behavior spy's: consecutive calls continue the
// victim's timeline.
func (f *AppFingerprinter) ClassifyFrom(d *behavior.Driver, t0 float64) (AppProfile, error) {
	if err := f.P.M.Fire("probe"); err != nil {
		return AppProfile{}, err
	}
	watch, err := f.init()
	if err != nil {
		return AppProfile{}, err
	}
	// Materialize unbounded victim timelines through the window before the
	// fan-out: worker replicas then replay events as pure reads.
	d.EnsureHorizon(t0 + float64(f.Ticks)*f.TickSec)
	res := runSweep(f.P, 0, f.Ticks, 1, tickChunk(f.P), -1, nil, uint64(0),
		func(rp *Prober) scan.Worker[uint64] {
			return &fpWorker{workerBase: workerBase{p: rp}, f: f, d: d, watch: watch, t0: t0}
		})
	return f.match(watch, res.Verdicts)
}

// ClassifySequential is the sequential parity yardstick of Classify.
func (f *AppFingerprinter) ClassifySequential(d *behavior.Driver) (AppProfile, error) {
	return f.ClassifyFromSequential(d, 0)
}

// ClassifyFromSequential is the plain sequential observation loop, kept as
// the parity yardstick for the engine-based ClassifyFrom (same determinism
// contract; see BehaviorSpy.RunWindowSequential).
func (f *AppFingerprinter) ClassifyFromSequential(d *behavior.Driver, t0 float64) (AppProfile, error) {
	watch, err := f.init()
	if err != nil {
		return AppProfile{}, err
	}
	d.EnsureHorizon(t0 + float64(f.Ticks)*f.TickSec)
	masks := make([]uint64, f.Ticks)
	sequentialTicks(f.P, f.Ticks, func(i int) {
		masks[i] = f.tick(f.P, d, watch, t0+float64(i)*f.TickSec)
	})
	return f.match(watch, masks)
}

// match tallies the per-tick hot masks — a module counts as active when hot
// in a majority of ticks (single-tick transients are noise) — and matches
// the active set exactly against the profile population.
func (f *AppFingerprinter) match(watch []watchEntry, masks []uint64) (AppProfile, error) {
	var active []string
	for wi := range watch {
		votes := 0
		for _, mask := range masks {
			if mask&(1<<wi) != 0 {
				votes++
			}
		}
		if votes > f.Ticks/2 {
			active = append(active, watch[wi].name)
		}
	}
	sort.Strings(active)

	for _, prof := range f.Profiles {
		want := make([]string, 0, len(prof.Modules))
		for _, mn := range prof.Modules {
			want = append(want, appModule(mn))
		}
		sort.Strings(want)
		if equalStrings(active, want) {
			return prof, nil
		}
	}
	return AppProfile{}, fmt.Errorf("core: no profile matches active set %v", active)
}

// TimelinesFor builds always-on timelines for an app profile over a
// window, for driving the victim in tests and demos.
func TimelinesFor(prof AppProfile, duration float64) []*behavior.Timeline {
	var tls []*behavior.Timeline
	for _, mn := range prof.Modules {
		act := behavior.Activity{
			Name:         prof.Name + "/" + mn,
			Module:       appModule(mn),
			PagesTouched: 4,
			EventHz:      30,
		}
		tls = append(tls, behavior.FixedTimeline(act, behavior.Interval{Start: 0, End: duration}))
	}
	return tls
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// paging4k converts a page index to a byte offset.
func paging4k(pg int) paging.VirtAddr { return paging.VirtAddr(uint64(pg) << 12) }
