package core

import (
	"fmt"
	"sort"

	"repro/internal/behavior"
	"repro/internal/linux"
	"repro/internal/paging"
)

// AppProfile describes an application by the kernel modules its activity
// exercises — the fingerprinting extension §IV-E sketches ("not only to
// monitor other events (e.g., keystroke) but also to fingerprint
// applications or websites"). A music player drives bluetooth; a shooter
// drives psmouse+usbhid; a file sync tool drives the NIC driver; and so
// on.
type AppProfile struct {
	Name string
	// Modules lists the driver modules the app keeps active.
	Modules []string
}

// Signature returns the sorted module list (the classification key).
func (a AppProfile) Signature() []string {
	s := append([]string(nil), a.Modules...)
	sort.Strings(s)
	return s
}

// StandardAppProfiles returns a distinguishable demo population. Every
// referenced module has a unique mapped size on the default victim, so the
// spy can locate them all with the module attack alone (no ground truth
// needed).
func StandardAppProfiles() []AppProfile {
	return []AppProfile{
		{Name: "music-player", Modules: []string{"bluetooth"}},
		{Name: "fps-game", Modules: []string{"psmouse", "mac_hid"}},
		{Name: "video-call", Modules: []string{"bluetooth", "uvcvideo-like:video"}},
		{Name: "file-sync", Modules: []string{"e1000e"}},
		{Name: "idle-desktop", Modules: nil},
	}
}

// appModule resolves profile module names: entries of the form
// "alias:real" use the real module name (lets profiles stay readable while
// reusing the loaded-module DB).
func appModule(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[i+1:]
		}
	}
	return name
}

// AppFingerprinter observes a set of module addresses and classifies the
// foreground application by which modules show TLB activity.
type AppFingerprinter struct {
	P *Prober
	// Watch maps module name → located module (from the Modules attack).
	Watch map[string]linux.LoadedModule
	// Profiles is the candidate population.
	Profiles []AppProfile
	// Ticks and TickSec control the observation window.
	Ticks   int
	TickSec float64
}

// observeOnce returns the set of watched modules that are TLB-hot.
func (f *AppFingerprinter) observeOnce() map[string]bool {
	hot := make(map[string]bool)
	for name, lm := range f.Watch {
		best := 0.0
		for pg := 0; pg < 4 && uint64(pg)<<12 < lm.Size; pg++ {
			pr := f.P.ProbeTLB(lm.Base + paging4k(pg))
			if pg == 0 || pr.Cycles < best {
				best = pr.Cycles
			}
		}
		if f.P.Threshold.Classify(best) {
			hot[name] = true
		}
	}
	return hot
}

// Classify runs the observation loop against a victim driver and returns
// the best-matching profile. The victim is stepped through simulated time
// exactly like the Fig. 6 spy.
func (f *AppFingerprinter) Classify(d *behavior.Driver) (AppProfile, error) {
	if f.Ticks <= 0 {
		f.Ticks = 10
	}
	if f.TickSec <= 0 {
		f.TickSec = 1
	}
	// Vote per tick: a module counts as "active" if hot in a majority of
	// ticks (single-tick transients are noise).
	votes := make(map[string]int)
	f.P.M.EvictTLB()
	for i := 0; i < f.Ticks; i++ {
		if err := d.Step(float64(i) * f.TickSec); err != nil {
			return AppProfile{}, err
		}
		f.P.M.AdvanceSeconds(f.TickSec)
		for name := range f.observeOnce() {
			votes[name]++
		}
		f.P.M.EvictTLB()
	}
	var active []string
	for name, n := range votes {
		if n > f.Ticks/2 {
			active = append(active, name)
		}
	}
	sort.Strings(active)

	// Exact-set match against the profiles.
	for _, prof := range f.Profiles {
		want := make([]string, 0, len(prof.Modules))
		for _, mn := range prof.Modules {
			want = append(want, appModule(mn))
		}
		sort.Strings(want)
		if equalStrings(active, want) {
			return prof, nil
		}
	}
	return AppProfile{}, fmt.Errorf("core: no profile matches active set %v", active)
}

// TimelinesFor builds always-on timelines for an app profile over a
// window, for driving the victim in tests and demos.
func TimelinesFor(prof AppProfile, duration float64) []*behavior.Timeline {
	var tls []*behavior.Timeline
	for _, mn := range prof.Modules {
		act := behavior.Activity{
			Name:         prof.Name + "/" + mn,
			Module:       appModule(mn),
			PagesTouched: 4,
			EventHz:      30,
		}
		tls = append(tls, behavior.FixedTimeline(act, behavior.Interval{Start: 0, End: duration}))
	}
	return tls
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// paging4k converts a page index to a byte offset.
func paging4k(pg int) paging.VirtAddr { return paging.VirtAddr(uint64(pg) << 12) }
