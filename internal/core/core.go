package core
