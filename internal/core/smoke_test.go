package core

import (
	"testing"

	"repro/internal/avx"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// TestSmokeFig2 checks the Ice Lake preset reproduces Figure 2's four page
// classes: USER-M 13, USER-U 110, KERNEL-M 93, KERNEL-U 107 (±3 cycles,
// net of fence overhead).
func TestSmokeFig2(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 42)
	k, err := linux.Boot(m, linux.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// USER-M: attacker's own mapped page (touched).
	userVA := paging.VirtAddr(0x7e0000000000)
	if err := m.MapUser(userVA, paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	m.ExecMasked(avx.MaskedStore(userVA, avx.AllMask(8))) // fault in + dirty

	cases := []struct {
		name string
		va   paging.VirtAddr
		want float64
	}{
		{"USER-M", userVA, 13},
		{"USER-U", 0x700000000000, 110},
		{"KERNEL-M", k.Base, 93},
		{"KERNEL-U", k.Base - 4*paging.Page2M, 107},
	}
	fence := m.Preset.FenceOverhead
	for _, c := range cases {
		var s stats.Stream
		m.ExecMasked(avx.MaskedLoad(c.va, avx.ZeroMask)) // warm-up exec
		for i := 0; i < 1000; i++ {
			meas, r := m.Measure(avx.MaskedLoad(c.va, avx.ZeroMask))
			if r.Faulted {
				t.Fatalf("%s: faulted", c.name)
			}
			s.Add(meas - fence)
		}
		t.Logf("%-9s %s (want ~%v)", c.name, s.String(), c.want)
		if diff := s.Mean() - c.want; diff > 3 || diff < -3 {
			t.Errorf("%s: mean %.1f, want %v±3", c.name, s.Mean(), c.want)
		}
	}
}

// TestSmokeKernelBase runs the full Alder Lake base attack once.
func TestSmokeKernelBase(t *testing.T) {
	m := machine.New(uarch.AlderLake12400F(), 99)
	k, err := linux.Boot(m, linux.Config{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KernelBase(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("found base %#x (true %#x), probe=%.3gs total=%.3gs, threshold=%.1f",
		uint64(res.Base), uint64(k.Base), res.ProbeSeconds(m.Preset), res.TotalSeconds(m.Preset), p.Threshold.Cycles)
	if res.Base != k.Base {
		t.Fatalf("wrong base")
	}
	if p.Faults() != 0 {
		t.Fatalf("attack faulted %d times", p.Faults())
	}
}
