package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/behavior"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/uarch"
)

// temporalVictim boots the §IV-E victim used by the temporal parity suite:
// an Ice Lake Linux boot, a prober at the given engine options, the
// bluetooth+psmouse targets located with the module attack, and a driver
// with fixed activity windows. Everything is a pure function of seed, so
// every variant sees the identical victim.
func temporalVictim(t *testing.T, seed uint64, opt Options) (*Prober, *behavior.Driver, []linux.LoadedModule, []*behavior.Timeline) {
	t.Helper()
	m := machine.New(uarch.IceLake1065G7(), seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := LocateTargets(Modules(p, SizeTable(k.ProcModules())), "bluetooth", "psmouse")
	if err != nil {
		t.Fatal(err)
	}
	bt := behavior.FixedTimeline(behavior.BluetoothAudio(), behavior.Interval{Start: 5, End: 18})
	ms := behavior.FixedTimeline(behavior.MouseMovement(), behavior.Interval{Start: 22, End: 34})
	drv, err := behavior.NewDriver(k, bt, ms)
	if err != nil {
		t.Fatal(err)
	}
	return p, drv, targets, []*behavior.Timeline{bt, ms}
}

// temporalVariants is the worker × pool matrix of the temporal parity
// suite (the ISSUE 5 acceptance grid).
func temporalVariants() []struct {
	workers int
	pooled  bool
} {
	return []struct {
		workers int
		pooled  bool
	}{
		{0, false}, {1, false}, {4, false}, {8, false},
		{0, true}, {1, true}, {4, true}, {8, true},
	}
}

// The engine-based behavior spy must be bit-identical to the sequential
// yardstick loop — full traces, simulated clock and counters — at workers
// 0/1/4/8 × pooled/fresh for a fixed seed.
func TestBehaviorSpyEngineParity(t *testing.T) {
	const seed = 606
	const duration = 40.0

	pRef, drvRef, targetsRef, _ := temporalVictim(t, seed, Options{})
	spyRef := &BehaviorSpy{P: pRef, Targets: targetsRef, PagesPerModule: 10, TickSec: 1}
	want, err := spyRef.RunSequential(drvRef, duration)
	if err != nil {
		t.Fatal(err)
	}
	wantTSC := pRef.M.RDTSC()

	for _, v := range temporalVariants() {
		v := v
		t.Run(fmt.Sprintf("workers=%d/pooled=%v", v.workers, v.pooled), func(t *testing.T) {
			opt := Options{Workers: v.workers}
			if v.pooled {
				opt.Pool = NewScanPool()
			}
			p, drv, targets, _ := temporalVictim(t, seed, opt)
			spy := &BehaviorSpy{P: p, Targets: targets, PagesPerModule: 10, TickSec: 1}
			got, err := spy.RunWindow(drv, 0, duration)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("engine spy traces differ from sequential yardstick")
			}
			if tsc := p.M.RDTSC(); tsc != wantTSC {
				t.Fatalf("simulated clock differs: %d, yardstick %d", tsc, wantTSC)
			}
		})
	}
}

// Consecutive spy windows on one prober must continue the victim timeline:
// a [0,20) then [20,40) pair observes the same activity pattern the ground
// truth describes, and both windows stay bit-identical across worker
// settings.
func TestBehaviorSpyWindowsCompose(t *testing.T) {
	const seed = 707
	run := func(opt Options) [][]SpyTrace {
		p, drv, targets, _ := temporalVictim(t, seed, opt)
		spy := &BehaviorSpy{P: p, Targets: targets, PagesPerModule: 10, TickSec: 1}
		var out [][]SpyTrace
		for _, w := range [][2]float64{{0, 20}, {20, 40}} {
			traces, err := spy.RunWindow(drv, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, traces)
		}
		return out
	}

	want := run(Options{})
	got := run(Options{Workers: 4, Pool: NewScanPool()})
	if !reflect.DeepEqual(want, got) {
		t.Fatal("windowed spy runs differ between inline and pooled-parallel")
	}

	// The second window must start where the first ended (sample times are
	// victim-timeline absolute), and the activity verdicts must track the
	// ground truth across the boundary.
	if s := want[1][0].Samples[0]; s.TimeSec != 20 {
		t.Fatalf("second window starts at %v, want 20", s.TimeSec)
	}
	_, _, _, truth := temporalVictim(t, seed, Options{})
	for wi, traces := range want {
		for ti, tr := range traces {
			if acc := tr.Accuracy(truth[ti]); acc < 0.9 {
				t.Fatalf("window %d target %d accuracy %.2f", wi, ti, acc)
			}
		}
	}
}

// The engine-based app fingerprinter must match the sequential yardstick —
// same classification and same simulated clock — at workers 0/1/4/8 ×
// pooled/fresh, for every profile in the standard population.
func TestAppFingerprintEngineParity(t *testing.T) {
	const seed = 808
	profiles := StandardAppProfiles()

	// Reference: sequential yardstick per profile.
	type ref struct {
		name string
		tsc  uint64
	}
	classify := func(truth AppProfile, opt Options, sequential bool) ref {
		m := machine.New(uarch.IceLake1065G7(), seed)
		k, err := linux.Boot(m, linux.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProber(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		located := Modules(p, SizeTable(k.ProcModules()))
		watch := make(map[string]linux.LoadedModule)
		for _, prof := range profiles {
			for _, mn := range prof.Modules {
				name := appModule(mn)
				targets, err := LocateTargets(located, name)
				if err != nil {
					t.Fatalf("locating %s: %v", name, err)
				}
				watch[name] = targets[0]
			}
		}
		drv, err := behavior.NewDriver(k, TimelinesFor(truth, 60)...)
		if err != nil {
			t.Fatal(err)
		}
		fp := &AppFingerprinter{P: p, Watch: watch, Profiles: profiles, Ticks: 8}
		var got AppProfile
		if sequential {
			got, err = fp.ClassifySequential(drv)
		} else {
			got, err = fp.Classify(drv)
		}
		if err != nil {
			t.Fatal(err)
		}
		return ref{name: got.Name, tsc: p.M.RDTSC()}
	}

	for _, truth := range profiles {
		want := classify(truth, Options{}, true)
		if want.name != truth.Name {
			t.Fatalf("yardstick misclassifies %s as %s", truth.Name, want.name)
		}
		for _, v := range temporalVariants() {
			opt := Options{Workers: v.workers}
			if v.pooled {
				opt.Pool = NewScanPool()
			}
			got := classify(truth, opt, false)
			if got != want {
				t.Fatalf("%s at workers=%d pooled=%v: got %+v, yardstick %+v",
					truth.Name, v.workers, v.pooled, got, want)
			}
		}
	}
}
