package core

import (
	"fmt"

	"repro/internal/linux"
	"repro/internal/paging"
	"repro/internal/uarch"
)

// OffsetSample is one probed kernel offset for the Figure 4 scatter.
type OffsetSample struct {
	Slot   int
	VA     paging.VirtAddr
	Cycles float64
	Mapped bool
}

// KernelBaseResult is the outcome of a kernel-base derandomization.
type KernelBaseResult struct {
	// Base is the recovered kernel text base (0 if none found).
	Base paging.VirtAddr
	// Slide is Base minus the region start (the KASLR slide).
	Slide uint64
	// Samples holds the per-offset measurements (the Fig. 4 data).
	Samples []OffsetSample
	// ProbeCycles is the cycle cost of the probing loop alone; TotalCycles
	// additionally includes calibration and decision logic (Table I's
	// "Probing" vs "Total" columns).
	ProbeCycles uint64
	TotalCycles uint64
}

// ProbeSeconds returns the probing runtime in seconds.
func (r KernelBaseResult) ProbeSeconds(p *uarch.Preset) float64 {
	return p.CyclesToSeconds(r.ProbeCycles)
}

// TotalSeconds returns the total runtime in seconds.
func (r KernelBaseResult) TotalSeconds(p *uarch.Preset) float64 {
	return p.CyclesToSeconds(r.TotalCycles)
}

// KernelBase derandomizes the Linux kernel text base (§IV-B).
//
// On Intel it probes all 512 candidate slots with the double-execution
// page-table attack (P2) and reports the first mapped slot. On AMD — where
// mapped kernel pages never enter the TLB, so P2 yields nothing — it falls
// back to the walk-termination-level attack (P3) against the kernel's five
// 4 KiB-structured pages, whose offsets from the base are build constants.
func KernelBase(p *Prober) (KernelBaseResult, error) {
	var res KernelBaseResult
	if err := p.M.Fire("probe"); err != nil {
		return res, err
	}
	start := p.M.RDTSC()
	if p.M.Preset.Vendor == uarch.AMD {
		r, err := kernelBaseAMD(p)
		if err != nil {
			return r, err
		}
		res = r
	} else {
		res = kernelBaseIntel(p)
	}
	res.TotalCycles = p.M.RDTSC() - start + res.calibrationCycles(p)
	if res.Base != 0 {
		res.Slide = uint64(res.Base) - uint64(linux.TextRegionBase)
	}
	return res, nil
}

// calibrationCycles attributes the prober's one-time calibration cost to
// this attack's total runtime (the paper's Total column includes it).
func (KernelBaseResult) calibrationCycles(p *Prober) uint64 {
	n := uint64(p.Opt.CalibrationPages)
	per := uint64(p.M.Preset.MaskedStoreBase + p.M.Preset.AssistDirty +
		p.M.Preset.FenceOverhead + p.M.Preset.LoopOverhead)
	return n*per + 2*uint64(p.M.Preset.SyscallCost)
}

// kernelBaseIntel probes all 512 text slots through ScanMapped — the same
// sweep primitive the module and Windows attacks use — so it parallelizes
// under Options.Workers. Note this includes ScanMapped's min-of-3 healing
// re-probe of isolated verdict flips (at any worker setting), which the
// pre-engine slot loop did not have: same-seed Samples/ProbeCycles differ
// slightly from pre-engine revisions, in exchange for spike robustness.
func kernelBaseIntel(p *Prober) KernelBaseResult {
	var res KernelBaseResult
	probeStart := p.M.RDTSC()
	mapped, cycles := p.ScanMapped(linux.TextRegionBase, linux.TextSlots, paging.Page2M)
	res.ProbeCycles = p.M.RDTSC() - probeStart
	firstMapped := -1
	res.Samples = make([]OffsetSample, linux.TextSlots)
	for slot := 0; slot < linux.TextSlots; slot++ {
		va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		res.Samples[slot] = OffsetSample{Slot: slot, VA: va, Cycles: cycles[slot], Mapped: mapped[slot]}
		if mapped[slot] && firstMapped < 0 {
			firstMapped = slot
		}
	}
	if firstMapped >= 0 {
		res.Base = linux.TextRegionBase + paging.VirtAddr(uint64(firstMapped)<<21)
	}
	return res
}

// PTTermThreshold returns the walk-termination decision threshold of the
// AMD attack: a PT-terminating walk reads one more paging structure than a
// PD-terminating one, and with evicted PTE lines that is one full memory
// access (~PTELineMiss cycles) — a robust margin.
func (p *Prober) PTTermThreshold() float64 {
	preset := p.M.Preset
	return preset.MaskedLoadBase + preset.AssistLoad + preset.FenceOverhead +
		(preset.Walk.PD+preset.Walk.PT)/2 + 3.5*preset.PTELineMiss
}

// AMDTermSamples is the per-slot sample count of the AMD term-level sweep.
// The level signal (one extra cold PTE line) is subtler than the Intel
// TLB-hit signal, so each slot is sampled 16× with targeted eviction and
// reduced by minimum — this is what makes the AMD probing ~1.9 ms instead
// of ~67 µs (Table I).
const AMDTermSamples = 16

// kernelBaseAMD mounts the §IV-B AMD attack: classify every slot by walk
// termination (a slot whose boundary walk reaches a PT is "4 KiB-
// structured"), then align the observed 4 KiB-slot pattern against the
// build-constant offsets of the five 4 KiB pages. The slot sweep runs on
// the sharded engine via ScanTermLevel, so it parallelizes under
// Options.Workers like every other large sweep.
func kernelBaseAMD(p *Prober) (KernelBaseResult, error) {
	var res KernelBaseResult
	probeStart := p.M.RDTSC()

	fourKSlots, cycles := p.ScanTermLevel(linux.TextRegionBase, linux.TextSlots,
		paging.Page2M, AMDTermSamples, p.PTTermThreshold())
	res.Samples = make([]OffsetSample, linux.TextSlots)
	for slot := 0; slot < linux.TextSlots; slot++ {
		va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		res.Samples[slot] = OffsetSample{Slot: slot, VA: va, Cycles: cycles[slot], Mapped: fourKSlots[slot]}
	}
	res.ProbeCycles = p.M.RDTSC() - probeStart

	// Match the observed pattern against the known slot offsets of the
	// five 4 KiB pages.
	wantSlots := make([]int, 0, 5)
	for _, off := range linux.FourKOffsets() {
		wantSlots = append(wantSlots, int(off>>21))
	}
	bestBase, bestScore := -1, -1
	for base := 0; base < linux.TextSlots-linux.ImageSlots; base++ {
		score := 0
		for _, ws := range wantSlots {
			if fourKSlots[base+ws] {
				score++
			}
		}
		if score > bestScore {
			bestScore, bestBase = score, base
		}
	}
	if bestScore < len(wantSlots)-1 {
		return res, fmt.Errorf("core: AMD pattern match too weak (score %d/%d)", bestScore, len(wantSlots))
	}
	res.Base = linux.TextRegionBase + paging.VirtAddr(uint64(bestBase)<<21)
	return res, nil
}
