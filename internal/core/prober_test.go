package core

import (
	"testing"
	"testing/quick"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
)

func bootedProber(t *testing.T, preset *uarch.Preset, seed uint64, cfg linux.Config) (*Prober, *linux.Kernel) {
	t.Helper()
	m := machine.New(preset, seed)
	cfg.Seed = seed
	k, err := linux.Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, k
}

func TestCalibrationThresholdSeparatesClasses(t *testing.T) {
	p, k := bootedProber(t, uarch.AlderLake12400F(), 31, linux.Config{})
	// The threshold must sit between the kernel-mapped (TLB hit) and
	// unmapped timings.
	pm := p.ProbeMapped(k.Base)
	pu := p.ProbeMapped(k.Base - 8*paging.Page2M)
	if !pm.Fast {
		t.Fatalf("kernel-mapped probe read slow (%.1f vs thr %.1f)", pm.Cycles, p.Threshold.Cycles)
	}
	if pu.Fast {
		t.Fatalf("unmapped probe read fast (%.1f vs thr %.1f)", pu.Cycles, p.Threshold.Cycles)
	}
	if pm.Cycles >= pu.Cycles {
		t.Fatal("class timings inverted")
	}
}

func TestCalibrationUnmapsScratch(t *testing.T) {
	p, _ := bootedProber(t, uarch.AlderLake12400F(), 33, linux.Config{})
	w := p.M.UserAS.Translate(ScratchBase, nil)
	if w.Mapped {
		t.Fatal("calibration pages left mapped")
	}
}

func TestStoreThresholdSeparatesWritability(t *testing.T) {
	p, _ := bootedProber(t, uarch.AlderLake12400F(), 35, linux.Config{})
	m := p.M
	// Private rw- page (dirty) vs r-- page.
	rw := paging.VirtAddr(0x7d0000000000)
	ro := rw + paging.Page4K
	if err := m.MapUser(rw, 2*paging.Page4K, paging.Writable); err != nil {
		t.Fatal(err)
	}
	if err := m.ProtectUser(ro, paging.Page4K, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.ProbePerm(rw); got != PermWritable {
		t.Fatalf("rw- classified %v", got)
	}
	if got := p.ProbePerm(ro); got != PermReadable {
		t.Fatalf("r-- classified %v", got)
	}
	if got := p.ProbePerm(rw + 100*paging.Page4K); got != PermUnmapped {
		t.Fatalf("unmapped classified %v", got)
	}
}

func TestProbeNeverFaults(t *testing.T) {
	p, k := bootedProber(t, uarch.AlderLake12400F(), 37, linux.Config{})
	addrs := []paging.VirtAddr{
		k.Base, k.Base - paging.Page2M, linux.ModuleRegionBase,
		0x1000, 0x7fffffffe000, 0xffffffffffffe000,
	}
	for _, va := range addrs {
		p.ProbeMapped(va)
		p.ProbeMappedStore(va)
		p.ProbeTLB(va)
		p.ProbePerm(va)
	}
	if p.Faults() != 0 {
		t.Fatalf("primitives delivered %d faults — suppression broken", p.Faults())
	}
}

// Property: ProbeMapped agrees with page-table ground truth for kernel
// slots across many random boots (modulo the documented noise rate, so a
// small error budget is allowed).
func TestProbeMappedMatchesGroundTruth(t *testing.T) {
	errs, total := 0, 0
	for seed := uint64(0); seed < 8; seed++ {
		p, k := bootedProber(t, uarch.AlderLake12400F(), 41+seed, linux.Config{})
		for slot := 0; slot < linux.TextSlots; slot += 7 {
			va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
			truth := p.M.KernelAS.Translate(va, nil).Mapped
			got := p.ProbeMapped(va).Fast
			total++
			if got != truth {
				errs++
			}
		}
		_ = k
	}
	if rate := float64(errs) / float64(total); rate > 0.01 {
		t.Fatalf("probe error rate %.3f over %d probes", rate, total)
	}
}

func TestProbeTLBDetectsKernelTouch(t *testing.T) {
	p, k := bootedProber(t, uarch.IceLake1065G7(), 43, linux.Config{})
	lm, _ := k.Module("bluetooth")
	p.M.EvictTLB()
	if pr := p.ProbeTLB(lm.Base); pr.Fast {
		t.Fatal("cold module probe read fast")
	}
	p.M.EvictTLB()
	if err := k.TouchModule("bluetooth", 4); err != nil {
		t.Fatal(err)
	}
	if pr := p.ProbeTLB(lm.Base); !pr.Fast {
		t.Fatalf("touched module probe read slow (%.1f vs %.1f)", pr.Cycles, p.Threshold.Cycles)
	}
}

func TestProbeTermLevelSeparates4KSlots(t *testing.T) {
	p, k := bootedProber(t, uarch.Zen3_5600X(), 45, linux.Config{})
	// A 2M-mapped slot and a 4K-structured slot must separate by roughly
	// one PTE-line miss.
	slot2M := p.ProbeTermLevel(k.Base, 4)
	slot4K := p.ProbeTermLevel(k.FourKPages[0], 4)
	if slot4K.Cycles-slot2M.Cycles < p.M.Preset.PTELineMiss/2 {
		t.Fatalf("level signal too weak: 4K %.1f vs 2M %.1f", slot4K.Cycles, slot2M.Cycles)
	}
}

func TestScanMappedHealsIsolatedMisreads(t *testing.T) {
	p, k := bootedProber(t, uarch.AlderLake12400F(), 47, linux.Config{})
	lm := k.Modules[3]
	pages := int(lm.Size >> 12)
	mapped, _ := p.ScanMapped(lm.Base, pages, paging.Page4K)
	for i, ok := range mapped {
		if !ok {
			t.Fatalf("module page %d read unmapped after the healing pass", i)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.CalibrationPages != 256 || o.ProbeSamples != 1 || o.Margin != 4 {
		t.Fatalf("defaults %+v", o)
	}
	o = Options{CalibrationPages: 8, ProbeSamples: 3, Margin: 2}.withDefaults()
	if o.CalibrationPages != 8 || o.ProbeSamples != 3 || o.Margin != 2 {
		t.Fatalf("overrides lost: %+v", o)
	}
}

func TestMinOfKProbesReduceNoise(t *testing.T) {
	// Ablation: with heavy sampling, probes of the same page should have
	// lower dispersion than single samples.
	m := machine.New(uarch.AlderLake12400F(), 49)
	if _, err := linux.Boot(m, linux.Config{Seed: 49}); err != nil {
		t.Fatal(err)
	}
	p1, err := NewProber(m, Options{ProbeSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := NewProber(m, Options{ProbeSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	va := linux.TextRegionBase + 64*paging.Page2M
	spread := func(p *Prober) float64 {
		min, max := 1e18, 0.0
		for i := 0; i < 60; i++ {
			c := p.ProbeMapped(va).Cycles
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max - min
	}
	if spread(pk) > spread(p1) {
		t.Fatal("min-of-8 probing is noisier than single probing")
	}
}

// Property: the calibrated threshold is always strictly between the fast
// store path and the dirty-assist time, across presets and seeds.
func TestCalibrationProperty(t *testing.T) {
	presets := uarch.All()
	err := quick.Check(func(seed uint64, pi uint8) bool {
		preset := presets[int(pi)%len(presets)]
		m := machine.New(preset, seed)
		if _, err := linux.Boot(m, linux.Config{Seed: seed}); err != nil {
			return false
		}
		p, err := NewProber(m, Options{CalibrationPages: 64})
		if err != nil {
			return false
		}
		fastStore := preset.MaskedStoreBase + preset.FenceOverhead
		dirty := preset.MaskedStoreBase + preset.AssistDirty + preset.FenceOverhead
		return p.StoreThreshold.Cycles > fastStore && p.StoreThreshold.Cycles < dirty &&
			p.Threshold.Cycles > dirty-10
	}, &quick.Config{MaxCount: 16})
	if err != nil {
		t.Fatal(err)
	}
}
