package core

import (
	"fmt"

	"repro/internal/linux"
	"repro/internal/paging"
)

// KPTIResult is the outcome of the KPTI-bypassing KASLR break (§IV-D).
type KPTIResult struct {
	// TrampolineVA is the mapped KPTI trampoline page the scan found.
	TrampolineVA paging.VirtAddr
	// Base is the kernel base derived from the trampoline's constant
	// offset.
	Base        paging.VirtAddr
	ProbeCycles uint64
	TotalCycles uint64
}

// KPTIBreak derandomizes KASLR on a KPTI-enabled kernel (§IV-D). KPTI
// leaves the trampoline (entry_SYSCALL_64) mapped in the user table at a
// build-constant offset from the kernel base; the page-table attack finds
// the only mapped slot in the kernel region, and subtracting the known
// offset yields the base.
//
// trampolineOffset is attacker knowledge for the victim kernel build
// (0xc00000 on Ubuntu 20.04, 0xe00000 on the EC2 AWS kernel).
func KPTIBreak(p *Prober, trampolineOffset uint64) (KPTIResult, error) {
	var res KPTIResult
	if err := p.M.Fire("probe"); err != nil {
		return res, err
	}
	start := p.M.RDTSC()
	probeStart := p.M.RDTSC()
	for slot := 0; slot < linux.TextSlots; slot++ {
		va := linux.TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		pr := p.ProbeMapped(va)
		if pr.Fast {
			res.TrampolineVA = va
			break
		}
	}
	res.ProbeCycles = p.M.RDTSC() - probeStart
	res.TotalCycles = p.M.RDTSC() - start + KernelBaseResult{}.calibrationCycles(p)
	if res.TrampolineVA == 0 {
		return res, fmt.Errorf("core: no trampoline found in kernel region")
	}
	if uint64(res.TrampolineVA) < trampolineOffset {
		return res, fmt.Errorf("core: trampoline below expected offset")
	}
	res.Base = res.TrampolineVA - paging.VirtAddr(trampolineOffset)
	return res, nil
}
