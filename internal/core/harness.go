package core

import (
	"fmt"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// TrialReport aggregates an n-trial evaluation of one attack on one CPU —
// one cell group of Table I.
type TrialReport struct {
	CPU     string
	Target  string
	Trials  int
	Correct int
	// ItemAccuracy, when non-zero, overrides the trial-success rate with a
	// per-item mean (the module attack scores per-module detection).
	ItemAccuracy float64
	// ProbeSec and TotalSec are the mean runtimes in seconds.
	ProbeSec, TotalSec float64
	// ProbeStats collects per-trial probing runtimes for dispersion.
	ProbeStats stats.Stream
}

// Accuracy returns the success fraction.
func (r TrialReport) Accuracy() float64 {
	if r.ItemAccuracy > 0 {
		return r.ItemAccuracy
	}
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Trials)
}

// String renders a Table I row.
func (r TrialReport) String() string {
	return fmt.Sprintf("%-28s %-8s probe=%10.3gs total=%10.3gs acc=%6.2f%% (n=%d)",
		r.CPU, r.Target, r.ProbeSec, r.TotalSec, 100*r.Accuracy(), r.Trials)
}

// EvaluateKernelBase reboots the victim n times with fresh KASLR and runs
// the base-derandomization attack each time, scoring exact base recovery
// (the paper's Table I methodology: reboot, attack, check
// /proc/kallsyms).
func EvaluateKernelBase(preset *uarch.Preset, n int, seed uint64) (TrialReport, error) {
	return EvaluateKernelBaseOpt(preset, n, seed, Options{})
}

// EvaluateKernelBaseOpt is EvaluateKernelBase with explicit prober options
// (notably Options.Workers, the slot scan's engine parallelism, and
// Options.Pool: each trial boots a fresh victim, but a shared pool rebinds
// the same worker replicas to it, so the clone cost is paid once per
// session instead of once per trial).
func EvaluateKernelBaseOpt(preset *uarch.Preset, n int, seed uint64, opt Options) (TrialReport, error) {
	rep := TrialReport{CPU: preset.Name, Target: "Base", Trials: n}
	var probeSum, totalSum float64
	for i := 0; i < n; i++ {
		s := seed + uint64(i)*0x9e37
		m := machine.New(preset, s)
		k, err := linux.Boot(m, linux.Config{Seed: s})
		if err != nil {
			return rep, err
		}
		p, err := NewProber(m, opt)
		if err != nil {
			return rep, err
		}
		res, err := KernelBase(p)
		if err == nil && res.Base == k.Base {
			rep.Correct++
		}
		if p.Faults() != 0 {
			return rep, fmt.Errorf("core: attack faulted (trial %d)", i)
		}
		probeSum += res.ProbeSeconds(preset)
		totalSum += res.TotalSeconds(preset)
		rep.ProbeStats.Add(res.ProbeSeconds(preset))
	}
	rep.ProbeSec = probeSum / float64(n)
	rep.TotalSec = totalSum / float64(n)
	return rep, nil
}

// EvaluateModules reboots n times and scores module detection: the trial
// accuracy is the fraction of loaded modules whose base and size were
// recovered exactly (the Table I "Modules" rows).
func EvaluateModules(preset *uarch.Preset, n int, seed uint64) (TrialReport, error) {
	return EvaluateModulesOpt(preset, n, seed, Options{})
}

// EvaluateModulesOpt is EvaluateModules with explicit prober options.
func EvaluateModulesOpt(preset *uarch.Preset, n int, seed uint64, opt Options) (TrialReport, error) {
	rep := TrialReport{CPU: preset.Name, Target: "Modules", Trials: n}
	var probeSum, totalSum, accSum float64
	for i := 0; i < n; i++ {
		s := seed + uint64(i)*0x517c
		m := machine.New(preset, s)
		k, err := linux.Boot(m, linux.Config{Seed: s})
		if err != nil {
			return rep, err
		}
		p, err := NewProber(m, opt)
		if err != nil {
			return rep, err
		}
		table := SizeTable(k.ProcModules())
		res := Modules(p, table)
		score := ScoreModules(res, k.Modules, table)
		accSum += score.DetectionAccuracy()
		if score.DetectionAccuracy() >= 0.99 {
			rep.Correct++
		}
		probeSum += preset.CyclesToSeconds(res.ProbeCycles)
		totalSum += preset.CyclesToSeconds(res.TotalCycles)
		rep.ProbeStats.Add(preset.CyclesToSeconds(res.ProbeCycles))
	}
	rep.ProbeSec = probeSum / float64(n)
	rep.TotalSec = totalSum / float64(n)
	// Table I's module accuracy is per-module, not per-trial.
	rep.ItemAccuracy = accSum / float64(n)
	return rep, nil
}
