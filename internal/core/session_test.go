package core

import (
	"reflect"
	"testing"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
)

// A prober restored to its post-calibration checkpoint must replay an
// attack bit-identically: this is the contract the service's session reuse
// rests on (job N on a session == job 1 on a fresh session).
func TestProberRestoreReplaysAttack(t *testing.T) {
	p, k := engineProber(t, 4242, 2)
	state := p.Checkpoint()

	first, err := KernelBase(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Base != k.Base {
		t.Fatalf("base %#x, truth %#x", uint64(first.Base), uint64(k.Base))
	}

	if err := p.Restore(state); err != nil {
		t.Fatal(err)
	}
	second, err := KernelBase(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("restored replay differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// A prober built from a cached calibration on a freshly booted replica of
// the same victim must be indistinguishable from a freshly calibrated one:
// same thresholds, same clock, and bit-identical attack results — both for
// an engine-sweep attack (kernel base) and for a direct-probe attack
// (KPTI trampoline search), which is sensitive to the exact post-
// calibration machine state.
func TestNewProberFromCalibrationMatchesFresh(t *testing.T) {
	boot := func(kpti bool) (*Prober, *linux.Kernel, *machine.Machine) {
		m := machine.New(uarch.AlderLake12400F(), 515)
		k, err := linux.Boot(m, linux.Config{Seed: 515, KPTI: kpti})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProber(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p, k, m
	}

	// Engine-sweep attack.
	pFresh, k, _ := boot(false)
	cal := pFresh.CalibrationSnapshot()
	want, err := KernelBase(pFresh)
	if err != nil {
		t.Fatal(err)
	}

	m2 := machine.New(uarch.AlderLake12400F(), 515)
	if _, err := linux.Boot(m2, linux.Config{Seed: 515}); err != nil {
		t.Fatal(err)
	}
	pCached := NewProberFromCalibration(m2, Options{}, cal)
	// One-sided calibration leaves SlowMean NaN, so compare the decision
	// values rather than the whole structs.
	if pCached.Threshold.Cycles != pFresh.Threshold.Cycles ||
		pCached.StoreThreshold.Cycles != pFresh.StoreThreshold.Cycles {
		t.Fatal("cached prober thresholds differ from fresh calibration")
	}
	got, err := KernelBase(pCached)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cached-calibration kernel base differs from fresh:\nfresh:  %+v\ncached: %+v", want, got)
	}
	if got.Base != k.Base {
		t.Fatalf("base %#x, truth %#x", uint64(got.Base), uint64(k.Base))
	}

	// Direct-probe attack (no engine sweep between calibration and probes).
	pKF, kk, _ := boot(true)
	calK := pKF.CalibrationSnapshot()
	wantK, err := KPTIBreak(pKF, linux.DefaultTrampolineOffset)
	if err != nil {
		t.Fatal(err)
	}
	if wantK.Base != kk.Base {
		t.Fatalf("KPTI base %#x, truth %#x", uint64(wantK.Base), uint64(kk.Base))
	}
	m3 := machine.New(uarch.AlderLake12400F(), 515)
	if _, err := linux.Boot(m3, linux.Config{Seed: 515, KPTI: true}); err != nil {
		t.Fatal(err)
	}
	gotK, err := KPTIBreak(NewProberFromCalibration(m3, Options{}, calK), linux.DefaultTrampolineOffset)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantK, gotK) {
		t.Fatalf("cached-calibration KPTI break differs from fresh:\nfresh:  %+v\ncached: %+v", wantK, gotK)
	}
}

// The batched term-level chunk must be bit-identical to the per-VA
// ProbeTermLevel loop it replaced (the AMD ROADMAP follow-up): same
// minima, same verdicts, same simulated clock.
func TestProbeTermBatchMatchesPerVALoop(t *testing.T) {
	build := func() *Prober {
		m := machine.New(uarch.Zen3_5600X(), 888)
		if _, err := linux.Boot(m, linux.Config{Seed: 888}); err != nil {
			t.Fatal(err)
		}
		p, err := NewProber(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	const n = 96
	const samples = 5
	start := linux.TextRegionBase
	stride := uint64(paging.Page2M)

	pLoop := build()
	thr := pLoop.PTTermThreshold()
	pLoop.M.ReseedNoise(12345)
	pLoop.M.ResetTranslationState()
	wantCycles := make([]float64, n)
	wantVerdicts := make([]bool, n)
	for i := 0; i < n; i++ {
		tp := pLoop.ProbeTermLevel(start+paging.VirtAddr(uint64(i)*stride), samples)
		wantCycles[i] = tp.Cycles
		wantVerdicts[i] = tp.Cycles > thr
	}

	pBatch := build()
	pBatch.M.ReseedNoise(12345)
	pBatch.M.ResetTranslationState()
	gotCycles := make([]float64, n)
	gotVerdicts := make([]bool, n)
	pBatch.probeTermBatchWindow(start, stride, 0, n, nil, samples, thr, gotCycles, gotVerdicts)

	if !reflect.DeepEqual(wantCycles, gotCycles) {
		t.Fatal("batched term cycles differ from per-VA loop")
	}
	if !reflect.DeepEqual(wantVerdicts, gotVerdicts) {
		t.Fatal("batched term verdicts differ from per-VA loop")
	}
	if pLoop.M.RDTSC() != pBatch.M.RDTSC() {
		t.Fatalf("clocks differ: loop %d, batch %d", pLoop.M.RDTSC(), pBatch.M.RDTSC())
	}
	if pLoop.Faults() != pBatch.Faults() {
		t.Fatalf("fault counts differ: loop %d, batch %d", pLoop.Faults(), pBatch.Faults())
	}
}
