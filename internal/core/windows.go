package core

import (
	"fmt"

	"repro/internal/paging"
	"repro/internal/winkernel"
)

// WindowsResult is the outcome of the Windows 10 kernel scan (§IV-G).
type WindowsResult struct {
	// RegionBase is the base of the recovered kernel image region (the
	// first slot of the run of consecutive mapped 2 MiB pages).
	RegionBase paging.VirtAddr
	// RunSlots is the detected run length in 2 MiB slots.
	RunSlots    int
	ProbeCycles uint64
	TotalCycles uint64
}

// WindowsKernel derandomizes the Windows 10 kernel region (§IV-G): probe
// the 2^18 possible 2 MiB slots with the page-table attack and report the
// first run of exactly runLen consecutive mapped slots (the kernel image's
// five consecutive 2 MiB pages). Driver images produce other runs; the
// run-length signature disambiguates.
func WindowsKernel(p *Prober, runLen int) (WindowsResult, error) {
	var res WindowsResult
	if err := p.M.Fire("probe"); err != nil {
		return res, err
	}
	start := p.M.RDTSC()
	probeStart := p.M.RDTSC()
	mapped, _ := p.ScanMapped(winkernel.RegionBase, int(winkernel.Slots), paging.Page2M)
	res.ProbeCycles = p.M.RDTSC() - probeStart

	run := 0
	var runStart paging.VirtAddr
	for slot := 0; slot <= int(winkernel.Slots); slot++ {
		if slot < int(winkernel.Slots) && mapped[slot] {
			if run == 0 {
				runStart = winkernel.RegionBase + paging.VirtAddr(uint64(slot)<<21)
			}
			run++
			continue
		}
		if run == runLen {
			res.RegionBase = runStart
			res.RunSlots = run
			break
		}
		run = 0
	}
	res.TotalCycles = p.M.RDTSC() - start + KernelBaseResult{}.calibrationCycles(p)
	if res.RegionBase == 0 {
		return res, fmt.Errorf("core: no %d-slot kernel region found", runLen)
	}
	return res, nil
}

// EntryPointResult is the outcome of the residual-entropy break (§IV-G's
// proposed combination of the region scan with the TLB attack).
type EntryPointResult struct {
	// EntryVA is the recovered kernel entry page (4 KiB granularity).
	EntryVA     paging.VirtAddr
	TotalCycles uint64
}

// WindowsEntryPoint breaks the remaining 9 bits of Windows KASLR entropy
// after WindowsKernel has found the image region: the entry point sits on
// a random 4 KiB boundary of the first image slot, whose text is 4 KiB
// mapped. For each candidate page, evict the TLB, make the victim enter
// the kernel (trigger), and probe — only the entry path's pages come back
// TLB-hot. trigger is the attacker-controllable kernel entry (any system
// call).
func WindowsEntryPoint(p *Prober, regionBase paging.VirtAddr, trigger func()) (EntryPointResult, error) {
	start := p.M.RDTSC()
	var res EntryPointResult
	pages := paging.Page2M / paging.Page4K
	for pg := 0; pg < pages; pg++ {
		va := regionBase + paging.VirtAddr(uint64(pg)<<12)
		p.M.EvictTLB()
		trigger()
		if pr := p.ProbeTLB(va); pr.Fast {
			res.EntryVA = va
			break
		}
	}
	res.TotalCycles = p.M.RDTSC() - start
	if res.EntryVA == 0 {
		return res, fmt.Errorf("core: no TLB-hot entry page found in the first image slot")
	}
	return res, nil
}

// KVASResult is the outcome of the KVAS-region scan (§IV-G, Windows KPTI).
type KVASResult struct {
	// KVASVA is the recovered shadow-transition region base.
	KVASVA paging.VirtAddr
	// Base is the kernel base derived from the constant KVAS offset.
	Base        paging.VirtAddr
	ProbeCycles uint64
	TotalCycles uint64
}

// KVASBreak derandomizes KASLR on KVAS-enabled Windows (§IV-G): scan the
// kernel region at 4 KiB granularity for the run of exactly
// winkernel.KVASPages consecutive mapped pages (KiSystemCall64Shadow), then
// subtract the build-constant offset. scanSlots limits the scan to the
// first N 2 MiB slots (the paper scans the whole region in ~8 s; tests use
// a narrower window).
func KVASBreak(p *Prober, scanSlots int) (KVASResult, error) {
	start := p.M.RDTSC()
	var res KVASResult
	probeStart := p.M.RDTSC()

	if scanSlots <= 0 || scanSlots > int(winkernel.Slots) {
		scanSlots = int(winkernel.Slots)
	}
	pages := scanSlots * (paging.Page2M / paging.Page4K)
	mapped, _ := p.ScanMapped(winkernel.RegionBase, pages, paging.Page4K)
	res.ProbeCycles = p.M.RDTSC() - probeStart

	run := 0
	var runStart paging.VirtAddr
	for i := 0; i <= pages; i++ {
		if i < pages && mapped[i] {
			if run == 0 {
				runStart = winkernel.RegionBase + paging.VirtAddr(uint64(i)<<12)
			}
			run++
			continue
		}
		if run == winkernel.KVASPages {
			res.KVASVA = runStart
			break
		}
		run = 0
	}
	res.TotalCycles = p.M.RDTSC() - start + KernelBaseResult{}.calibrationCycles(p)
	if res.KVASVA == 0 {
		return res, fmt.Errorf("core: KVAS region not found in %d slots", scanSlots)
	}
	if uint64(res.KVASVA) < winkernel.KVASOffset {
		return res, fmt.Errorf("core: KVAS region below expected offset")
	}
	res.Base = res.KVASVA - paging.VirtAddr(winkernel.KVASOffset)
	return res, nil
}
