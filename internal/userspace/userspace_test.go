package userspace

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
)

func build(t *testing.T, cfg Config) (*machine.Machine, *Process) {
	t.Helper()
	m := machine.New(uarch.IceLake1065G7(), cfg.Seed+3000)
	p, err := Build(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestExeInRegion(t *testing.T) {
	_, p := build(t, Config{Seed: 1})
	if p.Exe.Base < ExeRegionBase || p.Exe.Base >= ExeRegionBase+(1<<(EntropyBits+12)) {
		t.Fatalf("exe at %#x", uint64(p.Exe.Base))
	}
	if uint64(p.Exe.Base)%paging.Page4K != 0 {
		t.Fatal("exe base unaligned")
	}
}

func TestASLREntropy(t *testing.T) {
	bases := make(map[paging.VirtAddr]bool)
	for seed := uint64(0); seed < 32; seed++ {
		_, p := build(t, Config{Seed: seed})
		bases[p.Exe.Base] = true
	}
	if len(bases) < 30 {
		t.Fatalf("only %d distinct exe bases", len(bases))
	}
}

func TestSectionPermissionsMapped(t *testing.T) {
	m, p := build(t, Config{Seed: 3})
	libc := p.Libs[0]
	if libc.Image.Name != "libc.so" {
		t.Fatalf("first lib %q", libc.Image.Name)
	}
	va := libc.Base
	for _, sec := range libc.Image.Sections {
		for pg := 0; pg < sec.Pages; pg++ {
			w := m.UserAS.Translate(va+paging.VirtAddr(pg*paging.Page4K), nil)
			switch sec.Perm {
			case PermNone:
				if w.Mapped {
					t.Fatalf("--- page mapped at %#x (PROT_NONE must have no PTE)", uint64(va))
				}
			case PermRW:
				if !w.Mapped || !w.Flags.Has(paging.Writable) || !w.Flags.Has(paging.Dirty) {
					t.Fatalf("rw- page wrong at %#x: %v", uint64(va), w.Flags)
				}
			default:
				if !w.Mapped || w.Flags.Has(paging.Writable) {
					t.Fatalf("%v page wrong at %#x: %v", sec.Perm, uint64(va), w.Flags)
				}
			}
		}
		va += paging.VirtAddr(sec.Pages * paging.Page4K)
	}
}

func TestLibcMatchesFigure7(t *testing.T) {
	im := Libc()
	// Section order and sizes from Figure 7's address ranges.
	want := []Section{{PermRX, 0x1e7}, {PermNone, 0x200}, {PermR, 4}, {PermRW, 2}}
	if len(im.Sections) != len(want) {
		t.Fatalf("sections %d", len(im.Sections))
	}
	for i, s := range want {
		if im.Sections[i] != s {
			t.Fatalf("section %d: %+v, want %+v", i, im.Sections[i], s)
		}
	}
}

func TestSignaturesDistinct(t *testing.T) {
	libs := StandardLibraries()
	seen := map[string]string{}
	for _, lib := range libs {
		key := ""
		for _, s := range lib.Sections {
			if s.Perm == PermNone {
				key += "|"
				continue
			}
			key += string(rune('a'+int(s.Perm))) + itoa(s.Pages) + ","
		}
		if other, dup := seen[key]; dup {
			t.Fatalf("%s and %s share a signature", lib.Name, other)
		}
		seen[key] = lib.Name
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestHiddenPages(t *testing.T) {
	m, p := build(t, Config{Seed: 5, HideLastRWPage: true})
	if len(p.Exe.HiddenPages) != 1 {
		t.Fatalf("hidden pages %d", len(p.Exe.HiddenPages))
	}
	hp := p.Exe.HiddenPages[0]
	// Mapped in the page tables…
	w := m.UserAS.Translate(hp, nil)
	if !w.Mapped || !w.Flags.Has(paging.Writable) {
		t.Fatal("hidden page not mapped rw-")
	}
	// …but absent from the maps file.
	for _, e := range p.Maps() {
		if hp >= e.Start && hp < e.End {
			t.Fatalf("hidden page %#x appears in maps entry %+v", uint64(hp), e)
		}
	}
}

func TestMapsRendering(t *testing.T) {
	_, p := build(t, Config{Seed: 7})
	out := p.RenderMaps()
	if !strings.Contains(out, "libc.so") || !strings.Contains(out, "r-x") {
		t.Fatalf("maps rendering:\n%s", out)
	}
	entries := p.Maps()
	for i := 1; i < len(entries); i++ {
		if entries[i].Start < entries[i-1].End {
			t.Fatalf("maps entries overlap: %+v after %+v", entries[i], entries[i-1])
		}
	}
}

func TestGroundTruthPerm(t *testing.T) {
	_, p := build(t, Config{Seed: 9})
	libc := p.Libs[0]
	// r-x page.
	perm, mapped := p.GroundTruthPerm(libc.Base)
	if !mapped || perm != PermR {
		t.Fatalf("r-x ground truth: %v %v", perm, mapped)
	}
	// --- page (inside the gap).
	gap := libc.Base + paging.VirtAddr(0x1e7*paging.Page4K)
	if _, mapped := p.GroundTruthPerm(gap); mapped {
		t.Fatal("--- page reported mapped")
	}
	// rw- page.
	rw := libc.Base + paging.VirtAddr((0x1e7+0x200+4)*paging.Page4K)
	perm, mapped = p.GroundTruthPerm(rw)
	if !mapped || perm != PermRW {
		t.Fatalf("rw- ground truth: %v %v", perm, mapped)
	}
}

func TestEntropyBitsOverride(t *testing.T) {
	_, p := build(t, Config{Seed: 11, EntropyBits: 8})
	if p.Exe.Base >= ExeRegionBase+(1<<(8+12)) {
		t.Fatalf("exe at %#x beyond 8-bit entropy", uint64(p.Exe.Base))
	}
}

func TestLibrariesDoNotOverlap(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		_, p := build(t, Config{Seed: seed, HideLastRWPage: true})
		for i := 1; i < len(p.Libs); i++ {
			prev, cur := p.Libs[i-1], p.Libs[i]
			minStart := prev.End()
			if len(prev.HiddenPages) > 0 {
				minStart += paging.Page4K
			}
			if cur.Base < minStart {
				t.Fatalf("%s overlaps %s", cur.Image.Name, prev.Image.Name)
			}
		}
	}
}

func TestPermString(t *testing.T) {
	for p, s := range map[Perm]string{PermNone: "---", PermR: "r--", PermRX: "r-x", PermRW: "rw-"} {
		if p.String() != s {
			t.Errorf("%v -> %q", p, p.String())
		}
	}
}
