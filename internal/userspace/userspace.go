// Package userspace builds the attacked process's own address space:
// the ASLR-randomized executable image and shared libraries with their
// ELF-style section layouts, plus the /proc/PID/maps rendering the paper
// compares its Figure 7 recovery against.
//
// Layout constants follow §IV-F: 28 bits of mmap entropy, the executable
// at 0x55XXXXXXX000 and libraries at 0x7fXXXXXXX000, each library being a
// run of consecutive sections with permissions in the order r-x, ---, r--,
// rw- whose sizes form a per-library signature.
package userspace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
)

// Randomization constants (x86-64 Linux, 28-bit mmap entropy).
const (
	// ExeRegionBase is the base of the PIE executable randomization range.
	ExeRegionBase paging.VirtAddr = 0x550000000000
	// LibRegionBase is the base of the mmap/library randomization range.
	LibRegionBase paging.VirtAddr = 0x7f0000000000
	// EntropyBits is the number of randomized page-granular bits.
	EntropyBits = 28
)

// Perm is a section permission in maps-file notation.
type Perm int

// Section permissions.
const (
	PermNone Perm = iota // --- : reserved, never faultable (no PTEs)
	PermR                // r--
	PermRX               // r-x
	PermRW               // rw-
)

// String renders the maps-file permission column.
func (p Perm) String() string {
	switch p {
	case PermNone:
		return "---"
	case PermR:
		return "r--"
	case PermRX:
		return "r-x"
	case PermRW:
		return "rw-"
	}
	return "???"
}

// flags returns the paging flags for mapped sections. PermNone sections
// return ok=false: Linux PROT_NONE reservations have no present PTEs,
// which is why the attack cannot distinguish them from unmapped holes
// (Figure 7 reports "(---|unmap)").
func (p Perm) flags() (paging.Flags, bool) {
	switch p {
	case PermR, PermRX:
		return paging.User, true
	case PermRW:
		return paging.User | paging.Writable, true
	}
	return 0, false
}

// Section is one contiguous same-permission region of an image.
type Section struct {
	Perm  Perm
	Pages int // size in 4 KiB pages
}

// Image describes an executable or library as its ordered section list.
// The section-size vector is the load signature §IV-F uses to identify
// libraries.
type Image struct {
	Name     string
	Sections []Section
}

// Pages returns the image's total span in pages, including --- gaps.
func (im Image) Pages() int {
	n := 0
	for _, s := range im.Sections {
		n += s.Pages
	}
	return n
}

// Signature returns the section-size vector (pages per section, in order)
// used for library fingerprinting.
func (im Image) Signature() []int {
	sig := make([]int, len(im.Sections))
	for i, s := range im.Sections {
		sig[i] = s.Pages
	}
	return sig
}

// Libc is the libc.so image of Figure 7: r-x 0x1e7 pages, --- 0x200 pages,
// r-- 4 pages, rw- 2 pages (derived from the figure's address ranges),
// plus the 2 extra rw- pages the attack detects beyond the maps file.
func Libc() Image {
	return Image{
		Name: "libc.so",
		Sections: []Section{
			{PermRX, 0x1e7},   // 0x7f..ed4d000-0x7f..ef34000
			{PermNone, 0x200}, // 0x7f..ef34000-0x7f..f134000
			{PermR, 4},        // 0x7f..f134000-0x7f..f138000
			{PermRW, 2},       // 0x7f..f138000-0x7f..f13a000
		},
	}
}

// StandardLibraries returns a plausible loaded-library set with distinct
// signatures: libc plus the usual early-loaded libraries.
func StandardLibraries() []Image {
	return []Image{
		Libc(),
		{Name: "ld-linux-x86-64.so", Sections: []Section{{PermRX, 0x26}, {PermR, 1}, {PermRW, 2}}},
		{Name: "libm.so", Sections: []Section{{PermRX, 0x4d}, {PermNone, 0x40}, {PermR, 1}, {PermRW, 1}}},
		{Name: "libpthread.so", Sections: []Section{{PermRX, 0x11}, {PermNone, 0x20}, {PermR, 1}, {PermRW, 1}}},
		{Name: "libdl.so", Sections: []Section{{PermRX, 0x3}, {PermNone, 0x8}, {PermR, 1}, {PermRW, 1}}},
		{Name: "libstdc++.so", Sections: []Section{{PermRX, 0xc5}, {PermNone, 0x30}, {PermR, 8}, {PermRW, 2}}},
	}
}

// AppImage is the Figure 7 executable: r-x 2 pages, --- 0x1ff pages, r--
// 1 page, rw- 2 pages (0x55892b893000..0x55892ba97000), where the second
// rw- page exists only in the page tables, not in the maps file.
func AppImage() Image {
	return Image{
		Name: "app",
		Sections: []Section{
			{PermRX, 2},
			{PermNone, 0x1ff},
			{PermR, 1},
			{PermRW, 2},
		},
	}
}

// Mapping is one placed image.
type Mapping struct {
	Image Image
	Base  paging.VirtAddr
	// HiddenPages lists pages mapped in the page tables but omitted from
	// the maps file (Fig. 7's extra detected pages).
	HiddenPages []paging.VirtAddr
}

// End returns one past the mapping's last page (including --- spans).
func (mp Mapping) End() paging.VirtAddr {
	return mp.Base + paging.VirtAddr(mp.Image.Pages()*paging.Page4K)
}

// Process is the victim/attacker process address-space layout.
type Process struct {
	Exe  Mapping
	Libs []Mapping

	m  *machine.Machine
	as *paging.AddressSpace
}

// Config controls process construction.
type Config struct {
	Seed uint64
	// Libraries to load; nil loads StandardLibraries.
	Libraries []Image
	// HideLastRWPage omits each image's final rw- page from the maps file
	// while still mapping it (the /proc discrepancy Figure 7 surfaces:
	// pages "never identified with a /proc/PID/maps file").
	HideLastRWPage bool
	// EntropyBits overrides the 28-bit default. Full-entropy scans cost
	// hundreds of millions of probes; scaled experiments reduce the
	// entropy and extrapolate (documented in EXPERIMENTS.md).
	EntropyBits int
}

// Build places the executable and libraries with fresh ASLR and maps their
// faultable sections into the machine's *user* address space. The machine
// must already have its OS installed (the process shares the user root).
func Build(m *machine.Machine, cfg Config) (*Process, error) {
	r := rng.New(cfg.Seed ^ 0xa51aa51aa51aa51a)
	p := &Process{m: m, as: m.UserAS}
	bits := cfg.EntropyBits
	if bits <= 0 || bits > EntropyBits {
		bits = EntropyBits
	}

	exe := AppImage()
	exeBase := ExeRegionBase + paging.VirtAddr(r.Uint64n(1<<bits)<<12)
	mp, err := p.place(exe, exeBase, cfg.HideLastRWPage)
	if err != nil {
		return nil, err
	}
	p.Exe = mp

	libs := cfg.Libraries
	if libs == nil {
		libs = StandardLibraries()
	}
	// Libraries are mmapped consecutively downward from a randomized top,
	// as the Linux mmap allocator does.
	cur := LibRegionBase + paging.VirtAddr(r.Uint64n(1<<bits)<<12)
	for _, lib := range libs {
		mp, err := p.place(lib, cur, cfg.HideLastRWPage)
		if err != nil {
			return nil, err
		}
		p.Libs = append(p.Libs, mp)
		gap := paging.VirtAddr(uint64(1+r.Intn(4)) << 12)
		cur = mp.End() + gap
	}
	return p, nil
}

// place maps one image at base.
func (p *Process) place(im Image, base paging.VirtAddr, hideLastRW bool) (Mapping, error) {
	mp := Mapping{Image: im, Base: base}
	va := base
	for _, sec := range im.Sections {
		flags, mapped := sec.Perm.flags()
		if mapped {
			for pg := 0; pg < sec.Pages; pg++ {
				frame := p.m.Alloc.Alloc()
				f := flags
				if sec.Perm == PermRW {
					// Data pages have been written by the loader.
					f |= paging.Dirty | paging.Accessed
				}
				if err := p.as.Map(va+paging.VirtAddr(pg*paging.Page4K), paging.Page4K, frame, f); err != nil {
					return Mapping{}, err
				}
			}
		}
		va += paging.VirtAddr(sec.Pages * paging.Page4K)
	}
	if hideLastRW {
		// One extra rw- page beyond the image's maps-visible extent
		// (loader bss over-allocation): present in the page tables only.
		frame := p.m.Alloc.Alloc()
		hidden := va
		if err := p.as.Map(hidden, paging.Page4K, frame,
			paging.User|paging.Writable|paging.Dirty|paging.Accessed); err != nil {
			return Mapping{}, err
		}
		mp.HiddenPages = append(mp.HiddenPages, hidden)
	}
	return mp, nil
}

// MapsEntry is one /proc/PID/maps line.
type MapsEntry struct {
	Start, End paging.VirtAddr
	Perm       Perm
	Name       string
}

// Maps renders the /proc/PID/maps view: one entry per section with PTEs or
// a --- reservation, excluding hidden pages.
func (p *Process) Maps() []MapsEntry {
	var out []MapsEntry
	add := func(mp Mapping) {
		va := mp.Base
		for _, sec := range mp.Image.Sections {
			out = append(out, MapsEntry{
				Start: va,
				End:   va + paging.VirtAddr(sec.Pages*paging.Page4K),
				Perm:  sec.Perm,
				Name:  mp.Image.Name,
			})
			va += paging.VirtAddr(sec.Pages * paging.Page4K)
		}
	}
	add(p.Exe)
	for _, lib := range p.Libs {
		add(lib)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// RenderMaps formats the maps view as text.
func (p *Process) RenderMaps() string {
	var b strings.Builder
	for _, e := range p.Maps() {
		fmt.Fprintf(&b, "%012x-%012x %s %s\n", uint64(e.Start), uint64(e.End), e.Perm, e.Name)
	}
	return b.String()
}

// GroundTruthPerm returns the true permission of the page at va from the
// page tables (the custom-kernel-module check of §IV-F), distinguishing
// mapped perms from "unmapped or ---".
func (p *Process) GroundTruthPerm(va paging.VirtAddr) (Perm, bool) {
	w := p.as.Translate(paging.PageBase(va, paging.Page4K), nil)
	if !w.Mapped || !w.Flags.Has(paging.User) {
		return PermNone, false
	}
	if w.Flags.Has(paging.Writable) {
		return PermRW, true
	}
	return PermR, true
}
