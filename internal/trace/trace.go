// Package trace renders experiment results: CSV series for offline
// plotting and ASCII scatter/line plots for the terminal, in the style of
// the paper's Figures 4–7.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named (x, y) sequence.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// CSV renders one or more series as aligned CSV (x, then one column per
// series; series must share X or be rendered separately).
func CSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	n := series[0].Len()
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%g", series[0].X[i])
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Plot configures an ASCII plot.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 78)
	Height int // plot rows (default 16)
	series []*Series
	marks  []byte
}

// NewPlot creates a plot with a title.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 78, Height: 16}
}

// AddSeries attaches a series with a point mark.
func (p *Plot) AddSeries(s *Series, mark byte) {
	p.series = append(p.series, s)
	p.marks = append(p.marks, mark)
}

// Render draws the plot as text.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 78
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range p.series {
		for i := 0; i < s.Len(); i++ {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			total++
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if total == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.series {
		for i := 0; i < s.Len(); i++ {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			r := h - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(h-1))
			grid[r][c] = p.marks[si]
		}
	}
	for r, row := range grid {
		yv := maxY - (maxY-minY)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%9.1f |%s\n", yv, string(row))
	}
	fmt.Fprintf(&b, "%9s  %s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%9s  %-*g%*g\n", "", w/2, minX, w-w/2, maxX)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%9s  x: %s   y: %s\n", "", p.XLabel, p.YLabel)
	}
	legend := make([]string, 0, len(p.series))
	for si, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", p.marks[si], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%9s  %s\n", "", strings.Join(legend, "  "))
	}
	return b.String()
}

// Table renders rows with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, hcell := range t.Header {
		widths[i] = len(hcell)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// TimelineRow is one bar of a span timeline: a labelled [StartNs, EndNs)
// interval at a tree depth. Rows come pre-ordered (depth-first over the
// span tree); the renderer only scales them onto a shared axis.
type TimelineRow struct {
	Label   string
	Depth   int
	StartNs int64
	EndNs   int64
}

// RenderTimeline draws rows as an ASCII Gantt chart: one line per row,
// label indented by depth, bar positioned on a shared 0..max(EndNs) axis
// of the given width (default 60 columns). Unclosed spans (EndNs 0) are
// drawn open-ended.
func RenderTimeline(title string, rows []TimelineRow, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(rows) == 0 {
		b.WriteString("(no spans)\n")
		return b.String()
	}
	var maxNs int64
	labelW := 0
	for _, r := range rows {
		if r.EndNs > maxNs {
			maxNs = r.EndNs
		}
		if r.StartNs > maxNs {
			maxNs = r.StartNs
		}
		if lw := 2*r.Depth + len(r.Label); lw > labelW {
			labelW = lw
		}
	}
	if maxNs == 0 {
		maxNs = 1
	}
	col := func(ns int64) int {
		c := int(float64(ns) / float64(maxNs) * float64(width-1))
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	for _, r := range rows {
		label := strings.Repeat("  ", r.Depth) + r.Label
		bar := []byte(strings.Repeat(" ", width))
		start := col(r.StartNs)
		end, open := width-1, true
		if r.EndNs > 0 {
			end, open = col(r.EndNs), false
		}
		for c := start; c <= end; c++ {
			bar[c] = '='
		}
		bar[start] = '|'
		if open {
			bar[width-1] = '>'
		} else if end > start {
			bar[end] = '|'
		}
		dur := "..."
		if !open {
			dur = fmt.Sprintf("%.3fms", float64(r.EndNs-r.StartNs)/1e6)
		}
		fmt.Fprintf(&b, "%-*s %s %s\n", labelW, label, string(bar), dur)
	}
	fmt.Fprintf(&b, "%-*s 0%*s\n", labelW, "", width+7, fmt.Sprintf("%.3fms", float64(maxNs)/1e6))
	return b.String()
}

// SortSeriesByX orders a series by ascending X (in place).
func SortSeriesByX(s *Series) {
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	nx := make([]float64, s.Len())
	ny := make([]float64, s.Len())
	for to, from := range idx {
		nx[to], ny[to] = s.X[from], s.Y[from]
	}
	s.X, s.Y = nx, ny
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
