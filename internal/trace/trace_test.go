package trace

import (
	"strings"
	"testing"
)

func TestSeriesAdd(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("series %+v", s)
	}
}

func TestCSV(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(0, 10)
	a.Add(1, 20)
	out := CSV(a)
	want := "x,a\n0,10\n1,20\n"
	if out != want {
		t.Fatalf("csv %q, want %q", out, want)
	}
	if CSV() != "x\n" {
		t.Fatal("empty csv wrong")
	}
}

func TestPlotRender(t *testing.T) {
	s := &Series{Name: "mapped"}
	for i := 0; i < 50; i++ {
		s.Add(float64(i), 93+float64(i%3))
	}
	p := NewPlot("test plot", "slot", "cycles")
	p.AddSeries(s, 'o')
	out := p.Render()
	if !strings.Contains(out, "test plot") || !strings.Contains(out, "o=mapped") {
		t.Fatalf("plot output:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("no data points rendered")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "", "")
	out := p.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot output %q", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	s := &Series{Name: "flat"}
	s.Add(0, 5)
	s.Add(1, 5)
	p := NewPlot("flat", "", "")
	p.AddSeries(s, '*')
	if out := p.Render(); !strings.Contains(out, "*") {
		t.Fatal("constant series dropped (degenerate y-range)")
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("no separator: %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "22") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestSortSeriesByX(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	SortSeriesByX(s)
	if s.X[0] != 1 || s.Y[0] != 10 || s.X[2] != 3 || s.Y[2] != 30 {
		t.Fatalf("sorted %+v", s)
	}
}
