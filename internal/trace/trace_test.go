package trace

import (
	"strings"
	"testing"
)

func TestSeriesAdd(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("series %+v", s)
	}
}

func TestCSV(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(0, 10)
	a.Add(1, 20)
	out := CSV(a)
	want := "x,a\n0,10\n1,20\n"
	if out != want {
		t.Fatalf("csv %q, want %q", out, want)
	}
	if CSV() != "x\n" {
		t.Fatal("empty csv wrong")
	}
}

func TestPlotRender(t *testing.T) {
	s := &Series{Name: "mapped"}
	for i := 0; i < 50; i++ {
		s.Add(float64(i), 93+float64(i%3))
	}
	p := NewPlot("test plot", "slot", "cycles")
	p.AddSeries(s, 'o')
	out := p.Render()
	if !strings.Contains(out, "test plot") || !strings.Contains(out, "o=mapped") {
		t.Fatalf("plot output:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("no data points rendered")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "", "")
	out := p.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot output %q", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	s := &Series{Name: "flat"}
	s.Add(0, 5)
	s.Add(1, 5)
	p := NewPlot("flat", "", "")
	p.AddSeries(s, '*')
	if out := p.Render(); !strings.Contains(out, "*") {
		t.Fatal("constant series dropped (degenerate y-range)")
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("no separator: %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "22") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestRenderTimeline(t *testing.T) {
	rows := []TimelineRow{
		{Label: "job", Depth: 0, StartNs: 0, EndNs: 4_000_000},
		{Label: "queue", Depth: 1, StartNs: 0, EndNs: 1_000_000},
		{Label: "attempt", Depth: 1, StartNs: 1_000_000, EndNs: 4_000_000},
		{Label: "execute", Depth: 2, StartNs: 1_500_000, EndNs: 3_900_000},
	}
	out := RenderTimeline("job 42", rows, 40)
	if !strings.Contains(out, "job 42") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + 4 rows + axis
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "  attempt") {
		t.Fatalf("depth indent missing: %q", lines[3])
	}
	if !strings.Contains(lines[1], "4.000ms") || !strings.Contains(lines[2], "1.000ms") {
		t.Fatalf("durations missing:\n%s", out)
	}
	// Child bars start no earlier than the root's origin column.
	if strings.Index(lines[4], "|") <= strings.Index(lines[1], "|") {
		t.Fatalf("execute bar not offset:\n%s", out)
	}
}

func TestRenderTimelineEdgeCases(t *testing.T) {
	if out := RenderTimeline("t", nil, 40); !strings.Contains(out, "(no spans)") {
		t.Fatalf("empty timeline: %q", out)
	}
	// Unclosed span renders open-ended instead of panicking.
	out := RenderTimeline("t", []TimelineRow{{Label: "hung", StartNs: 100}}, 40)
	if !strings.Contains(out, ">") || !strings.Contains(out, "...") {
		t.Fatalf("open span not rendered open-ended:\n%s", out)
	}
}

func TestSortSeriesByX(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	SortSeriesByX(s)
	if s.X[0] != 1 || s.Y[0] != 10 || s.X[2] != 3 || s.Y[2] != 30 {
		t.Fatalf("sorted %+v", s)
	}
}
