// Module database: the default victim module set models the Ubuntu 18.04.3
// (kernel 5.4.0-81) machine of §IV-C — 125 loaded modules, of which 19 have
// a unique mapped size. Sizes are what /proc/modules reports, rounded to
// whole pages as the loader maps them.
//
// The five modules of Figure 5 are present with the paper's sizes:
// autofs4 and x_tables share 0xB000 (indistinguishable by size), while
// video (0xC000), mac_hid (0x4000) and pinctrl_icelake (0x6000) are unique.

package linux

// uniqueSized are the 19 modules whose mapped size identifies them exactly.
var uniqueSized = []ModuleSpec{
	{Name: "video", Size: 0xC000},
	{Name: "mac_hid", Size: 0x4000},
	{Name: "pinctrl_icelake", Size: 0x6000},
	{Name: "kvm", Size: 0x51000},
	{Name: "i915", Size: 0x45000},
	{Name: "bluetooth", Size: 0x31000},
	{Name: "mac80211", Size: 0x25000},
	{Name: "drm", Size: 0x21000},
	{Name: "iwlwifi", Size: 0x1F000},
	{Name: "nf_tables", Size: 0x1D000},
	{Name: "snd_hda_codec", Size: 0x1B000},
	{Name: "nvme", Size: 0x19000},
	{Name: "thunderbolt", Size: 0x17000},
	{Name: "e1000e", Size: 0x15000},
	{Name: "btusb", Size: 0x13000},
	{Name: "psmouse", Size: 0x11000},
	{Name: "aesni_intel", Size: 0xF000},
	{Name: "snd_pcm", Size: 0x7000},
	{Name: "mei", Size: 0x5000},
}

// sharedSizes is the pool of sizes that occur on several modules each.
var sharedSizes = []uint64{
	0x8000, 0xB000, 0x10000, 0x14000, 0x18000,
	0x1C000, 0x20000, 0x24000, 0x28000, 0x2C000,
	0x30000, 0x9000, 0xA000, 0xD000, 0xE000,
}

// sharedNames are the remaining 104 modules; each is assigned a size from
// sharedSizes round-robin, so every shared size occurs at least six times.
var sharedNames = []string{
	"snd_hda_intel", "snd_hda_codec_realtek", "snd_hda_codec_generic", "snd_hda_codec_hdmi",
	"snd_hwdep", "snd_seq", "snd_seq_device", "snd_rawmidi", "snd_timer", "soundcore",
	"ledtrig_audio", "iwlmvm", "cfg80211", "btrtl", "btbcm", "btintel", "rfcomm", "bnep",
	"ecdh_generic", "ecc", "nf_conntrack", "nf_defrag_ipv4", "nf_defrag_ipv6", "libcrc32c",
	"ip_tables", "iptable_filter", "iptable_nat", "nft_chain_nat", "nf_nat", "bridge",
	"stp", "llc", "overlay", "binfmt_misc", "nls_iso8859_1", "intel_rapl_msr",
	"intel_rapl_common", "x86_pkg_temp_thermal", "intel_powerclamp", "coretemp",
	"kvm_intel", "crct10dif_pclmul", "crc32_pclmul", "ghash_clmulni_intel", "crypto_simd",
	"cryptd", "glue_helper", "rapl", "intel_cstate", "serio_raw", "input_leds", "joydev",
	"hid_generic", "usbhid", "hid", "sch_fq_codel", "msr", "parport_pc", "ppdev", "lp",
	"parport", "ip6_tables", "ip6table_filter", "xt_conntrack", "xt_MASQUERADE",
	"xfrm_user", "xfrm_algo", "br_netfilter", "veth", "nvme_core", "ahci", "libahci",
	"i2c_i801", "i2c_smbus", "xhci_pci", "xhci_pci_renesas", "intel_lpss_pci",
	"intel_lpss", "idma64", "virt_dma", "ucsi_acpi", "typec_ucsi", "typec", "wmi",
	"intel_hid", "sparse_keymap", "acpi_pad", "acpi_tad", "mei_me",
	"processor_thermal_device", "intel_soc_dts_iosf", "int3403_thermal",
	"int340x_thermal_zone", "int3400_thermal", "acpi_thermal_rel", "ttm",
	"drm_kms_helper", "i2c_algo_bit", "fb_sys_fops", "syscopyarea", "sysfillrect",
	"sysimgblt", "cec", "rc_core",
}

// UniqueSizedModuleNames returns the names of the modules the module
// attack can identify exactly (unique mapped size) — the population a
// behavior spy can watch without ground-truth help. Callers use it to
// validate watch targets before booting anything.
func UniqueSizedModuleNames() []string {
	names := make([]string, len(uniqueSized))
	for i, spec := range uniqueSized {
		names[i] = spec.Name
	}
	return names
}

// DefaultModuleDB returns the 125-module victim set: 19 uniquely-sized
// modules, autofs4/x_tables pinned to the colliding 0xB000, and 104 modules
// over the shared-size pool.
func DefaultModuleDB() []ModuleSpec {
	db := make([]ModuleSpec, 0, 125)
	db = append(db, uniqueSized...)
	db = append(db,
		ModuleSpec{Name: "autofs4", Size: 0xB000},
		ModuleSpec{Name: "x_tables", Size: 0xB000},
	)
	for i, name := range sharedNames {
		db = append(db, ModuleSpec{Name: name, Size: sharedSizes[i%len(sharedSizes)]})
	}
	return db
}
