package linux

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/uarch"
)

func boot(t *testing.T, cfg Config) (*machine.Machine, *Kernel) {
	t.Helper()
	m := machine.New(uarch.AlderLake12400F(), cfg.Seed+1000)
	k, err := Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, k
}

func TestBaseAlignmentAndRange(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		_, k := boot(t, Config{Seed: seed})
		if uint64(k.Base)%paging.Page2M != 0 {
			t.Fatalf("base %#x not 2MiB aligned", uint64(k.Base))
		}
		if k.Base < TextRegionBase ||
			uint64(k.Base)+uint64(ImageSlots)<<21 > uint64(TextRegionBase)+TextRegionSize {
			t.Fatalf("image out of region: %#x", uint64(k.Base))
		}
	}
}

func TestKASLREntropy(t *testing.T) {
	slots := make(map[int]bool)
	for seed := uint64(0); seed < 64; seed++ {
		_, k := boot(t, Config{Seed: seed})
		slots[k.Slot] = true
	}
	if len(slots) < 32 {
		t.Fatalf("only %d distinct slots over 64 boots — KASLR broken", len(slots))
	}
}

func TestNoKASLR(t *testing.T) {
	_, k := boot(t, Config{Seed: 5, NoKASLR: true})
	if k.Base != NoKASLRBase {
		t.Fatalf("nokaslr base %#x", uint64(k.Base))
	}
}

func TestImageMappedAtExpectedLevels(t *testing.T) {
	m, k := boot(t, Config{Seed: 7})
	// Slot 0 is a 2 MiB text page.
	w := m.KernelAS.Translate(k.Base, nil)
	if !w.Mapped || w.Size != paging.Page2M {
		t.Fatalf("slot 0: %+v", w)
	}
	if w.Flags.Has(paging.User) {
		t.Fatal("kernel text user-accessible")
	}
	// The five 4 KiB pages exist at their constant offsets.
	offs := FourKOffsets()
	if len(offs) != 5 || len(k.FourKPages) != 5 {
		t.Fatalf("want 5 4K pages, got %d/%d", len(offs), len(k.FourKPages))
	}
	for i, off := range offs {
		va := k.Base + paging.VirtAddr(off)
		if k.FourKPages[i] != va {
			t.Fatalf("4K page %d at %#x, want %#x", i, uint64(k.FourKPages[i]), uint64(va))
		}
		w := m.KernelAS.Translate(va, nil)
		if !w.Mapped || w.Size != paging.Page4K {
			t.Fatalf("4K page %d: %+v", i, w)
		}
	}
	// Unmapped slot inside the text region terminates at the PD (the
	// whole 1 GiB region shares one PD — the structure the attacks rely
	// on).
	hole := TextRegionBase
	if hole == k.Base { // kernel at slot 0: probe after image instead
		hole = k.Base + paging.VirtAddr(uint64(ImageSlots+1)<<21)
	}
	w = m.KernelAS.Translate(hole, nil)
	if w.Mapped || w.TermLevel != paging.LevelPD {
		t.Fatalf("hole: %+v", w)
	}
}

func TestModuleDBShape(t *testing.T) {
	db := DefaultModuleDB()
	if len(db) != 125 {
		t.Fatalf("module count %d, want 125 (§IV-C)", len(db))
	}
	bySize := make(map[uint64]int)
	for _, s := range db {
		bySize[s.Size]++
		if s.Size == 0 || s.Size%paging.Page4K != 0 {
			t.Errorf("%s: bad size %#x", s.Name, s.Size)
		}
	}
	unique := 0
	for _, n := range bySize {
		if n == 1 {
			unique++
		}
	}
	if unique != 19 {
		t.Fatalf("unique sizes %d, want 19 (§IV-C)", unique)
	}
	// Figure 5's named modules with the paper's sizes.
	want := map[string]uint64{
		"autofs4": 0xB000, "x_tables": 0xB000, "video": 0xC000,
		"mac_hid": 0x4000, "pinctrl_icelake": 0x6000,
	}
	found := map[string]uint64{}
	names := make(map[string]bool)
	for _, s := range db {
		if names[s.Name] {
			t.Errorf("duplicate module name %q", s.Name)
		}
		names[s.Name] = true
		if _, ok := want[s.Name]; ok {
			found[s.Name] = s.Size
		}
	}
	for n, sz := range want {
		if found[n] != sz {
			t.Errorf("%s size %#x, want %#x", n, found[n], sz)
		}
	}
	if bySize[0xB000] < 2 {
		t.Error("autofs4/x_tables collision size not shared")
	}
}

func TestModulesPlacement(t *testing.T) {
	m, k := boot(t, Config{Seed: 9})
	if len(k.Modules) != 125 {
		t.Fatalf("loaded %d modules", len(k.Modules))
	}
	for i, lm := range k.Modules {
		if uint64(lm.Base)%paging.Page4K != 0 {
			t.Fatalf("%s base unaligned", lm.Name)
		}
		if lm.Base < ModuleRegionBase || uint64(lm.End()) > uint64(ModuleRegionBase)+ModuleRegionSize {
			t.Fatalf("%s outside module region", lm.Name)
		}
		// Every page of the module is mapped 4K.
		for off := uint64(0); off < lm.Size; off += paging.Page4K {
			w := m.KernelAS.Translate(lm.Base+paging.VirtAddr(off), nil)
			if !w.Mapped || w.Size != paging.Page4K {
				t.Fatalf("%s page %#x: %+v", lm.Name, off, w)
			}
		}
		// Modules are separated by at least one unmapped guard page.
		if i > 0 {
			prev := k.Modules[i-1]
			if lm.Base < prev.End()+paging.Page4K {
				t.Fatalf("%s not separated from %s", lm.Name, prev.Name)
			}
			w := m.KernelAS.Translate(prev.End(), nil)
			if w.Mapped {
				t.Fatalf("guard page after %s is mapped", prev.Name)
			}
		}
	}
}

func TestModuleLookupAndProcModules(t *testing.T) {
	_, k := boot(t, Config{Seed: 11})
	lm, ok := k.Module("video")
	if !ok || lm.Size != 0xC000 {
		t.Fatalf("video: %+v %v", lm, ok)
	}
	if _, ok := k.Module("not_a_module"); ok {
		t.Fatal("bogus module found")
	}
	specs := k.ProcModules()
	if len(specs) != 125 {
		t.Fatalf("/proc/modules lines: %d", len(specs))
	}
}

func TestKPTITrampoline(t *testing.T) {
	m, k := boot(t, Config{Seed: 13, KPTI: true})
	if !m.KPTIEnabled() {
		t.Fatal("KPTI not enabled")
	}
	if k.TrampolineVA != k.Base+paging.VirtAddr(DefaultTrampolineOffset) {
		t.Fatalf("trampoline at %#x", uint64(k.TrampolineVA))
	}
	// The trampoline is mapped in the user view; the kernel text is not.
	w := m.UserAS.Translate(k.TrampolineVA, nil)
	if !w.Mapped {
		t.Fatal("trampoline not in user view")
	}
	if w.Flags.Has(paging.User) {
		t.Fatal("trampoline user-accessible")
	}
	if w := m.UserAS.Translate(k.Base, nil); w.Mapped {
		t.Fatal("kernel text visible in user view under KPTI")
	}
	// Custom trampoline offset (the EC2 kernel).
	m2 := machine.New(uarch.XeonE5_2676(), 99)
	k2, err := Boot(m2, Config{Seed: 13, KPTI: true, TrampolineOffset: 0xe00000})
	if err != nil {
		t.Fatal(err)
	}
	if k2.TrampolineVA != k2.Base+0xe00000 {
		t.Fatalf("EC2 trampoline at %#x", uint64(k2.TrampolineVA))
	}
}

func TestFLARECoversEverything(t *testing.T) {
	m, k := boot(t, Config{Seed: 15, FLARE: true})
	for slot := 0; slot < TextSlots; slot++ {
		va := TextRegionBase + paging.VirtAddr(uint64(slot)<<21)
		if w := m.KernelAS.Translate(va, nil); !w.Mapped {
			t.Fatalf("FLARE left slot %d unmapped", slot)
		}
	}
	for off := uint64(0); off < ModuleRegionSize; off += 997 * paging.Page4K {
		va := ModuleRegionBase + paging.VirtAddr(off&^0xfff)
		if w := m.KernelAS.Translate(va, nil); !w.Mapped {
			t.Fatalf("FLARE left module page %#x unmapped", uint64(va))
		}
	}
	_ = k
}

func TestFGKASLRShufflesFunctions(t *testing.T) {
	_, k1 := boot(t, Config{Seed: 17})
	_, k2 := boot(t, Config{Seed: 18})
	// Without FGKASLR, function offsets from base are boot-invariant.
	for _, fn := range []string{"tcp_sendmsg", "schedule", "vfs_read"} {
		o1 := uint64(k1.Kallsyms[fn]) - uint64(k1.Base)
		o2 := uint64(k2.Kallsyms[fn]) - uint64(k2.Base)
		if o1 != o2 {
			t.Fatalf("%s offset moved without FGKASLR: %#x vs %#x", fn, o1, o2)
		}
	}
	// With FGKASLR, at least some functions move between boots.
	_, f1 := boot(t, Config{Seed: 19, FGKASLR: true})
	_, f2 := boot(t, Config{Seed: 20, FGKASLR: true})
	moved := 0
	for fn := range f1.Kallsyms {
		if fn == "_text" {
			continue
		}
		if uint64(f1.Kallsyms[fn])-uint64(f1.Base) != uint64(f2.Kallsyms[fn])-uint64(f2.Base) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("FGKASLR did not move any function")
	}
}

func TestCallFunctionAndTouchModule(t *testing.T) {
	m, k := boot(t, Config{Seed: 21})
	if err := k.CallFunction("no_such_fn"); err == nil {
		t.Fatal("unknown function accepted")
	}
	if err := k.CallFunction("vfs_read"); err != nil {
		t.Fatal(err)
	}
	if err := k.TouchModule("bluetooth", 4); err != nil {
		t.Fatal(err)
	}
	if err := k.TouchModule("nope", 4); err == nil {
		t.Fatal("unknown module accepted")
	}
	_ = m
}

// Property: any two boots with different seeds keep all five 4K pages at
// the same offsets from base (they are build constants, not randomized).
func TestFourKOffsetsBootInvariant(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		m := machine.New(uarch.AlderLake12400F(), seed)
		k, err := Boot(m, Config{Seed: seed})
		if err != nil {
			return false
		}
		for i, off := range FourKOffsets() {
			if k.FourKPages[i] != k.Base+paging.VirtAddr(off) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}
