// Package linux builds the Linux x86-64 virtual-memory layouts the paper
// attacks: the KASLR-randomized kernel image, the kernel-module area, the
// KPTI shadow page table with its trampoline, and the defense variants
// (FLARE dummy mappings, FGKASLR function shuffling).
//
// Address-space constants follow §II-B and §IV of the paper:
//
//   - kernel text: 0xffffffff80000000 .. 0xffffffffc0000000, 2 MiB aligned,
//     512 possible slots (9 bits of entropy);
//   - modules:     0xffffffffc0000000 .. 0xffffffffc4000000, 4 KiB aligned;
//   - KPTI trampoline at kernel base + 0xc00000 (Ubuntu 20.04 kernels;
//     +0xe00000 on the EC2 AWS kernel).
package linux

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
)

// Address-space constants (x86-64 Linux).
const (
	// TextRegionBase is the start of the KASLR region for the kernel image.
	TextRegionBase paging.VirtAddr = 0xffffffff80000000
	// TextRegionSize is the 1 GiB KASLR range (512 × 2 MiB slots).
	TextRegionSize uint64 = 1 << 30
	// TextSlots is the number of possible kernel base slots (9-bit entropy).
	TextSlots = 512
	// ModuleRegionBase is the start of the module/driver area.
	ModuleRegionBase paging.VirtAddr = 0xffffffffc0000000
	// ModuleRegionSize is the 64 MiB module range probed at 4 KiB steps
	// (16384 possible addresses, §IV-C).
	ModuleRegionSize uint64 = 64 << 20
	// DefaultTrampolineOffset is the KPTI trampoline's constant offset from
	// the kernel base on the Ubuntu kernels the paper measures (§IV-D).
	DefaultTrampolineOffset uint64 = 0xc00000
	// NoKASLRBase is where the kernel lands with the nokaslr boot flag.
	NoKASLRBase paging.VirtAddr = 0xffffffff81000000
)

// ImageSlots is the number of 2 MiB slots the simulated kernel image spans.
// Layout within the image (constant offsets, as on a real build):
// slots 0..11 are 2 MiB text/rodata pages, slots 12..16 are sparse slots
// each containing exactly one 4 KiB mapping (the cpu-entry-area-like pages
// the AMD attack keys on — "five 4-KiB pages", §IV-B), slots 17..19 are
// 2 MiB data pages.
const ImageSlots = 20

// fourKSlot lists (slot, in-slot offset) of the five 4 KiB pages.
var fourKSlots = [5]struct {
	Slot   int
	Offset uint64
}{
	{12, 0x0000},
	{13, 0x1000},
	{14, 0x3000},
	{15, 0x7000},
	{16, 0xF000},
}

// twoMSlots returns whether an image slot is a 2 MiB mapping.
func twoMSlot(slot int) bool { return slot < 12 || slot > 16 }

// Config selects the kernel build/boot options of the victim.
type Config struct {
	// Seed drives boot-time randomization (KASLR slot, module placement).
	Seed uint64
	// NoKASLR pins the base to NoKASLRBase (the nokaslr boot parameter,
	// used in §IV-D to confirm the trampoline offset).
	NoKASLR bool
	// KPTI enables kernel page-table isolation: a user shadow table
	// containing only the trampoline.
	KPTI bool
	// TrampolineOffset overrides DefaultTrampolineOffset (the EC2 kernel
	// uses 0xe00000).
	TrampolineOffset uint64
	// FLARE maps dummy pages over the unmapped kernel ranges (§V-A).
	FLARE bool
	// FGKASLR shuffles function→page assignment inside the text (§V-A).
	FGKASLR bool
	// Modules overrides the default 125-module database.
	Modules []ModuleSpec
}

// ModuleSpec is one loadable module: a name and its mapped size in bytes
// (4 KiB multiple), as /proc/modules reports.
type ModuleSpec struct {
	Name string
	Size uint64
}

// LoadedModule is a module placed in the module region.
type LoadedModule struct {
	ModuleSpec
	Base paging.VirtAddr
}

// End returns one past the module's last mapped byte.
func (lm LoadedModule) End() paging.VirtAddr { return lm.Base + paging.VirtAddr(lm.Size) }

// Kernel is a booted Linux image on a machine.
type Kernel struct {
	Cfg  Config
	Base paging.VirtAddr // randomized kernel text base
	Slot int             // Base's slot index in the text region

	// FourKPages are the five 4 KiB-mapped kernel pages, in ascending
	// address order. Their offsets from Base are build constants.
	FourKPages []paging.VirtAddr

	// Modules lists the loaded modules in ascending address order.
	Modules []LoadedModule

	// TrampolineVA is the KPTI trampoline's address (0 when KPTI is off).
	TrampolineVA paging.VirtAddr

	// Kallsyms maps function names to addresses (the /proc/kallsyms ground
	// truth the paper verifies against).
	Kallsyms map[string]paging.VirtAddr

	// funcPages maps function names to their text page (FGKASLR target).
	funcPages map[string]paging.VirtAddr

	m          *machine.Machine
	kernelAS   *paging.AddressSpace
	userAS     *paging.AddressSpace
	syscallSet []paging.VirtAddr
	moduleByNm map[string]*LoadedModule
}

// FourKOffsets returns the build-constant offsets of the five 4 KiB pages
// from the kernel base (attacker knowledge, like any kernel-build layout).
func FourKOffsets() []uint64 {
	offs := make([]uint64, len(fourKSlots))
	for i, s := range fourKSlots {
		offs[i] = uint64(s.Slot)<<21 + s.Offset
	}
	return offs
}

// Boot constructs the kernel layout on m and installs its address spaces.
func Boot(m *machine.Machine, cfg Config) (*Kernel, error) {
	if cfg.TrampolineOffset == 0 {
		cfg.TrampolineOffset = DefaultTrampolineOffset
	}
	r := rng.New(cfg.Seed ^ 0xb007b007b007b007)

	k := &Kernel{
		Cfg:        cfg,
		Kallsyms:   make(map[string]paging.VirtAddr),
		funcPages:  make(map[string]paging.VirtAddr),
		m:          m,
		moduleByNm: make(map[string]*LoadedModule),
	}

	// Pick the KASLR slot.
	if cfg.NoKASLR {
		k.Slot = int((uint64(NoKASLRBase) - uint64(TextRegionBase)) >> 21)
	} else {
		k.Slot = r.Intn(TextSlots - ImageSlots)
	}
	k.Base = TextRegionBase + paging.VirtAddr(uint64(k.Slot)<<21)

	k.kernelAS = paging.NewAddressSpace(m.Alloc)

	if err := k.mapImage(); err != nil {
		return nil, err
	}
	if err := k.loadModules(r); err != nil {
		return nil, err
	}
	if cfg.FLARE {
		if err := k.mapFlareDummies(); err != nil {
			return nil, err
		}
	}
	k.buildSymbols(r)

	if cfg.KPTI {
		k.userAS = paging.NewAddressSpace(m.Alloc)
		k.TrampolineVA = k.Base + paging.VirtAddr(cfg.TrampolineOffset)
		// The trampoline is a handful of 4 KiB supervisor pages present in
		// the user table (entry_SYSCALL_64 and friends).
		for i := 0; i < 3; i++ {
			va := k.TrampolineVA + paging.VirtAddr(i*paging.Page4K)
			frame := m.Alloc.Alloc()
			if err := k.userAS.Map(va, paging.Page4K, frame, paging.Writable); err != nil {
				return nil, err
			}
			// Keep the kernel view coherent: the trampoline pages belong
			// to the image region, already mapped there via 2 MiB pages.
		}
		m.InstallAddressSpaces(k.kernelAS, k.userAS)
	} else {
		k.userAS = k.kernelAS
		m.InstallAddressSpaces(k.kernelAS, k.kernelAS)
	}

	// The syscall handler's hot text: entry page plus two hot pages.
	k.syscallSet = []paging.VirtAddr{
		k.Base, k.Base + 0x1000, k.Base + 0x200000,
	}
	return k, nil
}

// mapImage maps the kernel image: 2 MiB leaves for regular slots, single
// 4 KiB leaves inside the sparse slots.
func (k *Kernel) mapImage() error {
	for s := 0; s < ImageSlots; s++ {
		slotVA := k.Base + paging.VirtAddr(uint64(s)<<21)
		if twoMSlot(s) {
			frame := k.m.Alloc.AllocContig(paging.Page2M / 4096)
			flags := paging.Flags(paging.Global)
			if s >= 17 { // data slots are writable
				flags |= paging.Writable
			}
			if err := k.kernelAS.Map(slotVA, paging.Page2M, frame, flags); err != nil {
				return err
			}
		}
	}
	for _, fs := range fourKSlots {
		va := k.Base + paging.VirtAddr(uint64(fs.Slot)<<21+fs.Offset)
		frame := k.m.Alloc.Alloc()
		if err := k.kernelAS.Map(va, paging.Page4K, frame, paging.Global|paging.Writable); err != nil {
			return err
		}
		k.FourKPages = append(k.FourKPages, va)
	}
	return nil
}

// loadModules places the module database into the module region:
// load order shuffled, consecutive placement with 1–3 unmapped guard pages
// between modules (the separation the paper's size detection relies on).
func (k *Kernel) loadModules(r *rng.Source) error {
	specs := k.Cfg.Modules
	if specs == nil {
		specs = DefaultModuleDB()
	}
	order := r.Perm(len(specs))
	cur := ModuleRegionBase + paging.VirtAddr(uint64(1+r.Intn(64))<<12)
	for _, idx := range order {
		spec := specs[idx]
		if spec.Size == 0 || spec.Size%paging.Page4K != 0 {
			return fmt.Errorf("linux: module %s size %#x not page-aligned", spec.Name, spec.Size)
		}
		lm := LoadedModule{ModuleSpec: spec, Base: cur}
		if uint64(lm.End()) > uint64(ModuleRegionBase)+ModuleRegionSize {
			return fmt.Errorf("linux: module region overflow at %s", spec.Name)
		}
		for off := uint64(0); off < spec.Size; off += paging.Page4K {
			frame := k.m.Alloc.Alloc()
			if err := k.kernelAS.Map(cur+paging.VirtAddr(off), paging.Page4K, frame,
				paging.Global|paging.Writable); err != nil {
				return err
			}
		}
		k.Modules = append(k.Modules, lm)
		gap := uint64(1+r.Intn(3)) << 12
		cur = lm.End() + paging.VirtAddr(gap)
	}
	sort.Slice(k.Modules, func(i, j int) bool { return k.Modules[i].Base < k.Modules[j].Base })
	for i := range k.Modules {
		k.moduleByNm[k.Modules[i].Name] = &k.Modules[i]
	}
	return nil
}

// mapFlareDummies implements the FLARE defense (§V-A): every unmapped
// 2 MiB slot of the text region and every unmapped 4 KiB page of the module
// region gets a dummy physical mapping, so page-mapping attacks see a
// uniformly mapped address space. Dummy pages are never executed, so they
// never appear in the TLB — the residual signal the paper exploits.
func (k *Kernel) mapFlareDummies() error {
	for s := 0; s < TextSlots; s++ {
		va := TextRegionBase + paging.VirtAddr(uint64(s)<<21)
		if w := k.kernelAS.Translate(va, nil); w.Mapped {
			continue
		}
		// Skip slots that contain any 4 KiB mappings (sparse image slots).
		if s >= k.Slot && s < k.Slot+ImageSlots {
			if !twoMSlot(s - k.Slot) {
				// Fill the sparse slot's holes with 4 KiB dummies.
				for off := uint64(0); off < paging.Page2M; off += paging.Page4K {
					pva := va + paging.VirtAddr(off)
					if w := k.kernelAS.Translate(pva, nil); w.Mapped {
						continue
					}
					if err := k.kernelAS.Map(pva, paging.Page4K, k.m.Alloc.Alloc(), paging.Global); err != nil {
						return err
					}
				}
				continue
			}
		}
		frame := k.m.Alloc.AllocContig(paging.Page2M / 4096)
		if err := k.kernelAS.Map(va, paging.Page2M, frame, paging.Global); err != nil {
			return err
		}
	}
	for off := uint64(0); off < ModuleRegionSize; off += paging.Page4K {
		va := ModuleRegionBase + paging.VirtAddr(off)
		if w := k.kernelAS.Translate(va, nil); w.Mapped {
			continue
		}
		if err := k.kernelAS.Map(va, paging.Page4K, k.m.Alloc.Alloc(), paging.Global); err != nil {
			return err
		}
	}
	return nil
}

// kernelFunctions is the synthetic symbol set used for the FGKASLR
// experiments: enough functions to populate the text pages.
var kernelFunctions = []string{
	"entry_SYSCALL_64", "do_syscall_64", "sys_read", "sys_write", "sys_openat",
	"sys_mmap", "sys_munmap", "sys_ioctl", "sys_futex", "sys_clone",
	"schedule", "pick_next_task_fair", "try_to_wake_up", "finish_task_switch",
	"vfs_read", "vfs_write", "do_filp_open", "path_lookupat", "dput",
	"kmalloc", "kfree", "kmem_cache_alloc", "__alloc_pages", "free_pages",
	"copy_user_generic", "strncpy_from_user", "do_page_fault", "handle_mm_fault",
	"tcp_sendmsg", "tcp_recvmsg", "udp_sendmsg", "ip_output", "dev_queue_xmit",
	"sock_sendmsg", "sock_recvmsg", "unix_stream_sendmsg", "skb_copy_datagram_iter",
	"ext4_file_read_iter", "ext4_file_write_iter", "generic_file_read_iter",
	"blk_mq_submit_bio", "submit_bio", "bio_endio", "scsi_queue_rq",
	"hrtimer_interrupt", "update_process_times", "scheduler_tick", "ktime_get",
	"do_signal", "get_signal", "signal_wake_up", "send_signal",
	"security_file_permission", "selinux_file_permission", "avc_has_perm",
	"audit_syscall_entry", "audit_syscall_exit", "seccomp_run_filters",
	"mutex_lock", "mutex_unlock", "down_read", "up_read", "rcu_read_unlock_special",
}

// KnownKernelFunction reports whether name is in the synthetic symbol set
// (so callers can validate a target function before booting anything).
func KnownKernelFunction(name string) bool {
	for _, fn := range kernelFunctions {
		if fn == name {
			return true
		}
	}
	return false
}

// buildSymbols assigns functions to text pages. Without FGKASLR the
// assignment is the deterministic build order (so offsets from base are
// constants); with FGKASLR it is shuffled per boot (§V-A).
func (k *Kernel) buildSymbols(r *rng.Source) {
	// Text pages: the 4 KiB pages of the first text slot (a 2 MiB page
	// contains 512 function-granules; we track at 4 KiB virtual granularity
	// since the TLB caches the whole 2 MiB page — FGKASLR template attacks
	// therefore target *module* text or rely on per-slot residency; we
	// spread functions across the first 8 slots for slot-granular templates).
	perm := make([]int, len(kernelFunctions))
	for i := range perm {
		perm[i] = i
	}
	if k.Cfg.FGKASLR {
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	for pos, fi := range perm {
		name := kernelFunctions[fi]
		slot := pos % 8
		off := uint64(slot)<<21 + uint64(pos/8)<<12
		va := k.Base + paging.VirtAddr(off)
		k.Kallsyms[name] = va
		k.funcPages[name] = paging.PageBase(va, paging.Page2M)
	}
	k.Kallsyms["_text"] = k.Base
}

// Machine returns the machine the kernel is booted on.
func (k *Kernel) Machine() *machine.Machine { return k.m }

// SyscallTouchSet returns the kernel text the syscall path runs through.
func (k *Kernel) SyscallTouchSet() []paging.VirtAddr { return k.syscallSet }

// Syscall performs one victim syscall on the machine: kernel entry plus
// TLB residency for the handler's text (used by the FLARE bypass and the
// FGKASLR template attack).
func (k *Kernel) Syscall() { k.m.Syscall(k.syscallSet...) }

// CallFunction simulates kernel execution of the named function (e.g. a
// syscall triggering it), making its text page TLB-resident.
func (k *Kernel) CallFunction(name string) error {
	va, ok := k.Kallsyms[name]
	if !ok {
		return fmt.Errorf("linux: unknown kernel function %q", name)
	}
	k.m.Syscall(va)
	return nil
}

// FunctionPage returns the 2 MiB-page base holding the named function.
func (k *Kernel) FunctionPage(name string) (paging.VirtAddr, bool) {
	va, ok := k.funcPages[name]
	return va, ok
}

// TouchModule simulates the kernel executing a module's code (an event the
// module handles): the first n pages become TLB-resident (§IV-E).
func (k *Kernel) TouchModule(name string, n int) error {
	lm, ok := k.moduleByNm[name]
	if !ok {
		return fmt.Errorf("linux: module %q not loaded", name)
	}
	var vas []paging.VirtAddr
	for i := 0; i < n && uint64(i)<<12 < lm.Size; i++ {
		vas = append(vas, lm.Base+paging.VirtAddr(uint64(i)<<12))
	}
	k.m.KernelTouch(vas...)
	return nil
}

// Module returns the loaded module with the given name.
func (k *Kernel) Module(name string) (LoadedModule, bool) {
	lm, ok := k.moduleByNm[name]
	if !ok {
		return LoadedModule{}, false
	}
	return *lm, true
}

// ProcModules renders the /proc/modules view (name and size per line),
// which gives the attacker the size→name table for classification (§IV-C).
func (k *Kernel) ProcModules() []ModuleSpec {
	specs := make([]ModuleSpec, len(k.Modules))
	for i, lm := range k.Modules {
		specs[i] = lm.ModuleSpec
	}
	return specs
}
