package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/paging"
	"repro/internal/phys"
)

func walk4K(va paging.VirtAddr, pfn phys.PFN, flags paging.Flags) paging.Walk {
	return paging.Walk{VA: va, Mapped: true, Flags: flags | paging.Present,
		Size: paging.Page4K, PFN: pfn, TermLevel: paging.LevelPT}
}

func TestFillLookupHit(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	va := paging.VirtAddr(0x12345000)
	tlb.Fill(va, walk4K(va, 99, paging.User), 1)
	res, e := tlb.Lookup(va, 1)
	if res != HitL1 {
		t.Fatalf("lookup %v, want HitL1", res)
	}
	if e.PFN() != 99 || e.Size() != paging.Page4K {
		t.Fatalf("entry %+v", e)
	}
}

func TestLookupMissDifferentPage(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	tlb.Fill(0x1000, walk4K(0x1000, 1, paging.User), 1)
	if res, _ := tlb.Lookup(0x2000, 1); res != Miss {
		t.Fatalf("adjacent page hit: %v", res)
	}
}

func TestASIDIsolation(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	va := paging.VirtAddr(0x5000)
	tlb.Fill(va, walk4K(va, 7, paging.User), 1)
	if res, _ := tlb.Lookup(va, 2); res != Miss {
		t.Fatal("non-global entry visible across ASIDs")
	}
}

func TestGlobalEntryCrossesASID(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	va := paging.VirtAddr(0x6000)
	tlb.Fill(va, walk4K(va, 7, paging.Global), 1)
	if res, _ := tlb.Lookup(va, 2); res == Miss {
		t.Fatal("global entry not visible across ASIDs")
	}
}

func TestHugePagesLookupByContainedAddress(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	base := paging.VirtAddr(0xffffffff81200000)
	w := paging.Walk{VA: base, Mapped: true, Flags: paging.Present | paging.Global,
		Size: paging.Page2M, PFN: 512, TermLevel: paging.LevelPD}
	tlb.Fill(base, w, 1)
	// Any address inside the 2 MiB page must hit.
	if res, _ := tlb.Lookup(base+0x5000, 1); res == Miss {
		t.Fatal("2M entry missed for contained address")
	}
	if res, _ := tlb.Lookup(base+paging.Page2M, 1); res != Miss {
		t.Fatal("2M entry hit outside its page")
	}
}

func TestInvalidate(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	va := paging.VirtAddr(0x7000)
	tlb.Fill(va, walk4K(va, 7, paging.User), 1)
	tlb.Invalidate(va)
	if res, _ := tlb.Lookup(va, 1); res != Miss {
		t.Fatal("entry survived INVLPG")
	}
}

func TestFlushKeepGlobal(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	tlb.Fill(0x1000, walk4K(0x1000, 1, paging.User), 1)
	tlb.Fill(0x2000, walk4K(0x2000, 2, paging.Global), 1)
	tlb.Flush(true)
	if res, _ := tlb.Lookup(0x1000, 1); res != Miss {
		t.Fatal("non-global survived CR3 write")
	}
	if res, _ := tlb.Lookup(0x2000, 1); res == Miss {
		t.Fatal("global did not survive CR3 write")
	}
	tlb.Flush(false)
	if res, _ := tlb.Lookup(0x2000, 1); res != Miss {
		t.Fatal("global survived full flush")
	}
}

func TestFlushASID(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	tlb.Fill(0x1000, walk4K(0x1000, 1, paging.User), 1)
	tlb.Fill(0x2000, walk4K(0x2000, 2, paging.User), 2)
	tlb.FlushASID(1)
	if res, _ := tlb.Lookup(0x1000, 1); res != Miss {
		t.Fatal("ASID 1 entry survived")
	}
	if res, _ := tlb.Lookup(0x2000, 2); res == Miss {
		t.Fatal("ASID 2 entry was dropped")
	}
}

func TestL1EvictionDemotesToSTLB(t *testing.T) {
	// Tiny L1 (1 set × 2 ways) forces eviction; victims must remain
	// findable via the STLB (HitL2).
	tlb := NewTLB(TLBConfig{L1: Config{Sets: 1, Ways: 2}, L2: Config{Sets: 64, Ways: 8}})
	for i := 0; i < 6; i++ {
		va := paging.VirtAddr(0x10000 + i*0x1000)
		tlb.Fill(va, walk4K(va, phys.PFN(i+1), paging.User), 1)
	}
	res, _ := tlb.Lookup(0x10000, 1)
	if res != HitL2 {
		t.Fatalf("oldest entry: %v, want HitL2 (demoted)", res)
	}
	// And the L2 hit promotes back into L1.
	res, _ = tlb.Lookup(0x10000, 1)
	if res != HitL1 {
		t.Fatalf("after promotion: %v, want HitL1", res)
	}
}

func TestLRUReplacement(t *testing.T) {
	tlb := NewTLB(TLBConfig{L1: Config{Sets: 1, Ways: 2}, L2: Config{Sets: 1, Ways: 2}})
	a, b, c := paging.VirtAddr(0x1000), paging.VirtAddr(0x2000), paging.VirtAddr(0x3000)
	tlb.Fill(a, walk4K(a, 1, paging.User), 1)
	tlb.Fill(b, walk4K(b, 2, paging.User), 1)
	tlb.Lookup(a, 1) // touch a so b is LRU
	tlb.Fill(c, walk4K(c, 3, paging.User), 1)
	if res, _ := tlb.Lookup(a, 1); res == Miss {
		t.Fatal("MRU entry evicted")
	}
}

func TestEntryCount(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	if tlb.EntryCount() != 0 {
		t.Fatal("fresh TLB not empty")
	}
	tlb.Fill(0x1000, walk4K(0x1000, 1, paging.User), 1)
	if tlb.EntryCount() != 2 { // L1 + L2 copy
		t.Fatalf("count %d, want 2", tlb.EntryCount())
	}
}

// Property: fill→lookup always hits for arbitrary 4K pages and ASIDs.
func TestFillLookupProperty(t *testing.T) {
	err := quick.Check(func(page uint32, asid uint8) bool {
		tlb := NewTLB(DefaultTLBConfig())
		va := paging.VirtAddr(uint64(page) << 12)
		tlb.Fill(va, walk4K(va, 5, paging.User), uint16(asid))
		res, _ := tlb.Lookup(va, uint16(asid))
		return res != Miss
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: after Invalidate, Lookup misses regardless of history.
func TestInvalidateProperty(t *testing.T) {
	err := quick.Check(func(pages []uint32, victim uint8) bool {
		tlb := NewTLB(DefaultTLBConfig())
		if len(pages) == 0 {
			return true
		}
		for _, pg := range pages {
			va := paging.VirtAddr(uint64(pg) << 12)
			tlb.Fill(va, walk4K(va, 5, paging.User), 1)
		}
		v := paging.VirtAddr(uint64(pages[int(victim)%len(pages)]) << 12)
		tlb.Invalidate(v)
		res, _ := tlb.Lookup(v, 1)
		return res == Miss
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPSCFillAndLookup(t *testing.T) {
	psc := NewPSC()
	va := paging.VirtAddr(0xffffffff81200000)
	// A mapped 2M walk (term PD) caches PML4E and PDPTE.
	psc.Fill(va, paging.LevelPD, true, 1)
	lvl, ok := psc.Lookup(va, 1)
	if !ok || lvl != paging.LevelPDPT {
		t.Fatalf("lookup %v %v, want PDPT hit", lvl, ok)
	}
	// A 4K walk (term PT) caches down to the PDE.
	psc.Fill(va, paging.LevelPT, true, 1)
	lvl, ok = psc.Lookup(va, 1)
	if !ok || lvl != paging.LevelPD {
		t.Fatalf("lookup %v %v, want PD hit", lvl, ok)
	}
}

func TestPSCNeverCachesPT(t *testing.T) {
	psc := NewPSC()
	va := paging.VirtAddr(0x1000)
	psc.Fill(va, paging.LevelPT, true, 1)
	lvl, ok := psc.Lookup(va, 1)
	// Deepest possible hit is PD — PT entries are never cached (Intel).
	if ok && lvl == paging.LevelPT {
		t.Fatal("PSC cached a PT entry")
	}
}

func TestPSCNonPresentTopLevelNotCached(t *testing.T) {
	psc := NewPSC()
	va := paging.VirtAddr(0xffff800000000000)
	// Unmapped at PML4: nothing present was traversed, nothing cached.
	psc.Fill(va, paging.LevelPML4, false, 1)
	if _, ok := psc.Lookup(va, 1); ok {
		t.Fatal("PSC cached a non-present PML4E")
	}
}

func TestPSCDisabled(t *testing.T) {
	psc := NewPSC()
	psc.Enabled = false
	va := paging.VirtAddr(0x2000)
	psc.Fill(va, paging.LevelPT, true, 1)
	if _, ok := psc.Lookup(va, 1); ok {
		t.Fatal("disabled PSC returned a hit")
	}
}

func TestPSCFlush(t *testing.T) {
	psc := NewPSC()
	va := paging.VirtAddr(0xffffffff81200000)
	psc.Fill(va, paging.LevelPD, true, 1)
	if psc.EntryCount() == 0 {
		t.Fatal("nothing cached")
	}
	psc.Flush()
	if psc.EntryCount() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestPSCRegionTagging(t *testing.T) {
	psc := NewPSC()
	va := paging.VirtAddr(0xffffffff81200000)
	psc.Fill(va, paging.LevelPD, true, 1)
	// A different 2M region in the same 1G region still hits the PDPTE
	// cache (shared prefix) but not a PDE-level hit.
	other := va + 8*paging.Page2M
	lvl, ok := psc.Lookup(other, 1)
	if !ok || lvl != paging.LevelPDPT {
		t.Fatalf("neighbour region: %v %v, want PDPT", lvl, ok)
	}
	// A different 1G region in the same 512G (PML4) region hits only the
	// PML4E cache.
	same512G := paging.VirtAddr(0xffffff8000000000)
	lvl, ok = psc.Lookup(same512G, 1)
	if !ok || lvl != paging.LevelPML4 {
		t.Fatalf("same-PML4-slot region: %v %v, want PML4", lvl, ok)
	}
	// A different PML4 slot misses entirely.
	far := paging.VirtAddr(0xffff800000000000)
	if _, ok := psc.Lookup(far, 1); ok {
		t.Fatal("unrelated PML4 slot hit the PSC")
	}
}
