// Package tlb models the translation caches the attacks observe: a
// two-level data TLB (L1 DTLB + shared STLB) and Intel-style
// paging-structure caches (PSC).
//
// The structures are set-associative with LRU replacement and are keyed the
// way real parts key them (virtual page number for the TLBs, partial VA
// prefix for the PSCs), because two of the paper's primitives depend on the
// details: the TLB attack (P4) needs eviction and refill to behave like a
// real set-associative cache, and the page-table-level attack (P3) needs
// PSCs that cache PML4E/PDPTE/PDE entries but never PT entries.
package tlb

import (
	"repro/internal/paging"
	"repro/internal/phys"
)

// Entry is a cached translation.
//
// Flags, Size and PFN expose the translation attributes the MMU needs to
// finish an access from a TLB hit without walking.
type Entry struct {
	vpn   uint64 // virtual page number (va >> page shift for its size)
	size  paging.PageSize
	asid  uint16
	flags paging.Flags
	pfn   phys.PFN
	valid bool
	lru   uint64
}

// Flags returns the cached PTE flags.
func (e *Entry) Flags() paging.Flags { return e.flags }

// Size returns the cached translation's page size.
func (e *Entry) Size() paging.PageSize { return e.size }

// PFN returns the cached frame number.
func (e *Entry) PFN() phys.PFN { return e.pfn }

// SetFlags updates the cached PTE flags (the machine refreshes the cached
// Dirty bit after a dirty-setting assist, as hardware does).
func (e *Entry) SetFlags(f paging.Flags) { e.flags = f }

// Config sizes one set-associative translation cache.
type Config struct {
	Sets int // number of sets (power of two)
	Ways int // associativity
}

// setAssoc is a generic set-associative LRU cache of translations.
type setAssoc struct {
	cfg   Config
	sets  [][]Entry
	clock uint64
}

func newSetAssoc(cfg Config) *setAssoc {
	s := &setAssoc{cfg: cfg, sets: make([][]Entry, cfg.Sets)}
	// One backing array for all sets: the scan engine clones a machine (and
	// therefore several of these caches) per worker shard.
	backing := make([]Entry, cfg.Sets*cfg.Ways)
	for i := range s.sets {
		s.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return s
}

func (s *setAssoc) setIndex(vpn uint64) int {
	return int(vpn) & (s.cfg.Sets - 1)
}

// lookup returns the entry for (vpn,size,asid) or nil.
func (s *setAssoc) lookup(vpn uint64, size paging.PageSize, asid uint16, global bool) *Entry {
	s.clock++
	set := s.sets[s.setIndex(vpn)]
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && e.size == size &&
			(e.asid == asid || global && e.flags.Has(paging.Global)) {
			e.lru = s.clock
			return e
		}
	}
	return nil
}

// insert fills (evicting LRU) and returns the victim entry if one was
// evicted while still valid.
func (s *setAssoc) insert(e Entry) (victim Entry, evicted bool) {
	s.clock++
	e.lru = s.clock
	set := s.sets[s.setIndex(e.vpn)]
	vi := 0
	for i := range set {
		if !set[i].valid {
			set[i] = e
			return Entry{}, false
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim = set[vi]
	set[vi] = e
	return victim, true
}

// invalidate removes the entry for (vpn,size) in any ASID; returns whether
// an entry was removed.
func (s *setAssoc) invalidate(vpn uint64, size paging.PageSize) bool {
	set := s.sets[s.setIndex(vpn)]
	hit := false
	for i := range set {
		if set[i].valid && set[i].vpn == vpn && set[i].size == size {
			set[i].valid = false
			hit = true
		}
	}
	return hit
}

// flush removes all entries; if keepGlobal, Global entries survive (MOV CR3
// without PCID semantics).
func (s *setAssoc) flush(keepGlobal bool) {
	for _, set := range s.sets {
		for i := range set {
			if keepGlobal && set[i].flags.Has(paging.Global) {
				continue
			}
			set[i].valid = false
		}
	}
}

// flushASID removes all non-global entries belonging to one ASID.
func (s *setAssoc) flushASID(asid uint16) {
	for _, set := range s.sets {
		for i := range set {
			if set[i].valid && set[i].asid == asid && !set[i].flags.Has(paging.Global) {
				set[i].valid = false
			}
		}
	}
}

// savedEntry pins one valid entry to its exact slot. The way index matters:
// eviction breaks LRU ties by slot order, so a restore that repacked entries
// would diverge from the snapshotted cache on the next fill.
type savedEntry struct {
	set, way int
	e        Entry
}

// cacheSnapshot is the full replayable state of one set-associative cache:
// the LRU clock plus every valid entry in place. Only valid entries are
// stored, so snapshotting the (common) empty post-sweep state is ~free.
type cacheSnapshot struct {
	clock   uint64
	entries []savedEntry
}

// snapshot captures the cache contents.
func (s *setAssoc) snapshot() cacheSnapshot {
	snap := cacheSnapshot{clock: s.clock}
	for si, set := range s.sets {
		for wi := range set {
			if set[wi].valid {
				snap.entries = append(snap.entries, savedEntry{set: si, way: wi, e: set[wi]})
			}
		}
	}
	return snap
}

// restore rewinds the cache to a snapshot taken on a same-geometry cache.
func (s *setAssoc) restore(snap cacheSnapshot) {
	s.flush(false)
	s.clock = snap.clock
	for _, se := range snap.entries {
		s.sets[se.set][se.way] = se.e
	}
}

// count returns the number of valid entries (for tests/diagnostics).
func (s *setAssoc) count() int {
	n := 0
	for _, set := range s.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// TLB is the two-level data TLB.
type TLB struct {
	l1  *setAssoc
	l2  *setAssoc
	cfg TLBConfig
}

// TLBConfig sizes both TLB levels.
type TLBConfig struct {
	L1 Config // e.g. 64-entry 4-way
	L2 Config // e.g. 1536-entry 12-way (STLB)
}

// DefaultTLBConfig is an Ice Lake-like configuration.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{
		L1: Config{Sets: 16, Ways: 4},   // 64-entry DTLB
		L2: Config{Sets: 128, Ways: 12}, // 1536-entry STLB
	}
}

// NewTLB creates a TLB with the given configuration.
func NewTLB(cfg TLBConfig) *TLB {
	return &TLB{l1: newSetAssoc(cfg.L1), l2: newSetAssoc(cfg.L2), cfg: cfg}
}

// Config returns the TLB's configuration (used to size machine replicas).
func (t *TLB) Config() TLBConfig { return t.cfg }

// LookupResult describes where a translation was found.
type LookupResult int

// TLB lookup outcomes.
const (
	Miss  LookupResult = iota // not in either level: page walk required
	HitL1                     // found in the first-level DTLB
	HitL2                     // found in the STLB (small extra latency)
)

func vpnOf(va paging.VirtAddr, size paging.PageSize) uint64 {
	switch size {
	case paging.Page4K:
		return uint64(va) >> 12
	case paging.Page2M:
		return uint64(va) >> 21
	case paging.Page1G:
		return uint64(va) >> 30
	}
	panic("tlb: bad page size")
}

// Lookup searches for a translation of va at any page size for asid.
// Real TLBs probe per-size in parallel; we model the same observable.
func (t *TLB) Lookup(va paging.VirtAddr, asid uint16) (LookupResult, *Entry) {
	for _, size := range []paging.PageSize{paging.Page4K, paging.Page2M, paging.Page1G} {
		vpn := vpnOf(va, size)
		if e := t.l1.lookup(vpn, size, asid, true); e != nil {
			return HitL1, e
		}
	}
	for _, size := range []paging.PageSize{paging.Page4K, paging.Page2M, paging.Page1G} {
		vpn := vpnOf(va, size)
		if e := t.l2.lookup(vpn, size, asid, true); e != nil {
			// Promote into L1 like a real hierarchy.
			t.l1.insert(*e)
			return HitL2, e
		}
	}
	return Miss, nil
}

// Fill inserts a translation produced by a successful walk. L1 victims are
// demoted to the STLB (exclusive-ish behaviour is close enough for the
// attack observables).
func (t *TLB) Fill(va paging.VirtAddr, w paging.Walk, asid uint16) {
	e := Entry{
		vpn:   vpnOf(va, w.Size),
		size:  w.Size,
		asid:  asid,
		flags: w.Flags,
		pfn:   w.PFN,
		valid: true,
	}
	if victim, evicted := t.l1.insert(e); evicted {
		t.l2.insert(victim)
	}
	t.l2.insert(e)
}

// Invalidate models INVLPG: drops the translation of va at every size.
func (t *TLB) Invalidate(va paging.VirtAddr) {
	for _, size := range []paging.PageSize{paging.Page4K, paging.Page2M, paging.Page1G} {
		vpn := vpnOf(va, size)
		t.l1.invalidate(vpn, size)
		t.l2.invalidate(vpn, size)
	}
}

// Flush models a CR3 write: drops everything, keeping Global entries if
// keepGlobal (no-PCID semantics keep globals; full flush drops them too).
func (t *TLB) Flush(keepGlobal bool) {
	t.l1.flush(keepGlobal)
	t.l2.flush(keepGlobal)
}

// FlushASID drops the non-global entries of one address space (PCID-
// targeted invalidation).
func (t *TLB) FlushASID(asid uint16) {
	t.l1.flushASID(asid)
	t.l2.flushASID(asid)
}

// EntryCount returns the number of valid entries across both levels.
func (t *TLB) EntryCount() int { return t.l1.count() + t.l2.count() }

// Snapshot is the full replayable TLB state: both levels' contents and LRU
// clocks. A restored TLB behaves bit-identically to the snapshotted one for
// every subsequent lookup/fill/evict sequence.
type Snapshot struct {
	l1, l2 cacheSnapshot
}

// Snapshot captures both TLB levels.
func (t *TLB) Snapshot() Snapshot {
	return Snapshot{l1: t.l1.snapshot(), l2: t.l2.snapshot()}
}

// Restore rewinds the TLB to a snapshot taken on a same-config TLB.
func (t *TLB) Restore(s Snapshot) {
	t.l1.restore(s.l1)
	t.l2.restore(s.l2)
}

// PSC is the set of Intel-style paging-structure caches: one cache per
// interior level (PML4E, PDPTE, PDE). PT entries are never cached — the
// property the paper's level attack exploits (§III-B: "Intel's
// paging-structure caches do not contain PT").
type PSC struct {
	pml4e *setAssoc
	pdpte *setAssoc
	pde   *setAssoc
	// Enabled gates the whole structure; the ablation bench turns it off.
	Enabled bool
}

// NewPSC creates paging-structure caches with small, Intel-plausible sizes.
func NewPSC() *PSC {
	return &PSC{
		pml4e:   newSetAssoc(Config{Sets: 4, Ways: 4}),
		pdpte:   newSetAssoc(Config{Sets: 4, Ways: 4}),
		pde:     newSetAssoc(Config{Sets: 8, Ways: 4}),
		Enabled: true,
	}
}

func (p *PSC) cacheFor(level paging.Level) *setAssoc {
	switch level {
	case paging.LevelPML4:
		return p.pml4e
	case paging.LevelPDPT:
		return p.pdpte
	case paging.LevelPD:
		return p.pde
	}
	return nil
}

// pscTag returns the VA prefix that indexes the cache of a level: an entry
// at level L is tagged by the VA bits that selected entries at levels
// above-and-including L.
func pscTag(va paging.VirtAddr, level paging.Level) uint64 {
	switch level {
	case paging.LevelPML4:
		return uint64(va) >> 39
	case paging.LevelPDPT:
		return uint64(va) >> 30
	case paging.LevelPD:
		return uint64(va) >> 21
	}
	panic("tlb: psc tag for leaf level")
}

// Lookup reports the deepest interior level whose entry for va is cached.
// A hit at level L means the walk may start at the structure below L,
// skipping the levels at and above L.
func (p *PSC) Lookup(va paging.VirtAddr, asid uint16) (paging.Level, bool) {
	if !p.Enabled {
		return paging.LevelNone, false
	}
	for _, level := range []paging.Level{paging.LevelPD, paging.LevelPDPT, paging.LevelPML4} {
		c := p.cacheFor(level)
		if e := c.lookup(pscTag(va, level), paging.Page4K, asid, false); e != nil {
			return level, true
		}
	}
	return paging.LevelNone, false
}

// Fill caches the interior entries a successful or failed walk read.
// Only Present interior entries are cached (non-present entries are not
// cached by hardware), and the leaf-level entry is never inserted.
func (p *PSC) Fill(va paging.VirtAddr, termLevel paging.Level, mapped bool, asid uint16) {
	if !p.Enabled {
		return
	}
	// Interior levels the walk traversed with Present entries: every level
	// strictly above the termination level, plus the termination level
	// itself only if it is interior and the walk continued past it.
	deepest := termLevel - 1
	if mapped {
		// Leaf at termLevel: interior levels above it were Present.
		deepest = termLevel - 1
	}
	for level := paging.LevelPML4; level <= deepest && level <= paging.LevelPD; level++ {
		c := p.cacheFor(level)
		c.insert(Entry{vpn: pscTag(va, level), size: paging.Page4K, asid: asid, valid: true})
	}
}

// Flush drops all cached paging-structure entries (CR3 write / INVLPG
// side effects).
func (p *PSC) Flush() {
	p.pml4e.flush(false)
	p.pdpte.flush(false)
	p.pde.flush(false)
}

// EntryCount returns the number of valid PSC entries.
func (p *PSC) EntryCount() int {
	return p.pml4e.count() + p.pdpte.count() + p.pde.count()
}

// PSCSnapshot is the full replayable paging-structure-cache state.
type PSCSnapshot struct {
	pml4e, pdpte, pde cacheSnapshot
	enabled           bool
}

// Snapshot captures all three per-level caches plus the Enabled gate.
func (p *PSC) Snapshot() PSCSnapshot {
	return PSCSnapshot{
		pml4e:   p.pml4e.snapshot(),
		pdpte:   p.pdpte.snapshot(),
		pde:     p.pde.snapshot(),
		enabled: p.Enabled,
	}
}

// Restore rewinds the PSC to a snapshot.
func (p *PSC) Restore(s PSCSnapshot) {
	p.pml4e.restore(s.pml4e)
	p.pdpte.restore(s.pdpte)
	p.pde.restore(s.pde)
	p.Enabled = s.enabled
}
