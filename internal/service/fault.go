package service

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Failure sentinels of the self-healing scheduler. Every failed job's error
// chain terminates in exactly one classification (Classify); these are the
// roots the chain is matched against.
var (
	// ErrJobDeadline reports the per-job watchdog failing an attempt that
	// overran Config.JobDeadline. The overrunning body is abandoned (it
	// self-terminates — injected stalls unblock when the watchdog fires)
	// and its session is quarantined, never leaked back into the cache.
	ErrJobDeadline = errors.New("service: job deadline exceeded")
	// ErrPanicked reports an attempt whose executor body panicked. The
	// panic is recovered in the attempt goroutine — one bad job can never
	// take the scheduler down — and the session it ran on is quarantined.
	ErrPanicked = errors.New("service: job panicked")
	// ErrOverloaded reports admission control shedding a submission: the
	// queue stood at or above Config.ShedWatermark. Like ErrQueueFull it
	// maps to HTTP 429 + Retry-After; unlike ErrQueueFull it fires while
	// the queue still has room, keeping headroom for retries in flight.
	ErrOverloaded = errors.New("service: shedding load")
	// ErrSessionCorrupt wraps a failed snapshot-restore verification: the
	// session's machine no longer reproduces its checkpoint. The session is
	// quarantined and the retry rebuilds a fresh one — bit-identical via
	// the calibration cache, per the existing session contract.
	ErrSessionCorrupt = errors.New("service: session corrupt")
)

// ErrorClass is the retry taxonomy: every job failure is exactly one of
// these, recorded on the Job and steering the scheduler's retry loop.
type ErrorClass string

// The classes.
const (
	// ClassTransient failures may heal on retry: injected faults, deadline
	// overruns, panics, corrupt sessions, overload rejections. The
	// scheduler retries them up to Config.MaxAttempts with capped
	// exponential backoff.
	ClassTransient ErrorClass = "transient"
	// ClassPermanent failures are deterministic for the spec: validation
	// errors, unknown kinds, draining. Retrying cannot change the outcome,
	// so the scheduler fails the job on first sight.
	ClassPermanent ErrorClass = "permanent"
)

// Classify maps an error chain to its retry class. The transient set is
// closed over the scheduler's own failure modes — everything the fault
// injector can cause plus the watchdog/panic/overload sentinels; any other
// error is a deterministic property of the spec and permanent (in this
// simulator a genuine attack error reproduces bit-identically on retry, so
// retrying it would only triple the latency of the same failure).
func Classify(err error) ErrorClass {
	if err == nil {
		return ""
	}
	var f *fault.Fault
	switch {
	case errors.Is(err, ErrJobDeadline),
		errors.Is(err, ErrPanicked),
		errors.Is(err, ErrSessionCorrupt),
		errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrQueueFull),
		errors.As(err, &f):
		return ClassTransient
	default:
		return ClassPermanent
	}
}

// FaultConfig builds the uniform fault configuration the scand
// -fault-seed/-fault-rate flags map to: every injection site at rate,
// scheduled deterministically by seed. rate <= 0 disables injection.
func FaultConfig(seed uint64, rate float64) fault.Config {
	if rate <= 0 {
		return fault.Config{}
	}
	return fault.Config{Seed: seed, Rates: fault.Uniform(rate)}
}

// faultKey collapses the spec into the 64-bit consumer key its fault plans
// are drawn under: the victim key plus the kind and the cloud fields the
// victim key omits. Jobs with identical specs draw identical fault
// schedules — the schedule is a function of what the job *is*, never of
// submission order or executor interleaving.
func (s JobSpec) faultKey() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d", s.Kind, s.victimKey(), s.Provider, s.Seed, s.AzureMaxSlot)
	return h.Sum64()
}

// attemptEnv is the per-attempt fault context threaded from the scheduler
// into the executing body: the attempt's fault plan, the watchdog's stop
// signal (closed when the deadline fails the attempt, so injected stalls
// and their orphaned bodies self-terminate instead of leaking), and the
// scheduler's drain signal.
type attemptEnv struct {
	plan *fault.Plan
	// stop is closed by the watchdog when it abandons this attempt.
	stop chan struct{}
	// drain is the scheduler's drain signal (closed once, in Drain).
	drain <-chan struct{}
	// watchdog reports whether a deadline watchdog is armed for this
	// attempt; without one, injected stalls fail fast instead of blocking
	// on a stop signal nothing would ever send.
	watchdog bool
	// span is this attempt's trace span (nil unless the job is sampled —
	// every use is a nil-safe call) and met the scheduler's metrics plane;
	// both ride the env so the exec path needs no extra plumbing.
	span *obs.Span
	met  *metricsPlane
}

// hook adapts the attempt's fault plan to the machine.FaultHook contract,
// mapping the machine/core operation names onto injection sites. A nil env
// or plan yields a nil hook — the machine's disabled state.
func (env *attemptEnv) hook() func(op string) error {
	if env == nil || env.plan == nil {
		return nil
	}
	return func(op string) error {
		var site fault.Site
		switch op {
		case "boot":
			site = fault.Boot
		case "calibrate":
			site = fault.Calibrate
		case "restore":
			site = fault.Restore
		case "probe":
			site = fault.Probe
		default:
			return nil
		}
		if f := env.plan.Fire(site); f != nil {
			return f
		}
		return nil
	}
}

// fire draws one site directly from the attempt's plan (the service-level
// sites — stall, panic, and the cloud path's boot/probe draws that never
// pass through a session machine). Nil-safe like the plan itself.
func (env *attemptEnv) fire(s fault.Site) error {
	if env == nil {
		return nil
	}
	if f := env.plan.Fire(s); f != nil {
		return f
	}
	return nil
}
