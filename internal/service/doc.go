// Package service is the attack-as-a-service layer over the pooled scan
// engine: it accepts attack jobs (kernel base, KPTI trampoline, module
// enumeration, Windows region scan, §IV-F user scan, cloud scenarios, the
// temporal §IV-E behaviorspy / appfingerprint attacks, and the §V
// defenseeval countermeasure evaluations), schedules them on a bounded
// queue, and multiplexes them across executor goroutines that share
// calibrated prober state — the subsystem that turns the one-shot attack
// library into something that can serve sustained mixed traffic.
//
// The layer cake, bottom to top:
//
//	machine   one simulated CPU+memory system (internal/machine)
//	scan      the sharded, batched sweep engine (internal/scan)
//	core      calibrated probers + the paper's attacks (internal/core)
//	service   jobs, sessions, scheduling, stats (this package)
//	cluster   N schedulers behind the consistent-hash router (Cluster)
//
// Three kinds of state are reused across jobs, each with a determinism
// contract that keeps service output bit-identical to direct core calls:
//
//   - Worker replicas: one core.ScanPool is shared by every executor, so
//     concurrent scans draw calibrated prober replicas from a single free
//     list and machine.Rebind re-syncs them per scan (pooled == fresh is
//     enforced by the core parity suites).
//   - Sessions: a booted victim + calibrated prober, rewound to a saved
//     machine.Snapshot before every job (core.Prober.Restore). For the
//     stateless kinds the snapshot is the post-calibration state and never
//     moves, so job N on a reused session replays the exact machine state
//     job 1 saw. For the temporal kinds the session is *stateful*: the
//     snapshot is retaken after every job, carrying the victim's timeline
//     position (plus TLB/PSC/PTE-line contents, clock, noise position and
//     the user write shadow) to the next job — consecutive jobs observe
//     consecutive windows of one victim's day, bit-identical to one long
//     direct run. Restore verifies the page tables were not mutated in
//     between (machine.Snapshot's version guard), so every job remains a
//     pure function of (victim image, session state, spec).
//   - Calibrations: the first session for a victim configuration records
//     its thresholds and post-calibration execution state
//     (core.Calibration); later sessions for the same configuration boot
//     the victim and skip straight past calibration via
//     core.NewProberFromCalibration, bit-identically.
//
// The victim key that governs both caches is defense-aware: the boot-time
// defense configuration (FLARE dummy mappings, FGKASLR) is part of every
// linux-class key, because a defended boot has different mappings, symbol
// layout and timing surface — it must never adopt an undefended boot's
// session or cached calibration for the same CPU/seed. KindDefenseEval
// derives the boot flags from the evaluated defense, so its flare/fgkaslr
// jobs get isolated defended sessions while its rerand/maskedop jobs
// deliberately multiplex onto the same undefended boot a kernel-base job
// uses. Each defense evaluation is bit-identical to the corresponding
// direct internal/defense.Evaluate* call at the same seed.
//
// Temporal sessions have no horizon: victim activity timelines are
// unbounded and extend lazily (behavior.UnboundedTimeline), with the
// extension deterministic regardless of when or in what order windows
// materialize it — a session can keep serving windows past any tick count
// and still match a direct run window for window. MaxJobTicks bounds only
// one job's allocation, never the session's cumulative timeline position.
//
// Per-job knobs: JobSpec.ScanWorkers overrides the scheduler's sweep
// parallelism for one job (validated at submission, falls back to the
// scheduler default; results are bit-identical at every setting, so the
// knob only trades job latency against executor throughput).
//
// # Routing and affinity (cluster mode)
//
// Cluster shards the service into N independent Scheduler instances —
// each with its own bounded queue, executors, scan pool, session and
// calibration caches, fault injector and metrics plane — behind a
// consistent-hash router. The contract:
//
//   - Placement is by victim key. The router hashes JobSpec.routingKey()
//     (the normalized victim key that already governs the session and
//     calibration caches; cloud jobs use a provider/seed twin) onto a
//     ring of virtual nodes (ClusterConfig.HashReplicas per instance).
//     All jobs against one victim land on one instance, so session reuse
//     is structural: the owner's caches stay hot, and a stateful temporal
//     session's windows stay globally ordered on one scheduler. The
//     shuffled round-robin policy (RouteShuffle) exists as the measured
//     baseline this beats.
//   - Placement never changes results. A job is a pure function of its
//     spec, so cluster output is bit-identical to the single-scheduler
//     path — the cluster parity suite (`make ci-cluster`) pins every kind
//     at workers 0/1/4 × pooled/fresh, stateful sessions included.
//     Routing is itself a pure function of the spec (specs are normalized
//     before hashing, the ring is immutable after construction), so
//     goroutine interleaving can never move a key.
//   - Resizes remap a bounded fraction. The ring's virtual nodes keep the
//     moved key share near 1/N when an instance is added or removed —
//     never the wholesale reshuffle of a mod-N scheme — so cache warmth
//     survives capacity changes.
//   - Job IDs encode ownership. Instance i of N issues IDs i + kN, unique
//     across the cluster; the router resolves any ID back to its owner in
//     O(1) as id mod N (waits, snapshots, traces).
//   - Failure stays per-instance. Admission control, shedding, fault
//     injection (per-instance seeds split deterministically off the base
//     seed) and quarantine are all instance-local: one overloaded or
//     faulty instance degrades its own key range while the rest of the
//     cluster serves untouched, and identical seeds reproduce identical
//     per-instance traces.
//   - One rollup. Cluster.Stats() merges raw counters across instances
//     and recomputes the rates (latency quantiles via the mergeable
//     obs.Histogram.AddFrom, jobs/s over the global first-submit →
//     last-finish span), keeping per-instance rows — queue depth, routed
//     counts, cache hit/miss/evict — visible; Cluster.Metrics() serves
//     the same signals as instance-labeled Prometheus series.
//
// # Failure semantics
//
// The scheduler self-heals, and its failure contract is explicit:
//
//   - Classification. Every failed job carries exactly one ErrorClass.
//     Transient failures (injected faults, ErrJobDeadline, ErrPanicked,
//     ErrSessionCorrupt, overload/queue rejections) may heal on retry;
//     everything else is permanent — in this deterministic simulator a
//     genuine attack error reproduces bit-identically on retry, so the
//     scheduler fails it on first sight instead of tripling its latency.
//   - Retries. Transient attempts rerun up to Config.MaxAttempts with
//     exponential backoff (Config.RetryBackoff doubling per attempt,
//     capped at MaxRetryBackoff). Job.Attempts and Result.Retries record
//     the accounting — only when retries actually happened, so zero-fault
//     output stays bit-identical to the parity references. A drain aborts
//     a pending backoff immediately and fails the job with its last error.
//   - Deadlines. A per-attempt watchdog fails any attempt that overruns
//     Config.JobDeadline with ErrJobDeadline rather than letting it hold
//     an executor. The overrunning body is abandoned but never leaked: the
//     watchdog's stop signal unblocks injected stalls, and the orphaned
//     body's cleanup quarantines its session on the way out.
//   - Panic isolation. An attempt body that panics is recovered in its own
//     goroutine, surfaced as ErrPanicked (transient), and its session is
//     quarantined — one poisoned job can never take an executor down.
//   - Quarantine. A condemned session (panic, corrupt restore, watchdog
//     abandonment) is dropped at release and never re-adopted. The cached
//     calibration for its victim key is untouched — it came from a healthy
//     build — so the replacement session boots bit-identically.
//   - Admission control. Config.ShedWatermark (off by default) sheds
//     submissions with ErrOverloaded while the queue still has headroom;
//     HTTP maps it, like ErrQueueFull, to 429 + Retry-After.
//
// Fault injection (internal/fault) drives all of this deterministically:
// the whole fault schedule is a pure function of the injector seed — per
// site, per job identity (JobSpec.faultKey), per attempt — so identical
// seeds yield identical retry/quarantine traces regardless of executor
// interleaving. The one documented cache-dependence: boot and calibrate
// faults fire only on session *builds*, and whether a submission builds or
// adopts depends on execution order — full-trace identity for those two
// sites holds under serialized execution (the concurrent chaos tests zero
// them; `make ci-chaos` runs the whole matrix under -race). A disabled
// injector is a nil pointer: the production hot path pays one nil test.
//
// The result store streams completed jobs to subscribers and aggregates
// the service-level metrics (success rate, jobs/s, p50/p99 host latency,
// total simulated attacker time). Retention is bounded (StoreConfig:
// max-jobs cap plus optional finished-job TTL): only finished jobs are
// evicted — in-flight jobs are pinned so drains always complete — and the
// aggregates live in counters and fixed-bucket histograms (internal/obs)
// that survive eviction, so a long-lived scand serves unbounded traffic in
// bounded memory with O(buckets) stats scrapes. cmd/scand exposes the
// scheduler over HTTP and doubles as the load generator that records
// sustained-throughput entries in BENCH_scan.json.
//
// # Observability contract
//
// The metrics plane and the per-job lifecycle traces (internal/obs,
// Config.TraceSample, GET /metrics, GET /jobs/{id}/trace) are strictly
// read-only instrumentation: they must be invisible to every parity and
// determinism suite. Concretely:
//
//   - No behavioural coupling. Spans and stage histograms record what the
//     scheduler did; they never influence scheduling, retry, quarantine or
//     session-cache decisions, and job results are bit-identical with
//     tracing on, off, or sampled.
//   - Free when off. Disabled tracing is a nil *obs.Recorder — jobs carry
//     nil traces, every span call is a nil-receiver no-op, and the guard
//     tests pin the disabled hot path at zero allocations (the injector
//     idiom). Metrics counters/views read existing state at scrape time;
//     the only always-on cost is one atomic histogram add per stage.
//   - Traces are determinism oracles, not just debug output. A trace's
//     canonical form (wall-clock fields zeroed) is a pure function of
//     (seed, spec, fault schedule) under serialized execution, so `make
//     ci-obs` asserts byte-identical span trees across runs — any code
//     change that breaks trace equality has changed actual control flow.
package service
