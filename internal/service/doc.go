// Package service is the attack-as-a-service layer over the pooled scan
// engine: it accepts attack jobs (kernel base, KPTI trampoline, module
// enumeration, Windows region scan, §IV-F user scan, cloud scenarios),
// schedules them on a bounded queue, and multiplexes them across executor
// goroutines that share calibrated prober state — the subsystem that turns
// the one-shot attack library into something that can serve sustained
// mixed traffic.
//
// The layer cake, bottom to top:
//
//	machine   one simulated CPU+memory system (internal/machine)
//	scan      the sharded, batched sweep engine (internal/scan)
//	core      calibrated probers + the paper's attacks (internal/core)
//	service   jobs, sessions, scheduling, stats (this package)
//
// Three kinds of state are reused across jobs, each with a determinism
// contract that keeps service output bit-identical to direct core calls:
//
//   - Worker replicas: one core.ScanPool is shared by every executor, so
//     concurrent scans draw calibrated prober replicas from a single free
//     list and machine.Rebind re-syncs them per scan (pooled == fresh is
//     enforced by the core parity suites).
//   - Sessions: a booted victim + calibrated prober, cached per victim
//     configuration (preset, boot parameters, seed). Before every job the
//     session is rewound to its post-calibration checkpoint
//     (core.Prober.Restore), so job N on a reused session replays the
//     exact machine state job 1 saw.
//   - Calibrations: the first session for a victim configuration records
//     its thresholds and post-calibration execution state
//     (core.Calibration); later sessions for the same configuration boot
//     the victim and skip straight past calibration via
//     core.NewProberFromCalibration, bit-identically.
//
// The result store streams completed jobs to subscribers and aggregates
// the service-level metrics (success rate, jobs/s, p50/p99 host latency,
// total simulated attacker time). cmd/scand exposes the scheduler over
// HTTP and doubles as the load generator that records sustained-throughput
// entries in BENCH_scan.json.
package service
