package service

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/sgx"
	"repro/internal/uarch"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

// directResult mounts the spec's attack with plain core.* calls — the
// exact recipe cmd/avxattack and the examples use, independent of the
// service's session/checkpoint machinery — and maps it to a Result.
func directResult(t *testing.T, spec JobSpec) *Result {
	t.Helper()
	spec, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind == KindCloud {
		res, err := executeCloud(spec, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	preset := uarch.ByName(spec.CPU)
	m := machine.New(preset, spec.Seed)
	v := victim{m: m}
	switch spec.Kind {
	case KindKernelBase, KindModules, KindKPTI:
		k, err := linux.Boot(m, linux.Config{
			Seed: spec.Seed, KPTI: spec.Kind == KindKPTI,
			FLARE: spec.FLARE, TrampolineOffset: spec.Trampoline,
		})
		if err != nil {
			t.Fatal(err)
		}
		v.kernel = k
	case KindWindows:
		wk, err := winkernel.Boot(m, winkernel.Config{Seed: spec.Seed, Drivers: spec.Drivers})
		if err != nil {
			t.Fatal(err)
		}
		v.win = wk
	case KindUserScan:
		if _, err := linux.Boot(m, linux.Config{Seed: spec.Seed}); err != nil {
			t.Fatal(err)
		}
		proc, err := userspace.Build(m, userspace.Config{
			Seed: spec.Seed, EntropyBits: spec.EntropyBits, HideLastRWPage: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		v.proc = proc
		if spec.SGX {
			if _, err := sgx.Enter(m, sgx.RDTSC); err != nil {
				t.Fatal(err)
			}
		}
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	switch spec.Kind {
	case KindKernelBase:
		res, err := core.KernelBase(p)
		if err != nil {
			t.Fatal(err)
		}
		return &Result{
			Kind: spec.Kind, Correct: res.Base == v.kernel.Base, Base: uint64(res.Base),
			ProbeSimSec: res.ProbeSeconds(preset), TotalSimSec: res.TotalSeconds(preset),
		}
	case KindKPTI:
		res, err := core.KPTIBreak(p, spec.Trampoline)
		if err != nil {
			t.Fatal(err)
		}
		return &Result{
			Kind: spec.Kind, Correct: res.Base == v.kernel.Base, Base: uint64(res.Base),
			ProbeSimSec: preset.CyclesToSeconds(res.ProbeCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}
	case KindModules:
		table := core.SizeTable(v.kernel.ProcModules())
		res := core.Modules(p, table)
		score := core.ScoreModules(res, v.kernel.Modules, table)
		regions := make([]Region, len(res.Regions))
		for i, r := range res.Regions {
			regions[i] = Region{Start: uint64(r.Base), End: uint64(r.End()), Class: strings.Join(r.Names, "|")}
		}
		return &Result{
			Kind: spec.Kind, Correct: score.DetectionAccuracy() >= 0.99,
			Regions: regions, Accuracy: score.DetectionAccuracy(),
			ProbeSimSec: preset.CyclesToSeconds(res.ProbeCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}
	case KindWindows:
		res, err := core.WindowsKernel(p, winkernel.ImageSlots)
		if err != nil {
			t.Fatal(err)
		}
		return &Result{
			Kind: spec.Kind, Correct: res.RegionBase == v.win.Base,
			Base: uint64(res.RegionBase), RunSlots: res.RunSlots,
			ProbeSimSec: preset.CyclesToSeconds(res.ProbeCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}
	case KindUserScan:
		libs := v.proc.Libs
		start := libs[0].Base - 16*paging.Page4K
		end := libs[len(libs)-1].End() + 8*paging.Page4K
		res := core.UserScan(p, start, end)
		regions := make([]Region, len(res.Regions))
		for i, r := range res.Regions {
			regions[i] = Region{Start: uint64(r.Start), End: uint64(r.End), Class: r.Class.String()}
		}
		found := core.FingerprintLibraries(res.Regions, userspace.StandardLibraries())
		fm := make(map[string]uint64, len(found))
		for name, va := range found {
			fm[name] = uint64(va)
		}
		correct := len(libs) > 0
		for _, lib := range libs {
			if fm[lib.Image.Name] != uint64(lib.Base) {
				correct = false
			}
		}
		return &Result{
			Kind: spec.Kind, Correct: correct, Regions: regions, Found: fm,
			ProbeSimSec: preset.CyclesToSeconds(res.LoadCycles + res.StoreCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}
	}
	t.Fatalf("unhandled kind %q", spec.Kind)
	return nil
}

// paritySpecs is the attack-kind matrix of the service parity suite.
func paritySpecs() []JobSpec {
	return []JobSpec{
		{Kind: KindKernelBase, CPU: "12400F", Seed: 41},
		{Kind: KindKernelBase, CPU: "5600X", Seed: 42}, // AMD term-level path
		{Kind: KindKPTI, CPU: "12400F", Seed: 43},
		{Kind: KindModules, CPU: "1065G7", Seed: 44},
		{Kind: KindWindows, CPU: "12400F", Seed: 45},
		{Kind: KindUserScan, CPU: "1065G7", Seed: 46, EntropyBits: 10},
		{Kind: KindUserScan, CPU: "1065G7", Seed: 47, EntropyBits: 10, SGX: true},
		{Kind: KindCloud, Provider: "gce", Seed: 48},
	}
}

// The service determinism contract: every attack kind, submitted through
// the scheduler at scan workers 0/1/4 × pooled/fresh, returns a Result
// bit-identical to the direct core.* call at the same seed — and a second
// submission of the same spec (which reuses the session and skips
// calibration) matches too.
func TestServiceParityWithDirectCalls(t *testing.T) {
	specs := paritySpecs()
	want := make([]*Result, len(specs))
	for i, spec := range specs {
		want[i] = directResult(t, spec)
		if !want[i].Correct {
			t.Fatalf("spec %+v: direct attack not correct — pick another seed", spec)
		}
	}

	for _, workers := range []int{0, 1, 4} {
		for _, fresh := range []bool{false, true} {
			s := New(Config{Executors: 2, ScanWorkers: workers, FreshWorkers: fresh})
			for round := 0; round < 2; round++ {
				for i, spec := range specs {
					j, err := s.Submit(spec)
					if err != nil {
						t.Fatal(err)
					}
					got, err := s.Wait(j)
					if err != nil {
						t.Fatalf("workers=%d fresh=%v round=%d %s: %v", workers, fresh, round, spec.Kind, err)
					}
					if !reflect.DeepEqual(want[i], got) {
						t.Fatalf("workers=%d fresh=%v round=%d: %s result differs from direct call\nwant: %+v\ngot:  %+v",
							workers, fresh, round, spec.Kind, want[i], got)
					}
				}
			}
			s.Drain()
		}
	}
}

// Session reuse must be visible in the job provenance and must not change
// results: with one executor, the second identical job runs on the
// released session of the first.
func TestSessionReuseProvenance(t *testing.T) {
	s := New(Config{Executors: 1})
	defer s.Drain()
	spec := JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 7}

	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Wait(j1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Wait(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reused-session result differs:\nfirst:  %+v\nsecond: %+v", r1, r2)
	}
	s1, _ := s.Store().Snapshot(j1.ID)
	s2, _ := s.Store().Snapshot(j2.ID)
	if s1.ReusedSession {
		t.Fatal("first job claims a reused session")
	}
	if !s2.ReusedSession {
		t.Fatal("second job did not reuse the session")
	}
}

// The calibration cache must kick in when a known victim configuration
// needs a second session (first one busy): the new session skips Calibrate
// and still produces an identical prober.
func TestCalibrationCacheSkipsCalibrate(t *testing.T) {
	cache := newSessionCache(8)
	spec, err := JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 11}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	s1, reused1, err := cache.acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Second acquire without releasing the first: same key, fresh boot.
	s2, reused2, err := cache.acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reused1 || reused2 {
		t.Fatal("no session should have been reused")
	}
	if s1.cachedCal {
		t.Fatal("first session claims a cached calibration")
	}
	if !s2.cachedCal {
		t.Fatal("second session did not use the cached calibration")
	}
	if s1.p.Threshold.Cycles != s2.p.Threshold.Cycles ||
		s1.p.StoreThreshold.Cycles != s2.p.StoreThreshold.Cycles {
		t.Fatal("cached-calibration prober thresholds differ")
	}
	made, hits, _ := cache.stats()
	if made != 2 || hits != 1 {
		t.Fatalf("stats: made=%d calHits=%d, want 2/1", made, hits)
	}
}
