package service

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultHashReplicas is the virtual-node count per cluster instance when
// ClusterConfig.HashReplicas is 0. More replicas smooth the key
// distribution across instances (the per-instance share concentrates
// around 1/N) at the cost of a larger — still tiny, built-once — ring.
const DefaultHashReplicas = 64

// ring is a deterministic consistent-hash ring over cluster instances:
// each instance owns HashReplicas virtual nodes placed by hashing
// "inst=<i>|vnode=<v>", and a key maps to the instance owning the first
// point clockwise of the key's hash. The placement is a pure function of
// (instances, replicas) — no construction-order or goroutine-interleaving
// dependence — and growing or shrinking the instance count only moves the
// keys whose arcs changed owners: an expected fraction of about 1/N for
// one instance added to or removed from an N-instance ring, never a full
// reshuffle (the property the remap-bound test counts and asserts).
type ring struct {
	points []ringPoint // sorted by (hash, instance)
	n      int
}

type ringPoint struct {
	hash uint64
	inst int
}

// hashKey is the ring's one hash function (FNV-1a, the same family the
// fault keys use): fast, dependency-free, stable across runs and builds.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// newRing builds the ring for n instances with r virtual nodes each
// (r <= 0 means DefaultHashReplicas).
func newRing(n, r int) *ring {
	if n < 1 {
		n = 1
	}
	if r <= 0 {
		r = DefaultHashReplicas
	}
	pts := make([]ringPoint, 0, n*r)
	for i := 0; i < n; i++ {
		for v := 0; v < r; v++ {
			pts = append(pts, ringPoint{hash: hashKey(fmt.Sprintf("inst=%d|vnode=%d", i, v)), inst: i})
		}
	}
	// Ties (hash collisions between virtual nodes) are broken by instance
	// index, so the ring's ownership is total-ordered and identical across
	// runs even in the collision case.
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		return pts[a].inst < pts[b].inst
	})
	return &ring{points: pts, n: n}
}

// lookup maps a routing key to its owning instance. The ring is immutable
// after construction, so concurrent lookups need no synchronization.
func (r *ring) lookup(key string) int {
	if r.n == 1 || len(r.points) == 0 {
		return 0
	}
	h := hashKey(key)
	// First point at or clockwise of h; wrap to the start past the end.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].inst
}
