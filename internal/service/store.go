package service

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultStoreMaxJobs is the default retention bound: a long-lived scand
// keeps at most this many finished jobs queryable (aggregate stats are
// unaffected by eviction; they live in counters, not in the job map).
const DefaultStoreMaxJobs = 16384

// StoreConfig bounds the result store's retention.
type StoreConfig struct {
	// MaxJobs caps how many jobs the store retains. 0 means
	// DefaultStoreMaxJobs; negative means unbounded (the pre-eviction
	// behaviour, for tests and short-lived runs). Only *finished* jobs are
	// ever evicted — queued and running jobs are pinned, so a drain always
	// has every in-flight job to finish — and eviction is oldest-finished
	// first.
	MaxJobs int
	// TTL, when positive, additionally evicts finished jobs whose
	// completion is older than TTL (checked on every completion and on
	// Stats polls).
	TTL time.Duration
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.MaxJobs == 0 {
		c.MaxJobs = DefaultStoreMaxJobs
	}
	return c
}

// Store is the streaming result store: it owns every job the scheduler has
// accepted (up to the configured retention bound), streams completions to
// subscribers, and aggregates the service-level metrics.
type Store struct {
	mu   sync.Mutex
	cfg  StoreConfig
	jobs map[uint64]*Job
	// finished queues finished job IDs in completion order — the eviction
	// order. Queued/running jobs are never in it and never evicted.
	finished  []uint64
	evicted   int
	submitted int
	// lat and kindLat accumulate end-to-end host latencies (submit →
	// finish) in fixed-bucket histograms: observation is one atomic add
	// under the lock already held, quantiles are O(buckets) regardless of
	// job count, and — unlike the job map — they are never evicted, so the
	// quantiles cover the store's whole lifetime. kindLat is pre-populated
	// for every kind at construction, so the complete path never allocates
	// a map entry.
	lat     *obs.Histogram
	kindLat map[Kind]*obs.Histogram
	// kindDone / defenseDone count finished jobs per kind and completed
	// defense evaluations per defense — the label dimensions /metrics
	// exports.
	kindDone    map[Kind]uint64
	defenseDone map[string]uint64
	firstSub    time.Time
	lastDone  time.Time
	completed int
	failed    int
	correct   int
	rejected  int
	retries   int
	shedded   int
	simSec    float64
	subs      map[int]chan *Job
	nextSub   int
	dropped   int
}

// NewStore creates an empty store with the default retention bound.
func NewStore() *Store { return NewBoundedStore(StoreConfig{}) }

// NewBoundedStore creates an empty store with explicit retention bounds.
func NewBoundedStore(cfg StoreConfig) *Store {
	st := &Store{
		cfg:         cfg.withDefaults(),
		jobs:        make(map[uint64]*Job),
		subs:        make(map[int]chan *Job),
		lat:         &obs.Histogram{},
		kindLat:     make(map[Kind]*obs.Histogram, len(Kinds())),
		kindDone:    make(map[Kind]uint64, len(Kinds())),
		defenseDone: make(map[string]uint64, len(Defenses())),
	}
	for _, k := range Kinds() {
		st.kindLat[k] = &obs.Histogram{}
	}
	return st
}

// add registers a freshly submitted job.
func (st *Store) add(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.jobs[j.ID] = j
	st.submitted++
	if st.firstSub.IsZero() || j.Submitted.Before(st.firstSub) {
		st.firstSub = j.Submitted
	}
}

// evictLocked applies the retention policy (call with st.mu held): drop
// the oldest finished jobs over the MaxJobs cap, then any finished job
// older than the TTL. In-flight jobs are never touched, and the aggregate
// counters survive eviction untouched.
func (st *Store) evictLocked(now time.Time) {
	drop := func() {
		id := st.finished[0]
		st.finished = st.finished[1:]
		delete(st.jobs, id)
		st.evicted++
	}
	if st.cfg.MaxJobs > 0 {
		for len(st.finished) > 0 && len(st.jobs) > st.cfg.MaxJobs {
			drop()
		}
	}
	if st.cfg.TTL > 0 {
		cutoff := now.Add(-st.cfg.TTL)
		for len(st.finished) > 0 {
			j := st.jobs[st.finished[0]]
			if j == nil || j.Finished.After(cutoff) {
				break
			}
			drop()
		}
	}
}

// reject counts a submission turned away (queue full / draining).
func (st *Store) reject() {
	st.mu.Lock()
	st.rejected++
	st.mu.Unlock()
}

// shed counts a submission dropped by admission control (it also counts as
// rejected — shedding is a rejection with an earlier trigger).
func (st *Store) shed() {
	st.mu.Lock()
	st.rejected++
	st.shedded++
	st.mu.Unlock()
}

// retry counts one transient-failure retry the scheduler scheduled.
func (st *Store) retry() {
	st.mu.Lock()
	st.retries++
	st.mu.Unlock()
}

// markRunning transitions a job to running.
func (st *Store) markRunning(j *Job) {
	st.mu.Lock()
	j.Status = StatusRunning
	j.Started = time.Now()
	st.mu.Unlock()
}

// setProvenance records what the session cache contributed, under the
// store lock so concurrent Snapshot calls never race the executor.
func (st *Store) setProvenance(j *Job, reusedSession, reusedCalibration bool) {
	st.mu.Lock()
	j.ReusedSession = reusedSession
	j.ReusedCalibration = reusedCalibration
	st.mu.Unlock()
}

// complete finishes a job (result or error), updates the aggregates and
// streams the job to subscribers.
func (st *Store) complete(j *Job, res *Result, err error) {
	st.completeAttempts(j, res, err, 1)
}

// completeAttempts is complete with the scheduler's per-job attempt
// accounting: retried jobs record their attempt count and failed jobs
// their error class. Single-attempt successes record neither, keeping the
// zero-fault job JSON (and the parity suites' DeepEqual references)
// bit-identical to the pre-fault-injection service.
func (st *Store) completeAttempts(j *Job, res *Result, err error, attempts int) {
	st.mu.Lock()
	j.Finished = time.Now()
	if attempts > 1 {
		j.Attempts = attempts
	}
	if err != nil {
		j.Status = StatusFailed
		j.Err = err.Error()
		j.ErrClass = Classify(err)
		st.failed++
	} else {
		j.Status = StatusDone
		j.Result = res
		st.completed++
		if res.Correct {
			st.correct++
		}
		st.simSec += res.TotalSimSec
	}
	if lat := j.Finished.Sub(j.Submitted); lat > 0 {
		st.lat.Observe(uint64(lat))
		if h := st.kindLat[j.Spec.Kind]; h != nil {
			h.Observe(uint64(lat))
		}
	}
	st.kindDone[j.Spec.Kind]++
	if j.Spec.Kind == KindDefenseEval && err == nil {
		st.defenseDone[j.Spec.Defense]++
	}
	if j.Finished.After(st.lastDone) {
		st.lastDone = j.Finished
	}
	st.finished = append(st.finished, j.ID)
	st.evictLocked(j.Finished)
	for _, ch := range st.subs {
		select {
		case ch <- j:
		default:
			st.dropped++ // a slow subscriber never stalls the executors
		}
	}
	st.mu.Unlock()
	close(j.done)
}

// Get returns a job by ID.
func (st *Store) Get(id uint64) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// Snapshot returns a copy of a job's current public state, safe to
// marshal while executors keep running.
func (st *Store) Snapshot(id uint64) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Subscribe registers a completion stream with the given buffer.
// Completions arriving while the buffer is full are dropped for that
// subscriber (counted in Stats.StreamDropped). cancel unregisters.
func (st *Store) Subscribe(buf int) (stream <-chan *Job, cancel func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan *Job, buf)
	st.mu.Lock()
	id := st.nextSub
	st.nextSub++
	st.subs[id] = ch
	st.mu.Unlock()
	return ch, func() {
		st.mu.Lock()
		delete(st.subs, id)
		st.mu.Unlock()
	}
}

// Stats is the aggregate service view.
type Stats struct {
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
	// SuccessRate is correct/completed.
	SuccessRate float64 `json:"success_rate"`
	// JobsPerSec is finished jobs over the first-submit → last-finish wall
	// span.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P50Ms / P99Ms are end-to-end (queue + run) host latency quantiles.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// SimAttackerSec totals the jobs' simulated attacker time: the cost the
	// victims' hardware paid, as opposed to the host wall-clock the service
	// paid.
	SimAttackerSec float64 `json:"sim_attacker_sec"`
	// Sessions / CalibrationsReused / PoolReplicas report reuse (filled by
	// the scheduler).
	Sessions           int `json:"sessions"`
	CalibrationsReused int `json:"calibrations_reused"`
	PoolReplicas       int `json:"pool_replicas"`
	StreamDropped      int `json:"stream_dropped,omitempty"`
	// Evicted counts finished jobs dropped by the retention policy; their
	// contribution to the aggregates above is retained.
	Evicted int `json:"evicted,omitempty"`
	// Retained is the number of jobs currently queryable.
	Retained int `json:"retained"`
	// Self-healing counters (omitted while zero, so a fault-free daemon's
	// stats are unchanged): Retries counts transient-failure re-attempts,
	// Shed counts submissions dropped by admission control (also included
	// in Rejected), Quarantined counts sessions condemned and dropped, and
	// FaultsInjected totals the injector's fired faults (0 without -fault-rate).
	Retries        int    `json:"retries,omitempty"`
	Shed           int    `json:"shed,omitempty"`
	Quarantined    int    `json:"quarantined,omitempty"`
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
	// Cache-effectiveness counters (omitted while zero, keeping zero-state
	// JSON identical to the pre-counter service): SessionHits counts jobs
	// served from a parked session — Sessions above counts the misses
	// (builds) and CalibrationsReused the builds that skipped Calibrate —
	// and SessionsEvicted counts healthy sessions dropped at the idle cap.
	SessionHits     int `json:"session_hits,omitempty"`
	SessionsEvicted int `json:"sessions_evicted,omitempty"`
}

// CacheHitRate is the combined session+calibration hit rate over all
// session acquisitions: the fraction of jobs that avoided a full
// boot-and-calibrate (reused a session, or booted against a cached
// calibration). The affinity figure of merit the cluster bench records.
func (s Stats) CacheHitRate() float64 {
	total := s.SessionHits + s.Sessions
	if total == 0 {
		return 0
	}
	return float64(s.SessionHits+s.CalibrationsReused) / float64(total)
}

// Stats computes the current aggregates. The latency quantiles come from
// the store's fixed-bucket histogram — an O(buckets) walk over atomic
// counters, outside the lock, independent of how many jobs ever finished
// and unaffected by finished-job eviction — so stats polling never stalls
// the executors' complete path. Quantiles are bucketed: the reported value
// is the upper bound of the bucket holding the rank (≤ ~12.5% above the
// exact order statistic).
func (st *Store) Stats() Stats {
	st.mu.Lock()
	st.evictLocked(time.Now())
	s := Stats{
		Submitted:      st.submitted,
		Completed:      st.completed,
		Failed:         st.failed,
		Rejected:       st.rejected,
		Retries:        st.retries,
		Shed:           st.shedded,
		SimAttackerSec: st.simSec,
		StreamDropped:  st.dropped,
		Evicted:        st.evicted,
		Retained:       len(st.jobs),
	}
	if st.completed > 0 {
		s.SuccessRate = float64(st.correct) / float64(st.completed)
	}
	finished := st.completed + st.failed
	if finished > 0 && st.lastDone.After(st.firstSub) {
		s.JobsPerSec = float64(finished) / st.lastDone.Sub(st.firstSub).Seconds()
	}
	st.mu.Unlock()

	s.P50Ms = float64(st.lat.Quantile(0.50)) / 1e6
	s.P99Ms = float64(st.lat.Quantile(0.99)) / 1e6
	return s
}

// storeAgg is one store's raw counter snapshot — the mergeable form a
// cluster rollup sums across instances (Stats derives rates from the
// already-divided values, which do not add; these do).
type storeAgg struct {
	submitted, completed, failed, correct int
	rejected, retries, shedded, evicted   int
	dropped, retained                     int
	simSec                                float64
	firstSub, lastDone                    time.Time
}

// aggregate snapshots the store's raw counters for a cluster-wide rollup.
func (st *Store) aggregate() storeAgg {
	st.mu.Lock()
	defer st.mu.Unlock()
	return storeAgg{
		submitted: st.submitted,
		completed: st.completed,
		failed:    st.failed,
		correct:   st.correct,
		rejected:  st.rejected,
		retries:   st.retries,
		shedded:   st.shedded,
		evicted:   st.evicted,
		dropped:   st.dropped,
		retained:  len(st.jobs),
		simSec:    st.simSec,
		firstSub:  st.firstSub,
		lastDone:  st.lastDone,
	}
}

// KindLatency is one kind's end-to-end latency summary.
type KindLatency struct {
	Jobs  uint64  `json:"jobs"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// KindLatencies returns the per-kind latency breakdown for every kind that
// finished at least one job (the `scand -load` report's per-kind rows).
func (st *Store) KindLatencies() map[Kind]KindLatency {
	out := make(map[Kind]KindLatency)
	for k, h := range st.kindLat {
		if n := h.Count(); n > 0 {
			out[k] = KindLatency{
				Jobs:  n,
				P50Ms: float64(h.Quantile(0.50)) / 1e6,
				P99Ms: float64(h.Quantile(0.99)) / 1e6,
			}
		}
	}
	return out
}

// latencyHistogram exposes the store's all-time latency histogram for
// registration in the metrics plane (shared ownership: the store keeps
// observing, the registry reads at scrape time).
func (st *Store) latencyHistogram() *obs.Histogram { return st.lat }

// kindLatencyHistogram exposes one kind's latency histogram (nil-free:
// every kind is pre-populated at construction).
func (st *Store) kindLatencyHistogram(k Kind) *obs.Histogram { return st.kindLat[k] }

// kindFinished returns how many jobs of kind k reached a terminal state.
func (st *Store) kindFinished(k Kind) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.kindDone[k]
}

// defenseCompleted returns how many defense evaluations of d completed.
func (st *Store) defenseCompleted(d string) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.defenseDone[d]
}

// counterView adapts one store counter into a scrape-time metrics view.
func (st *Store) counterView(read func(*Store) int) func() float64 {
	return func() float64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		return float64(read(st))
	}
}
