package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// ringKeys builds a synthetic victim-key population shaped like real
// routing keys (kind|cpu|seed tuples).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("kernelbase|12400F|seed=%d", i)
	}
	return keys
}

// Same ring parameters must yield the same placement for every key, across
// independently built rings — placement is a pure function of
// (instances, replicas, key), never of construction order or run.
func TestRingDeterministicPlacement(t *testing.T) {
	keys := ringKeys(2000)
	a := newRing(4, DefaultHashReplicas)
	b := newRing(4, DefaultHashReplicas)
	counts := make([]int, 4)
	for _, k := range keys {
		ia, ib := a.lookup(k), b.lookup(k)
		if ia != ib {
			t.Fatalf("key %q: placement diverged across identical rings (%d vs %d)", k, ia, ib)
		}
		counts[ia]++
	}
	// Virtual nodes must spread the key space: every instance owns a
	// non-trivial share (the exact split is hash-determined; what matters
	// is that no instance is starved or hot by an order of magnitude).
	for i, c := range counts {
		if c < len(keys)/16 {
			t.Fatalf("instance %d owns only %d/%d keys — ring badly unbalanced: %v", i, c, len(keys), counts)
		}
	}
}

// Growing or shrinking the cluster must remap only a bounded fraction of
// keys — the consistent-hashing contract. A naive mod-N router would move
// ~1-1/N of all keys; the ring must move roughly the 1/N share the
// new (or departed) instance owns.
func TestRingBoundedRemapOnResize(t *testing.T) {
	keys := ringKeys(4000)
	base := newRing(4, DefaultHashReplicas)
	for _, resized := range []int{5, 3} {
		r2 := newRing(resized, DefaultHashReplicas)
		moved := 0
		for _, k := range keys {
			if base.lookup(k) != r2.lookup(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		if moved == 0 {
			t.Fatalf("resize 4→%d moved no keys — rings are not actually different", resized)
		}
		// Ideal is ~1/5 (grow) and ~1/4 (shrink); allow slack for hash
		// variance but stay far below the ~0.75 a mod-N scheme moves.
		if frac > 0.40 {
			t.Fatalf("resize 4→%d remapped %.0f%% of keys (%d/%d) — want a bounded fraction (<40%%)",
				resized, 100*frac, moved, len(keys))
		}
	}
}

// Routing must be independent of goroutine interleaving: concurrent
// lookups agree with the serial answer (the ring is immutable after
// construction; this is the -race gate for the router's read path).
func TestRingConcurrentLookupMatchesSerial(t *testing.T) {
	keys := ringKeys(512)
	r := newRing(4, DefaultHashReplicas)
	want := make([]int, len(keys))
	for i, k := range keys {
		want[i] = r.lookup(k)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(keys); i += 8 {
				if got := r.lookup(keys[i]); got != want[i] {
					t.Errorf("key %d: concurrent lookup %d != serial %d", i, got, want[i])
				}
			}
		}(g)
	}
	wg.Wait()
}

// The cluster determinism contract: every attack kind submitted through
// the N=4 cluster — at scan workers 0/1/4 × pooled/fresh, two rounds so
// the second submission rides the owning instance's cached session —
// returns a Result bit-identical to the single-scheduler path. Placement
// must never leak into results.
func TestClusterParityWithSingleScheduler(t *testing.T) {
	specs := append(paritySpecs(),
		JobSpec{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseFLARE, Seed: 49},
		JobSpec{Kind: KindDefenseEval, CPU: "1065G7", Defense: DefenseRerand, Seed: 50, RerandPeriodsSec: []float64{0.01, 1}},
	)
	// Reference: the plain single-scheduler path (itself pinned to direct
	// core.* calls by TestServiceParityWithDirectCalls).
	ref := New(Config{Executors: 2})
	want := make([]*Result, len(specs))
	for i, spec := range specs {
		j, err := ref.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = ref.Wait(j); err != nil {
			t.Fatalf("reference %s: %v", spec.Kind, err)
		}
	}
	ref.Drain()

	for _, workers := range []int{0, 1, 4} {
		for _, fresh := range []bool{false, true} {
			c := NewCluster(ClusterConfig{
				Instances: 4,
				Config:    Config{Executors: 2, ScanWorkers: workers, FreshWorkers: fresh},
			})
			seen := make(map[uint64]bool)
			for round := 0; round < 2; round++ {
				for i, spec := range specs {
					j, err := c.Submit(spec)
					if err != nil {
						t.Fatal(err)
					}
					if seen[j.ID] {
						t.Fatalf("job ID %d issued twice across the cluster", j.ID)
					}
					seen[j.ID] = true
					inst, err := c.RouteSpec(spec)
					if err != nil {
						t.Fatal(err)
					}
					if got := int(j.ID % 4); got != inst {
						t.Fatalf("ID %d: id mod N says instance %d, router says %d", j.ID, got, inst)
					}
					got, err := c.Wait(j)
					if err != nil {
						t.Fatalf("workers=%d fresh=%v round=%d %s: %v", workers, fresh, round, spec.Kind, err)
					}
					if !reflect.DeepEqual(want[i], got) {
						t.Fatalf("workers=%d fresh=%v round=%d: %s cluster result differs from single scheduler\nwant: %+v\ngot:  %+v",
							workers, fresh, round, spec.Kind, want[i], got)
					}
				}
			}
			// Round two re-submitted every spec to the same owner: the
			// cluster as a whole must have reused sessions.
			if st := c.Stats(); st.SessionHits == 0 {
				t.Fatal("second round produced no session hits — affinity is not reaching the caches")
			}
			c.Drain()
		}
	}
}

// Stateful temporal sessions through the cluster: consecutive spy jobs at
// one seed hash to one instance, whose session serves them as consecutive
// windows of one victim timeline — bit-identical to the direct sequence
// and globally ordered (window k starts where k-1 ended).
func TestClusterTemporalAffinityWindows(t *testing.T) {
	spec := JobSpec{Kind: KindBehaviorSpy, Seed: 52, DurationSec: 15}
	const windows = 3
	want := directSpyResults(t, spec, windows, 0)

	c := NewCluster(ClusterConfig{Instances: 4, Config: Config{Executors: 1}})
	defer c.Drain()
	owner := -1
	for w := 0; w < windows; w++ {
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if inst := int(j.ID % 4); owner == -1 {
			owner = inst
		} else if inst != owner {
			t.Fatalf("window %d routed to instance %d, window 0 to %d — affinity broken", w, inst, owner)
		}
		got, err := c.Wait(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want[w], got) {
			t.Fatalf("window %d differs from direct sequence\nwant: %+v\ngot:  %+v", w, want[w], got)
		}
		snap, ok := c.JobSnapshot(j.ID)
		if !ok {
			t.Fatalf("window %d vanished from the owner's store", w)
		}
		if w > 0 && !snap.ReusedSession {
			t.Fatalf("window %d did not reuse the owner's stateful session", w)
		}
	}
}

// The affinity win itself: under a zipfian victim skew, hash routing must
// beat shuffled round-robin on cache hit rate — the same victim's jobs
// land on one warm instance instead of cold-booting on all four.
func TestClusterAffinityBeatsShuffledRoundRobin(t *testing.T) {
	load := LoadConfig{
		Jobs:        64,
		Concurrency: 4,
		Victims:     8,
		Seed:        1,
		Dist:        DistZipfian,
		Mix: []JobSpec{
			{Kind: KindKernelBase, CPU: "12400F"},
			{Kind: KindKPTI, CPU: "12400F"},
		},
	}
	run := func(route string) Stats {
		c := NewCluster(ClusterConfig{
			Instances: 4,
			Route:     route,
			RouteSeed: 99,
			Config:    Config{Executors: 1, QueueDepth: 256},
		})
		rep := RunLoad(c, load)
		c.Drain()
		if rep.Stats.Failed > 0 || rep.SubmitErrors > 0 {
			t.Fatalf("route=%s: %d failed, %d submit errors", route, rep.Stats.Failed, rep.SubmitErrors)
		}
		return c.LoadStats()
	}
	hash := run(RouteHash)
	shuffle := run(RouteShuffle)
	if hash.CacheHitRate() <= shuffle.CacheHitRate() {
		t.Fatalf("affinity did not pay: hash hit rate %.3f (hits=%d boots=%d) <= shuffle %.3f (hits=%d boots=%d)",
			hash.CacheHitRate(), hash.SessionHits, hash.Sessions,
			shuffle.CacheHitRate(), shuffle.SessionHits, shuffle.Sessions)
	}
	if hash.Sessions >= shuffle.Sessions {
		t.Fatalf("hash routing booted %d sessions, shuffle %d — affinity should boot fewer", hash.Sessions, shuffle.Sessions)
	}
}

// clusterChaosRun drives a seed sweep through a cluster whose `target`
// instance runs a sustained fault mix (via the Tune hook) while the rest
// are fault-free, and returns the per-job traces in submission order plus
// each instance's per-site fired counts.
func clusterChaosRun(t *testing.T, target int, specs []JobSpec) ([]jobTrace, [][6]uint64) {
	t.Helper()
	c := NewCluster(ClusterConfig{
		Instances: 4,
		Config:    Config{Executors: 1, QueueDepth: 64},
		Tune: func(i int, cfg Config) Config {
			if i == target {
				cfg.MaxAttempts = 3
				cfg.JobDeadline = -1 // host-speed independence, as in the chaos suite
				cfg.Fault = fault.Config{Seed: 7, Rates: chaosRates()}
			}
			return cfg
		},
	})
	var jobs []*Job
	for i, spec := range specs {
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	traces := make([]jobTrace, len(jobs))
	for i, j := range jobs {
		if _, err := c.Wait(j); err != nil && Classify(err) == "" {
			t.Fatalf("job %d: unclassified error %v", j.ID, err)
		}
		snap, ok := c.JobSnapshot(j.ID)
		if !ok {
			t.Fatalf("job %d vanished", j.ID)
		}
		tr := jobTrace{Status: snap.Status, Err: snap.Err, ErrClass: snap.ErrClass, Attempts: snap.Attempts}
		if snap.Result != nil {
			tr.Retries = snap.Result.Retries
		}
		traces[i] = tr
	}
	fired := make([][6]uint64, c.Instances())
	for i := 0; i < c.Instances(); i++ {
		for _, site := range fault.Sites() {
			fired[i][site] = c.Instance(i).inj.Fired(site)
		}
	}
	c.Drain()
	return traces, fired
}

// Router partial failure: with one instance under a sustained fault mix,
// the healthy instances' jobs complete untouched (no faults, no retries on
// their instances), the faulty instance keeps healing its own key range,
// and identical seeds reproduce identical per-instance traces run over run.
func TestClusterPartialFailureIsolation(t *testing.T) {
	// A seed sweep wide enough that every instance owns some keys.
	var specs []JobSpec
	for seed := uint64(1); seed <= 24; seed++ {
		specs = append(specs, JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: seed})
	}
	probe := NewCluster(ClusterConfig{Instances: 4})
	perInst := make([]int, 4)
	for _, spec := range specs {
		inst, err := probe.RouteSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		perInst[inst]++
	}
	probe.Drain()
	for i, n := range perInst {
		if n == 0 {
			t.Fatalf("seed sweep left instance %d without jobs (placement %v) — widen the sweep", i, perInst)
		}
	}

	const target = 2
	tr1, fired1 := clusterChaosRun(t, target, specs)
	tr2, fired2 := clusterChaosRun(t, target, specs)

	for i := range fired1 {
		if i == target {
			if fired1[i] == ([6]uint64{}) {
				t.Fatal("faulty instance injected nothing — Tune hook not applied")
			}
			continue
		}
		if fired1[i] != ([6]uint64{}) {
			t.Fatalf("healthy instance %d injected faults: %v", i, fired1[i])
		}
	}
	for i, spec := range specs {
		inst, _ := probe.RouteSpec(spec)
		if inst != target {
			if tr1[i].Status != StatusDone || tr1[i].Retries != 0 {
				t.Fatalf("healthy-instance job %d (instance %d) degraded: %+v", i, inst, tr1[i])
			}
		}
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("job %d trace diverged across identically seeded runs:\n run1 %+v\n run2 %+v", i, tr1[i], tr2[i])
		}
	}
	for i := range fired1 {
		if fired1[i] != fired2[i] {
			t.Fatalf("instance %d per-site fault counts diverged: %v vs %v", i, fired1[i], fired2[i])
		}
	}
}

// The cluster rollup must account exactly: merged counters equal the sum
// of per-instance counters, routed counts equal accepted submissions, and
// the merged latency/kind views carry every job.
func TestClusterStatsRollup(t *testing.T) {
	c := NewCluster(ClusterConfig{Instances: 3, Config: Config{Executors: 1}})
	defer c.Drain()
	var jobs []*Job
	for seed := uint64(1); seed <= 12; seed++ {
		for _, spec := range []JobSpec{
			{Kind: KindKernelBase, CPU: "12400F", Seed: seed},
			{Kind: KindModules, CPU: "1065G7", Seed: seed},
		} {
			j, err := c.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	for _, j := range jobs {
		if _, err := c.Wait(j); err != nil {
			t.Fatal(err)
		}
	}

	st := c.Stats()
	if len(st.Instances) != 3 {
		t.Fatalf("rollup has %d instance rows, want 3", len(st.Instances))
	}
	var sub, done, hits, routed int
	for _, row := range st.Instances {
		sub += row.Stats.Submitted
		done += row.Stats.Completed
		hits += row.Stats.SessionHits
		routed += int(row.Routed)
	}
	if st.Submitted != sub || st.Submitted != len(jobs) {
		t.Fatalf("merged submitted %d, instance sum %d, want %d", st.Submitted, sub, len(jobs))
	}
	if st.Completed != done || done != len(jobs) {
		t.Fatalf("merged completed %d, instance sum %d, want %d", st.Completed, done, len(jobs))
	}
	if st.SessionHits != hits {
		t.Fatalf("merged session hits %d, instance sum %d", st.SessionHits, hits)
	}
	if routed != len(jobs) {
		t.Fatalf("router counted %d accepted submissions, want %d", routed, len(jobs))
	}
	if st.SuccessRate != 1 {
		t.Fatalf("success rate %v, want 1", st.SuccessRate)
	}
	if st.JobsPerSec <= 0 || st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
		t.Fatalf("merged latency view implausible: jobs/s=%v p50=%v p99=%v", st.JobsPerSec, st.P50Ms, st.P99Ms)
	}
	kl := c.KindLatencies()
	var kindJobs int
	for _, v := range kl {
		kindJobs += int(v.Jobs)
	}
	if kindJobs != len(jobs) {
		t.Fatalf("merged kind latencies carry %d jobs, want %d", kindJobs, len(jobs))
	}
}

// The cluster /metrics rollup serves instance-labeled series for every
// per-instance signal the ISSUE names: cache hit/miss/evict, queue depth,
// routed counts, job counters, faults and latency histograms.
func TestClusterMetricsInstanceLabels(t *testing.T) {
	c := NewCluster(ClusterConfig{Instances: 2, Config: Config{Executors: 1}})
	defer c.Drain()
	for seed := uint64(1); seed <= 6; seed++ {
		j, err := c.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(j); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := c.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"scand_cluster_instances 2",
		`scand_router_routed_total{instance="0"}`,
		`scand_router_routed_total{instance="1"}`,
		`scand_queue_depth{instance="0"}`,
		`scand_jobs_submitted_total{instance="0"}`,
		`scand_jobs_completed_total{instance="1"}`,
		`scand_session_hits_total{instance="0"}`,
		`scand_sessions_built_total{instance="1"}`,
		`scand_calibrations_reused_total{instance="0"}`,
		`scand_calibrations_run_total{instance="1"}`,
		`scand_sessions_quarantined_total{instance="0"}`,
		`scand_sessions_evicted_total{instance="0"}`,
		`scand_faults_injected_total{instance="1"}`,
		`scand_job_latency_seconds_count{instance=`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("cluster /metrics missing %q\n%s", want, out)
		}
	}
}

// The cluster behind the HTTP handler: same API surface as a single
// scheduler (submit → poll → done), with /stats serving the ClusterStats
// rollup (per-instance rows included) and /metrics the instance-labeled
// exposition. Satellite contract: cache hit/miss surfaces in both.
func TestHTTPClusterEndpoints(t *testing.T) {
	c := NewCluster(ClusterConfig{Instances: 3, Config: Config{Executors: 1}})
	srv := httptest.NewServer(NewClusterHandler(c))
	defer srv.Close()
	defer c.Drain()

	var ids []int
	for seed := uint64(1); seed <= 4; seed++ {
		// Two submissions per seed: the repeat must hit the owner's cache.
		for round := 0; round < 2; round++ {
			resp, body := postJSON(t, srv.URL+"/jobs", JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: seed})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: status %d", resp.StatusCode)
			}
			ids = append(ids, int(body["id"].(float64)))
		}
	}
	for _, id := range ids {
		r, err := http.Get(fmt.Sprintf("%s/jobs/%d?wait=30s", srv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var job map[string]any
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if job["status"] != string(StatusDone) {
			t.Fatalf("job %d not done over HTTP: %+v", id, job)
		}
	}

	r, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ClusterStats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Submitted != len(ids) || st.Completed != len(ids) {
		t.Fatalf("cluster /stats: submitted=%d completed=%d, want %d", st.Submitted, st.Completed, len(ids))
	}
	if len(st.Instances) != 3 {
		t.Fatalf("cluster /stats has %d instance rows, want 3", len(st.Instances))
	}
	if st.SessionHits == 0 {
		t.Fatal("cluster /stats reports no session hits after repeat submissions")
	}

	r, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(raw), `scand_session_hits_total{instance="`) {
		t.Fatalf("cluster /metrics lacks instance-labeled session hits:\n%s", raw)
	}
}

// The zipfian victim assignment must be a pure function of the config
// (interleaving-independent by construction) and actually skewed: the
// hottest victim draws a multiple of the coldest's share.
func TestZipfianAssignmentDeterministicAndSkewed(t *testing.T) {
	cfg := LoadConfig{Jobs: 1000, Victims: 8, Seed: 5, Dist: DistZipfian}
	a := victimAssignment(cfg)
	b := victimAssignment(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zipfian assignment differs across calls with one config")
	}
	counts := make([]int, cfg.Victims)
	for _, v := range a {
		if v < 0 || v >= cfg.Victims {
			t.Fatalf("victim index %d out of pool range", v)
		}
		counts[v]++
	}
	if counts[0] < 3*counts[cfg.Victims-1] {
		t.Fatalf("distribution not zipfian: hottest %d vs coldest %d (%v)", counts[0], counts[cfg.Victims-1], counts)
	}
	uni := victimAssignment(LoadConfig{Jobs: 10, Victims: 4, Dist: DistUniform})
	for i, v := range uni {
		if v != i%4 {
			t.Fatalf("uniform assignment[%d] = %d, want %d", i, v, i%4)
		}
	}
}

// Submitting the same spec set concurrently or serially must place every
// job on the same instance — routing is a pure function of the spec, so
// goroutine interleaving can never move a key.
func TestClusterRoutingInterleavingIndependent(t *testing.T) {
	c := NewCluster(ClusterConfig{Instances: 4, Config: Config{Executors: 2, QueueDepth: 128}})
	defer c.Drain()
	specs := make([]JobSpec, 32)
	for i := range specs {
		specs[i] = JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: uint64(1 + i%7)}
	}
	want := make([]int, len(specs))
	for i, spec := range specs {
		inst, err := c.RouteSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = inst
	}
	var wg sync.WaitGroup
	placed := make([]int, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			for {
				j, err := c.Submit(spec)
				if err == nil {
					placed[i] = int(j.ID % 4)
					c.Wait(j)
					return
				}
				if Classify(err) == ClassPermanent {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(i, spec)
	}
	wg.Wait()
	for i := range specs {
		if placed[i] != want[i] {
			t.Fatalf("spec %d placed on instance %d under concurrency, serial routing says %d", i, placed[i], want[i])
		}
	}
}
