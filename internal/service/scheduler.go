package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// Submission errors.
var (
	// ErrQueueFull reports the bounded queue rejecting a job
	// (backpressure: the caller retries or sheds load).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a scheduler that no longer accepts jobs.
	ErrDraining = errors.New("service: scheduler draining")
)

// Config tunes a Scheduler.
type Config struct {
	// Executors is the number of concurrent job executors (goroutines
	// running attacks). 0 means GOMAXPROCS.
	Executors int
	// QueueDepth bounds the submission queue. 0 means 64.
	QueueDepth int
	// ScanWorkers is the per-job scan-engine parallelism
	// (core.Options.Workers): 0 runs each job's sweeps inline on its
	// session machine; >= 1 fans sweep chunks across that many pooled
	// replicas. Results are bit-identical at every setting.
	ScanWorkers int
	// FreshWorkers disables the shared scan pool (every sweep clones fresh
	// replicas). Pooled and fresh results are bit-identical; fresh exists
	// for ablations and the parity suite.
	FreshWorkers bool
	// MaxIdleSessions bounds the session cache (0 means 2×Executors).
	MaxIdleSessions int
	// Store bounds the result store's retention (see StoreConfig): max
	// retained jobs and an optional finished-job TTL, so a long-lived
	// daemon's memory stays bounded while the aggregate stats keep
	// counting.
	Store StoreConfig
	// MaxAttempts caps how many times one job runs before a transient
	// failure becomes final (0 means 3; 1 disables retries). Permanent
	// failures never retry regardless.
	MaxAttempts int
	// RetryBackoff is the first retry's backoff; each further attempt
	// doubles it up to MaxRetryBackoff. 0 means 2ms. Backoffs abort
	// immediately when the scheduler drains.
	RetryBackoff time.Duration
	// JobDeadline bounds one attempt's executor wall-clock: overrunning
	// attempts are *failed* by a watchdog (ErrJobDeadline, transient), the
	// orphaned body self-terminates and its session is quarantined. 0
	// means DefaultJobDeadline; negative disables the watchdog.
	JobDeadline time.Duration
	// ShedWatermark enables admission control: submissions arriving while
	// the queue holds at least this many jobs are shed with ErrOverloaded
	// (HTTP 429 + Retry-After) before the queue is full. 0 disables
	// shedding — the queue's own capacity (ErrQueueFull) is then the only
	// backpressure.
	ShedWatermark int
	// Fault configures deterministic fault injection (zero = disabled, the
	// production state: every hook degenerates to a nil test).
	Fault fault.Config
}

// DefaultJobDeadline is the per-attempt watchdog deadline when
// Config.JobDeadline is 0: generous next to the longest real job (hundreds
// of milliseconds), tight enough that a wedged executor is failed and
// recycled instead of holding its slot forever.
const DefaultJobDeadline = 2 * time.Minute

// MaxRetryBackoff caps the exponential retry backoff.
const MaxRetryBackoff = 250 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ScanWorkers < 0 {
		c.ScanWorkers = runtime.NumCPU()
	}
	if c.MaxIdleSessions <= 0 {
		// Floor of 16: a session is small next to the victims it saves
		// re-booting, and load mixes cycle through a victim pool wider
		// than the executor count.
		c.MaxIdleSessions = 2 * c.Executors
		if c.MaxIdleSessions < 16 {
			c.MaxIdleSessions = 16
		}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.JobDeadline == 0 {
		c.JobDeadline = DefaultJobDeadline
	}
	return c
}

// Scheduler accepts attack jobs on a bounded queue and dispatches them
// onto executor goroutines that share a session cache and one scan-engine
// worker pool. Construct with New, submit with Submit, stop with Drain.
type Scheduler struct {
	cfg   Config
	pool  *core.ScanPool
	cache *sessionCache
	store *Store
	inj   *fault.Injector

	queue  chan *Job
	nextID atomic.Uint64
	// drainCh is closed when Drain starts: in-flight backoffs and injected
	// stalls abandon their waits immediately, so a drain never outlasts a
	// retry schedule.
	drainCh chan struct{}

	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup
}

// New starts a scheduler with cfg.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:     cfg,
		cache:   newSessionCache(cfg.MaxIdleSessions),
		store:   NewBoundedStore(cfg.Store),
		inj:     fault.New(cfg.Fault),
		queue:   make(chan *Job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
	}
	if !cfg.FreshWorkers {
		s.pool = core.NewScanPool()
	}
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Store exposes the scheduler's result store (status, results, streams,
// aggregate stats).
func (s *Scheduler) Store() *Store { return s.store }

// Config returns the scheduler's normalized configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// scanOptions returns the per-job core options the scheduler's
// configuration implies.
func (s *Scheduler) scanOptions() core.Options {
	return core.Options{Workers: s.cfg.ScanWorkers, Pool: s.pool}
}

// Submit validates and enqueues a job. It never blocks: a full queue
// returns ErrQueueFull, a draining scheduler ErrDraining.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:        s.nextID.Add(1),
		Spec:      norm,
		Status:    StatusQueued,
		Submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.store.reject()
		return nil, ErrDraining
	}
	if w := s.cfg.ShedWatermark; w > 0 && len(s.queue) >= w {
		// Admission control: shed before the queue is full, keeping
		// headroom so work already admitted keeps flowing while clients
		// back off (HTTP maps this to 429 + Retry-After).
		s.mu.Unlock()
		s.store.shed()
		return nil, ErrOverloaded
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.store.reject()
		return nil, ErrQueueFull
	}
	// Registered after a successful enqueue, inside the lock so Drain
	// cannot close the queue between the reservation and the send.
	s.store.add(j)
	s.mu.Unlock()
	return j, nil
}

// Wait blocks until the job finishes and returns its result.
func (s *Scheduler) Wait(j *Job) (*Result, error) {
	<-j.Done()
	snap, _ := s.store.Snapshot(j.ID)
	if snap.Status == StatusFailed {
		return nil, fmt.Errorf("service: job %d: %s", j.ID, snap.Err)
	}
	return snap.Result, nil
}

// WaitCtx is Wait bounded by a context: it returns the job's result when
// the job finishes first, or the context's error when the deadline or
// cancellation wins — so a client can never hang forever on a job whose
// executor died. The job itself keeps running either way.
func (s *Scheduler) WaitCtx(ctx context.Context, j *Job) (*Result, error) {
	select {
	case <-j.Done():
		return s.Wait(j)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Drain stops accepting new jobs, runs the queue dry and waits for every
// executor to finish — the daemon's graceful-shutdown path. In-flight
// retry backoffs and injected stalls are aborted immediately (their jobs
// fail with their last classified error), so Drain terminates even
// mid-fault-storm. Safe to call more than once.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
		close(s.drainCh)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns the aggregate service metrics.
func (s *Scheduler) Stats() Stats {
	st := s.store.Stats()
	st.Sessions, st.CalibrationsReused, st.Quarantined = s.cache.stats()
	if s.pool != nil {
		st.PoolReplicas = s.pool.Replicas()
	}
	st.FaultsInjected = s.inj.TotalFired()
	return st
}

// executor is one job-running goroutine: it pulls jobs off the queue and
// runs each through the retry loop. The attempt bodies carry their own
// panic isolation, so an executor survives anything a job throws.
func (s *Scheduler) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job to a terminal state: attempts run under the
// watchdog, transient failures retry with capped exponential backoff up to
// Config.MaxAttempts, permanent failures (and drains) are final on sight.
// Every path ends in exactly one store completion — a job never leaks in
// StatusRunning.
func (s *Scheduler) runJob(j *Job) {
	s.store.markRunning(j)
	key := j.Spec.faultKey()
	opt := s.scanOptions()
	if j.Spec.ScanWorkers != nil {
		// Per-job override (validated at submission): parallelism is
		// host-side only, so results stay bit-identical to the
		// scheduler default — only this job's latency changes.
		opt.Workers = *j.Spec.ScanWorkers
	}
	var res *Result
	var err error
	attempt := 0
	for {
		attempt++
		res, err = s.attempt(j, key, attempt, opt)
		if err == nil || Classify(err) == ClassPermanent || attempt >= s.cfg.MaxAttempts {
			break
		}
		s.store.retry()
		if !s.backoff(attempt) {
			// Draining: abandon the retry schedule; the job fails with its
			// last classified error rather than outliving the drain.
			err = fmt.Errorf("service: retries abandoned by drain: %w", err)
			break
		}
	}
	if res != nil && attempt > 1 {
		res.Retries = attempt - 1
	}
	s.store.completeAttempts(j, res, err, attempt)
}

// backoff sleeps the capped exponential backoff before retry `attempt+1`,
// returning false when the drain signal aborted the wait.
func (s *Scheduler) backoff(attempt int) bool {
	d := s.cfg.RetryBackoff << (attempt - 1)
	if d > MaxRetryBackoff || d <= 0 {
		d = MaxRetryBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.drainCh:
		return false
	}
}

// attempt runs one attempt of a job under the deadline watchdog. The body
// runs in its own goroutine; if it overruns the deadline the watchdog
// *fails* the attempt (ErrJobDeadline) and closes the attempt's stop
// channel — injected stalls block on exactly that signal, so the orphaned
// body self-terminates, quarantines its session and exits instead of
// leaking. The done channel is buffered so a late body never blocks on a
// watchdog that already returned.
func (s *Scheduler) attempt(j *Job, key uint64, attempt int, opt core.Options) (*Result, error) {
	env := &attemptEnv{
		plan:     s.inj.Plan(key, attempt),
		stop:     make(chan struct{}),
		drain:    s.drainCh,
		watchdog: s.cfg.JobDeadline > 0,
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			// Backstop isolation: attemptBody recovers panics itself (it
			// owns the session cleanup), so anything arriving here escaped
			// outside a body — still convert it into a failed attempt
			// rather than a dead executor.
			if r := recover(); r != nil {
				done <- outcome{nil, fmt.Errorf("%w: %v", ErrPanicked, r)}
			}
		}()
		res, err := s.attemptBody(j, opt, env)
		done <- outcome{res, err}
	}()
	if !env.watchdog {
		out := <-done
		return out.res, out.err
	}
	watchdog := time.NewTimer(s.cfg.JobDeadline)
	defer watchdog.Stop()
	select {
	case out := <-done:
		return out.res, out.err
	case <-watchdog.C:
		close(env.stop)
		return nil, fmt.Errorf("%w (after %v, attempt %d)", ErrJobDeadline, s.cfg.JobDeadline, attempt)
	}
}

// attemptBody is the guarded body of one attempt: session binding, fault
// sites, the attack itself, and — in one deferred path — panic recovery,
// quarantine and session release. The deferred cleanup is what makes the
// guarantees compose: a panic or a corrupt session quarantines (the
// session is dropped at release, never re-adopted; the next attempt's
// fresh boot rebuilds it bit-identically via the calibration cache), and a
// body orphaned by the watchdog detects the closed stop channel and
// quarantines too, since whatever state it reached belongs to an attempt
// that already failed.
func (s *Scheduler) attemptBody(j *Job, opt core.Options, env *attemptEnv) (res *Result, err error) {
	var sess *session
	if j.Spec.Kind != KindCloud {
		var reused bool
		sess, reused, err = s.cache.acquireHook(j.Spec, env.hook())
		if err != nil {
			return nil, err
		}
		s.store.setProvenance(j, reused, sess.cachedCal)
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrPanicked, r)
			s.cache.quarantine(sess)
		} else if err != nil && errors.Is(err, ErrSessionCorrupt) {
			s.cache.quarantine(sess)
		} else {
			select {
			case <-env.stop:
				// The watchdog already failed this attempt: the session's
				// state is that of an abandoned job, not a finished one.
				s.cache.quarantine(sess)
			default:
			}
		}
		s.cache.release(sess)
	}()
	if f := env.fire(fault.Panic); f != nil {
		panic(f)
	}
	if f := env.fire(fault.Stall); f != nil {
		if env.watchdog {
			// Wedge until the watchdog deadline fails the attempt (or the
			// drain lets everything go): this is the "fails, not leaks"
			// contract under test — the body terminates either way.
			select {
			case <-env.stop:
			case <-env.drain:
			}
		}
		return nil, f
	}
	return executeAttempt(sess, j.Spec, opt, env)
}
