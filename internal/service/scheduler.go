package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Submission errors.
var (
	// ErrQueueFull reports the bounded queue rejecting a job
	// (backpressure: the caller retries or sheds load).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a scheduler that no longer accepts jobs.
	ErrDraining = errors.New("service: scheduler draining")
)

// Config tunes a Scheduler.
type Config struct {
	// Executors is the number of concurrent job executors (goroutines
	// running attacks). 0 means GOMAXPROCS.
	Executors int
	// QueueDepth bounds the submission queue. 0 means 64.
	QueueDepth int
	// ScanWorkers is the per-job scan-engine parallelism
	// (core.Options.Workers): 0 runs each job's sweeps inline on its
	// session machine; >= 1 fans sweep chunks across that many pooled
	// replicas. Results are bit-identical at every setting.
	ScanWorkers int
	// FreshWorkers disables the shared scan pool (every sweep clones fresh
	// replicas). Pooled and fresh results are bit-identical; fresh exists
	// for ablations and the parity suite.
	FreshWorkers bool
	// MaxIdleSessions bounds the session cache (0 means 2×Executors).
	MaxIdleSessions int
	// Store bounds the result store's retention (see StoreConfig): max
	// retained jobs and an optional finished-job TTL, so a long-lived
	// daemon's memory stays bounded while the aggregate stats keep
	// counting.
	Store StoreConfig
}

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ScanWorkers < 0 {
		c.ScanWorkers = runtime.NumCPU()
	}
	if c.MaxIdleSessions <= 0 {
		// Floor of 16: a session is small next to the victims it saves
		// re-booting, and load mixes cycle through a victim pool wider
		// than the executor count.
		c.MaxIdleSessions = 2 * c.Executors
		if c.MaxIdleSessions < 16 {
			c.MaxIdleSessions = 16
		}
	}
	return c
}

// Scheduler accepts attack jobs on a bounded queue and dispatches them
// onto executor goroutines that share a session cache and one scan-engine
// worker pool. Construct with New, submit with Submit, stop with Drain.
type Scheduler struct {
	cfg   Config
	pool  *core.ScanPool
	cache *sessionCache
	store *Store

	queue  chan *Job
	nextID atomic.Uint64

	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup
}

// New starts a scheduler with cfg.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:   cfg,
		cache: newSessionCache(cfg.MaxIdleSessions),
		store: NewBoundedStore(cfg.Store),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	if !cfg.FreshWorkers {
		s.pool = core.NewScanPool()
	}
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Store exposes the scheduler's result store (status, results, streams,
// aggregate stats).
func (s *Scheduler) Store() *Store { return s.store }

// Config returns the scheduler's normalized configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// scanOptions returns the per-job core options the scheduler's
// configuration implies.
func (s *Scheduler) scanOptions() core.Options {
	return core.Options{Workers: s.cfg.ScanWorkers, Pool: s.pool}
}

// Submit validates and enqueues a job. It never blocks: a full queue
// returns ErrQueueFull, a draining scheduler ErrDraining.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:        s.nextID.Add(1),
		Spec:      norm,
		Status:    StatusQueued,
		Submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.store.reject()
		return nil, ErrDraining
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.store.reject()
		return nil, ErrQueueFull
	}
	// Registered after a successful enqueue, inside the lock so Drain
	// cannot close the queue between the reservation and the send.
	s.store.add(j)
	s.mu.Unlock()
	return j, nil
}

// Wait blocks until the job finishes and returns its result.
func (s *Scheduler) Wait(j *Job) (*Result, error) {
	<-j.Done()
	snap, _ := s.store.Snapshot(j.ID)
	if snap.Status == StatusFailed {
		return nil, fmt.Errorf("service: job %d: %s", j.ID, snap.Err)
	}
	return snap.Result, nil
}

// Drain stops accepting new jobs, runs the queue dry and waits for every
// executor to finish — the daemon's graceful-shutdown path. Safe to call
// more than once.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns the aggregate service metrics.
func (s *Scheduler) Stats() Stats {
	st := s.store.Stats()
	st.Sessions, st.CalibrationsReused = s.cache.stats()
	if s.pool != nil {
		st.PoolReplicas = s.pool.Replicas()
	}
	return st
}

// executor is one job-running goroutine: it pulls jobs off the queue,
// binds a session (except for cloud jobs) and executes the attack.
func (s *Scheduler) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.store.markRunning(j)
		var sess *session
		var reused bool
		var err error
		if j.Spec.Kind != KindCloud {
			sess, reused, err = s.cache.acquire(j.Spec)
		}
		if err != nil {
			s.store.complete(j, nil, err)
			continue
		}
		if sess != nil {
			s.store.setProvenance(j, reused, sess.cachedCal)
		}
		opt := s.scanOptions()
		if j.Spec.ScanWorkers != nil {
			// Per-job override (validated at submission): parallelism is
			// host-side only, so results stay bit-identical to the
			// scheduler default — only this job's latency changes.
			opt.Workers = *j.Spec.ScanWorkers
		}
		res, err := execute(sess, j.Spec, opt)
		s.cache.release(sess)
		s.store.complete(j, res, err)
	}
}
