package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Submission errors.
var (
	// ErrQueueFull reports the bounded queue rejecting a job
	// (backpressure: the caller retries or sheds load).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a scheduler that no longer accepts jobs.
	ErrDraining = errors.New("service: scheduler draining")
)

// Config tunes a Scheduler.
type Config struct {
	// Executors is the number of concurrent job executors (goroutines
	// running attacks). 0 means GOMAXPROCS.
	Executors int
	// QueueDepth bounds the submission queue. 0 means 64.
	QueueDepth int
	// ScanWorkers is the per-job scan-engine parallelism
	// (core.Options.Workers): 0 runs each job's sweeps inline on its
	// session machine; >= 1 fans sweep chunks across that many pooled
	// replicas. Results are bit-identical at every setting.
	ScanWorkers int
	// FreshWorkers disables the shared scan pool (every sweep clones fresh
	// replicas). Pooled and fresh results are bit-identical; fresh exists
	// for ablations and the parity suite.
	FreshWorkers bool
	// MaxIdleSessions bounds the session cache (0 means 2×Executors).
	MaxIdleSessions int
	// Store bounds the result store's retention (see StoreConfig): max
	// retained jobs and an optional finished-job TTL, so a long-lived
	// daemon's memory stays bounded while the aggregate stats keep
	// counting.
	Store StoreConfig
	// MaxAttempts caps how many times one job runs before a transient
	// failure becomes final (0 means 3; 1 disables retries). Permanent
	// failures never retry regardless.
	MaxAttempts int
	// RetryBackoff is the first retry's backoff; each further attempt
	// doubles it up to MaxRetryBackoff. 0 means 2ms. Backoffs abort
	// immediately when the scheduler drains.
	RetryBackoff time.Duration
	// JobDeadline bounds one attempt's executor wall-clock: overrunning
	// attempts are *failed* by a watchdog (ErrJobDeadline, transient), the
	// orphaned body self-terminates and its session is quarantined. 0
	// means DefaultJobDeadline; negative disables the watchdog.
	JobDeadline time.Duration
	// ShedWatermark enables admission control: submissions arriving while
	// the queue holds at least this many jobs are shed with ErrOverloaded
	// (HTTP 429 + Retry-After) before the queue is full. 0 disables
	// shedding — the queue's own capacity (ErrQueueFull) is then the only
	// backpressure.
	ShedWatermark int
	// Fault configures deterministic fault injection (zero = disabled, the
	// production state: every hook degenerates to a nil test).
	Fault fault.Config
	// TraceSample enables per-job lifecycle tracing: every job whose ID is
	// a multiple of TraceSample gets a span tree (1 = every job). 0
	// disables tracing — the recorder is nil and the whole instrumented
	// path degenerates to one nil test per stage, the injector idiom.
	// Sampling on the job ID keeps the traced set deterministic.
	TraceSample int
	// TraceBuffer bounds the retained-trace ring (0 = obs.DefaultTraceBuffer,
	// 256). Oldest traces are evicted first.
	TraceBuffer int

	// idOffset/idStride shape the scheduler's job-ID sequence: IDs are
	// idOffset + idStride*k for k = 1, 2, ... (zero values mean offset 0,
	// stride 1 — the plain 1, 2, 3 sequence). Cluster mode gives instance i
	// of N the sequence (offset=i, stride=N), so IDs are unique across the
	// whole cluster and the owning instance is recoverable as id mod N —
	// the router's O(1) id→instance lookup. Package-internal: only
	// NewCluster sets them.
	idOffset uint64
	idStride uint64
}

// DefaultJobDeadline is the per-attempt watchdog deadline when
// Config.JobDeadline is 0: generous next to the longest real job (hundreds
// of milliseconds), tight enough that a wedged executor is failed and
// recycled instead of holding its slot forever.
const DefaultJobDeadline = 2 * time.Minute

// MaxRetryBackoff caps the exponential retry backoff.
const MaxRetryBackoff = 250 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ScanWorkers < 0 {
		c.ScanWorkers = runtime.NumCPU()
	}
	if c.MaxIdleSessions <= 0 {
		// Floor of 16: a session is small next to the victims it saves
		// re-booting, and load mixes cycle through a victim pool wider
		// than the executor count.
		c.MaxIdleSessions = 2 * c.Executors
		if c.MaxIdleSessions < 16 {
			c.MaxIdleSessions = 16
		}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.JobDeadline == 0 {
		c.JobDeadline = DefaultJobDeadline
	}
	if c.idStride == 0 {
		c.idStride = 1
	}
	return c
}

// Scheduler accepts attack jobs on a bounded queue and dispatches them
// onto executor goroutines that share a session cache and one scan-engine
// worker pool. Construct with New, submit with Submit, stop with Drain.
type Scheduler struct {
	cfg   Config
	pool  *core.ScanPool
	cache *sessionCache
	store *Store
	inj   *fault.Injector
	// rec samples per-job lifecycle traces (nil when TraceSample is 0 —
	// the disabled state); met is the always-on metrics plane.
	rec *obs.Recorder
	met *metricsPlane

	queue  chan *Job
	nextID atomic.Uint64
	// drainCh is closed when Drain starts: in-flight backoffs and injected
	// stalls abandon their waits immediately, so a drain never outlasts a
	// retry schedule.
	drainCh chan struct{}

	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup
}

// New starts a scheduler with cfg.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:     cfg,
		cache:   newSessionCache(cfg.MaxIdleSessions),
		store:   NewBoundedStore(cfg.Store),
		inj:     fault.New(cfg.Fault),
		rec:     obs.NewRecorder(cfg.TraceSample, cfg.TraceBuffer),
		queue:   make(chan *Job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
	}
	if !cfg.FreshWorkers {
		s.pool = core.NewScanPool()
	}
	// The metrics plane registers scrape-time views over the subsystems
	// built above, so it must come last — and before the executors start,
	// so no job ever runs without its stage histograms.
	s.met = newMetricsPlane(s)
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Store exposes the scheduler's result store (status, results, streams,
// aggregate stats).
func (s *Scheduler) Store() *Store { return s.store }

// Config returns the scheduler's normalized configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Metrics exposes the scheduler's metric registry (the GET /metrics
// surface; also scrapeable in-process).
func (s *Scheduler) Metrics() *obs.Registry { return s.met.reg }

// Trace returns a sampled job's lifecycle trace, if the recorder still
// retains it (false when tracing is off, the job was unsampled, or the
// ring evicted it).
func (s *Scheduler) Trace(id uint64) (*obs.Trace, bool) { return s.rec.Get(id) }

// scanOptions returns the per-job core options the scheduler's
// configuration implies.
func (s *Scheduler) scanOptions() core.Options {
	return core.Options{Workers: s.cfg.ScanWorkers, Pool: s.pool}
}

// Submit validates and enqueues a job. It never blocks: a full queue
// returns ErrQueueFull, a draining scheduler ErrDraining.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:        s.cfg.idOffset + s.cfg.idStride*s.nextID.Add(1),
		Spec:      norm,
		Status:    StatusQueued,
		Submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if s.rec != nil {
		// Trace and queue span must exist before the job can reach an
		// executor (the channel send publishes them); the attrs are pure
		// functions of the spec, so sampled traces are deterministic.
		j.trace = s.rec.Start(j.ID, traceAttrs(norm)...)
		j.qspan = j.trace.Root().Child("queue")
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.store.reject()
		sealRejected(j, "draining")
		return nil, ErrDraining
	}
	if w := s.cfg.ShedWatermark; w > 0 && len(s.queue) >= w {
		// Admission control: shed before the queue is full, keeping
		// headroom so work already admitted keeps flowing while clients
		// back off (HTTP maps this to 429 + Retry-After).
		s.mu.Unlock()
		s.store.shed()
		sealRejected(j, "shed")
		return nil, ErrOverloaded
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.store.reject()
		sealRejected(j, "queue-full")
		return nil, ErrQueueFull
	}
	// Registered after a successful enqueue, inside the lock so Drain
	// cannot close the queue between the reservation and the send.
	s.store.add(j)
	s.mu.Unlock()
	return j, nil
}

// Wait blocks until the job finishes and returns its result.
func (s *Scheduler) Wait(j *Job) (*Result, error) {
	<-j.Done()
	snap, _ := s.store.Snapshot(j.ID)
	if snap.Status == StatusFailed {
		return nil, fmt.Errorf("service: job %d: %s", j.ID, snap.Err)
	}
	return snap.Result, nil
}

// WaitCtx is Wait bounded by a context: it returns the job's result when
// the job finishes first, or the context's error when the deadline or
// cancellation wins — so a client can never hang forever on a job whose
// executor died. The job itself keeps running either way.
func (s *Scheduler) WaitCtx(ctx context.Context, j *Job) (*Result, error) {
	select {
	case <-j.Done():
		return s.Wait(j)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Drain stops accepting new jobs, runs the queue dry and waits for every
// executor to finish — the daemon's graceful-shutdown path. In-flight
// retry backoffs and injected stalls are aborted immediately (their jobs
// fail with their last classified error), so Drain terminates even
// mid-fault-storm. Safe to call more than once.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
		close(s.drainCh)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns the aggregate service metrics.
func (s *Scheduler) Stats() Stats {
	st := s.store.Stats()
	cs := s.cache.snapshot()
	st.Sessions = cs.SessionMisses
	st.SessionHits = cs.SessionHits
	st.CalibrationsReused = cs.CalibrationHits
	st.Quarantined = cs.Quarantined
	st.SessionsEvicted = cs.Evicted
	if s.pool != nil {
		st.PoolReplicas = s.pool.Replicas()
	}
	st.FaultsInjected = s.inj.TotalFired()
	return st
}

// LoadStats returns the aggregate the load generator reports from (the
// Runner surface; the cluster's version merges across instances).
func (s *Scheduler) LoadStats() Stats { return s.Stats() }

// statsPayload serves Stats on GET /stats.
func (s *Scheduler) statsPayload() any { return s.Stats() }

// JobSnapshot returns a consistent copy of a retained job's public state.
func (s *Scheduler) JobSnapshot(id uint64) (Job, bool) { return s.store.Snapshot(id) }

// JobDone returns a retained job's completion channel (already closed if
// the job has finished).
func (s *Scheduler) JobDone(id uint64) (<-chan struct{}, bool) {
	j, ok := s.store.Get(id)
	if !ok {
		return nil, false
	}
	return j.Done(), true
}

// KindLatencies returns the per-kind end-to-end latency breakdown (the
// Runner surface RunLoad reports from).
func (s *Scheduler) KindLatencies() map[Kind]KindLatency { return s.store.KindLatencies() }

// QueueDepth reports how many accepted jobs currently wait on the bounded
// queue (the per-instance load signal the cluster rollup exports).
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// executor is one job-running goroutine: it pulls jobs off the queue and
// runs each through the retry loop. The attempt bodies carry their own
// panic isolation, so an executor survives anything a job throws.
func (s *Scheduler) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job to a terminal state: attempts run under the
// watchdog, transient failures retry with capped exponential backoff up to
// Config.MaxAttempts, permanent failures (and drains) are final on sight.
// Every path ends in exactly one store completion — a job never leaks in
// StatusRunning. The trace (when sampled) is sealed *before* the store
// completion closes the job's done channel, so a reader woken by Done or
// the HTTP long-poll never sees a half-built span tree.
func (s *Scheduler) runJob(j *Job) {
	s.store.markRunning(j)
	j.qspan.End()
	if wait := j.Started.Sub(j.Submitted); wait > 0 {
		s.met.queueWait.Observe(uint64(wait))
	}
	root := j.trace.Root()
	key := j.Spec.faultKey()
	opt := s.scanOptions()
	if j.Spec.ScanWorkers != nil {
		// Per-job override (validated at submission): parallelism is
		// host-side only, so results stay bit-identical to the
		// scheduler default — only this job's latency changes.
		opt.Workers = *j.Spec.ScanWorkers
	}
	var res *Result
	var err error
	attempt := 0
	for {
		attempt++
		asp := root.Child("attempt")
		asp.Annotate("attempt", strconv.Itoa(attempt))
		res, err = s.attempt(j, key, attempt, opt, asp)
		if err != nil {
			annotateFailure(asp, err)
		}
		asp.End()
		if err == nil || Classify(err) == ClassPermanent || attempt >= s.cfg.MaxAttempts {
			break
		}
		s.store.retry()
		bsp := root.Child("backoff")
		if !s.backoff(attempt) {
			// Draining: abandon the retry schedule; the job fails with its
			// last classified error rather than outliving the drain.
			bsp.Annotate("aborted", "drain")
			bsp.End()
			err = fmt.Errorf("service: retries abandoned by drain: %w", err)
			break
		}
		bsp.End()
	}
	if res != nil && attempt > 1 {
		res.Retries = attempt - 1
	}
	if root != nil {
		if err != nil {
			root.Annotate("status", string(StatusFailed))
			root.Annotate("class", string(Classify(err)))
		} else {
			root.Annotate("status", string(StatusDone))
			root.SetSim(res.TotalSimSec)
		}
		root.Annotate("attempts", strconv.Itoa(attempt))
		root.End()
	}
	s.store.completeAttempts(j, res, err, attempt)
}

// traceAttrs builds the root span's annotations from the normalized spec:
// only spec-derived (deterministic) values, never host state.
func traceAttrs(spec JobSpec) []obs.Attr {
	attrs := []obs.Attr{
		obs.A("kind", string(spec.Kind)),
		obs.A("seed", strconv.FormatUint(spec.Seed, 10)),
	}
	if spec.CPU != "" {
		attrs = append(attrs, obs.A("cpu", spec.CPU))
	}
	if spec.Defense != "" {
		attrs = append(attrs, obs.A("defense", spec.Defense))
	}
	if spec.Provider != "" {
		attrs = append(attrs, obs.A("provider", spec.Provider))
	}
	return attrs
}

// sealRejected closes a rejected submission's trace so the ring never
// retains an eternally open span tree. Nil-safe (no-op when unsampled).
func sealRejected(j *Job, reason string) {
	j.qspan.End()
	root := j.trace.Root()
	root.Annotate("status", "rejected")
	root.Annotate("reason", reason)
	root.End()
}

// annotateFailure records a failed attempt's deterministic failure facts:
// the error string (injected faults stringify as pure functions of their
// site/key/attempt), the retry class, and the fault site when the chain
// carries an injected fault.
func annotateFailure(sp *obs.Span, err error) {
	if sp == nil {
		return
	}
	sp.Annotate("error", err.Error())
	sp.Annotate("class", string(Classify(err)))
	var f *fault.Fault
	if errors.As(err, &f) {
		sp.Annotate("fault", f.Site.String())
	}
}

// backoff sleeps the capped exponential backoff before retry `attempt+1`,
// returning false when the drain signal aborted the wait.
func (s *Scheduler) backoff(attempt int) bool {
	d := s.cfg.RetryBackoff << (attempt - 1)
	if d > MaxRetryBackoff || d <= 0 {
		d = MaxRetryBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.drainCh:
		return false
	}
}

// attempt runs one attempt of a job under the deadline watchdog. The body
// runs in its own goroutine; if it overruns the deadline the watchdog
// *fails* the attempt (ErrJobDeadline) and closes the attempt's stop
// channel — injected stalls block on exactly that signal, so the orphaned
// body self-terminates, quarantines its session and exits instead of
// leaking. The done channel is buffered so a late body never blocks on a
// watchdog that already returned.
func (s *Scheduler) attempt(j *Job, key uint64, attempt int, opt core.Options, sp *obs.Span) (*Result, error) {
	env := &attemptEnv{
		plan:     s.inj.Plan(key, attempt),
		stop:     make(chan struct{}),
		drain:    s.drainCh,
		watchdog: s.cfg.JobDeadline > 0,
		span:     sp,
		met:      s.met,
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			// Backstop isolation: attemptBody recovers panics itself (it
			// owns the session cleanup), so anything arriving here escaped
			// outside a body — still convert it into a failed attempt
			// rather than a dead executor.
			if r := recover(); r != nil {
				done <- outcome{nil, fmt.Errorf("%w: %v", ErrPanicked, r)}
			}
		}()
		res, err := s.attemptBody(j, opt, env)
		done <- outcome{res, err}
	}()
	if !env.watchdog {
		out := <-done
		return out.res, out.err
	}
	watchdog := time.NewTimer(s.cfg.JobDeadline)
	defer watchdog.Stop()
	select {
	case out := <-done:
		return out.res, out.err
	case <-watchdog.C:
		close(env.stop)
		sp.Annotate("watchdog", "fired")
		return nil, fmt.Errorf("%w (after %v, attempt %d)", ErrJobDeadline, s.cfg.JobDeadline, attempt)
	}
}

// attemptBody is the guarded body of one attempt: session binding, fault
// sites, the attack itself, and — in one deferred path — panic recovery,
// quarantine and session release. The deferred cleanup is what makes the
// guarantees compose: a panic or a corrupt session quarantines (the
// session is dropped at release, never re-adopted; the next attempt's
// fresh boot rebuilds it bit-identically via the calibration cache), and a
// body orphaned by the watchdog detects the closed stop channel and
// quarantines too, since whatever state it reached belongs to an attempt
// that already failed.
func (s *Scheduler) attemptBody(j *Job, opt core.Options, env *attemptEnv) (res *Result, err error) {
	var sess *session
	if j.Spec.Kind != KindCloud {
		acq := env.span.Child("acquire")
		t0 := time.Now()
		var reused bool
		sess, reused, err = s.cache.acquireHook(j.Spec, env.hook())
		s.met.acquire.Observe(uint64(time.Since(t0)))
		if err != nil {
			annotateFailure(acq, err)
			acq.End()
			return nil, err
		}
		if reused {
			acq.Annotate("session", "reused")
		} else {
			acq.Annotate("session", "built")
			if sess.cachedCal {
				acq.Annotate("calibration", "replayed")
			} else {
				acq.Annotate("calibration", "calibrated")
			}
		}
		acq.End()
		s.store.setProvenance(j, reused, sess.cachedCal)
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrPanicked, r)
			if sess != nil {
				env.span.Annotate("quarantine", "panic")
			}
			s.cache.quarantine(sess)
		} else if err != nil && errors.Is(err, ErrSessionCorrupt) {
			env.span.Annotate("quarantine", "corrupt")
			s.cache.quarantine(sess)
		} else {
			select {
			case <-env.stop:
				// The watchdog already failed this attempt: the session's
				// state is that of an abandoned job, not a finished one.
				if sess != nil {
					env.span.Annotate("quarantine", "abandoned")
				}
				s.cache.quarantine(sess)
			default:
			}
		}
		s.cache.release(sess)
	}()
	if f := env.fire(fault.Panic); f != nil {
		panic(f)
	}
	if f := env.fire(fault.Stall); f != nil {
		if env.watchdog {
			// Wedge until the watchdog deadline fails the attempt (or the
			// drain lets everything go): this is the "fails, not leaks"
			// contract under test — the body terminates either way.
			select {
			case <-env.stop:
			case <-env.drain:
			}
		}
		return nil, f
	}
	return executeAttempt(sess, j.Spec, opt, env)
}
