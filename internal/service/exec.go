package service

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/fault"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

// executeAttempt runs one fault-scoped attempt: the attempt's machine hook
// is installed on the session machine for the duration (restore and probe
// draws fire through it) and cleared before the session goes back to the
// cache, so parked sessions are always hook-free. Cloud jobs boot inside
// core.CloudBreak on a machine the service never sees, so their boot and
// probe draws fire from the plan directly, here.
func executeAttempt(sess *session, spec JobSpec, opt core.Options, env *attemptEnv) (*Result, error) {
	if sess != nil {
		if hook := env.hook(); hook != nil {
			sess.m.FaultHook = hook
			defer func() { sess.m.FaultHook = nil }()
		}
	} else if spec.Kind == KindCloud {
		if f := env.fire(fault.Boot); f != nil {
			return nil, f
		}
		if f := env.fire(fault.Probe); f != nil {
			return nil, f
		}
	}
	return executeTraced(sess, spec, opt, env)
}

// executeTraced is execute with the attempt's restore/execute child spans
// and stage metrics threaded around the same two phases execute runs.
// Behaviour (restore-fault consumption included) is identical to execute —
// the instrumentation is strictly additive, which is what keeps parity
// suites calling execute directly valid.
func executeTraced(sess *session, spec JobSpec, opt core.Options, env *attemptEnv) (*Result, error) {
	if spec.Kind == KindCloud {
		esp := env.span.Child("execute")
		t0 := time.Now()
		res, err := executeCloud(spec, opt)
		env.met.execute.Observe(uint64(time.Since(t0)))
		if res != nil {
			esp.SetSim(res.TotalSimSec)
		}
		esp.End()
		return res, err
	}
	rsp := env.span.Child("restore")
	t0 := time.Now()
	err := restoreSession(sess)
	env.met.restore.Observe(uint64(time.Since(t0)))
	rsp.End()
	if err != nil {
		return nil, err
	}
	esp := env.span.Child("execute")
	t0 = time.Now()
	res, err := executeKind(sess, spec, opt)
	env.met.execute.Observe(uint64(time.Since(t0)))
	if res != nil {
		esp.SetSim(res.TotalSimSec)
	}
	esp.End()
	return res, err
}

// execute runs one job on its session (nil for cloud jobs, which boot
// their victim inside core.CloudBreak) with the scheduler's scan options.
// Before the attack the session is rewound to its post-calibration
// checkpoint, so the job observes the exact machine state a fresh
// boot-and-calibrate would produce regardless of what ran on the session
// before — the determinism contract the parity suite enforces. A failed
// rewind means the session no longer reproduces its checkpoint; it is
// reported as ErrSessionCorrupt, which quarantines the session upstream.
func execute(sess *session, spec JobSpec, opt core.Options) (*Result, error) {
	if spec.Kind == KindCloud {
		return executeCloud(spec, opt)
	}
	if err := restoreSession(sess); err != nil {
		return nil, err
	}
	return executeKind(sess, spec, opt)
}

// restoreSession rewinds the session machine to its post-calibration
// checkpoint (the restore phase of every non-cloud job).
func restoreSession(sess *session) error {
	if err := sess.p.Restore(sess.state); err != nil {
		return fmt.Errorf("%w: %w", ErrSessionCorrupt, err)
	}
	return nil
}

// executeKind dispatches one restored session to its attack body.
func executeKind(sess *session, spec JobSpec, opt core.Options) (*Result, error) {
	p := sess.p
	p.Opt.Workers = opt.Workers
	p.Opt.Pool = opt.Pool
	preset := p.M.Preset

	switch spec.Kind {
	case KindKernelBase:
		res, err := core.KernelBase(p)
		if err != nil {
			return nil, err
		}
		return &Result{
			Kind:        spec.Kind,
			Correct:     res.Base == sess.kernel.Base,
			Base:        uint64(res.Base),
			ProbeSimSec: res.ProbeSeconds(preset),
			TotalSimSec: res.TotalSeconds(preset),
		}, nil

	case KindKPTI:
		res, err := core.KPTIBreak(p, spec.Trampoline)
		if err != nil {
			return nil, err
		}
		return &Result{
			Kind:        spec.Kind,
			Correct:     res.Base == sess.kernel.Base,
			Base:        uint64(res.Base),
			ProbeSimSec: preset.CyclesToSeconds(res.ProbeCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}, nil

	case KindModules:
		if err := p.M.Fire("probe"); err != nil {
			return nil, err
		}
		table := core.SizeTable(sess.kernel.ProcModules())
		res := core.Modules(p, table)
		score := core.ScoreModules(res, sess.kernel.Modules, table)
		regions := make([]Region, len(res.Regions))
		for i, r := range res.Regions {
			regions[i] = Region{
				Start: uint64(r.Base),
				End:   uint64(r.End()),
				Class: strings.Join(r.Names, "|"),
			}
		}
		return &Result{
			Kind:        spec.Kind,
			Correct:     score.DetectionAccuracy() >= 0.99,
			Regions:     regions,
			Accuracy:    score.DetectionAccuracy(),
			ProbeSimSec: preset.CyclesToSeconds(res.ProbeCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}, nil

	case KindWindows:
		res, err := core.WindowsKernel(p, winkernel.ImageSlots)
		if err != nil {
			return nil, err
		}
		return &Result{
			Kind:        spec.Kind,
			Correct:     res.RegionBase == sess.win.Base,
			Base:        uint64(res.RegionBase),
			RunSlots:    res.RunSlots,
			ProbeSimSec: preset.CyclesToSeconds(res.ProbeCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}, nil

	case KindBehaviorSpy:
		t0 := p.M.RDTSC()
		winStart := sess.nextT0
		winEnd := winStart + spec.DurationSec
		traces, err := sess.spy.RunWindow(sess.drv, winStart, winEnd)
		if err != nil {
			return nil, err
		}
		probed := p.M.RDTSC() - t0
		acc := make(map[string]float64, len(traces))
		mean := 0.0
		for i, tr := range traces {
			a := tr.Accuracy(sess.truth[i])
			acc[tr.Module] = a
			mean += a
		}
		if len(traces) > 0 {
			mean /= float64(len(traces))
		}
		// Advance the session's timeline and carry the machine state to the
		// next job via a fresh snapshot — the stateful half of the session
		// contract.
		sess.nextT0 = winEnd
		sess.state = p.Checkpoint()
		return &Result{
			Kind:           spec.Kind,
			Correct:        mean >= 0.9,
			Accuracy:       mean,
			TargetAccuracy: acc,
			WindowStartSec: winStart,
			WindowEndSec:   winEnd,
			ProbeSimSec:    preset.CyclesToSeconds(probed),
			TotalSimSec:    preset.CyclesToSeconds(probed),
		}, nil

	case KindAppFingerprint:
		t0 := p.M.RDTSC()
		winStart := sess.nextT0
		winEnd := winStart + float64(spec.Ticks)*spec.TickSec
		got, err := sess.fp.ClassifyFrom(sess.drv, winStart)
		app := got.Name
		if err != nil {
			// An unmatched active set is an attack outcome, not an executor
			// failure: report it as an incorrect classification.
			app = ""
		}
		probed := p.M.RDTSC() - t0
		sess.nextT0 = winEnd
		sess.state = p.Checkpoint()
		return &Result{
			Kind:           spec.Kind,
			Correct:        app == spec.App,
			App:            app,
			WindowStartSec: winStart,
			WindowEndSec:   winEnd,
			ProbeSimSec:    preset.CyclesToSeconds(probed),
			TotalSimSec:    preset.CyclesToSeconds(probed),
		}, nil

	case KindDefenseEval:
		return executeDefense(sess, spec)

	case KindUserScan:
		if err := p.M.Fire("probe"); err != nil {
			return nil, err
		}
		start, end := sess.libWindow()
		res := core.UserScan(p, start, end)
		regions := make([]Region, len(res.Regions))
		for i, r := range res.Regions {
			regions[i] = Region{Start: uint64(r.Start), End: uint64(r.End), Class: r.Class.String()}
		}
		found := core.FingerprintLibraries(res.Regions, userspace.StandardLibraries())
		fm := make(map[string]uint64, len(found))
		for name, va := range found {
			fm[name] = uint64(va)
		}
		correct := len(sess.proc.Libs) > 0
		for _, lib := range sess.proc.Libs {
			if fm[lib.Image.Name] != uint64(lib.Base) {
				correct = false
			}
		}
		return &Result{
			Kind:        spec.Kind,
			Correct:     correct,
			Regions:     regions,
			Found:       fm,
			ProbeSimSec: preset.CyclesToSeconds(res.LoadCycles + res.StoreCycles),
			TotalSimSec: preset.CyclesToSeconds(res.TotalCycles),
		}, nil
	}
	return nil, fmt.Errorf("service: unknown job kind %q", spec.Kind)
}

// executeDefense runs one §V countermeasure evaluation on the session's
// defense-configured victim: the session restore already rewound the
// machine to its post-calibration checkpoint (the state a fresh
// defense.Evaluate* boot-and-calibrate produces), so each attack body is
// bit-identical to the direct evaluation at the same seed. Correct means
// the evaluation reproduced the paper's §V finding for that defense.
func executeDefense(sess *session, spec JobSpec) (*Result, error) {
	p := sess.p
	if err := p.M.Fire("probe"); err != nil {
		return nil, err
	}
	preset := p.M.Preset
	t0 := p.M.RDTSC()
	res := &Result{Kind: spec.Kind, Defense: spec.Defense}

	switch spec.Defense {
	case DefenseFLARE:
		out := defense.FlareAttack(p, sess.kernel)
		res.Bypassed = out.Bypassed()
		res.PageSignal = out.PageTableDistinguishes
		res.Base = uint64(out.TLBBaseFound)
		// §V-A: FLARE erases the page-table signal but the TLB attack
		// still recovers the base.
		res.Correct = !out.PageTableDistinguishes && out.Bypassed()

	case DefenseFGKASLR:
		out, err := defense.FGKASLRAttack(p, sess.kernel, spec.Seed, spec.Function)
		if err != nil {
			return nil, err
		}
		res.Bypassed = out.Bypassed()
		res.OffsetStable = out.OffsetStable
		res.Base = uint64(out.TemplateFoundPage)
		// §V-A: the offset moves, yet the template attack still finds it.
		res.Correct = out.Bypassed() && !out.OffsetStable

	case DefenseRerand:
		out, err := defense.RerandAttack(p, sess.kernel, spec.Seed)
		if err != nil {
			return nil, err
		}
		res.StaleHit = out.StaleHit
		res.Base = uint64(out.RecoveredBase)
		// §V-A: re-randomization works — the recovered base goes stale.
		res.Correct = !out.StaleHit
		if len(spec.RerandPeriodsSec) > 0 {
			// The sweep reruns the base attack from the same checkpoint the
			// staleness check used, so its runtime is the same pure function
			// of the session state.
			if err := p.Restore(sess.state); err != nil {
				return nil, fmt.Errorf("%w: %w", ErrSessionCorrupt, err)
			}
			pts, attackSec, err := defense.RerandSweep(p, sess.kernel, spec.RerandPeriodsSec)
			if err != nil {
				return nil, err
			}
			res.RerandSweep = make([]RerandPoint, len(pts))
			for i, pt := range pts {
				res.RerandSweep[i] = RerandPoint{PeriodSec: pt.PeriodSec, WindowSec: pt.WindowSec, Exploitable: pt.Exploitable}
				if pt.Exploitable != (pt.WindowSec > 0) {
					res.Correct = false
				}
			}
			res.ProbeSimSec = attackSec
		}

	case DefenseMaskedOp:
		pop := defense.UbuntuDefaultPopulation()
		res.AffectedExecutables = pop.UsingMaskedOps
		res.TotalExecutables = pop.TotalExecutables
		// §V-B: the mitigation touches 6 of 4104 Ubuntu executables.
		res.Correct = pop.UsingMaskedOps == 6 && pop.TotalExecutables == 4104

	default:
		return nil, fmt.Errorf("service: unknown defense %q", spec.Defense)
	}

	total := preset.CyclesToSeconds(p.M.RDTSC() - t0)
	if res.ProbeSimSec == 0 {
		res.ProbeSimSec = total
	}
	res.TotalSimSec = total
	return res, nil
}

// executeCloud runs a §IV-H scenario end to end (its own boot, prober and
// scoring live inside core.CloudBreak).
func executeCloud(spec JobSpec, opt core.Options) (*Result, error) {
	prov := spec.cloudProvider()
	res, err := core.CloudBreak(prov, spec.Seed, core.CloudBreakOptions{
		AzureMaxSlot: spec.AzureMaxSlot,
		Probe:        opt,
	})
	if err != nil {
		return nil, err
	}
	sc := core.Scenario(prov)
	return &Result{
		Kind:          spec.Kind,
		Correct:       true, // CloudBreak verifies against ground truth internally
		Base:          uint64(res.KernelBase),
		ModulesFound:  res.ModulesFound,
		ViaTrampoline: res.ViaTrampoline,
		ProbeSimSec:   sc.Preset.CyclesToSeconds(res.BaseCycles),
		TotalSimSec:   sc.Preset.CyclesToSeconds(res.BaseCycles + res.ModuleCycles),
	}, nil
}
