package service

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
	"repro/internal/sgx"
	"repro/internal/uarch"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

// victim bundles a booted target machine with the ground-truth handles the
// job executor scores against.
type victim struct {
	m      *machine.Machine
	kernel *linux.Kernel      // linux-class victims
	win    *winkernel.Kernel  // windows-class victims
	proc   *userspace.Process // user-class victims
}

// session is a victim plus a calibrated prober, rewound to its saved
// snapshot between jobs. For the stateless attack kinds the snapshot is the
// post-calibration state and never moves — every job replays from the same
// point. For the temporal kinds (behaviorspy, appfingerprint) the session
// is *stateful*: after each job the session re-snapshots, so the next job
// continues the victim's timeline where the previous window ended. A
// session executes one job at a time; the cache hands each session to
// exactly one executor.
type session struct {
	key string
	victim
	p *core.Prober
	// state is the snapshot every job on this session starts from: the
	// post-calibration checkpoint for stateless kinds, the end of the
	// previous window for temporal kinds.
	state core.SessionState
	// cachedCal reports the session skipped Calibrate via the calibration
	// cache.
	cachedCal bool
	// quarantined marks a session the scheduler condemned (panic, corrupt
	// restore, watchdog abandonment): release drops it instead of parking
	// it, so a condemned session is never re-adopted. Guarded by the
	// cache's mutex.
	quarantined bool

	// Temporal-session state (nil/zero for stateless kinds).
	//
	// drv replays the victim's activity timelines; truth holds the ground
	// truth for scoring; nextT0 is where the next observation window
	// starts on the victim timeline.
	drv    *behavior.Driver
	truth  []*behavior.Timeline
	spy    *core.BehaviorSpy
	fp     *core.AppFingerprinter
	nextT0 float64
}

// sessionCache pools sessions per victim key and caches calibrations so a
// fresh session for a known victim configuration skips threshold
// calibration entirely (bit-identically — see core.NewProberFromCalibration).
type sessionCache struct {
	mu   sync.Mutex
	free map[string][]*session
	cals map[string]core.Calibration
	// made counts sessions ever built (cache misses); hits counts
	// acquisitions served from a parked session; calHits counts
	// calibrations skipped; quarantined counts sessions condemned and
	// dropped; evicted counts healthy sessions dropped at the idle cap.
	made        int
	hits        int
	calHits     int
	quarantined int
	evicted     int
	// max bounds the number of idle sessions kept (0 = unbounded).
	max  int
	idle int
}

func newSessionCache(max int) *sessionCache {
	return &sessionCache{
		free: make(map[string][]*session),
		cals: make(map[string]core.Calibration),
		max:  max,
	}
}

// acquire returns a session for the spec's victim, reusing an idle one
// when available and building (boot + calibrate-or-replay) otherwise. The
// returned flag reports reuse. Callers must release the session after the
// job.
func (c *sessionCache) acquire(spec JobSpec) (*session, bool, error) {
	return c.acquireHook(spec, nil)
}

// acquireHook is acquire with a fault hook installed for the build phase:
// boot and calibration faults fire through it on cache misses (cache hits
// build nothing, so they draw nothing — the documented cache-dependence of
// the boot/calibrate sites).
func (c *sessionCache) acquireHook(spec JobSpec, hook func(op string) error) (*session, bool, error) {
	key := spec.victimKey()
	c.mu.Lock()
	if list := c.free[key]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		c.free[key] = list[:len(list)-1]
		c.idle--
		c.hits++
		c.mu.Unlock()
		return s, true, nil
	}
	cal, haveCal := c.cals[key]
	c.mu.Unlock()

	// Boot outside the lock: victim construction is the expensive part and
	// concurrent executors must not serialize on it.
	s, err := buildSessionHook(spec, cal, haveCal, hook)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.made++
	if haveCal {
		c.calHits++
	} else if _, ok := c.cals[key]; !ok {
		c.cals[key] = s.p.CalibrationSnapshot()
	}
	c.mu.Unlock()
	return s, false, nil
}

// release parks the session for reuse (or drops it when the idle cap is
// reached, or when it was quarantined).
func (c *sessionCache) release(s *session) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.quarantined {
		return // condemned: never re-adopted; the next boot rebuilds it
	}
	if c.max > 0 && c.idle >= c.max {
		c.evicted++
		return // drop; the calibration cache still covers the next boot
	}
	c.free[s.key] = append(c.free[s.key], s)
	c.idle++
}

// quarantine condemns a session: it will be dropped at release instead of
// parked, and can never be adopted by another job. The cached calibration
// for its victim key is untouched — it was taken from a healthy build, and
// it is what makes the replacement boot bit-identical. Nil-safe (cloud
// attempts have no session).
func (c *sessionCache) quarantine(s *session) {
	if s == nil {
		return
	}
	c.mu.Lock()
	if !s.quarantined {
		s.quarantined = true
		c.quarantined++
	}
	c.mu.Unlock()
}

// stats returns (sessions built, calibrations skipped, sessions
// quarantined).
func (c *sessionCache) stats() (made, calHits, quarantined int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.made, c.calHits, c.quarantined
}

// cacheStats is the full session/calibration-cache effectiveness snapshot:
// the hit/miss/evict counters the per-instance /metrics series and /stats
// expose (a session hit reuses a parked session wholesale; a calibration
// hit is a fresh boot that skipped Calibrate via the cached thresholds).
type cacheStats struct {
	// SessionHits counts acquisitions served from a parked session;
	// SessionMisses counts acquisitions that had to build (equal to
	// sessions made).
	SessionHits   int
	SessionMisses int
	// CalibrationHits counts builds that replayed a cached calibration;
	// CalibrationMisses counts builds that ran Calibrate from scratch.
	CalibrationHits   int
	CalibrationMisses int
	// Quarantined counts condemned sessions; Evicted counts healthy
	// sessions dropped at the idle cap.
	Quarantined int
	Evicted     int
}

// hitRate returns the combined session+calibration hit rate: the fraction
// of session acquisitions that avoided a full boot-and-calibrate (reused a
// session, or booted but replayed a cached calibration). This is the
// affinity figure of merit: consistent-hash routing keeps one victim's
// jobs on one instance, so its sessions and calibrations stay hot.
func (cs cacheStats) hitRate() float64 {
	total := cs.SessionHits + cs.SessionMisses
	if total == 0 {
		return 0
	}
	return float64(cs.SessionHits+cs.CalibrationHits) / float64(total)
}

// snapshot returns the cache's full effectiveness counters.
func (c *sessionCache) snapshot() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		SessionHits:       c.hits,
		SessionMisses:     c.made,
		CalibrationHits:   c.calHits,
		CalibrationMisses: c.made - c.calHits,
		Quarantined:       c.quarantined,
		Evicted:           c.evicted,
	}
}

// buildSession boots the spec's victim and produces a calibrated prober —
// via the cached calibration when one is supplied, via core.NewProber
// otherwise. The construction sequence per victim class is exactly the
// direct-call recipe (cmd/avxattack, the examples), which is what makes
// service results bit-identical to direct core calls.
func buildSession(spec JobSpec, cal core.Calibration, haveCal bool) (*session, error) {
	return buildSessionHook(spec, cal, haveCal, nil)
}

// buildSessionHook is buildSession with a fault hook installed on the
// machine for the build's duration: the boot site fires right after
// machine construction and the calibrate site inside core.Calibrate. The
// hook is cleared before the session is returned — parked sessions carry
// no hook; job attempts install their own.
func buildSessionHook(spec JobSpec, cal core.Calibration, haveCal bool, hook func(op string) error) (*session, error) {
	preset := uarch.ByName(spec.CPU)
	if preset == nil {
		return nil, fmt.Errorf("service: no CPU preset matches %q", spec.CPU)
	}
	m := machine.New(preset, spec.Seed)
	if hook != nil {
		m.FaultHook = hook
		defer func() { m.FaultHook = nil }()
		if err := m.Fire("boot"); err != nil {
			return nil, err
		}
	}
	v := victim{m: m}
	switch spec.Kind {
	case KindKernelBase, KindModules, KindKPTI, KindBehaviorSpy, KindAppFingerprint, KindDefenseEval:
		k, err := linux.Boot(m, linux.Config{
			Seed:             spec.Seed,
			KPTI:             spec.Kind == KindKPTI,
			FLARE:            spec.FLARE,
			FGKASLR:          spec.FGKASLR,
			TrampolineOffset: spec.Trampoline,
		})
		if err != nil {
			return nil, err
		}
		v.kernel = k
	case KindWindows:
		wk, err := winkernel.Boot(m, winkernel.Config{Seed: spec.Seed, Drivers: spec.Drivers})
		if err != nil {
			return nil, err
		}
		v.win = wk
	case KindUserScan:
		if _, err := linux.Boot(m, linux.Config{Seed: spec.Seed}); err != nil {
			return nil, err
		}
		proc, err := userspace.Build(m, userspace.Config{
			Seed:           spec.Seed,
			EntropyBits:    spec.EntropyBits,
			HideLastRWPage: true,
		})
		if err != nil {
			return nil, err
		}
		v.proc = proc
		if spec.SGX {
			// The enclave stays entered for the session's lifetime; the
			// checkpoint below captures the in-enclave state.
			if _, err := sgx.Enter(m, sgx.RDTSC); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("service: kind %q does not use sessions", spec.Kind)
	}

	s := &session{key: spec.victimKey(), victim: v}
	if haveCal {
		s.p = core.NewProberFromCalibration(m, core.Options{}, cal)
		s.cachedCal = true
		// Re-checkpoint on this machine: the adopted state's page-table
		// mutation counters belong to the calibrated original, and the
		// session's per-job Restore verifies them against *this* boot.
		s.state = s.p.Checkpoint()
	} else {
		p, err := core.NewProber(m, core.Options{})
		if err != nil {
			return nil, err
		}
		s.p = p
		s.state = p.Checkpoint()
	}
	if spec.Kind == KindBehaviorSpy || spec.Kind == KindAppFingerprint {
		if err := s.initTemporal(spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// activityFor maps a watched module to the §IV-E activity that exercises
// it, with a generic 30 Hz activity for the other watchable modules
// (Validate rejects any target outside the uniquely-identifiable set
// before a job reaches this point, so the default case never fabricates
// activity for an unknown name).
func activityFor(module string) behavior.Activity {
	switch module {
	case "bluetooth":
		return behavior.BluetoothAudio()
	case "psmouse":
		return behavior.MouseMovement()
	case "usbhid":
		return behavior.Keystrokes()
	default:
		return behavior.Activity{Name: module, Module: module, PagesTouched: 6, EventHz: 30}
	}
}

// spyTimelines derives the spy victim's activity timelines from the spec:
// one unbounded bursty timeline per watched module, each drawing from its
// own source split off a spec-seeded parent. Per-timeline sources matter:
// the timelines extend lazily, so draws from one shared source would
// depend on which timeline extended first — with a split source each
// module's whole future is a pure function of (seed, target order), no
// matter when or in what order windows materialize it. Both the session
// builder and the parity suite's direct runs construct timelines here, so
// the ground truth cannot drift between them.
func spyTimelines(spec JobSpec) []*behavior.Timeline {
	r := rng.New(spec.Seed ^ 0xbe4a71e5)
	tls := make([]*behavior.Timeline, 0, len(spec.Targets))
	for _, name := range spec.Targets {
		tls = append(tls, behavior.UnboundedTimeline(activityFor(name), 12, 18, r.Split()))
	}
	return tls
}

// initTemporal prepares a stateful temporal session: the watched modules
// are located with the module attack (the same reconnaissance a real spy
// runs once per victim), the victim's activity timelines are derived
// deterministically from the spec seed, and the session snapshot is taken
// at timeline position 0 — the state the first window restores.
func (s *session) initTemporal(spec JobSpec) error {
	located := core.Modules(s.p, core.SizeTable(s.kernel.ProcModules()))
	switch spec.Kind {
	case KindBehaviorSpy:
		targets, err := core.LocateTargets(located, spec.Targets...)
		if err != nil {
			return err
		}
		// The victim's day: one unbounded bursty timeline per watched
		// module, a pure function of the victim seed — windows at any
		// session depth observe real activity, never a truncated horizon.
		tls := spyTimelines(spec)
		drv, err := behavior.NewDriver(s.kernel, tls...)
		if err != nil {
			return err
		}
		drv.SetResolution(spec.TickSec)
		s.drv, s.truth = drv, tls
		s.spy = &core.BehaviorSpy{P: s.p, Targets: targets, PagesPerModule: 10, TickSec: spec.TickSec}
	case KindAppFingerprint:
		// Watch the union of the profile population's modules — the spy
		// must see which are active AND which are idle to classify.
		watch := make(map[string]linux.LoadedModule)
		var truthProf core.AppProfile
		for _, prof := range core.StandardAppProfiles() {
			if prof.Name == spec.App {
				truthProf = prof
			}
			for _, mn := range prof.Modules {
				name := appModuleName(mn)
				if _, ok := watch[name]; ok {
					continue
				}
				targets, err := core.LocateTargets(located, name)
				if err != nil {
					return err
				}
				watch[name] = targets[0]
			}
		}
		// The app's modules stay active for the whole (unbounded) session.
		drv, err := behavior.NewDriver(s.kernel, core.TimelinesFor(truthProf, math.Inf(1))...)
		if err != nil {
			return err
		}
		drv.SetResolution(spec.TickSec)
		s.drv = drv
		s.fp = &core.AppFingerprinter{
			P:        s.p,
			Watch:    watch,
			Ticks:    spec.Ticks,
			TickSec:  spec.TickSec,
			Profiles: core.StandardAppProfiles(),
		}
	}
	// Timeline position 0 with the reconnaissance done: the state the
	// first window starts from.
	s.state = s.p.Checkpoint()
	return nil
}

// appModuleName strips the "alias:real" profile notation.
func appModuleName(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// libWindow returns the §IV-F scan range of the session's process: the
// library area with the same margins the sgxbreak example and cmd use.
func (s *session) libWindow() (paging.VirtAddr, paging.VirtAddr) {
	libs := s.proc.Libs
	return libs[0].Base - 16*paging.Page4K, libs[len(libs)-1].End() + 8*paging.Page4K
}
