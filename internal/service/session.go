package service

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/sgx"
	"repro/internal/uarch"
	"repro/internal/userspace"
	"repro/internal/winkernel"
)

// victim bundles a booted target machine with the ground-truth handles the
// job executor scores against.
type victim struct {
	m      *machine.Machine
	kernel *linux.Kernel      // linux-class victims
	win    *winkernel.Kernel  // windows-class victims
	proc   *userspace.Process // user-class victims
}

// session is a victim plus a calibrated prober, rewound to its
// post-calibration checkpoint between jobs. A session executes one job at
// a time; the cache hands each session to exactly one executor.
type session struct {
	key string
	victim
	p *core.Prober
	// state is the post-calibration execution checkpoint every job on this
	// session starts from.
	state core.SessionState
	// cachedCal reports the session skipped Calibrate via the calibration
	// cache.
	cachedCal bool
}

// sessionCache pools sessions per victim key and caches calibrations so a
// fresh session for a known victim configuration skips threshold
// calibration entirely (bit-identically — see core.NewProberFromCalibration).
type sessionCache struct {
	mu   sync.Mutex
	free map[string][]*session
	cals map[string]core.Calibration
	// made counts sessions ever built; calHits counts calibrations skipped.
	made    int
	calHits int
	// max bounds the number of idle sessions kept (0 = unbounded).
	max  int
	idle int
}

func newSessionCache(max int) *sessionCache {
	return &sessionCache{
		free: make(map[string][]*session),
		cals: make(map[string]core.Calibration),
		max:  max,
	}
}

// acquire returns a session for the spec's victim, reusing an idle one
// when available and building (boot + calibrate-or-replay) otherwise. The
// returned flag reports reuse. Callers must release the session after the
// job.
func (c *sessionCache) acquire(spec JobSpec) (*session, bool, error) {
	key := spec.victimKey()
	c.mu.Lock()
	if list := c.free[key]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		c.free[key] = list[:len(list)-1]
		c.idle--
		c.mu.Unlock()
		return s, true, nil
	}
	cal, haveCal := c.cals[key]
	c.mu.Unlock()

	// Boot outside the lock: victim construction is the expensive part and
	// concurrent executors must not serialize on it.
	s, err := buildSession(spec, cal, haveCal)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.made++
	if haveCal {
		c.calHits++
	} else if _, ok := c.cals[key]; !ok {
		c.cals[key] = s.p.CalibrationSnapshot()
	}
	c.mu.Unlock()
	return s, false, nil
}

// release parks the session for reuse (or drops it when the idle cap is
// reached).
func (c *sessionCache) release(s *session) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && c.idle >= c.max {
		return // drop; the calibration cache still covers the next boot
	}
	c.free[s.key] = append(c.free[s.key], s)
	c.idle++
}

// stats returns (sessions built, calibrations skipped).
func (c *sessionCache) stats() (made, calHits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.made, c.calHits
}

// buildSession boots the spec's victim and produces a calibrated prober —
// via the cached calibration when one is supplied, via core.NewProber
// otherwise. The construction sequence per victim class is exactly the
// direct-call recipe (cmd/avxattack, the examples), which is what makes
// service results bit-identical to direct core calls.
func buildSession(spec JobSpec, cal core.Calibration, haveCal bool) (*session, error) {
	preset := uarch.ByName(spec.CPU)
	if preset == nil {
		return nil, fmt.Errorf("service: no CPU preset matches %q", spec.CPU)
	}
	m := machine.New(preset, spec.Seed)
	v := victim{m: m}
	switch spec.Kind {
	case KindKernelBase, KindModules, KindKPTI:
		k, err := linux.Boot(m, linux.Config{
			Seed:             spec.Seed,
			KPTI:             spec.Kind == KindKPTI,
			FLARE:            spec.FLARE,
			TrampolineOffset: spec.Trampoline,
		})
		if err != nil {
			return nil, err
		}
		v.kernel = k
	case KindWindows:
		wk, err := winkernel.Boot(m, winkernel.Config{Seed: spec.Seed, Drivers: spec.Drivers})
		if err != nil {
			return nil, err
		}
		v.win = wk
	case KindUserScan:
		if _, err := linux.Boot(m, linux.Config{Seed: spec.Seed}); err != nil {
			return nil, err
		}
		proc, err := userspace.Build(m, userspace.Config{
			Seed:           spec.Seed,
			EntropyBits:    spec.EntropyBits,
			HideLastRWPage: true,
		})
		if err != nil {
			return nil, err
		}
		v.proc = proc
		if spec.SGX {
			// The enclave stays entered for the session's lifetime; the
			// checkpoint below captures the in-enclave state.
			if _, err := sgx.Enter(m, sgx.RDTSC); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("service: kind %q does not use sessions", spec.Kind)
	}

	s := &session{key: spec.victimKey(), victim: v}
	if haveCal {
		s.p = core.NewProberFromCalibration(m, core.Options{}, cal)
		s.cachedCal = true
		s.state = cal.State
	} else {
		p, err := core.NewProber(m, core.Options{})
		if err != nil {
			return nil, err
		}
		s.p = p
		s.state = p.Checkpoint()
	}
	return s, nil
}

// libWindow returns the §IV-F scan range of the session's process: the
// library area with the same margins the sgxbreak example and cmd use.
func (s *session) libWindow() (paging.VirtAddr, paging.VirtAddr) {
	libs := s.proc.Libs
	return libs[0].Base - 16*paging.Page4K, libs[len(libs)-1].End() + 8*paging.Page4K
}
