package service

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/obs"
	"repro/internal/uarch"
)

// Kind names one attack workload the service schedules.
type Kind string

// The job kinds — one per attack scenario family of the paper.
const (
	// KindKernelBase derandomizes the Linux kernel text base (§IV-B;
	// Intel P2 scan or AMD P3 term-level sweep, selected by the preset).
	KindKernelBase Kind = "kernelbase"
	// KindKPTI finds the KPTI trampoline and derives the base (§IV-D).
	KindKPTI Kind = "kpti"
	// KindModules enumerates and classifies kernel modules (§IV-C).
	KindModules Kind = "modules"
	// KindWindows recovers the Windows kernel region (§IV-G).
	KindWindows Kind = "windows"
	// KindUserScan runs the fused §IV-F load+store permission scan over a
	// victim process's library area (optionally from inside SGX).
	KindUserScan Kind = "userscan"
	// KindCloud mounts a §IV-H provider scenario end to end.
	KindCloud Kind = "cloud"
	// KindBehaviorSpy runs one window of the §IV-E user-behavior spy
	// against a per-session victim timeline: consecutive jobs on the same
	// victim continue where the previous window ended (the session carries
	// the timeline position and machine snapshot across jobs).
	KindBehaviorSpy Kind = "behaviorspy"
	// KindAppFingerprint observes one window of driver-module TLB activity
	// and classifies the victim's foreground application (§IV-E extension).
	// Sessions are stateful like behaviorspy's.
	KindAppFingerprint Kind = "appfingerprint"
	// KindDefenseEval evaluates a §V countermeasure (selected by Defense)
	// against the attack that targets it: FLARE's dual page-table/TLB
	// attack, the FGKASLR template attack, the re-randomization staleness
	// check (optionally a period sweep), or the masked-op-restriction
	// impact count. The victim boots with the defense enabled, so
	// defense-eval sessions never share state — or cached calibrations —
	// with undefended boots of the same CPU and seed.
	KindDefenseEval Kind = "defenseeval"
)

// Kinds lists every schedulable job kind.
func Kinds() []Kind {
	return []Kind{KindKernelBase, KindKPTI, KindModules, KindWindows, KindUserScan, KindCloud, KindBehaviorSpy, KindAppFingerprint, KindDefenseEval}
}

// The §V defenses a KindDefenseEval job can evaluate.
const (
	// DefenseFLARE evaluates FLARE dummy mappings (§V-A): the page-table
	// attack must lose its signal while the TLB attack still recovers the
	// base.
	DefenseFLARE = "flare"
	// DefenseFGKASLR evaluates function-granular KASLR (§V-A): offsets
	// move, but the TLB template attack still locates the target function.
	DefenseFGKASLR = "fgkaslr"
	// DefenseRerand evaluates periodic re-randomization (§V-A): the
	// recovered base must be stale after a shuffle; with RerandPeriodsSec
	// set, the job additionally sweeps exploitation windows over periods.
	DefenseRerand = "rerand"
	// DefenseMaskedOp evaluates the §V-B masked-op-restriction mitigation's
	// deployment impact over the Ubuntu executable population.
	DefenseMaskedOp = "maskedop"
)

// Defenses lists every evaluable defense.
func Defenses() []string {
	return []string{DefenseFLARE, DefenseFGKASLR, DefenseRerand, DefenseMaskedOp}
}

// JobSpec fully determines one attack job: the kind, the victim
// configuration and the seed. A job is a pure function of its spec — the
// same spec produces bit-identical results at any scheduler setting, which
// is the service's core determinism contract.
type JobSpec struct {
	Kind Kind `json:"kind"`
	// CPU selects the victim preset by name substring (uarch.ByName);
	// empty picks the kind's default.
	CPU string `json:"cpu,omitempty"`
	// Seed drives victim boot randomization (KASLR slot, module layout,
	// process ASLR) and, through the machine, every measurement.
	Seed uint64 `json:"seed"`
	// FLARE boots the Linux victim with FLARE dummy mappings (defense).
	FLARE bool `json:"flare,omitempty"`
	// FGKASLR boots the Linux victim with function-granular KASLR (defense).
	// Like FLARE, part of the victim configuration for every linux-class
	// kind; kind defenseeval sets both flags from Defense.
	FGKASLR bool `json:"fgkaslr,omitempty"`
	// Defense selects the evaluated countermeasure (kind defenseeval):
	// flare | fgkaslr | rerand | maskedop.
	Defense string `json:"defense,omitempty"`
	// Function is the FGKASLR template attack's target kernel function
	// (kind defenseeval, defense fgkaslr; empty = tcp_sendmsg).
	Function string `json:"function,omitempty"`
	// RerandPeriodsSec sweeps re-randomization periods (kind defenseeval,
	// defense rerand; empty = staleness evaluation only).
	RerandPeriodsSec []float64 `json:"rerand_periods_sec,omitempty"`
	// Trampoline is the KPTI trampoline offset (kind kpti; 0 = the Ubuntu
	// default).
	Trampoline uint64 `json:"trampoline,omitempty"`
	// Drivers is the Windows driver-image population (kind windows;
	// 0 = 24, the cmd default).
	Drivers int `json:"drivers,omitempty"`
	// EntropyBits scales the user-ASLR entropy (kind userscan; 0 = 12, a
	// service-friendly window — the paper's 28 bits extrapolate).
	EntropyBits int `json:"entropy_bits,omitempty"`
	// SGX runs the user scan from inside an enclave (kind userscan).
	SGX bool `json:"sgx,omitempty"`
	// Provider selects the cloud scenario: ec2 | gce | azure (kind cloud).
	Provider string `json:"provider,omitempty"`
	// AzureMaxSlot bounds the Azure region scan (kind cloud; 0 = full).
	AzureMaxSlot int `json:"azure_max_slot,omitempty"`
	// Targets names the watched kernel modules (kind behaviorspy; empty =
	// bluetooth+psmouse, the Figure 6 pair). Part of the victim key: jobs
	// watching different modules do not share a timeline.
	Targets []string `json:"targets,omitempty"`
	// DurationSec is the spy window length per job in victim seconds (kind
	// behaviorspy; 0 = 20).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// TickSec is the temporal sampling interval (kinds behaviorspy and
	// appfingerprint; 0 = 1, the paper's 1 Hz).
	TickSec float64 `json:"tick_sec,omitempty"`
	// App is the application the victim runs (kind appfingerprint; must
	// name a core.StandardAppProfiles entry; empty = music-player).
	App string `json:"app,omitempty"`
	// Ticks is the observation-window length per job in ticks (kind
	// appfingerprint; 0 = 8).
	Ticks int `json:"ticks,omitempty"`
	// ScanWorkers overrides the scheduler's per-job scan-engine parallelism
	// (core.Options.Workers) for this job only: 0 runs the job's sweeps
	// inline on its session machine, >= 1 fans chunks across that many
	// pooled replicas. nil falls back to the scheduler default. Results are
	// bit-identical at every setting, so this knob trades this job's
	// latency against executor-level throughput — it is deliberately not
	// part of the victim key.
	ScanWorkers *int `json:"scan_workers,omitempty"`
}

// MaxJobScanWorkers bounds the per-job ScanWorkers override (a submitted
// job must not fan one sweep across an unbounded replica count).
const MaxJobScanWorkers = 256

// MaxJobTicks bounds a temporal job's observation window in ticks: one
// submitted job must not make an executor allocate an unbounded per-tick
// result (the temporal analogue of MaxJobScanWorkers). It is purely a
// per-job allocation bound — the session's cumulative timeline position is
// unbounded, since victim timelines extend lazily without horizon (any
// number of maximal jobs can continue one session).
const MaxJobTicks = 1 << 16

// MaxRerandSweepPeriods bounds one defense-eval job's re-randomization
// period sweep (one result row per period).
const MaxRerandSweepPeriods = 64

// normalized fills the spec's kind defaults and validates it.
func (s JobSpec) normalized() (JobSpec, error) {
	if s.ScanWorkers != nil {
		if w := *s.ScanWorkers; w < 0 || w > MaxJobScanWorkers {
			return s, fmt.Errorf("service: scan_workers %d out of range [0, %d]", w, MaxJobScanWorkers)
		}
	}
	switch s.Kind {
	case KindKernelBase:
		if s.CPU == "" {
			s.CPU = "12400F"
		}
	case KindKPTI:
		if s.CPU == "" {
			s.CPU = "12400F"
		}
		if s.Trampoline == 0 {
			s.Trampoline = linux.DefaultTrampolineOffset
		}
	case KindModules:
		if s.CPU == "" {
			s.CPU = "1065G7"
		}
	case KindWindows:
		if s.CPU == "" {
			s.CPU = "12400F"
		}
		if s.Drivers == 0 {
			s.Drivers = 24
		}
	case KindUserScan:
		if s.CPU == "" {
			s.CPU = "1065G7"
		}
		if s.EntropyBits == 0 {
			s.EntropyBits = 12
		}
	case KindCloud:
		switch s.Provider {
		case "ec2", "gce", "azure":
		default:
			return s, fmt.Errorf("service: cloud job needs provider ec2|gce|azure, got %q", s.Provider)
		}
		return s, nil // the scenario fixes the preset
	case KindBehaviorSpy:
		if s.CPU == "" {
			s.CPU = "1065G7"
		}
		if len(s.Targets) == 0 {
			s.Targets = []string{"bluetooth", "psmouse"}
		}
		if len(s.Targets) > core.MaxSpyTargets {
			return s, fmt.Errorf("service: %d spy targets, max %d", len(s.Targets), core.MaxSpyTargets)
		}
		// Targets must be watchable: the spy locates them with the module
		// attack, which only identifies uniquely-sized modules. Anything
		// else — a typo, or a module in the shared-size pool — would
		// previously run against a fabricated generic activity and return
		// misleading traces; fail the spec at submission instead.
		for _, name := range s.Targets {
			if !watchableModule(name) {
				return s, fmt.Errorf("service: target module %q is not uniquely identifiable (watchable: %s)",
					name, strings.Join(linux.UniqueSizedModuleNames(), ", "))
			}
		}
		if s.DurationSec == 0 {
			s.DurationSec = 20
		}
		if s.DurationSec < 0 {
			return s, fmt.Errorf("service: negative spy window %v", s.DurationSec)
		}
		if s.TickSec == 0 {
			s.TickSec = 1
		}
		if s.TickSec < 0 {
			return s, fmt.Errorf("service: negative tick %v", s.TickSec)
		}
		// The window must be a whole number of ticks: the session advances
		// its timeline by DurationSec per job, so a fractional tick would
		// make consecutive windows overlap off-grid and break the
		// window-k == direct-run-window-k contract. It must also be
		// bounded — the executor allocates one record per tick.
		ticks := s.DurationSec / s.TickSec
		if ticks > MaxJobTicks {
			return s, fmt.Errorf("service: spy window of %.0f ticks exceeds the %d-tick job bound", ticks, MaxJobTicks)
		}
		if math.Abs(ticks-math.Round(ticks)) > 1e-9*math.Max(ticks, 1) {
			return s, fmt.Errorf("service: duration_sec %v is not a whole number of %vs ticks", s.DurationSec, s.TickSec)
		}
	case KindAppFingerprint:
		if s.CPU == "" {
			s.CPU = "1065G7"
		}
		if s.App == "" {
			s.App = "music-player"
		}
		if !knownAppProfile(s.App) {
			return s, fmt.Errorf("service: unknown app profile %q", s.App)
		}
		if s.Ticks == 0 {
			s.Ticks = 8
		}
		if s.Ticks < 0 {
			return s, fmt.Errorf("service: negative tick count %d", s.Ticks)
		}
		if s.Ticks > MaxJobTicks {
			return s, fmt.Errorf("service: %d ticks exceeds the %d-tick job bound", s.Ticks, MaxJobTicks)
		}
		if s.TickSec == 0 {
			s.TickSec = 1
		}
		if s.TickSec < 0 {
			return s, fmt.Errorf("service: negative tick %v", s.TickSec)
		}
	case KindDefenseEval:
		if s.CPU == "" {
			s.CPU = "12400F"
		}
		switch s.Defense {
		case DefenseFLARE, DefenseFGKASLR, DefenseRerand, DefenseMaskedOp:
		default:
			return s, fmt.Errorf("service: defenseeval job needs defense %s, got %q",
				strings.Join(Defenses(), "|"), s.Defense)
		}
		// The evaluated defense *is* the victim's boot configuration: derive
		// the boot flags from it so the victim key, the boot and the attack
		// can never disagree (a flare evaluation of an undefended boot would
		// be meaningless).
		s.FLARE = s.Defense == DefenseFLARE
		s.FGKASLR = s.Defense == DefenseFGKASLR
		if s.Defense == DefenseFGKASLR {
			if s.Function == "" {
				s.Function = "tcp_sendmsg"
			}
			if !linux.KnownKernelFunction(s.Function) {
				return s, fmt.Errorf("service: unknown kernel function %q", s.Function)
			}
		} else if s.Function != "" {
			return s, fmt.Errorf("service: function is only meaningful for defense fgkaslr")
		}
		if s.Defense == DefenseRerand {
			if len(s.RerandPeriodsSec) > MaxRerandSweepPeriods {
				return s, fmt.Errorf("service: %d sweep periods, max %d", len(s.RerandPeriodsSec), MaxRerandSweepPeriods)
			}
			for _, p := range s.RerandPeriodsSec {
				if p <= 0 {
					return s, fmt.Errorf("service: non-positive rerand period %v", p)
				}
			}
		} else if len(s.RerandPeriodsSec) > 0 {
			return s, fmt.Errorf("service: rerand_periods_sec is only meaningful for defense rerand")
		}
	default:
		return s, fmt.Errorf("service: unknown job kind %q", s.Kind)
	}
	if uarch.ByName(s.CPU) == nil {
		return s, fmt.Errorf("service: no CPU preset matches %q", s.CPU)
	}
	return s, nil
}

// cloudProvider maps the spec's provider string (kind cloud only).
func (s JobSpec) cloudProvider() core.CloudProvider {
	switch s.Provider {
	case "gce":
		return core.GoogleGCE
	case "azure":
		return core.MicrosoftAzure
	default:
		return core.AmazonEC2
	}
}

// victimKey identifies the victim a job runs against: every field that
// shapes the booted machine, the victim OS/process image or the
// calibration. Jobs with equal keys can share a cached session (and the
// cached calibration); the attack kind itself is deliberately *not* part
// of the key where victims coincide — a kernel-base job and a modules job
// against the same Linux boot multiplex onto one session, and a rerand
// defense evaluation shares the undefended boot a kernel-base job uses.
// The defense configuration (FLARE, FGKASLR) is part of every linux-class
// key: a defended boot has different mappings, symbol layout and timing
// surface, so it must never adopt an undefended boot's session *or* its
// cached calibration (the calibration cache is keyed by the same string).
func (s JobSpec) victimKey() string {
	switch s.Kind {
	case KindKernelBase, KindModules, KindDefenseEval:
		return fmt.Sprintf("linux|%s|seed=%d|flare=%v|fgkaslr=%v", s.CPU, s.Seed, s.FLARE, s.FGKASLR)
	case KindKPTI:
		return fmt.Sprintf("linux+kpti|%s|seed=%d|flare=%v|fgkaslr=%v|tramp=%#x", s.CPU, s.Seed, s.FLARE, s.FGKASLR, s.Trampoline)
	case KindWindows:
		return fmt.Sprintf("windows|%s|seed=%d|drivers=%d", s.CPU, s.Seed, s.Drivers)
	case KindUserScan:
		return fmt.Sprintf("user|%s|seed=%d|entropy=%d|sgx=%v", s.CPU, s.Seed, s.EntropyBits, s.SGX)
	case KindBehaviorSpy:
		// Stateful: the key pins every field that shapes the victim's
		// timeline — jobs sharing it continue one spy session.
		return fmt.Sprintf("spy|%s|seed=%d|flare=%v|fgkaslr=%v|targets=%s|tick=%g|win=%g",
			s.CPU, s.Seed, s.FLARE, s.FGKASLR, strings.Join(s.Targets, ","), s.TickSec, s.DurationSec)
	case KindAppFingerprint:
		return fmt.Sprintf("appfp|%s|seed=%d|flare=%v|fgkaslr=%v|app=%s|ticks=%d|tick=%g",
			s.CPU, s.Seed, s.FLARE, s.FGKASLR, s.App, s.Ticks, s.TickSec)
	default: // cloud boots inside CloudBreak; no session sharing
		return ""
	}
}

// routingKey identifies the victim a job should be co-located with: the
// victim key for every session-backed kind — so all jobs against one
// victim land on the instance whose session and calibration caches hold
// that victim hot, and one victim's temporal windows stay globally ordered
// on one scheduler — and a provider/seed key for cloud jobs, which carry
// no session but still deserve a stable placement. Routing never feeds
// into the result: it only decides *where* a job runs.
func (s JobSpec) routingKey() string {
	if key := s.victimKey(); key != "" {
		return key
	}
	return fmt.Sprintf("cloud|%s|seed=%d|maxslot=%d", s.Provider, s.Seed, s.AzureMaxSlot)
}

// watchableModule reports whether a spy target can be located by the
// module attack (unique mapped size on the default victim).
func watchableModule(name string) bool {
	for _, n := range linux.UniqueSizedModuleNames() {
		if n == name {
			return true
		}
	}
	return false
}

// knownAppProfile reports whether name is in the standard population.
func knownAppProfile(name string) bool {
	for _, prof := range core.StandardAppProfiles() {
		if prof.Name == name {
			return true
		}
	}
	return false
}

// Status is a job's lifecycle state.
type Status string

// Job states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Region is one recovered address-space region in a result payload.
type Region struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Class is the recovered classification: a permission class (userscan)
	// or the module-name candidates (modules).
	Class string `json:"class,omitempty"`
}

// Result is the deterministic payload of one completed job: everything in
// it is a pure function of the JobSpec — the service parity suite holds
// these fields bit-identical to direct core.* calls at any worker/pool
// setting. Host-side metrics (queue latency, run latency) live on the Job.
type Result struct {
	Kind    Kind `json:"kind"`
	Correct bool `json:"correct"`
	// Base is the recovered base address (kernelbase, kpti, windows,
	// cloud).
	Base uint64 `json:"base,omitempty"`
	// RunSlots is the detected run length (windows).
	RunSlots int `json:"run_slots,omitempty"`
	// Regions holds recovered regions (modules, userscan).
	Regions []Region `json:"regions,omitempty"`
	// Found maps fingerprinted library names to bases (userscan).
	Found map[string]uint64 `json:"found,omitempty"`
	// Accuracy is the per-module detection accuracy (modules).
	Accuracy float64 `json:"accuracy,omitempty"`
	// ModulesFound counts detected module regions (cloud, Linux guests).
	ModulesFound int `json:"modules_found,omitempty"`
	// ViaTrampoline reports the KPTI path (cloud/ec2).
	ViaTrampoline bool `json:"via_trampoline,omitempty"`
	// WindowStartSec / WindowEndSec locate a temporal job's observation
	// window on the session's victim timeline (behaviorspy, appfingerprint):
	// the position the session had reached when this job ran.
	WindowStartSec float64 `json:"window_start_sec,omitempty"`
	WindowEndSec   float64 `json:"window_end_sec,omitempty"`
	// TargetAccuracy is the per-module detection accuracy vs ground truth
	// (behaviorspy).
	TargetAccuracy map[string]float64 `json:"target_accuracy,omitempty"`
	// App is the classified application (appfingerprint; empty when no
	// profile matched).
	App string `json:"app,omitempty"`
	// Defense names the evaluated countermeasure (defenseeval).
	Defense string `json:"defense,omitempty"`
	// Bypassed reports whether the attack defeated the defense
	// (defenseeval, defenses flare/fgkaslr — the paper's expected outcome
	// is a bypass; rerand reports the inverse via StaleHit).
	Bypassed bool `json:"bypassed,omitempty"`
	// PageSignal reports whether the page-table attack could still tell
	// kernel slots from FLARE dummy slots (defenseeval/flare; must be
	// false for the defense to do its job).
	PageSignal bool `json:"page_signal,omitempty"`
	// OffsetStable reports whether the target function kept its
	// build-constant offset (defenseeval/fgkaslr; must be false).
	OffsetStable bool `json:"offset_stable,omitempty"`
	// StaleHit reports whether the recovered base survived the
	// re-randomization shuffle (defenseeval/rerand; must be false).
	StaleHit bool `json:"stale_hit,omitempty"`
	// RerandSweep holds the exploitation-window sweep rows
	// (defenseeval/rerand with rerand_periods_sec).
	RerandSweep []RerandPoint `json:"rerand_sweep,omitempty"`
	// AffectedExecutables / TotalExecutables are the masked-op-restriction
	// deployment impact counts (defenseeval/maskedop).
	AffectedExecutables int `json:"affected_executables,omitempty"`
	TotalExecutables    int `json:"total_executables,omitempty"`
	// ProbeSimSec and TotalSimSec are the simulated attacker runtimes in
	// seconds (the Table I probing/total split).
	ProbeSimSec float64 `json:"probe_sim_sec"`
	TotalSimSec float64 `json:"total_sim_sec"`
	// Retries counts the transient failures healed before this result was
	// produced (scheduler-side accounting; always 0 on a zero-fault run,
	// so the payload stays bit-identical to the parity references).
	Retries int `json:"retries,omitempty"`
}

// RerandPoint is one period row of a re-randomization sweep result.
type RerandPoint struct {
	PeriodSec   float64 `json:"period_sec"`
	WindowSec   float64 `json:"window_sec"`
	Exploitable bool    `json:"exploitable"`
}

// Job is one scheduled attack: spec, lifecycle and result. Mutable fields
// are guarded by the Store that owns the job.
type Job struct {
	ID   uint64  `json:"id"`
	Spec JobSpec `json:"spec"`

	Status Status  `json:"status"`
	Err    string  `json:"error,omitempty"`
	// ErrClass is the failure's retry classification (failed jobs only).
	ErrClass ErrorClass `json:"error_class,omitempty"`
	Result   *Result    `json:"result,omitempty"`
	// Attempts is how many times the job ran (recorded only when > 1, i.e.
	// when transient failures forced retries).
	Attempts int `json:"attempts,omitempty"`
	// ReusedSession and ReusedCalibration report what the session cache
	// contributed (host-side provenance, not part of the payload).
	ReusedSession     bool `json:"reused_session,omitempty"`
	ReusedCalibration bool `json:"reused_calibration,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`

	done chan struct{}
	// trace is the job's lifecycle span tree (nil unless the scheduler's
	// recorder sampled this job); qspan is its open queue-wait span, ended
	// when an executor picks the job up. Both are nil-safe no-ops when
	// tracing is off — instrumentation never alters job behaviour.
	trace *obs.Trace
	qspan *obs.Span
}

// Done returns a channel closed when the job completes (done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// QueueLatency and RunLatency split the job's host wall-clock.
func (j *Job) QueueLatency() time.Duration { return j.Started.Sub(j.Submitted) }

// RunLatency returns the executor wall-clock of a finished job.
func (j *Job) RunLatency() time.Duration { return j.Finished.Sub(j.Started) }
