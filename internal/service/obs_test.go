package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// runTracedChaos drives the serialized chaos workload with every job
// traced and returns each job's canonical span-tree serialization, in
// submission order.
func runTracedChaos(t *testing.T, specs []JobSpec) []string {
	t.Helper()
	s := New(Config{
		Executors:   1,
		QueueDepth:  64,
		MaxAttempts: 3,
		JobDeadline: -1, // serialized determinism needs no watchdog races
		TraceSample: 1,
		Fault:       fault.Config{Seed: 7, Rates: chaosRates()},
	})
	var jobs []*Job
	for i, spec := range specs {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	out := make([]string, len(jobs))
	for i, j := range jobs {
		<-j.Done()
		tr, ok := s.Trace(j.ID)
		if !ok {
			t.Fatalf("job %d: no trace at sample rate 1", j.ID)
		}
		b, err := tr.CanonicalJSON()
		if err != nil {
			t.Fatalf("job %d: canonical: %v", j.ID, err)
		}
		out[i] = string(b)
	}
	s.Drain()
	return out
}

// Spans as determinism oracles: under serialized execution, identical
// seeds must produce byte-identical canonical span trees — same nesting,
// same attempt/retry/backoff structure, same fault and quarantine
// annotations, same sim-times — across two fully independent scheduler
// instances. This extends the chaos suite's retry/quarantine equality
// checks to the whole lifecycle.
func TestChaosSpanTreeDeterminism(t *testing.T) {
	specs := chaosTraceSpecs()
	a := runTracedChaos(t, specs)
	b := runTracedChaos(t, specs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d span tree diverged across identical runs:\nrun A: %s\nrun B: %s", i+1, a[i], b[i])
		}
	}
	// The trees must actually carry fault evidence: with seed-7 chaos
	// rates, at least one job's trace should show a retried attempt.
	any := strings.Join(a, "\n")
	if !strings.Contains(any, `"fault"`) && !strings.Contains(any, `"transient"`) {
		t.Fatalf("no fault annotations in any chaos trace — instrumentation lost the fault sites:\n%s", any)
	}
}

// A sealed trace must be observable the moment Done unblocks: the root
// span is ended (and the outcome annotated) before the store completion
// closes the done channel.
func TestTraceSealedBeforeDone(t *testing.T) {
	s := New(Config{Executors: 1, TraceSample: 1})
	defer s.Drain()
	j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	tr, ok := s.Trace(j.ID)
	if !ok {
		t.Fatal("no trace")
	}
	root := tr.Snapshot()
	if root.EndNs == 0 {
		t.Fatal("root span not sealed at Done")
	}
	var status string
	for _, a := range root.Attrs {
		if a.Key == "status" {
			status = a.Value
		}
	}
	if status != string(StatusDone) {
		t.Fatalf("root status = %q, want %q (attrs %+v)", status, StatusDone, root.Attrs)
	}
	// The lifecycle stages must be present as children.
	names := map[string]bool{}
	for _, c := range root.Children {
		names[c.Name] = true
		if c.Name == "attempt" {
			for _, g := range c.Children {
				names[g.Name] = true
			}
		}
	}
	for _, want := range []string{"queue", "attempt", "acquire", "restore", "execute"} {
		if !names[want] {
			t.Fatalf("missing %q span (got %v)", want, names)
		}
	}
}

// Unsampled jobs must cost nothing and serve 404s; sampled jobs must be
// retrievable in both JSON and ASCII form.
func TestTraceEndpoint(t *testing.T) {
	s := New(Config{Executors: 1, TraceSample: 2})
	defer s.Drain()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var ids []uint64
	for i := 0; i < 2; i++ {
		j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: uint64(5 + i)})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		ids = append(ids, j.ID)
	}
	// IDs 1 and 2 at sample 2: job 1 unsampled, job 2 sampled.
	r, err := http.Get(srv.URL + "/jobs/1/trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unsampled trace: status %d, want 404", r.StatusCode)
	}

	r, err = http.Get(srv.URL + "/jobs/2/trace")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		JobID uint64    `json:"job_id"`
		Trace *obs.Span `json:"trace"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || body.JobID != 2 || body.Trace == nil || body.Trace.Name != "job" {
		t.Fatalf("sampled trace: status %d body %+v", r.StatusCode, body)
	}

	r, err = http.Get(srv.URL + "/jobs/2/trace?format=ascii")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(text), "job 2 lifecycle") || !strings.Contains(string(text), "execute") {
		t.Fatalf("ascii timeline missing expected rows:\n%s", text)
	}
	_ = ids
}

// The Prometheus surface: families from every subsystem, per-kind and
// per-defense labels, and histogram series — all present after a couple of
// jobs.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{Executors: 2, TraceSample: 1})
	defer s.Drain()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	for _, spec := range []JobSpec{
		{Kind: KindKernelBase, CPU: "12400F", Seed: 4},
		{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseFLARE, Seed: 4},
	} {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
	}

	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := string(out)
	for _, want := range []string{
		"scand_jobs_submitted_total 2",
		"scand_jobs_completed_total 2",
		`scand_jobs_finished_total{kind="kernelbase"} 1`,
		`scand_defense_evals_total{defense="flare"} 1`,
		"scand_queue_depth 0",
		"scand_sessions_built_total",
		`scand_job_latency_seconds_count{kind="kernelbase"} 1`,
		`scand_stage_seconds_count{stage="execute"} 2`,
		`scand_stage_seconds_count{stage="queue"} 2`,
		"scand_traces_started_total 2",
		`scand_faults_injected_total{site="probe"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// completeTimed finishes a fake job with a controlled end-to-end latency
// by back-dating its submission.
func completeTimed(st *Store, j *Job, lat time.Duration) {
	j.Submitted = time.Now().Add(-lat)
	st.complete(j, &Result{Kind: j.Spec.Kind, Correct: true, TotalSimSec: 1}, nil)
}

// Store.Stats under eviction churn: the latency quantiles and aggregate
// counters live in histograms/counters, not the job map, so they must be
// unaffected by finished-job eviction — and the two latency populations
// land far enough apart (10ms vs 1s, ~two decades over the ~12.5% bucket
// resolution) that p50/p99 must separate them.
func TestStoreStatsHistogramUnderEviction(t *testing.T) {
	st := NewBoundedStore(StoreConfig{MaxJobs: 4})
	const fast, slow = 60, 4
	id := uint64(1)
	for i := 0; i < fast; i++ {
		j := fakeJob(st, id)
		j.Spec.Kind = KindKernelBase
		completeTimed(st, j, 10*time.Millisecond)
		id++
	}
	for i := 0; i < slow; i++ {
		j := fakeJob(st, id)
		j.Spec.Kind = KindModules
		completeTimed(st, j, time.Second)
		id++
	}
	s := st.Stats()
	if s.Completed != fast+slow || s.Submitted != fast+slow {
		t.Fatalf("counters lost under eviction: %+v", s)
	}
	if s.Evicted != fast+slow-4 || s.Retained != 4 {
		t.Fatalf("eviction accounting: evicted %d retained %d", s.Evicted, s.Retained)
	}
	// p50 ≈ 10ms (64 samples, rank 31 falls in the fast population);
	// p99 ≈ 1s (rank 62 falls in the slow tail). Bucketed quantiles may
	// overshoot by one bucket width (~12.5%).
	if s.P50Ms < 10 || s.P50Ms > 12 {
		t.Fatalf("p50 %.3f ms, want ~10ms", s.P50Ms)
	}
	if s.P99Ms < 1000 || s.P99Ms > 1250 {
		t.Fatalf("p99 %.3f ms, want ~1000ms", s.P99Ms)
	}
	if s.P99Ms < s.P50Ms {
		t.Fatalf("p99 %.3f < p50 %.3f", s.P99Ms, s.P50Ms)
	}
}

// Stats scrapes concurrent with TTL-churning completions must stay
// consistent (run under -race by ci-obs): every counter monotonic, the
// quantiles always ordered, eviction never double-counted.
func TestStoreStatsConcurrentWithTTLChurn(t *testing.T) {
	st := NewBoundedStore(StoreConfig{MaxJobs: 8, TTL: time.Millisecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastDone int
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := st.Stats()
			done := s.Completed + s.Failed
			if done < lastDone {
				t.Errorf("finished count went backwards: %d -> %d", lastDone, done)
				return
			}
			lastDone = done
			if s.P99Ms < s.P50Ms {
				t.Errorf("quantiles unordered: p50 %.3f p99 %.3f", s.P50Ms, s.P99Ms)
				return
			}
			if s.Retained < 0 || s.Evicted < 0 {
				t.Errorf("negative retention: %+v", s)
				return
			}
		}
	}()
	for id := uint64(1); id <= 500; id++ {
		j := fakeJob(st, id)
		j.Spec.Kind = KindKernelBase
		lat := 5 * time.Millisecond
		if id%7 == 0 {
			lat = 80 * time.Millisecond
		}
		completeTimed(st, j, lat)
		if id%50 == 0 {
			time.Sleep(2 * time.Millisecond) // let the TTL bite mid-run
		}
	}
	close(stop)
	wg.Wait()
	s := st.Stats()
	if s.Completed != 500 {
		t.Fatalf("completed %d, want 500 (eviction must not eat counters)", s.Completed)
	}
	if s.Retained > 8 {
		t.Fatalf("retained %d over MaxJobs 8", s.Retained)
	}
}

// The per-kind breakdown separates populations the aggregate blends.
func TestKindLatencies(t *testing.T) {
	st := NewStore()
	for id := uint64(1); id <= 20; id++ {
		j := fakeJob(st, id)
		if id%2 == 0 {
			j.Spec.Kind = KindKernelBase
			completeTimed(st, j, 10*time.Millisecond)
		} else {
			j.Spec.Kind = KindCloud
			completeTimed(st, j, 200*time.Millisecond)
		}
	}
	kl := st.KindLatencies()
	kb, ok1 := kl[KindKernelBase]
	cl, ok2 := kl[KindCloud]
	if !ok1 || !ok2 {
		t.Fatalf("missing kinds in breakdown: %+v", kl)
	}
	if kb.Jobs != 10 || cl.Jobs != 10 {
		t.Fatalf("per-kind counts: %+v", kl)
	}
	if kb.P50Ms < 10 || kb.P50Ms > 12 || cl.P50Ms < 200 || cl.P50Ms > 230 {
		t.Fatalf("per-kind quantiles blended: kernelbase %+v cloud %+v", kb, cl)
	}
	if _, ok := kl[KindWindows]; ok {
		t.Fatal("kind with no jobs must not appear")
	}
}

// With tracing off (the default), the per-job span choreography in the
// scheduler must not allocate: every span call is a nil-receiver no-op.
// This is the service-level companion of the obs package's guard.
func TestSchedulerDisabledTraceZeroAlloc(t *testing.T) {
	var j Job // zero trace/qspan — exactly what an untraced job carries
	allocs := testing.AllocsPerRun(1000, func() {
		j.qspan.End()
		root := j.trace.Root()
		asp := root.Child("attempt")
		asp.Annotate("attempt", "1")
		annotateFailure(nil, nil)
		asp.End()
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocated %v/run, want 0", allocs)
	}
}
