package service

import (
	"reflect"
	"testing"

	"repro/internal/defense"
	"repro/internal/uarch"
)

// directDefenseResult evaluates the spec's defense with plain
// defense.Evaluate* calls — the yardstick every scheduler configuration
// must match in all attack-outcome fields. Simulated-runtime fields stay
// zero where the direct API does not expose them (the grid test separately
// holds them bit-identical across worker/pool settings).
func directDefenseResult(t *testing.T, spec JobSpec) *Result {
	t.Helper()
	spec, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	preset := uarch.ByName(spec.CPU)
	res := &Result{Kind: spec.Kind, Defense: spec.Defense}

	switch spec.Defense {
	case DefenseFLARE:
		out, err := defense.EvaluateFLARE(preset, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		res.Bypassed = out.Bypassed()
		res.PageSignal = out.PageTableDistinguishes
		res.Base = uint64(out.TLBBaseFound)
		res.Correct = !out.PageTableDistinguishes && out.Bypassed()

	case DefenseFGKASLR:
		out, err := defense.EvaluateFGKASLR(preset, spec.Seed, spec.Function)
		if err != nil {
			t.Fatal(err)
		}
		res.Bypassed = out.Bypassed()
		res.OffsetStable = out.OffsetStable
		res.Base = uint64(out.TemplateFoundPage)
		res.Correct = out.Bypassed() && !out.OffsetStable

	case DefenseRerand:
		out, err := defense.EvaluateRerandomization(preset, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		res.StaleHit = out.StaleHit
		res.Base = uint64(out.RecoveredBase)
		res.Correct = !out.StaleHit
		if len(spec.RerandPeriodsSec) > 0 {
			pts, attackSec, err := defense.RerandomizationSweep(preset, spec.Seed, spec.RerandPeriodsSec)
			if err != nil {
				t.Fatal(err)
			}
			res.RerandSweep = make([]RerandPoint, len(pts))
			for i, pt := range pts {
				res.RerandSweep[i] = RerandPoint{PeriodSec: pt.PeriodSec, WindowSec: pt.WindowSec, Exploitable: pt.Exploitable}
			}
			res.ProbeSimSec = attackSec
		}

	case DefenseMaskedOp:
		pop := defense.UbuntuDefaultPopulation()
		res.AffectedExecutables = pop.UsingMaskedOps
		res.TotalExecutables = pop.TotalExecutables
		res.Correct = pop.UsingMaskedOps == 6 && pop.TotalExecutables == 4104

	default:
		t.Fatalf("unknown defense %q", spec.Defense)
	}
	return res
}

// A defense evaluation through the scheduler must be bit-identical to the
// direct internal/defense evaluation at the same seed, at every scan-worker
// setting, pooled and fresh — the KindDefenseEval half of the service
// determinism contract. The simulated runtimes (which the direct API does
// not return for most defenses) must at least be bit-identical across the
// whole grid.
func TestDefenseEvalServiceParity(t *testing.T) {
	specs := []JobSpec{
		{Kind: KindDefenseEval, CPU: "12400F", Seed: 77, Defense: DefenseFLARE},
		{Kind: KindDefenseEval, CPU: "1065G7", Seed: 77, Defense: DefenseFGKASLR},
		{Kind: KindDefenseEval, CPU: "9900", Seed: 77, Defense: DefenseRerand,
			RerandPeriodsSec: []float64{0.0001, 0.001, 0.1}},
		{Kind: KindDefenseEval, Seed: 77, Defense: DefenseMaskedOp},
	}
	grid := []struct {
		workers int
		fresh   bool
	}{
		{0, false}, {0, true},
		{1, false}, {1, true},
		{4, false}, {4, true},
		{8, false}, {8, true},
	}

	for _, spec := range specs {
		want := directDefenseResult(t, spec)
		var ref *Result
		for _, g := range grid {
			s := New(Config{Executors: 1, ScanWorkers: g.workers, FreshWorkers: g.fresh})
			j, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Wait(j)
			s.Drain()
			if err != nil {
				t.Fatalf("%s workers=%d fresh=%v: %v", spec.Defense, g.workers, g.fresh, err)
			}

			// Outcome parity vs the direct evaluation: compare with the
			// runtime fields the direct API leaves unset masked out.
			cmp := *got
			cmp.TotalSimSec = 0
			if want.ProbeSimSec == 0 {
				cmp.ProbeSimSec = 0
			}
			if !reflect.DeepEqual(want, &cmp) {
				t.Fatalf("%s workers=%d fresh=%v differs from direct evaluation\nwant: %+v\ngot:  %+v",
					spec.Defense, g.workers, g.fresh, want, got)
			}

			// Full-result determinism (including runtimes) across the grid.
			if ref == nil {
				ref = got
			} else if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s workers=%d fresh=%v: full result differs across the grid\nref: %+v\ngot: %+v",
					spec.Defense, g.workers, g.fresh, ref, got)
			}
		}
	}
}

// A FLARE- or FGKASLR-booted victim has different mappings and timing
// surface than an undefended boot of the same CPU and seed: it must get its
// own session and its own calibration, never adopting the cached ones. The
// rerand evaluation attacks an *undefended* boot, so it must share the
// kernel-base session — both sides of the key design.
func TestDefendedBootsNeverAdoptUndefendedCalibrations(t *testing.T) {
	s := New(Config{Executors: 1})
	defer s.Drain()

	// Warm the session + calibration cache with an undefended boot.
	warm := JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 5}
	j, err := s.Submit(warm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(j); err != nil {
		t.Fatal(err)
	}

	for _, d := range []string{DefenseFLARE, DefenseFGKASLR} {
		spec := JobSpec{Kind: KindDefenseEval, CPU: "12400F", Seed: 5, Defense: d}
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(j); err != nil {
			t.Fatal(err)
		}
		snap, ok := s.Store().Snapshot(j.ID)
		if !ok {
			t.Fatal("job evicted")
		}
		if snap.ReusedSession || snap.ReusedCalibration {
			t.Fatalf("%s eval adopted the undefended boot's cache (session=%v calibration=%v)",
				d, snap.ReusedSession, snap.ReusedCalibration)
		}

		// The isolation is structural: the defended key differs.
		norm, err := spec.normalized()
		if err != nil {
			t.Fatal(err)
		}
		warmNorm, err := warm.normalized()
		if err != nil {
			t.Fatal(err)
		}
		if norm.victimKey() == warmNorm.victimKey() {
			t.Fatalf("%s eval shares the undefended victim key %q", d, norm.victimKey())
		}
	}

	// The rerand evaluation runs against the undefended boot and must
	// multiplex onto the warmed kernel-base session.
	j, err = s.Submit(JobSpec{Kind: KindDefenseEval, CPU: "12400F", Seed: 5, Defense: DefenseRerand})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(j); err != nil {
		t.Fatal(err)
	}
	snap, ok := s.Store().Snapshot(j.ID)
	if !ok {
		t.Fatal("job evicted")
	}
	if !snap.ReusedSession {
		t.Fatal("rerand eval did not share the undefended kernel-base session")
	}
}

// The calibration cache itself must honor the defense-aware key: a fresh
// session build for the undefended key adopts the cached calibration, a
// defended build for the same CPU/seed never does.
func TestCalibrationCacheDefenseKeying(t *testing.T) {
	c := newSessionCache(0)
	norm := func(spec JobSpec) JobSpec {
		n, err := spec.normalized()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	warm := norm(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 5})

	// First build populates the calibration cache for the undefended key.
	warmSess, reused, err := c.acquire(warm)
	if err != nil {
		t.Fatal(err)
	}
	if reused || warmSess.cachedCal {
		t.Fatalf("first build reused state (session=%v cal=%v)", reused, warmSess.cachedCal)
	}
	// Hold the warm session (not released): every acquire below must build.

	// Same undefended victim → the rebuild replays the cached calibration.
	rerand := norm(JobSpec{Kind: KindDefenseEval, CPU: "12400F", Seed: 5, Defense: DefenseRerand})
	sess, reused, err := c.acquire(rerand)
	if err != nil {
		t.Fatal(err)
	}
	if reused || !sess.cachedCal {
		t.Fatalf("undefended rerand build did not replay the cached calibration (session=%v cal=%v)", reused, sess.cachedCal)
	}

	// Defended boots of the same CPU/seed → never adopt it.
	for _, d := range []string{DefenseFLARE, DefenseFGKASLR} {
		spec := norm(JobSpec{Kind: KindDefenseEval, CPU: "12400F", Seed: 5, Defense: d})
		sess, reused, err := c.acquire(spec)
		if err != nil {
			t.Fatal(err)
		}
		if reused || sess.cachedCal {
			t.Fatalf("%s build adopted the undefended calibration (session=%v cal=%v)", d, reused, sess.cachedCal)
		}
	}
}

// Spy targets the module attack cannot uniquely identify must fail at
// submission — previously they silently ran against a fabricated generic
// activity and returned misleading traces.
func TestSpyTargetValidation(t *testing.T) {
	s := New(Config{Executors: 1, ScanWorkers: 2})
	defer s.Drain()

	// A typo and a shared-size module (usbhid collides with other module
	// sizes, so the module attack cannot locate it) are both rejected.
	for _, target := range []string{"no-such-module", "usbhid"} {
		if _, err := s.Submit(JobSpec{Kind: KindBehaviorSpy, Seed: 81, Targets: []string{target}}); err == nil {
			t.Fatalf("unwatchable target %q accepted at submission", target)
		}
	}

	// A uniquely-sized module is watchable end to end.
	j, err := s.Submit(JobSpec{Kind: KindBehaviorSpy, Seed: 81, Targets: []string{"nvme"}, DurationSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.TargetAccuracy["nvme"]; !ok {
		t.Fatalf("no trace for watchable target nvme: %+v", res)
	}
}

// A long-lived spy session must keep observing real victim activity past
// the old fixed materialization horizon (4096 ticks): the victim timeline
// extends lazily without bound, and the extension is deterministic — the
// late window must be bit-identical to the same window of a direct run and
// must contain non-idle ground truth.
func TestSpySessionPastOldHorizon(t *testing.T) {
	spec := JobSpec{Kind: KindBehaviorSpy, Seed: 91, DurationSec: 1024}
	const windows = 5 // the last window spans ticks [4096, 5120)

	norm, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth for the final window must be non-idle: a regression to a
	// fixed horizon would leave both truth and trace idle up there and let a
	// trivial all-idle accuracy of 1.0 slip through.
	active := 0
	for _, tl := range spyTimelines(norm) {
		for tick := 4096; tick < 5120; tick++ {
			if tl.ActiveAt(float64(tick)) {
				active++
			}
		}
	}
	if active < 100 {
		t.Fatalf("ground truth nearly idle past tick 4096 (%d active ticks)", active)
	}

	want := directSpyResults(t, spec, windows, 2)
	s := New(Config{Executors: 1, ScanWorkers: 2})
	defer s.Drain()
	for w := 0; w < windows; w++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Wait(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want[w], got) {
			t.Fatalf("window %d diverged from the direct run\nwant: %+v\ngot:  %+v", w, want[w], got)
		}
	}
	last := want[windows-1]
	if last.WindowStartSec != 4096 || last.WindowEndSec != 5120 {
		t.Fatalf("final window is [%v, %v), want [4096, 5120)", last.WindowStartSec, last.WindowEndSec)
	}
	if !last.Correct || last.Accuracy < 0.9 {
		t.Fatalf("spy lost the victim past the old horizon: accuracy %v", last.Accuracy)
	}
}
