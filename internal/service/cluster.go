package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Routing policies of the cluster router.
const (
	// RouteHash is victim-key-affinity routing (the default): jobs are
	// placed by consistent-hashing JobSpec.routingKey onto the instance
	// ring, so every job against one victim lands on the same instance —
	// its session and calibration caches stay hot, and its temporal
	// windows stay globally ordered on one scheduler.
	RouteHash = "hash"
	// RouteShuffle is the affinity ablation: shuffled round-robin over a
	// seeded instance permutation. Placement is victim-blind, so one
	// victim's jobs spread across instances and every instance pays its
	// own boot+calibrate for that victim — the baseline the affinity
	// benchmark beats.
	RouteShuffle = "shuffle"
)

// ClusterConfig tunes a single-process scheduler cluster.
type ClusterConfig struct {
	// Instances is the number of independent Scheduler instances behind
	// the router (<= 1 means a single instance — still valid, still a
	// Cluster, just a ring with one owner).
	Instances int
	// HashReplicas is the virtual-node count per instance on the
	// consistent-hash ring (0 = DefaultHashReplicas). More replicas
	// smooth the per-instance key share toward 1/N.
	HashReplicas int
	// Route selects the routing policy: RouteHash (default) or
	// RouteShuffle (the affinity ablation).
	Route string
	// RouteSeed seeds the shuffle permutation (RouteShuffle only).
	RouteSeed uint64
	// Config is the per-instance scheduler configuration. Every instance
	// receives its own copy — own bounded queue, executors, scan pool,
	// session + calibration caches, fault injector and obs plane. When
	// fault injection is enabled, each instance's injector seed is split
	// deterministically off Config.Fault.Seed (instance i never shares a
	// fault stream with instance j).
	Config Config
	// Tune optionally rewrites one instance's configuration after the
	// per-instance defaults (fault-seed split included) are applied —
	// the chaos suite uses it to aim sustained faults at exactly one
	// instance while the rest stay healthy.
	Tune func(instance int, cfg Config) Config
}

// Cluster runs N independent Scheduler instances behind a consistent-hash
// router — single-process "cluster mode". Each instance owns the full
// scheduler stack (queue, executors, scan pool, session/calibration
// caches, fault injector, metrics plane); the router consistent-hashes
// each job's victim key to an instance, proxies Submit/Wait/Drain, and
// rolls per-instance stats and metrics up into one cluster view.
// Placement never changes results: a job is a pure function of its spec,
// so cluster output is bit-identical to the single-scheduler path — the
// cluster parity suite enforces it.
//
// Admission control is per-instance: an instance at its shed watermark or
// with a full queue rejects its own submissions (429 upstream) while the
// other instances keep accepting — an overloaded or faulty shard degrades
// its key range, never the cluster.
type Cluster struct {
	cfg   ClusterConfig
	insts []*Scheduler
	ring  *ring
	reg   *obs.Registry

	// routed counts accepted submissions per instance (router-side view;
	// rejected submissions are counted by the owning instance's store).
	routed []atomic.Uint64
	// shuffleSeq walks the shuffled round-robin permutation (RouteShuffle).
	shuffleSeq  atomic.Uint64
	shufflePerm []int
}

// instanceFaultSeed splits the cluster fault seed into instance i's
// injector seed (splitmix64 finalizer over the instance index): distinct
// per instance, a pure function of (base, i), and never the base itself —
// so instance fault schedules are mutually independent and reproducible.
func instanceFaultSeed(base uint64, i int) uint64 {
	z := base + (uint64(i)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewCluster starts a scheduler cluster with cfg.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	if cfg.Route == "" {
		cfg.Route = RouteHash
	}
	n := cfg.Instances
	c := &Cluster{
		cfg:    cfg,
		insts:  make([]*Scheduler, n),
		ring:   newRing(n, cfg.HashReplicas),
		routed: make([]atomic.Uint64, n),
	}
	if cfg.Route == RouteShuffle {
		c.shufflePerm = rng.New(cfg.RouteSeed ^ 0x5c057e12).Perm(n)
	}
	for i := 0; i < n; i++ {
		ic := cfg.Config
		// Globally unique job IDs with an O(1) id→instance mapping:
		// instance i issues i + N, i + 2N, ... so id mod N == i.
		ic.idOffset = uint64(i)
		ic.idStride = uint64(n)
		ic.Fault.Seed = instanceFaultSeed(cfg.Config.Fault.Seed, i)
		if cfg.Tune != nil {
			ic = cfg.Tune(i, ic)
			// Re-pin the ID shape: routing by id mod N must survive any
			// per-instance tuning.
			ic.idOffset = uint64(i)
			ic.idStride = uint64(n)
		}
		c.insts[i] = New(ic)
	}
	c.reg = newClusterRegistry(c)
	return c
}

// Instances returns the cluster size.
func (c *Cluster) Instances() int { return len(c.insts) }

// Instance exposes one scheduler instance (tests and the rollup).
func (c *Cluster) Instance(i int) *Scheduler { return c.insts[i] }

// Metrics exposes the cluster's rolled-up metric registry: per-instance
// labeled series (queue depth, job counters, cache hit/miss/evict,
// faults, latency histograms) plus the router's own counters. Instance
// registries remain scrapeable individually via Instance(i).Metrics().
func (c *Cluster) Metrics() *obs.Registry { return c.reg }

// RouteSpec reports which instance a spec routes to (after normalization,
// since defaults are part of the victim key). The chaos and parity suites
// use it to steer keys at specific instances.
func (c *Cluster) RouteSpec(spec JobSpec) (int, error) {
	norm, err := spec.normalized()
	if err != nil {
		return 0, err
	}
	if c.cfg.Route == RouteShuffle {
		return -1, fmt.Errorf("service: shuffle routing has no stable placement")
	}
	return c.ring.lookup(norm.routingKey()), nil
}

// instanceFor maps a cluster job ID back to its owning instance.
func (c *Cluster) instanceFor(id uint64) *Scheduler {
	return c.insts[int(id%uint64(len(c.insts)))]
}

// Submit validates, routes and enqueues a job on its owning instance. The
// spec is normalized *before* routing — defaults are part of the victim
// key, so an empty-CPU spec and its filled-in twin must land on the same
// instance. Backpressure is per-instance: the owning instance's queue or
// watermark rejects, the rest of the cluster is untouched.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	var inst int
	if c.cfg.Route == RouteShuffle {
		inst = c.shufflePerm[int(c.shuffleSeq.Add(1)-1)%len(c.shufflePerm)]
	} else {
		inst = c.ring.lookup(norm.routingKey())
	}
	j, err := c.insts[inst].Submit(norm)
	if err != nil {
		return nil, err
	}
	c.routed[inst].Add(1)
	return j, nil
}

// Wait blocks until the job finishes and returns its result.
func (c *Cluster) Wait(j *Job) (*Result, error) { return c.instanceFor(j.ID).Wait(j) }

// WaitCtx is Wait bounded by a context.
func (c *Cluster) WaitCtx(ctx context.Context, j *Job) (*Result, error) {
	return c.instanceFor(j.ID).WaitCtx(ctx, j)
}

// Trace returns a sampled job's lifecycle trace from its owning instance.
func (c *Cluster) Trace(id uint64) (*obs.Trace, bool) { return c.instanceFor(id).Trace(id) }

// JobSnapshot returns a queryable job's public state from its owning
// instance.
func (c *Cluster) JobSnapshot(id uint64) (Job, bool) { return c.instanceFor(id).JobSnapshot(id) }

// JobDone returns the completion channel of a retained job.
func (c *Cluster) JobDone(id uint64) (<-chan struct{}, bool) { return c.instanceFor(id).JobDone(id) }

// Drain drains every instance concurrently and returns when all executors
// have stopped — the cluster's graceful-shutdown path. Safe to call more
// than once.
func (c *Cluster) Drain() {
	var wg sync.WaitGroup
	for _, s := range c.insts {
		wg.Add(1)
		go func(s *Scheduler) { defer wg.Done(); s.Drain() }(s)
	}
	wg.Wait()
}

// InstanceStats is one instance's row in the cluster rollup.
type InstanceStats struct {
	Instance int `json:"instance"`
	// Routed counts submissions the router accepted onto this instance.
	Routed uint64 `json:"routed"`
	// QueueDepth is the instance's current bounded-queue occupancy.
	QueueDepth int `json:"queue_depth"`
	// Stats is the instance's own aggregate view (cache hit/miss counters
	// included), exactly what the instance would serve standalone.
	Stats Stats `json:"stats"`
}

// ClusterStats is the cluster-wide /stats payload: the merged aggregate
// (counters summed across instances, latency quantiles from the merged
// histogram — obs.Histogram.AddFrom — and jobs/s over the global
// first-submit → last-finish span) plus the per-instance breakdown that
// makes the affinity win, and any per-instance degradation, visible.
type ClusterStats struct {
	Stats
	Instances []InstanceStats `json:"instances"`
}

// Stats computes the cluster rollup.
func (c *Cluster) Stats() ClusterStats {
	var out ClusterStats
	lat := &obs.Histogram{}
	var first, last time.Time
	var finished, correct, completed int
	for i, s := range c.insts {
		agg := s.store.aggregate()
		ist := s.Stats()
		out.Instances = append(out.Instances, InstanceStats{
			Instance:   i,
			Routed:     c.routed[i].Load(),
			QueueDepth: s.QueueDepth(),
			Stats:      ist,
		})
		out.Submitted += agg.submitted
		out.Completed += agg.completed
		out.Failed += agg.failed
		out.Rejected += agg.rejected
		out.Retries += agg.retries
		out.Shed += agg.shedded
		out.Evicted += agg.evicted
		out.Retained += agg.retained
		out.StreamDropped += agg.dropped
		out.SimAttackerSec += agg.simSec
		out.Sessions += ist.Sessions
		out.SessionHits += ist.SessionHits
		out.CalibrationsReused += ist.CalibrationsReused
		out.Quarantined += ist.Quarantined
		out.SessionsEvicted += ist.SessionsEvicted
		out.PoolReplicas += ist.PoolReplicas
		out.FaultsInjected += ist.FaultsInjected
		correct += agg.correct
		completed += agg.completed
		finished += agg.completed + agg.failed
		if !agg.firstSub.IsZero() && (first.IsZero() || agg.firstSub.Before(first)) {
			first = agg.firstSub
		}
		if agg.lastDone.After(last) {
			last = agg.lastDone
		}
		lat.AddFrom(s.store.latencyHistogram())
	}
	if completed > 0 {
		out.SuccessRate = float64(correct) / float64(completed)
	}
	if finished > 0 && last.After(first) {
		out.JobsPerSec = float64(finished) / last.Sub(first).Seconds()
	}
	out.P50Ms = float64(lat.Quantile(0.50)) / 1e6
	out.P99Ms = float64(lat.Quantile(0.99)) / 1e6
	return out
}

// LoadStats returns the merged cluster-wide aggregate (the Runner surface
// the load generator reports from).
func (c *Cluster) LoadStats() Stats { return c.Stats().Stats }

// KindLatencies merges the per-kind latency histograms across instances
// (AddFrom into a scratch histogram per kind; instance histograms keep
// recording).
func (c *Cluster) KindLatencies() map[Kind]KindLatency {
	out := make(map[Kind]KindLatency)
	for _, k := range Kinds() {
		merged := &obs.Histogram{}
		for _, s := range c.insts {
			merged.AddFrom(s.store.kindLatencyHistogram(k))
		}
		if n := merged.Count(); n > 0 {
			out[k] = KindLatency{
				Jobs:  n,
				P50Ms: float64(merged.Quantile(0.50)) / 1e6,
				P99Ms: float64(merged.Quantile(0.99)) / 1e6,
			}
		}
	}
	return out
}

// statsPayload serves ClusterStats on GET /stats.
func (c *Cluster) statsPayload() any { return c.Stats() }

// newClusterRegistry builds the cluster-wide metric rollup: every series
// an operator needs to see the affinity win (and any per-instance
// degradation) carries an `instance` label, read from the owning
// instance's state at scrape time. Latency histograms are registered by
// pointer per instance — Prometheus aggregates across the label; the
// in-process merged view lives in ClusterStats.
func newClusterRegistry(c *Cluster) *obs.Registry {
	r := obs.NewRegistry()
	r.GaugeFunc("scand_cluster_instances", "Scheduler instances behind the router.",
		func() float64 { return float64(len(c.insts)) })
	for i, s := range c.insts {
		i, s := i, s
		il := obs.L("instance", strconv.Itoa(i))
		st := s.store
		r.CounterFunc("scand_router_routed_total", "Submissions the router accepted onto each instance.",
			func() float64 { return float64(c.routed[i].Load()) }, il)
		r.GaugeFunc("scand_queue_depth", "Jobs waiting on each instance's bounded queue.",
			func() float64 { return float64(s.QueueDepth()) }, il)
		r.CounterFunc("scand_jobs_submitted_total", "Jobs accepted per instance.",
			st.counterView(func(st *Store) int { return st.submitted }), il)
		r.CounterFunc("scand_jobs_completed_total", "Jobs finished successfully per instance.",
			st.counterView(func(st *Store) int { return st.completed }), il)
		r.CounterFunc("scand_jobs_failed_total", "Jobs finished in failure per instance.",
			st.counterView(func(st *Store) int { return st.failed }), il)
		r.CounterFunc("scand_jobs_rejected_total", "Submissions rejected per instance (queue full, shed, draining).",
			st.counterView(func(st *Store) int { return st.rejected }), il)
		r.CounterFunc("scand_job_retries_total", "Transient-failure retries per instance.",
			st.counterView(func(st *Store) int { return st.retries }), il)
		cache := s.cache
		r.CounterFunc("scand_session_hits_total", "Jobs served from a parked cached session, per instance.",
			func() float64 { return float64(cache.snapshot().SessionHits) }, il)
		r.CounterFunc("scand_sessions_built_total", "Session-cache misses (full boots), per instance.",
			func() float64 { return float64(cache.snapshot().SessionMisses) }, il)
		r.CounterFunc("scand_calibrations_reused_total", "Calibration-cache hits per instance.",
			func() float64 { return float64(cache.snapshot().CalibrationHits) }, il)
		r.CounterFunc("scand_calibrations_run_total", "Calibration-cache misses per instance.",
			func() float64 { return float64(cache.snapshot().CalibrationMisses) }, il)
		r.CounterFunc("scand_sessions_quarantined_total", "Sessions condemned and dropped, per instance.",
			func() float64 { return float64(cache.snapshot().Quarantined) }, il)
		r.CounterFunc("scand_sessions_evicted_total", "Healthy idle sessions dropped at the cap, per instance.",
			func() float64 { return float64(cache.snapshot().Evicted) }, il)
		r.CounterFunc("scand_faults_injected_total", "Deterministic faults fired per instance.",
			func() float64 { return float64(s.inj.TotalFired()) }, il)
		r.RegisterHistogram("scand_job_latency_seconds",
			"End-to-end job latency per instance.", st.latencyHistogram(), il)
	}
	return r
}
