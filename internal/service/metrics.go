package service

import (
	"repro/internal/fault"
	"repro/internal/obs"
)

// metricsPlane wires the scheduler's subsystems into one obs.Registry —
// the GET /metrics surface. Two kinds of series live here:
//
//   - Views (CounterFunc/GaugeFunc) read existing state at scrape time:
//     the store's aggregates, the session cache's reuse counters, the
//     fault injector's per-site fired counts, the queue depth. No double
//     bookkeeping — the executors' hot path is untouched by their
//     existence.
//
//   - Stage histograms (queue wait, session acquire, restore, execute) and
//     the store's end-to-end latency histograms are recorded inline: one
//     atomic add per observation, no allocation, cheap enough to leave on
//     under full load.
type metricsPlane struct {
	reg *obs.Registry

	// Per-stage host-latency histograms (nanosecond samples).
	queueWait *obs.Histogram
	acquire   *obs.Histogram
	restore   *obs.Histogram
	execute   *obs.Histogram
}

// newMetricsPlane builds the registry over a fully constructed scheduler
// (store, cache, injector, queue and recorder all exist).
func newMetricsPlane(s *Scheduler) *metricsPlane {
	r := obs.NewRegistry()
	m := &metricsPlane{reg: r}

	st := s.store
	r.CounterFunc("scand_jobs_submitted_total", "Jobs accepted onto the queue.",
		st.counterView(func(st *Store) int { return st.submitted }))
	r.CounterFunc("scand_jobs_completed_total", "Jobs finished successfully.",
		st.counterView(func(st *Store) int { return st.completed }))
	r.CounterFunc("scand_jobs_failed_total", "Jobs finished in failure.",
		st.counterView(func(st *Store) int { return st.failed }))
	r.CounterFunc("scand_jobs_rejected_total", "Submissions rejected (queue full, shed, draining).",
		st.counterView(func(st *Store) int { return st.rejected }))
	r.CounterFunc("scand_jobs_shed_total", "Submissions shed by admission control.",
		st.counterView(func(st *Store) int { return st.shedded }))
	r.CounterFunc("scand_job_retries_total", "Transient-failure retries scheduled.",
		st.counterView(func(st *Store) int { return st.retries }))
	r.CounterFunc("scand_jobs_evicted_total", "Finished jobs dropped by the retention policy.",
		st.counterView(func(st *Store) int { return st.evicted }))
	r.GaugeFunc("scand_jobs_retained", "Jobs currently queryable in the store.",
		st.counterView(func(st *Store) int { return len(st.jobs) }))
	r.GaugeFunc("scand_queue_depth", "Jobs waiting on the bounded queue.",
		func() float64 { return float64(len(s.queue)) })

	for _, k := range Kinds() {
		k := k
		r.CounterFunc("scand_jobs_finished_total", "Jobs finished (done or failed) per kind.",
			func() float64 { return float64(st.kindFinished(k)) }, obs.L("kind", string(k)))
		r.RegisterHistogram("scand_job_latency_seconds",
			"End-to-end job latency (submit to finish) per kind.",
			st.kindLatencyHistogram(k), obs.L("kind", string(k)))
	}
	for _, d := range Defenses() {
		d := d
		r.CounterFunc("scand_defense_evals_total", "Completed defense evaluations per defense.",
			func() float64 { return float64(st.defenseCompleted(d)) }, obs.L("defense", d))
	}

	cache := s.cache
	r.CounterFunc("scand_sessions_built_total", "Victim sessions booted and calibrated (session-cache misses).",
		func() float64 { return float64(cache.snapshot().SessionMisses) })
	r.CounterFunc("scand_session_hits_total", "Jobs served from a parked cached session.",
		func() float64 { return float64(cache.snapshot().SessionHits) })
	r.CounterFunc("scand_calibrations_reused_total", "Session boots that replayed a cached calibration (calibration-cache hits).",
		func() float64 { return float64(cache.snapshot().CalibrationHits) })
	r.CounterFunc("scand_calibrations_run_total", "Session boots that ran Calibrate from scratch (calibration-cache misses).",
		func() float64 { return float64(cache.snapshot().CalibrationMisses) })
	r.CounterFunc("scand_sessions_quarantined_total", "Sessions condemned and dropped.",
		func() float64 { return float64(cache.snapshot().Quarantined) })
	r.CounterFunc("scand_sessions_evicted_total", "Healthy idle sessions dropped at the cache cap.",
		func() float64 { return float64(cache.snapshot().Evicted) })

	for _, site := range fault.Sites() {
		site := site
		r.CounterFunc("scand_faults_injected_total", "Deterministic faults fired per injection site.",
			func() float64 { return float64(s.inj.Fired(site)) }, obs.L("site", site.String()))
	}

	r.GaugeFunc("scand_pool_replicas", "Replicas in the shared scan-engine pool.",
		func() float64 {
			if s.pool == nil {
				return 0
			}
			return float64(s.pool.Replicas())
		})
	r.CounterFunc("scand_traces_started_total", "Job lifecycle traces begun by the recorder.",
		func() float64 { return float64(s.rec.Started()) })
	r.GaugeFunc("scand_traces_retained", "Traces currently held in the bounded ring.",
		func() float64 { return float64(s.rec.Len()) })

	m.queueWait = r.Histogram("scand_stage_seconds", "Host wall-clock per lifecycle stage.", obs.L("stage", "queue"))
	m.acquire = r.Histogram("scand_stage_seconds", "", obs.L("stage", "acquire"))
	m.restore = r.Histogram("scand_stage_seconds", "", obs.L("stage", "restore"))
	m.execute = r.Histogram("scand_stage_seconds", "", obs.L("stage", "execute"))
	return m
}
