package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// DefaultMix is the standard mixed-scenario workload of the load
// generator: every attack family, both vendors, bare metal and SGX — the
// scenario-diversity axis the service layer exists to multiplex. Seeds are
// assigned per submission (base seed + job index), so a load run sweeps
// victims, not just repeats one.
func DefaultMix() []JobSpec {
	return []JobSpec{
		{Kind: KindKernelBase, CPU: "12400F"},
		{Kind: KindKernelBase, CPU: "5600X"}, // AMD term-level sweep
		{Kind: KindKPTI, CPU: "12400F"},
		{Kind: KindModules, CPU: "1065G7"},
		{Kind: KindUserScan, CPU: "1065G7"},
		{Kind: KindUserScan, CPU: "1065G7", SGX: true},
		{Kind: KindKernelBase, CPU: "9900"}, // Coffee Lake victim
		{Kind: KindCloud, Provider: "gce"},
		// Temporal kinds: stateful sessions whose victim timeline advances
		// one window per job (repeat seeds continue the same timeline).
		{Kind: KindBehaviorSpy, CPU: "1065G7", DurationSec: 10},
		{Kind: KindAppFingerprint, CPU: "1065G7", App: "fps-game"},
		// Defense evaluations: countermeasure scenarios as first-class jobs
		// (the rerand entry shares its undefended boot with kernelbase jobs
		// of the same CPU/seed; flare and fgkaslr boot defended victims
		// with their own sessions and calibrations).
		{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseFLARE},
		{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseFGKASLR},
		{Kind: KindDefenseEval, CPU: "1065G7", Defense: DefenseRerand, RerandPeriodsSec: []float64{0.0001, 0.01, 1}},
	}
}

// DefenseMatrix is the vendor × defense scenario fan-out: every §V
// countermeasure evaluated on every preset whose probe semantics support
// the evaluation's attacks. FLARE and FGKASLR rest on the Intel TLB-probe
// path (P4); AMD parts take the re-randomization row, whose base recovery
// uses the P3 term-level sweep. Seeds are assigned per submission, like
// DefaultMix.
func DefenseMatrix() []JobSpec {
	var specs []JobSpec
	for _, cpu := range []string{"12400F", "1065G7", "9900"} {
		specs = append(specs,
			JobSpec{Kind: KindDefenseEval, CPU: cpu, Defense: DefenseFLARE},
			JobSpec{Kind: KindDefenseEval, CPU: cpu, Defense: DefenseFGKASLR},
			JobSpec{Kind: KindDefenseEval, CPU: cpu, Defense: DefenseRerand},
		)
	}
	specs = append(specs,
		JobSpec{Kind: KindDefenseEval, CPU: "5600X", Defense: DefenseRerand,
			RerandPeriodsSec: []float64{0.0001, 0.001, 0.01, 0.1, 1}},
		JobSpec{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseRerand,
			RerandPeriodsSec: []float64{0.0001, 0.001, 0.01, 0.1, 1}},
		JobSpec{Kind: KindDefenseEval, Defense: DefenseMaskedOp},
	)
	return specs
}

// LoadConfig tunes a load-generator run.
type LoadConfig struct {
	// Jobs is the total number of submissions (default 64).
	Jobs int
	// Concurrency is the number of concurrent submitters (default 8) —
	// each keeps one job in flight, resubmitting on queue-full
	// backpressure.
	Concurrency int
	// Seed is the base victim seed (default 1).
	Seed uint64
	// Victims is the size of the victim pool the run cycles through: job i
	// runs at Seed + i mod Victims (default 16). Smaller pools mean more
	// repeat scans — more session and calibration reuse; Victims >= Jobs
	// makes every job a fresh victim.
	Victims int
	// Mix is the scenario rotation (default DefaultMix).
	Mix []JobSpec
	// WaitTimeout bounds how long a submitter waits on one accepted job
	// (default 2m — above the scheduler's own job deadline, so the
	// scheduler's watchdog fails a wedged job before the load generator
	// gives up on it). A timed-out wait is counted and the submitter moves
	// on; it never hangs the run.
	WaitTimeout time.Duration
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	WallSec     float64 `json:"wall_sec"`
	Retries     int     `json:"retries"` // backpressure resubmissions (queue full / shed)
	// SubmitErrors counts submissions the scheduler rejected permanently
	// (invalid spec); those jobs are skipped, not retried.
	SubmitErrors int `json:"submit_errors,omitempty"`
	// WaitTimeouts counts accepted jobs whose result wait exceeded
	// LoadConfig.WaitTimeout (the submitter moved on; the job may still
	// finish).
	WaitTimeouts int   `json:"wait_timeouts,omitempty"`
	Stats        Stats `json:"stats"`
	// KindLatency breaks the run's end-to-end latency down per job kind
	// (bucketed p50/p99 from the store's per-kind histograms).
	KindLatency map[Kind]KindLatency `json:"kind_latency,omitempty"`
}

// RunLoad hammers the scheduler with cfg.Jobs submissions drawn from the
// mix and waits for all of them: the sustained-traffic harness behind
// `scand -load` and the race/throughput suite. Queue-full rejections are
// retried after a short backoff, so the bounded queue is continuously
// saturated without ever blocking inside Submit.
func RunLoad(s *Scheduler, cfg LoadConfig) LoadReport {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 64
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Victims <= 0 {
		cfg.Victims = 16
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = 2 * time.Minute
	}

	start := time.Now()
	var (
		next         int
		retries      int
		subErrors    int
		waitTimeouts int
		mu           sync.Mutex
		wg           sync.WaitGroup
	)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				if i >= cfg.Jobs {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()
				spec := cfg.Mix[i%len(cfg.Mix)]
				spec.Seed = cfg.Seed + uint64(i%cfg.Victims)
				for {
					j, err := s.Submit(spec)
					if err == nil {
						// Bounded wait: a job whose executor died must not
						// hang the submitter — WaitCtx gives up after the
						// timeout and the run keeps flowing.
						ctx, cancel := context.WithTimeout(context.Background(), cfg.WaitTimeout)
						_, werr := s.WaitCtx(ctx, j)
						cancel()
						if errors.Is(werr, context.DeadlineExceeded) {
							mu.Lock()
							waitTimeouts++
							mu.Unlock()
						}
						break
					}
					if errors.Is(err, ErrDraining) {
						// Draining is permanent for the whole run, not just
						// this job: stop submitting instead of retrying
						// forever against a scheduler that will never
						// accept again.
						return
					}
					if Classify(err) == ClassPermanent {
						// Permanent (validation) errors: retrying would
						// livelock. Skip the job and keep the run going.
						mu.Lock()
						subErrors++
						mu.Unlock()
						break
					}
					// Transient backpressure (queue full, shed): resubmit
					// after a short pause.
					mu.Lock()
					retries++
					mu.Unlock()
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	return LoadReport{
		Jobs:         cfg.Jobs,
		Concurrency:  cfg.Concurrency,
		WallSec:      time.Since(start).Seconds(),
		Retries:      retries,
		SubmitErrors: subErrors,
		WaitTimeouts: waitTimeouts,
		Stats:        s.Stats(),
		KindLatency:  s.Store().KindLatencies(),
	}
}

// benchEntry mirrors the newline-delimited JSON schema scripts/bench.sh
// appends to BENCH_scan.json, so load-run throughput lands in the same
// trajectory file the probe benchmarks use (bench_compare skips entries
// with disjoint benchmark sets).
type benchEntry struct {
	Date       string           `json:"date"`
	Pattern    string           `json:"pattern"`
	NumCPU     int              `json:"num_cpu"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Benchmarks []benchBenchmark `json:"benchmarks"`
}

type benchBenchmark struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	JobsPerSec float64 `json:"jobs/s"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	SimSec     float64 `json:"sim_attacker_s"`
	Sessions   int     `json:"sessions"`
	CalReused  int     `json:"calibrations_reused"`
	// KindLatencyMs is the per-kind p50/p99 breakdown of the run (load
	// entries only), keyed by kind name.
	KindLatencyMs map[string]KindLatency `json:"kind_latency_ms,omitempty"`
}

// AppendBench appends the load report as one BENCH_scan.json entry.
func AppendBench(path string, r LoadReport) error {
	var kindLat map[string]KindLatency
	if len(r.KindLatency) > 0 {
		kindLat = make(map[string]KindLatency, len(r.KindLatency))
		for k, v := range r.KindLatency {
			kindLat[string(k)] = v
		}
	}
	e := benchEntry{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Pattern:    "scand-load",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: []benchBenchmark{{
			Name:          fmt.Sprintf("LoadMixed/jobs=%d/conc=%d", r.Jobs, r.Concurrency),
			Iterations:    r.Jobs,
			JobsPerSec:    r.Stats.JobsPerSec,
			P50Ms:         r.Stats.P50Ms,
			P99Ms:         r.Stats.P99Ms,
			SimSec:        r.Stats.SimAttackerSec,
			Sessions:      r.Stats.Sessions,
			CalReused:     r.Stats.CalibrationsReused,
			KindLatencyMs: kindLat,
		}},
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}
