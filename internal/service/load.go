package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// Runner is the submission surface the load generator drives. Both
// *Scheduler and *Cluster implement it, so one RunLoad exercises daemon
// mode and cluster mode identically — the cluster row in BENCH_scan.json
// is produced by the same harness as the single-scheduler row.
type Runner interface {
	Submit(spec JobSpec) (*Job, error)
	WaitCtx(ctx context.Context, j *Job) (*Result, error)
	LoadStats() Stats
	KindLatencies() map[Kind]KindLatency
}

// Victim-distribution names for LoadConfig.Dist.
const (
	// DistUniform cycles the victim pool round-robin (job i → victim
	// i mod Victims): every victim equally hot.
	DistUniform = "uniform"
	// DistZipfian draws victims from a seeded zipf law over the pool
	// (exponent ≈ 1.07): a few hot victims dominate the run — the skewed
	// workload real scan traffic looks like, and the one where
	// victim-key-affinity routing pays.
	DistZipfian = "zipfian"
)

// DefaultMix is the standard mixed-scenario workload of the load
// generator: every attack family, both vendors, bare metal and SGX — the
// scenario-diversity axis the service layer exists to multiplex. Seeds are
// assigned per submission (base seed + job index), so a load run sweeps
// victims, not just repeats one.
func DefaultMix() []JobSpec {
	return []JobSpec{
		{Kind: KindKernelBase, CPU: "12400F"},
		{Kind: KindKernelBase, CPU: "5600X"}, // AMD term-level sweep
		{Kind: KindKPTI, CPU: "12400F"},
		{Kind: KindModules, CPU: "1065G7"},
		{Kind: KindUserScan, CPU: "1065G7"},
		{Kind: KindUserScan, CPU: "1065G7", SGX: true},
		{Kind: KindKernelBase, CPU: "9900"}, // Coffee Lake victim
		{Kind: KindCloud, Provider: "gce"},
		// Temporal kinds: stateful sessions whose victim timeline advances
		// one window per job (repeat seeds continue the same timeline).
		{Kind: KindBehaviorSpy, CPU: "1065G7", DurationSec: 10},
		{Kind: KindAppFingerprint, CPU: "1065G7", App: "fps-game"},
		// Defense evaluations: countermeasure scenarios as first-class jobs
		// (the rerand entry shares its undefended boot with kernelbase jobs
		// of the same CPU/seed; flare and fgkaslr boot defended victims
		// with their own sessions and calibrations).
		{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseFLARE},
		{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseFGKASLR},
		{Kind: KindDefenseEval, CPU: "1065G7", Defense: DefenseRerand, RerandPeriodsSec: []float64{0.0001, 0.01, 1}},
	}
}

// DefenseMatrix is the vendor × defense scenario fan-out: every §V
// countermeasure evaluated on every preset whose probe semantics support
// the evaluation's attacks. FLARE and FGKASLR rest on the Intel TLB-probe
// path (P4); AMD parts take the re-randomization row, whose base recovery
// uses the P3 term-level sweep. Seeds are assigned per submission, like
// DefaultMix.
func DefenseMatrix() []JobSpec {
	var specs []JobSpec
	for _, cpu := range []string{"12400F", "1065G7", "9900"} {
		specs = append(specs,
			JobSpec{Kind: KindDefenseEval, CPU: cpu, Defense: DefenseFLARE},
			JobSpec{Kind: KindDefenseEval, CPU: cpu, Defense: DefenseFGKASLR},
			JobSpec{Kind: KindDefenseEval, CPU: cpu, Defense: DefenseRerand},
		)
	}
	specs = append(specs,
		JobSpec{Kind: KindDefenseEval, CPU: "5600X", Defense: DefenseRerand,
			RerandPeriodsSec: []float64{0.0001, 0.001, 0.01, 0.1, 1}},
		JobSpec{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseRerand,
			RerandPeriodsSec: []float64{0.0001, 0.001, 0.01, 0.1, 1}},
		JobSpec{Kind: KindDefenseEval, Defense: DefenseMaskedOp},
	)
	return specs
}

// LoadConfig tunes a load-generator run.
type LoadConfig struct {
	// Jobs is the total number of submissions (default 64).
	Jobs int
	// Concurrency is the number of concurrent submitters (default 8) —
	// each keeps one job in flight, resubmitting on queue-full
	// backpressure.
	Concurrency int
	// Seed is the base victim seed (default 1).
	Seed uint64
	// Victims is the size of the victim pool the run cycles through: job i
	// runs at Seed + i mod Victims (default 16). Smaller pools mean more
	// repeat scans — more session and calibration reuse; Victims >= Jobs
	// makes every job a fresh victim.
	Victims int
	// Dist picks how jobs draw from the victim pool: DistUniform
	// (default) or DistZipfian. The whole job→victim assignment is
	// precomputed from (Seed, Jobs, Victims, Dist) before any submitter
	// starts, so submitter interleaving can reorder submissions but never
	// change which victim a job scans.
	Dist string
	// Mix is the scenario rotation (default DefaultMix).
	Mix []JobSpec
	// WaitTimeout bounds how long a submitter waits on one accepted job
	// (default 2m — above the scheduler's own job deadline, so the
	// scheduler's watchdog fails a wedged job before the load generator
	// gives up on it). A timed-out wait is counted and the submitter moves
	// on; it never hangs the run.
	WaitTimeout time.Duration
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	Dist        string  `json:"dist"`
	// Cluster and Route describe the runner when it was a Cluster
	// (instance count and routing policy); zero/empty for a single
	// scheduler. Set by the caller, recorded in the bench entry.
	Cluster int     `json:"cluster,omitempty"`
	Route   string  `json:"route,omitempty"`
	WallSec float64 `json:"wall_sec"`
	Retries     int     `json:"retries"` // backpressure resubmissions (queue full / shed)
	// SubmitErrors counts submissions the scheduler rejected permanently
	// (invalid spec); those jobs are skipped, not retried.
	SubmitErrors int `json:"submit_errors,omitempty"`
	// WaitTimeouts counts accepted jobs whose result wait exceeded
	// LoadConfig.WaitTimeout (the submitter moved on; the job may still
	// finish).
	WaitTimeouts int   `json:"wait_timeouts,omitempty"`
	Stats        Stats `json:"stats"`
	// KindLatency breaks the run's end-to-end latency down per job kind
	// (bucketed p50/p99 from the store's per-kind histograms).
	KindLatency map[Kind]KindLatency `json:"kind_latency,omitempty"`
}

// RunLoad hammers the scheduler with cfg.Jobs submissions drawn from the
// mix and waits for all of them: the sustained-traffic harness behind
// `scand -load` and the race/throughput suite. Queue-full rejections are
// retried after a short backoff, so the bounded queue is continuously
// saturated without ever blocking inside Submit.
func RunLoad(s Runner, cfg LoadConfig) LoadReport {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 64
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Victims <= 0 {
		cfg.Victims = 16
	}
	if cfg.Dist == "" {
		cfg.Dist = DistUniform
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = 2 * time.Minute
	}
	victimOf := victimAssignment(cfg)

	start := time.Now()
	var (
		next         int
		retries      int
		subErrors    int
		waitTimeouts int
		mu           sync.Mutex
		wg           sync.WaitGroup
	)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				if i >= cfg.Jobs {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()
				spec := cfg.Mix[i%len(cfg.Mix)]
				spec.Seed = cfg.Seed + uint64(victimOf[i])
				for {
					j, err := s.Submit(spec)
					if err == nil {
						// Bounded wait: a job whose executor died must not
						// hang the submitter — WaitCtx gives up after the
						// timeout and the run keeps flowing.
						ctx, cancel := context.WithTimeout(context.Background(), cfg.WaitTimeout)
						_, werr := s.WaitCtx(ctx, j)
						cancel()
						if errors.Is(werr, context.DeadlineExceeded) {
							mu.Lock()
							waitTimeouts++
							mu.Unlock()
						}
						break
					}
					if errors.Is(err, ErrDraining) {
						// Draining is permanent for the whole run, not just
						// this job: stop submitting instead of retrying
						// forever against a scheduler that will never
						// accept again.
						return
					}
					if Classify(err) == ClassPermanent {
						// Permanent (validation) errors: retrying would
						// livelock. Skip the job and keep the run going.
						mu.Lock()
						subErrors++
						mu.Unlock()
						break
					}
					// Transient backpressure (queue full, shed): resubmit
					// after a short pause.
					mu.Lock()
					retries++
					mu.Unlock()
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	return LoadReport{
		Jobs:         cfg.Jobs,
		Concurrency:  cfg.Concurrency,
		Dist:         cfg.Dist,
		WallSec:      time.Since(start).Seconds(),
		Retries:      retries,
		SubmitErrors: subErrors,
		WaitTimeouts: waitTimeouts,
		Stats:        s.LoadStats(),
		KindLatency:  s.KindLatencies(),
	}
}

// victimAssignment precomputes job index → victim pool index before any
// submitter starts: the assignment is a pure function of (Seed, Jobs,
// Victims, Dist), so submitter goroutine interleaving can reorder
// submissions but never change which victim a job scans — the property
// the determinism suite leans on.
func victimAssignment(cfg LoadConfig) []int {
	out := make([]int, cfg.Jobs)
	if cfg.Dist != DistZipfian {
		for i := range out {
			out[i] = i % cfg.Victims
		}
		return out
	}
	// Zipf CDF over victim ranks: weight(rank r) = 1/(r+1)^s. Rank 0 is
	// the hottest victim; s ≈ 1.07 matches the classic web-traffic skew.
	const s = 1.07
	cdf := make([]float64, cfg.Victims)
	var total float64
	for r := range cdf {
		total += 1 / math.Pow(float64(r+1), s)
		cdf[r] = total
	}
	src := rng.New(cfg.Seed ^ 0x21bfa90d)
	for i := range out {
		u := src.Float64() * total
		out[i] = sort.SearchFloat64s(cdf, u)
	}
	return out
}

// benchEntry mirrors the newline-delimited JSON schema scripts/bench.sh
// appends to BENCH_scan.json, so load-run throughput lands in the same
// trajectory file the probe benchmarks use (bench_compare skips entries
// with disjoint benchmark sets).
type benchEntry struct {
	Date       string           `json:"date"`
	Pattern    string           `json:"pattern"`
	NumCPU     int              `json:"num_cpu"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Benchmarks []benchBenchmark `json:"benchmarks"`
}

type benchBenchmark struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	JobsPerSec float64 `json:"jobs/s"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	SimSec     float64 `json:"sim_attacker_s"`
	Sessions   int     `json:"sessions"`
	CalReused  int     `json:"calibrations_reused"`
	// SessionHits / HitRate record cache affinity for the run: HitRate is
	// (session hits + calibration hits) / session lookups — the metric
	// the cluster's hash routing is supposed to move and bench_compare
	// watches for regressions.
	SessionHits int     `json:"session_hits"`
	HitRate     float64 `json:"session_hit_rate"`
	// Dist records the victim distribution the run drew from.
	Dist string `json:"dist,omitempty"`
	// KindLatencyMs is the per-kind p50/p99 breakdown of the run (load
	// entries only), keyed by kind name.
	KindLatencyMs map[string]KindLatency `json:"kind_latency_ms,omitempty"`
}

// AppendBench appends the load report as one BENCH_scan.json entry.
// Single-scheduler runs land as LoadMixed; cluster runs land as
// LoadCluster with the instance count and routing policy in the name, so
// the trajectory keeps single-box and cluster rows as distinct series.
func AppendBench(path string, r LoadReport) error {
	var kindLat map[string]KindLatency
	if len(r.KindLatency) > 0 {
		kindLat = make(map[string]KindLatency, len(r.KindLatency))
		for k, v := range r.KindLatency {
			kindLat[string(k)] = v
		}
	}
	name := fmt.Sprintf("LoadMixed/jobs=%d/conc=%d", r.Jobs, r.Concurrency)
	if r.Cluster > 1 {
		name = fmt.Sprintf("LoadCluster/jobs=%d/conc=%d/n=%d/route=%s",
			r.Jobs, r.Concurrency, r.Cluster, r.Route)
	}
	e := benchEntry{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Pattern:    "scand-load",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: []benchBenchmark{{
			Name:          name,
			Iterations:    r.Jobs,
			JobsPerSec:    r.Stats.JobsPerSec,
			P50Ms:         r.Stats.P50Ms,
			P99Ms:         r.Stats.P99Ms,
			SimSec:        r.Stats.SimAttackerSec,
			Sessions:      r.Stats.Sessions,
			CalReused:     r.Stats.CalibrationsReused,
			SessionHits:   r.Stats.SessionHits,
			HitRate:       r.Stats.CacheHitRate(),
			Dist:          r.Dist,
			KindLatencyMs: kindLat,
		}},
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}
