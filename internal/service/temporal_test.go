package service

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/uarch"
)

// directSpyResults mounts the behavior-spy recipe with plain core.* calls —
// boot, calibrate, module reconnaissance, then consecutive windows on one
// prober — and maps each window to a service Result. This is the yardstick
// the stateful sessions must match: job k on a reused session == window k
// of the direct sequence.
func directSpyResults(t *testing.T, spec JobSpec, windows int, workers int) []*Result {
	t.Helper()
	spec, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	preset := uarch.ByName(spec.CPU)
	m := machine.New(preset, spec.Seed)
	k, err := linux.Boot(m, linux.Config{Seed: spec.Seed, FLARE: spec.FLARE, FGKASLR: spec.FGKASLR})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProber(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	targets, err := core.LocateTargets(core.Modules(p, core.SizeTable(k.ProcModules())), spec.Targets...)
	if err != nil {
		t.Fatal(err)
	}
	tls := spyTimelines(spec)
	drv, err := behavior.NewDriver(k, tls...)
	if err != nil {
		t.Fatal(err)
	}
	drv.SetResolution(spec.TickSec)
	spy := &core.BehaviorSpy{P: p, Targets: targets, PagesPerModule: 10, TickSec: spec.TickSec}
	p.Opt.Workers = workers

	var out []*Result
	for w := 0; w < windows; w++ {
		t0 := p.M.RDTSC()
		winStart := float64(w) * spec.DurationSec
		winEnd := winStart + spec.DurationSec
		traces, err := spy.RunWindow(drv, winStart, winEnd)
		if err != nil {
			t.Fatal(err)
		}
		probed := p.M.RDTSC() - t0
		acc := make(map[string]float64, len(traces))
		mean := 0.0
		for i, tr := range traces {
			a := tr.Accuracy(tls[i])
			acc[tr.Module] = a
			mean += a
		}
		mean /= float64(len(traces))
		out = append(out, &Result{
			Kind:           spec.Kind,
			Correct:        mean >= 0.9,
			Accuracy:       mean,
			TargetAccuracy: acc,
			WindowStartSec: winStart,
			WindowEndSec:   winEnd,
			ProbeSimSec:    preset.CyclesToSeconds(probed),
			TotalSimSec:    preset.CyclesToSeconds(probed),
		})
	}
	return out
}

// A stateful behavior-spy session must serve consecutive jobs as
// consecutive windows of one victim timeline, bit-identical to the direct
// core-call sequence — including across session reuse, at several
// scan-worker settings, pooled and fresh.
func TestBehaviorSpyServiceParity(t *testing.T) {
	spec := JobSpec{Kind: KindBehaviorSpy, Seed: 52, DurationSec: 15}
	const windows = 3

	for _, v := range []struct {
		workers int
		fresh   bool
	}{{0, false}, {1, true}, {4, false}} {
		want := directSpyResults(t, spec, windows, v.workers)
		s := New(Config{Executors: 1, ScanWorkers: v.workers, FreshWorkers: v.fresh})
		for w := 0; w < windows; w++ {
			j, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Wait(j)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want[w], got) {
				t.Fatalf("workers=%d fresh=%v window %d differs from direct calls\nwant: %+v\ngot:  %+v",
					v.workers, v.fresh, w, want[w], got)
			}
			snap, _ := s.Store().Snapshot(j.ID)
			if w > 0 && !snap.ReusedSession {
				t.Fatalf("window %d did not reuse the stateful session", w)
			}
		}
		s.Drain()
	}
}

// The app fingerprinter's service jobs must classify every standard
// profile correctly and advance the session window per job.
func TestAppFingerprintServiceJobs(t *testing.T) {
	s := New(Config{Executors: 1, ScanWorkers: 2})
	defer s.Drain()
	for _, prof := range core.StandardAppProfiles() {
		spec := JobSpec{Kind: KindAppFingerprint, Seed: 53, App: prof.Name}
		var prevEnd float64
		for round := 0; round < 2; round++ {
			j, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Wait(j)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Correct || res.App != prof.Name {
				t.Fatalf("%s round %d: classified as %q (correct=%v)", prof.Name, round, res.App, res.Correct)
			}
			if res.WindowStartSec != prevEnd {
				t.Fatalf("%s round %d: window starts at %v, want %v", prof.Name, round, res.WindowStartSec, prevEnd)
			}
			prevEnd = res.WindowEndSec
		}
	}
}

// The per-job ScanWorkers override must be validated, must not change
// results (host parallelism only), and must fall back to the scheduler
// default when absent.
func TestPerJobScanWorkersOverride(t *testing.T) {
	s := New(Config{Executors: 1, ScanWorkers: 0})
	defer s.Drain()

	intp := func(v int) *int { return &v }
	if _, err := s.Submit(JobSpec{Kind: KindKernelBase, Seed: 9, ScanWorkers: intp(-1)}); err == nil {
		t.Fatal("negative scan_workers accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: KindKernelBase, Seed: 9, ScanWorkers: intp(MaxJobScanWorkers + 1)}); err == nil {
		t.Fatal("oversized scan_workers accepted")
	}

	base := JobSpec{Kind: KindKernelBase, Seed: 9}
	var results []*Result
	for _, sw := range []*int{nil, intp(0), intp(3)} {
		spec := base
		spec.ScanWorkers = sw
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(j)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("scan_workers override changed the result:\ndefault: %+v\noverride %d: %+v", results[0], i, results[i])
		}
	}
}

// Temporal kinds must run inside the mixed load workload (the -load mix
// includes them) with full success.
func TestLoadMixIncludesTemporalKinds(t *testing.T) {
	mix := DefaultMix()
	haveSpy, haveFP := false, false
	for _, spec := range mix {
		switch spec.Kind {
		case KindBehaviorSpy:
			haveSpy = true
		case KindAppFingerprint:
			haveFP = true
		}
	}
	if !haveSpy || !haveFP {
		t.Fatalf("DefaultMix lacks temporal kinds (spy=%v, fingerprint=%v)", haveSpy, haveFP)
	}

	s := New(Config{Executors: 4, ScanWorkers: 2, QueueDepth: 16})
	rep := RunLoad(s, LoadConfig{Jobs: 2 * len(mix), Concurrency: 4, Victims: 3, Seed: 11})
	s.Drain()
	st := s.Stats()
	if st.Failed > 0 {
		t.Fatalf("%d mixed-load jobs failed", st.Failed)
	}
	if st.Completed != rep.Jobs {
		t.Fatalf("completed %d of %d", st.Completed, rep.Jobs)
	}
}

// fakeJob builds a store-registered job in the given state for the
// retention tests.
func fakeJob(st *Store, id uint64) *Job {
	j := &Job{ID: id, Status: StatusQueued, done: make(chan struct{})}
	st.add(j)
	return j
}

// The bounded store must evict only finished jobs, oldest first, keep
// in-flight jobs queryable for the drain path, and keep aggregate counters
// across evictions.
func TestStoreEvictsOldestFinished(t *testing.T) {
	st := NewBoundedStore(StoreConfig{MaxJobs: 3})

	running := fakeJob(st, 1)
	st.markRunning(running)
	var finished []*Job
	for id := uint64(2); id <= 6; id++ {
		j := fakeJob(st, id)
		st.markRunning(j)
		st.complete(j, &Result{Correct: true}, nil)
		finished = append(finished, j)
	}

	// Cap 3 with one pinned running job: only the 2 newest finished stay.
	if _, ok := st.Get(running.ID); !ok {
		t.Fatal("running job evicted")
	}
	for _, j := range finished[:3] {
		if _, ok := st.Get(j.ID); ok {
			t.Fatalf("old finished job %d survived the cap", j.ID)
		}
	}
	for _, j := range finished[3:] {
		if _, ok := st.Get(j.ID); !ok {
			t.Fatalf("recent finished job %d evicted", j.ID)
		}
	}

	stats := st.Stats()
	if stats.Completed != 5 || stats.Submitted != 6 {
		t.Fatalf("aggregates lost by eviction: %+v", stats)
	}
	if stats.Evicted != 3 || stats.Retained != 3 {
		t.Fatalf("evicted=%d retained=%d, want 3/3", stats.Evicted, stats.Retained)
	}
	if stats.SuccessRate != 1 {
		t.Fatalf("success rate %v after eviction", stats.SuccessRate)
	}
}

// TTL eviction: finished jobs older than the TTL disappear on the next
// sweep; unfinished jobs never do.
func TestStoreTTLEviction(t *testing.T) {
	st := NewBoundedStore(StoreConfig{MaxJobs: -1, TTL: 1})
	j := fakeJob(st, 1)
	st.markRunning(j)
	st.complete(j, &Result{Correct: true}, nil)
	q := fakeJob(st, 2) // still queued: immune

	// Any Finished timestamp is already older than a 1 ns TTL by the time
	// Stats sweeps.
	if stats := st.Stats(); stats.Evicted != 1 || stats.Retained != 1 {
		t.Fatalf("TTL sweep: evicted=%d retained=%d, want 1/1", stats.Evicted, stats.Retained)
	}
	if _, ok := st.Get(j.ID); ok {
		t.Fatal("expired finished job survived")
	}
	if _, ok := st.Get(q.ID); !ok {
		t.Fatal("queued job evicted by TTL")
	}
}

// Bound sanity for the scheduler-level plumbing: a scheduler configured
// with a small store keeps serving while old results age out.
func TestSchedulerBoundedStore(t *testing.T) {
	s := New(Config{Executors: 2, Store: StoreConfig{MaxJobs: 4}})
	defer s.Drain()
	var last *Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(JobSpec{Kind: KindKernelBase, Seed: uint64(20 + i%2)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(j); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	st := s.Stats()
	if st.Completed != 8 {
		t.Fatalf("completed %d, want 8", st.Completed)
	}
	if st.Retained > 4 {
		t.Fatalf("retained %d jobs, cap 4", st.Retained)
	}
	if _, ok := s.Store().Snapshot(last.ID); !ok {
		t.Fatal("most recent job evicted")
	}
	if fmt.Sprint(st.Evicted) == "0" {
		t.Fatal("no evictions recorded")
	}
}

// churnMachine dirties everything a snapshot is supposed to rewind: clock,
// noise position, translation caches, counters. (Page-table mutations are
// excluded — Restore's version guard rejects those by design.)
func churnMachine(m *machine.Machine) {
	m.AdvanceCycles(1234567)
	m.ReseedNoise(0xdeadbeef)
	m.EvictTLB()
	m.EvictPTELines()
	m.KernelTouch(0xffffffff81000000)
	m.AdvanceSeconds(3.7)
}

// The session snapshot contract, per attack kind: running a job, churning
// the machine arbitrarily, and running the same job again must yield a
// bit-identical result — the pre-job Restore wipes whatever happened in
// between. Temporal kinds are checked window-by-window against an
// unchurned twin session, since their state legitimately advances per job.
func TestSnapshotMutateRestoreRerunPerKind(t *testing.T) {
	opt := core.Options{Workers: 2, Pool: core.NewScanPool()}

	stateless := []JobSpec{
		{Kind: KindKernelBase, CPU: "12400F", Seed: 61},
		{Kind: KindKernelBase, CPU: "5600X", Seed: 62}, // AMD term-level path
		{Kind: KindKPTI, CPU: "12400F", Seed: 63},
		{Kind: KindModules, CPU: "1065G7", Seed: 64},
		{Kind: KindWindows, CPU: "12400F", Seed: 65},
		{Kind: KindUserScan, CPU: "1065G7", Seed: 66, EntropyBits: 10},
	}
	for _, raw := range stateless {
		spec, err := raw.normalized()
		if err != nil {
			t.Fatal(err)
		}
		sess, _, err := buildSessionForTest(spec)
		if err != nil {
			t.Fatal(err)
		}
		first, err := execute(sess, spec, opt)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		churnMachine(sess.m)
		second, err := execute(sess, spec, opt)
		if err != nil {
			t.Fatalf("%s rerun: %v", spec.Kind, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: churned rerun differs\nfirst:  %+v\nsecond: %+v", spec.Kind, first, second)
		}
	}

	temporal := []JobSpec{
		{Kind: KindBehaviorSpy, Seed: 67, DurationSec: 12},
		{Kind: KindAppFingerprint, Seed: 68, App: "video-call"},
	}
	for _, raw := range temporal {
		spec, err := raw.normalized()
		if err != nil {
			t.Fatal(err)
		}
		clean, _, err := buildSessionForTest(spec)
		if err != nil {
			t.Fatal(err)
		}
		churned, _, err := buildSessionForTest(spec)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 3; w++ {
			want, err := execute(clean, spec, opt)
			if err != nil {
				t.Fatalf("%s window %d: %v", spec.Kind, w, err)
			}
			churnMachine(churned.m)
			got, err := execute(churned, spec, opt)
			if err != nil {
				t.Fatalf("%s churned window %d: %v", spec.Kind, w, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s window %d: churned session diverged\nwant: %+v\ngot:  %+v", spec.Kind, w, want, got)
			}
		}
	}
}

// buildSessionForTest builds a session without the cache (no cached
// calibration).
func buildSessionForTest(spec JobSpec) (*session, bool, error) {
	s, err := buildSession(spec, core.Calibration{}, false)
	return s, false, err
}

// Concurrent stateful sessions must not race: several victims' spy and
// fingerprint timelines advance in parallel across executors (run under
// -race in make test-race / make ci).
func TestConcurrentTemporalSessionsRace(t *testing.T) {
	s := New(Config{Executors: 4, ScanWorkers: 2, QueueDepth: 32})
	defer s.Drain()
	var jobs []*Job
	for i := 0; i < 18; i++ {
		spec := JobSpec{Kind: KindBehaviorSpy, Seed: uint64(70 + i%3), DurationSec: 8}
		if i%2 == 1 {
			spec = JobSpec{Kind: KindAppFingerprint, Seed: uint64(70 + i%3), App: "music-player"}
		}
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if _, err := s.Wait(j); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Failed > 0 {
		t.Fatalf("%d concurrent temporal jobs failed", st.Failed)
	}
}

// Temporal window validation: fractional-tick windows would shift the
// session timeline off-grid (window k would no longer equal window k of a
// direct run), and unbounded windows would let one job allocate an
// unbounded per-tick result — both must be rejected at submission.
func TestTemporalSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{Kind: KindBehaviorSpy, DurationSec: 10.5},              // fractional ticks
		{Kind: KindBehaviorSpy, DurationSec: 20, TickSec: 0.3},  // fractional ticks
		{Kind: KindBehaviorSpy, DurationSec: 1e12},              // over the tick bound
		{Kind: KindBehaviorSpy, DurationSec: 20, TickSec: 1e-9}, // over the tick bound
		{Kind: KindBehaviorSpy, DurationSec: -5},                // negative window
		{Kind: KindAppFingerprint, App: "music-player", Ticks: MaxJobTicks + 1},
		{Kind: KindAppFingerprint, App: "not-a-profile"},
	}
	for _, spec := range bad {
		if _, err := spec.normalized(); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	good := []JobSpec{
		{Kind: KindBehaviorSpy},                               // defaults
		{Kind: KindBehaviorSpy, DurationSec: 3, TickSec: 0.5}, // 6 ticks
		{Kind: KindAppFingerprint, Ticks: MaxJobTicks},
	}
	for _, spec := range good {
		if _, err := spec.normalized(); err != nil {
			t.Errorf("spec %+v rejected: %v", spec, err)
		}
	}
}
