package service

import (
	"testing"
	"time"
)

// cheapMix is a load mix of the fast kinds (for race-detector runs).
func cheapMix() []JobSpec {
	return []JobSpec{
		{Kind: KindKernelBase, CPU: "12400F"},
		{Kind: KindKPTI, CPU: "12400F"},
		{Kind: KindUserScan, CPU: "1065G7", EntropyBits: 10},
		{Kind: KindKernelBase, CPU: "5600X"},
	}
}

// The load harness must sustain a deep concurrent mixed workload — ≥64
// concurrent submitters against pooled sessions and shared scan replicas —
// with every job accounted for. Run under -race (make test-race / make ci)
// this is the service's data-race gate.
func TestLoadConcurrentMixedWorkload(t *testing.T) {
	s := New(Config{Executors: 8, QueueDepth: 32, ScanWorkers: 2})
	rep := RunLoad(s, LoadConfig{Jobs: 96, Concurrency: 64, Seed: 100, Mix: cheapMix()})
	s.Drain()

	st := s.Stats()
	if st.Completed+st.Failed != rep.Jobs {
		t.Fatalf("accounted %d+%d jobs, want %d", st.Completed, st.Failed, rep.Jobs)
	}
	if st.Failed != 0 {
		t.Fatalf("%d jobs failed", st.Failed)
	}
	if st.SuccessRate < 0.95 {
		t.Fatalf("success rate %.3f too low", st.SuccessRate)
	}
	if st.JobsPerSec <= 0 || st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
		t.Fatalf("degenerate latency stats: %+v", st)
	}
	if st.Sessions == 0 {
		t.Fatal("no sessions were built")
	}
	// The pool must have been exercised and the session cache must have
	// amortized calibrations: far fewer sessions than jobs.
	if st.PoolReplicas == 0 {
		t.Fatal("shared scan pool was never used")
	}
	if st.Sessions >= rep.Jobs {
		t.Fatalf("built %d sessions for %d jobs — session reuse broken", st.Sessions, rep.Jobs)
	}
}

// Drain must finish queued work, then reject new submissions.
func TestDrainFinishesQueuedJobs(t *testing.T) {
	s := New(Config{Executors: 2, QueueDepth: 16})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: uint64(200 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Drain()
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d not finished after Drain", j.ID)
		}
		snap, _ := s.Store().Snapshot(j.ID)
		if snap.Status != StatusDone {
			t.Fatalf("job %d status %q after drain", j.ID, snap.Status)
		}
	}
	if _, err := s.Submit(JobSpec{Kind: KindKernelBase, Seed: 1}); err != ErrDraining {
		t.Fatalf("submit after drain: err %v, want ErrDraining", err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected count %d, want 1", s.Stats().Rejected)
	}
}

// A full queue must reject with ErrQueueFull, not block: one executor
// working 2^18-slot Windows scans cannot keep up with a tight submit loop.
func TestBoundedQueueBackpressure(t *testing.T) {
	s := New(Config{Executors: 1, QueueDepth: 2})
	defer s.Drain()
	sawFull := false
	for i := 0; i < 64 && !sawFull; i++ {
		_, err := s.Submit(JobSpec{Kind: KindWindows, CPU: "12400F", Seed: uint64(300 + i)})
		if err == ErrQueueFull {
			sawFull = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("64 instant submissions never hit the bounded queue")
	}
}

// Invalid specs must be rejected at submission, not at execution.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Executors: 1})
	defer s.Drain()
	for _, spec := range []JobSpec{
		{Kind: "frobnicate"},
		{Kind: KindCloud, Provider: "dc1"},
		{Kind: KindKernelBase, CPU: "no-such-cpu"},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("spec %+v was accepted", spec)
		}
	}
}

// The store must stream completions to subscribers without ever blocking
// the executors.
func TestStoreStreamsCompletions(t *testing.T) {
	s := New(Config{Executors: 2})
	stream, cancel := s.Store().Subscribe(32)
	defer cancel()
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: uint64(400 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	timeout := time.After(30 * time.Second)
	for len(seen) < n {
		select {
		case j := <-stream:
			if j.Result == nil {
				t.Fatalf("streamed job %d has no result", j.ID)
			}
			seen[j.ID] = true
		case <-timeout:
			t.Fatalf("stream delivered %d/%d completions", len(seen), n)
		}
	}
	s.Drain()
}

// AppendBench must write a BENCH_scan.json-schema line.
func TestAppendBenchWritesEntry(t *testing.T) {
	s := New(Config{Executors: 2})
	rep := RunLoad(s, LoadConfig{Jobs: 4, Concurrency: 2, Seed: 500, Mix: cheapMix()[:1]})
	s.Drain()
	path := t.TempDir() + "/bench.json"
	if err := AppendBench(path, rep); err != nil {
		t.Fatal(err)
	}
	if err := AppendBench(path, rep); err != nil {
		t.Fatal(err)
	}
}
