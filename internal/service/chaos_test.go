package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// assertNoGoroutineLeak waits for the goroutine count to settle back to
// the pre-test baseline (plus a little slack for runtime helpers). Every
// chaos path — watchdog-orphaned bodies, aborted backoffs, drained stalls
// — must terminate its goroutines; "fails, not leaks" is the contract.
func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosRates is the sustained fault mix of the chaos suite: every site
// enabled, rates high enough that multi-fault jobs are common.
func chaosRates() fault.Rates {
	return fault.Rates{Boot: 0.2, Calibrate: 0.15, Restore: 0.15, Probe: 0.25, Stall: 0.08, Panic: 0.12}
}

// TestChaosSustainedFaultMix drives the full DefaultMix through sustained
// seeded faults on concurrent executors: every job must terminate with a
// classified outcome, the accounting must balance, and nothing may leak.
// Run under -race by make ci-chaos, this is the robustness gate.
func TestChaosSustainedFaultMix(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{
		Executors:   4,
		QueueDepth:  64,
		MaxAttempts: 3,
		JobDeadline: 2 * time.Second, // generous: only injected stalls should ever hit it
		Fault:       fault.Config{Seed: 0xc4a05, Rates: chaosRates()},
	})
	mix := DefaultMix()
	var jobs []*Job
	for i := 0; i < 2*len(mix); i++ {
		spec := mix[i%len(mix)]
		spec.Seed = uint64(1 + i%8)
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	s.Drain()

	st := s.Stats()
	if st.Completed+st.Failed != len(jobs) {
		t.Fatalf("accounted %d+%d jobs, want %d", st.Completed, st.Failed, len(jobs))
	}
	if st.FaultsInjected == 0 {
		t.Fatal("chaos run injected no faults")
	}
	for _, j := range jobs {
		snap, ok := s.Store().Snapshot(j.ID)
		if !ok {
			t.Fatalf("job %d vanished", j.ID)
		}
		switch snap.Status {
		case StatusDone:
		case StatusFailed:
			if snap.ErrClass != ClassTransient && snap.ErrClass != ClassPermanent {
				t.Fatalf("job %d failed unclassified: err=%q class=%q", j.ID, snap.Err, snap.ErrClass)
			}
		default:
			t.Fatalf("job %d terminated in state %q", j.ID, snap.Status)
		}
	}
	// At these rates the healing machinery must actually have been
	// exercised: some retries, and some successes despite faults.
	if st.Retries == 0 {
		t.Fatal("no retries at sustained fault rates")
	}
	if st.Completed == 0 {
		t.Fatal("nothing succeeded — retries are not healing")
	}
	assertNoGoroutineLeak(t, base)
}

// jobTrace is the per-job retry/quarantine trace the determinism tests
// compare: terminal status, error text and class, and attempt accounting.
type jobTrace struct {
	Status   Status
	Err      string
	ErrClass ErrorClass
	Attempts int
	Retries  int
}

// runChaosTrace runs the given specs through a fresh scheduler and returns
// the per-job traces plus the injector's per-site fired counts and the
// quarantine total.
func runChaosTrace(t *testing.T, cfg Config, specs []JobSpec) ([]jobTrace, [6]uint64, int) {
	t.Helper()
	s := New(cfg)
	var jobs []*Job
	for i, spec := range specs {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	traces := make([]jobTrace, len(jobs))
	for i, j := range jobs {
		snap, _ := s.Store().Snapshot(j.ID)
		tr := jobTrace{Status: snap.Status, Err: snap.Err, ErrClass: snap.ErrClass, Attempts: snap.Attempts}
		if snap.Result != nil {
			tr.Retries = snap.Result.Retries
		}
		traces[i] = tr
	}
	var fired [6]uint64
	for _, site := range fault.Sites() {
		fired[site] = s.inj.Fired(site)
	}
	_, _, quarantined := s.cache.stats()
	s.Drain()
	return traces, fired, quarantined
}

// chaosTraceSpecs is the mix the determinism tests run: both vendors,
// KPTI, userscan, a stateful spy session and both defense flavours
// (rerand's sweep draws a second restore per attempt).
func chaosTraceSpecs() []JobSpec {
	var specs []JobSpec
	base := []JobSpec{
		{Kind: KindKernelBase, CPU: "12400F"},
		{Kind: KindKernelBase, CPU: "5600X"},
		{Kind: KindKPTI, CPU: "12400F"},
		{Kind: KindUserScan, CPU: "1065G7", EntropyBits: 10},
		{Kind: KindBehaviorSpy, CPU: "1065G7", DurationSec: 5},
		{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseFLARE},
		{Kind: KindDefenseEval, CPU: "12400F", Defense: DefenseRerand, RerandPeriodsSec: []float64{0.01}},
	}
	for i := 0; i < 2*len(base); i++ {
		spec := base[i%len(base)]
		spec.Seed = uint64(1 + i%5)
		specs = append(specs, spec)
	}
	return specs
}

// TestChaosTraceDeterminismSerialized: with one executor, identical fault
// seeds produce bit-identical retry/quarantine traces across runs — every
// site enabled, including the build-time boot/calibrate sites (serialized
// execution makes cache hits, and therefore build-site draws,
// reproducible).
func TestChaosTraceDeterminismSerialized(t *testing.T) {
	// The watchdog is disabled: with one armed, a slow machine could fail
	// a *legitimately running* body at the deadline, making the trace a
	// function of host speed. Without it, injected stalls fail fast —
	// still drawn deterministically — and the watchdog path keeps its own
	// deterministic coverage in TestDeadlineFailsStalledJob.
	cfg := Config{
		Executors:   1,
		QueueDepth:  64,
		MaxAttempts: 3,
		JobDeadline: -1,
		Fault:       fault.Config{Seed: 7, Rates: chaosRates()},
	}
	specs := chaosTraceSpecs()
	tr1, fired1, q1 := runChaosTrace(t, cfg, specs)
	tr2, fired2, q2 := runChaosTrace(t, cfg, specs)
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("job %d trace diverged:\n run1 %+v\n run2 %+v", i, tr1[i], tr2[i])
		}
	}
	if fired1 != fired2 {
		t.Fatalf("per-site fault counts diverged: %v vs %v", fired1, fired2)
	}
	if q1 != q2 {
		t.Fatalf("quarantine counts diverged: %d vs %d", q1, q2)
	}
	if fired1 == ([6]uint64{}) {
		t.Fatal("serialized chaos run injected nothing")
	}
}

// TestChaosTraceDeterminismConcurrent: the per-attempt sites (restore,
// probe, stall, panic) are keyed by (job, attempt), so even with 4 racing
// executors the traces are identical run over run. Boot and calibrate are
// disabled here — their draws happen only on session *builds*, and which
// submission builds vs. adopts depends on execution order (the documented
// cache-dependence caveat; the serialized test above covers them).
func TestChaosTraceDeterminismConcurrent(t *testing.T) {
	// JobDeadline is disabled for the same host-speed reason as the
	// serialized test: a real watchdog racing real bodies is the one
	// nondeterminism the fault schedule cannot absorb.
	cfg := Config{
		Executors:   4,
		QueueDepth:  64,
		MaxAttempts: 3,
		JobDeadline: -1,
		Fault: fault.Config{Seed: 11, Rates: fault.Rates{
			Restore: 0.2, Probe: 0.3, Stall: 0.08, Panic: 0.12,
		}},
	}
	specs := chaosTraceSpecs()
	tr1, fired1, q1 := runChaosTrace(t, cfg, specs)
	tr2, fired2, q2 := runChaosTrace(t, cfg, specs)
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("job %d trace diverged under concurrency:\n run1 %+v\n run2 %+v", i, tr1[i], tr2[i])
		}
	}
	if fired1 != fired2 || q1 != q2 {
		t.Fatalf("aggregate fault/quarantine counts diverged: %v/%d vs %v/%d", fired1, q1, fired2, q2)
	}
}

// TestChaosZeroFaultBitIdentical: a scheduler with a (non-zero-seeded but
// zero-rate) fault config produces results bit-identical to a plain
// scheduler — the disabled injector is exactly the production hot path.
func TestChaosZeroFaultBitIdentical(t *testing.T) {
	run := func(cfg Config) []*Result {
		s := New(cfg)
		defer s.Drain()
		var out []*Result
		for i, spec := range cheapMix() {
			spec.Seed = uint64(40 + i)
			j, err := s.Submit(spec)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			res, err := s.Wait(j)
			if err != nil {
				t.Fatalf("job failed on zero-fault run: %v", err)
			}
			out = append(out, res)
		}
		return out
	}
	plain := run(Config{Executors: 2})
	zeroRate := run(Config{Executors: 2, Fault: fault.Config{Seed: 0xfeed}}) // seed set, all rates zero
	if !reflect.DeepEqual(plain, zeroRate) {
		t.Fatalf("zero-fault results diverged from plain scheduler:\n%+v\nvs\n%+v", plain, zeroRate)
	}
}

// TestPanicIsolationQuarantinesSession: a panicking job body is converted
// into a classified failure, never kills its executor, and every attempt's
// session is quarantined and dropped.
func TestPanicIsolationQuarantinesSession(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{
		Executors:    2,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		Fault:        fault.Config{Seed: 1, Rates: fault.Rates{Panic: 1}},
	})
	const n = 4
	var jobs []*Job
	for i := 0; i < n; i++ {
		j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: uint64(60 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
		snap, _ := s.Store().Snapshot(j.ID)
		if snap.Status != StatusFailed {
			t.Fatalf("job %d: panic-rate-1 job ended %q", j.ID, snap.Status)
		}
		if !strings.Contains(snap.Err, "panicked") {
			t.Fatalf("job %d error %q does not report the panic", j.ID, snap.Err)
		}
		if snap.ErrClass != ClassTransient {
			t.Fatalf("panic classified %q, want transient", snap.ErrClass)
		}
		if snap.Attempts != 2 {
			t.Fatalf("job %d ran %d attempts, want MaxAttempts=2", j.ID, snap.Attempts)
		}
	}
	st := s.Stats()
	// Every attempt bound a session and panicked on it: all quarantined.
	if st.Quarantined != 2*n {
		t.Fatalf("quarantined %d sessions, want %d (one per attempt)", st.Quarantined, 2*n)
	}
	s.Drain()
	assertNoGoroutineLeak(t, base)
}

// TestDeadlineFailsStalledJob: an injected stall wedges the body until the
// watchdog fails the attempt — the job fails with ErrJobDeadline instead
// of holding its executor forever, the orphaned body self-terminates, and
// the abandoned session is quarantined.
func TestDeadlineFailsStalledJob(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{
		Executors:   1,
		MaxAttempts: 1,
		JobDeadline: 80 * time.Millisecond,
		Fault:       fault.Config{Seed: 2, Rates: fault.Rates{Stall: 1}},
	})
	j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	snap, _ := s.Store().Snapshot(j.ID)
	if snap.Status != StatusFailed || !strings.Contains(snap.Err, "deadline") {
		t.Fatalf("stalled job ended %q / %q, want a deadline failure", snap.Status, snap.Err)
	}
	if snap.ErrClass != ClassTransient {
		t.Fatalf("deadline classified %q, want transient", snap.ErrClass)
	}
	s.Drain()
	// The orphaned body quarantines its session asynchronously after the
	// watchdog fails the job; give it a moment to finish its cleanup.
	settle := time.Now().Add(5 * time.Second)
	for s.Stats().Quarantined == 0 {
		if time.Now().After(settle) {
			t.Fatal("watchdog-abandoned session was not quarantined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	assertNoGoroutineLeak(t, base)
}

// TestRetryHealsTransientFaults: at probe rate 0.5 with 4 attempts, most
// jobs succeed — some only after retries, which their results record.
func TestRetryHealsTransientFaults(t *testing.T) {
	s := New(Config{
		Executors:    2,
		MaxAttempts:  4,
		RetryBackoff: time.Millisecond,
		Fault:        fault.Config{Seed: 5, Rates: fault.Rates{Probe: 0.5}},
	})
	defer s.Drain()
	var jobs []*Job
	for i := 0; i < 16; i++ {
		j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: uint64(80 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	healed := 0
	for _, j := range jobs {
		<-j.Done()
		snap, _ := s.Store().Snapshot(j.ID)
		if snap.Status == StatusDone && snap.Result.Retries > 0 {
			healed++
			if snap.Attempts != snap.Result.Retries+1 {
				t.Fatalf("job %d: attempts %d vs retries %d", j.ID, snap.Attempts, snap.Result.Retries)
			}
		}
		if snap.Status == StatusFailed && snap.ErrClass != ClassTransient {
			t.Fatalf("probe-fault job failed with class %q", snap.ErrClass)
		}
	}
	if healed == 0 {
		t.Fatal("no job recorded a healed retry at probe rate 0.5")
	}
	if st := s.Stats(); st.Retries == 0 || st.Completed == 0 {
		t.Fatalf("retry accounting broken: %+v", st)
	}
}

// TestDrainAbortsRetryBackoff: a drain arriving while a job sits in a long
// retry backoff must abort the wait immediately — the job fails with its
// last classified error and Drain returns without serving the backoff.
// Drain stays idempotent throughout.
func TestDrainAbortsRetryBackoff(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{
		Executors:    1,
		MaxAttempts:  3,
		RetryBackoff: 30 * time.Second, // would outlive the test if honored
		Fault:        fault.Config{Seed: 3, Rates: fault.Rates{Boot: 1}},
	})
	j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 90})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let attempt 1 fail into the backoff
	start := time.Now()
	s.Drain()
	s.Drain() // idempotent
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain took %v — the backoff was not aborted", d)
	}
	<-j.Done()
	snap, _ := s.Store().Snapshot(j.ID)
	if snap.Status != StatusFailed {
		t.Fatalf("job ended %q, want failed", snap.Status)
	}
	if !strings.Contains(snap.Err, "drain") || !strings.Contains(snap.Err, "fault") {
		t.Fatalf("error %q should record both the drain and the underlying fault", snap.Err)
	}
	if snap.ErrClass != ClassTransient {
		t.Fatalf("classified %q, want transient", snap.ErrClass)
	}
	assertNoGoroutineLeak(t, base)
}

// TestDrainReleasesInjectedStall: a drain must also release a body wedged
// in an injected stall (watchdog far away) — the stall unblocks on the
// drain signal, the job terminates classified, nothing leaks.
func TestDrainReleasesInjectedStall(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{
		Executors:   1,
		MaxAttempts: 2,
		JobDeadline: 30 * time.Second, // watchdog will not save us; drain must
		Fault:       fault.Config{Seed: 4, Rates: fault.Rates{Stall: 1}},
	})
	j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the body enter the stall
	start := time.Now()
	s.Drain()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain took %v against a stalled job", d)
	}
	<-j.Done()
	snap, _ := s.Store().Snapshot(j.ID)
	if snap.Status != StatusFailed || snap.ErrClass != ClassTransient {
		t.Fatalf("stalled job ended %q class %q", snap.Status, snap.ErrClass)
	}
	assertNoGoroutineLeak(t, base)
}

// TestQuarantineNeverReadopted: a quarantined session is dropped at
// release and the next acquire builds a fresh one — never the condemned
// session, even though its victim key matches.
func TestQuarantineNeverReadopted(t *testing.T) {
	cache := newSessionCache(8)
	spec, err := JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 95}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	s1, reused, err := cache.acquire(spec)
	if err != nil || reused {
		t.Fatalf("first acquire: reused=%v err=%v", reused, err)
	}
	cache.quarantine(s1)
	cache.quarantine(s1) // counted once
	cache.release(s1)
	s2, reused, err := cache.acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reused || s2 == s1 {
		t.Fatal("quarantined session was re-adopted")
	}
	made, _, quarantined := cache.stats()
	if made != 2 || quarantined != 1 {
		t.Fatalf("made=%d quarantined=%d, want 2/1", made, quarantined)
	}
	// The replacement must be bit-identical per the calibration contract
	// (compare the cutoffs — the threshold structs carry NaN sentinels,
	// which never compare equal to themselves).
	if s2.p.Threshold.Cycles != s1.p.Threshold.Cycles ||
		s2.p.StoreThreshold.Cycles != s1.p.StoreThreshold.Cycles {
		t.Fatal("rebuilt session's calibration diverged from the condemned one")
	}
	if !s2.cachedCal {
		t.Fatal("rebuild recalibrated instead of replaying the cached calibration")
	}
}

// TestWaitCtx covers both outcomes: a finished job returns its result, a
// wedged job returns the context error instead of hanging.
func TestWaitCtx(t *testing.T) {
	s := New(Config{Executors: 1})
	j, err := s.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.WaitCtx(context.Background(), j)
	if err != nil || res == nil {
		t.Fatalf("WaitCtx on finished job: res=%v err=%v", res, err)
	}
	s.Drain()

	wedged := New(Config{
		Executors:   1,
		JobDeadline: 30 * time.Second,
		Fault:       fault.Config{Seed: 6, Rates: fault.Rates{Stall: 1}},
	})
	j2, err := wedged.Submit(JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := wedged.WaitCtx(ctx, j2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx on wedged job returned %v, want deadline exceeded", err)
	}
	wedged.Drain()
}

// TestHTTPWaitLongPoll: GET /jobs/{id}?wait= long-polls until the job
// finishes (or the capped wait elapses) and returns its state either way;
// malformed waits are 400s.
func TestHTTPWaitLongPoll(t *testing.T) {
	s := New(Config{Executors: 1})
	defer s.Drain()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	body := strings.NewReader(`{"kind":"kernelbase","seed":98}`)
	resp, err := http.Post(srv.URL+"/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/jobs/1?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	var snap Job
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Status != StatusDone {
		t.Fatalf("long-polled job still %q", snap.Status)
	}

	resp, err = http.Get(srv.URL + "/jobs/1?wait=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus wait returned %d, want 400", resp.StatusCode)
	}
}

// TestHTTPShedRetryAfter: with a shed watermark set and the executor
// deterministically wedged, admission control turns submissions away with
// 429 + Retry-After before the queue is full, and /stats counts the sheds.
func TestHTTPShedRetryAfter(t *testing.T) {
	s := New(Config{
		Executors:     1,
		QueueDepth:    8,
		ShedWatermark: 2,
		MaxAttempts:   1,
		JobDeadline:   30 * time.Second,
		Fault:         fault.Config{Seed: 8, Rates: fault.Rates{Stall: 1}},
	})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var shed *http.Response
	for i := 0; i < 8; i++ {
		resp, err := http.Post(srv.URL+"/jobs", "application/json",
			strings.NewReader(`{"kind":"kernelbase","seed":99}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		resp.Body.Close()
	}
	if shed == nil {
		t.Fatal("watermark 2 never shed within 8 submissions against a wedged executor")
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response carries no Retry-After")
	}
	shed.Body.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Shed == 0 || st.Rejected < st.Shed {
		t.Fatalf("shed accounting broken: %+v", st)
	}
	s.Drain()
}

// TestDrainDuringChaos: draining mid-fault-storm (retries, stalls,
// quarantines all in flight) terminates promptly with every job accounted
// for and no goroutines left behind — the satellite's drain-vs-faults
// race, leak-checked.
func TestDrainDuringChaos(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{
		Executors:    4,
		QueueDepth:   64,
		MaxAttempts:  3,
		RetryBackoff: 20 * time.Millisecond,
		JobDeadline:  250 * time.Millisecond,
		Fault:        fault.Config{Seed: 9, Rates: chaosRates()},
	})
	var jobs []*Job
	for i := 0; i < 24; i++ {
		spec := cheapMix()[i%len(cheapMix())]
		spec.Seed = uint64(120 + i%6)
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	time.Sleep(30 * time.Millisecond) // land mid-storm
	start := time.Now()
	s.Drain()
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("drain took %v under chaos", d)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d still unterminated after drain", j.ID)
		}
		snap, _ := s.Store().Snapshot(j.ID)
		if snap.Status != StatusDone && snap.Status != StatusFailed {
			t.Fatalf("job %d in state %q after drain", j.ID, snap.Status)
		}
		if snap.Status == StatusFailed && snap.ErrClass == "" {
			t.Fatalf("job %d failed unclassified: %q", j.ID, snap.Err)
		}
	}
	assertNoGoroutineLeak(t, base)
}
