package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// NewHandler exposes a scheduler over HTTP — the scand daemon's API:
//
//	POST /jobs       submit a JobSpec (JSON body) → 202 {"id": N}
//	GET  /jobs/{id}  job status + result
//	GET  /stats      aggregate service stats
//	POST /drain      stop accepting, run the queue dry (async) → 202
//	GET  /healthz    liveness
//
// Rejections map to HTTP backpressure codes: 429 on a full queue, 503
// while draining.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
			return
		}
		j, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			// j.ID is immutable; the live Status belongs to the store (an
			// executor may already be running the job).
			writeJSON(w, http.StatusAccepted, map[string]any{"id": j.ID, "status": StatusQueued})
		}
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job id")
			return
		}
		snap, ok := s.Store().Snapshot(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		go s.Drain()
		writeJSON(w, http.StatusAccepted, map[string]any{"draining": true})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
