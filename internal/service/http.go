package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// MaxWaitPoll bounds the GET /jobs/{id}?wait= long-poll: longer waits are
// clamped, never rejected, so a client asking for "forever" still gets a
// bounded response and re-polls.
const MaxWaitPoll = 30 * time.Second

// api is the surface the HTTP layer serves. Both *Scheduler and *Cluster
// implement it, so daemon mode and cluster mode share one handler: same
// routes, same status codes, same payload shapes — the only difference is
// what /stats and /metrics aggregate over.
type api interface {
	Submit(spec JobSpec) (*Job, error)
	JobSnapshot(id uint64) (Job, bool)
	JobDone(id uint64) (<-chan struct{}, bool)
	Trace(id uint64) (*obs.Trace, bool)
	Metrics() *obs.Registry
	statsPayload() any
	Drain()
}

// NewHandler exposes a scheduler over HTTP — the scand daemon's API:
//
//	POST /jobs       submit a JobSpec (JSON body) → 202 {"id": N}
//	GET  /jobs/{id}  job status + result; ?wait=2s long-polls until the
//	                 job finishes or the (capped) wait elapses — the
//	                 response is the job's state either way
//	GET  /stats      aggregate service stats
//	GET  /metrics    Prometheus text exposition (counters, gauges,
//	                 per-kind/per-defense/per-site labels, stage and
//	                 latency histograms)
//	GET  /jobs/{id}/trace  sampled lifecycle trace: JSON span tree, or an
//	                 ASCII timeline with ?format=ascii (404 when the job
//	                 was unsampled or its trace was evicted)
//	POST /drain      stop accepting, run the queue dry (async) → 202
//	GET  /healthz    liveness
//
// Rejections map to HTTP backpressure codes: 429 + Retry-After on a full
// queue or when admission control sheds (ShedWatermark), 503 while
// draining.
func NewHandler(s *Scheduler) http.Handler { return newAPIHandler(s) }

// NewClusterHandler serves the same API over a Cluster: submissions are
// consistent-hash routed to the owning instance, /jobs/{id} and trace
// lookups follow the id→instance mapping, /stats returns the ClusterStats
// rollup (merged aggregate + per-instance rows), and /metrics is the
// instance-labeled cluster registry. Clients cannot tell a cluster from a
// single scheduler except by reading those richer payloads.
func NewClusterHandler(c *Cluster) http.Handler { return newAPIHandler(c) }

func newAPIHandler(s api) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
			return
		}
		j, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
			// Backpressure the client can obey: both shedding and a full
			// queue clear within the retry horizon of one job's latency.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			// j.ID is immutable; the live Status belongs to the store (an
			// executor may already be running the job).
			writeJSON(w, http.StatusAccepted, map[string]any{"id": j.ID, "status": StatusQueued})
		}
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job id")
			return
		}
		if ws := r.URL.Query().Get("wait"); ws != "" {
			d, err := parseWait(ws)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad wait: "+err.Error())
				return
			}
			if done, ok := s.JobDone(id); ok && d > 0 {
				t := time.NewTimer(d)
				select {
				case <-done:
				case <-t.C:
				case <-r.Context().Done():
				}
				t.Stop()
			}
		}
		snap, ok := s.JobSnapshot(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job id")
			return
		}
		tr, ok := s.Trace(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no trace for job (tracing off, job unsampled, or trace evicted)")
			return
		}
		root := tr.Snapshot()
		if r.URL.Query().Get("format") == "ascii" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rows := timelineRows(root, 0, nil)
			_, _ = io.WriteString(w, trace.RenderTimeline(fmt.Sprintf("job %d lifecycle", id), rows, 60))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"job_id": id, "trace": root})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.statsPayload())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		go s.Drain()
		writeJSON(w, http.StatusAccepted, map[string]any{"draining": true})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

// parseWait parses the ?wait= value — a Go duration ("500ms", "2s") or a
// plain number of seconds — clamped to [0, MaxWaitPoll].
func parseWait(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		secs, err2 := strconv.ParseFloat(s, 64)
		if err2 != nil {
			return 0, err
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d < 0 {
		d = 0
	}
	if d > MaxWaitPoll {
		d = MaxWaitPoll
	}
	return d, nil
}

// timelineRows flattens a span tree depth-first into the ASCII timeline's
// row form (label = span name, bar = the span's wall-clock interval).
func timelineRows(sp *obs.Span, depth int, rows []trace.TimelineRow) []trace.TimelineRow {
	if sp == nil {
		return rows
	}
	rows = append(rows, trace.TimelineRow{
		Label:   sp.Name,
		Depth:   depth,
		StartNs: sp.StartNs,
		EndNs:   sp.EndNs,
	})
	for _, c := range sp.Children {
		rows = timelineRows(c, depth+1, rows)
	}
	return rows
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
