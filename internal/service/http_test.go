package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp, m
}

// The daemon API end to end: submit, poll to completion, stats, drain,
// rejection after drain.
func TestHTTPSubmitPollDrain(t *testing.T) {
	s := New(Config{Executors: 2})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/jobs", JobSpec{Kind: KindKernelBase, CPU: "12400F", Seed: 9})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := int(body["id"].(float64))

	var job map[string]any
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + itoa(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st := job["status"]; st == string(StatusDone) || st == string(StatusFailed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", job)
		}
		time.Sleep(time.Millisecond)
	}
	if job["status"] != string(StatusDone) {
		t.Fatalf("job failed: %+v", job)
	}
	res := job["result"].(map[string]any)
	if res["correct"] != true {
		t.Fatalf("attack not correct: %+v", res)
	}

	r, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if stats.Completed != 1 || stats.Submitted != 1 {
		t.Fatalf("stats: %+v", stats)
	}

	if resp, _ := postJSON(t, srv.URL+"/drain", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	// Drain is async; wait for the scheduler to refuse.
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, _ := postJSON(t, srv.URL+"/jobs", JobSpec{Kind: KindKernelBase, Seed: 1})
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted after drain")
		}
		time.Sleep(time.Millisecond)
	}
}

// Bad requests map to 400/404.
func TestHTTPBadRequests(t *testing.T) {
	s := New(Config{Executors: 1})
	defer s.Drain()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	if resp, _ := postJSON(t, srv.URL+"/jobs", map[string]any{"kind": "frobnicate"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", resp.StatusCode)
	}
	r, err := http.Get(srv.URL + "/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d", r.StatusCode)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
