// Package phys models physical memory as a frame allocator.
//
// The simulator never stores page *contents* for kernel memory (the attacks
// only observe translation timing), but page-table construction and the
// data-movement semantics of the AVX masked operations need real, distinct
// physical frame numbers: TLB entries, paging-structure-cache tags and the
// PTE-line cache are all keyed by physical addresses of page-table pages.
package phys

import "fmt"

// FrameSize is the size of one physical frame in bytes (4 KiB).
const FrameSize = 1 << 12

// PFN is a physical frame number; physical address = PFN * FrameSize.
type PFN uint64

// PhysAddr returns the base physical address of the frame.
func (p PFN) PhysAddr() uint64 { return uint64(p) * FrameSize }

// Allocator hands out physical frames. Frames are never freed individually
// in the simulations (a machine's lifetime is one experiment), but Reset
// reclaims everything at once.
type Allocator struct {
	next  PFN
	limit PFN
}

// NewAllocator creates an allocator spanning sizeBytes of physical memory.
func NewAllocator(sizeBytes uint64) *Allocator {
	if sizeBytes%FrameSize != 0 {
		panic("phys: size must be frame-aligned")
	}
	return &Allocator{
		// Leave frame 0 unused so that PFN 0 can mean "not present".
		next:  1,
		limit: PFN(sizeBytes / FrameSize),
	}
}

// Alloc returns one fresh frame.
func (a *Allocator) Alloc() PFN {
	return a.AllocContig(1)
}

// AllocContig returns the first frame of n physically contiguous frames.
// Huge-page mappings (2 MiB = 512 frames, 1 GiB = 512*512 frames) need
// contiguous, alignment-matched physical backing, exactly like a real OS.
func (a *Allocator) AllocContig(n uint64) PFN {
	if n == 0 {
		panic("phys: AllocContig(0)")
	}
	// Align the start so that huge mappings are naturally aligned.
	start := a.next
	if n > 1 {
		if rem := uint64(start) % n; rem != 0 {
			start += PFN(n - rem)
		}
	}
	end := start + PFN(n)
	if end > a.limit {
		panic(fmt.Sprintf("phys: out of physical memory (want %d frames, %d left)", n, a.limit-a.next))
	}
	a.next = end
	return start
}

// Allocated returns the number of frames handed out so far (including
// alignment holes).
func (a *Allocator) Allocated() uint64 { return uint64(a.next) - 1 }

// Capacity returns the total number of frames the allocator manages.
func (a *Allocator) Capacity() uint64 { return uint64(a.limit) }
