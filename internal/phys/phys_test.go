package phys

import (
	"testing"
	"testing/quick"
)

func TestAllocDistinct(t *testing.T) {
	a := NewAllocator(1 << 20)
	seen := make(map[PFN]bool)
	for i := 0; i < 100; i++ {
		f := a.Alloc()
		if f == 0 {
			t.Fatal("allocator handed out PFN 0 (reserved for non-present)")
		}
		if seen[f] {
			t.Fatalf("duplicate frame %d", f)
		}
		seen[f] = true
	}
}

func TestAllocContigAlignment(t *testing.T) {
	a := NewAllocator(1 << 30)
	a.Alloc() // misalign the cursor
	f := a.AllocContig(512)
	if uint64(f)%512 != 0 {
		t.Fatalf("2MiB run not naturally aligned: %d", f)
	}
	g := a.AllocContig(512)
	if g < f+512 {
		t.Fatalf("contiguous runs overlap: %d after %d", g, f)
	}
}

func TestAllocContigAlignmentProperty(t *testing.T) {
	err := quick.Check(func(pre uint8, n uint16) bool {
		a := NewAllocator(1 << 30)
		for i := 0; i < int(pre%32); i++ {
			a.Alloc()
		}
		run := uint64(n%512) + 1
		f := a.AllocContig(run)
		return uint64(f)%run == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhysAddr(t *testing.T) {
	if PFN(3).PhysAddr() != 3*FrameSize {
		t.Fatal("PhysAddr wrong")
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	a := NewAllocator(16 * FrameSize)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exhaustion")
		}
	}()
	a.AllocContig(32)
}

func TestUnalignedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unaligned size")
		}
	}()
	NewAllocator(FrameSize + 1)
}

func TestZeroContigPanics(t *testing.T) {
	a := NewAllocator(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on AllocContig(0)")
		}
	}()
	a.AllocContig(0)
}

func TestCapacityAndAllocated(t *testing.T) {
	a := NewAllocator(64 * FrameSize)
	if a.Capacity() != 64 {
		t.Fatalf("capacity %d", a.Capacity())
	}
	a.Alloc()
	a.Alloc()
	if a.Allocated() != 2 {
		t.Fatalf("allocated %d", a.Allocated())
	}
}
