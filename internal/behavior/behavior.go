// Package behavior generates the victim-activity timelines of §IV-E: user
// actions (Bluetooth audio streaming, mouse movement, keystrokes) that make
// the kernel execute the corresponding driver module, leaving its address
// translations in the TLB — the observable the spy process samples.
package behavior

import (
	"fmt"

	"repro/internal/linux"
	"repro/internal/rng"
)

// Activity is one kind of user behavior and the module that services it.
type Activity struct {
	// Name labels the activity (for plots).
	Name string
	// Module is the kernel module whose code runs while active.
	Module string
	// PagesTouched is how many of the module's leading pages each event
	// touches (the spy probes "the first 10 pages", §IV-E).
	PagesTouched int
	// EventHz is the event rate while the activity is on (e.g. Bluetooth
	// audio ticks many times per second; mouse interrupts likewise).
	EventHz float64
}

// BluetoothAudio is the §IV-E Bluetooth audio-streaming activity.
func BluetoothAudio() Activity {
	return Activity{Name: "Bluetooth audio", Module: "bluetooth", PagesTouched: 10, EventHz: 50}
}

// MouseMovement is the §IV-E mouse-movement activity.
func MouseMovement() Activity {
	return Activity{Name: "Mouse movements", Module: "psmouse", PagesTouched: 6, EventHz: 60}
}

// Keystrokes models keyboard input through the HID stack (the extension
// the paper's §IV-E suggests).
func Keystrokes() Activity {
	return Activity{Name: "Keystrokes", Module: "usbhid", PagesTouched: 4, EventHz: 12}
}

// Interval is a half-open [Start, End) activity window in seconds.
type Interval struct{ Start, End float64 }

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// Timeline is one activity's on/off schedule over an experiment.
type Timeline struct {
	Activity Activity
	On       []Interval
}

// ActiveAt reports whether the activity is on at time t.
func (tl *Timeline) ActiveAt(t float64) bool {
	for _, iv := range tl.On {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// RandomTimeline builds a timeline over [0, duration) with activity bursts:
// alternating off/on periods drawn from exponential holding times.
func RandomTimeline(act Activity, duration float64, meanOff, meanOn float64, r *rng.Source) *Timeline {
	tl := &Timeline{Activity: act}
	t := r.Exponential(meanOff)
	for t < duration {
		on := r.Exponential(meanOn)
		end := t + on
		if end > duration {
			end = duration
		}
		tl.On = append(tl.On, Interval{Start: t, End: end})
		t = end + r.Exponential(meanOff)
	}
	return tl
}

// FixedTimeline builds a timeline from explicit windows.
func FixedTimeline(act Activity, on ...Interval) *Timeline {
	return &Timeline{Activity: act, On: on}
}

// Driver replays one or more timelines against a booted kernel: at each
// Step(t) call, every activity that is on at time t fires its events,
// touching the module's pages (filling the TLB).
type Driver struct {
	k         *linux.Kernel
	timelines []*Timeline
}

// NewDriver creates a driver for the kernel. Every timeline's module must
// be loaded.
func NewDriver(k *linux.Kernel, timelines ...*Timeline) (*Driver, error) {
	for _, tl := range timelines {
		if _, ok := k.Module(tl.Activity.Module); !ok {
			return nil, fmt.Errorf("behavior: module %q not loaded", tl.Activity.Module)
		}
	}
	return &Driver{k: k, timelines: timelines}, nil
}

// Step advances the victim to time t (seconds since experiment start):
// active modules handle their pending events and touch their pages.
func (d *Driver) Step(t float64) error {
	for _, tl := range d.timelines {
		if tl.ActiveAt(t) {
			if err := d.k.TouchModule(tl.Activity.Module, tl.Activity.PagesTouched); err != nil {
				return err
			}
		}
	}
	return nil
}

// Timelines returns the driver's timelines (ground truth for accuracy
// scoring).
func (d *Driver) Timelines() []*Timeline { return d.timelines }
