// Package behavior generates the victim-activity timelines of §IV-E: user
// actions (Bluetooth audio streaming, mouse movement, keystrokes) that make
// the kernel execute the corresponding driver module, leaving its address
// translations in the TLB — the observable the spy process samples.
package behavior

import (
	"fmt"
	"math"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
)

// Activity is one kind of user behavior and the module that services it.
type Activity struct {
	// Name labels the activity (for plots).
	Name string
	// Module is the kernel module whose code runs while active.
	Module string
	// PagesTouched is how many of the module's leading pages each event
	// touches (the spy probes "the first 10 pages", §IV-E).
	PagesTouched int
	// EventHz is the event rate while the activity is on (e.g. Bluetooth
	// audio ticks many times per second; mouse interrupts likewise).
	EventHz float64
}

// BluetoothAudio is the §IV-E Bluetooth audio-streaming activity.
func BluetoothAudio() Activity {
	return Activity{Name: "Bluetooth audio", Module: "bluetooth", PagesTouched: 10, EventHz: 50}
}

// MouseMovement is the §IV-E mouse-movement activity.
func MouseMovement() Activity {
	return Activity{Name: "Mouse movements", Module: "psmouse", PagesTouched: 6, EventHz: 60}
}

// Keystrokes models keyboard input through the HID stack (the extension
// the paper's §IV-E suggests).
func Keystrokes() Activity {
	return Activity{Name: "Keystrokes", Module: "usbhid", PagesTouched: 4, EventHz: 12}
}

// Interval is a half-open [Start, End) activity window in seconds.
type Interval struct{ Start, End float64 }

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// Timeline is one activity's on/off schedule over an experiment.
type Timeline struct {
	Activity Activity
	On       []Interval
}

// ActiveAt reports whether the activity is on at time t.
func (tl *Timeline) ActiveAt(t float64) bool {
	for _, iv := range tl.On {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// RandomTimeline builds a timeline over [0, duration) with activity bursts:
// alternating off/on periods drawn from exponential holding times.
func RandomTimeline(act Activity, duration float64, meanOff, meanOn float64, r *rng.Source) *Timeline {
	tl := &Timeline{Activity: act}
	t := r.Exponential(meanOff)
	for t < duration {
		on := r.Exponential(meanOn)
		end := t + on
		if end > duration {
			end = duration
		}
		tl.On = append(tl.On, Interval{Start: t, End: end})
		t = end + r.Exponential(meanOff)
	}
	return tl
}

// FixedTimeline builds a timeline from explicit windows.
func FixedTimeline(act Activity, on ...Interval) *Timeline {
	return &Timeline{Activity: act, On: on}
}

// DefaultResolution is the driver's event-grid spacing in seconds: victim
// activity fires once per grid point while a timeline is on (the paper's
// Figure 6 samples at 1 Hz, so one victim burst per spy tick).
const DefaultResolution = 1.0

// Driver is a deterministic, seekable event source replaying one or more
// timelines against a booted kernel. Victim events live on a fixed time
// grid (multiples of Resolution): event k fires at time k*Resolution for
// every timeline on at that instant, touching the module's leading pages —
// which installs the module's translations in the TLB of whatever machine
// the events are replayed against.
//
// The event schedule is a pure function of (timelines, resolution): it can
// be replayed for any time window, on any machine sharing the victim's
// address space, any number of times, in any order — the property the scan
// engine's chunked workers rely on to reproduce driver-induced TLB fills
// per time-window chunk. The driver's own cursor (AdvanceTo / Rewind /
// Seek) only tracks position for callers that stream events onto the bound
// machine; ReplayWindow never reads or moves it.
type Driver struct {
	k         *linux.Kernel
	timelines []*Timeline
	// touch caches each timeline's touched page VAs (module base through
	// PagesTouched, clipped to the module), resolved once at construction so
	// replay needs no per-event module lookups and cannot fail.
	touch [][]paging.VirtAddr
	res   float64
	cur   float64
}

// NewDriver creates a driver for the kernel with the default event
// resolution. Every timeline's module must be loaded.
func NewDriver(k *linux.Kernel, timelines ...*Timeline) (*Driver, error) {
	d := &Driver{k: k, timelines: timelines, res: DefaultResolution}
	for _, tl := range timelines {
		lm, ok := k.Module(tl.Activity.Module)
		if !ok {
			return nil, fmt.Errorf("behavior: module %q not loaded", tl.Activity.Module)
		}
		var vas []paging.VirtAddr
		for i := 0; i < tl.Activity.PagesTouched && uint64(i)<<12 < lm.Size; i++ {
			vas = append(vas, lm.Base+paging.VirtAddr(uint64(i)<<12))
		}
		d.touch = append(d.touch, vas)
	}
	return d, nil
}

// Resolution returns the event-grid spacing in seconds.
func (d *Driver) Resolution() float64 { return d.res }

// SetResolution changes the event-grid spacing (call before any replay; it
// redefines the whole schedule).
func (d *Driver) SetResolution(res float64) {
	if res > 0 {
		d.res = res
	}
}

// Now returns the driver's cursor: the time up to which AdvanceTo has
// already fired events on the bound machine.
func (d *Driver) Now() float64 { return d.cur }

// Seek repositions the cursor without firing or unfiring anything — the
// caller has replayed (or restored, via machine.Snapshot) the victim state
// at time t by other means.
func (d *Driver) Seek(t float64) { d.cur = t }

// Rewind resets the cursor to the start of the experiment. Pair with
// restoring the machine to its matching snapshot: replay after a Rewind is
// then a pure function of (snapshot, seed).
func (d *Driver) Rewind() { d.cur = 0 }

// AdvanceTo fires every event in [Now(), t) on the bound kernel's machine
// and moves the cursor to t. Advancing in chunks is equivalent to one big
// advance: AdvanceTo(a) then AdvanceTo(b) replays exactly the events of
// AdvanceTo(b) from the start.
func (d *Driver) AdvanceTo(t float64) {
	d.ReplayWindow(d.k.Machine(), d.cur, t)
	d.cur = t
}

// ReplayWindow replays the events of the half-open window [t0, t1) against
// an arbitrary machine sharing the victim's address space — a scan-engine
// worker replica, the bound machine itself, anything. It is stateless
// (cursor untouched), deterministic and idempotent-per-window, so chunked
// workers can replay disjoint windows concurrently on their private
// replicas: each replica's TLB sees exactly the fills the victim produced
// in that window.
func (d *Driver) ReplayWindow(m *machine.Machine, t0, t1 float64) {
	if t1 <= t0 {
		return
	}
	// First grid point >= t0.
	k := int(math.Ceil(t0/d.res - timeEps))
	if k < 0 {
		k = 0
	}
	for ; ; k++ {
		t := float64(k) * d.res
		if t >= t1-timeEps*d.res {
			return
		}
		for ti, tl := range d.timelines {
			if tl.ActiveAt(t) {
				m.KernelTouch(d.touch[ti]...)
			}
		}
	}
}

// timeEps absorbs float accumulation when tick times are reconstructed as
// t0 + i*tick: a grid point must not fall out of (or into) a window over a
// 1e-9-relative rounding wobble.
const timeEps = 1e-9

// Step fires the events of the single instant t on the bound machine (the
// legacy spy-loop entry point, equivalent to ReplayWindow(machine, t,
// t+Resolution) for grid-aligned t).
func (d *Driver) Step(t float64) error {
	m := d.k.Machine()
	for ti, tl := range d.timelines {
		if tl.ActiveAt(t) {
			m.KernelTouch(d.touch[ti]...)
		}
	}
	return nil
}

// Timelines returns the driver's timelines (ground truth for accuracy
// scoring).
func (d *Driver) Timelines() []*Timeline { return d.timelines }
