// Package behavior generates the victim-activity timelines of §IV-E: user
// actions (Bluetooth audio streaming, mouse movement, keystrokes) that make
// the kernel execute the corresponding driver module, leaving its address
// translations in the TLB — the observable the spy process samples.
package behavior

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/paging"
	"repro/internal/rng"
)

// Activity is one kind of user behavior and the module that services it.
type Activity struct {
	// Name labels the activity (for plots).
	Name string
	// Module is the kernel module whose code runs while active.
	Module string
	// PagesTouched is how many of the module's leading pages each event
	// touches (the spy probes "the first 10 pages", §IV-E).
	PagesTouched int
	// EventHz is the event rate while the activity is on (e.g. Bluetooth
	// audio ticks many times per second; mouse interrupts likewise).
	EventHz float64
}

// BluetoothAudio is the §IV-E Bluetooth audio-streaming activity.
func BluetoothAudio() Activity {
	return Activity{Name: "Bluetooth audio", Module: "bluetooth", PagesTouched: 10, EventHz: 50}
}

// MouseMovement is the §IV-E mouse-movement activity.
func MouseMovement() Activity {
	return Activity{Name: "Mouse movements", Module: "psmouse", PagesTouched: 6, EventHz: 60}
}

// Keystrokes models keyboard input through the HID stack (the extension
// the paper's §IV-E suggests).
func Keystrokes() Activity {
	return Activity{Name: "Keystrokes", Module: "usbhid", PagesTouched: 4, EventHz: 12}
}

// Interval is a half-open [Start, End) activity window in seconds.
type Interval struct{ Start, End float64 }

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// Timeline is one activity's on/off schedule over an experiment. On is
// kept sorted by start time with non-overlapping intervals (every
// constructor guarantees this), so lookups binary-search.
//
// A timeline is either bounded (On is the complete schedule — nothing
// happens outside it) or unbounded (built by UnboundedTimeline): unbounded
// timelines extend their burst schedule lazily from a private deterministic
// source, so the schedule reaches any horizon and is bit-identical no
// matter when — or in what order — it was materialized.
type Timeline struct {
	Activity Activity
	On       []Interval
	gen      *timelineGen
}

// timelineGen is the lazy burst generator of an unbounded timeline.
type timelineGen struct {
	r               *rng.Source
	meanOff, meanOn float64
	// frontier is the start of the next (not yet generated) burst: every
	// interval beginning before frontier exists in On, and [lastEnd,
	// frontier) is known-off. Extension only ever appends past it —
	// already-generated intervals never change, which is what makes lazy
	// materialization deterministic.
	frontier float64
}

// ActiveAt reports whether the activity is on at time t. On an unbounded
// timeline this lazily extends the schedule through t; concurrent readers
// (scan-engine worker replicas replaying windows) must materialize their
// horizon first via EnsureCoverage / Driver.EnsureHorizon, after which
// ActiveAt below that horizon is a pure read.
func (tl *Timeline) ActiveAt(t float64) bool {
	if tl.gen != nil && t >= tl.gen.frontier {
		tl.extend(t)
	}
	// First interval that ends after t; if any interval covers t it is
	// that one.
	i := sort.Search(len(tl.On), func(i int) bool { return tl.On[i].End > t })
	return i < len(tl.On) && tl.On[i].Contains(t)
}

// Unbounded reports whether the timeline extends lazily (no fixed horizon).
func (tl *Timeline) Unbounded() bool { return tl.gen != nil }

// CoveredUntil returns the time up to which the schedule is materialized:
// ActiveAt strictly below it never mutates the timeline. Bounded timelines
// are complete, so they report +Inf.
func (tl *Timeline) CoveredUntil() float64 {
	if tl.gen == nil {
		return math.Inf(1)
	}
	return tl.gen.frontier
}

// EnsureCoverage materializes an unbounded timeline's schedule so that
// every query strictly below t (and t itself) is a pure read. No-op on
// bounded timelines. Idempotent; not safe for concurrent use — call it
// before fanning replay out across goroutines.
func (tl *Timeline) EnsureCoverage(t float64) {
	if tl.gen != nil && t >= tl.gen.frontier {
		tl.extend(t)
	}
}

// extend generates bursts until the frontier passes t. Each burst consumes
// exactly two draws (on-length, next off-gap) in a fixed order, so the
// resulting schedule depends only on the source's seed, never on the query
// sequence that triggered generation.
func (tl *Timeline) extend(t float64) {
	g := tl.gen
	for g.frontier <= t {
		start := g.frontier
		end := start + g.r.Exponential(g.meanOn)
		tl.On = append(tl.On, Interval{Start: start, End: end})
		g.frontier = end + g.r.Exponential(g.meanOff)
	}
}

// RandomTimeline builds a timeline over [0, duration) with activity bursts:
// alternating off/on periods drawn from exponential holding times.
func RandomTimeline(act Activity, duration float64, meanOff, meanOn float64, r *rng.Source) *Timeline {
	tl := &Timeline{Activity: act}
	t := r.Exponential(meanOff)
	for t < duration {
		on := r.Exponential(meanOn)
		end := t + on
		if end > duration {
			end = duration
		}
		tl.On = append(tl.On, Interval{Start: t, End: end})
		t = end + r.Exponential(meanOff)
	}
	return tl
}

// UnboundedTimeline builds a timeline with no horizon: alternating
// off/on periods drawn from exponential holding times, generated lazily as
// queries (or EnsureCoverage calls) reach further into the future. The
// source must be private to this timeline — each burst consumes draws in a
// fixed order, so the schedule is a pure function of the source's seed and
// identical however the timeline is materialized. Prefix property: the
// first bursts match RandomTimeline with the same parameters and seed
// (modulo RandomTimeline's truncation at its duration).
func UnboundedTimeline(act Activity, meanOff, meanOn float64, src *rng.Source) *Timeline {
	tl := &Timeline{Activity: act, gen: &timelineGen{r: src, meanOff: meanOff, meanOn: meanOn}}
	tl.gen.frontier = src.Exponential(meanOff)
	return tl
}

// FixedTimeline builds a timeline from explicit windows (sorted here so
// lookups can binary-search; windows must not overlap).
func FixedTimeline(act Activity, on ...Interval) *Timeline {
	sort.Slice(on, func(i, j int) bool { return on[i].Start < on[j].Start })
	return &Timeline{Activity: act, On: on}
}

// DefaultResolution is the driver's event-grid spacing in seconds: victim
// activity fires once per grid point while a timeline is on (the paper's
// Figure 6 samples at 1 Hz, so one victim burst per spy tick).
const DefaultResolution = 1.0

// Driver is a deterministic, seekable event source replaying one or more
// timelines against a booted kernel. Victim events live on a fixed time
// grid (multiples of Resolution): event k fires at time k*Resolution for
// every timeline on at that instant, touching the module's leading pages —
// which installs the module's translations in the TLB of whatever machine
// the events are replayed against.
//
// The event schedule is a pure function of (timelines, resolution): it can
// be replayed for any time window, on any machine sharing the victim's
// address space, any number of times, in any order — the property the scan
// engine's chunked workers rely on to reproduce driver-induced TLB fills
// per time-window chunk. The driver's own cursor (AdvanceTo / Rewind /
// Seek) only tracks position for callers that stream events onto the bound
// machine; ReplayWindow never reads or moves it.
type Driver struct {
	k         *linux.Kernel
	timelines []*Timeline
	// touch caches each timeline's touched page VAs (module base through
	// PagesTouched, clipped to the module), resolved once at construction so
	// replay needs no per-event module lookups and cannot fail.
	touch [][]paging.VirtAddr
	res   float64
	cur   float64
}

// NewDriver creates a driver for the kernel with the default event
// resolution. Every timeline's module must be loaded.
func NewDriver(k *linux.Kernel, timelines ...*Timeline) (*Driver, error) {
	d := &Driver{k: k, timelines: timelines, res: DefaultResolution}
	for _, tl := range timelines {
		lm, ok := k.Module(tl.Activity.Module)
		if !ok {
			return nil, fmt.Errorf("behavior: module %q not loaded", tl.Activity.Module)
		}
		var vas []paging.VirtAddr
		for i := 0; i < tl.Activity.PagesTouched && uint64(i)<<12 < lm.Size; i++ {
			vas = append(vas, lm.Base+paging.VirtAddr(uint64(i)<<12))
		}
		d.touch = append(d.touch, vas)
	}
	return d, nil
}

// Resolution returns the event-grid spacing in seconds.
func (d *Driver) Resolution() float64 { return d.res }

// SetResolution changes the event-grid spacing (call before any replay; it
// redefines the whole schedule).
func (d *Driver) SetResolution(res float64) {
	if res > 0 {
		d.res = res
	}
}

// Now returns the driver's cursor: the time up to which AdvanceTo has
// already fired events on the bound machine.
func (d *Driver) Now() float64 { return d.cur }

// Seek repositions the cursor without firing or unfiring anything — the
// caller has replayed (or restored, via machine.Snapshot) the victim state
// at time t by other means.
func (d *Driver) Seek(t float64) { d.cur = t }

// Rewind resets the cursor to the start of the experiment. Pair with
// restoring the machine to its matching snapshot: replay after a Rewind is
// then a pure function of (snapshot, seed).
func (d *Driver) Rewind() { d.cur = 0 }

// AdvanceTo fires every event in [Now(), t) on the bound kernel's machine
// and moves the cursor to t. Advancing in chunks is equivalent to one big
// advance: AdvanceTo(a) then AdvanceTo(b) replays exactly the events of
// AdvanceTo(b) from the start.
func (d *Driver) AdvanceTo(t float64) {
	d.ReplayWindow(d.k.Machine(), d.cur, t)
	d.cur = t
}

// EnsureHorizon materializes every unbounded timeline through time t, so
// that subsequent ReplayWindow calls below that horizon are pure reads and
// can safely run concurrently on worker replicas. No-op for bounded
// timelines. Call from the coordinating goroutine before fanning out.
func (d *Driver) EnsureHorizon(t float64) {
	for _, tl := range d.timelines {
		tl.EnsureCoverage(t)
	}
}

// ReplayWindow replays the events of the half-open window [t0, t1) against
// an arbitrary machine sharing the victim's address space — a scan-engine
// worker replica, the bound machine itself, anything. It is stateless
// (cursor untouched), deterministic and idempotent-per-window, so chunked
// workers can replay disjoint windows concurrently on their private
// replicas: each replica's TLB sees exactly the fills the victim produced
// in that window.
func (d *Driver) ReplayWindow(m *machine.Machine, t0, t1 float64) {
	if t1 <= t0 {
		return
	}
	// First grid point >= t0.
	k := int(math.Ceil(t0/d.res - timeEps))
	if k < 0 {
		k = 0
	}
	for ; ; k++ {
		t := float64(k) * d.res
		if t >= t1-timeEps*d.res {
			return
		}
		for ti, tl := range d.timelines {
			if tl.ActiveAt(t) {
				m.KernelTouch(d.touch[ti]...)
			}
		}
	}
}

// timeEps absorbs float accumulation when tick times are reconstructed as
// t0 + i*tick: a grid point must not fall out of (or into) a window over a
// 1e-9-relative rounding wobble.
const timeEps = 1e-9

// Step fires the events of the single instant t on the bound machine (the
// legacy spy-loop entry point, equivalent to ReplayWindow(machine, t,
// t+Resolution) for grid-aligned t).
func (d *Driver) Step(t float64) error {
	m := d.k.Machine()
	for ti, tl := range d.timelines {
		if tl.ActiveAt(t) {
			m.KernelTouch(d.touch[ti]...)
		}
	}
	return nil
}

// Timelines returns the driver's timelines (ground truth for accuracy
// scoring).
func (d *Driver) Timelines() []*Timeline { return d.timelines }
